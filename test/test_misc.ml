(* Coverage for the small supporting modules: statistics, protocol
   types, fd tables, configuration validation, placement policy. *)

module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Wire = Hare_proto.Wire
module Config = Hare_config.Config
module Costs = Hare_config.Costs
module Opcount = Hare_stats.Opcount
module Fdtable = Hare_client.Fdtable

(* ---------- stats ------------------------------------------------------- *)

let test_opcount_basics () =
  let t = Opcount.create () in
  Opcount.incr t "open";
  Opcount.incr t "open";
  Opcount.incr ~by:3 t "read";
  Alcotest.(check int) "get" 2 (Opcount.get t "open");
  Alcotest.(check int) "total" 5 (Opcount.total t);
  Alcotest.(check (list (pair string int)))
    "sorted by count"
    [ ("read", 3); ("open", 2) ]
    (Opcount.to_list t);
  let copy = Opcount.snapshot t in
  Opcount.incr t "open";
  Alcotest.(check int) "snapshot isolated" 2 (Opcount.get copy "open");
  let d = Opcount.diff ~since:copy t in
  Alcotest.(check int) "diff" 1 (Opcount.get d "open");
  Alcotest.(check int) "diff omits unchanged" 0 (Opcount.get d "read")

let test_opcount_breakdown () =
  let t = Opcount.create () in
  Opcount.incr ~by:3 t "a";
  Opcount.incr ~by:1 t "b";
  match Opcount.breakdown t with
  | [ ("a", sa); ("b", sb) ] ->
      Alcotest.(check (float 0.001)) "a share" 0.75 sa;
      Alcotest.(check (float 0.001)) "b share" 0.25 sb
  | _ -> Alcotest.fail "unexpected breakdown"

let test_table_render () =
  let s =
    Hare_stats.Table.render ~headers:[ "x"; "y" ] [ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.length s > 0);
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.check_raises "arity checked"
    (Invalid_argument "Table.render: row 0 has wrong arity") (fun () ->
      ignore (Hare_stats.Table.render ~headers:[ "a" ] [ [ "1"; "2" ] ]))

let test_sloc_counts_this_repo () =
  match Hare_stats.Sloc.repo_root () with
  | None -> Alcotest.fail "repo root not found"
  | Some root ->
      let n = Hare_stats.Sloc.count_tree (Filename.concat root "lib/sim") in
      Alcotest.(check bool) "sim library is nontrivial" true (n > 300)

(* ---------- proto ------------------------------------------------------- *)

let test_pid_encoding () =
  for core = 0 to 63 do
    let pid = Types.make_pid ~core ~seq:(core * 7) in
    Alcotest.(check int) "core roundtrip" core (Types.core_of_pid pid)
  done

let test_errno_strings () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "nonempty" true (String.length (Errno.to_string e) > 0))
    [ Errno.ENOENT; Errno.EEXIST; Errno.ENOTDIR; Errno.EISDIR; Errno.ENOTEMPTY;
      Errno.EBADF; Errno.EINVAL; Errno.EPIPE; Errno.ENOSPC; Errno.ESPIPE;
      Errno.ECHILD; Errno.ESRCH; Errno.EMFILE; Errno.ENOSYS; Errno.ENOEXEC;
      Errno.EACCES; Errno.EBUSY ]

let test_req_names_distinct () =
  let dummy_ino = Types.root_ino in
  let reqs =
    [
      Wire.Lookup { dir = dummy_ino; name = "x"; client = 0; home = 0 };
      Wire.Rm_map { dir = dummy_ino; name = "x"; only_if = None; client = 0; home = 0 };
      Wire.Readdir_shard { dir = dummy_ino; home = 0 };
      Wire.Create_inode { ftype = Types.Reg; dist = false; and_open = false; home = 0 };
      Wire.Create_dir { dir = dummy_ino; name = "d"; dist = false; client = 0; home = 0 };
      Wire.Open_inode { ino = dummy_ino; trunc = false; client = 0 };
      Wire.Close_fd { token = 1; size = None };
      Wire.Read_fd { token = 1; off = None; len = 1 };
      Wire.Write_fd { token = 1; off = None; data = "" };
      Wire.Rmdir_local { dir = dummy_ino; client = 0 };
      Wire.Steal_blocks { count = 1 };
      Wire.Pipe_create { client = 0; home = 0 };
    ]
  in
  let names = List.map Wire.req_name reqs in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_pp_smoke () =
  let s =
    Format.asprintf "%a / %a / %a" Types.pp_ino Types.root_ino Types.pp_ftype
      Types.Fifo Wire.pp_fs_req
      (Wire.Lookup { dir = Types.root_ino; name = "f"; client = 3; home = 0 })
  in
  Alcotest.(check bool) "pp renders" true (String.length s > 5)

(* ---------- fdtable ----------------------------------------------------- *)

let console_entry () =
  { Fdtable.desc = Fdtable.Console (Wire.Console_local (Buffer.create 1));
    local_refs = 1 }

let test_fdtable_lowest_free () =
  let t = Fdtable.create () in
  let a = Fdtable.alloc t (console_entry ()) in
  let b = Fdtable.alloc t (console_entry ()) in
  let c = Fdtable.alloc t (console_entry ()) in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2 ] [ a; b; c ];
  Fdtable.remove t 1;
  Alcotest.(check int) "reuses lowest" 1 (Fdtable.alloc t (console_entry ()));
  Alcotest.(check (list int)) "fds sorted" [ 0; 1; 2 ] (Fdtable.fds t)

let test_fdtable_distinct_entries () =
  let t = Fdtable.create () in
  let e = console_entry () in
  ignore (Fdtable.alloc t e);
  Fdtable.alloc_at t 5 e;
  ignore (Fdtable.alloc t (console_entry ()));
  Alcotest.(check int) "dup'd entry counted once" 2
    (List.length (Fdtable.distinct_entries t));
  Alcotest.check_raises "bad fd"
    (Errno.Error (Errno.EBADF, "99"))
    (fun () -> ignore (Fdtable.find_exn t 99))

(* ---------- config ------------------------------------------------------ *)

let test_config_validate () =
  let ok c = Alcotest.(check bool) "valid" true (Config.validate c = Ok ()) in
  let bad c = Alcotest.(check bool) "invalid" true (Config.validate c <> Ok ()) in
  ok Config.default;
  bad { Config.default with Config.ncores = 0 };
  bad { Config.default with Config.placement = Config.Split 40 };
  bad { Config.default with Config.placement = Config.Split 0 };
  ok { Config.default with Config.placement = Config.Split 39 };
  bad { Config.default with Config.buffer_cache_blocks = 0 }

let test_config_core_partition () =
  let c = { Config.default with Config.ncores = 8; placement = Config.Split 3 } in
  Alcotest.(check (list int)) "server cores" [ 0; 1; 2 ] (Config.server_cores c);
  Alcotest.(check (list int)) "app cores" [ 3; 4; 5; 6; 7 ] (Config.app_cores c);
  Alcotest.(check int) "nservers" 3 (Config.nservers c);
  let ts = { c with Config.placement = Config.Timeshare } in
  Alcotest.(check int) "timeshare servers" 8 (Config.nservers ts);
  Alcotest.(check (list int)) "timeshare apps = all" (List.init 8 Fun.id)
    (Config.app_cores ts)

let test_costs_conversions () =
  let c = Costs.default in
  Alcotest.(check (float 0.0001)) "us" 1.0
    (Costs.us_of_cycles c (Int64.of_int c.Costs.cycles_per_us));
  Alcotest.(check (float 1e-9)) "seconds" 1e-6
    (Costs.seconds_of_cycles c (Int64.of_int c.Costs.cycles_per_us))

(* ---------- placement policy ------------------------------------------- *)

let test_round_robin_covers_cores () =
  let config = Test_util.small_config ~ncores:4 () in
  let m = Test_util.Machine.boot config in
  let seen = Hashtbl.create 4 in
  Test_util.Machine.register_program m "mark" (fun p _ ->
      Hashtbl.replace seen p.Test_util.P.core_id ();
      0);
  let init, _ =
    Test_util.Machine.spawn_init m ~name:"t" (fun p _ ->
        let pids =
          List.init 8 (fun _ -> Hare.Posix.spawn p ~prog:"mark" ~args:[])
        in
        List.iter (fun pid -> ignore (Hare.Posix.waitpid p pid)) pids;
        0)
  in
  Test_util.Machine.run m;
  ignore init;
  Alcotest.(check int) "all 4 cores used" 4 (Hashtbl.length seen)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "misc.stats",
      [
        tc "opcount basics" `Quick test_opcount_basics;
        tc "opcount breakdown" `Quick test_opcount_breakdown;
        tc "table render" `Quick test_table_render;
        tc "sloc" `Quick test_sloc_counts_this_repo;
      ] );
    ( "misc.proto",
      [
        tc "pid encoding" `Quick test_pid_encoding;
        tc "errno strings" `Quick test_errno_strings;
        tc "req names distinct" `Quick test_req_names_distinct;
        tc "pp smoke" `Quick test_pp_smoke;
      ] );
    ( "misc.fdtable",
      [
        tc "lowest free" `Quick test_fdtable_lowest_free;
        tc "distinct entries" `Quick test_fdtable_distinct_entries;
      ] );
    ( "misc.config",
      [
        tc "validate" `Quick test_config_validate;
        tc "core partition" `Quick test_config_core_partition;
        tc "cost conversions" `Quick test_costs_conversions;
      ] );
    ("misc.policy", [ tc "round robin coverage" `Quick test_round_robin_covers_cores ]);
  ]
