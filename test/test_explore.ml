(* Schedule exploration (PR 10): the linearizability oracle judges
   hand-built histories correctly, the deterministic strategy is stable,
   exhaustive DPOR enumerates a stable reduced schedule tree and leaves
   every clean scenario clean, every PR 5 protocol mutation is caught
   within the CI budget, and each reported violation's choice list
   replays to the same violation. *)

module Oracle = Hare_explore.Oracle
module Runner = Hare_explore.Runner
module Scenario = Hare_explore.Scenario

(* ---------- oracle units ------------------------------------------------ *)

let ev c op res inv resp =
  {
    Oracle.e_client = c;
    e_op = op;
    e_result = res;
    e_inv = inv;
    e_res = resp;
  }

let expect_ok name history =
  match Oracle.check history with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: expected Ok, got:\n%s" name msg

let expect_violation name history =
  match Oracle.check history with
  | Ok () -> Alcotest.failf "%s: expected a violation, got Ok" name
  | Error _ -> ()

let test_oracle_close_to_open () =
  (* Reader opens after the writer's close completed: the close-to-open
     edge forces it to see the write. *)
  let h =
    [
      ev 0 (Oracle.Open { path = "/a"; create = true }) (Oracle.Ok_handle 1)
        0L 10L;
      ev 0 (Oracle.Write { h = 1; data = "x" }) (Oracle.Ok_int 1) 20L 30L;
      ev 0 (Oracle.Close { h = 1 }) Oracle.Ok_unit 40L 50L;
      ev 1 (Oracle.Open { path = "/a"; create = false }) (Oracle.Ok_handle 1)
        60L 70L;
      ev 1 (Oracle.Read { h = 1 }) (Oracle.Ok_data "x") 80L 90L;
      ev 1 (Oracle.Close { h = 1 }) Oracle.Ok_unit 92L 99L;
    ]
  in
  expect_ok "fresh read after close" h;
  (* The same history returning stale data has no witness. *)
  let stale =
    List.map
      (fun e ->
        match e.Oracle.e_op with
        | Oracle.Read _ -> { e with Oracle.e_result = Oracle.Ok_data "" }
        | _ -> e)
      h
  in
  expect_violation "stale read after close-to-open" stale

let test_oracle_concurrent_freedom () =
  (* A read overlapping the write in real time carries no edge: both the
     old and the new contents are legal. *)
  let base read_result =
    [
      ev 0 (Oracle.Open { path = "/a"; create = true }) (Oracle.Ok_handle 1)
        0L 10L;
      ev 0 (Oracle.Write { h = 1; data = "x" }) (Oracle.Ok_int 1) 20L 30L;
      ev 0 (Oracle.Close { h = 1 }) Oracle.Ok_unit 100L 110L;
      ev 1 (Oracle.Open { path = "/a"; create = false }) (Oracle.Ok_handle 1)
        12L 18L;
      ev 1 (Oracle.Read { h = 1 }) (Oracle.Ok_data read_result) 22L 40L;
    ]
  in
  expect_ok "concurrent read may see the write" (base "x");
  expect_ok "concurrent read may miss the write" (base "")

let test_oracle_model_errors () =
  (* Error results are checked against the model too. *)
  expect_ok "stat of nothing is ENOENT"
    [ ev 0 (Oracle.Stat { path = "/nope" }) (Oracle.Err "ENOENT") 0L 10L ];
  expect_ok "close of nothing is EBADF"
    [ ev 0 (Oracle.Close { h = 9 }) (Oracle.Err "EBADF") 0L 10L ];
  (* A stat invoked after the creating close completed must see the
     file; a recorded ENOENT is a violation. *)
  expect_violation "stat misses a closed create"
    [
      ev 0 (Oracle.Open { path = "/a"; create = true }) (Oracle.Ok_handle 1)
        0L 10L;
      ev 0 (Oracle.Close { h = 1 }) Oracle.Ok_unit 20L 30L;
      ev 1 (Oracle.Stat { path = "/a" }) (Oracle.Err "ENOENT") 50L 60L;
    ]

(* ---------- strategies on the live scenarios ---------------------------- *)

let stats_eq name (a : Runner.stats) (b : Runner.stats) =
  Alcotest.(check int) (name ^ ": schedules") a.Runner.schedules b.Runner.schedules;
  Alcotest.(check int)
    (name ^ ": choice points")
    a.Runner.choice_points b.Runner.choice_points;
  Alcotest.(check int) (name ^ ": max depth") a.Runner.max_depth b.Runner.max_depth;
  Alcotest.(check int)
    (name ^ ": sleep-set prunes")
    a.Runner.sleep_blocked b.Runner.sleep_blocked;
  Alcotest.(check bool) (name ^ ": complete") a.Runner.complete b.Runner.complete;
  Alcotest.(check int)
    (name ^ ": violations")
    (List.length a.Runner.violations)
    (List.length b.Runner.violations)

let test_deterministic_stable () =
  let run () =
    Runner.explore
      ~scenario:(Scenario.find "handoff")
      ~strategy:Runner.Deterministic ~budget:1 ()
  in
  let s = run () in
  Alcotest.(check int) "one schedule" 1 s.Runner.schedules;
  Alcotest.(check (list string)) "clean" []
    (List.map (fun v -> v.Runner.v_kind) s.Runner.violations);
  stats_eq "two deterministic runs" s (run ())

let test_dpor_exhaustive_stable () =
  (* The collide scenario's reduced schedule tree: two racing creates
     into one server tie on delivery order. Its size is a golden value —
     a change means the independence relation or the engine's tie
     structure moved, which must be deliberate. *)
  let run () =
    Runner.explore
      ~scenario:(Scenario.find "collide")
      ~strategy:Runner.Dpor ~budget:500 ()
  in
  let s = run () in
  Alcotest.(check bool) "exhaustive within budget" true s.Runner.complete;
  Alcotest.(check int) "golden reduced-tree size" 4 s.Runner.schedules;
  Alcotest.(check (list string)) "clean" []
    (List.map (fun v -> v.Runner.v_kind) s.Runner.violations);
  stats_eq "two DPOR runs" s (run ())

let test_dpor_all_scenarios_clean () =
  List.iter
    (fun (sc : Scenario.t) ->
      let s =
        Runner.explore ~scenario:sc ~strategy:Runner.Dpor ~budget:500 ()
      in
      Alcotest.(check bool)
        (sc.Scenario.sc_name ^ ": exhaustive within budget")
        true s.Runner.complete;
      Alcotest.(check (list string))
        (sc.Scenario.sc_name ^ ": no violations")
        []
        (List.map
           (fun v -> v.Runner.v_kind ^ ": " ^ v.Runner.v_detail)
           s.Runner.violations))
    Scenario.all

let test_random_schedules_stay_clean () =
  (* Twenty random schedules of each clean scenario: correctness must
     not depend on the native tie order. *)
  List.iter
    (fun (sc : Scenario.t) ->
      let s =
        Runner.explore ~scenario:sc ~strategy:(Runner.Rand 11) ~budget:20 ()
      in
      Alcotest.(check (list string))
        (sc.Scenario.sc_name ^ ": random schedules clean")
        []
        (List.map (fun v -> v.Runner.v_kind) s.Runner.violations))
    Scenario.all

(* ---------- mutation detection + replay --------------------------------- *)

(* Which scenario exposes which PR 5 mutation (the sanitizer catches all
   three; the oracle additionally catches the two whose staleness is
   user-visible). *)
let detections =
  [
    ("skip_writeback", "handoff");
    ("skip_open_inval", "reopen");
    ("drop_inval", "dirrace");
  ]

let test_mutations_detected () =
  List.iter
    (fun (mutation, scenario) ->
      let s =
        Runner.explore
          ~scenario:(Scenario.find scenario)
          ~mutate:mutation ~strategy:Runner.Dpor ~budget:200 ()
      in
      match s.Runner.violations with
      | [] ->
          Alcotest.failf "%s on %s: mutation escaped exploration" mutation
            scenario
      | v :: _ ->
          (* The replay recipe must reproduce the violation exactly. *)
          let r =
            Runner.replay
              ~scenario:(Scenario.find scenario)
              ~mutate:mutation v.Runner.v_choices ()
          in
          (match r.Runner.violations with
          | [] ->
              Alcotest.failf "%s on %s: replay %s lost the violation"
                mutation scenario
                (String.concat ","
                   (List.map string_of_int v.Runner.v_choices))
          | rv :: _ ->
              Alcotest.(check string)
                (mutation ^ ": replay reproduces the same kind")
                v.Runner.v_kind rv.Runner.v_kind))
    detections

let test_pct_detects_within_budget () =
  (* The CI smoke's budgeted randomized pass: PCT with a fixed seed must
     catch the writeback mutation within 50 schedules. *)
  let s =
    Runner.explore
      ~scenario:(Scenario.find "handoff")
      ~mutate:"skip_writeback" ~strategy:(Runner.Pct 7) ~budget:50 ()
  in
  Alcotest.(check bool) "violation found" true (s.Runner.violations <> [])

let test_unknown_mutation_rejected () =
  match
    Runner.explore
      ~scenario:(Scenario.find "handoff")
      ~mutate:"bogus" ~strategy:Runner.Deterministic ~budget:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown mutation accepted"

(* ---------- suites ------------------------------------------------------ *)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "explore.oracle",
      [
        tc "close-to-open edge enforced" `Quick test_oracle_close_to_open;
        tc "concurrent ops are free" `Quick test_oracle_concurrent_freedom;
        tc "model errors checked" `Quick test_oracle_model_errors;
      ] );
    ( "explore.strategies",
      [
        tc "deterministic is stable" `Quick test_deterministic_stable;
        tc "DPOR exhaustive + golden tree size" `Quick
          test_dpor_exhaustive_stable;
        tc "DPOR leaves every scenario clean" `Quick
          test_dpor_all_scenarios_clean;
        tc "random schedules stay clean" `Quick
          test_random_schedules_stay_clean;
      ] );
    ( "explore.detection",
      [
        tc "every PR 5 mutation caught + replayed" `Quick
          test_mutations_detected;
        tc "PCT catches writeback within budget" `Quick
          test_pct_detects_within_budget;
        tc "unknown mutation rejected" `Quick test_unknown_mutation_rejected;
      ] );
  ]
