(* Tests for the overload-control plane (PR 6): bounded-queue boundary
   behaviour, mailbox credit flow control, Robust.reset hygiene, latency
   percentile math, seeded backoff determinism, the knobs-on-but-idle
   zero-perturbation contract, and end-to-end graceful degradation under
   the open-loop overload workload. *)

open Hare_sim
module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
module Api = Hare_api.Api
module Robust = Hare_stats.Robust
module Latency = Hare_stats.Latency
module O = Hare_workloads.Overload

let costs = Hare_config.Costs.default

(* ---------- Bqueue boundaries ------------------------------------------- *)

let test_bqueue_empty_pop_blocks () =
  let e = Engine.create () in
  let q = Bqueue.create () in
  let got = ref 0 in
  ignore (Engine.spawn e ~name:"popper" (fun () -> got := Bqueue.pop q));
  ignore
    (Engine.spawn e ~name:"pusher" (fun () ->
         Engine.sleep 50L;
         Bqueue.push q 7));
  Engine.run e;
  Alcotest.(check int) "blocked pop sees late push" 7 !got

let test_bqueue_empty_nonblocking () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let q = Bqueue.create () in
         Alcotest.(check (option int)) "empty" None (Bqueue.pop_nonblocking q);
         Alcotest.(check bool) "is_empty" true (Bqueue.is_empty q)));
  Engine.run e

let test_bqueue_full_push_blocks () =
  let e = Engine.create () in
  let order = ref [] in
  let q = Bqueue.create ~capacity:1 () in
  ignore
    (Engine.spawn e ~name:"pusher" (fun () ->
         Bqueue.push q 1;
         Alcotest.(check bool) "full after first push" true (Bqueue.is_full q);
         Alcotest.(check bool) "nonblocking push refused" false
           (Bqueue.push_nonblocking q 99);
         Bqueue.push q 2;
         (* only reached after the popper freed a slot *)
         order := `Pushed_second :: !order));
  ignore
    (Engine.spawn e ~name:"popper" (fun () ->
         Engine.sleep 100L;
         order := `Popped :: !order;
         ignore (Bqueue.pop q)));
  Engine.run e;
  Alcotest.(check bool) "push waited for the pop" true
    (!order = [ `Pushed_second; `Popped ]);
  Alcotest.(check int) "second value queued" 1 (Bqueue.length q)

let test_bqueue_push_overflow_never_blocks () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let q = Bqueue.create ~capacity:2 () in
         Bqueue.push q 1;
         Bqueue.push q 2;
         (* past capacity without suspending — the delayed-delivery path *)
         Bqueue.push_overflow q 3;
         Alcotest.(check int) "over capacity" 3 (Bqueue.length q);
         Alcotest.(check bool) "reports full" true (Bqueue.is_full q)));
  Engine.run e

let test_bqueue_wait_not_full () =
  let e = Engine.create () in
  let resumed_at = ref 0L in
  let q = Bqueue.create ~capacity:1 () in
  ignore
    (Engine.spawn e ~name:"waiter" (fun () ->
         Bqueue.push q 1;
         Bqueue.wait_not_full q;
         resumed_at := Engine.now e));
  ignore
    (Engine.spawn e ~name:"drainer" (fun () ->
         Engine.sleep 200L;
         ignore (Bqueue.pop q)));
  Engine.run e;
  Alcotest.(check bool) "parked until the drain" true (!resumed_at >= 200L);
  ignore
    (Engine.spawn e ~name:"unbounded" (fun () ->
         let u = Bqueue.create () in
         let t0 = Engine.now e in
         Bqueue.wait_not_full u;
         Alcotest.(check int64) "unbounded returns immediately" t0
           (Engine.now e)));
  Engine.run e

(* ---------- Mailbox credit flow control --------------------------------- *)

let test_mailbox_credit_gate () =
  let e = Engine.create () in
  let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let mb = Hare_msg.Mailbox.create ~capacity:1 ~owner ~costs () in
  let second_sent_at = ref 0L in
  ignore
    (Engine.spawn e ~name:"sender" (fun () ->
         Hare_msg.Mailbox.send mb ~from:sender "a";
         Hare_msg.Mailbox.send mb ~from:sender "b";
         second_sent_at := Engine.now e));
  ignore
    (Engine.spawn e ~name:"receiver" (fun () ->
         (* far past the cycles the two sends themselves cost, so the
            second send can only complete by waiting for this drain *)
         Engine.sleep 50_000L;
         Alcotest.(check string) "first" "a" (Hare_msg.Mailbox.recv mb);
         Alcotest.(check string) "second" "b" (Hare_msg.Mailbox.recv mb)));
  Engine.run e;
  Alcotest.(check bool) "second send waited for a credit" true
    (!second_sent_at >= 50_000L);
  Alcotest.(check int) "one credit-blocked send" 1
    (Hare_msg.Mailbox.flow_blocked mb);
  Hare_msg.Mailbox.reset_flow mb;
  Alcotest.(check int) "reset_flow zeroes" 0 (Hare_msg.Mailbox.flow_blocked mb)

let test_mailbox_recv_many_short_batch () =
  let e = Engine.create () in
  let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let mb = Hare_msg.Mailbox.create ~owner ~costs () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         Hare_msg.Mailbox.send mb ~from:sender "x";
         Hare_msg.Mailbox.send mb ~from:sender "y";
         let batch = Hare_msg.Mailbox.recv_many mb ~max:8 in
         Alcotest.(check (list string))
           "returns what is queued, not max" [ "x"; "y" ] batch));
  Engine.run e

(* ---------- Robust.reset / Latency math --------------------------------- *)

let test_robust_reset () =
  let r = Robust.create () in
  (* touch a spread of old and new counters *)
  r.Robust.drops <- 3;
  r.Robust.retries <- 5;
  r.Robust.flow_blocks <- 7;
  r.Robust.shed_load <- 11;
  r.Robust.fast_fails <- 2;
  r.Robust.budget_denied <- 4;
  r.Robust.breaker_opens <- 1;
  r.Robust.breaker_half_opens <- 1;
  r.Robust.breaker_closes <- 1;
  Alcotest.(check bool) "dirty" false (Robust.is_zero r);
  Robust.reset r;
  Alcotest.(check bool) "all zero after reset" true (Robust.is_zero r);
  List.iter
    (fun (k, v) -> Alcotest.(check int) k 0 v)
    (Robust.to_list r)

let test_latency_percentiles () =
  let d = Latency.of_durations (List.init 100 (fun i -> Int64.of_int (i + 1))) in
  Alcotest.(check int) "n" 100 d.Latency.n;
  Alcotest.(check int64) "p50" 50L d.Latency.p50;
  Alcotest.(check int64) "p95" 95L d.Latency.p95;
  Alcotest.(check int64) "p99" 99L d.Latency.p99;
  Alcotest.(check int64) "max" 100L d.Latency.lmax;
  let one = Latency.of_durations [ 42L ] in
  Alcotest.(check int64) "single sample p99" 42L one.Latency.p99;
  Alcotest.(check int) "empty" 0 (Latency.of_durations []).Latency.n

let test_latency_classes () =
  Alcotest.(check (option string)) "read" (Some "data")
    (Latency.class_of_op "read");
  Alcotest.(check (option string)) "open" (Some "meta")
    (Latency.class_of_op "open");
  Alcotest.(check (option string)) "unlink" (Some "background")
    (Latency.class_of_op "unlink");
  Alcotest.(check (option string)) "non-syscall" None
    (Latency.class_of_op "server_dispatch");
  Alcotest.(check int) "wire prio data" 1
    (Hare_proto.Wire.req_prio
       (Hare_proto.Wire.Pipe_read { token = 0; len = 1 }))

(* ---------- end-to-end helpers ------------------------------------------ *)

(* Boot a machine, run the overload workload on it the way hare_cli and
   bench do, and return the machine for inspection. *)
let run_overload_machine ?(nprocs = 24) ?(period = 30_000) config =
  O.reset ();
  O.period := period;
  let m = Machine.boot config in
  let api = Hare_experiments.World.Hare_w.api m in
  let spec = O.spec in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Hare_workloads.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
      spec.Hare_workloads.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"overload-test" (fun p _ ->
        spec.Hare_workloads.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        List.fold_left
          (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
          0 pids)
  in
  Machine.run m;
  Alcotest.(check (option int)) "workers all exited 0" (Some 0)
    (Machine.exit_status m init);
  m

let overload_config () =
  {
    (Test_util.small_config ~ncores:8 ~placement:(Config.Split 1) ()) with
    Config.exec_policy = Config.Round_robin;
    trace_enabled = true;
    rpc_deadline = 60_000;
    rpc_retries = 6;
    rpc_deadline_max = 240_000;
    deadline_propagation = true;
    mailbox_capacity = 24;
    retry_budget = 12;
    breaker_threshold = 6;
    breaker_cooldown = 150_000;
    shed_watermark = 8;
  }

(* ---------- seeded determinism ------------------------------------------ *)

let test_backoff_deterministic_per_seed () =
  (* Retry backoff jitter is drawn from the seeded Rng: two runs under
     the same fault plan and seed must produce the identical clock and
     the identical retry/timeout history. *)
  let config =
    {
      (overload_config ()) with
      Config.fault_plan = "drop:fs:0.08";
      seed = 42L;
    }
  in
  let run () =
    let m = run_overload_machine config in
    (Machine.now m, Robust.to_list (Machine.robustness m))
  in
  let clock1, robust1 = run () in
  let clock2, robust2 = run () in
  Alcotest.(check int64) "identical clock" clock1 clock2;
  List.iter2
    (fun (k, v1) (_, v2) -> Alcotest.(check int) k v1 v2)
    robust1 robust2;
  Alcotest.(check bool) "the plan actually bit (retries happened)" true
    (List.assoc "rpc retries" robust1 > 0)

let test_knobs_on_but_idle_is_bit_identical () =
  (* With every knob open but nothing pushed past a limit — light load,
     generous watermark/capacity, no faults — the overload machinery
     must not perturb the simulation: the clock matches the knobs-off
     run cycle for cycle, and every new counter stays zero. *)
  (* the deadline/retry machinery predates this PR and arms timers of
     its own; hold it fixed and toggle only the new knobs *)
  let base =
    {
      (Test_util.small_config ~ncores:4 ()) with
      Config.rpc_deadline = 1_000_000;
      rpc_retries = 4;
    }
  in
  let idle_knobs =
    {
      base with
      Config.rpc_deadline_max = 8_000_000;
      deadline_propagation = true;
      mailbox_capacity = 4096;
      retry_budget = 64;
      breaker_threshold = 32;
      breaker_cooldown = 500_000;
      shed_watermark = 4096;
    }
  in
  let run config =
    O.reset ();
    O.period := 30_000;
    let m = run_overload_machine ~nprocs:3 config in
    m
  in
  let off = run base in
  let on = run idle_knobs in
  Alcotest.(check int64) "identical clock with idle knobs" (Machine.now off)
    (Machine.now on);
  let r = Machine.robustness on in
  Alcotest.(check int) "no credit blocks" 0 r.Robust.flow_blocks;
  Alcotest.(check int) "no expiry sheds" 0 r.Robust.shed_expired;
  Alcotest.(check int) "no load sheds" 0 r.Robust.shed_load;
  Alcotest.(check int) "no fast fails" 0 r.Robust.fast_fails;
  Alcotest.(check int) "no budget denials" 0 r.Robust.budget_denied;
  Alcotest.(check int) "no breaker opens" 0 r.Robust.breaker_opens

(* ---------- graceful degradation ---------------------------------------- *)

let test_graceful_degradation_at_saturation () =
  (* ~2x overdrive against a single server core: the machine must keep
     doing useful work (goodput > 0), account for every request, shed
     the excess with EBUSY rather than collapse, and keep tail latency
     of admitted requests bounded by the deadline machinery. *)
  let m = run_overload_machine (overload_config ()) in
  let r = Machine.robustness m in
  Alcotest.(check bool) "sent something" true (!O.sent > 0);
  Alcotest.(check int) "every request accounted for" !O.sent
    (!O.ok + !O.shed + !O.fast_fail + !O.skipped);
  Alcotest.(check bool) "goodput survives overload" true (!O.ok > 0);
  Alcotest.(check bool) "excess load was shed" true (!O.shed > 0);
  Alcotest.(check int) "workload sheds = server load sheds" !O.shed
    r.Robust.shed_load;
  Alcotest.(check bool) "no unexplained giveups" true
    (r.Robust.giveups <= r.Robust.timeouts);
  match Machine.trace m with
  | None -> Alcotest.fail "trace expected"
  | Some tr ->
      let dists = Hare_experiments.Driver.latencies_of_trace tr in
      Alcotest.(check bool) "latency classes present" true (dists <> []);
      List.iter
        (fun (cls, d) ->
          Alcotest.(check bool) (cls ^ " has samples") true (d.Latency.n > 0);
          Alcotest.(check bool) (cls ^ " p99 ordered") true
            (d.Latency.p50 <= d.Latency.p99 && d.Latency.p99 <= d.Latency.lmax))
        dists

let test_crash_trips_breakers () =
  (* A mid-run server crash under load: breakers must open (fast-fails
     follow), then close again after the restart — the probe path. *)
  let config =
    {
      (overload_config ()) with
      Config.fault_plan = "crash:0@2000000+1500000";
      seed = 1L;
    }
  in
  let m = run_overload_machine config in
  let r = Machine.robustness m in
  Alcotest.(check int) "one crash" 1 r.Robust.crashes;
  Alcotest.(check int) "one restart" 1 r.Robust.restarts;
  Alcotest.(check bool) "breakers opened" true (r.Robust.breaker_opens > 0);
  Alcotest.(check bool) "probes admitted" true
    (r.Robust.breaker_half_opens > 0);
  Alcotest.(check bool) "breakers closed after recovery" true
    (r.Robust.breaker_closes > 0);
  Alcotest.(check bool) "open breakers fast-failed callers" true
    (r.Robust.fast_fails > 0);
  Alcotest.(check bool) "the run still made progress" true (!O.ok > 0)

let suites =
  [
    ( "overload",
      [
        Alcotest.test_case "bqueue empty pop blocks" `Quick
          test_bqueue_empty_pop_blocks;
        Alcotest.test_case "bqueue empty nonblocking" `Quick
          test_bqueue_empty_nonblocking;
        Alcotest.test_case "bqueue full push blocks" `Quick
          test_bqueue_full_push_blocks;
        Alcotest.test_case "bqueue push_overflow" `Quick
          test_bqueue_push_overflow_never_blocks;
        Alcotest.test_case "bqueue wait_not_full" `Quick
          test_bqueue_wait_not_full;
        Alcotest.test_case "mailbox credit gate" `Quick
          test_mailbox_credit_gate;
        Alcotest.test_case "recv_many short batch" `Quick
          test_mailbox_recv_many_short_batch;
        Alcotest.test_case "Robust.reset" `Quick test_robust_reset;
        Alcotest.test_case "latency percentiles" `Quick
          test_latency_percentiles;
        Alcotest.test_case "latency classes" `Quick test_latency_classes;
        Alcotest.test_case "backoff deterministic per seed" `Quick
          test_backoff_deterministic_per_seed;
        Alcotest.test_case "idle knobs are zero-perturbation" `Quick
          test_knobs_on_but_idle_is_bit_identical;
        Alcotest.test_case "graceful degradation at saturation" `Quick
          test_graceful_degradation_at_saturation;
        Alcotest.test_case "crash trips breakers" `Quick
          test_crash_trips_breakers;
      ] );
  ]
