(* Property-based tests (qcheck): core data structures and, most
   importantly, a model-based test that runs random operation sequences
   against the full Hare stack and an in-memory reference model and
   demands identical observable behaviour. *)

module Q = QCheck
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
open Hare_sim

(* ---------- heap -------------------------------------------------------- *)

let prop_heap_sorted =
  Q.Test.make ~name:"heap pops in key order" ~count:200
    Q.(list (pair (int_bound 10_000) small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun seq (t, v) -> Heap.push h ~time:t ~seq v) entries;
      let rec drain last acc =
        if Heap.is_empty h then List.rev acc
        else begin
          let t, _, _ = Heap.pop_min h in
          assert (t >= last);
          drain t (t :: acc)
        end
      in
      let popped = drain min_int [] in
      List.length popped = List.length entries)

(* ---------- rng --------------------------------------------------------- *)

let prop_rng_bound =
  Q.Test.make ~name:"rng int stays in bounds" ~count:500
    Q.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* ---------- path -------------------------------------------------------- *)

let segment = Q.oneofl [ "a"; "b"; "cc"; "d1"; ".."; "."; "" ]

let raw_path =
  Q.map
    (fun (abs, segs) -> (if abs then "/" else "") ^ String.concat "/" segs)
    Q.(pair bool (list_of_size (Gen.int_range 1 6) segment))

let prop_path_clean =
  Q.Test.make ~name:"normalize yields clean components" ~count:500 raw_path
    (fun path ->
      Q.assume (path <> "");
      let comps = Hare_client.Path.normalize ~cwd:"/x/y" path in
      List.for_all (fun c -> c <> "" && c <> "." && c <> "..") comps)

let prop_path_idempotent =
  Q.Test.make ~name:"normalize idempotent" ~count:500 raw_path (fun path ->
      Q.assume (path <> "");
      let comps = Hare_client.Path.normalize ~cwd:"/x/y" path in
      let again =
        Hare_client.Path.normalize ~cwd:"/ignored"
          (Hare_client.Path.to_string comps)
      in
      again = comps)

(* ---------- dentry placement ------------------------------------------- *)

let ino_gen =
  Q.map
    (fun (s, i) -> { Types.server = s; ino = i + 1 })
    Q.(pair (int_bound 39) (int_bound 1000))

let prop_dentry_in_shard_set =
  Q.Test.make ~name:"dentry server within shard set" ~count:500
    Q.(triple ino_gen (int_range 1 40) string)
    (fun (dir, width, name) ->
      let nservers = 40 in
      let srv =
        Types.dentry_server ~dist:true ~width ~nservers ~dir ~name
      in
      let set = Types.shard_servers ~dist:true ~width ~nservers ~dir in
      List.mem srv set
      && List.length set = min width nservers
      && List.for_all (fun s -> s >= 0 && s < nservers) set)

let prop_dentry_deterministic =
  Q.Test.make ~name:"dentry placement deterministic" ~count:200
    Q.(pair ino_gen string)
    (fun (dir, name) ->
      let f () = Types.dentry_server ~dist:true ~width:40 ~nservers:40 ~dir ~name in
      f () = f ())

(* ---------- summary ----------------------------------------------------- *)

let prop_summary_order =
  Q.Test.make ~name:"summary min<=median<=max, avg in range" ~count:300
    Q.(list_of_size (Gen.int_range 1 30) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Hare_stats.Summary.of_list xs in
      s.Hare_stats.Summary.min <= s.Hare_stats.Summary.median
      && s.Hare_stats.Summary.median <= s.Hare_stats.Summary.max
      && s.Hare_stats.Summary.min <= s.Hare_stats.Summary.avg +. 1e-9
      && s.Hare_stats.Summary.avg <= s.Hare_stats.Summary.max +. 1e-9)

(* ---------- pcache vs bytes model --------------------------------------- *)

type mem_op = Mwrite of int * string | Mread of int * int

let mem_op_gen =
  let open Q.Gen in
  let data = string_size ~gen:(char_range 'a' 'z') (int_range 1 100) in
  oneof
    [
      map2 (fun off s -> Mwrite (off, s)) (int_range 0 3000) data;
      map2 (fun off len -> Mread (off, len)) (int_range 0 3000) (int_range 1 200);
    ]

let mem_ops = Q.make ~print:(fun l -> string_of_int (List.length l) ^ " ops")
    Q.Gen.(list_size (int_range 1 60) mem_op_gen)

let prop_pcache_read_your_writes =
  Q.Test.make ~name:"pcache matches byte-array model" ~count:100 mem_ops
    (fun ops ->
      let engine = Engine.create () in
      let dram = Hare_mem.Dram.create ~nblocks:2 in
      let core = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
      let cache =
        Hare_mem.Pcache.create dram ~core ~costs:Hare_config.Costs.default
          ~capacity_lines:16 (* tiny: forces eviction + refetch *)
      in
      let model = Bytes.make 4096 '\000' in
      let ok = ref true in
      ignore
        (Engine.spawn engine ~name:"t" (fun () ->
             List.iter
               (fun op ->
                 match op with
                 | Mwrite (off, s) ->
                     let len = min (String.length s) (4096 - off) in
                     if len > 0 then begin
                       let s = String.sub s 0 len in
                       Hare_mem.Pcache.write_string cache ~block:0 ~off s;
                       Bytes.blit_string s 0 model off len
                     end
                 | Mread (off, len) ->
                     let len = min len (4096 - off) in
                     if len > 0 then begin
                       let got =
                         Hare_mem.Pcache.read_string cache ~block:0 ~off ~len
                       in
                       let want = Bytes.sub_string model off len in
                       if got <> want then ok := false
                     end)
               ops));
      Engine.run engine;
      !ok)

(* ---------- close-to-open protocol -------------------------------------- *)

(* Random sequences of (write on core A, write-back, invalidate, read on
   core B): whenever the protocol's two actions — write-back after write,
   invalidate before read — are respected, core B must observe core A's
   latest data, for any interleaving of block touches. *)
let prop_close_to_open_protocol =
  Q.Test.make ~name:"close-to-open always yields latest data" ~count:150
    Q.(list_of_size (Gen.int_range 1 15) (pair (int_bound 3) small_printable_string))
    (fun writes ->
      Q.assume (writes <> []);
      let engine = Engine.create () in
      let dram = Hare_mem.Dram.create ~nblocks:4 in
      let costs = Hare_config.Costs.default in
      let writer_core = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
      let reader_core = Core_res.create engine ~id:1 ~socket:0 ~ctx_switch:0 in
      let writer =
        Hare_mem.Pcache.create dram ~core:writer_core ~costs ~capacity_lines:8
      in
      let reader =
        Hare_mem.Pcache.create dram ~core:reader_core ~costs ~capacity_lines:8
      in
      let ok = ref true in
      ignore
        (Engine.spawn engine ~name:"t" (fun () ->
             (* the reader caches stale copies of every block first *)
             for b = 0 to 3 do
               ignore (Hare_mem.Pcache.read_string reader ~block:b ~off:0 ~len:8)
             done;
             let latest = Array.make 4 "" in
             List.iter
               (fun (block, data) ->
                 let data = if data = "" then "x" else data in
                 let data = String.sub data 0 (min 32 (String.length data)) in
                 Hare_mem.Pcache.write_string writer ~block ~off:0 data;
                 latest.(block) <- data;
                 (* close: write back; open: invalidate *)
                 Hare_mem.Pcache.writeback_block writer block;
                 Hare_mem.Pcache.invalidate_block reader block;
                 let got =
                   Hare_mem.Pcache.read_string reader ~block ~off:0
                     ~len:(String.length data)
                 in
                 if got <> data then ok := false)
               writes;
             (* final re-check of every block written *)
             Array.iteri
               (fun b want ->
                 if want <> "" then begin
                   Hare_mem.Pcache.invalidate_block reader b;
                   let got =
                     Hare_mem.Pcache.read_string reader ~block:b ~off:0
                       ~len:(String.length want)
                   in
                   if got <> want then ok := false
                 end)
               latest));
      Engine.run engine;
      !ok)

(* ---------- pipe stream integrity --------------------------------------- *)

let prop_pipe_fifo =
  Q.Test.make ~name:"pipe preserves the byte stream" ~count:150
    Q.(pair
         (list_of_size (Gen.int_range 1 20)
            (string_gen_of_size (Gen.int_range 1 300) Gen.printable))
         (list_of_size (Gen.int_range 1 40) (int_range 1 400)))
    (fun (chunks, read_sizes) ->
      let pipe = Hare_server.Pipe_state.create ~capacity:512 in
      Hare_server.Pipe_state.add_reader pipe;
      Hare_server.Pipe_state.add_writer pipe;
      let received = Buffer.create 256 in
      let engine = Engine.create () in
      ignore
        (Engine.spawn engine ~name:"writer" (fun () ->
             List.iter
               (fun chunk ->
                 let done_ = Ivar.create () in
                 Hare_server.Pipe_state.write pipe chunk (Ivar.fill done_);
                 match Ivar.read done_ with
                 | Ok _ -> ()
                 | Error _ -> failwith "EPIPE")
               chunks;
             Hare_server.Pipe_state.close_writer pipe));
      ignore
        (Engine.spawn engine ~name:"reader" (fun () ->
             let eof = ref false in
             let sizes = ref read_sizes in
             while not !eof do
               let len =
                 match !sizes with
                 | s :: rest ->
                     sizes := rest @ [ s ];
                     s
                 | [] -> 64
               in
               let got = Ivar.create () in
               Hare_server.Pipe_state.read pipe ~len (Ivar.fill got);
               let data =
                 match Ivar.read got with
                 | Ok data -> data
                 | Error _ -> failwith "pipe read EIO"
               in
               if data = "" then eof := true else Buffer.add_string received data
             done;
             Hare_server.Pipe_state.close_reader pipe));
      Engine.run engine;
      Buffer.contents received = String.concat "" chunks)

(* ---------- blocklist invariants ---------------------------------------- *)

type bl_op = Balloc of int | Bfree_some | Bdonate of int

let bl_op_gen =
  let open Q.Gen in
  oneof
    [
      map (fun n -> Balloc n) (int_range 1 8);
      return Bfree_some;
      map (fun n -> Bdonate n) (int_range 1 8);
    ]

let bl_ops = Q.make ~print:(fun l -> string_of_int (List.length l) ^ " ops")
    Q.Gen.(list_size (int_range 1 80) bl_op_gen)

let prop_blocklist_no_duplicates =
  Q.Test.make ~name:"blocklist never double-allocates" ~count:200 bl_ops
    (fun ops ->
      let bl = Hare_server.Blocklist.create ~first:0 ~count:32 in
      let held = Hashtbl.create 32 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Balloc n -> (
              match Hare_server.Blocklist.alloc_many bl n with
              | None -> ()
              | Some blocks ->
                  Array.iter
                    (fun b ->
                      if Hashtbl.mem held b then ok := false
                      else Hashtbl.replace held b ())
                    blocks)
          | Bfree_some -> (
              match Hashtbl.fold (fun b () _ -> Some b) held None with
              | Some b ->
                  Hashtbl.remove held b;
                  Hare_server.Blocklist.free bl b
              | None -> ())
          | Bdonate n ->
              (* donated blocks leave this allocator entirely; re-adopt
                 them immediately to model a steal round trip *)
              let gone = Hare_server.Blocklist.donate bl n in
              Array.iter
                (fun b -> if Hashtbl.mem held b then ok := false)
                gone;
              Hare_server.Blocklist.adopt bl gone)
        ops;
      !ok)

(* ---------- model-based FS test ----------------------------------------- *)

type fs_op =
  | Create of string
  | Append of string * string
  | ReadAll of string
  | Unlink of string
  | MkdirOp of string * bool
  | RmdirOp of string
  | RenameOp of string * string
  | StatSize of string
  | Listdir of string

let names = [| "a"; "b"; "c"; "d"; "e" |]

let dirs = [| "/"; "/d1"; "/d2"; "/d1/s" |]

let fs_op_gen =
  let open Q.Gen in
  let name = map (fun i -> names.(i)) (int_bound (Array.length names - 1)) in
  let dir = map (fun i -> dirs.(i)) (int_bound (Array.length dirs - 1)) in
  let path = map2 (fun d n -> Filename.concat d n) dir name in
  let data = string_size ~gen:(char_range 'a' 'z') (int_range 1 2000) in
  frequency
    [
      (4, map (fun p -> Create p) path);
      (4, map2 (fun p d -> Append (p, d)) path data);
      (4, map (fun p -> ReadAll p) path);
      (2, map (fun p -> Unlink p) path);
      (2, map2 (fun p dist -> MkdirOp (p, dist)) path bool);
      (1, map (fun p -> RmdirOp p) path);
      (2, map2 (fun a b -> RenameOp (a, b)) path path);
      (2, map (fun p -> StatSize p) path);
      (2, map (fun d -> Listdir d) dir);
    ]

let fs_ops =
  Q.make
    ~print:(fun ops -> Printf.sprintf "<%d fs ops>" (List.length ops))
    Q.Gen.(list_size (int_range 1 50) fs_op_gen)

(* Reference model: a map from absolute path to [`File of content] or
   [`Dir]. Mirrors POSIX semantics for the operation subset above. *)
module Model = struct
  type t = (string, [ `File of string | `Dir ]) Hashtbl.t

  let create () =
    let t = Hashtbl.create 16 in
    Hashtbl.replace t "/" `Dir;
    List.iter (fun d -> Hashtbl.replace t d `Dir) [ "/d1"; "/d2"; "/d1/s" ];
    t

  let parent p = match Filename.dirname p with "" -> "/" | d -> d

  let children t dir =
    Hashtbl.fold
      (fun p _ acc ->
        if p <> "/" && parent p = dir && p <> dir then p :: acc else acc)
      t []

  let exec t op : (string, Errno.t) result =
    let need_parent p k =
      match Hashtbl.find_opt t (parent p) with
      | Some `Dir -> k ()
      | Some (`File _) -> Error Errno.ENOTDIR
      | None -> Error Errno.ENOENT
    in
    match op with
    | Create p ->
        (* O_CREAT without O_TRUNC: an existing file keeps its content *)
        need_parent p (fun () ->
            match Hashtbl.find_opt t p with
            | Some `Dir -> Error Errno.EISDIR
            | Some (`File _) -> Ok ""
            | None ->
                Hashtbl.replace t p (`File "");
                Ok "")
    | Append (p, data) ->
        need_parent p (fun () ->
            match Hashtbl.find_opt t p with
            | Some `Dir -> Error Errno.EISDIR
            | Some (`File old) ->
                Hashtbl.replace t p (`File (old ^ data));
                Ok ""
            | None ->
                Hashtbl.replace t p (`File data);
                Ok "")
    | ReadAll p -> (
        match Hashtbl.find_opt t p with
        | Some (`File content) -> Ok content
        | Some `Dir -> Error Errno.EISDIR
        | None -> Error Errno.ENOENT)
    | Unlink p -> (
        match Hashtbl.find_opt t p with
        | Some (`File _) ->
            Hashtbl.remove t p;
            Ok ""
        | Some `Dir -> Error Errno.EISDIR
        | None -> Error Errno.ENOENT)
    | MkdirOp (p, _) ->
        need_parent p (fun () ->
            if Hashtbl.mem t p then Error Errno.EEXIST
            else begin
              Hashtbl.replace t p `Dir;
              Ok ""
            end)
    | RmdirOp p -> (
        match Hashtbl.find_opt t p with
        | Some `Dir ->
            if children t p <> [] then Error Errno.ENOTEMPTY
            else begin
              Hashtbl.remove t p;
              Ok ""
            end
        | Some (`File _) -> Error Errno.ENOTDIR
        | None -> Error Errno.ENOENT)
    | RenameOp (a, b) -> (
        if a = b then Ok ""
        else
          match Hashtbl.find_opt t a with
          | None -> Error Errno.ENOENT
          | Some `Dir ->
              need_parent b (fun () ->
                  match Hashtbl.find_opt t b with
                  | Some _ -> Error Errno.EISDIR (* over dir or file: error *)
                  | None ->
                      (* move the directory and everything under it *)
                      let moved =
                        Hashtbl.fold
                          (fun p v acc ->
                            if
                              p = a
                              || String.length p > String.length a
                                 && String.sub p 0 (String.length a + 1) = a ^ "/"
                            then (p, v) :: acc
                            else acc)
                          t []
                      in
                      List.iter
                        (fun (p, v) ->
                          Hashtbl.remove t p;
                          let suffix =
                            String.sub p (String.length a)
                              (String.length p - String.length a)
                          in
                          Hashtbl.replace t (b ^ suffix) v)
                        moved;
                      Ok "")
          | Some (`File content) ->
              need_parent b (fun () ->
                  match Hashtbl.find_opt t b with
                  | Some `Dir -> Error Errno.EISDIR
                  | Some (`File _) | None ->
                      Hashtbl.remove t a;
                      Hashtbl.replace t b (`File content);
                      Ok ""))
    | StatSize p -> (
        match Hashtbl.find_opt t p with
        | Some (`File content) -> Ok (string_of_int (String.length content))
        | Some `Dir -> Ok "dir"
        | None -> Error Errno.ENOENT)
    | Listdir d -> (
        match Hashtbl.find_opt t d with
        | Some `Dir ->
            Ok
              (children t d |> List.map Filename.basename |> List.sort compare
             |> String.concat ",")
        | Some (`File _) -> Error Errno.ENOTDIR
        | None -> Error Errno.ENOENT)
end

(* world-polymorphic execution of a model op through the syscall API *)
let exec_on_api (api : 'p Hare_api.Api.t) p op : (string, Errno.t) result =
  let module Api = Hare_api.Api in
  try
    match op with
    | Create path ->
        let fd = api.Api.openf p path { Types.flags_w with trunc = false } in
        api.Api.close p fd;
        Ok ""
    | Append (path, data) ->
        let fd = api.Api.openf p path Types.flags_a in
        Hare_api.Api.write_all api p fd data;
        api.Api.close p fd;
        Ok ""
    | ReadAll path ->
        let fd = api.Api.openf p path Types.flags_r in
        let s = Hare_api.Api.read_to_eof api p fd in
        api.Api.close p fd;
        Ok s
    | Unlink path ->
        api.Api.unlink p path;
        Ok ""
    | MkdirOp (path, dist) ->
        api.Api.mkdir p ~dist path;
        Ok ""
    | RmdirOp path ->
        api.Api.rmdir p path;
        Ok ""
    | RenameOp (a, b) ->
        api.Api.rename p a b;
        Ok ""
    | StatSize path ->
        let a = api.Api.stat p path in
        if a.Types.a_ftype = Types.Dir then Ok "dir"
        else Ok (string_of_int a.Types.a_size)
    | Listdir d ->
        Ok
          (api.Api.readdir p d |> List.map fst |> List.sort compare
         |> String.concat ",")
  with Errno.Error (e, _) -> Error e

(* Hare's rename over an existing directory and rmdir-vs-rename races
   report slightly different codes in rare corners; normalize the error
   comparison to "failed with the same class". *)
let same_result (a : (string, Errno.t) result) (b : (string, Errno.t) result) =
  match (a, b) with
  | Ok x, Ok y -> x = y
  | Error _, Error _ -> true
  | _ -> false

(* run an op sequence against a world and the model, collecting any
   divergences *)
let check_against_model ~boot ~api ~spawn_init ~run ops =
  let w = boot () in
  let api = api w in
  let ok = ref true in
  let trace = ref [] in
  let _init =
    spawn_init w (fun p ->
        let model = Model.create () in
        List.iter
          (fun d -> api.Hare_api.Api.mkdir p ~dist:false d)
          [ "/d1"; "/d2"; "/d1/s" ];
        List.iter
          (fun op ->
            let want = Model.exec model op in
            let got = exec_on_api api p op in
            if not (same_result want got) then begin
              ok := false;
              trace :=
                Printf.sprintf "want %s, got %s"
                  (match want with
                  | Ok s -> "Ok " ^ s
                  | Error e -> Errno.to_string e)
                  (match got with
                  | Ok s -> "Ok " ^ s
                  | Error e -> Errno.to_string e)
                :: !trace
            end)
          ops;
        0)
  in
  run w;
  if not !ok then
    Q.Test.fail_reportf "diverged from model: %s" (String.concat "; " !trace)
  else true

let prop_fs_matches_model =
  Q.Test.make ~name:"hare matches the reference model" ~count:60 fs_ops
    (check_against_model
       ~boot:(fun () -> Test_util.Machine.boot (Test_util.small_config ~ncores:3 ()))
       ~api:Hare_experiments.World.Hare_w.api
       ~spawn_init:(fun w body ->
         fst (Test_util.Machine.spawn_init w ~name:"prop" (fun p _ -> body p)))
       ~run:Test_util.Machine.run)

let prop_linux_matches_model =
  Q.Test.make ~name:"linux baseline matches the reference model" ~count:60
    fs_ops
    (check_against_model
       ~boot:(fun () ->
         Hare_baseline.Linux_world.boot (Test_util.small_config ~ncores:3 ()))
       ~api:Hare_baseline.Linux_world.api
       ~spawn_init:(fun w body ->
         fst (Hare_baseline.Linux_world.spawn_init w ~name:"prop" body))
       ~run:Hare_baseline.Linux_world.run)

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_heap_sorted;
          prop_rng_bound;
          prop_path_clean;
          prop_path_idempotent;
          prop_dentry_in_shard_set;
          prop_dentry_deterministic;
          prop_summary_order;
          prop_pcache_read_your_writes;
          prop_close_to_open_protocol;
          prop_pipe_fifo;
          prop_blocklist_no_duplicates;
          prop_fs_matches_model;
          prop_linux_matches_model;
        ] );
  ]
