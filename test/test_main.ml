let () =
  Alcotest.run "hare"
    (List.concat
       [
         Test_sim.suites;
         Test_mem.suites;
         Test_msg.suites;
         Test_fs.suites;
         Test_proc.suites;
         Test_workloads.suites;
         Test_extensions.suites;
         Test_props.suites;
         Test_baseline.suites;
         Test_client.suites;
         Test_figures.suites;
         Test_misc.suites;
         Test_server_protocol.suites;
         Test_stress.suites;
         Test_fault.suites;
         Test_pipeline.suites;
         Test_workload_outputs.suites;
         Test_exec_chain.suites;
         Test_posix_edge.suites;
         Test_trace.suites;
         Test_check.suites;
         Test_overload.suites;
         Test_shard.suites;
       ])
