(* Every paper benchmark must run to completion on every world — the
   reproduction of the paper's "runs unmodified POSIX applications"
   claim — and report sane measurements. *)

module Spec = Hare_workloads.Spec
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module HareD = Driver.Make (World.Hare_w)
module LinuxD = Driver.Make (World.Linux_w)

let config = Driver.default_config ~ncores:4

let check_result (r : Driver.result) =
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s elapsed > 0" r.Driver.world r.Driver.bench)
    true
    (r.Driver.elapsed > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s throughput > 0" r.Driver.world r.Driver.bench)
    true
    (r.Driver.throughput > 0.0)

let hare_case (spec : Spec.t) () = check_result (HareD.run ~config spec)

let linux_case (spec : Spec.t) () = check_result (LinuxD.run ~config spec)

let unfs_case () =
  let cfg = World.unfs_config (Driver.default_config ~ncores:2) in
  let r = HareD.run ~config:cfg ~nprocs:1 (Hare_workloads.All.find "creates") in
  check_result r;
  (* loopback messaging must make it much slower than plain hare *)
  let plain =
    HareD.run
      ~config:(Driver.default_config ~ncores:2)
      ~nprocs:1
      (Hare_workloads.All.find "creates")
  in
  Alcotest.(check bool)
    (Printf.sprintf "unfs (%.0f ops/s) slower than hare (%.0f ops/s)"
       r.Driver.throughput plain.Driver.throughput)
    true
    (r.Driver.throughput < plain.Driver.throughput)

let scaling_sanity () =
  (* More cores must not make the trivially-parallel benchmark slower. *)
  let one =
    HareD.run ~config:(Driver.default_config ~ncores:1) ~nprocs:1
      (Hare_workloads.All.find "creates")
  in
  let four =
    HareD.run ~config:(Driver.default_config ~ncores:4) ~nprocs:4
      (Hare_workloads.All.find "creates")
  in
  Alcotest.(check bool)
    (Printf.sprintf "4-core (%.0f) beats 1-core (%.0f)" four.Driver.throughput
       one.Driver.throughput)
    true
    (four.Driver.throughput > one.Driver.throughput)

let dist_off_still_correct () =
  let cfg =
    { (Driver.default_config ~ncores:4) with
      Hare_config.Config.dir_distribution = false;
      dir_broadcast = false;
      direct_access = false;
      dir_cache = false;
      creation_affinity = false
    }
  in
  check_result (HareD.run ~config:cfg (Hare_workloads.All.find "mailbench"))

(* Golden simulated clocks: every workload's timed region, in cycles,
   for the default seed. The engine overhaul (fiber pruning, probe
   slots, flat attribution contexts, [Sleep_cycles]) is host-side only;
   any change to these numbers means a scheduling-order perturbation
   leaked into the simulation, which would silently invalidate every
   figure. Regenerate deliberately (and say why in the commit) with the
   formula below if a simulated-cost change is intended. *)
let golden_clocks =
  [
    ("creates", 4, 1, 1, 1, 6447400L);
    ("writes", 4, 1, 1, 1, 4791250L);
    ("renames", 4, 1, 1, 1, 3045100L);
    ("directories", 4, 1, 1, 1, 6868050L);
    ("rm dense", 4, 1, 1, 1, 15646950L);
    ("rm sparse", 4, 1, 1, 1, 3793800L);
    ("pfind dense", 4, 1, 1, 1, 30209420L);
    ("pfind sparse", 4, 1, 1, 1, 9425410L);
    ("extract", 4, 1, 1, 1, 1931535L);
    ("punzip", 4, 1, 1, 1, 1650172L);
    ("mailbench", 4, 1, 1, 1, 9496882L);
    ("fsstress", 4, 1, 1, 1, 7905119L);
    ("build linux", 4, 1, 1, 1, 142055979L);
    ("overload", 4, 1, 1, 1, 6286924L);
    ("creates", 4, 8, 8, 8, 5476600L);
    ("writes", 4, 8, 8, 8, 3790450L);
    ("creates", 8, 1, 1, 1, 6943200L);
    ("writes", 8, 1, 1, 1, 5880650L);
  ]

let golden_determinism () =
  List.iter
    (fun (name, ncores, window, batch, extent, expect) ->
      let config =
        {
          (Driver.default_config ~ncores) with
          Hare_config.Config.rpc_window = window;
          batch_max = batch;
          alloc_extent = extent;
        }
      in
      let r = HareD.run ~config (Hare_workloads.All.find name) in
      let cycles =
        Int64.of_float
          (r.Driver.elapsed
           *. float_of_int
                config.Hare_config.Config.costs.Hare_config.Costs.cycles_per_us
           *. 1e6
          +. 0.5)
      in
      Alcotest.(check int64)
        (Printf.sprintf "%s @%d cores (window=%d batch=%d extent=%d)" name
           ncores window batch extent)
        expect cycles)
    golden_clocks

(* The exploration hook's zero-perturbation contract (PR 10): with a
   trivial explorer attached (always ordinal 0), every same-cycle tie is
   routed through the choice-point plumbing, yet the simulated clock
   must stay bit-identical to the unexplored golden value. *)
let golden_with_null_explorer () =
  let name, ncores, expect = ("creates", 4, 6447400L) in
  let config =
    {
      (Driver.default_config ~ncores) with
      Hare_config.Config.rpc_window = 1;
      batch_max = 1;
      alloc_extent = 1;
    }
  in
  let r =
    HareD.run ~config ~null_explorer:true (Hare_workloads.All.find name)
  in
  let cycles =
    Int64.of_float
      (r.Driver.elapsed
       *. float_of_int
            config.Hare_config.Config.costs.Hare_config.Costs.cycles_per_us
       *. 1e6
      +. 0.5)
  in
  Alcotest.(check int64) "creates @4 cores under a null explorer" expect cycles

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "workloads.hare",
      List.map
        (fun (s : Spec.t) -> tc s.Spec.name `Quick (hare_case s))
        Hare_workloads.All.specs );
    ( "workloads.linux",
      List.map
        (fun (s : Spec.t) -> tc s.Spec.name `Quick (linux_case s))
        Hare_workloads.All.specs );
    ( "workloads.misc",
      [
        tc "unfs slower" `Quick unfs_case;
        tc "scaling sanity" `Quick scaling_sanity;
        tc "all techniques off" `Quick dist_off_still_correct;
        tc "golden simulated clocks" `Quick golden_determinism;
        tc "golden clock under null explorer" `Quick golden_with_null_explorer;
      ] );
  ]
