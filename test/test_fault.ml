(* Fault injection end-to-end: deterministic fault plans, RPC
   timeout/retry with exactly-once dedup, and file-server
   crash-recovery. The core check throughout: a workload run under a
   fault plan produces the same file-system tree as the fault-free
   oracle — faults cost retries and recovery work, never correctness. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Wire = Hare_proto.Wire
module Api = Hare_api.Api
module World = Hare_experiments.World
module Robust = Hare_stats.Robust
module Plan = Hare_fault.Plan
module Spec = Hare_workloads.Spec

(* ---------- plan parsing ------------------------------------------------ *)

let test_plan_parse () =
  let p =
    Plan.parse_exn "drop:fs:0.05; dup:fs1:0.02; delay:fs:0.1:4000; crash:1@200000+150000; stall:2@5000+800"
  in
  Alcotest.(check int) "rules" 3 (List.length p.Plan.rules);
  Alcotest.(check int) "events" 2 (List.length p.Plan.events);
  (* canonical string round-trips *)
  let s = Plan.to_string p in
  Alcotest.(check string) "round-trip" s (Plan.to_string (Plan.parse_exn s));
  Alcotest.(check bool) "empty" true (Plan.is_empty (Plan.parse_exn "  "));
  let bad spec =
    match Plan.parse spec with
    | Ok _ -> Alcotest.fail ("accepted: " ^ spec)
    | Error _ -> ()
  in
  bad "drop:fs:1.5";
  bad "drop:disk:0.1";
  bad "flip:fs:0.1";
  bad "crash:1";
  bad "stall:1@50";
  bad "delay:fs:0.1"

(* ---------- soak harness ------------------------------------------------ *)

let soak_config ?(plan = "") ?(deadline = 0) ?(retries = 12) ?(partial = true)
    () =
  {
    (small_config ~ncores:4 ()) with
    Config.fault_plan = plan;
    rpc_deadline = deadline;
    rpc_retries = retries;
    partial_broadcast = partial;
    seed = 42L;
  }

(* Canonical snapshot of the whole tree: sorted paths, with sizes and a
   content hash for regular files. *)
let rec snapshot p path acc =
  let entries =
    List.sort compare
      (List.map
         (fun (e : Wire.entry) -> (e.Wire.e_name, e.Wire.e_ftype))
         (Posix.readdir p path))
  in
  List.fold_left
    (fun acc (name, (ft : Types.ftype)) ->
      let full = (if path = "/" then "" else path) ^ "/" ^ name in
      match ft with
      | Types.Dir -> snapshot p full ((full ^ "/") :: acc)
      | Types.Reg ->
          let fd = Posix.openf p full flags_r in
          let data = Posix.read_all p fd in
          Posix.close p fd;
          Printf.sprintf "%s #%d %d" full (String.length data)
            (Hashtbl.hash data)
          :: acc
      | Types.Fifo -> (full ^ " |") :: acc)
    acc entries

(* Run the paper's fsstress benchmark (every worker in its own subtree)
   on a machine booted with [config]; return the final tree, the merged
   robustness counters, the final simulated time and the machine for
   post-mortem counter inspection. *)
let run_fsstress config =
  let m = Machine.boot config in
  let api = World.Hare_w.api m in
  let spec = Hare_workloads.All.find "fsstress" in
  let nprocs = List.length (Config.app_cores config) in
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let tree = ref [] in
  let init, _ =
    Machine.spawn_init m ~name:"soak" (fun p _ ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        let bad = List.filter (fun pid -> Posix.waitpid p pid <> 0) pids in
        if bad <> [] then List.length bad
        else begin
          tree := List.rev (snapshot p "/" []);
          0
        end)
  in
  let probes0 = Hare_sim.Engine.probe_count (Machine.engine m) in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "soak workers all ok" (Some 0)
    (Machine.exit_status m init);
  (* Crashed servers unwatch their queue-depth probes and restarts
     rewatch them; every fault plan here restarts, so the registry must
     end exactly where it began (no leaked or lost probe slots). *)
  Alcotest.(check int) "probe registry restored" probes0
    (Hare_sim.Engine.probe_count (Machine.engine m));
  (!tree, Machine.robustness m, Machine.now m, m)

(* The fault-free oracle, computed once and shared by every soak case. *)
let oracle = lazy (run_fsstress (soak_config ()))

let check_tree name faulted =
  let expect, _, _, _ = Lazy.force oracle in
  Alcotest.(check (list string)) (name ^ ": tree matches oracle") expect faulted

(* ---------- soak cases -------------------------------------------------- *)

let test_fault_free_counters () =
  let _, robust, _, _ = Lazy.force oracle in
  Alcotest.(check bool)
    (Fmt.str "no fault plan => all counters zero (got: %a)" Robust.pp robust)
    true (Robust.is_zero robust)

let test_machinery_armed_but_idle () =
  (* Deadlines and dedup tags on, but an empty plan: nothing may change
     in the produced state and no fault counter may move. *)
  let tree, robust, _, _ = run_fsstress (soak_config ~deadline:1_000_000 ()) in
  check_tree "armed-idle" tree;
  Alcotest.(check bool)
    (Fmt.str "empty plan => counters zero (got: %a)" Robust.pp robust)
    true (Robust.is_zero robust)

let lossy_config () =
  soak_config ~plan:"drop:fs:0.04;dup:fs:0.04;delay:fs:0.06:4000"
    ~deadline:25_000 ()

let test_message_faults () =
  let tree, r, _, _ = run_fsstress (lossy_config ()) in
  check_tree "lossy" tree;
  Alcotest.(check bool) "some drops" true (r.Robust.drops > 0);
  Alcotest.(check bool) "some dups" true (r.Robust.dups > 0);
  Alcotest.(check bool) "some delays" true (r.Robust.delays > 0);
  Alcotest.(check bool) "timeouts seen" true (r.Robust.timeouts > 0);
  Alcotest.(check bool) "retries recovered them" true (r.Robust.retries > 0);
  Alcotest.(check int) "nobody gave up" 0 r.Robust.giveups

let test_determinism () =
  (* Same seed, same plan: bit-identical fault sequence, counters and
     final clock. *)
  let tree1, r1, end1, _ = run_fsstress (lossy_config ()) in
  let tree2, r2, end2, _ = run_fsstress (lossy_config ()) in
  Alcotest.(check (list string)) "same tree" tree1 tree2;
  Alcotest.(check bool)
    (Fmt.str "same counters (%a vs %a)" Robust.pp r1 Robust.pp r2)
    true (Robust.equal r1 r2);
  Alcotest.(check int64) "same final cycle" end1 end2

let test_dedup_exactly_once () =
  (* Duplicate every single request: without (client, seq) dedup this
     would double-apply creates and unlinks everywhere. *)
  let tree, r, _, _ =
    run_fsstress (soak_config ~plan:"dup:fs:1.0" ~deadline:50_000 ())
  in
  check_tree "dup-everything" tree;
  Alcotest.(check bool) "dedup absorbed the copies" true
    (r.Robust.dedup_hits > 0)

let test_dedup_bounded () =
  (* The cumulative-ack low-water mark riding every tagged request must
     actually evict server dedup entries — otherwise the table grows
     with every RPC for the life of the client. An idle-armed run (tags
     on, no faults) already acks continuously, so evictions must be
     plentiful; under heavy duplication they must happen too, without
     breaking exactly-once (checked by test_dedup_exactly_once). *)
  let _, _, _, m = run_fsstress (soak_config ~deadline:1_000_000 ()) in
  Alcotest.(check bool) "acked dedup entries evicted" true
    ((Machine.perf m).Hare_stats.Perf.dedup_evicted > 0)

let test_crash_recovery () =
  (* Kill a file server mid-run for 300k cycles. Clients must ride it
     out with retries and token recovery; the server must rebuild its
     volatile state from the DRAM-resident structures. *)
  let tree, r, _, _ =
    run_fsstress
      (soak_config ~plan:"crash:2@1000000+300000" ~deadline:25_000 ())
  in
  check_tree "crash-recovery" tree;
  Alcotest.(check int) "one crash" 1 r.Robust.crashes;
  Alcotest.(check int) "one restart" 1 r.Robust.restarts;
  Alcotest.(check bool) "retries during the outage" true
    (r.Robust.retries > 0);
  Alcotest.(check bool) "clients flushed dircaches on reconnect" true
    (r.Robust.cache_flushes > 0);
  Alcotest.(check int) "nobody gave up" 0 r.Robust.giveups

(* ---------- targeted cases --------------------------------------------- *)

let test_giveup_is_eio () =
  (* Total packet loss: retries must be bounded and surface EIO. *)
  let config =
    soak_config ~plan:"drop:fs:1.0" ~deadline:2_000 ~retries:3 ()
  in
  let m = Machine.boot config in
  let init, _ =
    Machine.spawn_init m ~name:"giveup" (fun p _ ->
        expect_errno "mkdir under total loss" Errno.EIO (fun () ->
            Posix.mkdir p "/nope");
        0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "init ok" (Some 0) (Machine.exit_status m init);
  let r = Machine.robustness m in
  Alcotest.(check bool) "gave up at least once" true (r.Robust.giveups > 0);
  Alcotest.(check bool) "bounded attempts" true
    (r.Robust.timeouts <= 3 * (1 + r.Robust.giveups))

(* Shared helper: a distributed directory whose shards span every
   server, then server 1 dies for good before the listing. *)
let dead_shard_machine ~partial =
  let config =
    soak_config ~plan:"crash:1@1000000" ~deadline:5_000 ~retries:3 ~partial ()
  in
  let m = Machine.boot config in
  (m, config)

let test_readdir_partial () =
  let m, _ = dead_shard_machine ~partial:true in
  let init, _ =
    Machine.spawn_init m ~name:"partial" (fun p _ ->
        Posix.mkdir p ~dist:true "/d";
        for i = 0 to 15 do
          Posix.close p (Posix.creat p (Printf.sprintf "/d/f%02d" i))
        done;
        let full = List.length (Posix.readdir p "/d") in
        Alcotest.(check int) "all entries before the crash" 16 full;
        Posix.compute p 1_200_000;
        (* server 1 is now gone; its shard's entries drop out *)
        let after = List.length (Posix.readdir p "/d") in
        Alcotest.(check bool)
          (Printf.sprintf "partial listing (%d) is a strict subset" after)
          true
          (after < 16 && after > 0);
        0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "init ok" (Some 0) (Machine.exit_status m init);
  Alcotest.(check bool) "partial broadcasts counted" true
    ((Machine.robustness m).Robust.partial_broadcasts > 0)

let test_readdir_strict_eio () =
  let m, _ = dead_shard_machine ~partial:false in
  let init, _ =
    Machine.spawn_init m ~name:"strict" (fun p _ ->
        Posix.mkdir p ~dist:true "/d";
        for i = 0 to 15 do
          Posix.close p (Posix.creat p (Printf.sprintf "/d/f%02d" i))
        done;
        Posix.compute p 1_200_000;
        expect_errno "readdir with a dead shard" Errno.EIO (fun () ->
            Posix.readdir p "/d");
        0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "init ok" (Some 0) (Machine.exit_status m init)

let test_stall_delays_but_delivers () =
  (* A stalled server freezes delivery without losing anything: with a
     deadline comfortably above the stall, no retries are needed. *)
  let config =
    soak_config ~plan:"stall:0@20000+30000" ~deadline:200_000 ()
  in
  let m = Machine.boot config in
  let init, _ =
    Machine.spawn_init m ~name:"stall" (fun p _ ->
        Posix.compute p 25_000;
        (* inside the stall window; served only after it lifts *)
        Posix.mkdir p "/slow";
        Alcotest.(check bool) "past the stall window" true
          (Hare_sim.Engine.now (Machine.engine m) >= 50_000L);
        0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "init ok" (Some 0) (Machine.exit_status m init);
  let r = Machine.robustness m in
  Alcotest.(check int) "no retries needed" 0 r.Robust.retries

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "fault.plan",
      [ tc "parse + round-trip + rejects" `Quick test_plan_parse ] );
    ( "fault.soak",
      [
        tc "fault-free counters zero" `Quick test_fault_free_counters;
        tc "armed but idle" `Quick test_machinery_armed_but_idle;
        tc "drop/dup/delay" `Quick test_message_faults;
        tc "deterministic replay" `Quick test_determinism;
        tc "dup everything: exactly-once" `Quick test_dedup_exactly_once;
        tc "ack mark bounds the dedup table" `Quick test_dedup_bounded;
        tc "crash + recovery" `Quick test_crash_recovery;
      ] );
    ( "fault.targeted",
      [
        tc "bounded retries give EIO" `Quick test_giveup_is_eio;
        tc "readdir partial results" `Quick test_readdir_partial;
        tc "readdir strict EIO" `Quick test_readdir_strict_eio;
        tc "stall only delays" `Quick test_stall_delays_but_delivers;
      ] );
  ]
