(* Unit tests for the discrete-event engine and its primitives. *)

open Hare_sim

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:5 ~seq:1 "b";
  Heap.push h ~time:3 ~seq:2 "a";
  Heap.push h ~time:5 ~seq:0 "c";
  Heap.push h ~time:9 ~seq:3 "d";
  let order =
    List.init 4 (fun _ ->
        let _, _, v = Heap.pop_min h in
        v)
  in
  Alcotest.(check (list string)) "time then seq" [ "a"; "c"; "b"; "d" ] order

let test_heap_large () =
  let h = Heap.create () in
  let rng = Rng.create ~seed:7L in
  let n = 2000 in
  for i = 0 to n - 1 do
    Heap.push h ~time:(Rng.int rng 1000) ~seq:i i
  done;
  Alcotest.(check int) "length" n (Heap.length h);
  let last = ref (-1) in
  for _ = 1 to n do
    let t, _, _ = Heap.pop_min h in
    Alcotest.(check bool) "monotone" true (t >= !last);
    last := t
  done;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

(* Property test at engine scale: 100k events with clustered timestamps
   (many ties) must drain in exact (time, seq) order, interleaving pushes
   and pops the way [run_for] does. A model priority list would be
   O(n^2); instead exploit that seq is unique and increasing per push, so
   sorting the recorded (time, seq) pops must reproduce the pop order. *)
let test_heap_property_100k () =
  let h = Heap.create () in
  let rng = Rng.create ~seed:11L in
  let n = 100_000 in
  let popped = ref [] in
  let seq = ref 0 in
  let pushed = ref 0 in
  while !pushed < n do
    (* burst of pushes ... *)
    let burst = 1 + Rng.int rng 8 in
    for _ = 1 to burst do
      if !pushed < n then begin
        Heap.push h ~time:(Rng.int rng 5000) ~seq:!seq !seq;
        incr seq;
        incr pushed
      end
    done;
    (* ... then drain a few, like the engine's pop-schedule-pop loop *)
    let drain = Rng.int rng 4 in
    for _ = 1 to drain do
      if not (Heap.is_empty h) then begin
        Alcotest.(check int) "min_time matches peek" (Heap.min_time h)
          (let t, _, _ = Heap.peek_min h in
           t);
        let t, s, v = Heap.pop_min h in
        Alcotest.(check int) "value is its seq" s v;
        popped := (t, s) :: !popped
      end
    done
  done;
  while not (Heap.is_empty h) do
    let t, s, v = Heap.pop_min h in
    Alcotest.(check int) "value is its seq" s v;
    popped := (t, s) :: !popped
  done;
  let order = List.rev !popped in
  Alcotest.(check int) "all drained" n (List.length order);
  (* Interleaved pushes mean pop order need not be globally time-sorted,
     but ties on time must always pop in increasing seq order: if (t, s2)
     pops after (t, s1) with s2 < s1, then s2 was pushed first and sat in
     the heap while s1 popped — contradicting min-heap order. *)
  let last_seq_at : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (t, s) ->
      (match Hashtbl.find_opt last_seq_at t with
      | Some prev when prev >= s ->
          Alcotest.failf "time %d popped seq %d after %d" t s prev
      | _ -> ());
      Hashtbl.replace last_seq_at t s)
    order;
  Alcotest.check_raises "negative time rejected"
    (Invalid_argument "Heap.push: negative time") (fun () ->
      Heap.push h ~time:(-1) ~seq:0 0)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Heap.pop_min h))

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:5L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_engine_sleep_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.spawn e ~name:"a" (fun () ->
         Engine.sleep 10L;
         log := ("a", Engine.now e) :: !log));
  ignore
    (Engine.spawn e ~name:"b" (fun () ->
         Engine.sleep 5L;
         log := ("b", Engine.now e) :: !log));
  Engine.run e;
  Alcotest.(check (list (pair string int64)))
    "b fires before a"
    [ ("a", 10L); ("b", 5L) ]
    !log

let test_engine_spawn_nested () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.spawn e ~name:"outer" (fun () ->
         Engine.sleep 3L;
         ignore
           (Engine.spawn e ~name:"inner" (fun () ->
                Engine.sleep 4L;
                Alcotest.(check int64) "inner time" 7L (Engine.now e);
                incr hits));
         incr hits));
  Engine.run e;
  Alcotest.(check int) "both ran" 2 !hits

let test_engine_deadlock_detection () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"stuck" (fun () ->
         Engine.suspend (fun _waker -> () (* never woken *))));
  match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "names the fiber" true (contains ~needle:"stuck" msg)

let test_engine_daemon_allows_exit () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~daemon:true ~name:"server" (fun () ->
         Engine.suspend (fun _ -> ())));
  ignore (Engine.spawn e ~name:"app" (fun () -> Engine.sleep 2L));
  Engine.run e;
  Alcotest.(check int64) "ends at app completion" 2L (Engine.now e)

let test_engine_fiber_failure () =
  let e = Engine.create () in
  ignore (Engine.spawn e ~name:"bad" (fun () -> failwith "boom"));
  match Engine.run e with
  | () -> Alcotest.fail "expected failure"
  | exception Engine.Fiber_failure ("bad", Failure _) -> ()
  | exception _ -> Alcotest.fail "wrong exception"

let test_engine_run_for () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.spawn e ~name:"ticker" (fun () ->
         for _ = 1 to 10 do
           Engine.sleep 10L;
           incr hits
         done));
  Engine.run_for e 35L;
  Alcotest.(check int) "three ticks within budget" 3 !hits;
  Engine.run e;
  Alcotest.(check int) "rest completes" 10 !hits

let test_ivar_blocking () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  ignore (Engine.spawn e ~name:"reader" (fun () -> got := Ivar.read iv));
  ignore
    (Engine.spawn e ~name:"writer" (fun () ->
         Engine.sleep 50L;
         Ivar.fill iv 99));
  Engine.run e;
  Alcotest.(check int) "value" 99 !got

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e
         ~name:(Printf.sprintf "r%d" i)
         (fun () -> sum := !sum + Ivar.read iv))
  done;
  ignore (Engine.spawn e ~name:"w" (fun () -> Ivar.fill iv 7));
  Engine.run e;
  Alcotest.(check int) "all readers woke" 21 !sum

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () -> Ivar.fill iv 2)

let test_bqueue_fifo () =
  let e = Engine.create () in
  let q = Bqueue.create () in
  let out = ref [] in
  ignore
    (Engine.spawn e ~name:"consumer" (fun () ->
         for _ = 1 to 3 do
           out := Bqueue.pop q :: !out
         done));
  ignore
    (Engine.spawn e ~name:"producer" (fun () ->
         List.iter (Bqueue.push q) [ 1; 2; 3 ]));
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 3; 2; 1 ] !out

let test_bqueue_capacity_blocks () =
  let e = Engine.create () in
  let q = Bqueue.create ~capacity:1 () in
  let produced = ref 0 in
  ignore
    (Engine.spawn e ~name:"producer" (fun () ->
         for i = 1 to 3 do
           Bqueue.push q i;
           produced := i
         done));
  ignore
    (Engine.spawn e ~name:"consumer" (fun () ->
         Engine.sleep 100L;
         Alcotest.(check bool) "producer stalled" true (!produced < 3);
         for _ = 1 to 3 do
           ignore (Bqueue.pop q)
         done));
  Engine.run e;
  Alcotest.(check int) "all produced" 3 !produced

let test_condition_signal_fifo () =
  let e = Engine.create () in
  let c = Condition.create () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e
         ~name:(Printf.sprintf "w%d" i)
         (fun () ->
           Condition.wait c;
           order := i :: !order))
  done;
  ignore
    (Engine.spawn e ~name:"signaller" (fun () ->
         Engine.sleep 1L;
         Condition.signal c;
         Engine.sleep 1L;
         Condition.broadcast c));
  Engine.run e;
  Alcotest.(check (list int)) "first waiter first" [ 3; 2; 1 ] !order

let test_core_compute_serializes () =
  let e = Engine.create () in
  let core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let finish = ref [] in
  for i = 1 to 2 do
    ignore
      (Engine.spawn e
         ~name:(Printf.sprintf "f%d" i)
         (fun () ->
           Core_res.compute core 100;
           finish := (i, Engine.now e) :: !finish))
  done;
  Engine.run e;
  let times = List.map snd !finish in
  Alcotest.(check (list int64)) "fifo occupancy" [ 200L; 100L ] times

let test_core_ctx_switch_charged () =
  let e = Engine.create () in
  let core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:50 in
  ignore
    (Engine.spawn e ~name:"a" (fun () ->
         Core_res.compute core 100;
         Core_res.compute core 100));
  ignore (Engine.spawn e ~name:"b" (fun () -> Core_res.compute core 100));
  Engine.run e;
  (* a(100), then b(100 + 50 switch), then a again (100 + 50 switch). *)
  Alcotest.(check int) "two switches" 2 (Core_res.switches core);
  Alcotest.(check int64) "busy total" 400L (Core_res.busy_cycles core)

let test_core_same_fiber_no_switch () =
  let e = Engine.create () in
  let core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:50 in
  ignore
    (Engine.spawn e ~name:"only" (fun () ->
         for _ = 1 to 5 do
           Core_res.compute core 10
         done));
  Engine.run e;
  Alcotest.(check int) "no switches" 0 (Core_res.switches core);
  Alcotest.(check int64) "time" 50L (Engine.now e)

(* ---------- deadline primitives and deadlock probes -------------------- *)

let test_bqueue_pop_order_multi () =
  (* Several consumers blocked on an empty queue must be served in the
     order they blocked, one element each. *)
  let e = Engine.create () in
  let q = Bqueue.create () in
  let got = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e
         ~name:(Printf.sprintf "c%d" i)
         (fun () ->
           let v = Bqueue.pop q in
           got := (i, v) :: !got))
  done;
  ignore
    (Engine.spawn e ~name:"producer" (fun () ->
         Engine.sleep 5L;
         List.iter (Bqueue.push q) [ "a"; "b"; "c" ]));
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "fifo across blocked consumers"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !got)

let test_ivar_read_deadline () =
  let e = Engine.create () in
  let fast = Ivar.create () and slow = Ivar.create () in
  let results = ref [] in
  ignore
    (Engine.spawn e ~name:"reader" (fun () ->
         (* filled before the deadline: the timer must be a no-op *)
         results := ("fast", Ivar.read_deadline fast ~engine:e ~cycles:100L) :: !results;
         (* not filled in time: observe the timeout, then the late fill *)
         results := ("slow", Ivar.read_deadline slow ~engine:e ~cycles:10L) :: !results;
         Alcotest.(check int) "late fill still lands" 9 (Ivar.read slow)));
  ignore
    (Engine.spawn e ~name:"filler" (fun () ->
         Engine.sleep 3L;
         Ivar.fill fast 1;
         Engine.sleep 50L;
         Ivar.fill slow 9));
  Engine.run e;
  Alcotest.(check (list (pair string (option int))))
    "deadline observations"
    [ ("fast", Some 1); ("slow", None) ]
    (List.rev !results);
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Ivar.read_deadline: negative deadline") (fun () ->
      ignore (Ivar.read_deadline fast ~engine:e ~cycles:(-1L)))

let test_condition_wait_deadline () =
  let e = Engine.create () in
  let c = Condition.create () in
  let log = ref [] in
  ignore
    (Engine.spawn e ~name:"expires" (fun () ->
         let r = Condition.wait_deadline c ~engine:e ~cycles:10L in
         log := ("expires", r = `Timeout) :: !log));
  ignore
    (Engine.spawn e ~name:"wins" (fun () ->
         let r = Condition.wait_deadline c ~engine:e ~cycles:100L in
         log := ("wins", r = `Signalled) :: !log));
  ignore
    (Engine.spawn e ~name:"signaller" (fun () ->
         Engine.sleep 50L;
         (* the first waiter timed out at 10 and must NOT absorb this *)
         Condition.signal c));
  Engine.run e;
  Alcotest.(check (list (pair string bool)))
    "timed-out waiter does not steal the signal"
    [ ("expires", true); ("wins", true) ]
    (List.rev !log);
  Alcotest.(check int) "queue drained" 0 (Condition.waiters c)

let test_deadlock_reports_mailbox_depths () =
  let e = Engine.create () in
  let q : int Bqueue.t = Bqueue.create () in
  let _ : int = Engine.register_probe e ~name:"fs0" (fun () -> Bqueue.length q) in
  Bqueue.push q 1;
  Bqueue.push q 2;
  ignore
    (Engine.spawn e ~name:"wedged" (fun () -> Engine.suspend (fun _ -> ())));
  (match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "lists pending depth" true
        (contains ~needle:"fs0=2" msg));
  (* and with nothing queued, it says so instead of listing noise *)
  let e2 = Engine.create () in
  let _ : int = Engine.register_probe e2 ~name:"fs0" (fun () -> 0) in
  ignore
    (Engine.spawn e2 ~name:"wedged2" (fun () -> Engine.suspend (fun _ -> ())));
  match Engine.run e2 with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "no undelivered messages" true
        (contains ~needle:"no undelivered" msg)

let test_probe_unregister () =
  let e = Engine.create () in
  let a = Engine.register_probe e ~name:"alpha" (fun () -> 3) in
  let b = Engine.register_probe e ~name:"beta" (fun () -> 5) in
  Alcotest.(check int) "two probes" 2 (Engine.probe_count e);
  Alcotest.(check (list string))
    "both report" [ "alpha=3"; "beta=5" ] (Engine.pending_depths e);
  Engine.unregister_probe e a;
  Alcotest.(check int) "one left" 1 (Engine.probe_count e);
  Alcotest.(check (list string)) "dead probe gone" [ "beta=5" ]
    (Engine.pending_depths e);
  Engine.unregister_probe e a;
  (* idempotent *)
  Alcotest.(check int) "still one" 1 (Engine.probe_count e);
  (* slot recycling: the freed slot is reused, the registry stays compact *)
  let c = Engine.register_probe e ~name:"gamma" (fun () -> 7) in
  Alcotest.(check int) "slot recycled" a c;
  Alcotest.(check (list string))
    "recycled slot reports" [ "gamma=7"; "beta=5" ] (Engine.pending_depths e);
  Engine.unregister_probe e b;
  Engine.unregister_probe e c;
  Alcotest.(check int) "empty" 0 (Engine.probe_count e);
  Alcotest.(check (list string)) "silent" [] (Engine.pending_depths e)

let test_live_fiber_accounting () =
  (* Finished fibers must be pruned from the registry (no leak on long
     open-loop runs) while blocked ones stay visible; the peak and
     spawned counters track the churn. *)
  let e = Engine.create () in
  Alcotest.(check int) "empty registry" 0 (Engine.registered_fibers e);
  let running = ref 0 in
  ignore
    (Engine.spawn e ~name:"root" (fun () ->
         for wave = 1 to 4 do
           for i = 1 to 8 do
             ignore
               (Engine.spawn e
                  ~name:(Printf.sprintf "w%d.%d" wave i)
                  (fun () ->
                    incr running;
                    Engine.sleep 10L;
                    decr running))
           done;
           Engine.sleep 100L;
           (* wave drained: registry holds only root *)
           Alcotest.(check int)
             (Printf.sprintf "wave %d drained" wave)
             1 (Engine.registered_fibers e)
         done));
  Engine.run e;
  Alcotest.(check int) "all pruned at exit" 0 (Engine.registered_fibers e);
  Alcotest.(check int) "spawned total" 33 (Engine.spawned_fibers e);
  (* peak = root + one full wave of 8 (waves never overlap) *)
  Alcotest.(check int) "peak live" 9 (Engine.peak_fibers e);
  Alcotest.(check bool) "events counted" true (Engine.events_executed e > 0);
  (* a crashing fiber is pruned too (exnc path) *)
  let e2 = Engine.create () in
  ignore (Engine.spawn e2 ~name:"boom" (fun () -> failwith "crash"));
  (match Engine.run e2 with
  | () -> Alcotest.fail "expected failure"
  | exception Engine.Fiber_failure _ -> ());
  Alcotest.(check int) "crashed fiber pruned" 0 (Engine.registered_fibers e2)

let test_current_fid_tracking () =
  (* [current_fid] must match [fiber_id (self ())] at every resume point:
     fresh start, after sleep, and after a suspend/waker round trip. *)
  let e = Engine.create () in
  let iv = Ivar.create () in
  let check_here where f =
    Alcotest.(check int) where (Engine.fiber_id f) (Engine.current_fid e)
  in
  ignore
    (Engine.spawn e ~name:"a" (fun () ->
         let f = Engine.self () in
         check_here "a: at start" f;
         Engine.sleep 5L;
         check_here "a: after sleep" f;
         Alcotest.(check int) "a: ivar value" 42 (Ivar.read iv);
         check_here "a: after suspend" f));
  ignore
    (Engine.spawn e ~name:"b" (fun () ->
         let f = Engine.self () in
         check_here "b: at start" f;
         Engine.sleep 20L;
         check_here "b: after sleep" f;
         Ivar.fill iv 42;
         check_here "b: after fill" f));
  Engine.run e;
  Alcotest.(check int) "idle engine" (-1) (Engine.current_fid e)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "sim.heap",
      [
        tc "ordering" `Quick test_heap_ordering;
        tc "large" `Quick test_heap_large;
        tc "empty" `Quick test_heap_empty;
        tc "property 100k" `Quick test_heap_property_100k;
      ] );
    ( "sim.rng",
      [
        tc "deterministic" `Quick test_rng_deterministic;
        tc "bounds" `Quick test_rng_bounds;
        tc "split" `Quick test_rng_split_independent;
      ] );
    ( "sim.engine",
      [
        tc "sleep order" `Quick test_engine_sleep_order;
        tc "nested spawn" `Quick test_engine_spawn_nested;
        tc "deadlock detection" `Quick test_engine_deadlock_detection;
        tc "daemons allow exit" `Quick test_engine_daemon_allows_exit;
        tc "fiber failure" `Quick test_engine_fiber_failure;
        tc "run_for budget" `Quick test_engine_run_for;
        tc "deadlock mailbox depths" `Quick test_deadlock_reports_mailbox_depths;
        tc "probe unregister" `Quick test_probe_unregister;
        tc "live fiber accounting" `Quick test_live_fiber_accounting;
        tc "current fid tracking" `Quick test_current_fid_tracking;
      ] );
    ( "sim.ivar",
      [
        tc "blocking read" `Quick test_ivar_blocking;
        tc "multiple readers" `Quick test_ivar_multiple_readers;
        tc "double fill" `Quick test_ivar_double_fill;
        tc "read deadline" `Quick test_ivar_read_deadline;
      ] );
    ( "sim.bqueue",
      [
        tc "fifo" `Quick test_bqueue_fifo;
        tc "capacity blocks" `Quick test_bqueue_capacity_blocks;
        tc "blocked pop order" `Quick test_bqueue_pop_order_multi;
      ] );
    ( "sim.condition",
      [
        tc "signal fifo" `Quick test_condition_signal_fifo;
        tc "wait deadline" `Quick test_condition_wait_deadline;
      ] );
    ( "sim.core",
      [
        tc "serializes" `Quick test_core_compute_serializes;
        tc "ctx switch" `Quick test_core_ctx_switch_charged;
        tc "no spurious switch" `Quick test_core_same_fiber_no_switch;
      ] );
  ]
