(* Span tracing (observability PR): the tracer must observe without
   perturbing — same seed gives bit-identical simulations with tracing
   on or off and byte-identical exports across runs — and its cycle
   attribution must be exact: every span's buckets sum to its elapsed
   cycles, with nothing left over. *)

open Test_util
module Api = Hare_api.Api
module World = Hare_experiments.World
module Spec = Hare_workloads.Spec
module Trace = Hare_trace.Trace
module Perf = Hare_stats.Perf
module Opcount = Hare_stats.Opcount
module Engine = Hare_sim.Engine

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

(* Boot a machine from [config], run one paper workload to completion
   (setup + workers), and return the machine for inspection. *)
let run_workload ?(wname = "creates") config =
  let m = Machine.boot config in
  let api = World.Hare_w.api m in
  let spec = Hare_workloads.All.find wname in
  let nprocs = List.length (Config.app_cores config) in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"trace-test" (fun p _ ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        List.fold_left
          (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
          0 pids)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "workers ok" (Some 0) (Machine.exit_status m init);
  m

let traced_config ?(cap = 65536) ?(enabled = true) ?(window = 1) ?plan () =
  let c =
    {
      (small_config ~ncores:4 ()) with
      Config.trace_enabled = enabled;
      trace_cap = cap;
      rpc_window = window;
      seed = 7L;
    }
  in
  match plan with
  | None -> c
  | Some p ->
      { c with Config.fault_plan = p; rpc_deadline = 25_000; rpc_retries = 12 }

(* Everything externally observable about a run, for tracing-is-inert
   comparisons. *)
let fingerprint m =
  ( Machine.now m,
    Opcount.to_list (Machine.total_syscalls m),
    Opcount.to_list (Machine.total_server_ops m),
    Machine.total_rpcs m,
    Machine.total_invals m )

let fp :
    (int64 * (string * int) list * (string * int) list * int * int)
    Alcotest.testable =
  Alcotest.testable
    (fun ppf (now, _, _, rpcs, invals) ->
      Format.fprintf ppf "now=%Ld rpcs=%d invals=%d" now rpcs invals)
    ( = )

(* ---------- zero perturbation ------------------------------------------- *)

let test_onoff_identical () =
  let off = run_workload (traced_config ~enabled:false ()) in
  let on = run_workload (traced_config ~enabled:true ()) in
  Alcotest.check fp "tracing changes nothing observable" (fingerprint off)
    (fingerprint on);
  Alcotest.(check bool) "sink present when on" true (Machine.trace on <> None);
  Alcotest.(check bool) "no sink when off" true (Machine.trace off = None)

let test_onoff_identical_under_faults () =
  (* Retry backoff draws from an RNG right where trace hooks were added;
     the draw order must be unchanged. The crash/restart path also emits
     instants. *)
  let plan = "drop:fs:0.05;crash:1@200000+150000" in
  let off = run_workload ~wname:"writes" (traced_config ~enabled:false ~plan ()) in
  let on = run_workload ~wname:"writes" (traced_config ~enabled:true ~plan ()) in
  Alcotest.check fp "tracing inert under faults" (fingerprint off)
    (fingerprint on);
  let r_off = Machine.robustness off and r_on = Machine.robustness on in
  Alcotest.(check (list (pair string int)))
    "identical robustness counters"
    (Hare_stats.Robust.to_list r_off)
    (Hare_stats.Robust.to_list r_on)

let test_export_byte_identical () =
  let json1 =
    match Machine.trace (run_workload (traced_config ())) with
    | Some tr -> Trace.to_chrome_json tr
    | None -> Alcotest.fail "no sink"
  in
  let json2 =
    match Machine.trace (run_workload (traced_config ())) with
    | Some tr -> Trace.to_chrome_json tr
    | None -> Alcotest.fail "no sink"
  in
  Alcotest.(check int) "same length" (String.length json1) (String.length json2);
  Alcotest.(check bool) "byte-identical export" true (String.equal json1 json2);
  Alcotest.(check bool) "chrome framing (head)" true
    (String.length json1 > 16 && String.sub json1 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) "chrome framing (tail)" true
    (String.length json1 > 4
    && String.sub json1 (String.length json1 - 4) 4 = "\n]}\n")

(* ---------- bounded ring ------------------------------------------------ *)

let test_ring_overflow () =
  let cap = 256 in
  let m = run_workload (traced_config ~cap ()) in
  match Machine.trace m with
  | None -> Alcotest.fail "no sink"
  | Some tr ->
      Alcotest.(check bool) "dropped counter moved" true (Trace.dropped tr > 0);
      let evs = Trace.events tr in
      Alcotest.(check bool) "ring stays bounded" true (List.length evs <= cap);
      (* The survivors are still a coherent, exportable trace... *)
      let json = Trace.to_chrome_json tr in
      Alcotest.(check bool) "still well-formed" true
        (String.sub json 0 16 = "{\"traceEvents\":[");
      (* ...and the profile, which does not live in the ring, still
         attributes exactly. *)
      List.iter
        (fun (r : Trace.row) ->
          Alcotest.(check int64)
            (r.Trace.r_op ^ ": buckets sum to total despite overflow")
            r.Trace.r_total
            (Array.fold_left Int64.add 0L r.Trace.r_buckets))
        (Trace.profile tr)

(* ---------- exact attribution ------------------------------------------- *)

let test_profile_exact () =
  let m = run_workload ~wname:"writes" (traced_config ()) in
  match Machine.trace m with
  | None -> Alcotest.fail "no sink"
  | Some tr ->
      let rows = Trace.profile tr in
      Alcotest.(check bool) "profile not empty" true (rows <> []);
      let grand = ref 0L in
      List.iter
        (fun (r : Trace.row) ->
          grand := Int64.add !grand r.Trace.r_total;
          Alcotest.(check int64)
            (r.Trace.r_op ^ ": buckets sum exactly to total")
            r.Trace.r_total
            (Array.fold_left Int64.add 0L r.Trace.r_buckets))
        rows;
      Alcotest.(check bool) "some cycles attributed" true (!grand > 0L);
      (* data-heavy workload must show cache and dram traffic *)
      let bucket_total i =
        List.fold_left
          (fun acc (r : Trace.row) -> Int64.add acc r.Trace.r_buckets.(i))
          0L rows
      in
      Alcotest.(check bool) "cache bucket nonzero" true
        (bucket_total (Trace.bucket_index Trace.Cache) > 0L);
      Alcotest.(check bool) "dram bucket nonzero" true
        (bucket_total (Trace.bucket_index Trace.Dram) > 0L)

(* ---------- Perf.reset (satellite) -------------------------------------- *)

let test_perf_reset_unit () =
  let p = Perf.create () in
  Perf.note_window p 5;
  Perf.note_batch p 3;
  p.Perf.deferred <- 7;
  p.Perf.lease_hits <- 2;
  Alcotest.(check bool) "counters moved" false (Perf.is_zero p);
  Perf.reset p;
  Alcotest.(check bool) "reset zeroes everything" true (Perf.is_zero p)

let test_perf_reset_machine () =
  let m = run_workload (traced_config ~window:8 ()) in
  Alcotest.(check bool) "pipelined run populated perf" false
    (Perf.is_zero (Machine.perf m));
  Machine.reset_perf m;
  Alcotest.(check bool) "machine-wide reset" true (Perf.is_zero (Machine.perf m))

(* ---------- deadlock report includes spans (satellite) ------------------ *)

let test_deadlock_reports_spans () =
  let e = Engine.create () in
  let tr = Trace.create ~cap:64 () in
  Engine.set_sink e tr;
  (* A finished span on track 0 — what the wedged machine last did. *)
  ignore
    (Trace.ctx_open tr ~fid:1 ~op:"open" ~track:0 ~parent:0 ~now:0L ~args:[]);
  Trace.ctx_close_syscall tr ~fid:1 ~now:10L;
  ignore
    (Engine.spawn e ~name:"wedged" (fun () -> Engine.suspend (fun _ -> ())));
  match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool) "mentions recent spans" true
        (contains ~needle:"recent spans" msg);
      Alcotest.(check bool) "names the last op" true
        (contains ~needle:"open" msg)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "trace.zero-perturbation",
      [
        tc "tracing on/off bit-identical" `Quick test_onoff_identical;
        tc "inert under fault plans" `Quick test_onoff_identical_under_faults;
        tc "export byte-identical across runs" `Quick
          test_export_byte_identical;
      ] );
    ( "trace.ring",
      [ tc "overflow drops oldest, counts, stays coherent" `Quick
          test_ring_overflow ] );
    ( "trace.attribution",
      [ tc "bucket sums equal span totals" `Quick test_profile_exact ] );
    ( "trace.satellites",
      [
        tc "Perf.reset zeroes a record" `Quick test_perf_reset_unit;
        tc "Machine.reset_perf zeroes the fleet" `Quick
          test_perf_reset_machine;
        tc "deadlock report dumps recent spans" `Quick
          test_deadlock_reports_spans;
      ] );
  ]
