(* Coherence sanitizer (static-analysis PR): the checker must observe
   without perturbing — same seed gives bit-identical simulations with
   checking on or off, under fault plans and with the RPC pipeline wide
   open — every legitimate run must be violation-free, and seeded
   mutations (skip an invalidation, skip a write-back, drop a dircache
   invalidation) must each be caught by the named rule. *)

open Test_util
module Api = Hare_api.Api
module World = Hare_experiments.World
module Spec = Hare_workloads.Spec
module Check = Hare_check.Check
module Sanity = Hare_stats.Sanity
module Opcount = Hare_stats.Opcount
module Client = Hare_client.Client
module Dircache = Hare_client.Dircache
module Server = Hare_server.Server
module Pcache = Hare_mem.Pcache

(* Boot a machine from [config], run one paper workload to completion
   (setup + workers), and return the machine for inspection. *)
let run_workload ?(wname = "creates") config =
  let m = Machine.boot config in
  let api = World.Hare_w.api m in
  let spec = Hare_workloads.All.find wname in
  let nprocs = List.length (Config.app_cores config) in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"check-test" (fun p _ ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        List.fold_left
          (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
          0 pids)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "workers ok" (Some 0) (Machine.exit_status m init);
  m

let checked_config ?(ncores = 4) ?(enabled = true) ?(window = 1) ?(batch = 1)
    ?(extent = 1) ?pcache_lines ?plan () =
  let c =
    {
      (small_config ~ncores ()) with
      Config.check_enabled = enabled;
      rpc_window = window;
      batch_max = batch;
      alloc_extent = extent;
      seed = 42L;
    }
  in
  let c =
    match pcache_lines with
    | Some n -> { c with Config.pcache_lines = n }
    | None -> c
  in
  match plan with
  | None -> c
  | Some p ->
      { c with Config.fault_plan = p; rpc_deadline = 25_000; rpc_retries = 12 }

(* Everything externally observable about a run, for checking-is-inert
   comparisons. *)
let fingerprint m =
  ( Machine.now m,
    Opcount.to_list (Machine.total_syscalls m),
    Opcount.to_list (Machine.total_server_ops m),
    Machine.total_rpcs m,
    Machine.total_invals m )

let fp :
    (int64 * (string * int) list * (string * int) list * int * int)
    Alcotest.testable =
  Alcotest.testable
    (fun ppf (now, _, _, rpcs, invals) ->
      Format.fprintf ppf "now=%Ld rpcs=%d invals=%d" now rpcs invals)
    ( = )

let sanity m =
  match Machine.check m with
  | Some chk -> Check.stats chk
  | None -> Alcotest.fail "no checker attached"

let assert_clean name m =
  let s = sanity m in
  if Sanity.total_violations s > 0 then begin
    (match Machine.check m with
    | Some chk ->
        List.iter
          (fun v -> Format.eprintf "%a@." Check.pp_violation v)
          (Check.violations chk)
    | None -> ());
    Alcotest.failf "%s: %d sanitizer violation(s)" name
      (Sanity.total_violations s)
  end

(* ---------- zero perturbation ------------------------------------------- *)

let test_onoff_identical () =
  let off = run_workload (checked_config ~enabled:false ()) in
  let on = run_workload (checked_config ~enabled:true ()) in
  Alcotest.check fp "checking changes nothing observable" (fingerprint off)
    (fingerprint on);
  Alcotest.(check bool) "checker present when on" true (Machine.check on <> None);
  Alcotest.(check bool) "no checker when off" true (Machine.check off = None);
  assert_clean "creates" on

let test_onoff_identical_under_faults () =
  (* Fault verdicts reorder deliveries and trigger retries/crash recovery
     right where the stamp FIFOs were threaded; the clocks and the
     robustness counters must not move. *)
  let plan = "drop:fs:0.05;crash:1@200000+150000" in
  let off =
    run_workload ~wname:"writes" (checked_config ~enabled:false ~plan ())
  in
  let on =
    run_workload ~wname:"writes" (checked_config ~enabled:true ~plan ())
  in
  Alcotest.check fp "checking inert under faults" (fingerprint off)
    (fingerprint on);
  Alcotest.(check (list (pair string int)))
    "identical robustness counters"
    (Hare_stats.Robust.to_list (Machine.robustness off))
    (Hare_stats.Robust.to_list (Machine.robustness on));
  assert_clean "writes+faults" on

let test_onoff_identical_knobs_open () =
  let off =
    run_workload ~wname:"fsstress"
      (checked_config ~enabled:false ~window:8 ~batch:8 ~extent:8 ())
  in
  let on =
    run_workload ~wname:"fsstress"
      (checked_config ~enabled:true ~window:8 ~batch:8 ~extent:8 ())
  in
  Alcotest.check fp "checking inert with pipeline open" (fingerprint off)
    (fingerprint on);
  assert_clean "fsstress+knobs" on

(* ---------- legitimate runs are clean ----------------------------------- *)

let test_workloads_clean () =
  List.iter
    (fun (wname, has_data) ->
      let m = run_workload ~wname (checked_config ()) in
      assert_clean wname m;
      let s = sanity m in
      (* The checker actually watched something. *)
      Alcotest.(check bool) (wname ^ ": joins happened") true (s.hb_joins > 0);
      (* Metadata-only workloads move no data blocks, so only the
         data-writing ones are guaranteed shadow-line traffic. *)
      if has_data then
        Alcotest.(check bool) (wname ^ ": lines tracked") true
          (s.lines_tracked > 0))
    [
      ("creates", false);
      ("writes", true);
      ("renames", false);
      ("directories", false);
      ("mailbench", true);
      ("fsstress", true);
    ]

let test_fault_soaks_clean () =
  List.iter
    (fun (label, plan) ->
      let m = run_workload ~wname:"fsstress" (checked_config ~plan ()) in
      assert_clean label m)
    [
      ("lossy", "drop:fs:0.04;dup:fs:0.04;delay:fs:0.06:4000");
      ("crash", "crash:2@1000000+300000");
      ("stall", "stall:0@20000+30000");
    ]

let test_pipeline_soak_clean () =
  let m =
    run_workload ~wname:"fsstress"
      (checked_config ~window:8 ~batch:8 ~extent:8
         ~plan:"drop:fs:0.04;dup:fs:0.04;delay:fs:0.06:4000" ())
  in
  assert_clean "pipelined-lossy" m;
  let m =
    run_workload ~wname:"fsstress"
      (checked_config ~window:8 ~batch:8 ~extent:8
         ~plan:"crash:2@1000000+300000" ())
  in
  assert_clean "pipelined-crash" m

(* ---------- Pcache stats vs. shadow (satellite) ------------------------- *)

(* Collect each physical pcache once: under timeshare placement a client
   and a server share one cache. *)
let distinct_pcaches m =
  let caches =
    Array.to_list (Array.map Client.pcache (Machine.clients m))
    @ Array.to_list (Array.map Server.pcache (Machine.servers m))
  in
  List.fold_left
    (fun acc pc -> if List.memq pc acc then acc else pc :: acc)
    [] caches

let test_pcache_stats_match_shadow () =
  (* A pcache small enough that the write-heavy workload thrashes the
     LRU: every fill, hit, eviction, write-back and invalidation the
     real caches count must have been observed — exactly once — by the
     checker's shadow state. *)
  let m =
    run_workload ~wname:"writes" (checked_config ~pcache_lines:64 ())
  in
  let s = sanity m in
  let sum f = List.fold_left (fun acc pc -> acc + f (Pcache.stats pc)) 0 in
  let caches = distinct_pcaches m in
  Alcotest.(check int) "evictions match shadow"
    (sum (fun (st : Pcache.stats) -> st.evictions) caches)
    s.cache_evictions;
  Alcotest.(check bool) "LRU actually thrashed" true (s.cache_evictions > 0);
  Alcotest.(check int) "writebacks match shadow"
    (sum (fun (st : Pcache.stats) -> st.writebacks) caches)
    s.cache_writebacks;
  Alcotest.(check int) "invalidations match shadow"
    (sum (fun (st : Pcache.stats) -> st.invalidated) caches)
    s.cache_invalidated;
  Alcotest.(check int) "hits match shadow"
    (sum (fun (st : Pcache.stats) -> st.hits) caches)
    s.cache_hits;
  Alcotest.(check int) "fills match shadow"
    (sum (fun (st : Pcache.stats) -> st.misses) caches)
    s.cache_fills;
  assert_clean "thrash" m

(* ---------- rule-level detection (unit) --------------------------------- *)

let count rule chk =
  List.length (List.filter (fun (v : Check.violation) -> v.rule = rule)
                 (Check.violations chk))

let test_rule_stale_read () =
  let chk = Check.create ~ncores:2 () in
  (* Core 1 caches the line; core 0 rewrites it and flushes; core 0 then
     messages core 1 (HB edge). Core 1 re-reading its old copy without a
     fill is now a stale read — and was NOT one before the edge. *)
  Check.cache_access chk ~core:1 ~key:7 ~write:false ~filled:true;
  Check.cache_access chk ~core:0 ~key:7 ~write:true ~filled:true;
  Check.cache_writeback chk ~core:0 ~key:7;
  Check.cache_access chk ~core:1 ~key:7 ~write:false ~filled:false;
  Alcotest.(check int) "unordered reread is legal (close-to-open)" 0
    (Check.total_violations chk);
  Check.join chk ~core:1 (Check.msg_stamp chk ~core:0);
  Check.cache_access chk ~core:1 ~key:7 ~write:false ~filled:false;
  Alcotest.(check int) "ordered stale reread fires" 1 (count Check.Stale_read chk)

let test_rule_write_race () =
  let chk = Check.create ~ncores:2 () in
  Check.cache_access chk ~core:0 ~key:3 ~write:true ~filled:true;
  Check.cache_access chk ~core:1 ~key:3 ~write:true ~filled:true;
  Alcotest.(check bool) "concurrent dirtying fires write-race" true
    (count Check.Write_race chk >= 1)

let test_rule_lost_write () =
  let chk = Check.create ~ncores:2 () in
  (* Core 0 dirties and flushes; core 1 — ordered after — writes back a
     copy based on the pre-flush version, clobbering core 0's data. *)
  Check.cache_access chk ~core:1 ~key:9 ~write:false ~filled:true;
  Check.cache_access chk ~core:0 ~key:9 ~write:true ~filled:true;
  Check.cache_writeback chk ~core:0 ~key:9;
  Check.join chk ~core:1 (Check.msg_stamp chk ~core:0);
  Check.cache_access chk ~core:1 ~key:9 ~write:true ~filled:false;
  Check.cache_writeback chk ~core:1 ~key:9;
  Alcotest.(check bool) "clobbering write-back fires lost-write" true
    (count Check.Lost_write chk >= 1)

let test_rule_missed_writeback () =
  let chk = Check.create ~ncores:2 () in
  (* Core 0 holds a dirty copy and (by messaging) is ordered before core
     1's use of the line; the protocol owed a write-back in between. *)
  Check.cache_access chk ~core:0 ~key:5 ~write:true ~filled:true;
  Check.join chk ~core:1 (Check.msg_stamp chk ~core:0);
  Check.cache_access chk ~core:1 ~key:5 ~write:false ~filled:true;
  Alcotest.(check int) "ordered dirty foreign copy fires missed-writeback" 1
    (count Check.Missed_writeback chk)

let test_rule_leaks () =
  let chk = Check.create ~ncores:2 () in
  Check.lint_exit chk ~core:0 ~fds:0 ~leases:0;
  Alcotest.(check int) "clean exit is clean" 0 (Check.total_violations chk);
  Check.lint_exit chk ~core:1 ~fds:2 ~leases:3;
  Alcotest.(check int) "fd leak fires" 1 (count Check.Fd_leak chk);
  Alcotest.(check int) "lease leak fires" 1 (count Check.Lease_leak chk)

(* ---------- seeded mutations (end-to-end detection power) --------------- *)

let rule_count m rule =
  match Machine.check m with
  | Some chk -> count rule chk
  | None -> Alcotest.fail "no checker attached"

let with_mutation flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

(* Init sits on [app_cores.(0)] and its first round-robin spawn lands
   there too; burn that slot so the next spawn goes to a different core
   (and hence a different client and pcache). *)
let register_nop m = Machine.register_program m "nop" (fun _ _ -> 0)

let spawn_remote p ~prog =
  let pid = Posix.spawn p ~prog:"nop" ~args:[] in
  ignore (Posix.waitpid p pid);
  Posix.spawn p ~prog ~args:[]

(* Another core rewrites a file this core has cached lines of: with the
   close-to-open invalidation mutation-skipped, the reopen must trip the
   open-inval lint and the reread of the stale resident copy the
   stale-read race rule. *)
let test_mutation_skip_open_inval () =
  with_mutation Client.mutate_skip_open_inval @@ fun () ->
  let config = checked_config () in
  let m = Machine.boot config in
  register_nop m;
  Machine.register_program m "rewriter" (fun p _args ->
      (* Overwrite in place (no truncate) so the same blocks change. *)
      let fd = Posix.openf p "/mut.dat" flags_rw in
      ignore (Posix.write p fd (String.make 4096 'b'));
      Posix.close p fd;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        (* Leave clean resident lines of the file in this core's cache. *)
        let fd = Posix.creat p "/mut.dat" in
        ignore (Posix.write p fd (String.make 4096 'a'));
        Posix.close p fd;
        let pid = spawn_remote p ~prog:"rewriter" in
        if Posix.waitpid p pid <> 0 then 1
        else begin
          let fd = Posix.openf p "/mut.dat" flags_r in
          ignore (Posix.read_all p fd);
          Posix.close p fd;
          0
        end)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "run ok" (Some 0) (Machine.exit_status m init);
  Alcotest.(check bool) "open-inval lint fired" true
    (rule_count m Check.Open_inval > 0);
  Alcotest.(check bool) "stale-read race fired" true
    (rule_count m Check.Stale_read > 0)

let test_mutation_skip_writeback () =
  with_mutation Client.mutate_skip_writeback @@ fun () ->
  let m =
    run ~config:(checked_config ()) (fun _m p ->
        let fd = Posix.creat p "/wb.dat" in
        ignore (Posix.write p fd (String.make 4096 'x'));
        Posix.close p fd;
        0)
  in
  Alcotest.(check bool) "close-writeback lint fired" true
    (rule_count m Check.Close_writeback > 0)

(* A remote unlink invalidates a dircache entry this client cached; with
   the invalidation mutation-dropped, the next hit on the entry must trip
   the dircache-stale rule. *)
let test_mutation_drop_dircache_inval () =
  with_mutation Dircache.mutate_drop_inval @@ fun () ->
  let config = checked_config () in
  let m = Machine.boot config in
  register_nop m;
  Machine.register_program m "unlinker" (fun p _args ->
      Posix.unlink p "/d/f";
      0);
  let init, _ =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        Posix.mkdir p "/d";
        let fd = Posix.creat p "/d/f" in
        Posix.close p fd;
        (* Populate this client's dircache (and the server's tracking). *)
        ignore (Posix.stat p "/d/f");
        let pid = spawn_remote p ~prog:"unlinker" in
        if Posix.waitpid p pid <> 0 then 1
        else begin
          (* The hit on the stale entry is the violation; the stat itself
             may then fail on the dead inode. *)
          (try ignore (Posix.stat p "/d/f")
           with Hare_proto.Errno.Error _ -> ());
          0
        end)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "run ok" (Some 0) (Machine.exit_status m init);
  Alcotest.(check bool) "invalidation was actually sent" true
    (Machine.total_invals m > 0);
  Alcotest.(check bool) "dircache-stale rule fired" true
    (rule_count m Check.Dircache_stale > 0)

(* Sanity: the named-rule report the CLI prints covers every rule and
   stays in sync with the counters. *)
let test_report_shape () =
  let chk = Check.create ~ncores:2 () in
  Check.lint_exit chk ~core:0 ~fds:1 ~leases:0;
  let report = Check.report chk in
  Alcotest.(check int) "nine rules" 9 (List.length report);
  Alcotest.(check (option int)) "fd-leak counted" (Some 1)
    (List.assoc_opt "fd-leak" report);
  Alcotest.(check int) "total matches" 1 (Check.total_violations chk)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "check.zero-perturbation",
      [
        tc "checking on/off bit-identical" `Quick test_onoff_identical;
        tc "inert under fault plans" `Quick test_onoff_identical_under_faults;
        tc "inert with pipeline knobs open" `Quick
          test_onoff_identical_knobs_open;
      ] );
    ( "check.clean",
      [
        tc "all workloads violation-free" `Slow test_workloads_clean;
        tc "fault soaks violation-free" `Quick test_fault_soaks_clean;
        tc "pipelined soaks violation-free" `Quick test_pipeline_soak_clean;
      ] );
    ( "check.pcache-stats",
      [ tc "cache counters match shadow exactly" `Quick
          test_pcache_stats_match_shadow ] );
    ( "check.rules",
      [
        tc "stale-read needs the HB edge" `Quick test_rule_stale_read;
        tc "write-race on unordered dirtying" `Quick test_rule_write_race;
        tc "lost-write on clobbering write-back" `Quick test_rule_lost_write;
        tc "missed-writeback on ordered dirty copy" `Quick
          test_rule_missed_writeback;
        tc "fd/lease leaks at exit" `Quick test_rule_leaks;
        tc "report covers all rules" `Quick test_report_shape;
      ] );
    ( "check.mutations",
      [
        tc "skipped open invalidation detected" `Quick
          test_mutation_skip_open_inval;
        tc "skipped write-back detected" `Quick test_mutation_skip_writeback;
        tc "dropped dircache invalidation detected" `Quick
          test_mutation_drop_dircache_inval;
      ] );
  ]
