(* Protocol-level tests against a standalone file server: raw RPCs over
   the wire, exercising corner cases of the three-phase rmdir protocol
   (parked creates, serialized locks, abort replay) and server-side fd
   state that the POSIX surface cannot easily force. *)

open Hare_sim
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Wire = Hare_proto.Wire
module Server = Hare_server.Server
module Rpc = Hare_msg.Rpc

let config = Test_util.small_config ~ncores:2 ()

(* One server + a client core, no client library: we speak the protocol
   directly. *)
type rig = {
  engine : Engine.t;
  server : Server.t;
  client_core : Core_res.t;
  ep : (Wire.fs_req, Wire.fs_resp) Rpc.t;
}

let make_rig () =
  let engine = Engine.create () in
  let costs = config.Hare_config.Config.costs in
  let score = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
  let client_core = Core_res.create engine ~id:1 ~socket:0 ~ctx_switch:0 in
  let dram = Hare_mem.Dram.create ~nblocks:64 in
  let pcache =
    Hare_mem.Pcache.create dram ~core:score ~costs ~capacity_lines:256
  in
  let inval_ports =
    Array.init 2 (fun i ->
        Hare_msg.Mailbox.create
          ~owner:(if i = 0 then score else client_core)
          ~costs ())
  in
  let server =
    Server.create ~engine ~config ~sid:0 ~core:score ~pcache ~dram
      ~blocks_first:0 ~blocks_count:64 ~inval_ports ()
  in
  Server.install_root server ~dist:false;
  Server.start server;
  { engine; server; client_core; ep = Server.endpoint server }

let call rig req = Rpc.call rig.ep ~from:rig.client_core req

let in_fiber rig body =
  let failure = ref None in
  ignore
    (Engine.spawn rig.engine ~name:"test-client" (fun () ->
         try body () with exn -> failure := Some exn));
  Engine.run rig.engine;
  match !failure with Some e -> raise e | None -> ()

let root = Types.root_ino

let mkdir_raw rig name =
  match call rig (Wire.Create_dir { dir = root; name; dist = false; client = 1; home = 0 }) with
  | Ok (Wire.P_created_ino ino) -> ino
  | _ -> Alcotest.fail "mkdir_raw"

let test_create_parked_during_mark_abort () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let d = mkdir_raw rig "dir" in
      (* phase 0+1: lock and mark *)
      (match call rig (Wire.Rmdir_lock { dir = d }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "lock");
      (match call rig (Wire.Rmdir_prepare { dir = d; home = 0 }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "prepare");
      (* a create in the marked directory parks... *)
      let parked =
        Rpc.call_async rig.ep ~from:rig.client_core
          (Wire.Create_open
             { dir = d; name = "late"; excl = false; trunc = false; client = 1; home = 0 })
      in
      Core_res.compute rig.client_core 100_000;
      Alcotest.(check bool) "still parked" true (Ivar.peek parked = None);
      (* ...abort releases it and it succeeds *)
      (match call rig (Wire.Rmdir_abort { dir = d; home = 0 }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "abort");
      (match Rpc.await ~from:rig.client_core
               ~costs:config.Hare_config.Config.costs parked
       with
      | Ok (Wire.P_open_ino _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "parked create should succeed");
      match call rig (Wire.Rmdir_unlock { dir = d }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "unlock")

let test_create_parked_during_mark_commit () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let d = mkdir_raw rig "dir" in
      ignore (call rig (Wire.Rmdir_lock { dir = d }));
      ignore (call rig (Wire.Rmdir_prepare { dir = d; home = 0 }));
      let parked =
        Rpc.call_async rig.ep ~from:rig.client_core
          (Wire.Create_open
             { dir = d; name = "late"; excl = false; trunc = false; client = 1; home = 0 })
      in
      ignore (call rig (Wire.Rmdir_commit { dir = d; client = 1; home = 0 }));
      match Rpc.await ~from:rig.client_core
              ~costs:config.Hare_config.Config.costs parked
      with
      | Error Errno.ENOENT -> ()
      | Ok _ | Error _ -> Alcotest.fail "parked create must fail with ENOENT")

let test_rmdir_lock_serializes () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let d = mkdir_raw rig "dir" in
      (match call rig (Wire.Rmdir_lock { dir = d }) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "first lock");
      (* a competing rmdir waits on the lock *)
      let second =
        Rpc.call_async rig.ep ~from:rig.client_core (Wire.Rmdir_lock { dir = d })
      in
      Core_res.compute rig.client_core 100_000;
      Alcotest.(check bool) "second lock parked" true (Ivar.peek second = None);
      (* winner commits; loser's lock must resolve with ENOENT *)
      ignore (call rig (Wire.Rmdir_prepare { dir = d; home = 0 }));
      ignore (call rig (Wire.Rmdir_commit { dir = d; client = 1; home = 0 }));
      match Rpc.await ~from:rig.client_core
              ~costs:config.Hare_config.Config.costs second
      with
      | Error Errno.ENOENT -> ()
      | Ok _ | Error _ -> Alcotest.fail "loser should see ENOENT")

let test_prepare_nonempty_refuses () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let d = mkdir_raw rig "dir" in
      (match
         call rig
           (Wire.Create_open
              { dir = d; name = "f"; excl = false; trunc = false; client = 1; home = 0 })
       with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "create");
      ignore (call rig (Wire.Rmdir_lock { dir = d }));
      (match call rig (Wire.Rmdir_prepare { dir = d; home = 0 }) with
      | Error Errno.ENOTEMPTY -> ()
      | Ok _ | Error _ -> Alcotest.fail "prepare must refuse");
      (* no mark was set: creates proceed immediately *)
      match
        call rig
          (Wire.Create_open
             { dir = d; name = "g"; excl = false; trunc = false; client = 1; home = 0 })
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "create after refused prepare")

let test_double_prepare_ebusy () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let d = mkdir_raw rig "dir" in
      ignore (call rig (Wire.Rmdir_prepare { dir = d; home = 0 }));
      match call rig (Wire.Rmdir_prepare { dir = d; home = 0 }) with
      | Error Errno.EBUSY -> ()
      | Ok _ | Error _ -> Alcotest.fail "second prepare must be EBUSY")

let test_fd_refcount_keeps_unlinked_inode () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let token, ino =
        match
          call rig
            (Wire.Create_open
               { dir = root; name = "f"; excl = true; trunc = false; client = 1; home = 0 })
        with
        | Ok (Wire.P_open_ino { oi; ino }) -> (oi.Wire.token, ino)
        | _ -> Alcotest.fail "create"
      in
      ignore (call rig (Wire.Write_fd { token; off = Some 0; data = "keep" }));
      (* share it, unlink it *)
      ignore (call rig (Wire.Inc_fd_ref { token; offset = Some 0 }));
      ignore (call rig (Wire.Rm_map { dir = root; name = "f"; only_if = None; client = 1; home = 0 }));
      ignore (call rig (Wire.Unlink_ino { ino }));
      (* first close: refcount 2 -> 1, inode must survive *)
      ignore (call rig (Wire.Close_fd { token; size = None }));
      (match call rig (Wire.Read_fd { token; off = None; len = 10 }) with
      | Ok (Wire.P_read { data; _ }) ->
          Alcotest.(check string) "readable through last fd" "keep" data
      | _ -> Alcotest.fail "read");
      (* last close frees everything *)
      ignore (call rig (Wire.Close_fd { token; size = None }));
      Alcotest.(check int) "no tokens" 0 (Server.open_tokens rig.server);
      Alcotest.(check int) "blocks recovered" 64
        (Server.available_blocks rig.server);
      match call rig (Wire.Read_fd { token; off = None; len = 1 }) with
      | Error Errno.EBADF -> ()
      | Ok _ | Error _ -> Alcotest.fail "token must be dead")

let test_shared_offset_demotion_reply () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      let token =
        match
          call rig
            (Wire.Create_open
               { dir = root; name = "f"; excl = true; trunc = false; client = 1; home = 0 })
        with
        | Ok (Wire.P_open_ino { oi; _ }) -> oi.Wire.token
        | _ -> Alcotest.fail "create"
      in
      ignore (call rig (Wire.Write_fd { token; off = Some 0; data = "0123456789" }));
      ignore (call rig (Wire.Inc_fd_ref { token; offset = Some 4 }));
      (* refcount 2: reads use the shared offset, no demotion *)
      (match call rig (Wire.Read_fd { token; off = None; len = 2 }) with
      | Ok (Wire.P_read { data; now_local }) ->
          Alcotest.(check string) "shared offset read" "45" data;
          Alcotest.(check bool) "not demoted yet" true (now_local = None)
      | _ -> Alcotest.fail "read");
      (* one holder closes: next op gets the offset back *)
      ignore (call rig (Wire.Close_fd { token; size = None }));
      match call rig (Wire.Read_fd { token; off = None; len = 2 }) with
      | Ok (Wire.P_read { data; now_local }) ->
          Alcotest.(check string) "continues" "67" data;
          Alcotest.(check (option int)) "demoted with offset" (Some 8) now_local
      | _ -> Alcotest.fail "read2")

let test_lookup_tracks_and_invalidates () =
  let rig = make_rig () in
  in_fiber rig (fun () ->
      ignore
        (call rig
           (Wire.Create_open
              { dir = root; name = "f"; excl = true; trunc = false; client = 1; home = 0 }));
      (* the create tracked client 1; an unlink by client 0 must push an
         invalidation to client 1's port *)
      let before = Server.invals_sent rig.server in
      ignore (call rig (Wire.Rm_map { dir = root; name = "f"; only_if = None; client = 0; home = 0 }));
      Alcotest.(check int) "one invalidation" (before + 1)
        (Server.invals_sent rig.server))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "server.rmdir-protocol",
      [
        tc "parked create, abort" `Quick test_create_parked_during_mark_abort;
        tc "parked create, commit" `Quick test_create_parked_during_mark_commit;
        tc "lock serializes" `Quick test_rmdir_lock_serializes;
        tc "prepare refuses nonempty" `Quick test_prepare_nonempty_refuses;
        tc "double prepare EBUSY" `Quick test_double_prepare_ebusy;
      ] );
    ( "server.fds",
      [
        tc "unlinked inode survives fds" `Quick test_fd_refcount_keeps_unlinked_inode;
        tc "lazy demotion reply" `Quick test_shared_offset_demotion_reply;
        tc "tracking + invalidation" `Quick test_lookup_tracks_and_invalidates;
      ] );
  ]
