(* Time-series telemetry PR: the metrics sampler must observe without
   perturbing — same seed gives bit-identical simulations with
   telemetry on or off, including under fault plans and a sharded
   migration run — the gauge rings must bound memory by dropping
   oldest, knee detection must find the saturation point of a synthetic
   series, tail retention must keep the slowest-k per class, and the
   Latency percentile helpers must be exact (and loud) on tiny inputs. *)

open Test_util
module Api = Hare_api.Api
module World = Hare_experiments.World
module Spec = Hare_workloads.Spec
module Trace = Hare_trace.Trace
module Opcount = Hare_stats.Opcount
module Latency = Hare_stats.Latency
module Metrics = Hare_metrics.Metrics
module Knee = Hare_metrics.Knee
module Blame = Hare_metrics.Blame
module Place = Hare_place.Place

(* Boot a machine from [config], run one paper workload to completion
   (setup + workers), and return the machine for inspection. *)
let run_workload ?(wname = "creates") config =
  let m = Machine.boot config in
  let api = World.Hare_w.api m in
  let spec = Hare_workloads.All.find wname in
  let nprocs = List.length (Config.app_cores config) in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"metrics-test" (fun p _ ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        List.fold_left
          (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
          0 pids)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "workers ok" (Some 0) (Machine.exit_status m init);
  m

(* [metered] turns on the full PR 9 surface — sampler, trace sink, tail
   retention — which is exactly what must be inert. *)
let base_config ?(metered = false) ?plan () =
  let c = { (small_config ~ncores:4 ()) with Config.seed = 7L } in
  let c =
    if metered then
      {
        c with
        Config.metrics_interval = 5_000;
        trace_enabled = true;
        trace_retain = 16;
      }
    else c
  in
  match plan with
  | None -> c
  | Some p ->
      { c with Config.fault_plan = p; rpc_deadline = 25_000; rpc_retries = 12 }

let sharded_config ?(metered = false) () =
  let c =
    {
      (small_config ~ncores:8 ~placement:(Config.Sharded { servers = 2; vnodes = 32 }) ())
      with
      Config.shard_plan = "add@1000";
      seed = 42L;
    }
  in
  if metered then
    {
      c with
      Config.metrics_interval = 5_000;
      trace_enabled = true;
      trace_retain = 16;
    }
  else c

(* Everything externally observable about a run, for telemetry-is-inert
   comparisons. *)
let fingerprint m =
  ( Machine.now m,
    Opcount.to_list (Machine.total_syscalls m),
    Opcount.to_list (Machine.total_server_ops m),
    Machine.total_rpcs m,
    Machine.total_invals m )

let fp :
    (int64 * (string * int) list * (string * int) list * int * int)
    Alcotest.testable =
  Alcotest.testable
    (fun ppf (now, _, _, rpcs, invals) ->
      Format.fprintf ppf "now=%Ld rpcs=%d invals=%d" now rpcs invals)
    ( = )

(* ---------- zero perturbation ------------------------------------------- *)

let test_onoff_identical () =
  let off = run_workload (base_config ()) in
  let on = run_workload (base_config ~metered:true ()) in
  Alcotest.check fp "telemetry changes nothing observable" (fingerprint off)
    (fingerprint on);
  Alcotest.(check bool) "registry present when on" true
    (Machine.metrics on <> None);
  Alcotest.(check bool) "no registry when off" true (Machine.metrics off = None)

let test_onoff_identical_under_faults () =
  (* Retry backoff draws from an RNG right where the sampler hooks sit;
     the draw order must be unchanged under drops and a crash/restart. *)
  let plan = "drop:fs:0.05;crash:1@200000+150000" in
  let off = run_workload ~wname:"writes" (base_config ~plan ()) in
  let on = run_workload ~wname:"writes" (base_config ~metered:true ~plan ()) in
  Alcotest.check fp "telemetry inert under faults" (fingerprint off)
    (fingerprint on);
  Alcotest.(check (list (pair string int)))
    "identical robustness counters"
    (Hare_stats.Robust.to_list (Machine.robustness off))
    (Hare_stats.Robust.to_list (Machine.robustness on))

let test_onoff_identical_under_migration () =
  (* A live rebalance moves homes mid-run; sampling the ring gauges
     (epoch, migrations, imbalance) must not shift the migration. *)
  let off = run_workload (sharded_config ()) in
  let on = run_workload (sharded_config ~metered:true ()) in
  Alcotest.check fp "telemetry inert across a migration" (fingerprint off)
    (fingerprint on);
  let migs m =
    match Machine.place m with
    | Some p -> Place.migrations p
    | None -> Alcotest.fail "sharded machine has no placement ring"
  in
  Alcotest.(check bool) "a home actually moved" true (migs off >= 1);
  Alcotest.(check int) "identical migration count" (migs off) (migs on)

(* ---------- sampling and the bounded ring ------------------------------- *)

let test_samples_recorded () =
  let m = run_workload (base_config ~metered:true ()) in
  match Machine.metrics m with
  | None -> Alcotest.fail "no registry"
  | Some mt ->
      Alcotest.(check bool) "gauges registered" true (Metrics.ngauges mt > 0);
      Alcotest.(check bool) "samples taken" true (Metrics.samples mt > 0);
      Alcotest.(check int) "interval as configured" 5_000 (Metrics.interval mt);
      let series = Metrics.series mt in
      Alcotest.(check int) "one series per gauge" (Metrics.ngauges mt)
        (List.length series);
      (* Stamps lie on the sampling grid and increase strictly. *)
      List.iter
        (fun (name, points) ->
          Alcotest.(check bool) (name ^ ": nonempty") true (points <> []);
          ignore
            (List.fold_left
               (fun prev (ts, _) ->
                 Alcotest.(check int) (name ^ ": on grid") 0 (ts mod 5_000);
                 Alcotest.(check bool) (name ^ ": increasing") true (ts > prev);
                 ts)
               (-1) points))
        series;
      (* Summaries agree with the raw points. *)
      List.iter2
        (fun (name, points) (s : Metrics.summary) ->
          Alcotest.(check string) "summary order matches series" name
            s.Metrics.s_name;
          Alcotest.(check int) (name ^ ": n") (List.length points)
            s.Metrics.s_n;
          let vs = List.map snd points in
          Alcotest.(check int) (name ^ ": min")
            (List.fold_left min max_int vs)
            s.Metrics.s_min;
          Alcotest.(check int) (name ^ ": max")
            (List.fold_left max min_int vs)
            s.Metrics.s_max;
          Alcotest.(check int) (name ^ ": last")
            (List.nth vs (List.length vs - 1))
            s.Metrics.s_last)
        series (Metrics.summaries mt)

let test_ring_drops_oldest () =
  let mt = Metrics.create ~cap:4 ~interval:10 () in
  let v = ref 0 in
  Metrics.register mt ~name:"g" (fun () -> !v);
  for i = 1 to 10 do
    v := i;
    Metrics.sample mt ~now:(Int64.of_int (i * 10))
  done;
  Alcotest.(check int) "all samples counted" 10 (Metrics.samples mt);
  Alcotest.(check int) "overflow counted" 6 (Metrics.dropped mt);
  match Metrics.series mt with
  | [ ("g", points) ] ->
      Alcotest.(check (list (pair int int)))
        "ring keeps the newest cap samples"
        [ (70, 7); (80, 8); (90, 9); (100, 10) ]
        points
  | _ -> Alcotest.fail "expected exactly one series"

let test_register_after_sample_rejected () =
  let mt = Metrics.create ~interval:10 () in
  Metrics.register mt ~name:"g" (fun () -> 0);
  Metrics.sample mt ~now:10L;
  Alcotest.check_raises "late registration rejected"
    (Invalid_argument "Metrics.register: gauges must be registered before sampling")
    (fun () ->
      Metrics.register mt ~name:"h" (fun () -> 0))

(* ---------- knee detection ---------------------------------------------- *)

(* [burst t0 n dur] is n spans of duration [dur] starting in the window
   at [t0]. *)
let burst t0 n dur = List.init n (fun i -> (t0 + i, dur))

let test_knee_detects_rise () =
  (* Five flat windows at p99=100, then the series jumps to 1000. *)
  let spans =
    List.concat_map (fun w -> burst (w * 100) 10 100) [ 0; 1; 2; 3; 4 ]
    @ burst 500 10 1000 @ burst 600 10 1000
  in
  match Knee.detect ~window:100 spans with
  | None -> Alcotest.fail "knee not found"
  | Some k ->
      Alcotest.(check int) "knee at first rising window" 500 k.Knee.k_at;
      Alcotest.(check int) "window width echoed" 100 k.Knee.k_window;
      Alcotest.(check int64) "flat p99" 100L k.Knee.k_before;
      Alcotest.(check int64) "risen p99" 1000L k.Knee.k_after

let test_knee_gradual_climb () =
  (* Each window is only 1.3x its neighbour — under the 1.5 factor — but
     the climb leaves the flat floor far behind; judging against the
     floor (not the previous window) must still find the knee. *)
  let spans =
    List.concat_map (fun w -> burst (w * 100) 10 100) [ 0; 1; 2 ]
    @ List.concat
        (List.mapi
           (fun i w ->
             burst (w * 100) 10
               (int_of_float (100. *. (1.3 ** float_of_int (i + 1)))))
           [ 3; 4; 5; 6 ])
  in
  match Knee.detect ~window:100 spans with
  | None -> Alcotest.fail "gradual climb missed"
  | Some k ->
      (* floor 100; 130 is under 1.5x, 169 crosses it *)
      Alcotest.(check int) "knee at the window crossing the floor factor" 400
        k.Knee.k_at;
      Alcotest.(check int64) "baseline is the flat floor" 100L k.Knee.k_before

let test_knee_flat_none () =
  let spans = List.concat_map (fun w -> burst (w * 100) 10 100) [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "flat series has no knee" true
    (Knee.detect ~window:100 spans = None)

let test_knee_skips_sparse_windows () =
  (* The rising window has only 3 completions — below min_samples — so
     it must neither trigger nor reset the reference p99. *)
  let spans =
    List.concat_map (fun w -> burst (w * 100) 10 100) [ 0; 1; 2 ]
    @ burst 300 3 100_000
    @ burst 400 10 100
  in
  Alcotest.(check bool) "sparse spike ignored" true
    (Knee.detect ~window:100 spans = None)

(* ---------- tail retention and blame ------------------------------------ *)

let retained_config () =
  {
    (small_config ~ncores:4 ()) with
    Config.trace_enabled = true;
    trace_retain = 4;
    seed = 7L;
  }

let test_retention_keeps_k_slowest () =
  let m = run_workload ~wname:"writes" (retained_config ()) in
  match Machine.trace m with
  | None -> Alcotest.fail "no sink"
  | Some tr ->
      let kept = Trace.retained tr in
      Alcotest.(check bool) "something retained" true (kept <> []);
      (* slowest-first ordering, and at most k per class *)
      ignore
        (List.fold_left
           (fun prev (r : Trace.retained) ->
             Alcotest.(check bool) "sorted slowest first" true
               (r.Trace.rt_dur <= prev);
             r.Trace.rt_dur)
           max_int kept);
      let per_class = Hashtbl.create 4 in
      List.iter
        (fun (r : Trace.retained) ->
          Hashtbl.replace per_class r.Trace.rt_cls
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_class r.Trace.rt_cls)))
        kept;
      Hashtbl.iter
        (fun cls n ->
          Alcotest.(check bool) (cls ^ ": bounded by k") true (n <= 4))
        per_class;
      (* every retained tree attributes exactly *)
      List.iter
        (fun (r : Trace.retained) ->
          Alcotest.(check int)
            (r.Trace.rt_op ^ ": buckets sum to duration")
            r.Trace.rt_dur
            (Array.fold_left ( + ) 0 r.Trace.rt_buckets))
        kept

let test_blame_reports () =
  let m = run_workload ~wname:"writes" (retained_config ()) in
  match Machine.trace m with
  | None -> Alcotest.fail "no sink"
  | Some tr ->
      let reports = Blame.of_trace tr in
      Alcotest.(check bool) "blame produced" true (reports <> []);
      List.iter
        (fun (b : Blame.t) ->
          Alcotest.(check bool) (b.Blame.b_class ^ ": examined ops") true
            (b.Blame.b_n > 0);
          Alcotest.(check bool) (b.Blame.b_class ^ ": share in (0,1]") true
            (b.Blame.b_bucket_share > 0. && b.Blame.b_bucket_share <= 1.);
          Alcotest.(check bool) (b.Blame.b_class ^ ": worst op nonempty") true
            (b.Blame.b_worst_op <> ""))
        reports;
      (* the critical path of any retained op sums exactly *)
      List.iter
        (fun (r : Trace.retained) ->
          Alcotest.(check int)
            (r.Trace.rt_op ^ ": critical path sums to duration")
            r.Trace.rt_dur
            (List.fold_left (fun acc (_, cy) -> acc + cy) 0
               (Blame.critical_path r)))
        (Trace.retained tr)

(* ---------- Latency on tiny inputs (satellite) -------------------------- *)

let test_latency_empty () =
  let d = Latency.of_durations [] in
  Alcotest.(check bool) "empty is empty" true (Latency.is_empty d);
  Alcotest.(check int) "n = 0" 0 d.Latency.n;
  Alcotest.(check bool) "Latency.empty is empty" true
    (Latency.is_empty Latency.empty);
  (* percentile never invents a 0 from nothing *)
  (match Latency.percentile [||] 99. with
  | _ -> Alcotest.fail "percentile of [||] should raise"
  | exception Invalid_argument _ -> ());
  match Latency.percentile [| 1L |] 0. with
  | _ -> Alcotest.fail "percentile at q=0 should raise"
  | exception Invalid_argument _ -> ()

let test_latency_one () =
  let d = Latency.of_durations [ 42L ] in
  Alcotest.(check bool) "not empty" false (Latency.is_empty d);
  Alcotest.(check int) "n = 1" 1 d.Latency.n;
  Alcotest.(check int64) "p50 is the sample" 42L d.Latency.p50;
  Alcotest.(check int64) "p95 is the sample" 42L d.Latency.p95;
  Alcotest.(check int64) "p99 is the sample" 42L d.Latency.p99;
  Alcotest.(check int64) "max is the sample" 42L d.Latency.lmax

let test_latency_two () =
  let d = Latency.of_durations [ 9L; 5L ] in
  Alcotest.(check int) "n = 2" 2 d.Latency.n;
  Alcotest.(check int64) "p50 is the smaller (nearest rank)" 5L d.Latency.p50;
  Alcotest.(check int64) "p95 is the larger" 9L d.Latency.p95;
  Alcotest.(check int64) "p99 is the larger" 9L d.Latency.p99;
  Alcotest.(check int64) "max is the larger" 9L d.Latency.lmax

let test_latency_hundred () =
  let d =
    Latency.of_durations (List.init 100 (fun i -> Int64.of_int (100 - i)))
  in
  Alcotest.(check int) "n = 100" 100 d.Latency.n;
  Alcotest.(check int64) "p50 = 50" 50L d.Latency.p50;
  Alcotest.(check int64) "p95 = 95" 95L d.Latency.p95;
  Alcotest.(check int64) "p99 = 99" 99L d.Latency.p99;
  Alcotest.(check int64) "max = 100" 100L d.Latency.lmax

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "metrics.zero-perturbation",
      [
        tc "telemetry on/off bit-identical" `Quick test_onoff_identical;
        tc "inert under fault plans" `Quick test_onoff_identical_under_faults;
        tc "inert across a sharded migration" `Quick
          test_onoff_identical_under_migration;
      ] );
    ( "metrics.sampling",
      [
        tc "gauges sampled on the grid" `Quick test_samples_recorded;
        tc "ring overwrites oldest, counts" `Quick test_ring_drops_oldest;
        tc "late registration rejected" `Quick
          test_register_after_sample_rejected;
      ] );
    ( "metrics.knee",
      [
        tc "finds the saturation knee" `Quick test_knee_detects_rise;
        tc "catches a gradual climb via the floor" `Quick
          test_knee_gradual_climb;
        tc "flat series has none" `Quick test_knee_flat_none;
        tc "sparse windows skipped" `Quick test_knee_skips_sparse_windows;
      ] );
    ( "metrics.tail",
      [
        tc "retention keeps slowest-k per class" `Quick
          test_retention_keeps_k_slowest;
        tc "blame reports and exact critical paths" `Quick test_blame_reports;
      ] );
    ( "metrics.latency",
      [
        tc "zero samples: empty, loud percentiles" `Quick test_latency_empty;
        tc "one sample pins every percentile" `Quick test_latency_one;
        tc "two samples split by nearest rank" `Quick test_latency_two;
        tc "hundred samples: exact ranks" `Quick test_latency_hundred;
      ] );
  ]
