(* Tests for the messaging layer: atomic delivery, RPC, payload costs. *)

open Hare_sim

let costs = Hare_config.Costs.default

let with_engine f =
  let e = Engine.create () in
  Engine.run e |> ignore;
  f e

let test_atomic_delivery () =
  (* §3.6.1: when send returns, the message is in the receiver's queue —
     even though the receiver has not run. *)
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"sender" (fun () ->
         let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
         let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
         let mb = Hare_msg.Mailbox.create ~owner ~costs () in
         Hare_msg.Mailbox.send mb ~from:sender "hello";
         Alcotest.(check int) "queued at send-return" 1
           (Hare_msg.Mailbox.pending mb)));
  Engine.run e

let test_send_costs_charged_to_sender () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
         let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
         let mb = Hare_msg.Mailbox.create ~owner ~costs () in
         let t0 = Engine.now e in
         Hare_msg.Mailbox.send mb ~from:sender "x";
         Alcotest.(check int64) "send cost"
           (Int64.of_int costs.send)
           (Int64.sub (Engine.now e) t0);
         Alcotest.(check int64) "sender busy"
           (Int64.of_int costs.send)
           (Core_res.busy_cycles sender);
         Alcotest.(check int64) "owner idle" 0L (Core_res.busy_cycles owner)));
  Engine.run e

let test_cross_socket_penalty () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let owner = Core_res.create e ~id:1 ~socket:1 ~ctx_switch:0 in
         let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
         let mb = Hare_msg.Mailbox.create ~owner ~costs () in
         let t0 = Engine.now e in
         Hare_msg.Mailbox.send mb ~from:sender "x";
         Alcotest.(check int64) "cross-socket send"
           (Int64.of_int (costs.send + costs.send_cross_socket))
           (Int64.sub (Engine.now e) t0)));
  Engine.run e

let test_mailbox_blocking_recv () =
  let e = Engine.create () in
  let got = ref "" in
  let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let mb = Hare_msg.Mailbox.create ~owner ~costs () in
  ignore
    (Engine.spawn e ~name:"receiver" (fun () -> got := Hare_msg.Mailbox.recv mb));
  ignore
    (Engine.spawn e ~name:"sender" (fun () ->
         Engine.sleep 100L;
         Hare_msg.Mailbox.send mb ~from:sender "late"));
  Engine.run e;
  Alcotest.(check string) "value" "late" !got

let test_mailbox_poll () =
  let e = Engine.create () in
  let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let mb = Hare_msg.Mailbox.create ~owner ~costs () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         Alcotest.(check (option string)) "empty" None (Hare_msg.Mailbox.poll mb);
         Hare_msg.Mailbox.send mb ~from:sender "a";
         Alcotest.(check (option string)) "ready" (Some "a")
           (Hare_msg.Mailbox.poll mb)));
  Engine.run e

let test_rpc_roundtrip () =
  let e = Engine.create () in
  let server_core = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let client_core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let ep : (int, int) Hare_msg.Rpc.t =
    Hare_msg.Rpc.endpoint ~owner:server_core ~costs ()
  in
  ignore
    (Engine.spawn e ~daemon:true ~name:"server" (fun () ->
         let rec loop () =
           let req, reply = Hare_msg.Rpc.recv ep in
           reply (req * 2);
           loop ()
         in
         loop ()));
  let results = ref [] in
  ignore
    (Engine.spawn e ~name:"client" (fun () ->
         for i = 1 to 3 do
           results := Hare_msg.Rpc.call ep ~from:client_core i :: !results
         done));
  Engine.run e;
  Alcotest.(check (list int)) "doubled" [ 6; 4; 2 ] !results

let test_rpc_overlap () =
  (* Two async calls to two servers overlap: total latency is close to one
     round trip, not two (the directory-broadcast effect, §3.6.2). *)
  let e = Engine.create () in
  let client_core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let mk_server id =
    let core = Core_res.create e ~id ~socket:0 ~ctx_switch:0 in
    let ep : (unit, unit) Hare_msg.Rpc.t =
      Hare_msg.Rpc.endpoint ~owner:core ~costs ()
    in
    ignore
      (Engine.spawn e ~daemon:true
         ~name:(Printf.sprintf "srv%d" id)
         (fun () ->
           let rec loop () =
             let (), reply = Hare_msg.Rpc.recv ep in
             Core_res.compute core 10_000;
             reply ();
             loop ()
           in
           loop ()));
    ep
  in
  let s1 = mk_server 1 and s2 = mk_server 2 in
  let seq_time = ref 0L and par_time = ref 0L in
  ignore
    (Engine.spawn e ~name:"client" (fun () ->
         let t0 = Engine.now e in
         ignore (Hare_msg.Rpc.call s1 ~from:client_core ());
         ignore (Hare_msg.Rpc.call s2 ~from:client_core ());
         seq_time := Int64.sub (Engine.now e) t0;
         let t1 = Engine.now e in
         let f1 = Hare_msg.Rpc.call_async s1 ~from:client_core () in
         let f2 = Hare_msg.Rpc.call_async s2 ~from:client_core () in
         ignore (Hare_msg.Rpc.await ~from:client_core ~costs f1);
         ignore (Hare_msg.Rpc.await ~from:client_core ~costs f2);
         par_time := Int64.sub (Engine.now e) t1));
  Engine.run e;
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%Ld) well under sequential (%Ld)" !par_time
       !seq_time)
    true
    (Int64.to_float !par_time < 0.75 *. Int64.to_float !seq_time)

let test_rpc_parked_reply () =
  (* A server may stash the reply closure and answer later without
     blocking its loop — the pipe/rmdir parking pattern. *)
  let e = Engine.create () in
  let server_core = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
  let client_core = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
  let ep : ([ `Park | `Wake ], string) Hare_msg.Rpc.t =
    Hare_msg.Rpc.endpoint ~owner:server_core ~costs ()
  in
  ignore
    (Engine.spawn e ~daemon:true ~name:"server" (fun () ->
         let parked = ref None in
         let rec loop () =
           let req, reply = Hare_msg.Rpc.recv ep in
           (match req with
           | `Park -> parked := Some reply
           | `Wake ->
               (match !parked with
               | Some r ->
                   r "you first";
                   parked := None
               | None -> ());
               reply "done");
           loop ()
         in
         loop ()));
  let order = ref [] in
  ignore
    (Engine.spawn e ~name:"parker" (fun () ->
         let r = Hare_msg.Rpc.call ep ~from:client_core `Park in
         order := r :: !order));
  ignore
    (Engine.spawn e ~name:"waker" (fun () ->
         Engine.sleep 1000L;
         let r = Hare_msg.Rpc.call ep ~from:client_core `Wake in
         order := r :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "parked answered first" [ "done"; "you first" ]
    !order

let test_payload_lines_cost () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
         let sender = Core_res.create e ~id:0 ~socket:0 ~ctx_switch:0 in
         let mb = Hare_msg.Mailbox.create ~owner ~costs () in
         let t0 = Engine.now e in
         Hare_msg.Mailbox.send mb ~from:sender ~payload_lines:64 "4k";
         Alcotest.(check int64) "bulk payload cost"
           (Int64.of_int (costs.send + (64 * costs.msg_per_line)))
           (Int64.sub (Engine.now e) t0)));
  Engine.run e

let test_unwatch_rewatch () =
  (* A named mailbox holds an engine depth probe; crash handling drops
     it ([unwatch]) so deadlock reports skip dead queues, and restart
     brings it back ([rewatch]). Both directions are idempotent. *)
  let e = Engine.create () in
  ignore
    (Engine.spawn e ~name:"t" (fun () ->
         let owner = Core_res.create e ~id:1 ~socket:0 ~ctx_switch:0 in
         let mb = Hare_msg.Mailbox.create ~name:"fs0" ~owner ~costs () in
         let anon = Hare_msg.Mailbox.create ~owner ~costs () in
         Alcotest.(check int) "named mailbox registers" 1 (Engine.probe_count e);
         Hare_msg.Mailbox.unwatch mb;
         Alcotest.(check int) "unwatch drops it" 0 (Engine.probe_count e);
         Hare_msg.Mailbox.unwatch mb;
         Alcotest.(check int) "unwatch idempotent" 0 (Engine.probe_count e);
         Hare_msg.Mailbox.rewatch mb;
         Alcotest.(check int) "rewatch restores" 1 (Engine.probe_count e);
         Hare_msg.Mailbox.rewatch mb;
         Alcotest.(check int) "rewatch idempotent" 1 (Engine.probe_count e);
         Hare_msg.Mailbox.unwatch anon;
         Hare_msg.Mailbox.rewatch anon;
         Alcotest.(check int) "unnamed mailbox is a no-op" 1
           (Engine.probe_count e)));
  Engine.run e

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "msg.mailbox",
      [
        tc "atomic delivery" `Quick test_atomic_delivery;
        tc "send cost to sender" `Quick test_send_costs_charged_to_sender;
        tc "cross-socket penalty" `Quick test_cross_socket_penalty;
        tc "blocking recv" `Quick test_mailbox_blocking_recv;
        tc "poll" `Quick test_mailbox_poll;
        tc "payload cost" `Quick test_payload_lines_cost;
        tc "unwatch/rewatch probe" `Quick test_unwatch_rewatch;
      ] );
    ( "msg.rpc",
      [
        tc "roundtrip" `Quick test_rpc_roundtrip;
        tc "async overlap" `Quick test_rpc_overlap;
        tc "parked reply" `Quick test_rpc_parked_reply;
      ] );
  ]

let _ = with_engine
