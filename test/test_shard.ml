(* Consistent-hash sharding PR: the [Sharded] placement must be
   bit-identical to [Split] while the ring membership is stable, live
   rebalancing (server add / remove mid-workload) must leave the file
   system exactly as a static ring would, migration must compose with
   the PR-1 fault plans, and every sharded run must stay
   sanitizer-clean. *)

open Test_util
module Api = Hare_api.Api
module World = Hare_experiments.World
module Spec = Hare_workloads.Spec
module Place = Hare_place.Place
module Check = Hare_check.Check
module Sanity = Hare_stats.Sanity
module Opcount = Hare_stats.Opcount

(* ---------- configs ----------------------------------------------------- *)

let sharded_config ?(ncores = 8) ?(servers = 2) ?(vnodes = 32) ?(plan = "")
    ?(check = false) ?fault () =
  let c =
    {
      (small_config ~ncores
         ~placement:(Config.Sharded { servers; vnodes })
         ())
      with
      Config.shard_plan = plan;
      check_enabled = check;
      seed = 42L;
    }
  in
  match fault with
  | None -> c
  | Some f ->
      { c with Config.fault_plan = f; rpc_deadline = 25_000; rpc_retries = 12 }

(* Boot [config], run one paper workload to completion, optionally
   snapshot the final tree (canonical sorted path list, see
   [Test_fault.snapshot]); return the machine and the tree. *)
let run_workload ?(wname = "creates") ?(snap = false) ?nprocs config =
  let m = Machine.boot config in
  let api = World.Hare_w.api m in
  let spec = Hare_workloads.All.find wname in
  let nprocs =
    match nprocs with
    | Some n -> n
    | None -> List.length (Config.app_cores config)
  in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let tree = ref [] in
  let init, _ =
    Machine.spawn_init m ~name:"shard-test" (fun p _ ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let pids =
          List.init nprocs (fun i ->
              Posix.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        let bad =
          List.fold_left
            (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
            0 pids
        in
        if bad = 0 && snap then tree := List.rev (Test_fault.snapshot p "/" []);
        bad)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "workers ok" (Some 0) (Machine.exit_status m init);
  (m, !tree)

let ring m =
  match Machine.place m with
  | Some p -> p
  | None -> Alcotest.fail "sharded machine has no placement ring"

let assert_clean name m =
  match Machine.check m with
  | None -> Alcotest.fail (name ^ ": sanitizer not attached")
  | Some chk ->
      let s = Check.stats chk in
      if Sanity.total_violations s > 0 then begin
        List.iter
          (fun v -> Format.eprintf "%a@." Check.pp_violation v)
          (Check.violations chk);
        Alcotest.failf "%s: %d sanitizer violation(s)" name
          (Sanity.total_violations s)
      end

(* ---------- Config.validate --------------------------------------------- *)

let valid c = Alcotest.(check (result unit string)) "accepted" (Ok ()) c

let invalid frag c =
  match c with
  | Ok () -> Alcotest.failf "expected rejection mentioning %S" frag
  | Error msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg frag)
        true (contains msg frag)

let test_validate () =
  let cfg ?(servers = 2) ?(vnodes = 32) ?(plan = "") ?(ncores = 8) () =
    Config.validate
      {
        (small_config ~ncores
           ~placement:(Config.Sharded { servers; vnodes })
           ())
        with
        Config.shard_plan = plan;
      }
  in
  valid (cfg ());
  valid (cfg ~plan:"add@1000" ());
  valid (cfg ~servers:3 ~plan:"add@1000;remove:1@2000" ());
  invalid "positive" (cfg ~servers:0 ());
  invalid "vnodes" (cfg ~vnodes:0 ());
  (* servers + planned adds must still leave an application core *)
  invalid "application core"
    (cfg ~ncores:4 ~servers:3 ~plan:"add@1000" ());
  invalid "outside the ring" (cfg ~plan:"remove:9@1000" ());
  invalid "twice" (cfg ~servers:3 ~plan:"remove:1@10;remove:1@20" ());
  invalid "at least one server"
    (cfg ~servers:2 ~plan:"remove:0@10;remove:1@20" ());
  (* a plan without the Sharded placement is meaningless *)
  invalid "Sharded"
    (Config.validate
       {
         (small_config ~ncores:8 ~placement:(Config.Split 2) ()) with
         Config.shard_plan = "add@1000";
       });
  (* unparsable plans are caught at validation, not at boot *)
  (match cfg ~plan:"bogus" () with
  | Ok () -> Alcotest.fail "nonsense plan accepted"
  | Error _ -> ())

(* ---------- Place units ------------------------------------------------- *)

let test_parse_plan () =
  (match Place.parse_plan "add@1000;remove:2@3000" with
  | Ok [ Place.Add { at = a }; Place.Remove { sid = 2; at = b } ] ->
      Alcotest.(check int64) "add at" 1000L a;
      Alcotest.(check int64) "remove at" 3000L b
  | Ok evs -> Alcotest.failf "wrong events (%d)" (List.length evs)
  | Error e -> Alcotest.fail e);
  (match Place.parse_plan "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty plan not empty"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "count_adds" 2
    (Place.count_adds "add@1;add@2;remove:0@3");
  Alcotest.(check int) "count_adds on garbage" 0 (Place.count_adds "bogus");
  List.iter
    (fun bad ->
      match Place.parse_plan bad with
      | Ok _ -> Alcotest.failf "plan %S accepted" bad
      | Error _ -> ())
    [ "bogus"; "add"; "remove:x@10"; "remove:1"; "add@x" ]

let test_place_identity () =
  let p = Place.create ~nhomes:4 ~vnodes:8 ~events:[] in
  Alcotest.(check bool) "static ring is not migratory" false
    (Place.migratory p);
  Alcotest.(check int) "no spares" 4 (Place.nphys p);
  Alcotest.(check int) "epoch 0" 0 (Place.epoch p);
  for h = 0 to 3 do
    Alcotest.(check int) "identity route" h (Place.phys p h)
  done

let test_place_rebalance () =
  let p = Place.create ~nhomes:8 ~vnodes:16 ~events:[ Place.Add { at = 0L } ] in
  Alcotest.(check bool) "planned ring is migratory" true (Place.migratory p);
  Alcotest.(check int) "one spare booted" 9 (Place.nphys p);
  Alcotest.(check bool) "spare starts idle" false (Place.active p 8);
  Place.activate p 8;
  let moved = List.sort compare (Place.plan_add p 8) in
  Alcotest.(check bool) "an add is never a no-op" true (moved <> []);
  Alcotest.(check bool) "moves only real homes" true
    (List.for_all (fun h -> h >= 0 && h < 8) moved);
  List.iter (fun h -> Place.set_route p ~home:h ~dst:8) moved;
  Alcotest.(check (list int)) "homes_of tracks the routes" moved
    (List.sort compare (Place.homes_of p 8));
  (* minimal disruption: every other home keeps its identity route *)
  List.iter
    (fun h ->
      if not (List.mem h moved) then
        Alcotest.(check int) "untouched home stays put" h (Place.phys p h))
    (List.init 8 Fun.id);
  Place.commit p;
  Alcotest.(check int) "epoch bumped" 1 (Place.epoch p);
  (* retiring the spare drains exactly the homes it holds, each onto a
     still-active server *)
  Place.deactivate p 8;
  let back = Place.plan_remove p 8 in
  Alcotest.(check (list int)) "remove drains exactly its homes" moved
    (List.sort compare (List.map fst back));
  List.iter
    (fun (_, dst) ->
      Alcotest.(check bool) "destination active" true
        (dst < 8 && Place.active p dst))
    back

(* ---------- bit-identity (acceptance criterion) ------------------------- *)

(* A membership-stable Sharded ring must be indistinguishable from the
   equivalent Split configuration: same seed => same final clock, same
   op mix, same RPC and invalidation counts, cycle for cycle. *)
let test_split_identical () =
  let base placement =
    { (small_config ~ncores:8 ~placement ()) with Config.seed = 7L }
  in
  let msplit, _ = run_workload (base (Config.Split 2)) in
  let mshard, _ =
    run_workload (base (Config.Sharded { servers = 2; vnodes = 32 }))
  in
  Alcotest.(check int64) "same final clock" (Machine.now msplit)
    (Machine.now mshard);
  Alcotest.(check (list (pair string int)))
    "same syscall mix"
    (Opcount.to_list (Machine.total_syscalls msplit))
    (Opcount.to_list (Machine.total_syscalls mshard));
  Alcotest.(check (list (pair string int)))
    "same server op mix"
    (Opcount.to_list (Machine.total_server_ops msplit))
    (Opcount.to_list (Machine.total_server_ops mshard));
  Alcotest.(check int) "same rpc count" (Machine.total_rpcs msplit)
    (Machine.total_rpcs mshard);
  Alcotest.(check int) "same invalidations" (Machine.total_invals msplit)
    (Machine.total_invals mshard);
  Alcotest.(check int) "no EMOVED traffic on a stable ring" 0
    (Machine.total_moved_rejects mshard + Machine.total_moved_retries mshard)

(* ---------- migration vs. the static oracle ----------------------------- *)

(* The fault-free, membership-stable tree each migration case must
   reproduce exactly (same workload, same seed, no plan). An add plan
   boots its spare on what would otherwise be an application core, so
   every compared run pins the worker count to the smallest app-core
   count across the cases (5 of 8 cores with one spare). *)
let oracle_nprocs = 5

let static_oracle =
  lazy (snd (run_workload ~snap:true ~nprocs:oracle_nprocs (sharded_config ())))

let check_tree name tree =
  Alcotest.(check (list string))
    (name ^ ": tree matches the static oracle")
    (Lazy.force static_oracle) tree

let test_migrate_add () =
  let m, tree =
    run_workload ~snap:true ~nprocs:oracle_nprocs
      (sharded_config ~plan:"add@200000" ())
  in
  check_tree "add" tree;
  let p = ring m in
  Alcotest.(check bool) "a home actually moved" true (Place.migrations p >= 1);
  Alcotest.(check int) "no migration aborted" 0 (Place.aborted p);
  Alcotest.(check int) "membership change committed" 1 (Place.epoch p)

let test_migrate_remove () =
  let m, tree =
    run_workload ~snap:true ~nprocs:oracle_nprocs
      (sharded_config ~servers:3 ~plan:"remove:1@200000" ())
  in
  check_tree "remove" tree;
  let p = ring m in
  Alcotest.(check bool) "drained homes moved" true (Place.migrations p >= 1);
  Alcotest.(check bool) "server 1 retired" false (Place.active p 1);
  Alcotest.(check (list int)) "server 1 hosts nothing" []
    (Place.homes_of p 1)

(* ---------- migration under PR-1 fault plans ----------------------------- *)

let test_migrate_under_drop_dup () =
  let m, tree =
    run_workload ~snap:true ~nprocs:oracle_nprocs
      (sharded_config ~plan:"add@200000"
         ~fault:"drop:fs:0.05; dup:fs:0.02" ())
  in
  check_tree "drop+dup" tree;
  Alcotest.(check bool) "migration still happened" true
    (Place.migrations (ring m) >= 1)

let test_migrate_under_crash () =
  (* crash/restart one original server while the plan later migrates a
     home onto the fresh spare: recovery and rebalancing must compose *)
  let m, tree =
    run_workload ~snap:true ~nprocs:oracle_nprocs
      (sharded_config ~plan:"add@200000" ~fault:"crash:0@80000+60000" ())
  in
  check_tree "crash" tree;
  Alcotest.(check bool) "migration still happened" true
    (Place.migrations (ring m) >= 1)

(* ---------- sanitizer-clean sharded runs --------------------------------- *)

let test_sharded_clean_static () =
  let m, _ = run_workload (sharded_config ~check:true ()) in
  assert_clean "static sharded" m

let test_sharded_clean_migrating () =
  (* one add and one remove mid-run: the spare takes a home at 200k and
     gives it back when retired at 500k *)
  let m, tree =
    run_workload ~snap:true ~nprocs:oracle_nprocs
      (sharded_config ~check:true ~plan:"add@200000;remove:2@500000" ())
  in
  assert_clean "migrating sharded" m;
  check_tree "add+remove" tree;
  let p = ring m in
  Alcotest.(check bool) "both changes migrated homes" true
    (Place.migrations p >= 2);
  Alcotest.(check int) "both changes committed" 2 (Place.epoch p)

(* ---------- EMOVED chase vs. an open circuit breaker -------------------- *)

(* A bounce chase must bypass the breaker's fast-fail: EMOVED means the
   shard *moved*, not that the destination is sick, so the re-resolved
   resend goes out even while the destination's breaker is open (the
   reply then closes it — any delivered reply proves the server alive).
   The race: probers' stats are admitted just after the route flip,
   while the destination has not yet installed the shard, so they bounce
   and chase; a helper then trips every prober client's breaker for the
   destination while those chases are mid-flight. A regression that
   re-checked admission on the resend would fast-fail the chase into
   EIO, failing the probers and the counters below. *)
let test_moved_chase_bypasses_breaker () =
  (* Late enough that setup (16 creates, 17 spawns) has finished and
     every prober is parked on its own core waiting for the flip. *)
  let flip = 1_200_000L in
  let nfiles = 16 in
  let config =
    {
      (* 18 app cores: every prober gets its own core, so all second
         stats enter at the same simulated instant. *)
      (sharded_config ~ncores:21 ~plan:"add@1200000" ~check:true ()) with
      Config.rpc_deadline = 25_000;
      rpc_retries = 12;
      breaker_threshold = 1;
    }
  in
  let m = Machine.boot config in
  let path i = Printf.sprintf "/mv/f%d" i in
  Machine.register_program m "prober" (fun p args ->
      let i = int_of_string (List.hd args) in
      (* Warm the dircache well before the flip so the post-flip stat is
         a single direct RPC entering exactly at its wake time. The
         warm-ups are staggered: sixteen simultaneous lookups of the
         same parent would queue past the RPC deadline and trip real
         give-ups before the part of the run under test. *)
      Posix.sleep_until p (Int64.of_int (1_000_000 + (5_000 * i)));
      ignore (Posix.stat p (path i));
      Posix.sleep_until p (Int64.add flip 50L);
      match (Posix.stat p (path i)).Hare_proto.Types.a_size with
      | 7 -> 0
      | _ -> 1
      | exception e ->
          (* Printed only on regression, to name the errno that killed
             the chase. *)
          Printf.eprintf "prober %d: %s\n%!" i (Printexc.to_string e);
          2);
  Machine.register_program m "tripper" (fun p _ ->
      (* After every prober's stat is in flight, before the first chase
         resend completes: force the destination's breaker open on every
         client. The rebalancing coordinator is unaffected (it calls the
         endpoints directly, not through a client). *)
      Posix.sleep_until p (Int64.add flip 300L);
      let dst = Place.nhomes (ring m) in
      Array.iter
        (fun c -> Hare_client.Client.trip_breaker c dst)
        (Machine.clients m);
      0);
  let init, _ =
    Machine.spawn_init m ~name:"moved-vs-breaker" (fun p _ ->
        Posix.mkdir p "/mv";
        for i = 0 to nfiles - 1 do
          let fd = Posix.openf p (path i) Hare_proto.Types.flags_w in
          Posix.write_all p fd "payload";
          Posix.close p fd
        done;
        let pids =
          List.init nfiles (fun i ->
              Posix.spawn p ~prog:"prober" ~args:[ string_of_int i ])
          @ [ Posix.spawn p ~prog:"tripper" ~args:[] ]
        in
        List.fold_left
          (fun acc pid -> if Posix.waitpid p pid <> 0 then acc + 1 else acc)
          0 pids)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int))
    "every prober's stat succeeded despite the open breaker" (Some 0)
    (Machine.exit_status m init);
  Alcotest.(check bool) "a home actually moved" true
    (Place.migrations (ring m) >= 1);
  Alcotest.(check bool) "at least one stat bounced and chased" true
    (Machine.total_moved_retries m >= 1);
  let r = Machine.robustness m in
  Alcotest.(check bool) "the tripped breakers really opened" true
    (r.Hare_stats.Robust.breaker_opens >= 1);
  Alcotest.(check int) "no chase was fast-failed" 0
    r.Hare_stats.Robust.fast_fails;
  Alcotest.(check int) "no request gave up" 0 r.Hare_stats.Robust.giveups;
  assert_clean "moved-vs-breaker" m

(* ---------- suites ------------------------------------------------------- *)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "shard.config",
      [ tc "validate accepts/rejects sharded configs" `Quick test_validate ] );
    ( "shard.place",
      [
        tc "plan grammar" `Quick test_parse_plan;
        tc "stable ring is the identity" `Quick test_place_identity;
        tc "add/remove move minimal homes" `Quick test_place_rebalance;
      ] );
    ( "shard.identity",
      [ tc "stable ring bit-identical to Split" `Quick test_split_identical ]
    );
    ( "shard.migration",
      [
        tc "server add mid-workload matches oracle" `Quick test_migrate_add;
        tc "server remove mid-workload matches oracle" `Quick
          test_migrate_remove;
        tc "migration under drop+dup faults" `Quick test_migrate_under_drop_dup;
        tc "migration under crash/restart" `Quick test_migrate_under_crash;
        tc "EMOVED chase bypasses an open breaker" `Quick
          test_moved_chase_bypasses_breaker;
      ] );
    ( "shard.sanitizer",
      [
        tc "static sharded run clean" `Quick test_sharded_clean_static;
        tc "add+remove run clean" `Quick test_sharded_clean_migrating;
      ] );
  ]
