(* PR 2 pipeline behaviour: RPC coalescing fast paths observed through
   rpc_count, the client send window (deferred close/unlink), server
   batch dispatch, extent-granularity allocation, the bounded directory
   cache, and the PR 1 fault soak re-run with every pipeline knob wide
   open. Paper-faithful defaults (window 1, batch 1, extent 1) must stay
   bit-identical; the knobs must only move cost counters, never the
   produced file-system state. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Client = Hare_client.Client
module Dircache = Hare_client.Dircache
module Server = Hare_server.Server
module Perf = Hare_stats.Perf
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module HD = Driver.Make (World.Hare_w)

let client_of m p = (Machine.clients m).(p.P.core_id)

let rpc_delta m p f =
  let c = client_of m p in
  let before = Client.rpc_count c in
  f ();
  Client.rpc_count c - before

(* ---------- coalescing fast paths (§3.6.3) ----------------------------- *)

let test_coalesced_single_server () =
  (* One core, one server, everything colocated: the create/mkdir fast
     paths must collapse to exactly one message. *)
  ignore
    (run ~config:(small_config ~ncores:1 ()) (fun m p ->
         let creat = rpc_delta m p (fun () -> Posix.close p (Posix.creat p "/f")) in
         (* Create_open coalesces inode + entry + fd: 1 RPC; the close is
            the second. *)
         Alcotest.(check int) "creat+close = Create_open + Close_fd" 2 creat;
         let mk = rpc_delta m p (fun () -> Posix.mkdir p "/d") in
         Alcotest.(check int) "mkdir = one Create_dir" 1 mk;
         (* Centralized rmdir: Rmdir_local coalesces the emptiness check
            and removal; only the parent entry needs a second message. *)
         let rm = rpc_delta m p (fun () -> Posix.rmdir p "/d") in
         Alcotest.(check int) "rmdir = Rmdir_local + Rm_map" 2 rm;
         0))

let test_fallback_cross_socket () =
  (* Two single-core sockets. Root's entries all live on root's home
     server (socket 0), so a client on socket 1 can never coalesce:
     creation affinity places the inode on its local server (1 RPC) and
     the entry on root's server (1 more). The same ops from socket 0
     coalesce to a single message. *)
  let config =
    { (Config.v ~ncores:2 ()) with
      Config.buffer_cache_blocks = 1024;
      cores_per_socket = 1;
    }
  in
  let m = Machine.boot config in
  Machine.register_program m "nop" (fun _ _ -> 0);
  Machine.register_program m "remote-creator" (fun p _ ->
      if p.P.core_id = 0 then 20 (* placement assumption broken *)
      else begin
        let d1 =
          rpc_delta m p (fun () -> ignore (Posix.creat p "/remote-file"))
        in
        let d2 = rpc_delta m p (fun () -> Posix.mkdir p "/remote-dir") in
        if d1 <> 2 then 21 else if d2 <> 2 then 22 else 0
      end);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        (* Round-robin placement starts at core 0; burn that slot so the
           next spawn lands on core 1 (the other socket). *)
        let pid = Posix.spawn p ~prog:"nop" ~args:[] in
        ignore (Posix.waitpid p pid);
        let pid = Posix.spawn p ~prog:"remote-creator" ~args:[] in
        (match Posix.waitpid p pid with 0 -> () | n -> Posix.exit p n);
        let d1 =
          rpc_delta m p (fun () -> ignore (Posix.creat p "/local-file"))
        in
        let d2 = rpc_delta m p (fun () -> Posix.mkdir p "/local-dir") in
        if d1 <> 1 then 23 else if d2 <> 1 then 24 else 0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "coalesced locally, fallback remotely"
    (Some 0)
    (Machine.exit_status m init)

let test_rmdir_distributed_multi_rpc () =
  (* A distributed directory spreads its shards over every server: rmdir
     needs the three-phase protocol (lock, prepare on every shard,
     commit), far beyond the centralized 2-RPC fast path. *)
  ignore
    (run ~config:(small_config ~ncores:4 ()) (fun m p ->
         Posix.mkdir p ~dist:true "/dist";
         let d = rpc_delta m p (fun () -> Posix.rmdir p "/dist") in
         Alcotest.(check bool)
           (Printf.sprintf "distributed rmdir is multi-RPC (got %d)" d)
           true (d > 2);
         0))

(* ---------- client send window ----------------------------------------- *)

let windowed_config ?(ncores = 2) () =
  { (small_config ~ncores ()) with Config.rpc_window = 8 }

let test_window_correctness () =
  (* Deferred closes must not change what later opens observe; process
     teardown must drain the window. *)
  let m =
    run ~config:(windowed_config ()) (fun m p ->
        for i = 0 to 19 do
          let path = Printf.sprintf "/w%02d" i in
          let fd = Posix.creat p path in
          Posix.write_all p fd (Printf.sprintf "payload-%02d" i);
          Posix.close p fd
        done;
        for i = 0 to 19 do
          let path = Printf.sprintf "/w%02d" i in
          let fd = Posix.openf p path flags_r in
          let s = Posix.read_all p fd in
          Alcotest.(check string) path (Printf.sprintf "payload-%02d" i) s;
          Posix.close p fd
        done;
        ignore (rpc_delta m p (fun () -> ()));
        0)
  in
  let perf = Machine.perf m in
  Alcotest.(check bool) "closes were deferred" true (perf.Perf.deferred > 0);
  Alcotest.(check bool) "window depth exceeded 1" true
    (perf.Perf.window_hwm > 1);
  (* Teardown drained everything: every server saw its deferred closes,
     so no descriptor tokens leak. *)
  Array.iter
    (fun s -> Alcotest.(check int) "no open tokens leak" 0 (Server.open_tokens s))
    (Machine.servers m)

let count_closes ~window =
  let config = { (small_config ~ncores:1 ()) with Config.rpc_window = window } in
  let m =
    run ~config (fun _m p ->
        for i = 0 to 49 do
          Posix.close p (Posix.creat p (Printf.sprintf "/c%02d" i))
        done;
        0)
  in
  Machine.now m

let test_window_saves_cycles () =
  (* Same program, window 1 vs 8: deferring the close replies removes a
     blocking receive (and its context switches) from every iteration. *)
  let base = count_closes ~window:1 in
  let piped = count_closes ~window:8 in
  Alcotest.(check bool)
    (Printf.sprintf "window=8 finishes earlier (%Ld vs %Ld)" piped base)
    true
    (Int64.compare piped base < 0)

(* ---------- server batch dispatch -------------------------------------- *)

let test_batch_histogram () =
  (* Several clients hammering shared servers with deferred sends: the
     dispatch loop must observe multi-message wakeups. *)
  let config =
    { (small_config ~ncores:4 ()) with Config.rpc_window = 8; batch_max = 8 }
  in
  let m = Machine.boot config in
  Machine.register_program m "mill" (fun p args ->
      let idx = List.hd args in
      for i = 0 to 49 do
        Posix.close p (Posix.creat p (Printf.sprintf "/m%s-%02d" idx i))
      done;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pids =
          List.init 4 (fun i ->
              Posix.spawn p ~prog:"mill" ~args:[ string_of_int i ])
        in
        List.fold_left (fun acc pid -> acc + Posix.waitpid p pid) 0 pids)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "all ok" (Some 0) (Machine.exit_status m init);
  let perf = Machine.perf m in
  Alcotest.(check bool) "servers woke up" true (perf.Perf.batches > 0);
  Alcotest.(check bool) "some wakeups drained several requests" true
    (perf.Perf.batched_msgs > perf.Perf.batches)

let test_knobs_save_cycles_end_to_end () =
  (* The acceptance ablation in miniature: the figure-5 creates workload
     at 4 cores, defaults vs window/batch/extent at 8. *)
  let base = HD.run ~config:(Driver.default_config ~ncores:4) (Hare_workloads.All.find "creates") in
  let piped =
    HD.run
      ~config:
        {
          (Driver.default_config ~ncores:4) with
          Config.rpc_window = 8;
          batch_max = 8;
          alloc_extent = 8;
        }
      (Hare_workloads.All.find "creates")
  in
  Alcotest.(check bool)
    (Printf.sprintf "8/8/8 beats 1/1/1 (%.0f vs %.0f us)"
       (piped.Driver.elapsed *. 1e6)
       (base.Driver.elapsed *. 1e6))
    true
    (piped.Driver.elapsed < base.Driver.elapsed);
  Alcotest.(check int) "same op count" base.Driver.ops piped.Driver.ops

(* ---------- extent-granularity allocation ------------------------------ *)

let grow_file ~extent =
  let config = { (small_config ~ncores:1 ()) with Config.alloc_extent = extent } in
  let chunk = String.make Hare_mem.Layout.block_size 'x' in
  let rpcs = ref 0 in
  let m =
    run ~config (fun m p ->
        let fd = Posix.creat p "/big" in
        rpcs :=
          rpc_delta m p (fun () ->
              for _ = 1 to 16 do
                Posix.write_all p fd chunk
              done);
        Posix.close p fd;
        0)
  in
  (m, !rpcs)

let test_extent_lease_saves_rpcs () =
  let m1, base_rpcs = grow_file ~extent:1 in
  let m8, lease_rpcs = grow_file ~extent:8 in
  Alcotest.(check bool)
    (Printf.sprintf "extent=8 allocates in fewer RPCs (%d vs %d)" lease_rpcs
       base_rpcs)
    true
    (lease_rpcs < base_rpcs);
  let perf = Machine.perf m8 in
  Alcotest.(check bool) "lease hits recorded" true (perf.Perf.lease_hits > 0);
  (* Lease reclamation at last close: both machines end up with the same
     number of free blocks — over-allocation never outlives the fd. *)
  let free m =
    Array.fold_left (fun acc s -> acc + Server.available_blocks s) 0
      (Machine.servers m)
  in
  Alcotest.(check int) "lease blocks returned on close" (free m1) (free m8)

(* ---------- bounded directory cache ------------------------------------ *)

let test_dircache_eviction () =
  let config =
    { (small_config ~ncores:1 ()) with Config.dircache_capacity = 4 }
  in
  ignore
    (run ~config (fun m p ->
         for i = 0 to 11 do
           Posix.close p (Posix.creat p (Printf.sprintf "/e%02d" i))
         done;
         let dc = Client.dircache (client_of m p) in
         Alcotest.(check bool)
           (Printf.sprintf "cache stayed within capacity (size %d)"
              (Dircache.size dc))
           true
           (Dircache.size dc <= 4);
         Alcotest.(check bool) "evictions counted" true
           (Dircache.evictions dc > 0);
         (* Evicted entries are merely forgotten, not wrong: a fresh stat
            refetches them. *)
         ignore (Posix.stat p "/e00");
         0))

(* ---------- PR 1 fault soak with the pipeline wide open ----------------- *)

let pipelined ?(window = 8) ?(batch = 8) ?(extent = 8) config =
  { config with Config.rpc_window = window; batch_max = batch;
    alloc_extent = extent }

let test_fault_soak_pipelined_lossy () =
  (* Message faults under deferred sends and batched dispatch: the
     retry/dedup machinery must still converge to the fault-free tree. *)
  let config =
    pipelined
      (Test_fault.soak_config
         ~plan:"drop:fs:0.04;dup:fs:0.04;delay:fs:0.06:4000" ~deadline:25_000
         ())
  in
  let tree, r, _, _ = Test_fault.run_fsstress config in
  Test_fault.check_tree "pipelined-lossy" tree;
  Alcotest.(check bool) "retries happened" true
    (r.Hare_stats.Robust.retries > 0);
  Alcotest.(check int) "nobody gave up" 0 r.Hare_stats.Robust.giveups

let test_fault_soak_pipelined_crash () =
  (* A server crash while extent leases are outstanding: restart must
     trim leases and forget tokens without corrupting the tree. *)
  let config =
    pipelined
      (Test_fault.soak_config ~plan:"crash:2@1000000+300000" ~deadline:25_000
         ())
  in
  let tree, r, _, _ = Test_fault.run_fsstress config in
  Test_fault.check_tree "pipelined-crash" tree;
  Alcotest.(check int) "one crash" 1 r.Hare_stats.Robust.crashes;
  Alcotest.(check int) "nobody gave up" 0 r.Hare_stats.Robust.giveups

let suites =
  [
    ( "pipeline.coalescing",
      [
        Alcotest.test_case "single server fast paths" `Quick
          test_coalesced_single_server;
        Alcotest.test_case "cross-socket fallback" `Quick
          test_fallback_cross_socket;
        Alcotest.test_case "distributed rmdir" `Quick
          test_rmdir_distributed_multi_rpc;
      ] );
    ( "pipeline.window",
      [
        Alcotest.test_case "deferred closes correct" `Quick
          test_window_correctness;
        Alcotest.test_case "window saves cycles" `Quick
          test_window_saves_cycles;
      ] );
    ( "pipeline.batch",
      [
        Alcotest.test_case "batch histogram" `Quick test_batch_histogram;
        Alcotest.test_case "knobs save cycles" `Quick
          test_knobs_save_cycles_end_to_end;
      ] );
    ( "pipeline.extent",
      [
        Alcotest.test_case "lease saves rpcs" `Quick
          test_extent_lease_saves_rpcs;
      ] );
    ( "pipeline.dircache",
      [ Alcotest.test_case "bounded lru" `Quick test_dircache_eviction ] );
    ( "pipeline.faults",
      [
        Alcotest.test_case "lossy soak, knobs open" `Quick
          test_fault_soak_pipelined_lossy;
        Alcotest.test_case "crash soak, knobs open" `Quick
          test_fault_soak_pipelined_crash;
      ] );
  ]
