open Hare_proto

type 'p t = {
  openf : 'p -> string -> Types.open_flags -> int;
  close : 'p -> int -> unit;
  read : 'p -> int -> len:int -> string;
  write : 'p -> int -> string -> int;
  lseek : 'p -> int -> pos:int -> Types.whence -> int;
  dup2 : 'p -> src:int -> dst:int -> int;
  pipe : 'p -> int * int;
  fsync : 'p -> int -> unit;
  ftruncate : 'p -> int -> size:int -> unit;
  unlink : 'p -> string -> unit;
  mkdir : 'p -> dist:bool -> string -> unit;
  rmdir : 'p -> string -> unit;
  rename : 'p -> string -> string -> unit;
  readdir : 'p -> string -> (string * Types.ftype) list;
  stat : 'p -> string -> Types.attr;
  exists : 'p -> string -> bool;
  chdir : 'p -> string -> unit;
  fork : 'p -> ('p -> int) -> Types.pid;
  spawn : 'p -> prog:string -> args:string list -> Types.pid;
  waitpid : 'p -> Types.pid -> int;
  wait : 'p -> Types.pid * int;
  kill : 'p -> Types.pid -> int -> unit;
  register_program : string -> ('p -> string list -> int) -> unit;
  compute : 'p -> int -> unit;
  random : 'p -> int -> int;
  print : 'p -> string -> unit;
  core_of : 'p -> int;
  now_cycles : 'p -> int64;
  sleep_until : 'p -> int64 -> unit;
}

let write_all api p fd data =
  let len = String.length data in
  let rec go off =
    if off < len then begin
      let n = api.write p fd (String.sub data off (len - off)) in
      if n <= 0 then Errno.raise_errno Errno.EPIPE "write_all";
      go (off + n)
    end
  in
  go 0

let read_to_eof api p fd =
  let buf = Buffer.create 4096 in
  let rec go () =
    let chunk = api.read p fd ~len:65536 in
    if chunk <> "" then begin
      Buffer.add_string buf chunk;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let with_file api p path flags f =
  let fd = api.openf p path flags in
  match f p fd with
  | v ->
      api.close p fd;
      v
  | exception exn ->
      api.close p fd;
      raise exn
