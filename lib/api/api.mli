(** World-independent system-call surface.

    The paper's benchmarks run unmodified on Hare {e and} on Linux
    (§5.1); to reproduce that, our workloads are written against this
    record of system calls, abstract in the process-handle type ['p].
    Three worlds implement it: the Hare stack, the shared-memory Linux
    (tmpfs/ramfs) baseline, and the UNFS3-style loopback-NFS baseline. *)

open Hare_proto

type 'p t = {
  openf : 'p -> string -> Types.open_flags -> int;
  close : 'p -> int -> unit;
  read : 'p -> int -> len:int -> string;
  write : 'p -> int -> string -> int;
  lseek : 'p -> int -> pos:int -> Types.whence -> int;
  dup2 : 'p -> src:int -> dst:int -> int;
  pipe : 'p -> int * int;
  fsync : 'p -> int -> unit;
  ftruncate : 'p -> int -> size:int -> unit;
  unlink : 'p -> string -> unit;
  mkdir : 'p -> dist:bool -> string -> unit;
      (** [dist] is Hare's distributed-directory flag; other worlds
          ignore it. *)
  rmdir : 'p -> string -> unit;
  rename : 'p -> string -> string -> unit;
  readdir : 'p -> string -> (string * Types.ftype) list;
  stat : 'p -> string -> Types.attr;
  exists : 'p -> string -> bool;
  chdir : 'p -> string -> unit;
  fork : 'p -> ('p -> int) -> Types.pid;
  spawn : 'p -> prog:string -> args:string list -> Types.pid;
  waitpid : 'p -> Types.pid -> int;
  wait : 'p -> Types.pid * int;
  kill : 'p -> Types.pid -> int -> unit;
  register_program : string -> ('p -> string list -> int) -> unit;
  compute : 'p -> int -> unit;  (** burn CPU cycles. *)
  random : 'p -> int -> int;  (** deterministic per-process PRNG. *)
  print : 'p -> string -> unit;
  core_of : 'p -> int;
  now_cycles : 'p -> int64;
      (** current simulated clock, for open-loop pacing (0 on Linux). *)
  sleep_until : 'p -> int64 -> unit;
      (** idle (without burning CPU) until the given instant; no-op if it
          is already past, and on Linux. *)
}

(** Convenience wrappers over a ['p t]. *)

val write_all : 'p t -> 'p -> int -> string -> unit

val read_to_eof : 'p t -> 'p -> int -> string

val with_file : 'p t -> 'p -> string -> Types.open_flags -> ('p -> int -> 'a) -> 'a
