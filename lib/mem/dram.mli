(** Shared DRAM: the single physical store all cores can address.

    Holds the buffer cache. Contents are only ever moved in whole cache
    lines by the private-cache model ({!Pcache}); the raw accessors here
    are cost-free and represent what the memory controller does, not what
    a core does. *)

type t

val create : nblocks:int -> t

val nblocks : t -> int

val set_trace :
  t -> sink:Hare_trace.Trace.t -> track:int -> now:(unit -> int64) -> unit
(** Attach a trace sink: cumulative line-read/-write counters are sampled
    onto [track] (the machine's dedicated DRAM track) every 64th line
    move. DRAM has no engine of its own, so the simulated clock is
    injected as [now]. *)

(** [read_line t ~block ~line ~dst ~dst_off] copies one 64-byte line out. *)
val read_line : t -> block:int -> line:int -> dst:Bytes.t -> dst_off:int -> unit

(** [write_line t ~block ~line ~src ~src_off] copies one 64-byte line in. *)
val write_line : t -> block:int -> line:int -> src:Bytes.t -> src_off:int -> unit

(** [zero_block t ~block] clears a block (block allocation hygiene). *)
val zero_block : t -> block:int -> unit

(** [zero_range t ~block ~off ~len] clears a byte range of a block
    (truncate-tail hygiene: bytes past a shrunken size must read as
    zero if the file is later extended). *)
val zero_range : t -> block:int -> off:int -> len:int -> unit

(** Raw block access for verification in tests (cost-free, not used by the
    simulated cores). *)
val unsafe_read : t -> block:int -> off:int -> len:int -> string
