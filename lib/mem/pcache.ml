open Hare_sim
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

type line = {
  key : int; (* block * lines_per_block + line index *)
  data : Bytes.t; (* Layout.line_size bytes *)
  mutable dirty : bool;
  mutable prev : line option;
  mutable next : line option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  invalidated : int;
}

type t = {
  dram : Dram.t;
  core : Core_res.t;
  costs : Hare_config.Costs.t;
  block_socket : int -> int;
  capacity : int;
  table : (int, line) Hashtbl.t;
  (* LRU list: head = most recently used, tail = eviction victim. *)
  mutable head : line option;
  mutable tail : line option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable invalidated : int;
}

let create ?block_socket dram ~core ~costs ~capacity_lines =
  if capacity_lines <= 0 then invalid_arg "Pcache.create: empty capacity";
  let block_socket =
    match block_socket with
    | Some f -> f
    | None -> fun (_ : int) -> Core_res.socket core
  in
  {
    dram;
    core;
    costs;
    block_socket;
    capacity = capacity_lines;
    table = Hashtbl.create (2 * capacity_lines);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    invalidated = 0;
  }

let core t = t.core

let sink t = Engine.sink (Core_res.engine t.core)

let checker t = Engine.checker (Core_res.engine t.core)

let cid t = Core_res.id t.core

(* Decompose the upcoming compute charge into cache vs. DRAM cycles and
   publish cumulative miss/write-back counters when they moved. *)
let charge t ~cache ~dram ~miss0 ~wb0 =
  (match sink t with
  | None -> ()
  | Some tr ->
      let fid = Engine.fiber_id (Engine.self ()) in
      Trace.set_pending tr ~fid [ (Trace.Cache, cache); (Trace.Dram, dram) ];
      let now = Engine.now (Core_res.engine t.core) in
      let track = Core_res.id t.core in
      if t.misses <> miss0 then
        Trace.counter tr ~name:"pc-miss" ~track ~ts:now ~value:t.misses;
      if t.writebacks <> wb0 then
        Trace.counter tr ~name:"pc-writeback" ~track ~ts:now ~value:t.writebacks);
  Core_res.compute t.core (cache + dram)

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
    invalidated = t.invalidated;
  }

let resident_lines t = Hashtbl.length t.table

let key_of ~block ~line = (block * Layout.lines_per_block) + line

(* DRAM transfer cost for one line of [block], NUMA-aware. *)
let dram_cost t block =
  if t.block_socket block <> Core_res.socket t.core then
    t.costs.dram_line + t.costs.dram_cross_socket_line
  else t.costs.dram_line

let block_of_key key = key / Layout.lines_per_block

let line_of_key key = key mod Layout.lines_per_block

(* --- intrusive LRU list ---------------------------------------------- *)

let unlink t l =
  (match l.prev with Some p -> p.next <- l.next | None -> t.head <- l.next);
  (match l.next with Some n -> n.prev <- l.prev | None -> t.tail <- l.prev);
  l.prev <- None;
  l.next <- None

let push_front t l =
  l.next <- t.head;
  l.prev <- None;
  (match t.head with Some h -> h.prev <- Some l | None -> t.tail <- Some l);
  t.head <- Some l

let touch t l =
  if t.head != Some l then begin
    unlink t l;
    push_front t l
  end

let flush_line t l =
  if l.dirty then begin
    Dram.write_line t.dram ~block:(block_of_key l.key)
      ~line:(line_of_key l.key) ~src:l.data ~src_off:0;
    l.dirty <- false;
    t.writebacks <- t.writebacks + 1;
    (match checker t with
    | Some chk -> Check.cache_writeback chk ~core:(cid t) ~key:l.key
    | None -> ());
    true
  end
  else false

let drop_line t l =
  unlink t l;
  Hashtbl.remove t.table l.key

(* Evict the LRU victim; returns the cycle cost of any write-back. *)
let evict_one t =
  match t.tail with
  | None -> 0
  | Some victim ->
      let cost =
        if flush_line t victim then dram_cost t (block_of_key victim.key)
        else 0
      in
      drop_line t victim;
      t.evictions <- t.evictions + 1;
      (match checker t with
      | Some chk -> Check.cache_evict chk ~core:(cid t) ~key:victim.key
      | None -> ());
      cost

(* Fetch-or-miss one line; returns (line, cache cycles, DRAM cycles). *)
let ensure_line t ~block ~line =
  let key = key_of ~block ~line in
  match Hashtbl.find_opt t.table key with
  | Some l ->
      touch t l;
      t.hits <- t.hits + 1;
      (l, t.costs.cache_hit_line, 0)
  | None ->
      t.misses <- t.misses + 1;
      let evict_cost =
        if Hashtbl.length t.table >= t.capacity then evict_one t else 0
      in
      let data = Bytes.create Layout.line_size in
      Dram.read_line t.dram ~block ~line ~dst:data ~dst_off:0;
      let l = { key; data; dirty = false; prev = None; next = None } in
      Hashtbl.replace t.table key l;
      push_front t l;
      (l, t.costs.cache_hit_line, evict_cost + dram_cost t block)

let check_range ~off ~len =
  if len <= 0 then invalid_arg "Pcache: empty range";
  if off < 0 || off + len > Layout.block_size then
    invalid_arg "Pcache: range escapes block"

let access t ~block ~off ~len ~write ~(per_line : line -> unit) =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    (match checker t with
    | Some chk ->
        Check.cache_access chk ~core:(cid t) ~key:l.key ~write
          ~filled:(t.misses > m0)
    | None -> ());
    cache := !cache + cc;
    dram := !dram + dc;
    per_line l
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0

let read t ~block ~off ~len ~dst ~dst_off =
  let per_line l =
    let line = line_of_key l.key in
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit l.data (from - line_start) dst (dst_off + from - off) (upto - from)
  in
  access t ~block ~off ~len ~write:false ~per_line

let write t ~block ~off ~len ~src ~src_off =
  let per_line l =
    let line = line_of_key l.key in
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit src (src_off + from - off) l.data (from - line_start) (upto - from);
    l.dirty <- true
  in
  access t ~block ~off ~len ~write:true ~per_line

let read_string t ~block ~off ~len =
  let dst = Bytes.create len in
  read t ~block ~off ~len ~dst ~dst_off:0;
  Bytes.unsafe_to_string dst

let write_string t ~block ~off s =
  write t ~block ~off ~len:(String.length s) ~src:(Bytes.unsafe_of_string s)
    ~src_off:0

let lines_of_block t block =
  (* Collect first: callbacks mutate the LRU list. *)
  let acc = ref [] in
  for line = 0 to Layout.lines_per_block - 1 do
    match Hashtbl.find_opt t.table (key_of ~block ~line) with
    | Some l -> acc := l :: !acc
    | None -> ()
  done;
  !acc

let invalidate_block t block =
  let miss0 = t.misses and wb0 = t.writebacks in
  let lines = lines_of_block t block in
  List.iter
    (fun l ->
      (match checker t with
      | Some chk ->
          Check.cache_invalidate chk ~core:(cid t) ~key:l.key ~dirty:l.dirty
      | None -> ());
      drop_line t l;
      t.invalidated <- t.invalidated + 1)
    lines;
  charge t ~cache:(List.length lines * t.costs.invalidate_line) ~dram:0 ~miss0
    ~wb0

let writeback_block t block =
  let miss0 = t.misses and wb0 = t.writebacks in
  let lines = lines_of_block t block in
  let cost = ref 0 in
  List.iter
    (fun l -> if flush_line t l then cost := !cost + dram_cost t block)
    lines;
  charge t ~cache:0 ~dram:!cost ~miss0 ~wb0

(* Coherent accessors: model an MESI machine by keeping DRAM authoritative
   — every write goes through to DRAM, every read refetches the line.
   Costs: a resident (hit) line moves at near-cache speed (the hardware
   satisfies it from cache / posted write-backs); only misses pay the
   full DRAM transfer. *)

let coherent_line_cost t ~cc ~dc =
  (* [cc]/[dc] is the ensure_line cost split: hit or miss+fill. Resident
     lines add a small write-through/snoop overhead instead of a DRAM
     round trip. *)
  if dc = 0 then (t.costs.cache_hit_line, t.costs.dram_line / 8) else (cc, dc)

let read_coherent t ~block ~off ~len ~dst ~dst_off =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    (match checker t with
    | Some chk ->
        Check.coherent_access chk ~core:(cid t) ~key:l.key ~write:false
          ~filled:(t.misses > m0)
    | None -> ());
    (* Refresh from DRAM: another (coherent) core may have written. *)
    Dram.read_line t.dram ~block ~line ~dst:l.data ~dst_off:0;
    l.dirty <- false;
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit l.data (from - line_start) dst (dst_off + from - off) (upto - from);
    let cc, dc = coherent_line_cost t ~cc ~dc in
    cache := !cache + cc;
    dram := !dram + dc
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0

let write_coherent t ~block ~off ~len ~src ~src_off =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    (match checker t with
    | Some chk ->
        Check.coherent_access chk ~core:(cid t) ~key:l.key ~write:true
          ~filled:(t.misses > m0)
    | None -> ());
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit src (src_off + from - off) l.data (from - line_start) (upto - from);
    (* Write-through: immediately visible to all cores. *)
    Dram.write_line t.dram ~block ~line ~src:l.data ~src_off:0;
    l.dirty <- false;
    let cc, dc = coherent_line_cost t ~cc ~dc in
    cache := !cache + cc;
    dram := !dram + dc
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0
