open Hare_sim
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

(* A cached line. [prev]/[next] form an intrusive LRU list through a
   per-cache sentinel — no [option] boxing on the hottest pointer
   updates. [key] is mutable so an evicted line's record and 64-byte
   buffer are recycled for the incoming line: at steady state (cache at
   capacity, the common case for the writes workload) the per-line miss
   path allocates nothing. *)
type line = {
  mutable key : int; (* block * lines_per_block + line index; -1 = none *)
  data : Bytes.t; (* Layout.line_size bytes *)
  mutable dirty : bool;
  mutable prev : line;
  mutable next : line;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  invalidated : int;
}

(* Filler for empty hash-table value slots; never linked or read. *)
let rec dummy_line =
  { key = -1; data = Bytes.empty; dirty = false; prev = dummy_line;
    next = dummy_line }

type t = {
  dram : Dram.t;
  core : Core_res.t;
  costs : Hare_config.Costs.t;
  block_socket : int -> int;
  capacity : int;
  (* Open-addressed hash table, line keys -> lines. Parallel arrays with
     linear probing replace the previous [Hashtbl]: lookups are
     allocation-free (no [Some], no bucket cells) and the steady-state
     write path — evict + insert per line — touches two flat arrays. *)
  mutable tkeys : int array; (* -1 empty, -2 tombstone *)
  mutable tvals : line array;
  mutable tmask : int; (* Array.length tkeys - 1 (power of two) *)
  mutable tcount : int;
  mutable ttombs : int;
  lru : line; (* sentinel: [lru.next] = MRU, [lru.prev] = victim *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable invalidated : int;
}

let empty_slot = -1

let tomb_slot = -2

let initial_slots = 64

let create ?block_socket dram ~core ~costs ~capacity_lines =
  if capacity_lines <= 0 then invalid_arg "Pcache.create: empty capacity";
  let block_socket =
    match block_socket with
    | Some f -> f
    | None -> fun (_ : int) -> Core_res.socket core
  in
  let rec lru =
    { key = -1; data = Bytes.empty; dirty = false; prev = lru; next = lru }
  in
  {
    dram;
    core;
    costs;
    block_socket;
    capacity = capacity_lines;
    tkeys = Array.make initial_slots empty_slot;
    tvals = Array.make initial_slots dummy_line;
    tmask = initial_slots - 1;
    tcount = 0;
    ttombs = 0;
    lru;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    invalidated = 0;
  }

let core t = t.core

let sink t = Engine.sink (Core_res.engine t.core)

let checker t = Engine.checker (Core_res.engine t.core)

let cid t = Core_res.id t.core

(* Footprint hook for the schedule explorer: the currently executing
   event touched DRAM line [key]. No-op unless an explorer is attached. *)
let note_line t key = Engine.note_line (Core_res.engine t.core) key

(* --- open-addressed table -------------------------------------------- *)

(* Multiplicative spread of the (sequential) line keys; [land] with a
   positive mask keeps the slot non-negative even on overflow. *)
let[@inline] slot_of t key = (key * 0x2545F491) land t.tmask

(* Slot index of [key], or -1. *)
let tab_find t key =
  let keys = t.tkeys and mask = t.tmask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    if k = key then i
    else if k = empty_slot then -1
    else go ((i + 1) land mask)
  in
  go (slot_of t key)

let tab_place t key l =
  let keys = t.tkeys and mask = t.tmask in
  let rec go i =
    let k = Array.unsafe_get keys i in
    if k = empty_slot then begin
      Array.unsafe_set keys i key;
      Array.unsafe_set t.tvals i l;
      t.tcount <- t.tcount + 1
    end
    else if k = tomb_slot then begin
      Array.unsafe_set keys i key;
      Array.unsafe_set t.tvals i l;
      t.tcount <- t.tcount + 1;
      t.ttombs <- t.ttombs - 1
    end
    else go ((i + 1) land mask)
  in
  go (slot_of t key)

let tab_rehash t =
  let old_keys = t.tkeys and old_vals = t.tvals in
  let old_size = Array.length old_keys in
  (* Grow only when live entries crowd the table; a rehash triggered by
     tombstones alone reuses the same size (churn from evictions). *)
  let size = if t.tcount * 2 >= old_size then old_size * 2 else old_size in
  t.tkeys <- Array.make size empty_slot;
  t.tvals <- Array.make size dummy_line;
  t.tmask <- size - 1;
  t.tcount <- 0;
  t.ttombs <- 0;
  for i = 0 to old_size - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then tab_place t k (Array.unsafe_get old_vals i)
  done

(* Insert a key known to be absent. *)
let tab_insert t key l =
  if (t.tcount + t.ttombs) * 4 >= Array.length t.tkeys * 3 then tab_rehash t;
  tab_place t key l

let tab_delete t key =
  let i = tab_find t key in
  if i >= 0 then begin
    t.tkeys.(i) <- tomb_slot;
    t.tvals.(i) <- dummy_line;
    t.tcount <- t.tcount - 1;
    t.ttombs <- t.ttombs + 1
  end

(* Decompose the upcoming compute charge into cache vs. DRAM cycles and
   publish cumulative miss/write-back counters when they moved. *)
let charge t ~cache ~dram ~miss0 ~wb0 =
  (match sink t with
  | None -> ()
  | Some tr ->
      let fid = Engine.current_fid (Core_res.engine t.core) in
      Trace.set_pending tr ~fid [ (Trace.Cache, cache); (Trace.Dram, dram) ];
      let now = Engine.now (Core_res.engine t.core) in
      let track = Core_res.id t.core in
      if t.misses <> miss0 then
        Trace.counter tr ~name:"pc-miss" ~track ~ts:now ~value:t.misses;
      if t.writebacks <> wb0 then
        Trace.counter tr ~name:"pc-writeback" ~track ~ts:now ~value:t.writebacks);
  Core_res.compute t.core (cache + dram)

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
    invalidated = t.invalidated;
  }

let resident_lines t = t.tcount

let key_of ~block ~line = (block * Layout.lines_per_block) + line

(* DRAM transfer cost for one line of [block], NUMA-aware. *)
let dram_cost t block =
  if t.block_socket block <> Core_res.socket t.core then
    t.costs.dram_line + t.costs.dram_cross_socket_line
  else t.costs.dram_line

let block_of_key key = key / Layout.lines_per_block

let line_of_key key = key mod Layout.lines_per_block

(* --- intrusive LRU list (sentinel-linked) ----------------------------- *)

let[@inline] unlink l =
  l.prev.next <- l.next;
  l.next.prev <- l.prev

let[@inline] push_front t l =
  let s = t.lru in
  l.next <- s.next;
  l.prev <- s;
  s.next.prev <- l;
  s.next <- l

let[@inline] touch t l =
  if t.lru.next != l then begin
    unlink l;
    push_front t l
  end

let flush_line t l =
  if l.dirty then begin
    note_line t l.key;
    Dram.write_line t.dram ~block:(block_of_key l.key)
      ~line:(line_of_key l.key) ~src:l.data ~src_off:0;
    l.dirty <- false;
    t.writebacks <- t.writebacks + 1;
    (match checker t with
    | Some chk -> Check.cache_writeback chk ~core:(cid t) ~key:l.key
    | None -> ());
    true
  end
  else false

let drop_line t l =
  unlink l;
  tab_delete t l.key

(* Fetch-or-miss one line; returns (line, cache cycles, DRAM cycles). *)
let ensure_line t ~block ~line =
  let key = key_of ~block ~line in
  let i = tab_find t key in
  if i >= 0 then begin
    let l = Array.unsafe_get t.tvals i in
    touch t l;
    t.hits <- t.hits + 1;
    (l, t.costs.cache_hit_line, 0)
  end
  else begin
    t.misses <- t.misses + 1;
    if t.tcount >= t.capacity then begin
      (* At capacity: evict the LRU victim and recycle its record and
         buffer for the incoming line — the steady-state miss allocates
         nothing. Hook order matches the historic evict-then-fill path:
         write-back, drop, eviction count, evict hook. *)
      let victim = t.lru.prev in
      let evict_cost =
        if flush_line t victim then dram_cost t (block_of_key victim.key)
        else 0
      in
      tab_delete t victim.key;
      t.evictions <- t.evictions + 1;
      (match checker t with
      | Some chk -> Check.cache_evict chk ~core:(cid t) ~key:victim.key
      | None -> ());
      victim.key <- key;
      victim.dirty <- false;
      Dram.read_line t.dram ~block ~line ~dst:victim.data ~dst_off:0;
      tab_insert t key victim;
      touch t victim;
      (victim, t.costs.cache_hit_line, evict_cost + dram_cost t block)
    end
    else begin
      let data = Bytes.create Layout.line_size in
      Dram.read_line t.dram ~block ~line ~dst:data ~dst_off:0;
      let l =
        { key; data; dirty = false; prev = dummy_line; next = dummy_line }
      in
      tab_insert t key l;
      push_front t l;
      (l, t.costs.cache_hit_line, dram_cost t block)
    end
  end

let check_range ~off ~len =
  if len <= 0 then invalid_arg "Pcache: empty range";
  if off < 0 || off + len > Layout.block_size then
    invalid_arg "Pcache: range escapes block"

let access t ~block ~off ~len ~write ~(per_line : line -> unit) =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    note_line t l.key;
    (match checker t with
    | Some chk ->
        Check.cache_access chk ~core:(cid t) ~key:l.key ~write
          ~filled:(t.misses > m0)
    | None -> ());
    cache := !cache + cc;
    dram := !dram + dc;
    per_line l
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0

let read t ~block ~off ~len ~dst ~dst_off =
  let per_line l =
    let line = line_of_key l.key in
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit l.data (from - line_start) dst (dst_off + from - off) (upto - from)
  in
  access t ~block ~off ~len ~write:false ~per_line

let write t ~block ~off ~len ~src ~src_off =
  let per_line l =
    let line = line_of_key l.key in
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit src (src_off + from - off) l.data (from - line_start) (upto - from);
    l.dirty <- true
  in
  access t ~block ~off ~len ~write:true ~per_line

let read_string t ~block ~off ~len =
  let dst = Bytes.create len in
  read t ~block ~off ~len ~dst ~dst_off:0;
  Bytes.unsafe_to_string dst

let write_string t ~block ~off s =
  write t ~block ~off ~len:(String.length s) ~src:(Bytes.unsafe_of_string s)
    ~src_off:0

let lines_of_block t block =
  (* Collect first: callbacks mutate the LRU list. *)
  let acc = ref [] in
  for line = 0 to Layout.lines_per_block - 1 do
    let i = tab_find t (key_of ~block ~line) in
    if i >= 0 then acc := t.tvals.(i) :: !acc
  done;
  !acc

let invalidate_block t block =
  let miss0 = t.misses and wb0 = t.writebacks in
  let lines = lines_of_block t block in
  List.iter
    (fun l ->
      note_line t l.key;
      (match checker t with
      | Some chk ->
          Check.cache_invalidate chk ~core:(cid t) ~key:l.key ~dirty:l.dirty
      | None -> ());
      drop_line t l;
      t.invalidated <- t.invalidated + 1)
    lines;
  charge t ~cache:(List.length lines * t.costs.invalidate_line) ~dram:0 ~miss0
    ~wb0

let writeback_block t block =
  let miss0 = t.misses and wb0 = t.writebacks in
  let lines = lines_of_block t block in
  let cost = ref 0 in
  List.iter
    (fun l -> if flush_line t l then cost := !cost + dram_cost t block)
    lines;
  charge t ~cache:0 ~dram:!cost ~miss0 ~wb0

(* Coherent accessors: model an MESI machine by keeping DRAM authoritative
   — every write goes through to DRAM, every read refetches the line.
   Costs: a resident (hit) line moves at near-cache speed (the hardware
   satisfies it from cache / posted write-backs); only misses pay the
   full DRAM transfer. *)

let coherent_line_cost t ~cc ~dc =
  (* [cc]/[dc] is the ensure_line cost split: hit or miss+fill. Resident
     lines add a small write-through/snoop overhead instead of a DRAM
     round trip. *)
  if dc = 0 then (t.costs.cache_hit_line, t.costs.dram_line / 8) else (cc, dc)

let read_coherent t ~block ~off ~len ~dst ~dst_off =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    note_line t l.key;
    (match checker t with
    | Some chk ->
        Check.coherent_access chk ~core:(cid t) ~key:l.key ~write:false
          ~filled:(t.misses > m0)
    | None -> ());
    (* Refresh from DRAM: another (coherent) core may have written. *)
    Dram.read_line t.dram ~block ~line ~dst:l.data ~dst_off:0;
    l.dirty <- false;
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit l.data (from - line_start) dst (dst_off + from - off) (upto - from);
    let cc, dc = coherent_line_cost t ~cc ~dc in
    cache := !cache + cc;
    dram := !dram + dc
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0

let write_coherent t ~block ~off ~len ~src ~src_off =
  check_range ~off ~len;
  let miss0 = t.misses and wb0 = t.writebacks in
  let first, last = Layout.lines_touched ~off ~len in
  let cache = ref 0 and dram = ref 0 in
  for line = first to last do
    let m0 = t.misses in
    let l, cc, dc = ensure_line t ~block ~line in
    note_line t l.key;
    (match checker t with
    | Some chk ->
        Check.coherent_access chk ~core:(cid t) ~key:l.key ~write:true
          ~filled:(t.misses > m0)
    | None -> ());
    let line_start = line * Layout.line_size in
    let from = max off line_start in
    let upto = min (off + len) (line_start + Layout.line_size) in
    Bytes.blit src (src_off + from - off) l.data (from - line_start) (upto - from);
    (* Write-through: immediately visible to all cores. *)
    Dram.write_line t.dram ~block ~line ~src:l.data ~src_off:0;
    l.dirty <- false;
    let cc, dc = coherent_line_cost t ~cc ~dc in
    cache := !cache + cc;
    dram := !dram + dc
  done;
  charge t ~cache:!cache ~dram:!dram ~miss0 ~wb0
