module Trace = Hare_trace.Trace

type t = {
  nblocks : int;
  pages : Bytes.t option array;
  (* Trace sink + track + clock source; DRAM itself has no engine, so
     the machine injects a [now] closure at boot. *)
  mutable trace : (Trace.t * int * (unit -> int64)) option;
  mutable line_reads : int;
  mutable line_writes : int;
}

let create ~nblocks =
  if nblocks <= 0 then invalid_arg "Dram.create: nblocks must be positive";
  {
    nblocks;
    pages = Array.make nblocks None;
    trace = None;
    line_reads = 0;
    line_writes = 0;
  }

let set_trace t ~sink ~track ~now = t.trace <- Some (sink, track, now)

(* Sample the cumulative traffic counters every 64th line move so the
   DRAM track stays readable (and the ring is not flooded). *)
let sample_period = 64

let note_read t =
  t.line_reads <- t.line_reads + 1;
  match t.trace with
  | Some (tr, track, now) when t.line_reads mod sample_period = 0 ->
      Trace.counter tr ~name:"dram-reads" ~track ~ts:(now ()) ~value:t.line_reads
  | _ -> ()

let note_write t =
  t.line_writes <- t.line_writes + 1;
  match t.trace with
  | Some (tr, track, now) when t.line_writes mod sample_period = 0 ->
      Trace.counter tr ~name:"dram-writes" ~track ~ts:(now ())
        ~value:t.line_writes
  | _ -> ()

let nblocks t = t.nblocks

let check_line t ~block ~line =
  if block < 0 || block >= t.nblocks then
    invalid_arg (Printf.sprintf "Dram: block %d out of range" block);
  if line < 0 || line >= Layout.lines_per_block then
    invalid_arg (Printf.sprintf "Dram: line %d out of range" line)

(* Pages materialize on first write; unwritten blocks read as zeroes. *)
let page t block =
  match t.pages.(block) with
  | Some p -> p
  | None ->
      let p = Bytes.make Layout.block_size '\000' in
      t.pages.(block) <- Some p;
      p

let read_line t ~block ~line ~dst ~dst_off =
  check_line t ~block ~line;
  note_read t;
  match t.pages.(block) with
  | None -> Bytes.fill dst dst_off Layout.line_size '\000'
  | Some p -> Bytes.blit p (line * Layout.line_size) dst dst_off Layout.line_size

let write_line t ~block ~line ~src ~src_off =
  check_line t ~block ~line;
  note_write t;
  Bytes.blit src src_off (page t block) (line * Layout.line_size)
    Layout.line_size

let zero_block t ~block =
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> ()
  | Some p -> Bytes.fill p 0 Layout.block_size '\000'

let zero_range t ~block ~off ~len =
  if off < 0 || len < 0 || off + len > Layout.block_size then
    invalid_arg "Dram.zero_range: range escapes block";
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> ()
  | Some p -> Bytes.fill p off len '\000'

let unsafe_read t ~block ~off ~len =
  if off < 0 || len < 0 || off + len > Layout.block_size then
    invalid_arg "Dram.unsafe_read: range escapes block";
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> String.make len '\000'
  | Some p -> Bytes.sub_string p off len
