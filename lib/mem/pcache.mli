(** Per-core private cache over the shared DRAM — {e without} coherence.

    This is the crux of the simulated hardware: each core's reads and
    writes of buffer-cache blocks go through its private cache, which
    holds {e real bytes} with dirty bits. A write is invisible to other
    cores until the line is written back (explicitly, or incidentally by a
    dirty eviction); a read may return a stale copy cached before another
    core's write-back. Hare's close-to-open protocol — invalidate on
    [open], write back on [close]/[fsync] — is therefore {e functionally
    necessary}: tests that omit it observe stale data, exactly as on the
    paper's target machines.

    All operations charge cycle costs to the owning core. *)

type t

type stats = {
  hits : int;  (** lines served from the private cache. *)
  misses : int;  (** lines fetched from DRAM. *)
  evictions : int;  (** lines displaced by capacity. *)
  writebacks : int;  (** dirty lines flushed to DRAM (incl. evictions). *)
  invalidated : int;  (** lines dropped by explicit invalidation. *)
}

val create :
  ?block_socket:(int -> int) ->
  Dram.t ->
  core:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  capacity_lines:int ->
  t
(** [block_socket] maps a block number to the NUMA socket holding it;
    accesses to blocks on another socket pay [dram_cross_socket_line]
    extra per line. Defaults to the core's own socket (no NUMA effect). *)

val core : t -> Hare_sim.Core_res.t

val key_of : block:int -> line:int -> int
(** The per-line shadow key ([block * Layout.lines_per_block + line])
    used by the coherence sanitizer; exposed so protocol lint sites can
    name the lines of a block. *)

(** [read t ~block ~off ~len ~dst ~dst_off] reads through the cache.
    The byte range must lie within one block. *)
val read : t -> block:int -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit

(** [write t ~block ~off ~len ~src ~src_off] writes into the cache
    (write-allocate; lines become dirty, DRAM is {e not} updated). *)
val write :
  t -> block:int -> off:int -> len:int -> src:Bytes.t -> src_off:int -> unit

val read_string : t -> block:int -> off:int -> len:int -> string

val write_string : t -> block:int -> off:int -> string -> unit

(** [invalidate_block t block] drops every cached line of [block],
    {e discarding} dirty data — non-coherent open-time invalidation. *)
val invalidate_block : t -> int -> unit

(** [writeback_block t block] flushes the dirty lines of [block] to DRAM;
    lines stay resident, clean. *)
val writeback_block : t -> int -> unit

(** [read_coherent] / [write_coherent] model an access on a machine
    {e with} hardware coherence (used by the Linux/ramfs baseline): data
    always moves to/from DRAM so no staleness is possible, at private-
    cache hit cost for resident lines. *)
val read_coherent :
  t -> block:int -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit

val write_coherent :
  t -> block:int -> off:int -> len:int -> src:Bytes.t -> src_off:int -> unit

val resident_lines : t -> int

val stats : t -> stats
