open Hare_sim
open Hare_proto
open Hare_proc

let src = Logs.Src.create "hare.sched" ~doc:"Hare scheduling server"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  kctx : Process.kctx;
  registry : Program.t;
  core_id : int;
  core : Core_res.t;
  costs : Hare_config.Costs.t;
  endpoint : (Wire.sched_req, Wire.sched_resp) Hare_msg.Rpc.t;
  mutable execs : int;
}

let create ~kctx ~registry ~core_id ~endpoint () =
  {
    kctx;
    registry;
    core_id;
    core = kctx.Process.k_cores.(core_id);
    costs = kctx.Process.k_config.Hare_config.Config.costs;
    endpoint;
    execs = 0;
  }

let execs t = t.execs

let handle_exec t ~prog ~args ~env ~cwd_path ~fds ~proxy ~rr_next reply =
  match Program.find t.registry prog with
  | None -> reply (Error Errno.ENOEXEC)
  | Some body ->
      t.execs <- t.execs + 1;
      (* fork + exec of the image on this core. *)
      Core_res.compute t.core t.costs.spawn_process;
      let client = t.kctx.Process.k_clients.(t.core_id) in
      let fdt = Hare_client.Client.import_fds client fds in
      let proc =
        Process.make ~k:t.kctx ~core:t.core_id ~fdt ~cwd:cwd_path ~env ~rr_next
          ()
      in
      reply (Ok proc.Process.pid);
      Process.run proc
        ~on_exit:(fun status ->
          (* Tell the proxy so the original parent sees the status. *)
          Hare_msg.Mailbox.send proxy ~from:t.core (Wire.Pm_child_exit status))
        (fun p -> body p args)

let handle_signal t ~pid ~signal reply =
  match Process.find t.kctx pid with
  | None -> reply (Error Errno.ESRCH)
  | Some target ->
      Process.deliver_signal target ~from:t.core signal;
      reply (Ok pid)

let start t =
  let module Trace = Hare_trace.Trace in
  let engine = t.kctx.Process.k_engine in
  let rec loop () =
    let req, reply, _meta, span, _deadline, _prio =
      Hare_msg.Rpc.recv_full t.endpoint
    in
    let tr_opened =
      match Engine.sink engine with
      | Some tr ->
          let fid = Engine.current_fid engine in
          let op =
            match req with
            | Wire.S_exec _ -> "sched:exec"
            | Wire.S_signal _ -> "sched:signal"
          in
          if
            Trace.ctx_open tr ~fid ~op ~track:t.core_id ~parent:span
              ~now:(Engine.now engine) ~args:[]
            <> 0
          then begin
            Trace.set_pending tr ~fid
              [ (Trace.Dispatch, t.costs.server_dispatch) ];
            Some tr
          end
          else None
      | None -> None
    in
    Core_res.compute t.core t.costs.server_dispatch;
    (match req with
    | Wire.S_exec { prog; args; env; cwd_path; fds; proxy; rr_next } ->
        handle_exec t ~prog ~args ~env ~cwd_path ~fds ~proxy ~rr_next reply
    | Wire.S_signal { pid; signal } -> handle_signal t ~pid ~signal reply);
    (match tr_opened with
    | Some tr ->
        Trace.ctx_close_server tr
          ~fid:(Engine.current_fid engine)
          ~now:(Engine.now engine)
    | None -> ());
    loop ()
  in
  ignore
    (Engine.spawn t.kctx.Process.k_engine ~daemon:true
       ~name:(Printf.sprintf "sched-%d" t.core_id)
       loop)
