(* overload: an open-loop arrival process for exercising the PR-6
   overload-control plane. Each worker issues a paced stream of small
   mail-style operations — deliver (create/write/close), read back, stat,
   unlink — with seeded-jittered inter-arrival gaps, independent of
   completion times. Run near or past saturation, completions lag
   arrivals and the control plane (credits, deadlines, retry budgets,
   breakers, sheds) decides what degrades; the counters below report how
   gracefully.

   Unlike the closed-loop workloads, errors are part of the measurement:
   EBUSY (load shed) and EIO (give-up or breaker fast-fail) are counted,
   not raised. Goodput = ok / elapsed. *)

module Api = Hare_api.Api
open Hare_proto

(* Mean inter-arrival gap per worker, in cycles. Settable by the bench
   and CLI drivers before the run; the default saturates a Split 1
   machine at a few workers. *)
let period = ref 12_000

let iters ~scale = 120 * scale

let msg_bytes = 512

(* Aggregated across workers; the driver resets before a (re)run. *)
let sent = ref 0

let ok = ref 0

let shed = ref 0 (* EBUSY: server load shed *)

let fast_fail = ref 0 (* EIO: retry give-up or open breaker *)

let skipped = ref 0 (* ENOENT: target's deliver was itself refused *)

let reset () =
  sent := 0;
  ok := 0;
  shed := 0;
  fast_fail := 0;
  skipped := 0

let setup (api : 'p Api.t) p ~nprocs ~scale:_ =
  api.Api.mkdir p ~dist:false "/overload";
  for idx = 0 to nprocs - 1 do
    api.Api.mkdir p ~dist:false (Printf.sprintf "/overload/w%d" idx)
  done

let count_result = function
  | Ok () -> incr ok
  | Error Errno.EBUSY -> incr shed
  | Error Errno.EIO -> incr fast_fail
  | Error Errno.ENOENT -> incr skipped
  | Error _ -> incr fast_fail

let attempt f = count_result (try Ok (f ()) with Errno.Error (e, _) -> Error e)

let worker (api : 'p Api.t) p ~idx ~nprocs:_ ~scale =
  let n = iters ~scale in
  let dir = Printf.sprintf "/overload/w%d" idx in
  let body = Tree.file_data msg_bytes idx in
  let path i = Printf.sprintf "%s/m%05d" dir i in
  let deliver i () =
    let fd = api.Api.openf p (path i) Types.flags_w in
    Api.write_all api p fd body;
    api.Api.close p fd
  in
  let read_back i () =
    let fd = api.Api.openf p (path i) Types.flags_r in
    ignore (Api.read_to_eof api p fd);
    api.Api.close p fd
  in
  (* Open-loop pacing: the next arrival time advances by a seeded
     jittered gap (mean ~[period]) regardless of how long the previous
     operation took. When service lags, sleep_until returns immediately
     and the backlog expresses itself as server queue depth. *)
  let gap () = (!period / 2) + 1 + api.Api.random p !period in
  let next = ref (api.Api.now_cycles p) in
  for i = 1 to n do
    next := Int64.add !next (Int64.of_int (gap ()));
    api.Api.sleep_until p !next;
    incr sent;
    match i mod 8 with
    | 0 | 1 | 2 | 3 -> attempt (deliver i)
    | 4 | 5 ->
        (* read back a recent delivery (i-4 lands on a deliver arm;
           the very first cycle reads a never-written path and counts
           as skipped) *)
        attempt (read_back (i - 4))
    | 6 -> attempt (fun () -> ignore (api.Api.stat p (path (i - 6))))
    | _ -> attempt (fun () -> api.Api.unlink p (path (i - 7)))
  done

let spec : Spec.t =
  {
    name = "overload";
    mode = Spec.Workers;
    exec_policy = Hare_config.Config.Round_robin;
    uses_dist = false;
    setup;
    worker;
    programs = Spec.no_programs;
    ops = (fun ~nprocs ~scale -> nprocs * iters ~scale);
  }
