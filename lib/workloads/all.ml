let specs : Spec.t list =
  [
    Creates.spec;
    Writes.spec;
    Renames.spec;
    Directories.spec;
    Rm.dense;
    Rm.sparse;
    Pfind.dense;
    Pfind.sparse;
    Extract.spec;
    Punzip.spec;
    Mailbench.spec;
    Fsstress.spec;
    Build_linux.spec;
    Overload.spec;
  ]

let find name = List.find (fun (s : Spec.t) -> s.Spec.name = name) specs

let names = List.map (fun (s : Spec.t) -> s.Spec.name) specs

let parallel =
  List.filter (fun (s : Spec.t) -> s.Spec.name <> "extract") specs

let fig15 =
  List.filter
    (fun (s : Spec.t) ->
      not (List.mem s.Spec.name [ "extract"; "rm dense"; "rm sparse" ]))
    specs
