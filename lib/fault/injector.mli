(** Deterministic fault injector.

    One injector per machine, holding the parsed {!Plan.t} and a dedicated
    RNG (derived from the config seed, independent of the engine's root
    RNG so enabling faults never perturbs workload randomness). Each file
    server's request mailbox gets a {!link} with its own split RNG;
    [Mailbox.send] consults the link to decide each message's fate.

    Links also carry the server's availability state ([down] during a
    crash, [stalled_until] during a stall) so delivery and blackholing
    decisions live in one place. *)

type t

type link

val create : engine:Hare_sim.Engine.t -> seed:int64 -> Plan.t -> t

val stats : t -> Hare_stats.Robust.t
(** Injector-side counters (drops/dups/delays/blackholes). *)

val plan : t -> Plan.t

val server_events : t -> Plan.server_event list
(** Crash/stall events sorted by trigger time. *)

val link : t -> sid:int -> link
(** The per-server link for server [sid] (memoized — every caller sees
    the same object); filters the plan's message rules down to those
    matching this server. *)

val link_sid : link -> int

val down : link -> bool

val set_down : link -> bool -> unit

val stalled_until : link -> int64

val stall_until : link -> int64 -> unit
(** Raise the link's delivery floor to the given absolute time. *)

val note_blackholed : link -> unit
(** Count a message discarded because the server was down. *)

type verdict = Deliver | Drop | Duplicate | Delay of int64

val on_send : link -> unreliable:bool -> verdict
(** Roll the plan's dice for one message. Reliable sends
    ([unreliable:false]) always deliver. *)
