open Hare_sim

type t = {
  engine : Engine.t;
  rng : Rng.t;
  plan : Plan.t;
  stats : Hare_stats.Robust.t;
  links : (int, link) Hashtbl.t;
}

and link = {
  inj : t;
  sid : int;
  rules : Plan.msg_rule list;
  link_rng : Rng.t;
  mutable down : bool;
  mutable stalled_until : int64;
}

let create ~engine ~seed plan =
  {
    engine;
    rng = Rng.create ~seed;
    plan;
    stats = Hare_stats.Robust.create ();
    links = Hashtbl.create 8;
  }

let stats t = t.stats

let plan t = t.plan

let server_events t =
  List.sort
    (fun a b -> Int64.compare a.Plan.ev_at b.Plan.ev_at)
    t.plan.Plan.events

(* One link object per server for the injector's lifetime: the mailbox,
   the server, and the fault fibers must all observe the same down/stall
   state and drain the same dice stream. *)
let link t ~sid =
  match Hashtbl.find_opt t.links sid with
  | Some l -> l
  | None ->
      let matches r =
        match r.Plan.target with
        | Plan.All_servers -> true
        | Plan.Server k -> k = sid
      in
      let l =
        {
          inj = t;
          sid;
          rules = List.filter matches t.plan.Plan.rules;
          link_rng = Rng.split t.rng;
          down = false;
          stalled_until = 0L;
        }
      in
      Hashtbl.add t.links sid l;
      l

let link_sid l = l.sid

let down l = l.down

let set_down l b = l.down <- b

let stalled_until l = l.stalled_until

let stall_until l time =
  if time > l.stalled_until then l.stalled_until <- time

let note_blackholed l =
  l.inj.stats.Hare_stats.Robust.blackholed <-
    l.inj.stats.Hare_stats.Robust.blackholed + 1

type verdict = Deliver | Drop | Duplicate | Delay of int64

(* Dice are rolled per rule, in plan order, for every unreliable send —
   including sends that end up unfaulted — so the fault sequence depends
   only on (seed, plan, send order). *)
let on_send l ~unreliable =
  if (not unreliable) || l.rules = [] then Deliver
  else
    let stats = l.inj.stats in
    let rec roll = function
      | [] -> Deliver
      | (r : Plan.msg_rule) :: rest ->
          if Rng.float l.link_rng < r.prob then
            match r.action with
            | Plan.Drop ->
                stats.Hare_stats.Robust.drops <-
                  stats.Hare_stats.Robust.drops + 1;
                Drop
            | Plan.Duplicate ->
                stats.Hare_stats.Robust.dups <-
                  stats.Hare_stats.Robust.dups + 1;
                Duplicate
            | Plan.Delay max_cycles ->
                stats.Hare_stats.Robust.delays <-
                  stats.Hare_stats.Robust.delays + 1;
                Delay (Int64.of_int (1 + Rng.int l.link_rng max_cycles))
          else roll rest
    in
    roll l.rules
