type target = All_servers | Server of int

type action = Drop | Duplicate | Delay of int

type msg_rule = { action : action; target : target; prob : float }

type event_kind = Crash of int64 option | Stall of int64

type server_event = { ev_sid : int; ev_at : int64; ev_kind : event_kind }

type t = { rules : msg_rule list; events : server_event list }

let empty = { rules = []; events = [] }

let is_empty t = t.rules = [] && t.events = []

let pp_target ppf = function
  | All_servers -> Format.pp_print_string ppf "fs"
  | Server k -> Format.fprintf ppf "fs%d" k

let pp_rule ppf r =
  match r.action with
  | Drop -> Format.fprintf ppf "drop:%a:%g" pp_target r.target r.prob
  | Duplicate -> Format.fprintf ppf "dup:%a:%g" pp_target r.target r.prob
  | Delay d -> Format.fprintf ppf "delay:%a:%g:%d" pp_target r.target r.prob d

let pp_event ppf e =
  match e.ev_kind with
  | Crash None -> Format.fprintf ppf "crash:%d@%Ld" e.ev_sid e.ev_at
  | Crash (Some d) -> Format.fprintf ppf "crash:%d@%Ld+%Ld" e.ev_sid e.ev_at d
  | Stall d -> Format.fprintf ppf "stall:%d@%Ld+%Ld" e.ev_sid e.ev_at d

let pp ppf t =
  let items =
    List.map (Format.asprintf "%a" pp_rule) t.rules
    @ List.map (Format.asprintf "%a" pp_event) t.events
  in
  Format.pp_print_string ppf (String.concat ";" items)

let to_string t = Format.asprintf "%a" pp t

(* --- parsing ---------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let parse_target s =
  if s = "fs" then Ok All_servers
  else if String.length s > 2 && String.sub s 0 2 = "fs" then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some k when k >= 0 -> Ok (Server k)
    | _ -> err "bad server target %S (want fs or fs<k>)" s
  else err "bad server target %S (want fs or fs<k>)" s

let parse_prob s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | _ -> err "bad probability %S (want a float in [0,1])" s

(* "<sid>@<at>" or "<sid>@<at>+<dur>" *)
let parse_when s =
  let at_part, dur =
    match String.index_opt s '+' with
    | None -> (s, Ok None)
    | Some i ->
        let d = String.sub s (i + 1) (String.length s - i - 1) in
        ( String.sub s 0 i,
          match Int64.of_string_opt d with
          | Some d when d > 0L -> Ok (Some d)
          | _ -> err "bad duration %S (want a positive cycle count)" d )
  in
  let* dur = dur in
  match String.split_on_char '@' at_part with
  | [ sid; at ] -> (
      match (int_of_string_opt sid, Int64.of_string_opt at) with
      | Some sid, Some at when sid >= 0 && at >= 0L -> Ok (sid, at, dur)
      | _ -> err "bad event schedule %S (want <sid>@<cycles>[+<dur>])" s)
  | _ -> err "bad event schedule %S (want <sid>@<cycles>[+<dur>])" s

let parse_item item =
  match String.split_on_char ':' item with
  | [ "drop"; tgt; p ] ->
      let* target = parse_target tgt in
      let* prob = parse_prob p in
      Ok (`Rule { action = Drop; target; prob })
  | [ "dup"; tgt; p ] ->
      let* target = parse_target tgt in
      let* prob = parse_prob p in
      Ok (`Rule { action = Duplicate; target; prob })
  | [ "delay"; tgt; p; max_cycles ] -> (
      let* target = parse_target tgt in
      let* prob = parse_prob p in
      match int_of_string_opt max_cycles with
      | Some d when d > 0 -> Ok (`Rule { action = Delay d; target; prob })
      | _ -> err "bad delay bound %S (want a positive cycle count)" max_cycles)
  | [ "crash"; sched ] ->
      let* sid, at, dur = parse_when sched in
      Ok (`Event { ev_sid = sid; ev_at = at; ev_kind = Crash dur })
  | [ "stall"; sched ] -> (
      let* sid, at, dur = parse_when sched in
      match dur with
      | Some d -> Ok (`Event { ev_sid = sid; ev_at = at; ev_kind = Stall d })
      | None -> err "stall needs a duration: stall:<sid>@<cycles>+<dur>")
  | _ -> err "unrecognized fault rule %S" item

let parse spec =
  let items =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go rules events = function
    | [] -> Ok { rules = List.rev rules; events = List.rev events }
    | item :: rest -> (
        match parse_item item with
        | Ok (`Rule r) -> go (r :: rules) events rest
        | Ok (`Event e) -> go rules (e :: events) rest
        | Error e -> Error e)
  in
  go [] [] items

let parse_exn spec =
  match parse spec with
  | Ok t -> t
  | Error e -> invalid_arg (Printf.sprintf "fault plan %S: %s" spec e)
