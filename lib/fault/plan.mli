(** Fault plans: pure data describing what should go wrong, and when.

    A plan is parsed from a compact spec string (typically the
    [fault_plan] config field). Grammar — items separated by [';']:

    {v
    drop:<tgt>:<p>            drop each matching message with probability p
    dup:<tgt>:<p>             deliver each matching message twice
    delay:<tgt>:<p>:<max>     delay delivery by 1..max cycles
    crash:<sid>@<at>          crash server sid at cycle <at>, forever
    crash:<sid>@<at>+<dur>    ... and restart it <dur> cycles later
    stall:<sid>@<at>+<dur>    freeze message delivery to sid for <dur>
    v}

    where [<tgt>] is [fs] (every file server) or [fs<k>] (server [k]),
    and probabilities are floats in [0,1]. Example:

    {[ "drop:fs:0.05;dup:fs1:0.02;crash:1@200000+150000" ]} *)

type target = All_servers | Server of int

type action =
  | Drop
  | Duplicate
  | Delay of int  (** maximum extra delivery delay, in cycles *)

type msg_rule = { action : action; target : target; prob : float }

type event_kind =
  | Crash of int64 option  (** restart after this many cycles, if given *)
  | Stall of int64  (** delivery frozen for this many cycles *)

type server_event = { ev_sid : int; ev_at : int64; ev_kind : event_kind }

type t = { rules : msg_rule list; events : server_event list }

val empty : t

val is_empty : t -> bool

val parse : string -> (t, string) result
(** Parse a spec string; the empty (or all-whitespace) string yields
    {!empty}. *)

val parse_exn : string -> t
(** Like {!parse} but raises [Invalid_argument] with the parse error. *)

val to_string : t -> string
(** Canonical spec string; [parse (to_string t)] round-trips. *)

val pp : Format.formatter -> t -> unit
