(* Exploration micro-scenarios: tiny checked machines whose programs
   record every POSIX call for the linearizability oracle. See
   scenario.mli. *)

module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
module Errno = Hare_proto.Errno
module Types = Hare_proto.Types

type built = {
  b_machine : Machine.t;
  b_init : Hare_proc.Process.t;
  b_history : unit -> Oracle.event list;
}

type t = {
  sc_name : string;
  sc_doc : string;
  sc_build : unit -> built;
}

(* Two app cores against one dedicated file server; checking on. Small
   caches keep the event count (and so the schedule tree) small. All
   cores share one socket so the two app cores see identical message
   latencies to the server — the symmetry that lets causally-independent
   requests land on the same cycle and become explorable ties. *)
let config () =
  {
    (Config.v ~ncores:3 ~placement:(Config.Split 1) ~seed:42L ()) with
    Config.check_enabled = true;
    buffer_cache_blocks = 512;
    cores_per_socket = 4;
  }

(* --- POSIX-call recorder -------------------------------------------- *)

type rec_ctx = {
  m : Machine.t;
  hist : Oracle.event list ref;
  next_h : (int, int) Hashtbl.t; (* client -> next open handle *)
}

let push ctx client op result t0 =
  ctx.hist :=
    {
      Oracle.e_client = client;
      e_op = op;
      e_result = result;
      e_inv = t0;
      e_res = Machine.now ctx.m;
    }
    :: !(ctx.hist)

(* Each wrapper issues the real call, then records the op with the
   observed result and both stamps. Handles are client-local open
   ordinals, assigned here and mirrored by the oracle's model. *)
let r_open ctx client p path ~create ~flags =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Open { path; create } in
  match if create then Posix.creat p path else Posix.openf p path flags with
  | fd ->
      let h =
        match Hashtbl.find_opt ctx.next_h client with Some h -> h | None -> 0
      in
      Hashtbl.replace ctx.next_h client (h + 1);
      push ctx client op (Oracle.Ok_handle h) t0;
      Some (fd, h)
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0;
      None

let r_close ctx client p (fd, h) =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Close { h } in
  match Posix.close p fd with
  | () -> push ctx client op Oracle.Ok_unit t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

let r_write ctx client p (fd, h) data =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Write { h; data } in
  match Posix.write p fd data with
  | n -> push ctx client op (Oracle.Ok_int n) t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

let r_read_all ctx client p (fd, h) =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Read { h } in
  match Posix.read_all p fd with
  | data -> push ctx client op (Oracle.Ok_data data) t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

let r_stat ctx client p path =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Stat { path } in
  match Posix.stat p path with
  | (_ : Types.attr) -> push ctx client op Oracle.Ok_unit t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

let r_unlink ctx client p path =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Unlink { path } in
  match Posix.unlink p path with
  | () -> push ctx client op Oracle.Ok_unit t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

let r_mkdir ctx client p path =
  let t0 = Machine.now ctx.m in
  let op = Oracle.Mkdir { path } in
  match Posix.mkdir p path with
  | () -> push ctx client op Oracle.Ok_unit t0
  | exception Errno.Error (e, _) ->
      push ctx client op (Oracle.Err (Errno.to_string e)) t0

(* Init sits on the first app core and its first round-robin spawn
   lands there too; burn that slot so the next spawn gets a different
   core (and so a different client cache) — same trick as the sanitizer
   mutation tests. *)
let spawn_remote p ~prog =
  let pid = Posix.spawn p ~prog:"nop" ~args:[] in
  ignore (Posix.waitpid p pid);
  Posix.spawn p ~prog ~args:[]

let boot_ctx () =
  let m = Machine.boot (config ()) in
  Machine.register_program m "nop" (fun _ _ -> 0);
  let ctx = { m; hist = ref []; next_h = Hashtbl.create 4 } in
  (m, ctx)

(* --- scenarios ------------------------------------------------------ *)

(* Close-to-open handoff: A creates, writes and closes a file; B (a
   different core) then opens and reads it. Every schedule must hand
   B the written bytes — the skip_writeback mutation breaks exactly
   this. *)
let build_handoff () =
  let m, ctx = boot_ctx () in
  Machine.register_program m "b-reader" (fun p _ ->
      (match r_open ctx 1 p "/h.dat" ~create:false ~flags:Types.flags_r with
      | Some f ->
          ignore (r_read_all ctx 1 p f);
          r_close ctx 1 p f
      | None -> ());
      0);
  let init, _ =
    Machine.spawn_init m ~name:"explore-handoff" (fun p _ ->
        (match r_open ctx 0 p "/h.dat" ~create:true ~flags:Types.flags_rw with
        | Some f ->
            ignore (r_write ctx 0 p f (String.make 64 'a'));
            r_close ctx 0 p f
        | None -> ());
        let pid = spawn_remote p ~prog:"b-reader" in
        Posix.waitpid p pid)
  in
  { b_machine = m; b_init = init; b_history = (fun () -> !(ctx.hist)) }

(* Reopen after a remote rewrite: A writes v1 and closes; B rewrites in
   place and closes; A (after waiting on B) reopens and rereads — it
   must see v2. The skip_open_inval mutation leaves A's stale lines
   resident, so the reread hands back v1. *)
let build_reopen () =
  let m, ctx = boot_ctx () in
  Machine.register_program m "b-rewriter" (fun p _ ->
      (match r_open ctx 1 p "/r.dat" ~create:false ~flags:Types.flags_rw with
      | Some f ->
          ignore (r_write ctx 1 p f (String.make 64 'b'));
          r_close ctx 1 p f
      | None -> ());
      0);
  let init, _ =
    Machine.spawn_init m ~name:"explore-reopen" (fun p _ ->
        (match r_open ctx 0 p "/r.dat" ~create:true ~flags:Types.flags_rw with
        | Some f ->
            ignore (r_write ctx 0 p f (String.make 64 'a'));
            r_close ctx 0 p f
        | None -> ());
        let pid = spawn_remote p ~prog:"b-rewriter" in
        if Posix.waitpid p pid <> 0 then 1
        else begin
          (match
             r_open ctx 0 p "/r.dat" ~create:false ~flags:Types.flags_r
           with
          | Some f ->
              ignore (r_read_all ctx 0 p f);
              r_close ctx 0 p f
          | None -> ());
          0
        end)
  in
  { b_machine = m; b_init = init; b_history = (fun () -> !(ctx.hist)) }

(* Directory-entry invalidation: A caches a dircache entry for /d/f; B
   unlinks it; A (after waiting on B) stats again and must see ENOENT.
   The drop_inval mutation leaves the stale entry, so the stat
   succeeds against a dead file. *)
let build_dirrace () =
  let m, ctx = boot_ctx () in
  Machine.register_program m "b-unlinker" (fun p _ ->
      r_unlink ctx 1 p "/d/f";
      0);
  let init, _ =
    Machine.spawn_init m ~name:"explore-dirrace" (fun p _ ->
        r_mkdir ctx 0 p "/d";
        (match r_open ctx 0 p "/d/f" ~create:true ~flags:Types.flags_rw with
        | Some f -> r_close ctx 0 p f
        | None -> ());
        (* Populate this client's dircache (and the server's tracking). *)
        r_stat ctx 0 p "/d/f";
        let pid = spawn_remote p ~prog:"b-unlinker" in
        if Posix.waitpid p pid <> 0 then 1
        else begin
          r_stat ctx 0 p "/d/f";
          0
        end)
  in
  { b_machine = m; b_init = init; b_history = (fun () -> !(ctx.hist)) }

(* Two concurrent readers (no waitpid between them and the setup's
   close): a genuinely racy schedule tree whose every interleaving is
   nonetheless correct — the exhaustive-enumeration smoke scenario. *)
let build_readers () =
  let m, ctx = boot_ctx () in
  Machine.register_program m "b-reader" (fun p _ ->
      (match r_open ctx 1 p "/c.dat" ~create:false ~flags:Types.flags_r with
      | Some f ->
          ignore (r_read_all ctx 1 p f);
          r_close ctx 1 p f
      | None -> ());
      0);
  let init, _ =
    Machine.spawn_init m ~name:"explore-readers" (fun p _ ->
        (match r_open ctx 0 p "/c.dat" ~create:true ~flags:Types.flags_rw with
        | Some f ->
            ignore (r_write ctx 0 p f (String.make 32 'c'));
            r_close ctx 0 p f
        | None -> ());
        let pid = spawn_remote p ~prog:"b-reader" in
        (match r_open ctx 0 p "/c.dat" ~create:false ~flags:Types.flags_r with
        | Some f ->
            ignore (r_read_all ctx 0 p f);
            r_close ctx 0 p f
        | None -> ());
        Posix.waitpid p pid)
  in
  { b_machine = m; b_init = init; b_history = (fun () -> !(ctx.hist)) }

(* Symmetric collision: two children on different cores pace themselves
   to a common barrier cycle, then each creates and writes its own file
   through the shared server. Their requests leave on the same cycle and
   race into the server's mailbox — genuine same-cycle ties between
   conflicting deliveries, so the DPOR tree actually branches. Every
   interleaving is clean (disjoint paths). *)
let build_collide () =
  let m, ctx = boot_ctx () in
  let barrier = 400_000L in
  let writer name path client =
    Machine.register_program m name (fun p _ ->
        Posix.sleep_until p barrier;
        (match r_open ctx client p path ~create:true ~flags:Types.flags_rw with
        | Some f ->
            ignore (r_write ctx client p f (String.make 16 'x'));
            r_close ctx client p f
        | None -> ());
        0)
  in
  writer "w-one" "/one" 1;
  writer "w-two" "/two" 2;
  let init, _ =
    Machine.spawn_init m ~name:"explore-collide" (fun p _ ->
        let a = Posix.spawn p ~prog:"w-one" ~args:[] in
        let b = Posix.spawn p ~prog:"w-two" ~args:[] in
        let ra = Posix.waitpid p a in
        let rb = Posix.waitpid p b in
        ra + rb)
  in
  { b_machine = m; b_init = init; b_history = (fun () -> !(ctx.hist)) }

let all =
  [
    {
      sc_name = "handoff";
      sc_doc = "create/write/close on one core, open/read on another";
      sc_build = build_handoff;
    };
    {
      sc_name = "reopen";
      sc_doc = "reopen after a remote in-place rewrite must see v2";
      sc_build = build_reopen;
    };
    {
      sc_name = "dirrace";
      sc_doc = "stat after a remote unlink must see ENOENT";
      sc_build = build_dirrace;
    };
    {
      sc_name = "readers";
      sc_doc = "two concurrent readers of a closed file (always clean)";
      sc_build = build_readers;
    };
    {
      sc_name = "collide";
      sc_doc = "two cores race disjoint creates into one server (clean)";
      sc_build = build_collide;
    };
  ]

let find name = List.find (fun sc -> sc.sc_name = name) all

(* --- mutations ------------------------------------------------------ *)

let mutations = [ "skip_open_inval"; "skip_writeback"; "drop_inval" ]

let mutation_ref = function
  | "skip_open_inval" -> Hare_client.Client.mutate_skip_open_inval
  | "skip_writeback" -> Hare_client.Client.mutate_skip_writeback
  | "drop_inval" -> Hare_client.Dircache.mutate_drop_inval
  | m -> invalid_arg ("Scenario.with_mutation: unknown mutation " ^ m)

let with_mutation mut f =
  match mut with
  | None -> f ()
  | Some name ->
      let r = mutation_ref name in
      r := true;
      Fun.protect ~finally:(fun () -> r := false) f
