(* Model-VFS linearizability checker with close-to-open real-time edges.
   See oracle.mli for the contract. Host-side and pure: runs after the
   simulation finished, on the recorded history only. *)

type op =
  | Open of { path : string; create : bool }
  | Close of { h : int }
  | Write of { h : int; data : string }
  | Read of { h : int }
  | Stat of { path : string }
  | Unlink of { path : string }
  | Mkdir of { path : string }

type result =
  | Ok_unit
  | Ok_handle of int
  | Ok_int of int
  | Ok_data of string
  | Err of string

type event = {
  e_client : int;
  e_op : op;
  e_result : result;
  e_inv : int64;
  e_res : int64;
}

let op_str = function
  | Open { path; create } ->
      Printf.sprintf "open(%s%s)" path (if create then ", create" else "")
  | Close { h } -> Printf.sprintf "close(h%d)" h
  | Write { h; data } -> Printf.sprintf "write(h%d, %d bytes)" h (String.length data)
  | Read { h } -> Printf.sprintf "read(h%d)" h
  | Stat { path } -> Printf.sprintf "stat(%s)" path
  | Unlink { path } -> Printf.sprintf "unlink(%s)" path
  | Mkdir { path } -> Printf.sprintf "mkdir(%s)" path

let result_str = function
  | Ok_unit -> "ok"
  | Ok_handle h -> Printf.sprintf "h%d" h
  | Ok_int n -> string_of_int n
  | Ok_data d -> Printf.sprintf "%d bytes" (String.length d)
  | Err e -> e

let pp_event ppf e =
  Format.fprintf ppf "client %d: %s -> %s [%Ld..%Ld]" e.e_client
    (op_str e.e_op) (result_str e.e_result) e.e_inv e.e_res

(* Release completes visibility; acquire must observe every release that
   finished (in real time) before it was invoked. *)
let is_release = function
  | Close _ | Unlink _ | Mkdir _ -> true
  | Open _ | Write _ | Read _ | Stat _ -> false

let is_acquire = function
  | Open _ | Stat _ -> true
  | Close _ | Write _ | Read _ | Unlink _ | Mkdir _ -> false

(* --- model VFS ------------------------------------------------------ *)

(* Immutable so DFS backtracking is free. Histories hold a handful of
   ops on a couple of files; assoc lists beat any fancier structure. *)
type state = {
  files : (string * string) list; (* path -> contents *)
  dirs : string list;
  handles : ((int * int) * (string * int)) list;
      (* (client, handle) -> (path, offset); removed on close *)
}

let parent_ok st path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> true (* root always exists *)
  | Some i -> List.mem (String.sub path 0 i) st.dirs

(* Apply [ev]'s operation to [st]; return the model's result and the
   next state. The model result is then compared with the recorded
   one. *)
let apply st ev =
  match ev.e_op with
  | Mkdir { path } ->
      if List.mem path st.dirs || List.mem_assoc path st.files then
        (Err "EEXIST", st)
      else if not (parent_ok st path) then (Err "ENOENT", st)
      else (Ok_unit, { st with dirs = path :: st.dirs })
  | Open { path; create } ->
      (* Handle naming comes from the recorder: a successful real open
         returned [Ok_handle h], and later Close/Write/Read refer to
         that h. When the real open failed, the model binds no handle
         (a model success then mismatches the recorded error, pruning
         this witness). *)
      let next_h =
        match ev.e_result with Ok_handle h -> h | _ -> -1
      in
      if List.mem_assoc path st.files then
        ( Ok_handle next_h,
          {
            st with
            handles = ((ev.e_client, next_h), (path, 0)) :: st.handles;
          } )
      else if create then
        if not (parent_ok st path) then (Err "ENOENT", st)
        else
          ( Ok_handle next_h,
            {
              files = (path, "") :: st.files;
              dirs = st.dirs;
              handles = ((ev.e_client, next_h), (path, 0)) :: st.handles;
            } )
      else (Err "ENOENT", st)
  | Close { h } -> (
      match List.assoc_opt (ev.e_client, h) st.handles with
      | None -> (Err "EBADF", st)
      | Some _ ->
          ( Ok_unit,
            {
              st with
              handles =
                List.remove_assoc (ev.e_client, h) st.handles;
            } ))
  | Write { h; data } -> (
      match List.assoc_opt (ev.e_client, h) st.handles with
      | None -> (Err "EBADF", st)
      | Some (path, off) ->
          let old =
            match List.assoc_opt path st.files with Some c -> c | None -> ""
          in
          let len = String.length data in
          let tail_start = off + len in
          let contents =
            (* Pad with zero bytes on a sparse write, keep any tail. *)
            String.concat ""
              [
                (if String.length old >= off then String.sub old 0 off
                 else old ^ String.make (off - String.length old) '\000');
                data;
                (if String.length old > tail_start then
                   String.sub old tail_start (String.length old - tail_start)
                 else "");
              ]
          in
          ( Ok_int len,
            {
              st with
              files = (path, contents) :: List.remove_assoc path st.files;
              handles =
                ((ev.e_client, h), (path, off + len))
                :: List.remove_assoc (ev.e_client, h) st.handles;
            } ))
  | Read { h } -> (
      match List.assoc_opt (ev.e_client, h) st.handles with
      | None -> (Err "EBADF", st)
      | Some (path, off) ->
          let contents =
            match List.assoc_opt path st.files with Some c -> c | None -> ""
          in
          let data =
            if off >= String.length contents then ""
            else String.sub contents off (String.length contents - off)
          in
          ( Ok_data data,
            {
              st with
              handles =
                ((ev.e_client, h), (path, String.length contents))
                :: List.remove_assoc (ev.e_client, h) st.handles;
            } ))
  | Stat { path } ->
      if List.mem_assoc path st.files || List.mem path st.dirs then
        (Ok_unit, st)
      else (Err "ENOENT", st)
  | Unlink { path } ->
      if List.mem_assoc path st.files then
        (Ok_unit, { st with files = List.remove_assoc path st.files })
      else (Err "ENOENT", st)

let results_match recorded model =
  match (recorded, model) with
  | Ok_unit, Ok_unit -> true
  | Ok_handle a, Ok_handle b -> a = b
  | Ok_int a, Ok_int b -> a = b
  | Ok_data a, Ok_data b -> a = b
  | Err a, Err b -> a = b
  | _ -> false

(* --- witness search ------------------------------------------------- *)

let state_key st positions =
  let b = Buffer.create 64 in
  List.iter (fun p -> Buffer.add_string b (string_of_int p); Buffer.add_char b ',') positions;
  Buffer.add_char b '|';
  List.iter
    (fun (p, c) ->
      Buffer.add_string b p;
      Buffer.add_char b '=';
      Buffer.add_string b (string_of_int (Hashtbl.hash c));
      Buffer.add_char b ';')
    (List.sort compare st.files);
  List.iter (fun d -> Buffer.add_string b d; Buffer.add_char b ';')
    (List.sort compare st.dirs);
  List.iter
    (fun ((c, h), (p, o)) ->
      Buffer.add_string b (Printf.sprintf "%d.%d:%s@%d;" c h p o))
    (List.sort compare st.handles);
  Buffer.contents b

let check history =
  (* Per-client queues in program order (invocation stamps are strictly
     increasing within one client: calls block). *)
  let clients =
    List.sort_uniq compare (List.map (fun e -> e.e_client) history)
  in
  let queues =
    List.map
      (fun c ->
        ( c,
          Array.of_list
            (List.sort
               (fun a b -> Int64.compare a.e_inv b.e_inv)
               (List.filter (fun e -> e.e_client = c) history)) ))
      clients
  in
  (* Real-time edges: acquire [a] needs every cross-client release that
     responded at or before a's invocation. Represent each event by its
     (client, index-in-queue) coordinate. *)
  let releases =
    List.concat_map
      (fun (c, q) ->
        Array.to_list
          (Array.mapi (fun i e -> ((c, i), e)) q))
      queues
    |> List.filter (fun (_, e) -> is_release e.e_op)
  in
  let needed e =
    if not (is_acquire e.e_op) then []
    else
      List.filter_map
        (fun ((c, i), r) ->
          if c <> e.e_client && Int64.compare r.e_res e.e_inv <= 0 then
            Some (c, i)
          else None)
        releases
  in
  let seen = Hashtbl.create 256 in
  (* positions: per-client next-index, aligned with [queues] order. *)
  let rec dfs st positions =
    let key = state_key st (List.map snd positions) in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      let all_done =
        List.for_all2
          (fun (_, q) (_, p) -> p >= Array.length q)
          queues positions
      in
      if all_done then true
      else
        List.exists
          (fun (c, q) ->
            let p = List.assoc c positions in
            if p >= Array.length q then false
            else begin
              let ev = q.(p) in
              let edges_ok =
                List.for_all
                  (fun (rc, ri) ->
                    (* the release must already be in the witness *)
                    List.assoc rc positions > ri)
                  (needed ev)
              in
              if not edges_ok then false
              else begin
                let model_result, st' = apply st ev in
                results_match ev.e_result model_result
                && dfs st'
                     (List.map
                        (fun (c', p') ->
                          if c' = c then (c', p' + 1) else (c', p'))
                        positions)
              end
            end)
          queues
    end
  in
  let st0 = { files = []; dirs = []; handles = [] } in
  let positions0 = List.map (fun (c, _) -> (c, 0)) queues in
  if history = [] || dfs st0 positions0 then Ok ()
  else begin
    let b = Buffer.create 256 in
    Buffer.add_string b
      "no witness ordering explains the recorded history under \
       close-to-open semantics:\n";
    List.iter
      (fun (_, q) ->
        Array.iter
          (fun e ->
            Buffer.add_string b
              (Format.asprintf "  %a\n" pp_event e))
          q)
      queues;
    Error (Buffer.contents b)
  end
