(** Exploration micro-scenarios (PR 10).

    Each scenario boots a small checked machine (a couple of client
    cores against one file server), registers programs whose every
    POSIX call is recorded as an {!Oracle.event}, and hands the
    un-run machine to the exploration runner — which attaches a
    scheduler strategy to the engine {e before} [Machine.run], so every
    same-cycle tie in the event heap becomes a controllable choice
    point.

    Scenarios are deliberately tiny: exhaustive DPOR enumeration of one
    must finish within a CI budget. *)

type built = {
  b_machine : Hare.Machine.t;  (** booted, not yet run *)
  b_init : Hare_proc.Process.t;  (** init; must exit 0 *)
  b_history : unit -> Oracle.event list;
      (** the recorded POSIX history, valid after the run *)
}

type t = {
  sc_name : string;
  sc_doc : string;
  sc_build : unit -> built;
}

val all : t list

val find : string -> t
(** @raise Not_found on an unknown scenario name. *)

(** {1 Seeded protocol mutations}

    The PR 5 mutation switches, re-exported behind stable names so the
    CLI and CI can ask for them by string. *)

val mutations : string list
(** ["skip_open_inval"; "skip_writeback"; "drop_inval"]. *)

val with_mutation : string option -> (unit -> 'a) -> 'a
(** [with_mutation (Some name) f] runs [f] with the named protocol
    mutation switched on, restoring it after; [None] runs [f] plainly.
    @raise Invalid_argument on an unknown mutation name. *)
