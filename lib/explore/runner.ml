(* Schedule exploration runner: strategies, sleep-set + persistent-set
   DPOR, and per-run violation judging. See runner.mli. *)

module Engine = Hare_sim.Engine
module Machine = Hare.Machine
module Check = Hare_check.Check

type strategy =
  | Deterministic
  | Dpor
  | Pct of int
  | Rand of int
  | Replay of int list

let strategy_name = function
  | Deterministic -> "deterministic"
  | Dpor -> "dpor"
  | Pct seed -> Printf.sprintf "pct:%d" seed
  | Rand seed -> Printf.sprintf "rand:%d" seed
  | Replay _ -> "replay"

type violation = { v_kind : string; v_detail : string; v_choices : int list }

type stats = {
  schedules : int;
  choice_points : int;
  max_depth : int;
  sleep_blocked : int;
  complete : bool;
  violations : violation list;
}

(* --- one execution -------------------------------------------------- *)

(* A sleeping step turned out to be the next event to run: the whole
   execution only reorders commuting events of an already-explored one.
   Abort; the machine is discarded. *)
exception Sleep_blocked

(* Executed-step log entry. The footprint starts from the action tag
   (which mailbox a delivery lands in; which fiber resumes) and grows
   with every shared object the event touches while running
   ([ex_access]). Resume targets live in a negative namespace so they
   can never collide with the engine's encoded access objects, which
   are all non-negative. *)
type step = {
  s_seq : int;
  s_time : int;
  mutable s_fp : int list;
  mutable s_opaque : bool;
}

let fp_of_tag tag =
  match Engine.tag_kind tag with
  | Engine.Opaque -> (true, [])
  | Engine.Resume fid -> (false, [ -(fid + 1) ])
  | Engine.Deliver uid ->
      (* Same encoding note_mailbox uses, so a later enqueue into the
         delivered-to mailbox conflicts with the delivery itself. *)
      (false, [ (uid lsl 1) lor 1 ])

let conflict a b =
  a.s_opaque || b.s_opaque
  || List.exists (fun o -> List.mem o b.s_fp) a.s_fp

(* A choice point hit during one execution. *)
type cpoint = {
  c_time : int;
  c_cands : (int * int) array;
  c_chosen : int; (* ordinal *)
  c_step : int; (* index into the step log of the chosen step *)
}

type exec = {
  x_steps : step array;
  x_points : cpoint list; (* in execution order *)
  x_choices : int list; (* ordinal per choice point, in order *)
  x_blocked : bool;
  x_violations : violation list;
}

(* Sleep entries carry the sleeping step's footprint so a conflicting
   executed step can wake (drop) it. *)
type sleeper = { sl_seq : int; sl_fp : int list; sl_opaque : bool }

let wakes st sl =
  st.s_opaque || sl.sl_opaque
  || List.exists (fun o -> List.mem o sl.sl_fp) st.s_fp

(* Run one schedule of [scenario].

   [pick ~depth ~time cands] resolves each tie (depth counts choice
   points hit so far). [sleep_at depth] gives the sleep entries to arm
   when passing choice point [depth] — non-empty only under DPOR, where
   they are the siblings already explored at that tree node. *)
let run_one ~scenario ~mutate ~pick ~sleep_at () =
  Scenario.with_mutation mutate @@ fun () ->
  let built = scenario.Scenario.sc_build () in
  let m = built.Scenario.b_machine in
  let eng = Machine.engine m in
  let steps = ref [] (* reversed *) in
  let nsteps = ref 0 in
  let points = ref [] (* reversed *) in
  let choices = ref [] (* reversed *) in
  let depth = ref 0 in
  let live_sleep = ref [] in
  let cur = ref None in
  let ex_choose ~time cands =
    let ord = pick ~depth:!depth ~time cands in
    let ord = if ord < 0 || ord >= Array.length cands then 0 else ord in
    points :=
      { c_time = time; c_cands = cands; c_chosen = ord; c_step = !nsteps }
      :: !points;
    choices := ord :: !choices;
    live_sleep := sleep_at !depth @ !live_sleep;
    incr depth;
    ord
  in
  let ex_step ~time ~seq ~tag =
    (* The previous step's footprint is complete now: wake any sleeper
       it conflicts with, then see whether the step about to run was
       itself asleep. *)
    (match !cur with
    | Some prev -> live_sleep := List.filter (fun sl -> not (wakes prev sl)) !live_sleep
    | None -> ());
    if List.exists (fun sl -> sl.sl_seq = seq) !live_sleep then
      raise Sleep_blocked;
    let opaque, fp = fp_of_tag tag in
    let st = { s_seq = seq; s_time = time; s_fp = fp; s_opaque = opaque } in
    steps := st :: !steps;
    incr nsteps;
    cur := Some st
  in
  let ex_access o =
    match !cur with
    | Some st -> if not (List.mem o st.s_fp) then st.s_fp <- o :: st.s_fp
    | None -> ()
  in
  Engine.set_explorer eng { Engine.ex_choose; ex_step; ex_access };
  let outcome =
    match Machine.run m with
    | () -> Ok ()
    | exception Sleep_blocked -> Error `Blocked
    | exception Hare_sim.Engine.Fiber_failure (_, e) -> Error (`Crash e)
  in
  Engine.clear_explorer eng;
  let choices = List.rev !choices in
  let vio kind detail = { v_kind = kind; v_detail = detail; v_choices = choices } in
  let violations =
    match outcome with
    | Error `Blocked -> []
    | Error (`Crash e) ->
        [ vio "crash" ("fiber raised: " ^ Printexc.to_string e) ]
    | Ok () ->
        let vs = ref [] in
        (match Machine.exit_status m built.Scenario.b_init with
        | Some 0 -> ()
        | st ->
            let d =
              match st with
              | Some n -> Printf.sprintf "init exited %d" n
              | None -> "init never exited"
            in
            vs := vio "crash" d :: !vs);
        (match Machine.check m with
        | Some chk when Check.total_violations chk > 0 ->
            let first =
              match Check.violations chk with
              | v :: _ -> Format.asprintf "%a" Check.pp_violation v
              | [] -> "(details capped)"
            in
            vs :=
              vio "sanitizer"
                (Printf.sprintf "%d sanitizer violation(s); first: %s"
                   (Check.total_violations chk) first)
              :: !vs
        | _ -> ());
        (match Oracle.check (built.Scenario.b_history ()) with
        | Ok () -> ()
        | Error msg -> vs := vio "linearizability" msg :: !vs);
        List.rev !vs
  in
  {
    x_steps = Array.of_list (List.rev !steps);
    x_points = List.rev !points;
    x_choices = choices;
    x_blocked = (match outcome with Error `Blocked -> true | _ -> false);
    x_violations = violations;
  }

(* --- strategies over independent runs ------------------------------- *)

let no_sleep (_ : int) = []

let pick_replay plan ~depth ~time:_ (_ : (int * int) array) =
  match List.nth_opt plan depth with Some o -> o | None -> 0

let pick_rand rng ~depth:_ ~time:_ cands =
  Random.State.int rng (Array.length cands)

(* PCT-style: every actor (decoded from the action tag) draws a random
   priority on first sight; the highest-priority candidate runs, and
   with probability 1/8 the winner is demoted below everyone so
   low-priority orderings eventually surface too. *)
let pick_pct rng prio ~depth:_ ~time:_ cands =
  let prio_of tag =
    match Hashtbl.find_opt prio tag with
    | Some p -> p
    | None ->
        let p = Random.State.float rng 1.0 +. 1.0 in
        Hashtbl.replace prio tag p;
        p
  in
  let best = ref 0 and best_p = ref neg_infinity in
  Array.iteri
    (fun i (_, tag) ->
      let p = prio_of tag in
      if p > !best_p then begin
        best := i;
        best_p := p
      end)
    cands;
  let _, wtag = cands.(!best) in
  if Random.State.int rng 8 = 0 then
    Hashtbl.replace prio wtag (Random.State.float rng 1.0);
  !best

let stats_of_runs runs ~complete =
  let schedules = List.length (List.filter (fun x -> not x.x_blocked) runs) in
  let sleep_blocked = List.length (List.filter (fun x -> x.x_blocked) runs) in
  let choice_points =
    List.fold_left (fun a x -> a + List.length x.x_points) 0 runs
  in
  let max_depth =
    List.fold_left (fun a x -> max a (List.length x.x_points)) 0 runs
  in
  let violations = List.concat_map (fun x -> x.x_violations) runs in
  { schedules; choice_points; max_depth; sleep_blocked; complete; violations }

(* --- DPOR ----------------------------------------------------------- *)

(* DFS-tree node: one choice point, persistent across the re-executions
   that share its prefix. [d_backtrack] marks ordinals some detected
   race wants explored; [d_done] marks ordinals whose whole subtree has
   been searched; [d_sleep] holds the chosen steps of finished siblings
   so re-executions can recognise commuting replays of them. *)
type dnode = {
  d_cands : (int * int) array;
  d_time : int;
  mutable d_chosen : int;
  d_done : bool array;
  d_backtrack : bool array;
  mutable d_sleep : sleeper list;
  mutable d_cur_step : step option;
      (* the chosen ordinal's executed step, with its full footprint —
         what goes to sleep when the DFS moves to a sibling. Footprints
         are deterministic along a fixed prefix, so the latest execution
         through this node is as good as any. *)
}

let dpor ~scenario ~mutate ~budget =
  let stack = ref [||] in
  let runs = ref [] in
  let executions = ref 0 in
  let found = ref false in
  let exhausted = ref false in
  let out_of_budget = ref false in
  while (not !exhausted) && (not !found) && not !out_of_budget do
    (* Re-execute: replay the stack's chosen ordinals, default beyond. *)
    let pick ~depth ~time:_ (_ : (int * int) array) =
      if depth < Array.length !stack then !stack.(depth).d_chosen else 0
    in
    let sleep_at depth =
      if depth < Array.length !stack then !stack.(depth).d_sleep else []
    in
    let x = run_one ~scenario ~mutate ~pick ~sleep_at () in
    incr executions;
    runs := x :: !runs;
    if not x.x_blocked then found := !found || x.x_violations <> [];
    (* Extend the stack with the fresh choice points this execution
       discovered (every replayed prefix point must already be there —
       the prefix is deterministic). *)
    let points = Array.of_list x.x_points in
    let old = !stack in
    if Array.length points > Array.length old then
      stack :=
        Array.init (Array.length points) (fun i ->
            if i < Array.length old then old.(i)
            else
              let c = points.(i) in
              let n = Array.length c.c_cands in
              let bt = Array.make n false in
              bt.(c.c_chosen) <- true;
              {
                d_cands = c.c_cands;
                d_time = c.c_time;
                d_chosen = c.c_chosen;
                d_done = Array.make n false;
                d_backtrack = bt;
                d_sleep = [];
                d_cur_step = None;
              });
    (* Remember each visited node's chosen step (full footprint) for the
       sleep set. A node whose chosen step was itself blocked keeps
       [None] and sleeps as opaque — conservative, never unsound. *)
    Array.iteri
      (fun i c ->
        if i < Array.length !stack && c.c_step < Array.length x.x_steps then
          (!stack).(i).d_cur_step <- Some x.x_steps.(c.c_step))
      points;
    (* Race detection: for each choice point, any later step at the same
       cycle that conflicts with the chosen one could have run first on
       a real machine. Ask the node to also try that event; when its seq
       was not among the candidates there (it did not exist yet), every
       alternative gets marked — a sound over-approximation. *)
    Array.iteri
      (fun i c ->
        if i < Array.length !stack && c.c_step < Array.length x.x_steps
        then begin
          let node = (!stack).(i) in
          let chosen_step = x.x_steps.(c.c_step) in
          let j = ref (c.c_step + 1) in
          let n = Array.length x.x_steps in
          while !j < n && x.x_steps.(!j).s_time = c.c_time do
            let later = x.x_steps.(!j) in
            if conflict chosen_step later then begin
              let hit = ref false in
              Array.iteri
                (fun o (seq, _) ->
                  if seq = later.s_seq then begin
                    node.d_backtrack.(o) <- true;
                    hit := true
                  end)
                node.d_cands;
              if not !hit then
                Array.iteri (fun o _ -> node.d_backtrack.(o) <- true)
                  node.d_cands
            end;
            incr j
          done
        end)
      points;
    (* DFS pop: finish the deepest node's current ordinal, move to its
       next requested sibling, or discard it and pop further. *)
    let rec pop k =
      if k < 0 then exhausted := true
      else begin
        let node = (!stack).(k) in
        node.d_done.(node.d_chosen) <- true;
        let sl =
          match node.d_cur_step with
          | Some st ->
              { sl_seq = st.s_seq; sl_fp = st.s_fp; sl_opaque = st.s_opaque }
          | None ->
              let seq, _ = node.d_cands.(node.d_chosen) in
              { sl_seq = seq; sl_fp = []; sl_opaque = true }
        in
        node.d_sleep <- sl :: node.d_sleep;
        node.d_cur_step <- None;
        let next = ref (-1) in
        Array.iteri
          (fun o req -> if req && (not node.d_done.(o)) && !next < 0 then next := o)
          node.d_backtrack;
        if !next >= 0 then begin
          node.d_chosen <- !next;
          stack := Array.sub !stack 0 (k + 1)
        end
        else pop (k - 1)
      end
    in
    if not !found then pop (Array.length !stack - 1);
    if !executions >= budget then out_of_budget := true
  done;
  stats_of_runs (List.rev !runs) ~complete:(!exhausted && not !found)

(* --- entry points --------------------------------------------------- *)

let explore ~scenario ?mutate ~strategy ~budget () =
  (match mutate with
  | Some m when not (List.mem m Scenario.mutations) ->
      invalid_arg ("Runner.explore: unknown mutation " ^ m)
  | _ -> ());
  let budget = max 1 budget in
  let single pick =
    let x = run_one ~scenario ~mutate ~pick ~sleep_at:no_sleep () in
    stats_of_runs [ x ] ~complete:false
  in
  match strategy with
  | Deterministic -> single (pick_replay [])
  | Replay plan -> single (pick_replay plan)
  | Dpor -> dpor ~scenario ~mutate ~budget
  | Rand seed ->
      let runs = ref [] in
      let i = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < budget do
        let rng = Random.State.make [| seed; !i |] in
        let x = run_one ~scenario ~mutate ~pick:(pick_rand rng) ~sleep_at:no_sleep () in
        runs := x :: !runs;
        incr i;
        if x.x_violations <> [] then stop := true
      done;
      stats_of_runs (List.rev !runs) ~complete:false
  | Pct seed ->
      let runs = ref [] in
      let i = ref 0 in
      let stop = ref false in
      while (not !stop) && !i < budget do
        let rng = Random.State.make [| seed; !i |] in
        let prio = Hashtbl.create 32 in
        let x =
          run_one ~scenario ~mutate ~pick:(pick_pct rng prio) ~sleep_at:no_sleep ()
        in
        runs := x :: !runs;
        incr i;
        if x.x_violations <> [] then stop := true
      done;
      stats_of_runs (List.rev !runs) ~complete:false

let replay ~scenario ?mutate choices () =
  explore ~scenario ?mutate ~strategy:(Replay choices) ~budget:1 ()
