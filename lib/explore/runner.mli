(** Systematic schedule exploration (PR 10).

    Drives a {!Scenario} repeatedly, each run under a different
    resolution of the engine's same-cycle event ties (the only schedule
    freedom a deterministic discrete-event simulator has), and judges
    every completed run with the PR 5 coherence sanitizer {e and} the
    {!Oracle} linearizability checker.

    Strategies:

    - {!Dpor} — exhaustive depth-first enumeration with sleep-set +
      persistent-set partial-order reduction. Two same-cycle events
      commute unless their footprints intersect (same mailbox, same
      DRAM line, or an opaque event); schedules that only reorder
      commuting events are explored once.
    - {!Pct} — seeded random-priority scheduling (PCT-style): each
      actor (fiber or mailbox) gets a random priority, the
      highest-priority candidate wins, and priorities are occasionally
      demoted so low-probability orderings still surface.
    - {!Rand} — seeded uniform random choice at every tie.
    - {!Replay} — follow a recorded choice list (ordinal 0 beyond its
      end): deterministic reproduction of any reported violation.
    - {!Deterministic} — ordinal 0 everywhere: bit-identical to the
      engine's native order; one run.

    Every violation carries the ordinal list that produced it, so
    [hare_cli explore SC --replay CSV] reproduces it exactly. *)

type strategy =
  | Deterministic
  | Dpor
  | Pct of int  (** seed *)
  | Rand of int  (** seed *)
  | Replay of int list

val strategy_name : strategy -> string

type violation = {
  v_kind : string;  (** "sanitizer" | "linearizability" | "crash" *)
  v_detail : string;
  v_choices : int list;
      (** ordinal picked at each choice point, in order — the replay
          recipe *)
}

type stats = {
  schedules : int;  (** completed executions *)
  choice_points : int;  (** ties offered across all executions *)
  max_depth : int;  (** most choice points in any single execution *)
  sleep_blocked : int;  (** executions pruned as redundant by sleep sets *)
  complete : bool;
      (** DPOR only: the whole reduced schedule tree was enumerated
          within budget (and no violation cut the search short) *)
  violations : violation list;
}

val explore :
  scenario:Scenario.t ->
  ?mutate:string ->
  strategy:strategy ->
  budget:int ->
  unit ->
  stats
(** [budget] caps completed executions. Exploration stops early at the
    first violation (its replay is what matters, not its multiplicity).
    @raise Invalid_argument on an unknown mutation name. *)

val replay :
  scenario:Scenario.t -> ?mutate:string -> int list -> unit -> stats
(** One run under [Replay choices]; equivalent to {!explore} with
    [~strategy:(Replay choices) ~budget:1]. *)
