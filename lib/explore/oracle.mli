(** Linearizability oracle for exploration scenarios (PR 10).

    Scenario programs record every POSIX call they issue — operation,
    result, invocation and response stamps on the simulated clock — and
    this module decides post-hoc whether some witness ordering of those
    calls is explained by a model VFS, under Hare's {e close-to-open}
    contract (§3.2 of the paper): a witness must respect

    - each client's program order, and
    - real-time order {e only} from release points (close, unlink,
      mkdir) to acquire points (open, stat) — a release that completed
      before an acquire was invoked must precede it in the witness.

    Data operations concurrent in real time carry no edge, so a read
    overlapping a remote write may legally see either version — exactly
    the paper's contract, where visibility is only promised across a
    close-to-open pair. If no witness explains the recorded results the
    history is a consistency violation (e.g. a reopen-after-close that
    returned stale data).

    Pure arithmetic over the recorded history: nothing here touches the
    machine, the simulated clock, or any RNG. *)

type op =
  | Open of { path : string; create : bool }
      (** returns a client-local handle on success *)
  | Close of { h : int }
  | Write of { h : int; data : string }  (** at the handle's offset *)
  | Read of { h : int }  (** everything from the handle's offset *)
  | Stat of { path : string }
  | Unlink of { path : string }
  | Mkdir of { path : string }

type result =
  | Ok_unit
  | Ok_handle of int  (** the client-local handle an open returned *)
  | Ok_int of int  (** bytes written *)
  | Ok_data of string  (** bytes read *)
  | Err of string  (** errno mnemonic, e.g. "ENOENT" *)

type event = {
  e_client : int;
  e_op : op;
  e_result : result;
  e_inv : int64;  (** invocation stamp (simulated cycles) *)
  e_res : int64;  (** response stamp *)
}

val pp_event : Format.formatter -> event -> unit

val check : event list -> (unit, string) Stdlib.result
(** [check history] searches for a witness ordering (DFS with
    memoization; histories are tiny). [Ok ()] when one explains every
    recorded result against the model VFS; [Error msg] names the
    violation otherwise. The list may be in any order — per-client
    sequencing is recovered from invocation stamps, which are strictly
    increasing within a client (one blocking call at a time). *)
