(** POSIX-style error codes returned by Hare system calls. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | EPIPE
  | ENOSPC
  | ESPIPE
  | ECHILD
  | ESRCH
  | EMFILE
  | ENOSYS
  | ENOEXEC
  | EACCES
  | EBUSY
  | EIO
      (** a server was unreachable past the retry budget, crashed while
          holding parked state, or a broadcast could not complete *)

exception Error of t * string
(** Raised by the [*_exn] convenience wrappers; the string names the
    operation and operand. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val raise_errno : t -> string -> 'a

(** [get op what r] unwraps [Ok] or raises {!Error}. *)
val get : string -> string -> ('a, t) result -> 'a
