(** POSIX-style error codes returned by Hare system calls. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | EPIPE
  | ENOSPC
  | ESPIPE
  | ECHILD
  | ESRCH
  | EMFILE
  | ENOSYS
  | ENOEXEC
  | EACCES
  | EBUSY
  | EIO
      (** a server was unreachable past the retry budget, crashed while
          holding parked state, or a broadcast could not complete *)
  | EMOVED
      (** the logical home this request addresses no longer lives on the
          contacted physical server (shard migration in progress). Never
          surfaced to applications: the client library re-resolves the
          ring route and retries. Replied {e before} any execution or
          dedup recording, so resending with the same (client, seq) tag
          is always safe. *)

exception Error of t * string
(** Raised by the [*_exn] convenience wrappers; the string names the
    operation and operand. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val raise_errno : t -> string -> 'a

(** [get op what r] unwraps [Ok] or raises {!Error}. *)
val get : string -> string -> ('a, t) result -> 'a
