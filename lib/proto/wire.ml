open Types

(* Extensible so [Hare_server] can define the concrete migration payload
   (it references server-internal types) without a dependency cycle. *)
type pack = ..

type fs_req =
  | Lookup of { home : int; dir : ino; name : string; client : client_id }
  | Add_map of {
      home : int;
      dir : ino;
      name : string;
      target : ino;
      ftype : ftype;
      dist : bool;
      replace : bool;
      client : client_id;
    }
  | Rm_map of {
      home : int;
      dir : ino;
      name : string;
      only_if : ino option;
      client : client_id;
    }
  | Readdir_shard of { home : int; dir : ino }
  | Create_open of {
      home : int;
      dir : ino;
      name : string;
      excl : bool;
      trunc : bool;
      client : client_id;
    }
  | Create_inode of { home : int; ftype : ftype; dist : bool; and_open : bool }
  | Create_dir of {
      home : int;
      dir : ino;
      name : string;
      dist : bool;
      client : client_id;
    }
  | Open_inode of { ino : ino; trunc : bool; client : client_id }
  | Close_fd of { token : fd_token; size : int option }
  | Read_fd of { token : fd_token; off : int option; len : int }
  | Write_fd of { token : fd_token; off : int option; data : string }
  | Lseek_fd of { token : fd_token; pos : int; whence : whence }
  | Alloc_blocks of { ino : ino; count : int; ahead : int }
  | Get_blocks of { ino : ino }
  | Update_size of { token : fd_token; size : int }
  | Get_attr of { ino : ino }
  | Truncate of { ino : ino; size : int }
  | Unlink_ino of { ino : ino }
  | Link_ino of { ino : ino }
  | Inc_fd_ref of { token : fd_token; offset : int option }
  | Rmdir_lock of { dir : ino }
  | Rmdir_unlock of { dir : ino }
  | Rmdir_prepare of { home : int; dir : ino }
  | Rmdir_commit of { home : int; dir : ino; client : client_id }
  | Rmdir_abort of { home : int; dir : ino }
  | Rmdir_local of { dir : ino; client : client_id }
  | Pipe_create of { home : int; client : client_id }
  | Pipe_read of { token : fd_token; len : int }
  | Pipe_write of { token : fd_token; data : string }
  | Steal_blocks of { count : int }
  | Migrate_out of { home : int }
  | Install_shard of { home : int; pack : pack }

type open_info = { token : fd_token; blocks : int array; isize : int }

(** What a directory entry denotes: the target inode, its type, and (for
    directories) its distribution flag — denormalized so a single lookup
    RPC suffices to keep walking a path. *)
type entry_info = { t_ino : ino; t_ftype : ftype; t_dist : bool }

type entry = { e_name : string; e_ino : ino; e_ftype : ftype }

type fs_payload =
  | P_unit
  | P_ino of ino
  | P_attr of attr
  | P_lookup of { target : ino; ftype : ftype; dist : bool }
  | P_open of open_info
  | P_create of open_info
  | P_created_ino of ino
  | P_read of { data : string; now_local : int option }
  | P_write of { written : int; size : int; now_local : int option }
  | P_lseek of int
  | P_entries of entry list
  | P_blocks of { blocks : int array; bsize : int }
  | P_removed of { target : ino; ftype : ftype }
  | P_pipe of { pipe_ino : ino; rd : fd_token; wr : fd_token }
  | P_open_ino of { oi : open_info; ino : ino }
  | P_pack of pack

type fs_resp = (fs_payload, Errno.t) result

type inval =
  | Inval_entry of { i_dir : ino; i_name : string }
  | Inval_all

type proxy_msg =
  | Pm_child_exit of int
  | Pm_console_write of { data : string; ack : unit Hare_sim.Ivar.t }
  | Pm_signal of int

type console_ref =
  | Console_local of Buffer.t
  | Console_remote of proxy_msg Hare_msg.Mailbox.t

type xfer_fd =
  | Xfile of { ino : ino; token : fd_token; flags : open_flags; pos : xfer_pos }
  | Xpipe of { pipe_ino : ino; token : fd_token; write_end : bool }
  | Xconsole of console_ref

and xfer_pos = Xlocal of int | Xshared

type sched_req =
  | S_exec of {
      prog : string;
      args : string list;
      env : (string * string) list;
      cwd_path : string;
      fds : (int * xfer_fd) list;
      proxy : proxy_msg Hare_msg.Mailbox.t;
      rr_next : int;
    }
  | S_signal of { pid : pid; signal : int }

type sched_resp = (pid, Errno.t) result

let req_name = function
  | Lookup _ -> "LOOKUP"
  | Add_map _ -> "ADD_MAP"
  | Rm_map _ -> "RM_MAP"
  | Readdir_shard _ -> "READDIR"
  | Create_open _ -> "CREATE_OPEN"
  | Create_inode _ -> "CREATE_INODE"
  | Create_dir _ -> "CREATE_DIR"
  | Open_inode _ -> "OPEN"
  | Close_fd _ -> "CLOSE"
  | Read_fd _ -> "READ"
  | Write_fd _ -> "WRITE"
  | Lseek_fd _ -> "LSEEK"
  | Alloc_blocks _ -> "ALLOC"
  | Get_blocks _ -> "GET_BLOCKS"
  | Update_size _ -> "UPDATE_SIZE"
  | Get_attr _ -> "GETATTR"
  | Truncate _ -> "TRUNCATE"
  | Unlink_ino _ -> "UNLINK_INO"
  | Link_ino _ -> "LINK_INO"
  | Inc_fd_ref _ -> "INC_FD_REF"
  | Rmdir_lock _ -> "RMDIR_LOCK"
  | Rmdir_unlock _ -> "RMDIR_UNLOCK"
  | Rmdir_prepare _ -> "RMDIR_PREPARE"
  | Rmdir_commit _ -> "RMDIR_COMMIT"
  | Rmdir_abort _ -> "RMDIR_ABORT"
  | Rmdir_local _ -> "RMDIR_LOCAL"
  | Pipe_create _ -> "PIPE_CREATE"
  | Pipe_read _ -> "PIPE_READ"
  | Pipe_write _ -> "PIPE_WRITE"
  | Steal_blocks _ -> "STEAL_BLOCKS"
  | Migrate_out _ -> "MIGRATE_OUT"
  | Install_shard _ -> "INSTALL_SHARD"

(* Span names for server-side trace contexts. Literal per constructor —
   ["srv:" ^ req_name req] would allocate a fresh string on every traced
   request. *)
let req_srv_name = function
  | Lookup _ -> "srv:LOOKUP"
  | Add_map _ -> "srv:ADD_MAP"
  | Rm_map _ -> "srv:RM_MAP"
  | Readdir_shard _ -> "srv:READDIR"
  | Create_open _ -> "srv:CREATE_OPEN"
  | Create_inode _ -> "srv:CREATE_INODE"
  | Create_dir _ -> "srv:CREATE_DIR"
  | Open_inode _ -> "srv:OPEN"
  | Close_fd _ -> "srv:CLOSE"
  | Read_fd _ -> "srv:READ"
  | Write_fd _ -> "srv:WRITE"
  | Lseek_fd _ -> "srv:LSEEK"
  | Alloc_blocks _ -> "srv:ALLOC"
  | Get_blocks _ -> "srv:GET_BLOCKS"
  | Update_size _ -> "srv:UPDATE_SIZE"
  | Get_attr _ -> "srv:GETATTR"
  | Truncate _ -> "srv:TRUNCATE"
  | Unlink_ino _ -> "srv:UNLINK_INO"
  | Link_ino _ -> "srv:LINK_INO"
  | Inc_fd_ref _ -> "srv:INC_FD_REF"
  | Rmdir_lock _ -> "srv:RMDIR_LOCK"
  | Rmdir_unlock _ -> "srv:RMDIR_UNLOCK"
  | Rmdir_prepare _ -> "srv:RMDIR_PREPARE"
  | Rmdir_commit _ -> "srv:RMDIR_COMMIT"
  | Rmdir_abort _ -> "srv:RMDIR_ABORT"
  | Rmdir_local _ -> "srv:RMDIR_LOCAL"
  | Pipe_create _ -> "srv:PIPE_CREATE"
  | Pipe_read _ -> "srv:PIPE_READ"
  | Pipe_write _ -> "srv:PIPE_WRITE"
  | Steal_blocks _ -> "srv:STEAL_BLOCKS"
  | Migrate_out _ -> "srv:MIGRATE_OUT"
  | Install_shard _ -> "srv:INSTALL_SHARD"

(* Overload priority class: metadata RPCs (0) are never shed, data RPCs
   (1) move bulk bytes, background RPCs (2) are deferrable housekeeping.
   Rides the RPC envelope so a loaded server can shed by class. *)
let req_prio : fs_req -> int = function
  | Read_fd _ | Write_fd _ | Alloc_blocks _ | Get_blocks _ | Update_size _
  | Pipe_read _ | Pipe_write _ ->
      1
  | Unlink_ino _ | Steal_blocks _ -> 2
  | _ -> 0

let prio_name = function 0 -> "meta" | 1 -> "data" | _ -> "background"

(* Compact request arguments for trace spans: enough to identify the
   object an op touched without dumping payloads. *)
let req_args req =
  let pp i = Format.asprintf "%a" pp_ino i in
  let ino i = [ ("ino", pp i) ] in
  let dir d = [ ("dir", pp d) ] in
  match req with
  | Lookup { dir = d; name; _ } -> dir d @ [ ("name", name) ]
  | Add_map { dir = d; name; _ } -> dir d @ [ ("name", name) ]
  | Rm_map { dir = d; name; _ } -> dir d @ [ ("name", name) ]
  | Readdir_shard { dir = d; _ } -> dir d
  | Create_open { dir = d; name; _ } -> dir d @ [ ("name", name) ]
  | Create_inode _ -> []
  | Create_dir { dir = d; name; _ } -> dir d @ [ ("name", name) ]
  | Open_inode { ino = i; _ } -> ino i
  | Close_fd _ | Lseek_fd _ | Update_size _ | Inc_fd_ref _ -> []
  | Read_fd { len; _ } -> [ ("len", string_of_int len) ]
  | Write_fd { data; _ } -> [ ("len", string_of_int (String.length data)) ]
  | Alloc_blocks { ino = i; count; _ } ->
      ino i @ [ ("count", string_of_int count) ]
  | Get_blocks { ino = i } -> ino i
  | Get_attr { ino = i } -> ino i
  | Truncate { ino = i; size } -> ino i @ [ ("size", string_of_int size) ]
  | Unlink_ino { ino = i } -> ino i
  | Link_ino { ino = i } -> ino i
  | Rmdir_lock { dir = d }
  | Rmdir_unlock { dir = d }
  | Rmdir_prepare { dir = d; _ }
  | Rmdir_abort { dir = d; _ } ->
      dir d
  | Rmdir_commit { dir = d; _ } | Rmdir_local { dir = d; _ } -> dir d
  | Pipe_create _ -> []
  | Pipe_read { len; _ } -> [ ("len", string_of_int len) ]
  | Pipe_write { data; _ } -> [ ("len", string_of_int (String.length data)) ]
  | Steal_blocks { count } -> [ ("count", string_of_int count) ]
  | Migrate_out { home } | Install_shard { home; _ } ->
      [ ("home", string_of_int home) ]

let pp_fs_req ppf req =
  match req with
  | Lookup { dir; name; _ } ->
      Format.fprintf ppf "LOOKUP(%a, %s)" pp_ino dir name
  | Add_map { dir; name; target; _ } ->
      Format.fprintf ppf "ADD_MAP(%a, %s -> %a)" pp_ino dir name pp_ino target
  | Rm_map { dir; name; _ } ->
      Format.fprintf ppf "RM_MAP(%a, %s)" pp_ino dir name
  | Create_open { dir; name; _ } ->
      Format.fprintf ppf "CREATE_OPEN(%a, %s)" pp_ino dir name
  | Open_inode { ino; _ } -> Format.fprintf ppf "OPEN(%a)" pp_ino ino
  | Readdir_shard { dir; _ } -> Format.fprintf ppf "READDIR(%a)" pp_ino dir
  | _ -> Format.pp_print_string ppf (req_name req)
