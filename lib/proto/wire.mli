(** Message formats of the Hare protocol.

    File-system requests are grouped by the server that handles them:
    directory-entry operations go to the shard server determined by
    {!Types.dentry_server}; inode/file-descriptor operations go to the
    inode's home server; the three-phase rmdir protocol (§3.3) touches the
    home server (lock) and then every server (prepare/commit/abort).

    Coalesced messages ({!fs_req.Create_open}) implement §3.6.3: when the
    directory entry and the new inode land on the same server, create +
    link + open travel as one message. *)

open Types

type pack = ..
(** Opaque shard-migration payload: the whole state of one logical home
    (inodes, dentry shards, open descriptors, dedup memory, block
    ownership). Extensible so [Hare_server] can define the concrete
    constructor — it references server-internal types — without a
    dependency cycle. *)

(** Requests that address a directory-entry shard or mint an inode carry
    the {e logical home} ([home]) they are aimed at: under [Sharded]
    placement several homes can share a physical server (and move between
    servers mid-run), so the receiving server cannot infer the home from
    its own id. A server answers [EMOVED] — before execution, before
    dedup recording — when it does not currently host the request's home;
    clients then re-resolve the ring route and resend. Inode, token and
    rmdir-lock requests derive their home from the [ino]/[token]/[dir]
    field instead. *)
type fs_req =
  (* directory-entry (shard) operations *)
  | Lookup of { home : int; dir : ino; name : string; client : client_id }
  | Add_map of {
      home : int;
      dir : ino;
      name : string;
      target : ino;
      ftype : ftype;
      dist : bool;  (** target's distribution flag, denormalized into the
                        entry so lookups need one RPC (§3.6.1). *)
      replace : bool;
      client : client_id;
    }
  | Rm_map of {
      home : int;
      dir : ino;
      name : string;
      only_if : ino option;
          (** remove only if the entry still points here — rename's
              compensation relies on inode ids never being reused. *)
      client : client_id;
    }
  | Readdir_shard of { home : int; dir : ino }
  | Create_open of {
      home : int;
      dir : ino;
      name : string;
      excl : bool;
      trunc : bool;
      client : client_id;
    }  (** coalesced create-inode + add-map + open for regular files. *)
  (* inode (home server) operations *)
  | Create_inode of { home : int; ftype : ftype; dist : bool; and_open : bool }
  | Create_dir of {
      home : int;
      dir : ino;
      name : string;
      dist : bool;
      client : client_id;
    }
      (** coalesced mkdir: inode + entry when both land on one server
          (§3.6.3). *)
  | Open_inode of { ino : ino; trunc : bool; client : client_id }
  | Close_fd of { token : fd_token; size : int option }
  | Read_fd of { token : fd_token; off : int option; len : int }
  | Write_fd of { token : fd_token; off : int option; data : string }
  | Lseek_fd of { token : fd_token; pos : int; whence : whence }
  | Alloc_blocks of { ino : ino; count : int; ahead : int }
      (** grow the file by [count] blocks, plus up to [ahead] extra as an
          extent lease (best effort: the hint is dropped before failing
          with ENOSPC). [ahead = 0] is the paper's per-need allocation. *)
  | Get_blocks of { ino : ino }
  | Update_size of { token : fd_token; size : int }
  | Get_attr of { ino : ino }
  | Truncate of { ino : ino; size : int }
  | Unlink_ino of { ino : ino }
  | Link_ino of { ino : ino }
      (** add a link count: the first half of rename's link+unlink pair,
          protecting the inode from a concurrent unlink of the old
          name. *)
  | Inc_fd_ref of { token : fd_token; offset : int option }
      (** fork-time share: the client's local offset migrates in. *)
  (* three-phase rmdir *)
  | Rmdir_lock of { dir : ino }
  | Rmdir_unlock of { dir : ino }
  | Rmdir_prepare of { home : int; dir : ino }
  | Rmdir_commit of { home : int; dir : ino; client : client_id }
  | Rmdir_abort of { home : int; dir : ino }
  | Rmdir_local of { dir : ino; client : client_id }
      (** coalesced rmdir of a {e centralized} directory: emptiness check
          and inode removal are atomic at the home server, so the
          three-phase protocol is unnecessary. *)
  (* pipes *)
  | Pipe_create of { home : int; client : client_id }
  | Pipe_read of { token : fd_token; len : int }
  | Pipe_write of { token : fd_token; data : string }
  | Steal_blocks of { count : int }
      (** server→server ({e extension}, §3.2): ask a peer to donate free
          buffer-cache blocks when this server's partition is dry. *)
  (* shard migration (coordinator→server, {e extension}) *)
  | Migrate_out of { home : int }
      (** pack up logical home [home] and stop hosting it. Replies
          [P_pack] with the home's entire state, or [EBUSY] if the home
          holds parked continuations (pipe waiters, rmdir marks/locks)
          that cannot move. Sent reliably (no idempotency tag), so fault
          plans never drop it and a crashed server replays it at
          restart. *)
  | Install_shard of { home : int; pack : pack }
      (** adopt a packed home: install its inodes, dentry shards, open
          descriptors and dedup memory, and take ownership of its
          buffer-cache blocks. Also reliable. *)

type open_info = { token : fd_token; blocks : int array; isize : int }

(** What a directory entry denotes: the target inode, its type, and (for
    directories) its distribution flag — denormalized so a single lookup
    RPC suffices to keep walking a path. *)
type entry_info = { t_ino : ino; t_ftype : ftype; t_dist : bool }

type entry = { e_name : string; e_ino : ino; e_ftype : ftype }

type fs_payload =
  | P_unit
  | P_ino of ino
  | P_attr of attr
  | P_lookup of { target : ino; ftype : ftype; dist : bool }
  | P_open of open_info
  | P_create of open_info  (** reply to [Create_open]; token's ino inside. *)
  | P_created_ino of ino  (** reply to [Create_inode]. *)
  | P_read of { data : string; now_local : int option }
      (** [now_local]: lazy demotion — the fd's shared refcount dropped to
          one, the offset migrates back to the client (§3.4). *)
  | P_write of { written : int; size : int; now_local : int option }
  | P_lseek of int
  | P_entries of entry list
  | P_blocks of { blocks : int array; bsize : int }
  | P_removed of { target : ino; ftype : ftype }
  | P_pipe of { pipe_ino : ino; rd : fd_token; wr : fd_token }
  | P_open_ino of { oi : open_info; ino : ino }
  | P_pack of pack  (** reply to [Migrate_out]. *)

type fs_resp = (fs_payload, Errno.t) result

(** Directory-cache invalidation pushed from server to client (§3.6.1).
    [Inval_all] is sent by a server coming back from a crash: the client
    cannot tell which of its entries the reborn server would have
    invalidated, so it must flush them all. *)
type inval =
  | Inval_entry of { i_dir : ino; i_name : string }
  | Inval_all

(** Messages to a proxy process left behind by a remote exec (§3.5). *)
type proxy_msg =
  | Pm_child_exit of int
  | Pm_console_write of { data : string; ack : unit Hare_sim.Ivar.t }
  | Pm_signal of int  (** relayed from the proxy's parent to the child. *)

type console_ref =
  | Console_local of Buffer.t
  | Console_remote of proxy_msg Hare_msg.Mailbox.t

(** File-descriptor snapshot carried by an exec RPC. *)
type xfer_fd =
  | Xfile of { ino : ino; token : fd_token; flags : open_flags; pos : xfer_pos }
  | Xpipe of { pipe_ino : ino; token : fd_token; write_end : bool }
  | Xconsole of console_ref

and xfer_pos = Xlocal of int | Xshared

type sched_req =
  | S_exec of {
      prog : string;
      args : string list;
      env : (string * string) list;
      cwd_path : string;
      fds : (int * xfer_fd) list;
      proxy : proxy_msg Hare_msg.Mailbox.t;
      rr_next : int;  (** round-robin placement state, parent→child. *)
    }
  | S_signal of { pid : pid; signal : int }

type sched_resp = (pid, Errno.t) result

val pp_fs_req : Format.formatter -> fs_req -> unit

val req_name : fs_req -> string
(** Short opcode name, for per-operation statistics. *)

val req_srv_name : fs_req -> string
(** ["srv:" ^ req_name req] as a literal per constructor (no per-call
    allocation); names server-side trace spans. *)

val req_args : fs_req -> (string * string) list
(** Compact key/value identification of the request's target (inode,
    directory entry, payload length) for trace-span annotation. *)

val req_prio : fs_req -> int
(** Overload priority class: 0 = metadata (never shed), 1 = data,
    2 = background (shed first above the watermark). *)

val prio_name : int -> string
(** ["meta"], ["data"] or ["background"]. *)
