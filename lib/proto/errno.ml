type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | EPIPE
  | ENOSPC
  | ESPIPE
  | ECHILD
  | ESRCH
  | EMFILE
  | ENOSYS
  | ENOEXEC
  | EACCES
  | EBUSY
  | EIO
  | EMOVED

exception Error of t * string

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | EPIPE -> "EPIPE"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | ECHILD -> "ECHILD"
  | ESRCH -> "ESRCH"
  | EMFILE -> "EMFILE"
  | ENOSYS -> "ENOSYS"
  | ENOEXEC -> "ENOEXEC"
  | EACCES -> "EACCES"
  | EBUSY -> "EBUSY"
  | EIO -> "EIO"
  | EMOVED -> "EMOVED"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let raise_errno e ctx = raise (Error (e, ctx))

let get op what = function
  | Ok v -> v
  | Error e -> raise_errno e (op ^ " " ^ what)

let () =
  Printexc.register_printer (function
    | Error (e, ctx) -> Some (Printf.sprintf "Errno.Error(%s, %s)" (to_string e) ctx)
    | _ -> None)
