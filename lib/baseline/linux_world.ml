open Hare_sim
open Hare_proto
open Hare_proto.Types
module Pipe_state = Hare_server.Pipe_state
module Path = Hare_client.Path

type t = {
  engine : Engine.t;
  config : Hare_config.Config.t;
  costs : Hare_config.Costs.t;
  cores : Core_res.t array;
  fs : Lfs.t;
  registry : (string, proc -> string list -> int) Hashtbl.t;
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable rr : int;  (* kernel scheduler's balance cursor *)
}

and proc = {
  pid : pid;
  core_id : int;
  w : t;
  fdt : (int, entry) Hashtbl.t;
  mutable cwd : string;
  exit_status : int Ivar.t;
  mutable children : proc list;
  child_exits : (pid * int) Bqueue.t;
  mutable reaped : (pid * int) list;
  mutable killed : bool;
  prng : Rng.t;
}

(* Kernel "struct file": shared by fork/dup across processes — plain
   shared memory on this coherent baseline. *)
and entry = {
  mutable desc : desc;
  mutable refs : int;  (* fd bindings across all processes *)
}

and desc =
  | Lfile of lfile
  | Lpipe of { ps : Pipe_state.t; write_end : bool }
  | Lconsole of Buffer.t

and lfile = {
  node : Lfs.node;
  mutable pos : int;
  flags : open_flags;
}

exception Exited of int
(* raised by workload code to emulate exit(2); caught by process runners *)

let exit_proc (_ : proc) status = raise (Exited status)

let boot config =
  (match Hare_config.Config.validate config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Linux_world.boot: " ^ m));
  let engine = Engine.create ~seed:config.Hare_config.Config.seed () in
  let costs = config.Hare_config.Config.costs in
  let cores =
    Array.init config.Hare_config.Config.ncores (fun i ->
        Core_res.create engine ~id:i
          ~socket:(Hare_config.Config.socket_of_core config i)
          ~ctx_switch:costs.ctx_switch)
  in
  {
    engine;
    config;
    costs;
    cores;
    fs = Lfs.create ~engine ~config ~cores;
    registry = Hashtbl.create 16;
    procs = Hashtbl.create 64;
    next_pid = 1;
    rr = 0;
  }

let fs t = t.fs

let run t = Engine.run t.engine

let run_for t budget = Engine.run_for t.engine budget

let seconds t =
  Hare_config.Costs.seconds_of_cycles t.costs (Engine.now t.engine)

let exit_status _t p = Ivar.peek p.exit_status

let syscalls t = Lfs.syscalls t.fs

let core (p : proc) = p.w.cores.(p.core_id)

(* ---------- processes --------------------------------------------------- *)

let mk_proc w ~core_id ~parent ~cwd ~fdt =
  let pid = Types.make_pid ~core:core_id ~seq:w.next_pid in
  w.next_pid <- w.next_pid + 1;
  let p =
    {
      pid;
      core_id;
      w;
      fdt;
      cwd;
      exit_status = Ivar.create ();
      children = [];
      child_exits = Bqueue.create ();
      reaped = [];
      killed = false;
      prng = Rng.split (Engine.rng w.engine);
    }
  in
  Hashtbl.replace w.procs pid p;
  (match parent with Some par -> par.children <- p :: par.children | None -> ());
  p

let release_entry (p : proc) (e : entry) =
  e.refs <- e.refs - 1;
  if e.refs <= 0 then
    match e.desc with
    | Lfile f -> Lfs.close_file p.w.fs ~core:p.core_id f.node
    | Lpipe { ps; write_end } ->
        if write_end then Pipe_state.close_writer ps
        else Pipe_state.close_reader ps
    | Lconsole _ -> ()

let close_all p =
  let fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) p.fdt [] in
  List.iter
    (fun fd ->
      match Hashtbl.find_opt p.fdt fd with
      | Some e ->
          Hashtbl.remove p.fdt fd;
          release_entry p e
      | None -> ())
    fds

(* ---------- file descriptors -------------------------------------------- *)

let alloc_fd p e =
  let rec scan fd =
    if fd >= 1024 then Errno.raise_errno Errno.EMFILE "fd table full"
    else if Hashtbl.mem p.fdt fd then scan (fd + 1)
    else begin
      Hashtbl.replace p.fdt fd e;
      fd
    end
  in
  scan 0

let find_fd p fd =
  match Hashtbl.find_opt p.fdt fd with
  | Some e -> e
  | None -> Errno.raise_errno Errno.EBADF (string_of_int fd)

(* ---------- api --------------------------------------------------------- *)

let pipe_copy_cost (p : proc) data =
  Core_res.compute (core p)
    (p.w.costs.linux_syscall + ((String.length data / 64) * 8))

let api_read (p : proc) fd ~len =
  let e = find_fd p fd in
  match e.desc with
  | Lfile f ->
      let data = Lfs.read_file p.w.fs ~core:p.core_id f.node ~off:f.pos ~len in
      f.pos <- f.pos + String.length data;
      data
  | Lpipe { ps; write_end } ->
      if write_end then Errno.raise_errno Errno.EBADF "write end";
      let iv = Ivar.create () in
      Pipe_state.read ps ~len (Ivar.fill iv);
      (match Ivar.read iv with
      | Ok data ->
          pipe_copy_cost p data;
          data
      | Error e -> Errno.raise_errno e "pipe read")
  | Lconsole _ -> ""

let api_write (p : proc) fd data =
  let e = find_fd p fd in
  match e.desc with
  | Lfile f ->
      let off = if f.flags.append then Lfs.size f.node else f.pos in
      let n = Lfs.write_file p.w.fs ~core:p.core_id f.node ~off data in
      f.pos <- off + n;
      n
  | Lpipe { ps; write_end } ->
      if not write_end then Errno.raise_errno Errno.EBADF "read end";
      let iv = Ivar.create () in
      Pipe_state.write ps data (Ivar.fill iv);
      (match Ivar.read iv with
      | Ok n ->
          pipe_copy_cost p data;
          n
      | Error e -> Errno.raise_errno e "pipe write")
  | Lconsole buf ->
      Buffer.add_string buf data;
      String.length data

let api_fork (p : proc) child_body =
  Core_res.compute (core p) p.w.costs.spawn_process;
  (* The kernel scheduler places the child on any core. *)
  let target = p.w.rr mod Array.length p.w.cores in
  p.w.rr <- p.w.rr + 1;
  let fdt = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fd e ->
      e.refs <- e.refs + 1;
      Hashtbl.replace fdt fd e)
    p.fdt;
  let child = mk_proc p.w ~core_id:target ~parent:(Some p) ~cwd:p.cwd ~fdt in
  let parent = p in
  ignore
    (Engine.spawn p.w.engine
       ~name:(Printf.sprintf "lproc-%d@%d" child.pid child.core_id)
       (fun () ->
         let status =
           try child_body child with
           | Exited n -> n
           | Errno.Error _ -> 1
         in
         (try close_all child with Errno.Error _ -> ());
         Hashtbl.remove child.w.procs child.pid;
         Bqueue.push parent.child_exits (child.pid, status);
         Ivar.fill child.exit_status status));
  child.pid

let reap (p : proc) pid =
  p.children <- List.filter (fun c -> c.pid <> pid) p.children

let api_wait (p : proc) =
  match p.reaped with
  | (pid, st) :: rest ->
      p.reaped <- rest;
      reap p pid;
      (pid, st)
  | [] ->
      if p.children = [] then Errno.raise_errno Errno.ECHILD "wait";
      let pid, st = Bqueue.pop p.child_exits in
      reap p pid;
      (pid, st)

let api_waitpid (p : proc) pid =
  let rec scan acc = function
    | [] -> None
    | (rp, st) :: rest when rp = pid ->
        p.reaped <- List.rev_append acc rest;
        Some st
    | entry :: rest -> scan (entry :: acc) rest
  in
  match scan [] p.reaped with
  | Some st ->
      reap p pid;
      st
  | None ->
      if not (List.exists (fun c -> c.pid = pid) p.children) then
        Errno.raise_errno Errno.ECHILD (string_of_int pid);
      let rec await () =
        let rp, st = Bqueue.pop p.child_exits in
        if rp = pid then begin
          reap p pid;
          st
        end
        else begin
          p.reaped <- p.reaped @ [ (rp, st) ];
          await ()
        end
      in
      await ()

let api t : proc Hare_api.Api.t =
  let fsys = t.fs in
  {
    openf =
      (fun p path flags ->
        let node = Lfs.open_file fsys ~core:p.core_id ~cwd:p.cwd path flags in
        let pos = if flags.append then Lfs.size node else 0 in
        alloc_fd p { desc = Lfile { node; pos; flags }; refs = 1 });
    close =
      (fun p fd ->
        let e = find_fd p fd in
        Hashtbl.remove p.fdt fd;
        Core_res.compute (core p) 200;
        release_entry p e);
    read = api_read;
    write = api_write;
    lseek =
      (fun p fd ~pos whence ->
        let e = find_fd p fd in
        match e.desc with
        | Lfile f ->
            let target =
              match whence with
              | Seek_set -> pos
              | Seek_cur -> f.pos + pos
              | Seek_end -> Lfs.size f.node + pos
            in
            if target < 0 then Errno.raise_errno Errno.EINVAL "lseek";
            f.pos <- target;
            Core_res.compute (core p) t.costs.linux_syscall;
            target
        | Lpipe _ | Lconsole _ -> Errno.raise_errno Errno.ESPIPE "lseek");
    dup2 =
      (fun p ~src ~dst ->
        let e = find_fd p src in
        if src <> dst then begin
          (match Hashtbl.find_opt p.fdt dst with
          | Some old ->
              Hashtbl.remove p.fdt dst;
              release_entry p old
          | None -> ());
          e.refs <- e.refs + 1;
          Hashtbl.replace p.fdt dst e
        end;
        dst);
    pipe =
      (fun p ->
        Core_res.compute (core p) (t.costs.linux_syscall + 800);
        let ps = Pipe_state.create ~capacity:65536 in
        Pipe_state.add_reader ps;
        Pipe_state.add_writer ps;
        let rfd = alloc_fd p { desc = Lpipe { ps; write_end = false }; refs = 1 } in
        let wfd = alloc_fd p { desc = Lpipe { ps; write_end = true }; refs = 1 } in
        (rfd, wfd));
    fsync =
      (fun p fd ->
        match (find_fd p fd).desc with
        | Lfile f -> Lfs.fsync_file fsys ~core:p.core_id f.node
        | Lpipe _ | Lconsole _ -> ());
    ftruncate =
      (fun p fd ~size ->
        match (find_fd p fd).desc with
        | Lfile f -> Lfs.truncate fsys ~core:p.core_id f.node ~size
        | Lpipe _ | Lconsole _ -> Errno.raise_errno Errno.EINVAL "ftruncate");
    unlink = (fun p path -> Lfs.unlink fsys ~core:p.core_id ~cwd:p.cwd path);
    mkdir =
      (fun p ~dist:_ path -> Lfs.mkdir fsys ~core:p.core_id ~cwd:p.cwd path);
    rmdir = (fun p path -> Lfs.rmdir fsys ~core:p.core_id ~cwd:p.cwd path);
    rename =
      (fun p a b -> Lfs.rename fsys ~core:p.core_id ~cwd:p.cwd a b);
    readdir = (fun p path -> Lfs.readdir fsys ~core:p.core_id ~cwd:p.cwd path);
    stat = (fun p path -> Lfs.stat fsys ~core:p.core_id ~cwd:p.cwd path);
    exists =
      (fun p path ->
        match Lfs.stat fsys ~core:p.core_id ~cwd:p.cwd path with
        | (_ : attr) -> true
        | exception Errno.Error ((Errno.ENOENT | Errno.ENOTDIR), _) -> false);
    chdir =
      (fun p path ->
        let a = Lfs.stat fsys ~core:p.core_id ~cwd:p.cwd path in
        if a.a_ftype <> Dir then Errno.raise_errno Errno.ENOTDIR path;
        p.cwd <- Path.join p.cwd path);
    fork = api_fork;
    spawn =
      (fun p ~prog ~args ->
        api_fork p (fun child ->
            match Hashtbl.find_opt t.registry prog with
            | None -> 127
            | Some body ->
                Core_res.compute (core child) t.costs.spawn_process;
                body child args));
    waitpid = api_waitpid;
    wait = api_wait;
    kill =
      (fun p pid _signal ->
        Core_res.compute (core p) t.costs.linux_syscall;
        match Hashtbl.find_opt t.procs pid with
        | Some target -> target.killed <- true
        | None -> Errno.raise_errno Errno.ESRCH (string_of_int pid));
    register_program = (fun name body -> Hashtbl.replace t.registry name body);
    compute = (fun p cycles -> Core_res.compute (core p) cycles);
    random = (fun p bound -> Rng.int p.prng bound);
    print =
      (fun p s ->
        match Hashtbl.find_opt p.fdt 1 with
        | Some { desc = Lconsole buf; _ } -> Buffer.add_string buf s
        | _ -> ());
    core_of = (fun p -> p.core_id);
    now_cycles = (fun p -> Engine.now p.w.engine);
    sleep_until =
      (fun p target ->
        let dt = Int64.sub target (Engine.now p.w.engine) in
        if dt > 0L then Engine.sleep dt);
  }

let spawn_init t ~name body =
  let console = Buffer.create 256 in
  let fdt = Hashtbl.create 16 in
  let e = { desc = Lconsole console; refs = 3 } in
  Hashtbl.replace fdt 0 e;
  Hashtbl.replace fdt 1 e;
  Hashtbl.replace fdt 2 e;
  let p = mk_proc t ~core_id:0 ~parent:None ~cwd:"/" ~fdt in
  ignore
    (Engine.spawn t.engine ~name (fun () ->
         let status =
           try body p with
           | Exited n -> n
           | Errno.Error _ -> 1
         in
         (try close_all p with Errno.Error _ -> ());
         Hashtbl.remove t.procs p.pid;
         Ivar.fill p.exit_status status));
  (p, console)
