(* Pipelining/batching/extent-allocation counters (PR 2). One instance
   per client and per server; [merge] folds them into a machine-wide
   aggregate. Everything stays at zero with the paper-faithful knobs
   (window 1, batch 1, extent 1), except [batches]/[batched_msgs], which
   then degenerate to one message per batch. *)

(* Batch-size histogram buckets: sizes 1..hist_buckets-1, with the last
   bucket collecting everything at or above it. *)
let hist_buckets = 17

type t = {
  mutable window_hwm : int;  (* peak in-flight deferred RPCs *)
  mutable deferred : int;  (* RPCs issued with a deferred await *)
  mutable deferred_errors : int;  (* deferred replies that came back Error *)
  mutable batches : int;  (* server dispatch wakeups *)
  mutable batched_msgs : int;  (* requests across all batches *)
  batch_hist : int array;  (* batch_hist.(n) = batches of size n *)
  mutable lease_hits : int;  (* block needs met by a held extent lease *)
  mutable lease_misses : int;  (* block needs that required an Alloc RPC *)
  mutable lease_blocks : int;  (* blocks allocated ahead of need *)
  mutable dedup_evicted : int;  (* dedup entries purged under the ack mark *)
}

let create () =
  {
    window_hwm = 0;
    deferred = 0;
    deferred_errors = 0;
    batches = 0;
    batched_msgs = 0;
    batch_hist = Array.make hist_buckets 0;
    lease_hits = 0;
    lease_misses = 0;
    lease_blocks = 0;
    dedup_evicted = 0;
  }

let reset t =
  t.window_hwm <- 0;
  t.deferred <- 0;
  t.deferred_errors <- 0;
  t.batches <- 0;
  t.batched_msgs <- 0;
  Array.fill t.batch_hist 0 hist_buckets 0;
  t.lease_hits <- 0;
  t.lease_misses <- 0;
  t.lease_blocks <- 0;
  t.dedup_evicted <- 0

let note_window t depth = if depth > t.window_hwm then t.window_hwm <- depth

let note_batch t size =
  t.batches <- t.batches + 1;
  t.batched_msgs <- t.batched_msgs + size;
  let bucket = min (max size 0) (hist_buckets - 1) in
  t.batch_hist.(bucket) <- t.batch_hist.(bucket) + 1

let merge ~into src =
  into.window_hwm <- max into.window_hwm src.window_hwm;
  into.deferred <- into.deferred + src.deferred;
  into.deferred_errors <- into.deferred_errors + src.deferred_errors;
  into.batches <- into.batches + src.batches;
  into.batched_msgs <- into.batched_msgs + src.batched_msgs;
  Array.iteri
    (fun i n -> into.batch_hist.(i) <- into.batch_hist.(i) + n)
    src.batch_hist;
  into.lease_hits <- into.lease_hits + src.lease_hits;
  into.lease_misses <- into.lease_misses + src.lease_misses;
  into.lease_blocks <- into.lease_blocks + src.lease_blocks;
  into.dedup_evicted <- into.dedup_evicted + src.dedup_evicted

let mean_batch t =
  if t.batches = 0 then 0.0
  else float_of_int t.batched_msgs /. float_of_int t.batches

let lease_hit_rate t =
  let total = t.lease_hits + t.lease_misses in
  if total = 0 then 0.0 else float_of_int t.lease_hits /. float_of_int total

let to_list t =
  [
    ("window high-water", t.window_hwm);
    ("deferred rpcs", t.deferred);
    ("deferred errors", t.deferred_errors);
    ("server batches", t.batches);
    ("batched requests", t.batched_msgs);
    ("extent-lease hits", t.lease_hits);
    ("extent-lease misses", t.lease_misses);
    ("blocks allocated ahead", t.lease_blocks);
    ("dedup entries evicted", t.dedup_evicted);
  ]

let is_zero t =
  List.for_all (fun (_, n) -> n = 0) (to_list t)
  && Array.for_all (fun n -> n = 0) t.batch_hist

let pp_hist ppf t =
  let nonzero = ref [] in
  Array.iteri
    (fun i n -> if i > 0 && n > 0 then nonzero := (i, n) :: !nonzero)
    t.batch_hist;
  match List.rev !nonzero with
  | [] -> Format.pp_print_string ppf "empty"
  | rows ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        (fun ppf (size, n) ->
          if size = hist_buckets - 1 then Format.fprintf ppf ">=%d:%d" size n
          else Format.fprintf ppf "%d:%d" size n)
        ppf rows

let pp ppf t =
  Format.fprintf ppf
    "@[<v>window high-water: %d@,\
     deferred rpcs: %d (errors %d)@,\
     batches: %d (%d requests, mean %.2f/batch)@,\
     batch histogram: %a@,\
     extent leases: %d hits / %d misses (%.0f%% hit), %d blocks ahead@]"
    t.window_hwm t.deferred t.deferred_errors t.batches t.batched_msgs
    (mean_batch t) pp_hist t t.lease_hits t.lease_misses
    (100.0 *. lease_hit_rate t)
    t.lease_blocks
