type t = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable blackholed : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable giveups : int;
  mutable dedup_hits : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable aborted : int;
  mutable tokens_recovered : int;
  mutable cache_flushes : int;
  mutable partial_broadcasts : int;
  mutable blocks_rebuilt : int;
  mutable flow_blocks : int;
  mutable shed_expired : int;
  mutable shed_load : int;
  mutable fast_fails : int;
  mutable budget_denied : int;
  mutable breaker_opens : int;
  mutable breaker_half_opens : int;
  mutable breaker_closes : int;
}

let create () =
  {
    drops = 0;
    dups = 0;
    delays = 0;
    blackholed = 0;
    timeouts = 0;
    retries = 0;
    giveups = 0;
    dedup_hits = 0;
    crashes = 0;
    restarts = 0;
    aborted = 0;
    tokens_recovered = 0;
    cache_flushes = 0;
    partial_broadcasts = 0;
    blocks_rebuilt = 0;
    flow_blocks = 0;
    shed_expired = 0;
    shed_load = 0;
    fast_fails = 0;
    budget_denied = 0;
    breaker_opens = 0;
    breaker_half_opens = 0;
    breaker_closes = 0;
  }

let merge ~into src =
  into.drops <- into.drops + src.drops;
  into.dups <- into.dups + src.dups;
  into.delays <- into.delays + src.delays;
  into.blackholed <- into.blackholed + src.blackholed;
  into.timeouts <- into.timeouts + src.timeouts;
  into.retries <- into.retries + src.retries;
  into.giveups <- into.giveups + src.giveups;
  into.dedup_hits <- into.dedup_hits + src.dedup_hits;
  into.crashes <- into.crashes + src.crashes;
  into.restarts <- into.restarts + src.restarts;
  into.aborted <- into.aborted + src.aborted;
  into.tokens_recovered <- into.tokens_recovered + src.tokens_recovered;
  into.cache_flushes <- into.cache_flushes + src.cache_flushes;
  into.partial_broadcasts <- into.partial_broadcasts + src.partial_broadcasts;
  into.blocks_rebuilt <- into.blocks_rebuilt + src.blocks_rebuilt;
  into.flow_blocks <- into.flow_blocks + src.flow_blocks;
  into.shed_expired <- into.shed_expired + src.shed_expired;
  into.shed_load <- into.shed_load + src.shed_load;
  into.fast_fails <- into.fast_fails + src.fast_fails;
  into.budget_denied <- into.budget_denied + src.budget_denied;
  into.breaker_opens <- into.breaker_opens + src.breaker_opens;
  into.breaker_half_opens <- into.breaker_half_opens + src.breaker_half_opens;
  into.breaker_closes <- into.breaker_closes + src.breaker_closes

let to_list t =
  [
    ("msgs dropped", t.drops);
    ("msgs duplicated", t.dups);
    ("msgs delayed", t.delays);
    ("msgs blackholed", t.blackholed);
    ("rpc timeouts", t.timeouts);
    ("rpc retries", t.retries);
    ("rpc giveups", t.giveups);
    ("dedup hits", t.dedup_hits);
    ("server crashes", t.crashes);
    ("server restarts", t.restarts);
    ("requests aborted", t.aborted);
    ("tokens recovered", t.tokens_recovered);
    ("dircache flushes", t.cache_flushes);
    ("partial broadcasts", t.partial_broadcasts);
    ("blocks rebuilt", t.blocks_rebuilt);
    ("sends credit-blocked", t.flow_blocks);
    ("shed expired", t.shed_expired);
    ("shed overload", t.shed_load);
    ("breaker fast-fails", t.fast_fails);
    ("retry budget denials", t.budget_denied);
    ("breaker opens", t.breaker_opens);
    ("breaker half-opens", t.breaker_half_opens);
    ("breaker closes", t.breaker_closes);
  ]

(* Per-driver-run hygiene: zero every counter so a timed region reports
   only its own activity (the [Perf.reset] pattern). *)
let reset t =
  t.drops <- 0;
  t.dups <- 0;
  t.delays <- 0;
  t.blackholed <- 0;
  t.timeouts <- 0;
  t.retries <- 0;
  t.giveups <- 0;
  t.dedup_hits <- 0;
  t.crashes <- 0;
  t.restarts <- 0;
  t.aborted <- 0;
  t.tokens_recovered <- 0;
  t.cache_flushes <- 0;
  t.partial_broadcasts <- 0;
  t.blocks_rebuilt <- 0;
  t.flow_blocks <- 0;
  t.shed_expired <- 0;
  t.shed_load <- 0;
  t.fast_fails <- 0;
  t.budget_denied <- 0;
  t.breaker_opens <- 0;
  t.breaker_half_opens <- 0;
  t.breaker_closes <- 0

let is_zero t = List.for_all (fun (_, n) -> n = 0) (to_list t)

let equal a b = to_list a = to_list b

let pp ppf t =
  let nonzero = List.filter (fun (_, n) -> n <> 0) (to_list t) in
  if nonzero = [] then Format.pp_print_string ppf "no faults"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf (k, n) -> Format.fprintf ppf "%s=%d" k n)
      ppf nonzero
