type t = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable blackholed : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable giveups : int;
  mutable dedup_hits : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable aborted : int;
  mutable tokens_recovered : int;
  mutable cache_flushes : int;
  mutable partial_broadcasts : int;
  mutable blocks_rebuilt : int;
}

let create () =
  {
    drops = 0;
    dups = 0;
    delays = 0;
    blackholed = 0;
    timeouts = 0;
    retries = 0;
    giveups = 0;
    dedup_hits = 0;
    crashes = 0;
    restarts = 0;
    aborted = 0;
    tokens_recovered = 0;
    cache_flushes = 0;
    partial_broadcasts = 0;
    blocks_rebuilt = 0;
  }

let merge ~into src =
  into.drops <- into.drops + src.drops;
  into.dups <- into.dups + src.dups;
  into.delays <- into.delays + src.delays;
  into.blackholed <- into.blackholed + src.blackholed;
  into.timeouts <- into.timeouts + src.timeouts;
  into.retries <- into.retries + src.retries;
  into.giveups <- into.giveups + src.giveups;
  into.dedup_hits <- into.dedup_hits + src.dedup_hits;
  into.crashes <- into.crashes + src.crashes;
  into.restarts <- into.restarts + src.restarts;
  into.aborted <- into.aborted + src.aborted;
  into.tokens_recovered <- into.tokens_recovered + src.tokens_recovered;
  into.cache_flushes <- into.cache_flushes + src.cache_flushes;
  into.partial_broadcasts <- into.partial_broadcasts + src.partial_broadcasts;
  into.blocks_rebuilt <- into.blocks_rebuilt + src.blocks_rebuilt

let to_list t =
  [
    ("msgs dropped", t.drops);
    ("msgs duplicated", t.dups);
    ("msgs delayed", t.delays);
    ("msgs blackholed", t.blackholed);
    ("rpc timeouts", t.timeouts);
    ("rpc retries", t.retries);
    ("rpc giveups", t.giveups);
    ("dedup hits", t.dedup_hits);
    ("server crashes", t.crashes);
    ("server restarts", t.restarts);
    ("requests aborted", t.aborted);
    ("tokens recovered", t.tokens_recovered);
    ("dircache flushes", t.cache_flushes);
    ("partial broadcasts", t.partial_broadcasts);
    ("blocks rebuilt", t.blocks_rebuilt);
  ]

let is_zero t = List.for_all (fun (_, n) -> n = 0) (to_list t)

let equal a b = to_list a = to_list b

let pp ppf t =
  let nonzero = List.filter (fun (_, n) -> n <> 0) (to_list t) in
  if nonzero = [] then Format.pp_print_string ppf "no faults"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf (k, n) -> Format.fprintf ppf "%s=%d" k n)
      ppf nonzero
