(** Pipelining / batching / extent-allocation counters (PR 2).

    One mutable record per client library and per file server; {!merge}
    folds them into a machine-wide aggregate. With the paper-faithful
    knobs (window 1, batch 1, extent 1) every counter except the batch
    bookkeeping stays at zero, so tests can assert the machinery is
    inert. *)

val hist_buckets : int
(** Number of batch-histogram buckets; sizes at or above
    [hist_buckets - 1] share the last bucket. *)

type t = {
  mutable window_hwm : int;
      (** peak number of in-flight deferred RPCs observed in a window *)
  mutable deferred : int;  (** RPCs issued with a deferred await *)
  mutable deferred_errors : int;
      (** deferred replies that came back as errors (reported here
          because the issuing syscall already returned) *)
  mutable batches : int;  (** server dispatch wakeups *)
  mutable batched_msgs : int;  (** requests across all batches *)
  batch_hist : int array;  (** [batch_hist.(n)] = batches of exactly [n] *)
  mutable lease_hits : int;
      (** block needs satisfied by a held extent lease, no RPC *)
  mutable lease_misses : int;  (** block needs that required an Alloc RPC *)
  mutable lease_blocks : int;  (** blocks allocated ahead of need *)
  mutable dedup_evicted : int;
      (** server dedup entries purged under the client's acked low-water
          mark (PR 10) — hygiene, not loss: an acked tag can never be
          retransmitted. Zero when requests carry no idempotency tags. *)
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter (including the histogram). Benchmarks call this
    between the warm-up and the timed region so each run reports only
    its own window/batch/lease activity. *)

val note_window : t -> int -> unit
(** [note_window t depth] raises the high-water mark to [depth]. *)

val note_batch : t -> int -> unit
(** [note_batch t size] records one server wakeup that drained [size]
    requests. *)

val merge : into:t -> t -> unit
(** Sums counters; the window high-water mark merges with [max]. *)

val mean_batch : t -> float

val lease_hit_rate : t -> float
(** Fraction of block needs served without an Alloc RPC; [0.] when no
    block was ever needed. *)

val to_list : t -> (string * int) list
(** Label/value pairs in display order (histogram excluded). *)

val is_zero : t -> bool

val pp_hist : Format.formatter -> t -> unit
(** Batch-size histogram as "size:count" pairs ("empty" when no batch
    has been recorded). *)

val pp : Format.formatter -> t -> unit
