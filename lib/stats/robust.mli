(** Robustness counters.

    One mutable record shared by the fault injector, servers and clients;
    {!merge} folds per-component instances into a machine-wide aggregate.
    All counters stay at zero when fault injection is disabled — a cheap
    way for tests to assert the machinery is inert. *)

type t = {
  mutable drops : int;  (** messages dropped by the injector *)
  mutable dups : int;  (** messages duplicated by the injector *)
  mutable delays : int;  (** messages delayed by the injector *)
  mutable blackholed : int;  (** messages discarded because server down *)
  mutable timeouts : int;  (** RPC deadline expirations observed *)
  mutable retries : int;  (** RPC resends after a timeout *)
  mutable giveups : int;  (** RPCs that exhausted their retry budget *)
  mutable dedup_hits : int;  (** duplicate requests absorbed by servers *)
  mutable crashes : int;  (** server crash events *)
  mutable restarts : int;  (** server restart events *)
  mutable aborted : int;  (** queued/parked requests errored by a crash *)
  mutable tokens_recovered : int;  (** fd tokens re-opened after a crash *)
  mutable cache_flushes : int;  (** dircache full flushes on reconnect *)
  mutable partial_broadcasts : int;  (** broadcasts that skipped a server *)
  mutable blocks_rebuilt : int;  (** free blocks recovered on restart *)
  (* overload control (PR 6); all zero when the knobs are off *)
  mutable flow_blocks : int;  (** sends that waited for a mailbox credit *)
  mutable shed_expired : int;  (** requests dropped as already expired *)
  mutable shed_load : int;  (** requests answered EBUSY above watermark *)
  mutable fast_fails : int;  (** RPCs fast-failed by an open breaker *)
  mutable budget_denied : int;  (** retries denied by an empty token bucket *)
  mutable breaker_opens : int;  (** closed/half-open -> open transitions *)
  mutable breaker_half_opens : int;  (** open -> half-open (probe admitted) *)
  mutable breaker_closes : int;  (** half-open -> closed (probe succeeded) *)
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter, so a timed region reports only its own activity
    (the [Perf.reset] pattern; called per driver run). *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every counter of [src] into [into]. *)

val to_list : t -> (string * int) list
(** Label/value pairs in display order. *)

val is_zero : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints the non-zero counters (or ["no faults"]). *)
