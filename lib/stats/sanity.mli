(** Coherence-sanitizer counters.

    Nine violation counters (one per sanitizer rule, see
    {!Hare_check.Check}) plus informational counters used to cross-check
    the checker's shadow state against the real caches. A run is clean iff
    {!total_violations} is zero; the informational counters may move
    freely. *)

type t = {
  mutable stale_reads : int;
  mutable lost_writes : int;
  mutable write_races : int;
  mutable missed_writebacks : int;
  mutable open_invals : int;
  mutable close_writebacks : int;
  mutable dircache_stale : int;
  mutable fd_leaks : int;
  mutable lease_leaks : int;
  mutable dirty_discarded : int;
  mutable hb_joins : int;
  mutable lines_tracked : int;
  mutable cache_hits : int;
  mutable cache_fills : int;
  mutable cache_evictions : int;
  mutable cache_writebacks : int;
  mutable cache_invalidated : int;
}

val create : unit -> t

val reset : t -> unit

val merge : into:t -> t -> unit

val violations : t -> (string * int) list
(** Per-rule violation counts in stable display order; informational
    counters excluded. *)

val total_violations : t -> int

val to_list : t -> (string * int) list
(** All counters (violations first), for table rendering and tests. *)

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
