(* Sanitizer counters: one mutable record per checker, merged machine-wide
   for reporting. The first block of fields are protocol violations (any
   nonzero value fails a `hare_cli check` run); the rest are informational
   observability counters that let tests cross-check the shadow state
   against the real caches. *)

type t = {
  (* happens-before race rules *)
  mutable stale_reads : int;
  mutable lost_writes : int;
  mutable write_races : int;
  mutable missed_writebacks : int;
  (* protocol lint rules *)
  mutable open_invals : int;
  mutable close_writebacks : int;
  mutable dircache_stale : int;
  mutable fd_leaks : int;
  mutable lease_leaks : int;
  (* informational (not violations) *)
  mutable dirty_discarded : int;
  mutable hb_joins : int;
  mutable lines_tracked : int;
  mutable cache_hits : int;
  mutable cache_fills : int;
  mutable cache_evictions : int;
  mutable cache_writebacks : int;
  mutable cache_invalidated : int;
}

let create () =
  {
    stale_reads = 0;
    lost_writes = 0;
    write_races = 0;
    missed_writebacks = 0;
    open_invals = 0;
    close_writebacks = 0;
    dircache_stale = 0;
    fd_leaks = 0;
    lease_leaks = 0;
    dirty_discarded = 0;
    hb_joins = 0;
    lines_tracked = 0;
    cache_hits = 0;
    cache_fills = 0;
    cache_evictions = 0;
    cache_writebacks = 0;
    cache_invalidated = 0;
  }

let reset t =
  t.stale_reads <- 0;
  t.lost_writes <- 0;
  t.write_races <- 0;
  t.missed_writebacks <- 0;
  t.open_invals <- 0;
  t.close_writebacks <- 0;
  t.dircache_stale <- 0;
  t.fd_leaks <- 0;
  t.lease_leaks <- 0;
  t.dirty_discarded <- 0;
  t.hb_joins <- 0;
  t.lines_tracked <- 0;
  t.cache_hits <- 0;
  t.cache_fills <- 0;
  t.cache_evictions <- 0;
  t.cache_writebacks <- 0;
  t.cache_invalidated <- 0

let merge ~into b =
  into.stale_reads <- into.stale_reads + b.stale_reads;
  into.lost_writes <- into.lost_writes + b.lost_writes;
  into.write_races <- into.write_races + b.write_races;
  into.missed_writebacks <- into.missed_writebacks + b.missed_writebacks;
  into.open_invals <- into.open_invals + b.open_invals;
  into.close_writebacks <- into.close_writebacks + b.close_writebacks;
  into.dircache_stale <- into.dircache_stale + b.dircache_stale;
  into.fd_leaks <- into.fd_leaks + b.fd_leaks;
  into.lease_leaks <- into.lease_leaks + b.lease_leaks;
  into.dirty_discarded <- into.dirty_discarded + b.dirty_discarded;
  into.hb_joins <- into.hb_joins + b.hb_joins;
  into.lines_tracked <- into.lines_tracked + b.lines_tracked;
  into.cache_hits <- into.cache_hits + b.cache_hits;
  into.cache_fills <- into.cache_fills + b.cache_fills;
  into.cache_evictions <- into.cache_evictions + b.cache_evictions;
  into.cache_writebacks <- into.cache_writebacks + b.cache_writebacks;
  into.cache_invalidated <- into.cache_invalidated + b.cache_invalidated

(* Violation counts only, in a stable rule order shared with the report
   table: informational counters are deliberately excluded so that
   "nonzero = broken protocol" holds. *)
let violations t =
  [
    ("stale-read", t.stale_reads);
    ("lost-write", t.lost_writes);
    ("write-race", t.write_races);
    ("missed-writeback", t.missed_writebacks);
    ("open-inval", t.open_invals);
    ("close-writeback", t.close_writebacks);
    ("dircache-stale", t.dircache_stale);
    ("fd-leak", t.fd_leaks);
    ("lease-leak", t.lease_leaks);
  ]

let total_violations t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (violations t)

let to_list t =
  violations t
  @ [
      ("dirty-discarded", t.dirty_discarded);
      ("hb-joins", t.hb_joins);
      ("lines-tracked", t.lines_tracked);
      ("cache-hits", t.cache_hits);
      ("cache-fills", t.cache_fills);
      ("cache-evictions", t.cache_evictions);
      ("cache-writebacks", t.cache_writebacks);
      ("cache-invalidated", t.cache_invalidated);
    ]

let is_zero t = List.for_all (fun (_, n) -> n = 0) (to_list t)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf ppf "%-18s %d@," k v) (to_list t);
  Fmt.pf ppf "@]"
