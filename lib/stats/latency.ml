(* Latency percentile summaries over span durations (PR 6).

   Pure arithmetic: callers (the driver, hare_cli) walk the trace ring
   themselves and hand in cycle durations; this module only sorts and
   picks nearest-rank percentiles, so it stays dependency-free. *)

type dist = {
  n : int;
  p50 : int64;
  p95 : int64;
  p99 : int64;
  lmax : int64;
}

let empty = { n = 0; p50 = 0L; p95 = 0L; p99 = 0L; lmax = 0L }

(* Nearest-rank percentile of a sorted array: the smallest value such
   that at least q% of samples are <= it. *)
let rank n q =
  let r = int_of_float (ceil (float_of_int n *. q /. 100.)) in
  max 0 (min (n - 1) (r - 1))

let of_durations ds =
  match ds with
  | [] -> empty
  | _ ->
      let a = Array.of_list ds in
      Array.sort Int64.compare a;
      let n = Array.length a in
      {
        n;
        p50 = a.(rank n 50.);
        p95 = a.(rank n 95.);
        p99 = a.(rank n 99.);
        lmax = a.(n - 1);
      }

(* Syscall op name (a client-side root span) -> overload priority class.
   The classes mirror the server-side shed classes: metadata RPCs are
   never shed, data moves bulk bytes, background is deferrable
   housekeeping. *)
let class_of_op = function
  | "read" | "write" | "lseek" | "fsync" | "ftruncate" -> Some "data"
  | "open" | "close" | "stat" | "fstat" | "mkdir" | "rmdir" | "readdir"
  | "rename" | "dup" | "dup2" | "pipe" | "fork" ->
      Some "meta"
  | "unlink" -> Some "background"
  | _ -> None

let class_names = [ "meta"; "data"; "background" ]
