(* Latency percentile summaries over span durations (PR 6).

   Pure arithmetic: callers (the driver, hare_cli) walk the trace ring
   themselves and hand in cycle durations; this module only sorts and
   picks nearest-rank percentiles, so it stays dependency-free. *)

type dist = {
  n : int;
  p50 : int64;
  p95 : int64;
  p99 : int64;
  lmax : int64;
}

let empty = { n = 0; p50 = 0L; p95 = 0L; p99 = 0L; lmax = 0L }

let is_empty d = d.n = 0

(* Nearest-rank index into a sorted array of [n] samples: the smallest
   value such that at least q% of samples are <= it, i.e. index
   ceil(n*q/100) - 1. Total for every n >= 1 and 0 < q <= 100 — the
   degenerate small-n cases (PR 9 satellite) are pinned down explicitly:
   n = 1 maps every q to the single sample, and n = 0 is a caller error
   rather than a silent zero that idle classes could not distinguish
   from a genuine zero-cycle latency. *)
let rank n q =
  if n <= 0 then invalid_arg "Latency.rank: no samples";
  if not (q > 0. && q <= 100.) then
    invalid_arg "Latency.rank: percentile must be in (0, 100]";
  let r = int_of_float (ceil (float_of_int n *. q /. 100.)) in
  max 0 (min (n - 1) (r - 1))

let percentile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Latency.percentile: no samples";
  a.(rank n q)

let of_durations ds =
  match ds with
  | [] -> empty
  | _ ->
      let a = Array.of_list ds in
      Array.sort Int64.compare a;
      let n = Array.length a in
      {
        n;
        p50 = percentile a 50.;
        p95 = percentile a 95.;
        p99 = percentile a 99.;
        lmax = a.(n - 1);
      }

(* Syscall op name (a client-side root span) -> overload priority class.
   The classes mirror the server-side shed classes: metadata RPCs are
   never shed, data moves bulk bytes, background is deferrable
   housekeeping. *)
let class_of_op = function
  | "read" | "write" | "lseek" | "fsync" | "ftruncate" -> Some "data"
  | "open" | "close" | "stat" | "fstat" | "mkdir" | "rmdir" | "readdir"
  | "rename" | "dup" | "dup2" | "pipe" | "fork" ->
      Some "meta"
  | "unlink" -> Some "background" | _ -> None

let class_names = [ "meta"; "data"; "background" ]
