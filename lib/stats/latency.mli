(** Latency percentile summaries over span durations (PR 6).

    Callers walk the trace ring and hand in per-request cycle durations;
    {!of_durations} summarizes them with nearest-rank percentiles.
    {!class_of_op} maps a client syscall span name to its overload
    priority class (metadata / data / background), matching the
    server-side shed classes. *)

type dist = {
  n : int;  (** sample count *)
  p50 : int64;
  p95 : int64;
  p99 : int64;
  lmax : int64;  (** worst sample *)
}

val empty : dist

val of_durations : int64 list -> dist
(** Nearest-rank percentiles of the given cycle durations ({!empty} for
    the empty list). *)

val class_of_op : string -> string option
(** Priority class of a client syscall span name, or [None] for spans
    that are not client syscalls. *)

val class_names : string list
(** Display order: meta, data, background. *)
