(** Latency percentile summaries over span durations (PR 6).

    Callers walk the trace ring and hand in per-request cycle durations;
    {!of_durations} summarizes them with nearest-rank percentiles.
    {!class_of_op} maps a client syscall span name to its overload
    priority class (metadata / data / background), matching the
    server-side shed classes. *)

type dist = {
  n : int;  (** sample count *)
  p50 : int64;
  p95 : int64;
  p99 : int64;
  lmax : int64;  (** worst sample *)
}

val empty : dist
(** The zero-sample distribution. Its percentile fields are 0 only as
    placeholders — an idle class has {e no} latency, not zero latency —
    so consumers must branch on {!is_empty} (or [n = 0]) before printing
    or comparing them. *)

val is_empty : dist -> bool
(** [true] iff the distribution summarizes no samples (run start, idle
    classes). *)

val of_durations : int64 list -> dist
(** Nearest-rank percentiles of the given cycle durations ({!empty} for
    the empty list). One sample maps every percentile (and [lmax]) to
    that sample; two samples map p50 to the smaller and p95/p99 to the
    larger, per the nearest-rank definition. *)

val percentile : int64 array -> float -> int64
(** [percentile a q] is the nearest-rank q-th percentile of the {e
    sorted} array [a]: the smallest element such that at least q% of
    samples are <= it. Raises [Invalid_argument] on an empty array or
    [q] outside (0, 100] — never a silent 0. *)

val class_of_op : string -> string option
(** Priority class of a client syscall span name, or [None] for spans
    that are not client syscalls. *)

val class_names : string list
(** Display order: meta, data, background. *)
