(* Binary min-heap over (time, seq) int keys, stored as three parallel
   flat arrays. Native-int keys keep every comparison and swap unboxed
   (no per-entry record, no Int64 boxes held live), which matters because
   the engine pushes and pops one entry per simulated event: at 512 cores
   the heap is the single hottest data structure in the process. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Vacated tail slots keep their stale value until overwritten by a later
   push. The retention is bounded by the heap's high-water mark, and the
   engine's values are small scheduled-callback closures, so no quadratic
   or unbounded growth can hide here. *)

let grow h time seq value =
  let capacity = Array.length h.times in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 64 else capacity * 2 in
    let times' = Array.make capacity' time in
    let seqs' = Array.make capacity' seq in
    let values' = Array.make capacity' value in
    Array.blit h.times 0 times' 0 h.size;
    Array.blit h.seqs 0 seqs' 0 h.size;
    Array.blit h.values 0 values' 0 h.size;
    h.times <- times';
    h.seqs <- seqs';
    h.values <- values'
  end

let[@inline] lt h i j =
  let ti = Array.unsafe_get h.times i and tj = Array.unsafe_get h.times j in
  ti < tj || (ti = tj && Array.unsafe_get h.seqs i < Array.unsafe_get h.seqs j)

let[@inline] swap h i j =
  let t = h.times.(i) in
  h.times.(i) <- h.times.(j);
  h.times.(j) <- t;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.values.(i) in
  h.values.(i) <- h.values.(j);
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && lt h left !smallest then smallest := left;
  if right < h.size && lt h right !smallest then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time ~seq value =
  if time < 0 then invalid_arg "Heap.push: negative time";
  grow h time seq value;
  let i = h.size in
  h.times.(i) <- time;
  h.seqs.(i) <- seq;
  h.values.(i) <- value;
  h.size <- h.size + 1;
  sift_up h i

let min_time h =
  if h.size = 0 then raise Not_found;
  h.times.(0)

let peek_min h =
  if h.size = 0 then raise Not_found;
  (h.times.(0), h.seqs.(0), h.values.(0))

let pop_min h =
  if h.size = 0 then raise Not_found;
  let time = h.times.(0) and seq = h.seqs.(0) and v = h.values.(0) in
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    h.times.(0) <- h.times.(last);
    h.seqs.(0) <- h.seqs.(last);
    h.values.(0) <- h.values.(last);
    sift_down h 0
  end;
  (time, seq, v)
