(* Binary min-heap over (time, seq) int keys, stored as three parallel
   flat arrays. Native-int keys keep every comparison and swap unboxed
   (no per-entry record, no Int64 boxes held live), which matters because
   the engine pushes and pops one entry per simulated event: at 512 cores
   the heap is the single hottest data structure in the process. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable tags : int array;
      (* opaque per-entry label (the engine's action tag); rides along
         through swaps but never participates in ordering *)
  mutable values : 'a array;
  mutable size : int;
}

let create () =
  { times = [||]; seqs = [||]; tags = [||]; values = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Vacated tail slots keep their stale value until overwritten by a later
   push. The retention is bounded by the heap's high-water mark, and the
   engine's values are small scheduled-callback closures, so no quadratic
   or unbounded growth can hide here. *)

let grow h time seq value =
  let capacity = Array.length h.times in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 64 else capacity * 2 in
    let times' = Array.make capacity' time in
    let seqs' = Array.make capacity' seq in
    let tags' = Array.make capacity' 0 in
    let values' = Array.make capacity' value in
    Array.blit h.times 0 times' 0 h.size;
    Array.blit h.seqs 0 seqs' 0 h.size;
    Array.blit h.tags 0 tags' 0 h.size;
    Array.blit h.values 0 values' 0 h.size;
    h.times <- times';
    h.seqs <- seqs';
    h.tags <- tags';
    h.values <- values'
  end

let[@inline] lt h i j =
  let ti = Array.unsafe_get h.times i and tj = Array.unsafe_get h.times j in
  ti < tj || (ti = tj && Array.unsafe_get h.seqs i < Array.unsafe_get h.seqs j)

let[@inline] swap h i j =
  let t = h.times.(i) in
  h.times.(i) <- h.times.(j);
  h.times.(j) <- t;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let g = h.tags.(i) in
  h.tags.(i) <- h.tags.(j);
  h.tags.(j) <- g;
  let v = h.values.(i) in
  h.values.(i) <- h.values.(j);
  h.values.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && lt h left !smallest then smallest := left;
  if right < h.size && lt h right !smallest then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ?(tag = 0) ~time ~seq value =
  if time < 0 then invalid_arg "Heap.push: negative time";
  grow h time seq value;
  let i = h.size in
  h.times.(i) <- time;
  h.seqs.(i) <- seq;
  h.tags.(i) <- tag;
  h.values.(i) <- value;
  h.size <- h.size + 1;
  sift_up h i

let min_time h =
  if h.size = 0 then raise Not_found;
  h.times.(0)

let peek_min h =
  if h.size = 0 then raise Not_found;
  (h.times.(0), h.seqs.(0), h.values.(0))

let pop_min h =
  if h.size = 0 then raise Not_found;
  let time = h.times.(0) and seq = h.seqs.(0) and v = h.values.(0) in
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    h.times.(0) <- h.times.(last);
    h.seqs.(0) <- h.seqs.(last);
    h.tags.(0) <- h.tags.(last);
    h.values.(0) <- h.values.(last);
    sift_down h 0
  end;
  (time, seq, v)

(* --- schedule-exploration support (cold paths) -------------------------
   The model checker needs to see every event due at the minimum time and
   to remove an arbitrary one of them. Both are linear scans: they only
   run when an explorer is attached, on deliberately small configurations,
   and never on the default pop_min path. *)

let min_entries h =
  if h.size = 0 then [||]
  else begin
    let tmin = h.times.(0) in
    let n = ref 0 in
    for i = 0 to h.size - 1 do
      if Array.unsafe_get h.times i = tmin then incr n
    done;
    let out = Array.make !n (0, 0) in
    let j = ref 0 in
    for i = 0 to h.size - 1 do
      if Array.unsafe_get h.times i = tmin then begin
        out.(!j) <- (h.seqs.(i), h.tags.(i));
        incr j
      end
    done;
    Array.sort (fun (a, _) (b, _) -> compare (a : int) b) out;
    out
  end

let remove_seq h seq =
  let idx = ref (-1) in
  for i = 0 to h.size - 1 do
    if Array.unsafe_get h.seqs i = seq then idx := i
  done;
  if !idx < 0 then raise Not_found;
  let i = !idx in
  let time = h.times.(i) and tag = h.tags.(i) and v = h.values.(i) in
  let last = h.size - 1 in
  h.size <- last;
  if i < last then begin
    h.times.(i) <- h.times.(last);
    h.seqs.(i) <- h.seqs.(last);
    h.tags.(i) <- h.tags.(last);
    h.values.(i) <- h.values.(last);
    (* The migrated tail entry may violate the heap property in either
       direction relative to its new neighbourhood. *)
    sift_down h i;
    sift_up h i
  end;
  (time, tag, v)
