(** Single-assignment synchronization variable.

    The unit of request/response synchronization: an RPC reply slot. Any
    number of fibers may block in {!read}; they all resume once {!fill} is
    called. *)

type 'a t

val create : unit -> 'a t

(** [fill t v] sets the value and wakes all readers.
    Raises [Invalid_argument] if already filled. *)
val fill : 'a t -> 'a -> unit

(** [read t] returns the value, blocking the calling fiber until filled. *)
val read : 'a t -> 'a

(** [read_deadline t ~engine ~cycles] blocks like {!read} but for at most
    [cycles] simulated cycles; returns [None] on timeout. The ivar may
    still be filled later — a stale fill simply lands in the ivar and any
    remaining readers wake normally. Raises [Invalid_argument] if [cycles]
    is negative. *)
val read_deadline : 'a t -> engine:Engine.t -> cycles:int64 -> 'a option

(** [peek t] returns the value if filled, without blocking. *)
val peek : 'a t -> 'a option

val is_filled : 'a t -> bool

(** {1 Sanitizer happens-before stamp}

    When the coherence sanitizer is on, the filler stashes a vector-clock
    stamp here just before {!fill}, and every reader joins it into its
    core's clock after {!read} returns — making the reply a
    happens-before edge. Unused ([None]) when checking is off. *)

val set_stamp : 'a t -> Hare_check.Check.stamp -> unit

val stamp : 'a t -> Hare_check.Check.stamp option
