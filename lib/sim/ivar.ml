type 'a t = {
  mutable value : 'a option;
  mutable waiters : Engine.waker list;
  mutable stamp : Hare_check.Check.stamp option;
      (* sanitizer happens-before stamp, set by the filler just before
         [fill] and joined by readers; None when checking is off *)
}

let create () = { value = None; waiters = []; stamp = None }

let set_stamp t s = t.stamp <- Some s

let stamp t = t.stamp

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      let waiters = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun wake -> wake ()) waiters

let read t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      (* After resumption the value is necessarily present. *)
      (match t.value with
      | Some v -> v
      | None -> assert false)

let read_deadline t ~engine ~cycles =
  if cycles < 0L then invalid_arg "Ivar.read_deadline: negative deadline";
  match t.value with
  | Some _ -> t.value
  | None ->
      Engine.suspend (fun waker ->
          (* Both the fill path and the timer may try to wake; whichever
             fires first wins and the loser becomes a no-op, so the
             underlying waker is invoked exactly once. *)
          let fired = ref false in
          let wake_once () =
            if not !fired then begin
              fired := true;
              waker ()
            end
          in
          t.waiters <- wake_once :: t.waiters;
          Engine.schedule_at engine
            (Int64.add (Engine.now engine) cycles)
            wake_once);
      t.value

let peek t = t.value

let is_filled t = t.value <> None
