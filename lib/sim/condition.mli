(** Condition variable for simulated fibers.

    Unlike a pthread condition variable there is no associated mutex: the
    simulation is cooperatively scheduled, so state inspected before
    {!wait} cannot change until the fiber suspends. Users must nonetheless
    re-check their predicate after waking (wakeups are broadcast or
    one-at-a-time but the state may have been consumed by another fiber
    that ran first). *)

type t

val create : unit -> t

(** [wait t] blocks the calling fiber until signalled. *)
val wait : t -> unit

(** [wait_deadline t ~engine ~cycles] blocks like {!wait} but for at most
    [cycles] simulated cycles. Returns [`Signalled] if woken by
    {!signal}/{!broadcast}, [`Timeout] otherwise; a timed-out waiter is
    removed from the queue so it cannot absorb a later signal. Raises
    [Invalid_argument] if [cycles] is negative. *)
val wait_deadline :
  t -> engine:Engine.t -> cycles:int64 -> [ `Signalled | `Timeout ]

(** [signal t] wakes one waiting fiber (FIFO); no-op if none wait. *)
val signal : t -> unit

(** [broadcast t] wakes all waiting fibers. *)
val broadcast : t -> unit

val waiters : t -> int
