(* Cycle counters are native ints: mutable [int64] record fields box on
   every store and every [Int64] op allocates, which made [compute] — the
   hottest call in the simulator — allocate several words per charge.
   Simulated runs stay far below 2^62 cycles, so int is safe. *)
type t = {
  engine : Engine.t;
  id : int;
  socket : int;
  ctx_switch : int;
  mutable free_at : int;
  mutable last_fid : int;
  mutable busy_cycles : int;
  mutable switches : int;
}

let create engine ~id ~socket ~ctx_switch =
  if ctx_switch < 0 then invalid_arg "Core_res.create: negative ctx_switch";
  {
    engine;
    id;
    socket;
    ctx_switch;
    free_at = 0;
    last_fid = -1;
    busy_cycles = 0;
    switches = 0;
  }

let id t = t.id

let engine t = t.engine

let socket t = t.socket

let free_at t = Int64.of_int t.free_at

let busy_cycles t = Int64.of_int t.busy_cycles

let switches t = t.switches

let compute t cycles =
  if cycles < 0 then invalid_arg "Core_res.compute: negative cycles";
  (* O(1) engine field read; [Engine.self ()] would pay an effect-handler
     round trip on every charge. *)
  let fid = Engine.current_fid t.engine in
  let now = Int64.to_int (Engine.now t.engine) in
  let start = if t.free_at > now then t.free_at else now in
  let switching = t.last_fid <> fid && t.last_fid <> -1 in
  let cost = if switching then cycles + t.ctx_switch else cycles in
  if switching then t.switches <- t.switches + 1;
  let finish = start + cost in
  t.free_at <- finish;
  t.last_fid <- fid;
  t.busy_cycles <- t.busy_cycles + cost;
  (match Engine.sink t.engine with
  | None -> ()
  | Some tr ->
      let module Trace = Hare_trace.Trace in
      Trace.on_compute tr ~fid ~elapsed:(finish - now) ~cost
        ~switch:(if switching then t.ctx_switch else 0);
      if switching then
        Trace.instant tr ~name:"ctx-switch" ~track:t.id
          ~ts:(Int64.of_int start) ();
      (* Busy square wave: the core occupies [start, finish). *)
      Trace.counter tr ~name:"cpu" ~track:t.id ~ts:(Int64.of_int start)
        ~value:1;
      Trace.counter tr ~name:"cpu" ~track:t.id ~ts:(Int64.of_int finish)
        ~value:0);
  Engine.sleep_cycles (finish - now)
