type t = {
  engine : Engine.t;
  id : int;
  socket : int;
  ctx_switch : int64;
  mutable free_at : int64;
  mutable last_fid : int;
  mutable busy_cycles : int64;
  mutable switches : int;
}

let create engine ~id ~socket ~ctx_switch =
  if ctx_switch < 0 then invalid_arg "Core_res.create: negative ctx_switch";
  {
    engine;
    id;
    socket;
    ctx_switch = Int64.of_int ctx_switch;
    free_at = 0L;
    last_fid = -1;
    busy_cycles = 0L;
    switches = 0;
  }

let id t = t.id

let engine t = t.engine

let socket t = t.socket

let free_at t = t.free_at

let busy_cycles t = t.busy_cycles

let switches t = t.switches

let compute t cycles =
  if cycles < 0 then invalid_arg "Core_res.compute: negative cycles";
  let fiber = Engine.self () in
  let fid = Engine.fiber_id fiber in
  let now = Engine.now t.engine in
  let start = if t.free_at > now then t.free_at else now in
  let switching = t.last_fid <> fid && t.last_fid <> -1 in
  let cost = Int64.of_int cycles in
  let cost = if switching then Int64.add cost t.ctx_switch else cost in
  if switching then t.switches <- t.switches + 1;
  let finish = Int64.add start cost in
  t.free_at <- finish;
  t.last_fid <- fid;
  t.busy_cycles <- Int64.add t.busy_cycles cost;
  (match Engine.sink t.engine with
  | None -> ()
  | Some tr ->
      let module Trace = Hare_trace.Trace in
      Trace.on_compute tr ~fid ~elapsed:(Int64.sub finish now) ~cost
        ~switch:(if switching then t.ctx_switch else 0L);
      if switching then Trace.instant tr ~name:"ctx-switch" ~track:t.id ~ts:start ();
      (* Busy square wave: the core occupies [start, finish). *)
      Trace.counter tr ~name:"cpu" ~track:t.id ~ts:start ~value:1;
      Trace.counter tr ~name:"cpu" ~track:t.id ~ts:finish ~value:0);
  Engine.sleep (Int64.sub finish now)
