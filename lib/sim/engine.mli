(** Deterministic discrete-event simulation engine.

    Simulated entities (applications, file servers, scheduling servers) run
    as {e fibers}: OCaml functions executed under an effect handler that
    interprets simulation effects — advancing simulated time, suspending on
    a condition, spawning further fibers. Time is a global 64-bit cycle
    counter; events scheduled for the same instant run in insertion order,
    so a given seed always produces the same execution.

    Fibers must only perform simulation effects while running under
    {!run}. *)

type t
(** A simulation instance. *)

type fiber
(** Handle on a spawned fiber. *)

exception Deadlock of string
(** Raised by {!run} when no events remain but blocked fibers exist; the
    payload lists the blocked fibers' names. *)

exception Fiber_failure of string * exn
(** Raised by {!run} when a fiber terminates with an uncaught exception;
    carries the fiber name and the original exception. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] makes a fresh simulation; [seed] (default [1L])
    initializes the root RNG. *)

val now : t -> int64
(** Current simulated time in cycles. *)

val rng : t -> Rng.t
(** The engine's root RNG (split it rather than sharing it widely). *)

val spawn : t -> ?daemon:bool -> name:string -> (unit -> unit) -> fiber
(** [spawn t ~name f] creates a fiber that starts at the current simulated
    time. May be called from inside or outside a running simulation.
    [daemon] fibers (servers polling their mailboxes forever) do not count
    as live work: the simulation ends, without a deadlock report, when
    only daemons remain blocked. *)

val run : t -> unit
(** Execute events until none remain. Raises {!Deadlock} if blocked fibers
    remain, or {!Fiber_failure} if any fiber raised. *)

val run_for : t -> int64 -> unit
(** [run_for t budget] executes events until none remain or simulated time
    would exceed [now t + budget]; remaining events stay queued. *)

val fiber_name : fiber -> string
val fiber_id : fiber -> int

val live_fibers : t -> int
(** Number of non-daemon fibers that have started but not finished. *)

val registered_fibers : t -> int
(** Number of fibers (daemons included) currently in the registry —
    spawned but not yet finished. Finished fibers are pruned, so this
    stays bounded on long open-loop runs. *)

val peak_fibers : t -> int
(** High-water mark of {!registered_fibers} over the run. *)

val spawned_fibers : t -> int
(** Total fibers ever spawned (a monotone counter). *)

val events_executed : t -> int
(** Total events the engine has executed; divided by wall-clock time this
    is the engine's host-side throughput (the bench's
    [sim_events_per_sec]). *)

val current_fid : t -> int
(** Id of the fiber currently executing, or [-1] between events. O(1)
    field read — the allocation-free replacement for
    [fiber_id (self ())] on hot instrumentation paths. *)

(** {1 Effects — callable only from inside a fiber} *)

val self : unit -> fiber
(** The currently-running fiber. *)

val sleep : int64 -> unit
(** Advance this fiber's view of time by the given number of cycles without
    occupying any core (pure waiting). *)

val sleep_cycles : int -> unit
(** [sleep] with a native-int duration. Semantically identical; the
    immediate-int effect payload makes it allocation-free, so hot paths
    ([Core_res.compute]) prefer it. *)

val schedule_at : t -> ?tag:int -> int64 -> (unit -> unit) -> unit
(** [schedule_at t ?tag time f] runs the callback [f] at absolute simulated
    [time] (which must be [>= now t]). [f] runs outside any fiber and must
    not perform simulation effects; it may wake fibers via wakers. [tag]
    (default {!tag_opaque}) labels the event for the schedule explorer —
    callers scheduling a mailbox delivery pass {!tag_deliver} so the
    explorer knows the event's footprint family. *)

type waker = unit -> unit
(** Calling a waker reschedules its suspended fiber at the simulated time
    of the call. A waker must be invoked at most once. *)

val suspend : (waker -> unit) -> unit
(** [suspend register] parks the current fiber and calls [register waker].
    The fiber resumes when (and only when) [waker] is invoked — typically
    stored in a queue by a synchronization primitive. *)

val trace : t -> bool
val set_trace : t -> bool -> unit
(** When tracing is on, fiber lifecycle events are logged via [Logs]. *)

val sink : t -> Hare_trace.Trace.t option
(** The span-trace sink, if one was attached. Instrumentation sites
    across the stack test this: [None] (the default) means tracing is
    off and they do nothing. *)

val set_sink : t -> Hare_trace.Trace.t -> unit
(** Attach a span-trace sink. Recording into the sink never perturbs the
    simulated clock ({!Hare_trace.Trace}). *)

val checker : t -> Hare_check.Check.t option
(** The coherence sanitizer, if one was attached. Mirrors the trace
    sink: hook sites across the stack test this, and [None] (the
    default) means checking is off and they do nothing. *)

val set_checker : t -> Hare_check.Check.t -> unit
(** Attach the coherence sanitizer. Checking never perturbs the
    simulated clock ({!Hare_check.Check}). *)

val set_sampler : t -> interval:int -> (int64 -> unit) -> unit
(** Attach a time-series sampler: the event loop calls [f stamp] from
    {e outside} any fiber whenever the simulated clock first reaches or
    crosses a multiple of [interval] cycles (one call per event-loop
    step, stamped at the latest grid point due — quiet gaps, during
    which no state can change, produce no samples). The callback must be
    pure host-side bookkeeping: it runs between events and must not
    schedule work, charge cycles, or draw from an RNG, so sampled and
    unsampled runs of the same seed stay bit-identical. [interval] must
    be positive. *)

(** {1 Schedule exploration}

    A pluggable strategy over the engine's only source of schedule
    freedom: the order among events due at the {e same} simulated cycle.
    The deterministic engine always runs them in insertion (seq) order;
    a real non-cache-coherent machine guarantees no such order. An
    attached explorer is offered every such tie and picks which event
    lands first — index 0 reproduces the deterministic order
    bit-identically. Everything here is host-side bookkeeping: an
    explorer that always answers 0 leaves clocks and opcounts
    untouched. *)

type explorer = {
  ex_choose : time:int -> (int * int) array -> int;
      (** [ex_choose ~time cands] picks an index into [cands], the
          [(seq, tag)] pairs of every event due at cycle [time], sorted
          by ascending seq. Called only when two or more are due. *)
  ex_step : time:int -> seq:int -> tag:int -> unit;
      (** Fired for every executed event just before it runs, choice
          point or not — the explorer's step log. *)
  ex_access : int -> unit;
      (** A shared object (mailbox or DRAM line) was touched while the
          current event ran; the int is the encoded footprint object
          ({!note_mailbox} / {!note_line}). *)
}

val set_explorer : t -> explorer -> unit
val clear_explorer : t -> unit

val exploring : t -> bool
(** Whether an explorer is attached. *)

val tag_opaque : int
(** Action tag for events whose effects the footprint hooks cannot see
    (timers, fault-injector callbacks). The explorer must treat them as
    conflicting with everything. *)

val tag_resume : int -> int
(** [tag_resume fid]: the event resumes (or starts) fiber [fid]. *)

val tag_deliver : int -> int
(** [tag_deliver uid]: the event delivers into mailbox object [uid]
    (from {!new_object}). *)

type tag_kind = Opaque | Resume of int | Deliver of int

val tag_kind : int -> tag_kind
(** Decode an action tag. *)

val new_object : t -> int
(** Allocate a shared-object uid (used by mailboxes at creation).
    Host-side counter only. *)

val note_mailbox : t -> int -> unit
(** [note_mailbox t uid] records, when an explorer is attached, that the
    currently executing event touched mailbox [uid] (enqueue or
    dequeue). No-op otherwise, and for negative uids. *)

val note_line : t -> int -> unit
(** [note_line t key] records, when an explorer is attached, that the
    currently executing event touched DRAM line [key] (cache fill,
    write-back, or invalidate). No-op otherwise. *)

(** {1 Deadlock diagnostics} *)

val register_probe : t -> name:string -> (unit -> int) -> int
(** [register_probe t ~name depth] registers a named pending-depth probe
    (typically a mailbox's queue length). When {!run} raises {!Deadlock},
    the report appends every probe with a non-zero depth, so a lost-reply
    hang shows at a glance where messages piled up. Returns a probe id
    for {!unregister_probe}; slots are recycled. *)

val unregister_probe : t -> int -> unit
(** Remove a probe registered by {!register_probe} (idempotent). Called
    on file-server crash/teardown so {!pending_depths} never scans dead
    mailboxes. *)

val probe_count : t -> int
(** Number of currently registered probes. *)

val pending_depths : t -> string list
(** Formatted ["name=depth"] strings for all probes with non-zero depth. *)
