(** Blocking FIFO queue between fibers.

    Unbounded by default; with [capacity], {!push} blocks while full.
    This is a zero-cost synchronization primitive — message-passing costs
    are charged by the layers above ({!Hare_msg}). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

(** [push t v] appends [v]; blocks while the queue is at capacity. *)
val push : 'a t -> 'a -> unit

(** [push_nonblocking t v] appends [v]; returns [false] if full. *)
val push_nonblocking : 'a t -> 'a -> bool

(** [push_overflow t v] appends [v] even past capacity, never blocking —
    for deliveries whose admission credit was granted at send time but
    which materialize later (fault-injector delays) inside scheduler
    callbacks that must not suspend. *)
val push_overflow : 'a t -> 'a -> unit

(** [is_full t] is [false] for unbounded queues. *)
val is_full : 'a t -> bool

(** [wait_not_full t] blocks the calling fiber until the queue has a
    free slot (returns immediately for unbounded queues). Pairs with
    {!push_overflow}: secure admission now, enqueue later. *)
val wait_not_full : 'a t -> unit

(** [pop t] removes and returns the oldest element, blocking while empty. *)
val pop : 'a t -> 'a

(** [pop_nonblocking t] removes the oldest element if any. *)
val pop_nonblocking : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool
