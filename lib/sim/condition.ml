(* Waiters live in a FIFO queue of cancellable cells: [signal] is O(1)
   amortized (pop, skip tombstones) instead of the former double
   list-reversal per signal, and a timed-out waiter marks its cell dead
   rather than filtering the whole queue. Wake order is unchanged:
   oldest live waiter first. *)

type entry = { mutable dead : bool; wake : unit -> unit }

type t = { q : entry Queue.t; mutable live : int }

let create () = { q = Queue.create (); live = 0 }

let enqueue t wake =
  Queue.push { dead = false; wake } t.q;
  t.live <- t.live + 1

let wait t = Engine.suspend (fun waker -> enqueue t waker)

let rec signal t =
  match Queue.take_opt t.q with
  | None -> ()
  | Some e ->
      if e.dead then signal t
      else begin
        e.dead <- true;
        t.live <- t.live - 1;
        e.wake ()
      end

let wait_deadline t ~engine ~cycles =
  if cycles < 0L then invalid_arg "Condition.wait_deadline: negative deadline";
  let outcome = ref `Timeout in
  Engine.suspend (fun waker ->
      let entry =
        {
          dead = false;
          wake =
            (fun () ->
              outcome := `Signalled;
              waker ());
        }
      in
      Queue.push entry t.q;
      t.live <- t.live + 1;
      Engine.schedule_at engine
        (Int64.add (Engine.now engine) cycles)
        (fun () ->
          if not entry.dead then begin
            (* Tombstone ourselves so a later signal is not consumed by a
               waiter that already gave up; the cell stays queued and is
               skipped when it surfaces. *)
            entry.dead <- true;
            t.live <- t.live - 1;
            waker ()
          end));
  !outcome

let broadcast t =
  let rec drain () =
    match Queue.take_opt t.q with
    | None -> ()
    | Some e ->
        if not e.dead then begin
          e.dead <- true;
          t.live <- t.live - 1;
          e.wake ()
        end;
        drain ()
  in
  drain ()

let waiters t = t.live
