type t = { mutable queue : Engine.waker list (* reversed: newest first *) }

let create () = { queue = [] }

let wait t = Engine.suspend (fun waker -> t.queue <- waker :: t.queue)

let signal t =
  match List.rev t.queue with
  | [] -> ()
  | oldest :: rest ->
      t.queue <- List.rev rest;
      oldest ()

let wait_deadline t ~engine ~cycles =
  if cycles < 0L then invalid_arg "Condition.wait_deadline: negative deadline";
  let outcome = ref `Timeout in
  Engine.suspend (fun waker ->
      let fired = ref false in
      let entry () =
        if not !fired then begin
          fired := true;
          outcome := `Signalled;
          waker ()
        end
      in
      t.queue <- entry :: t.queue;
      Engine.schedule_at engine
        (Int64.add (Engine.now engine) cycles)
        (fun () ->
          if not !fired then begin
            fired := true;
            (* Remove ourselves so a later signal is not consumed by a
               waiter that already gave up. *)
            t.queue <- List.filter (fun w -> w != entry) t.queue;
            waker ()
          end));
  !outcome

let broadcast t =
  let waiters = List.rev t.queue in
  t.queue <- [];
  List.iter (fun wake -> wake ()) waiters

let waiters t = List.length t.queue
