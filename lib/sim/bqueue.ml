type 'a t = {
  items : 'a Queue.t;
  capacity : int option;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Bqueue.create: capacity must be positive"
  | _ -> ());
  {
    items = Queue.create ();
    capacity;
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let length t = Queue.length t.items

let is_empty t = Queue.is_empty t.items

let is_full t =
  match t.capacity with
  | None -> false
  | Some c -> Queue.length t.items >= c

let rec push t v =
  if is_full t then begin
    Condition.wait t.not_full;
    push t v
  end
  else begin
    Queue.push v t.items;
    Condition.signal t.not_empty
  end

(* Admission was granted elsewhere (a delayed delivery whose sender
   already waited for its credit): append even past capacity. Must never
   block — it runs inside scheduler callbacks. *)
let push_overflow t v =
  Queue.push v t.items;
  Condition.signal t.not_empty

(* Park until a slot is free, without enqueueing — senders that must
   secure admission now but materialize the message later. *)
let rec wait_not_full t =
  if is_full t then begin
    Condition.wait t.not_full;
    wait_not_full t
  end

let push_nonblocking t v =
  if is_full t then false
  else begin
    Queue.push v t.items;
    Condition.signal t.not_empty;
    true
  end

let rec pop t =
  match Queue.take_opt t.items with
  | Some v ->
      Condition.signal t.not_full;
      v
  | None ->
      Condition.wait t.not_empty;
      pop t

let pop_nonblocking t =
  match Queue.take_opt t.items with
  | Some v ->
      Condition.signal t.not_full;
      Some v
  | None -> None
