(** A processor core as a serially-occupied resource.

    Every cycle a simulated entity spends computing is charged against a
    core through {!compute}. A core executes one fiber's work at a time;
    concurrent requests queue in FIFO order, which is how timesharing
    contention (e.g. a file server sharing a core with an application)
    emerges in the model. A context-switch penalty is charged whenever the
    computing fiber differs from the previous one, reproducing the
    scheduling + TLB/L1-pollution cost the paper measures in §5.3.3. *)

type t

val create : Engine.t -> id:int -> socket:int -> ctx_switch:int -> t

val id : t -> int

val engine : t -> Engine.t
(** The simulation engine this core is bound to. *)

val socket : t -> int
(** NUMA socket this core belongs to. *)

(** [compute t cycles] occupies the core for [cycles] (plus a context
    switch penalty if the calling fiber is not the core's previous
    occupant) and returns when the work completes. Must be called from
    within a fiber. *)
val compute : t -> int -> unit

(** [free_at t] is the simulated time at which all queued work completes. *)
val free_at : t -> int64

(** Total cycles of work executed on this core (including switch costs). *)
val busy_cycles : t -> int64

(** Number of context switches charged so far. *)
val switches : t -> int
