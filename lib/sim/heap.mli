(** Binary min-heap keyed by [(time, seq)] native-int pairs.

    The key is a (time, sequence) pair: the heap orders events primarily by
    simulated time and breaks ties by insertion sequence, which gives the
    discrete-event engine a deterministic FIFO order for simultaneous
    events.

    Keys are native ints (63-bit on 64-bit platforms), not int64: simulated
    cycle counts stay far below 2^62, and unboxed keys in flat parallel
    arrays keep the per-event push/pop — the engine's hottest path — free
    of allocation. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v] with key [(time, seq)].
    Raises [Invalid_argument] if [time] is negative. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum element together with its
    key. Raises [Not_found] when the heap is empty. *)
val pop_min : 'a t -> int * int * 'a

(** [peek_min h] returns the minimum element without removing it.
    Raises [Not_found] when the heap is empty. *)
val peek_min : 'a t -> int * int * 'a

(** [min_time h] returns the minimum key's time without any allocation.
    Raises [Not_found] when the heap is empty. *)
val min_time : 'a t -> int
