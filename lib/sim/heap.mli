(** Binary min-heap keyed by [(time, seq)] native-int pairs.

    The key is a (time, sequence) pair: the heap orders events primarily by
    simulated time and breaks ties by insertion sequence, which gives the
    discrete-event engine a deterministic FIFO order for simultaneous
    events.

    Keys are native ints (63-bit on 64-bit platforms), not int64: simulated
    cycle counts stay far below 2^62, and unboxed keys in flat parallel
    arrays keep the per-event push/pop — the engine's hottest path — free
    of allocation. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ?tag ~time ~seq v] inserts [v] with key [(time, seq)].
    [tag] (default 0) is an opaque label carried alongside the entry —
    the engine stores its action tag there for the schedule explorer;
    it never affects ordering. Raises [Invalid_argument] if [time] is
    negative. *)
val push : 'a t -> ?tag:int -> time:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum element together with its
    key. Raises [Not_found] when the heap is empty. *)
val pop_min : 'a t -> int * int * 'a

(** [peek_min h] returns the minimum element without removing it.
    Raises [Not_found] when the heap is empty. *)
val peek_min : 'a t -> int * int * 'a

(** [min_time h] returns the minimum key's time without any allocation.
    Raises [Not_found] when the heap is empty. *)
val min_time : 'a t -> int

(** {1 Schedule-exploration support}

    Cold-path scans used only when a schedule explorer drives the
    engine; the default event loop never calls them. *)

(** [min_entries h] returns every entry due at the minimum time as
    [(seq, tag)] pairs, sorted by ascending [seq] (index 0 is the entry
    {!pop_min} would return). Empty array on an empty heap. *)
val min_entries : 'a t -> (int * int) array

(** [remove_seq h seq] removes the entry with insertion sequence [seq]
    and returns [(time, tag, value)]. Raises [Not_found] if absent. *)
val remove_seq : 'a t -> int -> int * int * 'a
