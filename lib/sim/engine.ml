let src = Logs.Src.create "hare.sim" ~doc:"Hare discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type fiber = {
  fid : int;
  name : string;
  daemon : bool;
  mutable state : [ `Created | `Runnable | `Blocked | `Done ];
}

type t = {
  mutable time : int64;
  events : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable live : int;
  mutable next_fid : int;
  root_rng : Rng.t;
  mutable tracing : bool;
  mutable fibers : fiber list; (* for deadlock reporting *)
  mutable probes : (string * (unit -> int)) list;
      (* named pending-depth probes (mailboxes), for deadlock reporting *)
  mutable sink : Hare_trace.Trace.t option;
      (* trace sink; presence doubles as the "tracing enabled" flag *)
  mutable checker : Hare_check.Check.t option;
      (* coherence sanitizer; presence doubles as the "check enabled" flag *)
}

exception Deadlock of string

exception Fiber_failure of string * exn

type waker = unit -> unit

type _ Effect.t +=
  | Self : fiber Effect.t
  | Sleep : int64 -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

let create ?(seed = 1L) () =
  {
    time = 0L;
    events = Heap.create ();
    seq = 0;
    live = 0;
    next_fid = 0;
    root_rng = Rng.create ~seed;
    tracing = false;
    fibers = [];
    probes = [];
    sink = None;
    checker = None;
  }

let now t = t.time

let rng t = t.root_rng

let trace t = t.tracing

let set_trace t b = t.tracing <- b

let sink t = t.sink

let checker t = t.checker

let set_checker t c = t.checker <- Some c

let set_sink t tr = t.sink <- Some tr

let fiber_name f = f.name

let fiber_id f = f.fid

let live_fibers t = t.live

let schedule_at t time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %Ld is in the past (now %Ld)"
         time t.time);
  t.seq <- t.seq + 1;
  Heap.push t.events ~time ~seq:t.seq f

let spawn t ?(daemon = false) ~name body =
  let fiber = { fid = t.next_fid; name; daemon; state = `Created } in
  t.next_fid <- t.next_fid + 1;
  if not daemon then t.live <- t.live + 1;
  t.fibers <- fiber :: t.fibers;
  let start () =
    fiber.state <- `Runnable;
    if t.tracing then Log.debug (fun m -> m "fiber %s[%d] starts" name fiber.fid);
    let open Effect.Deep in
    match_with body ()
      {
        retc =
          (fun () ->
            fiber.state <- `Done;
            if not daemon then t.live <- t.live - 1;
            if t.tracing then
              Log.debug (fun m -> m "fiber %s[%d] done" name fiber.fid));
        exnc =
          (fun exn ->
            fiber.state <- `Done;
            if not daemon then t.live <- t.live - 1;
            raise (Fiber_failure (name, exn)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Self ->
                Some
                  (fun (k : (a, unit) continuation) -> continue k fiber)
            | Sleep d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    if d < 0L then
                      discontinue k (Invalid_argument "Engine.sleep: negative")
                    else
                      schedule_at t (Int64.add t.time d) (fun () ->
                          continue k ()))
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.state <- `Blocked;
                    let fired = ref false in
                    let waker () =
                      if !fired then
                        failwith
                          (Printf.sprintf "waker for fiber %s invoked twice"
                             fiber.name)
                      else begin
                        fired := true;
                        fiber.state <- `Runnable;
                        schedule_at t t.time (fun () -> continue k ())
                      end
                    in
                    register waker)
            | _ -> None);
      }
  in
  schedule_at t t.time start;
  fiber

let register_probe t ~name depth = t.probes <- (name, depth) :: t.probes

let pending_depths t =
  List.rev t.probes
  |> List.filter_map (fun (name, depth) ->
         match depth () with
         | 0 -> None
         | d -> Some (Printf.sprintf "%s=%d" name d)
         | exception _ -> None)

let blocked_names t =
  t.fibers
  |> List.filter (fun f -> f.state = `Blocked && not f.daemon)
  |> List.map (fun f -> Printf.sprintf "%s[%d]" f.name f.fid)
  |> String.concat ", "

let step t =
  let time, _seq, f = Heap.pop_min t.events in
  t.time <- time;
  f ()

let check_deadlock t =
  if t.live > 0 then begin
    let depths =
      match pending_depths t with
      | [] -> "no undelivered mailbox messages"
      | ds -> "undelivered mailbox messages: " ^ String.concat ", " ds
    in
    let spans =
      match t.sink with
      | None -> ""
      | Some tr -> (
          match Hare_trace.Trace.recent_spans tr ~per_track:4 with
          | [] -> ""
          | lines -> "; recent spans: " ^ String.concat "; " lines)
    in
    raise
      (Deadlock
         (Printf.sprintf "%d fiber(s) blocked with no pending events: %s (%s)%s"
            t.live (blocked_names t) depths spans))
  end

let run t =
  while not (Heap.is_empty t.events) do
    step t
  done;
  check_deadlock t

let run_for t budget =
  let limit = Int64.add t.time budget in
  let continue_ = ref true in
  while !continue_ && not (Heap.is_empty t.events) do
    let time, _, _ = Heap.peek_min t.events in
    if time > limit then continue_ := false else step t
  done;
  if Heap.is_empty t.events then check_deadlock t

(* Effects-performing helpers; callable only from inside a fiber. *)

let self () = Effect.perform Self

let sleep d = Effect.perform (Sleep d)

let suspend register = Effect.perform (Suspend register)
