let src = Logs.Src.create "hare.sim" ~doc:"Hare discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type fiber = {
  fid : int;
  name : string;
  daemon : bool;
  mutable state : [ `Created | `Runnable | `Blocked | `Done ];
}

(* A registered pending-depth probe. Slots are recycled through a free
   list so crash/teardown can deregister a mailbox without leaving the
   registry to scan dead entries forever. *)
type probe = { p_name : string; p_depth : unit -> int }

type t = {
  mutable time : int64;
  events : (unit -> unit) Heap.t;
  mutable seq : int;
  mutable live : int;
  mutable next_fid : int;
  root_rng : Rng.t;
  mutable tracing : bool;
  fibers : (int, fiber) Hashtbl.t;
      (* fibers that have not finished, for deadlock reporting; `Done
         fibers are pruned so long open-loop runs do not leak *)
  mutable peak_fibers : int;
  mutable spawned : int;
  mutable steps : int; (* events executed, for host-throughput metrics *)
  mutable cur : fiber option; (* fiber currently executing, if any *)
  mutable probes : probe option array; (* compact slots; None = free *)
  mutable nprobes : int; (* upper bound of used slots *)
  mutable probe_free : int list; (* recycled slot indices *)
  mutable sink : Hare_trace.Trace.t option;
      (* trace sink; presence doubles as the "tracing enabled" flag *)
  mutable checker : Hare_check.Check.t option;
      (* coherence sanitizer; presence doubles as the "check enabled" flag *)
  (* Time-series sampler (PR 9): a host-side hook the event loop fires
     when the simulated clock crosses a sampling-grid boundary. Like the
     sink and the checker it never schedules events, charges cycles, or
     draws from an RNG — sampled and unsampled runs are bit-identical. *)
  mutable sampler : (int64 -> unit) option;
  mutable sample_every : int; (* grid interval in cycles; 0 = off *)
  mutable sample_next : int; (* next due grid stamp *)
  (* Schedule explorer (PR 10): when attached, every tie between events
     due at the same simulated cycle is routed through [ex_choose]
     instead of the deterministic lowest-seq pop. Like the sink, checker
     and sampler, an absent explorer leaves the hot path untouched. *)
  mutable explore : explorer option;
  mutable next_obj : int; (* shared-object uid allocator (mailboxes) *)
}

and explorer = {
  ex_choose : time:int -> (int * int) array -> int;
      (* pick an index into the [(seq, tag)] candidates (sorted by seq;
         index 0 = the default deterministic order) *)
  ex_step : time:int -> seq:int -> tag:int -> unit;
      (* fired for every executed event, just before it runs *)
  ex_access : int -> unit;
      (* a shared object was touched while the current event ran *)
}

exception Deadlock of string

exception Fiber_failure of string * exn

type waker = unit -> unit

type _ Effect.t +=
  | Self : fiber Effect.t
  | Sleep : int64 -> unit Effect.t
  | Sleep_cycles : int -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

let create ?(seed = 1L) () =
  {
    time = 0L;
    events = Heap.create ();
    seq = 0;
    live = 0;
    next_fid = 0;
    root_rng = Rng.create ~seed;
    tracing = false;
    fibers = Hashtbl.create 256;
    peak_fibers = 0;
    spawned = 0;
    steps = 0;
    cur = None;
    probes = [||];
    nprobes = 0;
    probe_free = [];
    sink = None;
    checker = None;
    sampler = None;
    sample_every = 0;
    sample_next = max_int;
    explore = None;
    next_obj = 0;
  }

let now t = t.time

let rng t = t.root_rng

let trace t = t.tracing

let set_trace t b = t.tracing <- b

let sink t = t.sink

let checker t = t.checker

let set_checker t c = t.checker <- Some c

let set_sink t tr = t.sink <- Some tr

let set_sampler t ~interval f =
  if interval <= 0 then invalid_arg "Engine.set_sampler: interval must be positive";
  t.sampler <- Some f;
  t.sample_every <- interval;
  (* First sample one full interval after attachment (boot state at time
     zero is all-idle and uninteresting). *)
  t.sample_next <- Int64.to_int t.time + interval

(* --- schedule exploration (PR 10) ------------------------------------- *)

(* Action tags ride heap entries so the explorer can tell what kind of
   event each same-cycle candidate is. Packed into one non-negative int:
   0 is an opaque event (timer, injector callback — anything whose
   effects the footprint hooks cannot see), odd tags resume a fiber,
   even tags >= 2 deliver into a mailbox. *)
let tag_opaque = 0

let tag_resume fid = (2 * fid) + 1

let tag_deliver obj = (2 * obj) + 2

type tag_kind = Opaque | Resume of int | Deliver of int

let tag_kind tag =
  if tag <= 0 then Opaque
  else if tag land 1 = 1 then Resume (tag lsr 1)
  else Deliver ((tag - 2) / 2)

let set_explorer t ex = t.explore <- Some ex

let clear_explorer t = t.explore <- None

let exploring t = t.explore <> None

let new_object t =
  let o = t.next_obj in
  t.next_obj <- o + 1;
  o

(* Footprint objects live in one int space: mailbox uids map to odd
   ints, DRAM line keys to even ints, so the two families never
   collide. Pure host-side bookkeeping — no cycles, no RNG. *)
let note_mailbox t uid =
  match t.explore with
  | Some ex when uid >= 0 -> ex.ex_access ((uid lsl 1) lor 1)
  | _ -> ()

let note_line t key =
  match t.explore with Some ex -> ex.ex_access (key lsl 1) | None -> ()

let fiber_name f = f.name

let fiber_id f = f.fid

let live_fibers t = t.live

let registered_fibers t = Hashtbl.length t.fibers

let peak_fibers t = t.peak_fibers

let spawned_fibers t = t.spawned

let events_executed t = t.steps

(* The id of the fiber currently executing, or -1 between events. Exactly
   one fiber runs at a time (run-to-completion between effects), so a
   single mutable field — maintained at every resume point — replaces the
   [Self] effect on hot paths like [Core_res.compute]. *)
let current_fid t = match t.cur with Some f -> f.fid | None -> -1

let schedule_at t ?(tag = 0) time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %Ld is in the past (now %Ld)"
         time t.time);
  t.seq <- t.seq + 1;
  Heap.push t.events ~tag ~time:(Int64.to_int time) ~seq:t.seq f

let spawn t ?(daemon = false) ~name body =
  let fiber = { fid = t.next_fid; name; daemon; state = `Created } in
  t.next_fid <- t.next_fid + 1;
  t.spawned <- t.spawned + 1;
  if not daemon then t.live <- t.live + 1;
  Hashtbl.replace t.fibers fiber.fid fiber;
  let n = Hashtbl.length t.fibers in
  if n > t.peak_fibers then t.peak_fibers <- n;
  let finish () =
    fiber.state <- `Done;
    Hashtbl.remove t.fibers fiber.fid;
    if not daemon then t.live <- t.live - 1
  in
  let start () =
    fiber.state <- `Runnable;
    t.cur <- Some fiber;
    if t.tracing then Log.debug (fun m -> m "fiber %s[%d] starts" name fiber.fid);
    let open Effect.Deep in
    match_with body ()
      {
        retc =
          (fun () ->
            finish ();
            if t.tracing then
              Log.debug (fun m -> m "fiber %s[%d] done" name fiber.fid));
        exnc =
          (fun exn ->
            finish ();
            raise (Fiber_failure (name, exn)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Self ->
                Some
                  (fun (k : (a, unit) continuation) -> continue k fiber)
            | Sleep d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    if d < 0L then
                      discontinue k (Invalid_argument "Engine.sleep: negative")
                    else
                      schedule_at t ~tag:(tag_resume fiber.fid)
                        (Int64.add t.time d) (fun () ->
                          t.cur <- Some fiber;
                          continue k ()))
            | Sleep_cycles d ->
                (* Unboxed twin of [Sleep]: an immediate-int payload and
                   native-int time arithmetic, so the per-compute sleep on
                   the hot path allocates nothing. *)
                Some
                  (fun (k : (a, unit) continuation) ->
                    if d < 0 then
                      discontinue k (Invalid_argument "Engine.sleep: negative")
                    else begin
                      t.seq <- t.seq + 1;
                      Heap.push t.events
                        ~tag:(tag_resume fiber.fid)
                        ~time:(Int64.to_int t.time + d)
                        ~seq:t.seq
                        (fun () ->
                          t.cur <- Some fiber;
                          continue k ())
                    end)
            | Suspend register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fiber.state <- `Blocked;
                    let fired = ref false in
                    let waker () =
                      if !fired then
                        failwith
                          (Printf.sprintf "waker for fiber %s invoked twice"
                             fiber.name)
                      else begin
                        fired := true;
                        fiber.state <- `Runnable;
                        schedule_at t ~tag:(tag_resume fiber.fid) t.time
                          (fun () ->
                            t.cur <- Some fiber;
                            continue k ())
                      end
                    in
                    register waker)
            | _ -> None);
      }
  in
  schedule_at t ~tag:(tag_resume fiber.fid) t.time start;
  fiber

let register_probe t ~name depth =
  let probe = Some { p_name = name; p_depth = depth } in
  match t.probe_free with
  | slot :: rest ->
      t.probe_free <- rest;
      t.probes.(slot) <- probe;
      slot
  | [] ->
      let slot = t.nprobes in
      let capacity = Array.length t.probes in
      if slot = capacity then begin
        let capacity' = if capacity = 0 then 16 else capacity * 2 in
        let probes' = Array.make capacity' None in
        Array.blit t.probes 0 probes' 0 capacity;
        t.probes <- probes'
      end;
      t.probes.(slot) <- probe;
      t.nprobes <- slot + 1;
      slot

let unregister_probe t id =
  if id >= 0 && id < t.nprobes && t.probes.(id) <> None then begin
    t.probes.(id) <- None;
    t.probe_free <- id :: t.probe_free
  end

let probe_count t =
  let n = ref 0 in
  for i = 0 to t.nprobes - 1 do
    if t.probes.(i) <> None then incr n
  done;
  !n

let pending_depths t =
  let out = ref [] in
  for i = t.nprobes - 1 downto 0 do
    match t.probes.(i) with
    | None -> ()
    | Some p -> (
        match p.p_depth () with
        | 0 -> ()
        | d -> out := Printf.sprintf "%s=%d" p.p_name d :: !out
        | exception _ -> ())
  done;
  !out

let blocked_names t =
  Hashtbl.fold
    (fun _ f acc ->
      if f.state = `Blocked && not f.daemon then f :: acc else acc)
    t.fibers []
  |> List.sort (fun a b -> compare a.fid b.fid)
  |> List.map (fun f -> Printf.sprintf "%s[%d]" f.name f.fid)
  |> String.concat ", "

let exec_event t time f =
  t.time <- Int64.of_int time;
  t.steps <- t.steps + 1;
  (* Plain callbacks (timers) run outside any fiber; fiber starts and
     resumes re-set [cur] themselves before continuing. *)
  t.cur <- None;
  (* Fire the time-series sampler before the event's effects land, so a
     sample at grid stamp g reflects the state after every event strictly
     before g. One sample per step, stamped at the latest due grid point:
     a long quiet gap (no events) yields no intermediate samples — the
     gauges could not have changed while nothing ran. Host-side only;
     the heap, clock, and RNGs are untouched. *)
  (match t.sampler with
  | Some sample when time >= t.sample_next ->
      let k = (time - t.sample_next) / t.sample_every in
      let stamp = t.sample_next + (k * t.sample_every) in
      t.sample_next <- stamp + t.sample_every;
      sample (Int64.of_int stamp)
  | _ -> ());
  f ()

let step t =
  match t.explore with
  | None ->
      let time, _seq, f = Heap.pop_min t.events in
      exec_event t time f
  | Some ex ->
      (* Choice point: every event due at the minimum cycle is a
         candidate; the strategy picks which one the "hardware" lands
         first. With a single candidate there is no choice, and index 0
         (the lowest seq) reproduces the deterministic order exactly. *)
      let cands = Heap.min_entries t.events in
      let idx =
        if Array.length cands > 1 then
          ex.ex_choose ~time:(Heap.min_time t.events) cands
        else 0
      in
      let seq, tag = cands.(idx) in
      let time, _tag, f = Heap.remove_seq t.events seq in
      ex.ex_step ~time ~seq ~tag;
      exec_event t time f

let check_deadlock t =
  if t.live > 0 then begin
    let depths =
      match pending_depths t with
      | [] -> "no undelivered mailbox messages"
      | ds -> "undelivered mailbox messages: " ^ String.concat ", " ds
    in
    let spans =
      match t.sink with
      | None -> ""
      | Some tr -> (
          match Hare_trace.Trace.recent_spans tr ~per_track:4 with
          | [] -> ""
          | lines -> "; recent spans: " ^ String.concat "; " lines)
    in
    raise
      (Deadlock
         (Printf.sprintf "%d fiber(s) blocked with no pending events: %s (%s)%s"
            t.live (blocked_names t) depths spans))
  end

let run t =
  while not (Heap.is_empty t.events) do
    step t
  done;
  (* The last event may have run (and completed) inside a fiber; nothing
     is executing once the loop exits. *)
  t.cur <- None;
  check_deadlock t

let run_for t budget =
  let limit = Int64.to_int (Int64.add t.time budget) in
  let continue_ = ref true in
  while !continue_ && not (Heap.is_empty t.events) do
    if Heap.min_time t.events > limit then continue_ := false else step t
  done;
  t.cur <- None;
  if Heap.is_empty t.events then check_deadlock t

(* Effects-performing helpers; callable only from inside a fiber. *)

let self () = Effect.perform Self

let sleep d = Effect.perform (Sleep d)

let sleep_cycles d = Effect.perform (Sleep_cycles d)

let suspend register = Effect.perform (Suspend register)
