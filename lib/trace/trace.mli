(** End-to-end span tracing and cycle attribution (PR 4).

    A sink collects three kinds of events on the {e simulated} clock:
    spans (an operation with a begin and an end — a client syscall, a
    server request execution), instants (a point occurrence — a context
    switch, a dropped message, a crash) and counters (a sampled value —
    mailbox depth, DRAM traffic). Events live in a bounded ring buffer:
    when it fills, the oldest event is overwritten and {!dropped} is
    incremented, so a sink never grows without bound.

    The invariant the whole design serves: recording is pure host-side
    bookkeeping. A sink never charges a core, never sleeps, never draws
    from an RNG — a traced run and an untraced run of the same seed are
    bit-identical on the simulated clock (asserted by [test_trace]).

    {2 Attribution}

    Each traced operation carries a per-fiber {e context} holding six
    cycle buckets (compute / send / queue-wait / dispatch / cache /
    DRAM). Charge sites decompose their next [Core_res.compute] with
    {!set_pending}; the compute hook ({!on_compute}) folds the elapsed
    core time into the context — the gap between request and start is
    queue-wait, the context-switch penalty is dispatch, the remaining
    cost lands in the pending decomposition (default: compute). Time a
    client spends blocked on an RPC reply is attributed from the
    server-side context recorded for that request's span id
    ({!on_blocked}), capped at the observed wait; anything the buckets
    do not explain is queue-wait, so a closed context's bucket sum
    equals its elapsed cycles {e exactly} — no unattributed remainder. *)

type t

(** Where a cycle went. *)
type bucket =
  | Compute  (** syscall traps, server op handlers, process work *)
  | Send  (** message marshalling + transfer, replies, receive copies *)
  | Queue  (** core backlog, mailbox wait, blocked-on-reply remainder *)
  | Dispatch  (** server dispatch preamble + context switches *)
  | Cache  (** private-cache line touches *)
  | Dram  (** DRAM line transfers (incl. cross-socket) *)

val nbuckets : int

val bucket_index : bucket -> int

val bucket_name : bucket -> string

val bucket_names : string list
(** Display order, matching {!bucket_index}. *)

type event =
  | Span of {
      id : int;
      parent : int;  (** 0 = root *)
      name : string;
      cat : string;
      track : int;
      t0 : int64;
      t1 : int64;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      track : int;
      ts : int64;
      args : (string * string) list;
    }
  | Counter of { name : string; track : int; ts : int64; value : int }

val create : ?ring:bool -> ?retain:int -> cap:int -> unit -> t
(** [create ~cap ()] makes a sink whose ring holds at most [cap] events.
    [cap] must be non-negative; [cap = 0] is an empty span ring and
    behaves exactly like [~ring:false]. With [~ring:false] the sink is
    profile-only:
    attribution (contexts, buckets, the per-opcode profile) runs as
    usual, but {!instant}, {!counter} and span emission become no-ops
    and {!events} is always empty — about half the host-side overhead,
    for consumers (benchmarks) that never export the event stream.
    [retain] (default 0 = off) turns on tail-based retention: the
    complete record of the slowest [retain] root spans {e per latency
    class} is kept — bucket vector, admission server, queue depth at
    admission, per-server blocked-wait grants — regardless of ring
    overwrite; see {!retained}. *)

val declare_track : t -> track:int -> name:string -> unit
(** Name a track (one per simulated core, plus auxiliary tracks); the
    exporter emits the names as Perfetto thread metadata. *)

val tracks : t -> (int * string) list
(** Declared tracks, in declaration order. *)

val next_span : t -> int
(** Allocate a fresh span id (rides RPC envelopes so server-side work
    can be tied back to the request). Ids are positive; 0 means "no
    span". *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val ring_enabled : t -> bool
(** Whether this sink retains events (false = profile-only). Charge
    sites use it to skip building export-only decoration — span args,
    pretty-printed ids — that a profile-only sink would discard. *)

val events : t -> event list
(** Ring contents, oldest first. *)

val instant :
  t -> name:string -> track:int -> ts:int64 ->
  ?args:(string * string) list -> unit -> unit

val counter : t -> name:string -> track:int -> ts:int64 -> value:int -> unit

(** {1 Attribution contexts} *)

val ctx_active : t -> fid:int -> bool
(** Whether fiber [fid] has an open context (used to avoid nesting when
    one traced syscall calls another, e.g. process-exit close). *)

val ctx_open :
  t ->
  fid:int ->
  op:string ->
  track:int ->
  parent:int ->
  now:int64 ->
  args:(string * string) list ->
  int
(** Open a context for fiber [fid]; returns the fresh span id. If the
    fiber already has an open context this is a no-op returning 0. *)

val set_pending : t -> fid:int -> (bucket * int) list -> unit
(** Decompose fiber [fid]'s {e next} compute charge into buckets; cycles
    of that charge not covered by the list default to {!Compute}. A
    no-op when the fiber has no open context. *)

val on_compute :
  t -> fid:int -> elapsed:int -> cost:int -> switch:int -> unit
(** Called by the core model before it sleeps: [elapsed] cycles passed
    for the fiber, of which [cost] (including [switch] context-switch
    penalty) was charged work and the rest was waiting for the core.
    Folds everything into the open context (gap as {!Queue}, [switch] as
    {!Dispatch}, the rest per {!set_pending}). *)

val on_wait : t -> fid:int -> cycles:int -> unit
(** Pure waiting (retry backoff sleeps) inside an operation: {!Queue}. *)

val on_blocked : t -> fid:int -> span:int -> elapsed:int -> unit
(** The fiber was blocked [elapsed] cycles awaiting the reply to request
    [span]. If a server context was recorded for [span], its buckets are
    granted — capped at [elapsed] — in priority order (dispatch, compute,
    cache, DRAM, send, queue); the remainder is {!Queue}. *)

(** {1 Tail-based retention (PR 9)} *)

val retain_enabled : t -> bool
(** Whether this sink retains slow span trees ([retain > 0]). *)

val retain_k : t -> int
(** The per-class retention bound given at {!create}. *)

val note_send : t -> fid:int -> srv:int -> depth:int -> unit
(** Client hook at RPC send time: annotate fiber [fid]'s open context
    with the physical server targeted and its mailbox depth. The first
    send of a context freezes the {e admission} pair ([rt_srv],
    [rt_qdepth]); every send updates the attribution target for the next
    {!on_blocked} grant. A no-op without an open context. *)

(** A retained span tree: one slow root syscall with its complete
    attribution. [rt_buckets] (indexed by {!bucket_index}) sums to
    [rt_dur] exactly, so its descending sort is the critical path
    through the request. [rt_children] lists the blocked-wait grants
    [(server, cycles)] in send order; [rt_srv]/[rt_qdepth] are -1 when
    the operation never sent an RPC. *)
type retained = {
  rt_op : string;
  rt_cls : string;  (** latency class ({!Hare_stats.Latency.class_of_op}) *)
  rt_t0 : int;
  rt_dur : int;
  rt_buckets : int array;
  rt_srv : int;
  rt_qdepth : int;
  rt_children : (int * int) list;
}

val retained : t -> retained list
(** The retained (slowest-k per class) span trees since the last
    {!reset_profile}, slowest first. Empty when retention is off. *)

val ctx_close_syscall : t -> fid:int -> now:int64 -> unit
(** Close fiber [fid]'s context as a root (client-syscall) span: any
    elapsed cycles the buckets do not cover are added to {!Queue} (so
    the bucket sum equals elapsed exactly), the per-opcode profile is
    updated, and the span is emitted. *)

val ctx_close_server : t -> fid:int -> now:int64 -> unit
(** Close fiber [fid]'s context as a server-side span: the bucket
    breakdown is recorded under the {e parent} (request) span id for a
    later {!on_blocked}, and the span is emitted. *)

(** {1 Consumers} *)

type row = {
  r_op : string;
  r_count : int;
  r_total : int64;  (** total simulated cycles across all calls *)
  r_buckets : int64 array;  (** indexed by {!bucket_index}; sums to [r_total] *)
}

val profile : t -> row list
(** Per-opcode attribution table, sorted by descending total cycles. *)

val reset_profile : t -> unit
(** Forget accumulated profile rows and the root-span log (driver:
    exclude benchmark setup). *)

val root_spans : t -> (string * int64 * int64) list
(** [(op, t0, duration)] for every completed root (client syscall) span
    since the last {!reset_profile}, in completion order. Recorded even
    in profile-only mode and never dropped by ring overwrite — latency
    percentiles should come from here, not from {!events}. *)

val to_chrome_json : t -> string
(** The ring as Chrome trace-event JSON (Perfetto-loadable): one
    complete-event per span, instants and counters on their tracks,
    thread-name metadata per declared track, events sorted by timestamp,
    one event per line. Deterministic for a deterministic run. *)

val recent_spans : t -> per_track:int -> string list
(** The last [per_track] closed spans of each declared track, formatted
    for deadlock reports (newest last). *)
