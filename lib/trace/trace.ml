(* Span tracing + cycle attribution. Pure host-side bookkeeping: nothing
   here touches the simulated clock, cores, or RNGs — see trace.mli for
   the zero-perturbation invariant. *)

type bucket = Compute | Send | Queue | Dispatch | Cache | Dram

let nbuckets = 6

let bucket_index = function
  | Compute -> 0
  | Send -> 1
  | Queue -> 2
  | Dispatch -> 3
  | Cache -> 4
  | Dram -> 5

let bucket_name = function
  | Compute -> "compute"
  | Send -> "send"
  | Queue -> "queue"
  | Dispatch -> "dispatch"
  | Cache -> "cache"
  | Dram -> "dram"

let bucket_names = [ "compute"; "send"; "queue"; "dispatch"; "cache"; "dram" ]

type event =
  | Span of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      track : int;
      t0 : int64;
      t1 : int64;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      track : int;
      ts : int64;
      args : (string * string) list;
    }
  | Counter of { name : string; track : int; ts : int64; value : int }

(* An open attribution context for one fiber. Cycle counts are native
   ints (cycle totals stay far below 2^62): an [int64 array] stores
   boxed values, so charging a bucket on every compute allocated — ints
   in a flat array do not. All fields are mutable because contexts are
   recycled in place: a fiber opens and closes one per syscall, and the
   closed record (plus its buckets array) stays parked in the fid slot
   for the next open instead of becoming garbage. *)
type ctx = {
  mutable c_open : bool;
  mutable c_op : string;
  mutable c_track : int;
  mutable c_span : int;
  mutable c_parent : int;
  mutable c_t0 : int;
  mutable c_args : (string * string) list;
  mutable c_buckets : int array;
  (* Decomposition of the fiber's next compute charge; cleared by
     [on_compute]. *)
  mutable c_pending : (bucket * int) list;
  (* Tail forensics (PR 9): admission annotations recorded by the client
     at RPC send time, -1 = never sent. [c_srv]/[c_qdepth] freeze at the
     first send (the admission decision); [c_last_srv] tracks the most
     recent send so blocked-wait grants can be attributed to a server. *)
  mutable c_srv : int;
  mutable c_qdepth : int;
  mutable c_last_srv : int;
  mutable c_children : (int * int) list;
      (* (server, cycles granted from its breakdown), newest first *)
}

(* Per-opcode profile accumulator. *)
type agg = {
  mutable a_count : int;
  mutable a_total : int;
  a_buckets : int array;
}

(* A retained span tree (PR 9): the complete record of one slow root
   syscall, kept only while it remains among the slowest [retain] ops of
   its class (Dapper-style tail-based retention). The six-bucket vector
   sums to [rt_dur] exactly (ctx_close charges the remainder to Queue),
   so sorting it yields the critical path through the request. *)
type retained = {
  rt_op : string;
  rt_cls : string;
  rt_t0 : int;
  rt_dur : int;
  rt_buckets : int array;
  rt_srv : int;  (* physical server of the first RPC; -1 = none sent *)
  rt_qdepth : int;  (* that server's queue depth at admission; -1 *)
  rt_children : (int * int) list;
      (* per-RPC server grants (server, cycles), oldest first *)
}

(* Keep-k-slowest store for one class: a flat array with a tracked
   minimum. [cap] is small (tens), so the O(cap) min rescan on evict is
   cheaper than heap bookkeeping on the hot close path. *)
type rstore = {
  rs_cap : int;
  mutable rs_items : retained array;
  mutable rs_len : int;
  mutable rs_min : int;  (* index of the smallest rt_dur when full *)
}

(* Event kind tags for the flattened ring. *)
let k_span = '\000'

let k_instant = '\001'

let k_counter = '\002'

type t = {
  cap : int;
  (* When false the trace is profile-only: attribution contexts and the
     per-opcode aggregate run as usual but no events are written to the
     ring (and the ring arrays are empty). *)
  ring : bool;
  (* The ring is a struct-of-arrays, not an [event array]: keeping tens
     of thousands of live event records (each with boxed int64 stamps)
     made every minor collection promote the ring's whole working set —
     the dominant cost of traced runs. Flat int/string arrays retain
     nothing the GC must trace per event; [event] records materialize
     only on export ({!events}). Writers set exactly the fields their
     kind reads back, so stale values from overwritten slots are never
     observed. *)
  e_kind : Bytes.t;
  e_name : string array;
  e_cat : string array; (* spans *)
  e_track : int array;
  e_t0 : int array; (* span start / instant / counter timestamp *)
  e_t1 : int array; (* span end *)
  e_id : int array; (* spans *)
  e_parent : int array; (* spans *)
  e_value : int array; (* counters *)
  e_args : (string * string) list array; (* spans + instants *)
  mutable head : int; (* index of oldest event when full *)
  mutable len : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable track_names : (int * string) list; (* reversed declaration order *)
  mutable ctxs : ctx option array; (* fiber id -> open context *)
  (* request span id -> bucket breakdown recorded by the server side,
     consumed by the client's blocked-await. Open-addressed (linear
     probing; 0 = empty, -1 = tombstone — span ids are positive) because
     a Hashtbl paid an allocation per insert on every traced RPC. *)
  mutable sd_keys : int array;
  mutable sd_vals : int array array;
  mutable sd_count : int;
  mutable sd_tombs : int;
  profile : (string, agg) Hashtbl.t;
  (* Root-span (syscall) completion log: op name, start stamp, duration.
     Latency percentiles come from here rather than the event ring, so
     they survive profile-only mode and never lose samples to ring
     overwrite. Cleared alongside the profile at timed-region start. *)
  mutable lat_ops : string array;
  mutable lat_t0 : int array;
  mutable lat_dur : int array;
  mutable lat_len : int;
  (* Tail-based retention: slowest-[retain] root spans per class, with
     their full bucket vectors and admission annotations. 0 = off. *)
  retain : int;
  retained_tbl : (string, rstore) Hashtbl.t;
}

let create ?(ring = true) ?(retain = 0) ~cap () =
  if cap < 0 then invalid_arg "Trace.create: cap must be non-negative";
  if retain < 0 then invalid_arg "Trace.create: retain must be non-negative";
  (* cap 0 = an empty span ring by request: identical to [~ring:false]
     (profile-only), so exports are cleanly metadata-only instead of a
     validation failure. *)
  let ring = ring && cap > 0 in
  let rcap = if ring then cap else 0 in
  {
    cap;
    ring;
    e_kind = Bytes.make rcap k_counter;
    e_name = Array.make rcap "";
    e_cat = Array.make rcap "";
    e_track = Array.make rcap 0;
    e_t0 = Array.make rcap 0;
    e_t1 = Array.make rcap 0;
    e_id = Array.make rcap 0;
    e_parent = Array.make rcap 0;
    e_value = Array.make rcap 0;
    e_args = Array.make rcap [];
    head = 0;
    len = 0;
    dropped = 0;
    next_id = 0;
    track_names = [];
    ctxs = Array.make 1024 None;
    sd_keys = Array.make 512 0;
    sd_vals = Array.make 512 [||];
    sd_count = 0;
    sd_tombs = 0;
    profile = Hashtbl.create 64;
    lat_ops = [||];
    lat_t0 = [||];
    lat_dur = [||];
    lat_len = 0;
    retain;
    retained_tbl = Hashtbl.create 4;
  }

(* Fiber ids index [ctxs] directly: contexts open and close on every
   syscall, and a Hashtbl round trip per lookup dominated traced runs.
   The array grows to the highest fid seen with an open context — one
   word per fiber ever spawned, reclaimed with the trace. Closed
   contexts stay in their slot with [c_open = false] awaiting reuse, so
   the match below must check the flag, and must return the stored
   option as-is (no fresh [Some] allocation). *)
let[@inline] ctx_find t fid =
  if fid >= 0 && fid < Array.length t.ctxs then
    match Array.unsafe_get t.ctxs fid with
    | Some c as s -> if c.c_open then s else None
    | None -> None
  else None

let ctx_set t fid c =
  let n = Array.length t.ctxs in
  if fid >= n then begin
    let n' = ref (n * 2) in
    while fid >= !n' do
      n' := !n' * 2
    done;
    let ctxs' = Array.make !n' None in
    Array.blit t.ctxs 0 ctxs' 0 n;
    t.ctxs <- ctxs'
  end;
  t.ctxs.(fid) <- c

let declare_track t ~track ~name =
  if not (List.mem_assoc track t.track_names) then
    t.track_names <- (track, name) :: t.track_names

let tracks t = List.rev t.track_names

let next_span t =
  t.next_id <- t.next_id + 1;
  t.next_id

let dropped t = t.dropped

let ring_enabled t = t.ring

(* Claim the ring slot for the next event (overwriting the oldest when
   full) and return its index. *)
let[@inline] slot t =
  if t.len < t.cap then begin
    let i = t.head + t.len in
    let i = if i >= t.cap then i - t.cap else i in
    t.len <- t.len + 1;
    i
  end
  else begin
    let i = t.head in
    let h = t.head + 1 in
    t.head <- (if h = t.cap then 0 else h);
    t.dropped <- t.dropped + 1;
    i
  end

let event_at t j =
  let name = t.e_name.(j)
  and track = t.e_track.(j)
  and t0 = Int64.of_int t.e_t0.(j) in
  match Bytes.get t.e_kind j with
  | c when c = k_counter ->
      Counter { name; track; ts = t0; value = t.e_value.(j) }
  | c when c = k_instant ->
      Instant { name; track; ts = t0; args = t.e_args.(j) }
  | _ ->
      Span
        {
          id = t.e_id.(j);
          parent = t.e_parent.(j);
          name;
          cat = t.e_cat.(j);
          track;
          t0;
          t1 = Int64.of_int t.e_t1.(j);
          args = t.e_args.(j);
        }

let events t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    let j = t.head + i in
    let j = if j >= t.cap then j - t.cap else j in
    out := event_at t j :: !out
  done;
  !out

let instant t ~name ~track ~ts ?(args = []) () =
  if t.ring then begin
    let i = slot t in
    Bytes.unsafe_set t.e_kind i k_instant;
    Array.unsafe_set t.e_name i name;
    Array.unsafe_set t.e_track i track;
    Array.unsafe_set t.e_t0 i (Int64.to_int ts);
    Array.unsafe_set t.e_args i args
  end

let counter t ~name ~track ~ts ~value =
  if t.ring then begin
    let i = slot t in
    Bytes.unsafe_set t.e_kind i k_counter;
    Array.unsafe_set t.e_name i name;
    Array.unsafe_set t.e_track i track;
    Array.unsafe_set t.e_t0 i (Int64.to_int ts);
    Array.unsafe_set t.e_value i value
  end

(* --- attribution contexts ------------------------------------------- *)

let ctx_active t ~fid = ctx_find t fid <> None

let ctx_open t ~fid ~op ~track ~parent ~now ~args =
  if fid < 0 || ctx_find t fid <> None then 0
  else begin
    t.next_id <- t.next_id + 1;
    let span = t.next_id in
    (* Reuse the parked context from this fiber's last operation when
       there is one; a fresh record is only paid once per fiber. *)
    (match if fid < Array.length t.ctxs then t.ctxs.(fid) else None with
    | Some c ->
        c.c_open <- true;
        c.c_op <- op;
        c.c_track <- track;
        c.c_span <- span;
        c.c_parent <- parent;
        c.c_t0 <- Int64.to_int now;
        c.c_args <- args;
        Array.fill c.c_buckets 0 nbuckets 0;
        c.c_pending <- [];
        c.c_srv <- -1;
        c.c_qdepth <- -1;
        c.c_last_srv <- -1;
        c.c_children <- []
    | None ->
        ctx_set t fid
          (Some
             {
               c_open = true;
               c_op = op;
               c_track = track;
               c_span = span;
               c_parent = parent;
               c_t0 = Int64.to_int now;
               c_args = args;
               c_buckets = Array.make nbuckets 0;
               c_pending = [];
               c_srv = -1;
               c_qdepth = -1;
               c_last_srv = -1;
               c_children = [];
             }));
    span
  end

let[@inline] charge ctx b cy =
  if cy > 0 then begin
    let i = bucket_index b in
    Array.unsafe_set ctx.c_buckets i (Array.unsafe_get ctx.c_buckets i + cy)
  end

let set_pending t ~fid parts =
  match ctx_find t fid with
  | Some ctx -> ctx.c_pending <- parts
  | None -> ()

let on_compute t ~fid ~elapsed ~cost ~switch =
  match ctx_find t fid with
  | None -> ()
  | Some ctx ->
      (* Backlog waiting for the core before our charge started. *)
      charge ctx Queue (elapsed - cost);
      charge ctx Dispatch switch;
      let base = cost - switch in
      (* Spread [base] over the pending decomposition; uncovered cycles
         default to Compute. Pending parts are caller estimates of the
         same charge, so cap at what actually remains. *)
      let remaining = ref base in
      List.iter
        (fun (b, cy) ->
          let grant = if cy < !remaining then cy else !remaining in
          charge ctx b grant;
          remaining := !remaining - grant)
        ctx.c_pending;
      charge ctx Compute !remaining;
      ctx.c_pending <- []

let on_wait t ~fid ~cycles =
  match ctx_find t fid with
  | Some ctx -> charge ctx Queue cycles
  | None -> ()

let retain_enabled t = t.retain > 0

let retain_k t = t.retain

(* Client hook, called at RPC send time: freeze the admission target and
   queue depth on the first send of the open context, and remember the
   most recent target so the blocked-wait grant can be attributed. Only
   meaningful under tail retention; host-side only. *)
let note_send t ~fid ~srv ~depth =
  match ctx_find t fid with
  | None -> ()
  | Some ctx ->
      if ctx.c_srv < 0 then begin
        ctx.c_srv <- srv;
        ctx.c_qdepth <- depth
      end;
      ctx.c_last_srv <- srv

(* --- the server-done table ------------------------------------------ *)

let[@inline] sd_slot t span = span * 0x2545F491 land (Array.length t.sd_keys - 1)

(* Slot holding [span], or -1. *)
let sd_find t span =
  let mask = Array.length t.sd_keys - 1 in
  let rec probe i =
    match Array.unsafe_get t.sd_keys i with
    | 0 -> -1
    | k when k = span -> i
    | _ -> probe ((i + 1) land mask)
  in
  probe (sd_slot t span)

let sd_rehash t size =
  let old_keys = t.sd_keys and old_vals = t.sd_vals in
  t.sd_keys <- Array.make size 0;
  t.sd_vals <- Array.make size [||];
  t.sd_tombs <- 0;
  let mask = size - 1 in
  Array.iteri
    (fun i k ->
      if k > 0 then begin
        let j = ref (k * 0x2545F491 land mask) in
        while t.sd_keys.(!j) <> 0 do
          j := (!j + 1) land mask
        done;
        t.sd_keys.(!j) <- k;
        t.sd_vals.(!j) <- old_vals.(i)
      end)
    old_keys

let sd_put t span v =
  let size = Array.length t.sd_keys in
  if (t.sd_count + t.sd_tombs + 1) * 4 >= size * 3 then
    sd_rehash t (if (t.sd_count + 1) * 2 >= size then size * 2 else size);
  let mask = Array.length t.sd_keys - 1 in
  let rec probe i free =
    match Array.unsafe_get t.sd_keys i with
    | 0 ->
        let i = if free >= 0 then free else i in
        if t.sd_keys.(i) = -1 then t.sd_tombs <- t.sd_tombs - 1;
        t.sd_keys.(i) <- span;
        t.sd_vals.(i) <- v;
        t.sd_count <- t.sd_count + 1
    | k when k = span -> t.sd_vals.(i) <- v
    | -1 -> probe ((i + 1) land mask) (if free >= 0 then free else i)
    | _ -> probe ((i + 1) land mask) free
  in
  probe (sd_slot t span) (-1)

(* Find-and-remove: each breakdown is consumed by exactly one await. *)
let sd_take t span =
  let i = sd_find t span in
  if i < 0 then None
  else begin
    let v = t.sd_vals.(i) in
    t.sd_keys.(i) <- -1;
    t.sd_vals.(i) <- [||];
    t.sd_count <- t.sd_count - 1;
    t.sd_tombs <- t.sd_tombs + 1;
    Some v
  end

(* Keep the table bounded: requests whose reply is lost (crash,
   blackhole) leave entries behind. Past the high-water mark, drop the
   older (smaller-span) half. *)
let prune_server_done t =
  if t.sd_count > 8192 then begin
    let spans = ref [] in
    Array.iter (fun k -> if k > 0 then spans := k :: !spans) t.sd_keys;
    let sorted = List.sort compare !spans in
    let cutoff = List.nth sorted (List.length sorted / 2) in
    List.iter (fun s -> if s < cutoff then ignore (sd_take t s)) sorted
  end

let blocked_priority = [ Dispatch; Compute; Cache; Dram; Send; Queue ]

let on_blocked t ~fid ~span ~elapsed =
  let breakdown = if span = 0 then None else sd_take t span in
  match ctx_find t fid with
  | None -> ()
  | Some ctx ->
      let remaining = ref elapsed in
      (match breakdown with
      | Some srv ->
          (* Grant the server's buckets, capped at the observed wait. *)
          List.iter
            (fun b ->
              let cy = srv.(bucket_index b) in
              let grant = if cy < !remaining then cy else !remaining in
              charge ctx b grant;
              remaining := !remaining - grant)
            blocked_priority
      | None -> ());
      (* Under tail retention, remember which server the grant came from
         (the last send target): this is the span tree the blame report
         walks. The grant is exact for synchronous RPCs (rpc_window 1);
         with a wider window it attributes to the most recent send. *)
      (if t.retain > 0 && ctx.c_last_srv >= 0 then
         let granted = elapsed - !remaining in
         if granted > 0 then
           ctx.c_children <- (ctx.c_last_srv, granted) :: ctx.c_children);
      charge ctx Queue !remaining

let bucket_sum buckets = Array.fold_left ( + ) 0 buckets

let close_common t ~fid ~now ~cat k =
  match ctx_find t fid with
  | None -> ()
  | Some ctx ->
      (* Park the record in its slot for the fiber's next open. *)
      ctx.c_open <- false;
      k ctx;
      if t.ring then begin
        let i = slot t in
        Bytes.unsafe_set t.e_kind i k_span;
        Array.unsafe_set t.e_name i ctx.c_op;
        Array.unsafe_set t.e_cat i cat;
        Array.unsafe_set t.e_track i ctx.c_track;
        Array.unsafe_set t.e_t0 i ctx.c_t0;
        Array.unsafe_set t.e_t1 i (Int64.to_int now);
        Array.unsafe_set t.e_id i ctx.c_span;
        Array.unsafe_set t.e_parent i ctx.c_parent;
        Array.unsafe_set t.e_args i ctx.c_args
      end

let profile_add t ctx elapsed =
  let agg =
    match Hashtbl.find_opt t.profile ctx.c_op with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_total = 0; a_buckets = Array.make nbuckets 0 } in
        Hashtbl.replace t.profile ctx.c_op a;
        a
  in
  agg.a_count <- agg.a_count + 1;
  agg.a_total <- agg.a_total + elapsed;
  Array.iteri
    (fun i cy -> agg.a_buckets.(i) <- agg.a_buckets.(i) + cy)
    ctx.c_buckets

let lat_push t op t0 dur =
  let n = Array.length t.lat_ops in
  if t.lat_len = n then begin
    let n' = if n = 0 then 1024 else n * 2 in
    let ops' = Array.make n' ""
    and t0' = Array.make n' 0
    and dur' = Array.make n' 0 in
    Array.blit t.lat_ops 0 ops' 0 n;
    Array.blit t.lat_t0 0 t0' 0 n;
    Array.blit t.lat_dur 0 dur' 0 n;
    t.lat_ops <- ops';
    t.lat_t0 <- t0';
    t.lat_dur <- dur'
  end;
  t.lat_ops.(t.lat_len) <- op;
  t.lat_t0.(t.lat_len) <- t0;
  t.lat_dur.(t.lat_len) <- dur;
  t.lat_len <- t.lat_len + 1

(* --- tail-based retention (PR 9) ------------------------------------ *)

let rs_rescan_min rs =
  let m = ref 0 in
  for i = 1 to rs.rs_len - 1 do
    if rs.rs_items.(i).rt_dur < rs.rs_items.(!m).rt_dur then m := i
  done;
  rs.rs_min <- !m

(* Admit [ctx]'s completed root span to its class store iff it is among
   the slowest [retain] seen so far; the bucket vector is copied because
   the context (and its array) is recycled on the fiber's next open. *)
let retain_push t ctx elapsed =
  match Hare_stats.Latency.class_of_op ctx.c_op with
  | None -> ()
  | Some cls ->
      let rs =
        match Hashtbl.find_opt t.retained_tbl cls with
        | Some rs -> rs
        | None ->
            let rs =
              {
                rs_cap = t.retain;
                rs_items = [||];
                rs_len = 0;
                rs_min = 0;
              }
            in
            Hashtbl.replace t.retained_tbl cls rs;
            rs
      in
      let full = rs.rs_len >= rs.rs_cap in
      if (not full) || elapsed > rs.rs_items.(rs.rs_min).rt_dur then begin
        let item =
          {
            rt_op = ctx.c_op;
            rt_cls = cls;
            rt_t0 = ctx.c_t0;
            rt_dur = elapsed;
            rt_buckets = Array.copy ctx.c_buckets;
            rt_srv = ctx.c_srv;
            rt_qdepth = ctx.c_qdepth;
            rt_children = List.rev ctx.c_children;
          }
        in
        if full then begin
          rs.rs_items.(rs.rs_min) <- item;
          rs_rescan_min rs
        end
        else begin
          (if rs.rs_len = Array.length rs.rs_items then
             let n = Array.length rs.rs_items in
             let n' = min rs.rs_cap (max 8 (n * 2)) in
             let items' = Array.make n' item in
             Array.blit rs.rs_items 0 items' 0 n;
             rs.rs_items <- items');
          rs.rs_items.(rs.rs_len) <- item;
          rs.rs_len <- rs.rs_len + 1;
          if rs.rs_len = rs.rs_cap then rs_rescan_min rs
        end
      end

let retained t =
  Hashtbl.fold
    (fun _ rs acc ->
      let items = ref acc in
      for i = rs.rs_len - 1 downto 0 do
        items := rs.rs_items.(i) :: !items
      done;
      !items)
    t.retained_tbl []
  |> List.sort (fun a b ->
         match compare b.rt_dur a.rt_dur with
         | 0 -> compare a.rt_t0 b.rt_t0
         | c -> c)

let ctx_close_syscall t ~fid ~now =
  close_common t ~fid ~now ~cat:"syscall" (fun ctx ->
      let elapsed = Int64.to_int now - ctx.c_t0 in
      (* Uncovered wall time — mailbox waits, reply latency not explained
         by the server breakdown — is queue-wait. This makes the bucket
         sum equal elapsed exactly, by construction. *)
      charge ctx Queue (elapsed - bucket_sum ctx.c_buckets);
      profile_add t ctx elapsed;
      if ctx.c_parent = 0 then begin
        lat_push t ctx.c_op ctx.c_t0 elapsed;
        if t.retain > 0 then retain_push t ctx elapsed
      end)

let ctx_close_server t ~fid ~now =
  close_common t ~fid ~now ~cat:"server" (fun ctx ->
      let elapsed = Int64.to_int now - ctx.c_t0 in
      charge ctx Queue (elapsed - bucket_sum ctx.c_buckets);
      profile_add t ctx elapsed;
      if ctx.c_parent <> 0 then begin
        (* Hand the buckets array itself to the server-done table (the
           context is recycled, so it gets a fresh one) rather than
           copying. *)
        sd_put t ctx.c_parent ctx.c_buckets;
        ctx.c_buckets <- Array.make nbuckets 0;
        prune_server_done t
      end)

(* --- consumers ------------------------------------------------------ *)

type row = {
  r_op : string;
  r_count : int;
  r_total : int64;
  r_buckets : int64 array;
}

let profile t =
  Hashtbl.fold
    (fun op a acc ->
      {
        r_op = op;
        r_count = a.a_count;
        r_total = Int64.of_int a.a_total;
        r_buckets = Array.map Int64.of_int a.a_buckets;
      }
      :: acc)
    t.profile []
  |> List.sort (fun a b ->
         match compare b.r_total a.r_total with
         | 0 -> compare a.r_op b.r_op
         | c -> c)

let reset_profile t =
  Hashtbl.reset t.profile;
  t.lat_len <- 0;
  (* Retention follows the latency log: a timed region blames only its
     own tail, not setup's. *)
  Hashtbl.reset t.retained_tbl

let root_spans t =
  List.init t.lat_len (fun i ->
      (t.lat_ops.(i), Int64.of_int t.lat_t0.(i), Int64.of_int t.lat_dur.(i)))

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let event_ts = function
  | Span { t0; _ } -> t0
  | Instant { ts; _ } -> ts
  | Counter { ts; _ } -> ts

let event_json = function
  | Span { id; parent; name; cat; track; t0; t1; args } ->
      let dur = Int64.sub t1 t0 in
      let extra =
        args_json
          ((if parent <> 0 then [ ("parent", string_of_int parent) ] else [])
          @ args)
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%Ld,\"dur\":%Ld,\"pid\":0,\"tid\":%d,\"id\":%d,\"args\":{%s}}"
        (json_escape name) (json_escape cat) t0 dur track id extra
  | Instant { name; track; ts; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%Ld,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{%s}}"
        (json_escape name) ts track (args_json args)
  | Counter { name; track; ts; value } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%Ld,\"pid\":0,\"tid\":%d,\"args\":{\"value\":%d}}"
        (json_escape name) ts track value

let to_chrome_json t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"hare\"}}";
  List.iter
    (fun (track, name) ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           track (json_escape name)))
    (tracks t);
  let evs = List.stable_sort (fun a b -> Int64.compare (event_ts a) (event_ts b)) (events t) in
  List.iter
    (fun ev ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json ev))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let recent_spans t ~per_track =
  (* Newest-first scan, keep up to [per_track] spans per track, then
     restore chronological order. *)
  let counts = Hashtbl.create 16 in
  let kept =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Span { name; track; t0; t1; id; _ } ->
            let n = Option.value ~default:0 (Hashtbl.find_opt counts track) in
            if n < per_track then begin
              Hashtbl.replace counts track (n + 1);
              (track, t0, t1, id, name) :: acc
            end
            else acc
        | _ -> acc)
      []
      (List.rev (events t))
  in
  List.map
    (fun (track, t0, t1, id, name) ->
      Printf.sprintf "track %d: [%Ld..%Ld] span#%d %s" track t0 t1 id name)
    kept
