(* Span tracing + cycle attribution. Pure host-side bookkeeping: nothing
   here touches the simulated clock, cores, or RNGs — see trace.mli for
   the zero-perturbation invariant. *)

type bucket = Compute | Send | Queue | Dispatch | Cache | Dram

let nbuckets = 6

let bucket_index = function
  | Compute -> 0
  | Send -> 1
  | Queue -> 2
  | Dispatch -> 3
  | Cache -> 4
  | Dram -> 5

let bucket_name = function
  | Compute -> "compute"
  | Send -> "send"
  | Queue -> "queue"
  | Dispatch -> "dispatch"
  | Cache -> "cache"
  | Dram -> "dram"

let bucket_names = [ "compute"; "send"; "queue"; "dispatch"; "cache"; "dram" ]

type event =
  | Span of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      track : int;
      t0 : int64;
      t1 : int64;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      track : int;
      ts : int64;
      args : (string * string) list;
    }
  | Counter of { name : string; track : int; ts : int64; value : int }

(* An open attribution context for one fiber. *)
type ctx = {
  c_op : string;
  c_track : int;
  c_span : int;
  c_parent : int;
  c_t0 : int64;
  c_args : (string * string) list;
  c_buckets : int64 array;
  (* Decomposition of the fiber's next compute charge; cleared by
     [on_compute]. *)
  mutable c_pending : (bucket * int) list;
}

(* Per-opcode profile accumulator. *)
type agg = {
  mutable a_count : int;
  mutable a_total : int64;
  a_buckets : int64 array;
}

type t = {
  cap : int;
  ring : event option array;
  mutable head : int; (* index of oldest event when full *)
  mutable len : int;
  mutable dropped : int;
  mutable next_id : int;
  mutable track_names : (int * string) list; (* reversed declaration order *)
  ctxs : (int, ctx) Hashtbl.t; (* fiber id -> open context *)
  (* request span id -> bucket breakdown recorded by the server side,
     consumed by the client's blocked-await. *)
  server_done : (int, int64 array) Hashtbl.t;
  profile : (string, agg) Hashtbl.t;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Trace.create: cap must be positive";
  {
    cap;
    ring = Array.make cap None;
    head = 0;
    len = 0;
    dropped = 0;
    next_id = 0;
    track_names = [];
    ctxs = Hashtbl.create 64;
    server_done = Hashtbl.create 256;
    profile = Hashtbl.create 64;
  }

let declare_track t ~track ~name =
  if not (List.mem_assoc track t.track_names) then
    t.track_names <- (track, name) :: t.track_names

let tracks t = List.rev t.track_names

let next_span t =
  t.next_id <- t.next_id + 1;
  t.next_id

let dropped t = t.dropped

let push t ev =
  if t.len < t.cap then begin
    t.ring.((t.head + t.len) mod t.cap) <- Some ev;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest slot. *)
    t.ring.(t.head) <- Some ev;
    t.head <- (t.head + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let events t =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    match t.ring.((t.head + i) mod t.cap) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  !out

let instant t ~name ~track ~ts ?(args = []) () =
  push t (Instant { name; track; ts; args })

let counter t ~name ~track ~ts ~value = push t (Counter { name; track; ts; value })

(* --- attribution contexts ------------------------------------------- *)

let ctx_active t ~fid = Hashtbl.mem t.ctxs fid

let ctx_open t ~fid ~op ~track ~parent ~now ~args =
  if Hashtbl.mem t.ctxs fid then 0
  else begin
    t.next_id <- t.next_id + 1;
    let span = t.next_id in
    Hashtbl.replace t.ctxs fid
      {
        c_op = op;
        c_track = track;
        c_span = span;
        c_parent = parent;
        c_t0 = now;
        c_args = args;
        c_buckets = Array.make nbuckets 0L;
        c_pending = [];
      };
    span
  end

let charge ctx b cy =
  if cy > 0L then
    let i = bucket_index b in
    ctx.c_buckets.(i) <- Int64.add ctx.c_buckets.(i) cy

let set_pending t ~fid parts =
  match Hashtbl.find_opt t.ctxs fid with
  | Some ctx -> ctx.c_pending <- parts
  | None -> ()

let on_compute t ~fid ~elapsed ~cost ~switch =
  match Hashtbl.find_opt t.ctxs fid with
  | None -> ()
  | Some ctx ->
      (* Backlog waiting for the core before our charge started. *)
      charge ctx Queue (Int64.sub elapsed cost);
      charge ctx Dispatch switch;
      let base = Int64.sub cost switch in
      (* Spread [base] over the pending decomposition; uncovered cycles
         default to Compute. Pending parts are caller estimates of the
         same charge, so cap at what actually remains. *)
      let remaining = ref base in
      List.iter
        (fun (b, cy) ->
          let cy = Int64.of_int cy in
          let grant = if cy < !remaining then cy else !remaining in
          charge ctx b grant;
          remaining := Int64.sub !remaining grant)
        ctx.c_pending;
      charge ctx Compute !remaining;
      ctx.c_pending <- []

let on_wait t ~fid ~cycles =
  match Hashtbl.find_opt t.ctxs fid with
  | Some ctx -> charge ctx Queue cycles
  | None -> ()

(* Keep [server_done] bounded: requests whose reply is lost (crash,
   blackhole) leave entries behind. Past the high-water mark, drop the
   older (smaller-span) half. *)
let prune_server_done t =
  if Hashtbl.length t.server_done > 8192 then begin
    let spans = Hashtbl.fold (fun k _ acc -> k :: acc) t.server_done [] in
    let sorted = List.sort compare spans in
    let cutoff = List.nth sorted (List.length sorted / 2) in
    List.iter (fun s -> if s < cutoff then Hashtbl.remove t.server_done s) sorted
  end

let blocked_priority = [ Dispatch; Compute; Cache; Dram; Send; Queue ]

let on_blocked t ~fid ~span ~elapsed =
  let breakdown =
    if span = 0 then None
    else begin
      let b = Hashtbl.find_opt t.server_done span in
      Hashtbl.remove t.server_done span;
      b
    end
  in
  match Hashtbl.find_opt t.ctxs fid with
  | None -> ()
  | Some ctx ->
      let remaining = ref elapsed in
      (match breakdown with
      | Some srv ->
          (* Grant the server's buckets, capped at the observed wait. *)
          List.iter
            (fun b ->
              let cy = srv.(bucket_index b) in
              let grant = if cy < !remaining then cy else !remaining in
              charge ctx b grant;
              remaining := Int64.sub !remaining grant)
            blocked_priority
      | None -> ());
      charge ctx Queue !remaining

let bucket_sum buckets = Array.fold_left Int64.add 0L buckets

let close_common t ~fid ~now ~cat k =
  match Hashtbl.find_opt t.ctxs fid with
  | None -> ()
  | Some ctx ->
      Hashtbl.remove t.ctxs fid;
      k ctx;
      push t
        (Span
           {
             id = ctx.c_span;
             parent = ctx.c_parent;
             name = ctx.c_op;
             cat;
             track = ctx.c_track;
             t0 = ctx.c_t0;
             t1 = now;
             args = ctx.c_args;
           })

let profile_add t ctx elapsed =
  let agg =
    match Hashtbl.find_opt t.profile ctx.c_op with
    | Some a -> a
    | None ->
        let a = { a_count = 0; a_total = 0L; a_buckets = Array.make nbuckets 0L } in
        Hashtbl.replace t.profile ctx.c_op a;
        a
  in
  agg.a_count <- agg.a_count + 1;
  agg.a_total <- Int64.add agg.a_total elapsed;
  Array.iteri
    (fun i cy -> agg.a_buckets.(i) <- Int64.add agg.a_buckets.(i) cy)
    ctx.c_buckets

let ctx_close_syscall t ~fid ~now =
  close_common t ~fid ~now ~cat:"syscall" (fun ctx ->
      let elapsed = Int64.sub now ctx.c_t0 in
      (* Uncovered wall time — mailbox waits, reply latency not explained
         by the server breakdown — is queue-wait. This makes the bucket
         sum equal elapsed exactly, by construction. *)
      charge ctx Queue (Int64.sub elapsed (bucket_sum ctx.c_buckets));
      profile_add t ctx elapsed)

let ctx_close_server t ~fid ~now =
  close_common t ~fid ~now ~cat:"server" (fun ctx ->
      let elapsed = Int64.sub now ctx.c_t0 in
      charge ctx Queue (Int64.sub elapsed (bucket_sum ctx.c_buckets));
      profile_add t ctx elapsed;
      if ctx.c_parent <> 0 then begin
        Hashtbl.replace t.server_done ctx.c_parent (Array.copy ctx.c_buckets);
        prune_server_done t
      end)

(* --- consumers ------------------------------------------------------ *)

type row = {
  r_op : string;
  r_count : int;
  r_total : int64;
  r_buckets : int64 array;
}

let profile t =
  Hashtbl.fold
    (fun op a acc ->
      {
        r_op = op;
        r_count = a.a_count;
        r_total = a.a_total;
        r_buckets = Array.copy a.a_buckets;
      }
      :: acc)
    t.profile []
  |> List.sort (fun a b ->
         match compare b.r_total a.r_total with
         | 0 -> compare a.r_op b.r_op
         | c -> c)

let reset_profile t = Hashtbl.reset t.profile

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

let event_ts = function
  | Span { t0; _ } -> t0
  | Instant { ts; _ } -> ts
  | Counter { ts; _ } -> ts

let event_json = function
  | Span { id; parent; name; cat; track; t0; t1; args } ->
      let dur = Int64.sub t1 t0 in
      let extra =
        args_json
          ((if parent <> 0 then [ ("parent", string_of_int parent) ] else [])
          @ args)
      in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%Ld,\"dur\":%Ld,\"pid\":0,\"tid\":%d,\"id\":%d,\"args\":{%s}}"
        (json_escape name) (json_escape cat) t0 dur track id extra
  | Instant { name; track; ts; args } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%Ld,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{%s}}"
        (json_escape name) ts track (args_json args)
  | Counter { name; track; ts; value } ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%Ld,\"pid\":0,\"tid\":%d,\"args\":{\"value\":%d}}"
        (json_escape name) ts track value

let to_chrome_json t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"hare\"}}";
  List.iter
    (fun (track, name) ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           track (json_escape name)))
    (tracks t);
  let evs = List.stable_sort (fun a b -> Int64.compare (event_ts a) (event_ts b)) (events t) in
  List.iter
    (fun ev ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json ev))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let recent_spans t ~per_track =
  (* Newest-first scan, keep up to [per_track] spans per track, then
     restore chronological order. *)
  let counts = Hashtbl.create 16 in
  let kept =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Span { name; track; t0; t1; id; _ } ->
            let n = Option.value ~default:0 (Hashtbl.find_opt counts track) in
            if n < per_track then begin
              Hashtbl.replace counts track (n + 1);
              (track, t0, t1, id, name) :: acc
            end
            else acc
        | _ -> acc)
      []
      (List.rev (events t))
  in
  List.map
    (fun (track, t0, t1, id, name) ->
      Printf.sprintf "track %d: [%Ld..%Ld] span#%d %s" track t0 t1 id name)
    kept
