(** Inter-core message channel with {e atomic delivery}.

    Modelled after the Pika messaging library the paper builds on: each
    endpoint owns a receive queue in shared memory. The property Hare's
    directory-cache invalidation protocol relies on (§3.6.1) holds by
    construction: when {!send} returns, the message {e is} in the
    receiver's queue, so a receiver that drains its queue before acting
    can never miss a message sent before its action began.

    Sending charges the sender's core; receiving charges the owner's
    core. Cross-socket sends pay a NUMA penalty. *)

type 'a t

val create :
  ?name:string ->
  ?capacity:int ->
  ?faults:Hare_fault.Injector.link ->
  owner:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  unit ->
  'a t
(** [name], when given, registers the queue depth as an engine probe so
    deadlock reports can show where messages piled up. [capacity]
    bounds the queue: senders wait for a free slot (a credit) before
    their message is admitted — backpressure instead of unbounded
    growth; omitted = unbounded, the paper's behaviour. [faults]
    attaches an injector link: sends then route through the injector's
    dice. *)

val owner : 'a t -> Hare_sim.Core_res.t

val uid : 'a t -> int
(** The engine shared-object uid identifying this mailbox to the
    schedule explorer's footprint relation. *)

val unwatch : 'a t -> unit
(** Deregister this mailbox's engine depth probe (no-op if unnamed or
    already unwatched). Called when the owning endpoint crashes so
    deadlock reports and probe scans skip dead mailboxes. *)

val rewatch : 'a t -> unit
(** Re-register the depth probe of a previously {!unwatch}ed named
    mailbox (no-op if unnamed or already watched); called on restart. *)

(** [send t ~from msg] delivers [msg]; on return the message is queued at
    the receiver. [payload_lines] (default 0) charges marshalling cost for
    bulk payloads.

    With an injector link attached, [unreliable] sends (default [false])
    are subject to the fault plan — they may be dropped, duplicated,
    delayed, or blackholed while the receiver is down. Reliable sends
    always enqueue (possibly late, if the link is stalled), preserving the
    atomic-delivery contract. Without a link, [unreliable] is ignored and
    delivery is exactly the fault-free fast path.

    [span] (default 0 = none) tags fault-injector verdicts in the trace
    with the request span the message carries; it does not affect
    delivery. *)
val send :
  'a t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  ?unreliable:bool ->
  ?span:int ->
  'a ->
  unit

(** [recv t] blocks until a message is available and returns it, charging
    the receive cost to the owner core. *)
val recv : 'a t -> 'a

(** [recv_many t ~max] blocks for the first message, then drains up to
    [max - 1] further messages that are already queued, in arrival order.
    Only the first message's receive cost is charged (the whole batch
    shares one wakeup / context switch); the caller must charge the
    remaining receives with {!charge_recv} as it handles each message.
    [recv_many t ~max:1] behaves exactly like {!recv}. *)
val recv_many : 'a t -> max:int -> 'a list

(** [charge_recv t] charges the already-delivered receive cost
    ([Costs.recv_ready]) to the owner core; pairs with the messages of
    {!recv_many} past the first, which were queued before the wakeup and
    so skip the blocking-notification path. *)
val charge_recv : 'a t -> unit

(** [poll t] returns a message if one is queued (charging receive cost),
    or [None] without cost — the cheap queue-empty check that makes the
    invalidation-drain-before-lookup pattern viable. *)
val poll : 'a t -> 'a option

(** [drain t] removes and returns every queued message without charging
    any receive cost; used by crash handling to abort in-flight requests.
    Drained messages do not count as received. *)
val drain : 'a t -> 'a list

val pending : 'a t -> int

val sent : 'a t -> int

val flow_blocked : 'a t -> int
(** Sends that had to wait for a credit because the bounded queue was
    full; always 0 for unbounded mailboxes. *)

val reset_flow : 'a t -> unit
(** Zero {!flow_blocked} (per-driver-run stats hygiene). *)

val received : 'a t -> int
