(** Request/response messaging over {!Mailbox}.

    A server owns an endpoint and loops on {!recv}; each request carries a
    reply slot. Replies are themselves messages (the responder pays a send
    cost, the caller a receive cost). {!call_async}/{!await} let a client
    overlap several outstanding RPCs — the mechanism behind directory
    broadcast (§3.6.2).

    Requests may carry a {!meta} idempotency tag (per-client sequence
    number). Tagged requests are the ones the fault injector may drop,
    duplicate or delay; servers use the tag to deduplicate retries, and
    {!call_deadline} bounds the wait so a lost message surfaces as
    [Error `Timeout] instead of a hang. *)

type meta = { m_client : int; m_seq : int; m_ack : int }
(** Idempotency tag: the sending client's id and its private, monotonic
    request sequence number. Retries of one logical request reuse one
    tag. [m_ack] is the client's completed low-water mark — every seq at
    or below it has a final client-side outcome and will never be
    retransmitted, so the server can purge those dedup entries. *)

type ('req, 'resp) t

val endpoint :
  ?name:string ->
  ?capacity:int ->
  ?faults:Hare_fault.Injector.link ->
  owner:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  unit ->
  ('req, 'resp) t
(** [name]/[capacity]/[faults] are forwarded to the underlying
    {!Mailbox.create}; a bounded endpoint makes callers wait for a
    queue credit before their request is admitted. *)

val owner : ('req, 'resp) t -> Hare_sim.Core_res.t

val unwatch : ('req, 'resp) t -> unit
(** Deregister the endpoint's queue-depth probe from the engine (e.g.
    when the owning server crashes — a dead server's queue should not
    appear in deadlock reports). Idempotent. *)

val rewatch : ('req, 'resp) t -> unit
(** Re-register the probe dropped by {!unwatch} (server restart).
    No-op if currently watched or the endpoint was never named. *)

(** [call t ~from req] sends [req] and blocks until the response arrives. *)
val call :
  ('req, 'resp) t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  'req ->
  'resp

(** [call_deadline t ~engine ~from ~meta ~deadline req] sends [req] with
    an idempotency tag and waits at most [deadline] cycles for the reply.
    A late response still fills the future; it is simply no longer
    observed by this call. [abs_deadline]/[prio] ride the request
    envelope (deadline propagation and shed class, PR 6); defaults 0 =
    never shed, metadata class. *)
val call_deadline :
  ('req, 'resp) t ->
  engine:Hare_sim.Engine.t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  meta:meta ->
  deadline:int64 ->
  ?abs_deadline:int64 ->
  ?prio:int ->
  'req ->
  ('resp, [> `Timeout ]) result

(** [call_async t ~from req] sends [req]; {!await} the returned future.
    [meta], when given, tags the request for dedup and marks it
    unreliable (subject to the fault plan). *)
val call_async :
  ('req, 'resp) t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  ?meta:meta ->
  'req ->
  'resp Hare_sim.Ivar.t

(** Like {!call_async} but also returns the request's trace span id (0
    when tracing is off). Pass it to {!await} so the time this fiber
    later spends blocked on the reply is attributed from the server-side
    breakdown recorded for that request. [abs_deadline]/[prio] ride the
    envelope as in {!call_deadline}. *)
val call_async_sp :
  ('req, 'resp) t ->
  from:Hare_sim.Core_res.t ->
  ?payload_lines:int ->
  ?meta:meta ->
  ?abs_deadline:int64 ->
  ?prio:int ->
  'req ->
  'resp Hare_sim.Ivar.t * int

(** [await ~from ~costs future] blocks for the response and charges the
    receive cost to [from]. [span] (default 0) is the request's trace
    span id, from {!call_async_sp}. *)
val await :
  from:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  ?span:int ->
  'resp Hare_sim.Ivar.t ->
  'resp

(** [note_reply ~from future] joins the sanitizer happens-before stamp
    the responder stashed on [future] into [from]'s vector clock. No-op
    when checking is off or the ivar carries no stamp. {!await} and
    {!await_deadline} call this internally; it is exposed for callers
    that read an already-filled future directly (the client's deferred
    fast path). *)
val note_reply : from:Hare_sim.Core_res.t -> 'resp Hare_sim.Ivar.t -> unit

(** Deadline-bounded {!await}. *)
val await_deadline :
  engine:Hare_sim.Engine.t ->
  from:Hare_sim.Core_res.t ->
  costs:Hare_config.Costs.t ->
  deadline:int64 ->
  ?span:int ->
  'resp Hare_sim.Ivar.t ->
  ('resp, [> `Timeout ]) result

(** [recv t] (server side) blocks for a request and returns it with its
    reply function. The reply function charges the send cost to the
    endpoint's owner core when invoked; it may be stashed and invoked
    later (how servers park blocking operations — pipe reads, rmdir
    serialization — without blocking their dispatch loop). Replying to a
    duplicated copy of an already-answered tagged request is a no-op. *)
val recv : ('req, 'resp) t -> 'req * (?payload_lines:int -> 'resp -> unit)

(** Like {!recv} but also exposes the request's idempotency tag, trace
    span id (0 when the caller was untraced), absolute deadline (0 =
    none) and shed-priority class. *)
val recv_full :
  ('req, 'resp) t ->
  'req
  * (?payload_lines:int -> 'resp -> unit)
  * meta option
  * int
  * int64
  * int

(** [recv_batch_full t ~max] blocks for the first request, then drains up
    to [max - 1] already-queued requests in arrival order (see
    {!Mailbox.recv_many}): the server-side batch-dispatch primitive.
    Only the first request's receive cost is charged; pair each later
    request with {!charge_recv} as it is served. [~max:1] is exactly
    {!recv_full}. *)
val recv_batch_full :
  ('req, 'resp) t ->
  max:int ->
  ('req
  * (?payload_lines:int -> 'resp -> unit)
  * meta option
  * int
  * int64
  * int)
  list

(** [charge_recv t] charges the already-delivered receive cost to the
    endpoint's owner; for the messages of {!recv_batch_full} past the
    first (queued before the wakeup, so no blocking notification). *)
val charge_recv : ('req, 'resp) t -> unit

(** [poll t] is the non-blocking {!recv}. *)
val poll :
  ('req, 'resp) t -> ('req * (?payload_lines:int -> 'resp -> unit)) option

(** [drain_pending t] empties the request queue without charging receive
    costs, returning each request with its reply function and tag; crash
    handling uses this to abort everything in flight. *)
val drain_pending :
  ('req, 'resp) t ->
  ('req
  * (?payload_lines:int -> 'resp -> unit)
  * meta option
  * int
  * int64
  * int)
  list

val pending : ('req, 'resp) t -> int

val peak_pending : ('req, 'resp) t -> int
(** Deepest request queue observed at any send to this endpoint since
    the last {!reset_peak} — host-side bookkeeping only (per-server
    load-distribution statistics); charges nothing. *)

val reset_peak : ('req, 'resp) t -> unit

val flow_blocked : ('req, 'resp) t -> int
(** Requests whose senders waited for a mailbox credit (bounded
    endpoints only). *)

val reset_flow : ('req, 'resp) t -> unit
