open Hare_sim
module Trace = Hare_trace.Trace

type 'a t = {
  queue : 'a Bqueue.t;
  owner : Core_res.t;
  costs : Hare_config.Costs.t;
  faults : Hare_fault.Injector.link option;
  name : string option;
  mutable sent : int;
  mutable received : int;
}

let create ?name ?faults ~owner ~costs () =
  let t =
    {
      queue = Bqueue.create ();
      owner;
      costs;
      faults;
      name;
      sent = 0;
      received = 0;
    }
  in
  (match name with
  | None -> ()
  | Some name ->
      Engine.register_probe (Core_res.engine owner) ~name (fun () ->
          Bqueue.length t.queue));
  t

let owner t = t.owner

let sink t = Engine.sink (Core_res.engine t.owner)

(* Named mailboxes publish their depth as a Perfetto counter track on the
   owner's core whenever it changes. *)
let depth_counter t =
  match (sink t, t.name) with
  | Some tr, Some name ->
      Trace.counter tr ~name:("mb:" ^ name)
        ~track:(Core_res.id t.owner)
        ~ts:(Engine.now (Core_res.engine t.owner))
        ~value:(Bqueue.length t.queue)
  | _ -> ()

let fault_instant t verdict ~span =
  match sink t with
  | None -> ()
  | Some tr ->
      Trace.instant tr ~name:("fault:" ^ verdict)
        ~track:(Core_res.id t.owner)
        ~ts:(Engine.now (Core_res.engine t.owner))
        ~args:(if span <> 0 then [ ("span", string_of_int span) ] else [])
        ()

let enqueue t msg =
  Bqueue.push t.queue msg;
  t.sent <- t.sent + 1;
  depth_counter t

let send t ~from ?(payload_lines = 0) ?(unreliable = false) ?(span = 0) msg =
  let cost = t.costs.send + (payload_lines * t.costs.msg_per_line) in
  let cost =
    if Core_res.socket from <> Core_res.socket t.owner then
      cost + t.costs.send_cross_socket
    else cost
  in
  (match sink t with
  | Some tr ->
      Trace.set_pending tr ~fid:(Engine.fiber_id (Engine.self ())) [ (Trace.Send, cost) ]
  | None -> ());
  Core_res.compute from cost;
  match t.faults with
  | None ->
      (* Atomic delivery: the enqueue happens before send returns. *)
      enqueue t msg
  | Some link ->
      let module I = Hare_fault.Injector in
      if I.down link && unreliable then begin
        I.note_blackholed link;
        fault_instant t "blackhole" ~span
      end
      else begin
        let engine = Core_res.engine t.owner in
        let now = Engine.now engine in
        (* A stalled link holds deliveries until the stall lifts; FIFO
           order among held messages follows from event-seq ordering. *)
        let floor =
          let s = I.stalled_until link in
          if s > now then Some s else None
        in
        let deliver_at = function
          | None -> enqueue t msg
          | Some time -> Engine.schedule_at engine time (fun () -> enqueue t msg)
        in
        match I.on_send link ~unreliable with
        | I.Drop -> fault_instant t "drop" ~span
        | I.Deliver -> deliver_at floor
        | I.Duplicate ->
            fault_instant t "dup" ~span;
            deliver_at floor;
            deliver_at floor
        | I.Delay extra ->
            fault_instant t "delay" ~span;
            let base = match floor with Some s -> s | None -> now in
            deliver_at (Some (Int64.add base extra))
      end

let recv t =
  let msg = Bqueue.pop t.queue in
  t.received <- t.received + 1;
  depth_counter t;
  Core_res.compute t.owner t.costs.recv;
  msg

(* Batch drain: block for the first message, then take whatever else is
   already queued, up to [max]. Only the first message's receive cost is
   charged here (the wakeup); the caller charges the rest one by one as
   it handles them ({!charge_recv}), so the k-th reply's latency is no
   worse than if the messages had been received individually — the
   batch's gain is sharing the context switch and dispatch preamble, not
   reordering costs. With [max = 1] the cost sequence is exactly
   {!recv}'s. *)
let recv_many t ~max =
  let first = Bqueue.pop t.queue in
  t.received <- t.received + 1;
  let rec extra acc n =
    if n >= max then List.rev acc
    else
      match Bqueue.pop_nonblocking t.queue with
      | None -> List.rev acc
      | Some msg ->
          t.received <- t.received + 1;
          extra (msg :: acc) (n + 1)
  in
  let msgs = first :: extra [] 1 in
  depth_counter t;
  Core_res.compute t.owner t.costs.recv;
  msgs

(* Messages past the first in a batch were already sitting in the queue
   when the server woke: they pay the dequeue/decode copy but not the
   notification-and-wakeup path bundled into [recv]. *)
let charge_recv t = Core_res.compute t.owner t.costs.recv_ready

let poll t =
  match Bqueue.pop_nonblocking t.queue with
  | None -> None
  | Some msg ->
      t.received <- t.received + 1;
      depth_counter t;
      Core_res.compute t.owner t.costs.recv;
      Some msg

let drain t =
  let rec go acc =
    match Bqueue.pop_nonblocking t.queue with
    | None -> List.rev acc
    | Some msg -> go (msg :: acc)
  in
  let msgs = go [] in
  depth_counter t;
  msgs

let pending t = Bqueue.length t.queue

let sent t = t.sent

let received t = t.received
