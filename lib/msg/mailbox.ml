open Hare_sim

type 'a t = {
  queue : 'a Bqueue.t;
  owner : Core_res.t;
  costs : Hare_config.Costs.t;
  faults : Hare_fault.Injector.link option;
  mutable sent : int;
  mutable received : int;
}

let create ?name ?faults ~owner ~costs () =
  let t =
    { queue = Bqueue.create (); owner; costs; faults; sent = 0; received = 0 }
  in
  (match name with
  | None -> ()
  | Some name ->
      Engine.register_probe (Core_res.engine owner) ~name (fun () ->
          Bqueue.length t.queue));
  t

let owner t = t.owner

let enqueue t msg =
  Bqueue.push t.queue msg;
  t.sent <- t.sent + 1

let send t ~from ?(payload_lines = 0) ?(unreliable = false) msg =
  let cost = t.costs.send + (payload_lines * t.costs.msg_per_line) in
  let cost =
    if Core_res.socket from <> Core_res.socket t.owner then
      cost + t.costs.send_cross_socket
    else cost
  in
  Core_res.compute from cost;
  match t.faults with
  | None ->
      (* Atomic delivery: the enqueue happens before send returns. *)
      enqueue t msg
  | Some link ->
      let module I = Hare_fault.Injector in
      if I.down link && unreliable then I.note_blackholed link
      else begin
        let engine = Core_res.engine t.owner in
        let now = Engine.now engine in
        (* A stalled link holds deliveries until the stall lifts; FIFO
           order among held messages follows from event-seq ordering. *)
        let floor =
          let s = I.stalled_until link in
          if s > now then Some s else None
        in
        let deliver_at = function
          | None -> enqueue t msg
          | Some time -> Engine.schedule_at engine time (fun () -> enqueue t msg)
        in
        match I.on_send link ~unreliable with
        | I.Drop -> ()
        | I.Deliver -> deliver_at floor
        | I.Duplicate ->
            deliver_at floor;
            deliver_at floor
        | I.Delay extra ->
            let base = match floor with Some s -> s | None -> now in
            deliver_at (Some (Int64.add base extra))
      end

let recv t =
  let msg = Bqueue.pop t.queue in
  t.received <- t.received + 1;
  Core_res.compute t.owner t.costs.recv;
  msg

(* Batch drain: block for the first message, then take whatever else is
   already queued, up to [max]. Only the first message's receive cost is
   charged here (the wakeup); the caller charges the rest one by one as
   it handles them ({!charge_recv}), so the k-th reply's latency is no
   worse than if the messages had been received individually — the
   batch's gain is sharing the context switch and dispatch preamble, not
   reordering costs. With [max = 1] the cost sequence is exactly
   {!recv}'s. *)
let recv_many t ~max =
  let first = Bqueue.pop t.queue in
  t.received <- t.received + 1;
  let rec extra acc n =
    if n >= max then List.rev acc
    else
      match Bqueue.pop_nonblocking t.queue with
      | None -> List.rev acc
      | Some msg ->
          t.received <- t.received + 1;
          extra (msg :: acc) (n + 1)
  in
  let msgs = first :: extra [] 1 in
  Core_res.compute t.owner t.costs.recv;
  msgs

(* Messages past the first in a batch were already sitting in the queue
   when the server woke: they pay the dequeue/decode copy but not the
   notification-and-wakeup path bundled into [recv]. *)
let charge_recv t = Core_res.compute t.owner t.costs.recv_ready

let poll t =
  match Bqueue.pop_nonblocking t.queue with
  | None -> None
  | Some msg ->
      t.received <- t.received + 1;
      Core_res.compute t.owner t.costs.recv;
      Some msg

let drain t =
  let rec go acc =
    match Bqueue.pop_nonblocking t.queue with
    | None -> List.rev acc
    | Some msg -> go (msg :: acc)
  in
  go []

let pending t = Bqueue.length t.queue

let sent t = t.sent

let received t = t.received
