open Hare_sim
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

type 'a t = {
  queue : 'a Bqueue.t;
  owner : Core_res.t;
  costs : Hare_config.Costs.t;
  faults : Hare_fault.Injector.link option;
  name : string option;
  chan : int;
      (* sanitizer stamp-FIFO id mirroring [queue]; -1 = checking off *)
  uid : int;
      (* engine shared-object uid: the schedule explorer's footprint
         identity for this mailbox (delivery/dequeue conflicts) *)
  mutable sent : int;
  mutable received : int;
  mutable flow_blocked : int;
      (* sends that had to wait for a credit (bounded mailbox full) *)
  mutable probe : int;
      (* engine probe slot for the depth probe; -1 = unnamed/unwatched *)
}

let create ?name ?capacity ?faults ~owner ~costs () =
  let chan =
    match Engine.checker (Core_res.engine owner) with
    | Some chk -> Check.new_chan chk
    | None -> -1
  in
  (match capacity with
  | Some c when c <= 0 ->
      invalid_arg "Mailbox.create: capacity must be positive"
  | _ -> ());
  let t =
    {
      queue = Bqueue.create ?capacity ();
      owner;
      costs;
      faults;
      name;
      chan;
      uid = Engine.new_object (Core_res.engine owner);
      sent = 0;
      received = 0;
      flow_blocked = 0;
      probe = -1;
    }
  in
  (match name with
  | None -> ()
  | Some name ->
      t.probe <-
        Engine.register_probe (Core_res.engine owner) ~name (fun () ->
            Bqueue.length t.queue));
  t

let owner t = t.owner

let uid t = t.uid

(* Crashed endpoints stop advertising their depth: a dead server's
   mailbox in a deadlock report is noise, and the engine should not scan
   it forever. [rewatch] re-registers on restart. Both are idempotent. *)
let unwatch t =
  if t.probe >= 0 then begin
    Engine.unregister_probe (Core_res.engine t.owner) t.probe;
    t.probe <- -1
  end

let rewatch t =
  match t.name with
  | Some name when t.probe < 0 ->
      t.probe <-
        Engine.register_probe (Core_res.engine t.owner) ~name (fun () ->
            Bqueue.length t.queue)
  | _ -> ()

let sink t = Engine.sink (Core_res.engine t.owner)

let checker t = Engine.checker (Core_res.engine t.owner)

(* Join the stamp matching the message just popped from the queue. The
   stamp FIFO evolves in lockstep with the real queue (pushed exactly
   where the message enters it), so a plain pop realigns. *)
let note_recv t =
  Engine.note_mailbox (Core_res.engine t.owner) t.uid;
  if t.chan >= 0 then
    match checker t with
    | Some chk -> Check.chan_pop chk ~chan:t.chan ~core:(Core_res.id t.owner)
    | None -> ()

(* Named mailboxes publish their depth as a Perfetto counter track on the
   owner's core whenever it changes. *)
let depth_counter t =
  match (sink t, t.name) with
  | Some tr, Some name ->
      Trace.counter tr ~name:("mb:" ^ name)
        ~track:(Core_res.id t.owner)
        ~ts:(Engine.now (Core_res.engine t.owner))
        ~value:(Bqueue.length t.queue)
  | _ -> ()

let fault_instant t verdict ~span =
  match sink t with
  | None -> ()
  | Some tr ->
      Trace.instant tr ~name:("fault:" ^ verdict)
        ~track:(Core_res.id t.owner)
        ~ts:(Engine.now (Core_res.engine t.owner))
        ~args:(if span <> 0 then [ ("span", string_of_int span) ] else [])
        ()

(* Admission (the credit) was secured in {!send}; the enqueue itself
   never blocks, so it is safe inside the fault injector's scheduler
   callbacks, and a duplicate verdict's second copy rides the same
   credit (bounded overshoot, like a retransmission on a real wire). *)
let enqueue t ?stamp msg =
  Engine.note_mailbox (Core_res.engine t.owner) t.uid;
  Bqueue.push_overflow t.queue msg;
  (match stamp with
  | Some s when t.chan >= 0 -> (
      match checker t with
      | Some chk -> Check.chan_push chk ~chan:t.chan s
      | None -> ())
  | _ -> ());
  t.sent <- t.sent + 1;
  depth_counter t

let send t ~from ?(payload_lines = 0) ?(unreliable = false) ?(span = 0) msg =
  (* Happens-before edge: snapshot the sender's clock now; the snapshot
     enters the stamp FIFO wherever the fault dice let the message enter
     the real queue (dropped message = no push, duplicate = two). *)
  let stamp =
    if t.chan >= 0 then
      match checker t with
      | Some chk -> Some (Check.msg_stamp chk ~core:(Core_res.id from))
      | None -> None
    else None
  in
  let cost = t.costs.send + (payload_lines * t.costs.msg_per_line) in
  let cost =
    if Core_res.socket from <> Core_res.socket t.owner then
      cost + t.costs.send_cross_socket
    else cost
  in
  (match sink t with
  | Some tr ->
      Trace.set_pending tr
        ~fid:(Engine.current_fid (Core_res.engine from))
        [ (Trace.Send, cost) ]
  | None -> ());
  Core_res.compute from cost;
  (* Credit-based flow control (PR 6): a bounded mailbox admits a
     message only when a queue slot is free. The sender parks here, at
     send time, until the owner drains — backpressure instead of
     unbounded queue growth. Unbounded mailboxes (the default) never
     enter this branch. *)
  if Bqueue.is_full t.queue then begin
    t.flow_blocked <- t.flow_blocked + 1;
    (match sink t with
    | Some tr ->
        Trace.instant tr ~name:"flow-block" ~track:(Core_res.id from)
          ~ts:(Engine.now (Core_res.engine from))
          ~args:
            (match t.name with
            | Some n -> [ ("mailbox", n) ]
            | None -> [])
          ()
    | None -> ());
    Bqueue.wait_not_full t.queue
  end;
  match t.faults with
  | None ->
      (* Atomic delivery: the enqueue happens before send returns. *)
      enqueue t ?stamp msg
  | Some link ->
      let module I = Hare_fault.Injector in
      if I.down link && unreliable then begin
        I.note_blackholed link;
        fault_instant t "blackhole" ~span
      end
      else begin
        let engine = Core_res.engine t.owner in
        let now = Engine.now engine in
        (* A stalled link holds deliveries until the stall lifts; FIFO
           order among held messages follows from event-seq ordering. *)
        let floor =
          let s = I.stalled_until link in
          if s > now then Some s else None
        in
        let deliver_at = function
          | None -> enqueue t ?stamp msg
          | Some time ->
              Engine.schedule_at engine
                ~tag:(Engine.tag_deliver t.uid)
                time
                (fun () -> enqueue t ?stamp msg)
        in
        match I.on_send link ~unreliable with
        | I.Drop -> fault_instant t "drop" ~span
        | I.Deliver -> deliver_at floor
        | I.Duplicate ->
            fault_instant t "dup" ~span;
            deliver_at floor;
            deliver_at floor
        | I.Delay extra ->
            fault_instant t "delay" ~span;
            let base = match floor with Some s -> s | None -> now in
            deliver_at (Some (Int64.add base extra))
      end

let recv t =
  let msg = Bqueue.pop t.queue in
  note_recv t;
  t.received <- t.received + 1;
  depth_counter t;
  Core_res.compute t.owner t.costs.recv;
  msg

(* Batch drain: block for the first message, then take whatever else is
   already queued, up to [max]. Only the first message's receive cost is
   charged here (the wakeup); the caller charges the rest one by one as
   it handles them ({!charge_recv}), so the k-th reply's latency is no
   worse than if the messages had been received individually — the
   batch's gain is sharing the context switch and dispatch preamble, not
   reordering costs. With [max = 1] the cost sequence is exactly
   {!recv}'s. *)
let recv_many t ~max =
  let first = Bqueue.pop t.queue in
  note_recv t;
  t.received <- t.received + 1;
  let rec extra acc n =
    if n >= max then List.rev acc
    else
      match Bqueue.pop_nonblocking t.queue with
      | None -> List.rev acc
      | Some msg ->
          note_recv t;
          t.received <- t.received + 1;
          extra (msg :: acc) (n + 1)
  in
  let msgs = first :: extra [] 1 in
  depth_counter t;
  Core_res.compute t.owner t.costs.recv;
  msgs

(* Messages past the first in a batch were already sitting in the queue
   when the server woke: they pay the dequeue/decode copy but not the
   notification-and-wakeup path bundled into [recv]. *)
let charge_recv t = Core_res.compute t.owner t.costs.recv_ready

let poll t =
  match Bqueue.pop_nonblocking t.queue with
  | None -> None
  | Some msg ->
      note_recv t;
      t.received <- t.received + 1;
      depth_counter t;
      Core_res.compute t.owner t.costs.recv;
      Some msg

let drain t =
  let rec go acc =
    match Bqueue.pop_nonblocking t.queue with
    | None -> List.rev acc
    | Some msg ->
        note_recv t;
        go (msg :: acc)
  in
  let msgs = go [] in
  depth_counter t;
  msgs

let pending t = Bqueue.length t.queue

let sent t = t.sent

let flow_blocked t = t.flow_blocked

let reset_flow t = t.flow_blocked <- 0

let received t = t.received
