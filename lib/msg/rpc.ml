open Hare_sim
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

type meta = {
  m_client : int;
  m_seq : int;
  m_ack : int;
      (* the client's completed low-water mark: every seq <= m_ack has
         its final outcome and will never be retransmitted, so servers
         may purge those dedup entries (bounded idempotency memory) *)
}

type ('req, 'resp) envelope = {
  body : 'req;
  reply_ivar : 'resp Ivar.t;
  meta : meta option;
  span : int; (* requesting trace span; 0 = untraced *)
  deadline : int64; (* absolute expiry on the simulated clock; 0 = none *)
  prio : int; (* shed class: 0 metadata, 1 data, 2 background *)
}

type ('req, 'resp) t = {
  mailbox : ('req, 'resp) envelope Mailbox.t;
  costs : Hare_config.Costs.t;
  mutable peak : int; (* deepest queue observed at send time (host-side) *)
}

let endpoint ?name ?capacity ?faults ~owner ~costs () =
  {
    mailbox = Mailbox.create ?name ?capacity ?faults ~owner ~costs ();
    costs;
    peak = 0;
  }

let owner t = Mailbox.owner t.mailbox

let unwatch t = Mailbox.unwatch t.mailbox

let rewatch t = Mailbox.rewatch t.mailbox

let sink core = Engine.sink (Core_res.engine core)

(* Trace-path fiber id: an O(1) engine field read, not a [Self] effect
   round trip — these sites fire on every traced RPC. *)
let fid core = Engine.current_fid (Core_res.engine core)

(* Sanitizer reply edge: the responder stamps the ivar just before
   filling it ({!reply_fn}); readers join the stamp into their core's
   clock once the value is in hand. Exposed for the client's deferred
   fast path, which reads filled ivars without going through {!await}. *)
let note_reply ~from future =
  match Engine.checker (Core_res.engine from) with
  | Some chk -> (
      match Ivar.stamp future with
      | Some s -> Check.join chk ~core:(Core_res.id from) s
      | None -> ())
  | None -> ()

let call_async_sp t ~from ?payload_lines ?meta ?(abs_deadline = 0L)
    ?(prio = 0) req =
  (* Allocate a span id so the server-side work for this request can be
     tied back to the caller's open syscall span. *)
  let span = match sink from with Some tr -> Trace.next_span tr | None -> 0 in
  let reply = Ivar.create () in
  (* Only meta-tagged (retryable) requests are fair game for the fault
     injector; everything else keeps the atomic-delivery guarantee. *)
  let unreliable = meta <> None in
  Mailbox.send t.mailbox ~from ?payload_lines ~unreliable ~span
    { body = req; reply_ivar = reply; meta; span; deadline = abs_deadline; prio };
  let depth = Mailbox.pending t.mailbox in
  if depth > t.peak then t.peak <- depth;
  (reply, span)

let call_async t ~from ?payload_lines ?meta req =
  fst (call_async_sp t ~from ?payload_lines ?meta req)

(* Record how long the fiber was parked on the reply and attribute that
   wait from the server-recorded breakdown for [span] (Trace.on_blocked);
   then decompose the reply-receive charge as Send. *)
let await ~from ~costs ?(span = 0) future =
  let resp =
    match sink from with
    | None -> Ivar.read future
    | Some tr ->
        let engine = Core_res.engine from in
        let b0 = Engine.now engine in
        let resp = Ivar.read future in
        Trace.on_blocked tr ~fid:(fid from) ~span
          ~elapsed:(Int64.to_int (Int64.sub (Engine.now engine) b0));
        Trace.set_pending tr ~fid:(fid from)
          [ (Trace.Send, costs.Hare_config.Costs.recv) ];
        resp
  in
  note_reply ~from future;
  Core_res.compute from costs.Hare_config.Costs.recv;
  resp

let await_deadline ~engine ~from ~costs ~deadline ?(span = 0) future =
  let b0 = Engine.now engine in
  match Ivar.read_deadline future ~engine ~cycles:deadline with
  | Some resp ->
      (match sink from with
      | Some tr ->
          Trace.on_blocked tr ~fid:(fid from) ~span
            ~elapsed:(Int64.to_int (Int64.sub (Engine.now engine) b0));
          Trace.set_pending tr ~fid:(fid from)
            [ (Trace.Send, costs.Hare_config.Costs.recv) ]
      | None -> ());
      note_reply ~from future;
      Core_res.compute from costs.Hare_config.Costs.recv;
      Ok resp
  | None ->
      (match sink from with
      | Some tr ->
          (* Timed out: nothing came back, the whole wait is queueing. *)
          Trace.on_blocked tr ~fid:(fid from) ~span:0
            ~elapsed:(Int64.to_int (Int64.sub (Engine.now engine) b0))
      | None -> ());
      Error `Timeout

let call t ~from ?payload_lines req =
  let future, span = call_async_sp t ~from ?payload_lines req in
  await ~from ~costs:t.costs ~span future

let call_deadline t ~engine ~from ?payload_lines ~meta ~deadline
    ?abs_deadline ?prio req =
  let future, span =
    call_async_sp t ~from ?payload_lines ~meta ?abs_deadline ?prio req
  in
  await_deadline ~engine ~from ~costs:t.costs ~deadline ~span future

let reply_fn t env ?(payload_lines = 0) resp =
  (* The response is a message from the endpoint's core back to the
     caller; the responder pays the send cost. *)
  let owner = Mailbox.owner t.mailbox in
  let cost =
    t.costs.Hare_config.Costs.send
    + (payload_lines * t.costs.Hare_config.Costs.msg_per_line)
  in
  (match sink owner with
  | Some tr -> Trace.set_pending tr ~fid:(fid owner) [ (Trace.Send, cost) ]
  | None -> ());
  Core_res.compute owner cost;
  match env.meta with
  | Some _ when Ivar.is_filled env.reply_ivar ->
      (* A duplicated copy of a request we already answered; the caller
         has its response, so this fill would be a double-assignment. *)
      ()
  | _ ->
      (match Engine.checker (Core_res.engine owner) with
      | Some chk ->
          Ivar.set_stamp env.reply_ivar
            (Check.msg_stamp chk ~core:(Core_res.id owner))
      | None -> ());
      Ivar.fill env.reply_ivar resp

let recv_full t =
  let env = Mailbox.recv t.mailbox in
  ( env.body,
    (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
    env.meta,
    env.span,
    env.deadline,
    env.prio )

let recv_batch_full t ~max =
  Mailbox.recv_many t.mailbox ~max
  |> List.map (fun env ->
         ( env.body,
           (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
           env.meta,
           env.span,
           env.deadline,
           env.prio ))

let charge_recv t = Mailbox.charge_recv t.mailbox

let recv t =
  let req, reply, _meta, _span, _deadline, _prio = recv_full t in
  (req, reply)

let poll t =
  match Mailbox.poll t.mailbox with
  | None -> None
  | Some env ->
      Some
        (env.body, fun ?payload_lines resp -> reply_fn t env ?payload_lines resp)

let drain_pending t =
  Mailbox.drain t.mailbox
  |> List.map (fun env ->
         ( env.body,
           (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
           env.meta,
           env.span,
           env.deadline,
           env.prio ))

let pending t = Mailbox.pending t.mailbox

let peak_pending t = t.peak

let reset_peak t = t.peak <- 0

let flow_blocked t = Mailbox.flow_blocked t.mailbox

let reset_flow t = Mailbox.reset_flow t.mailbox
