open Hare_sim

type meta = { m_client : int; m_seq : int }

type ('req, 'resp) envelope = {
  body : 'req;
  reply_ivar : 'resp Ivar.t;
  meta : meta option;
}

type ('req, 'resp) t = {
  mailbox : ('req, 'resp) envelope Mailbox.t;
  costs : Hare_config.Costs.t;
}

let endpoint ?name ?faults ~owner ~costs () =
  { mailbox = Mailbox.create ?name ?faults ~owner ~costs (); costs }

let owner t = Mailbox.owner t.mailbox

let call_async t ~from ?payload_lines ?meta req =
  let reply = Ivar.create () in
  (* Only meta-tagged (retryable) requests are fair game for the fault
     injector; everything else keeps the atomic-delivery guarantee. *)
  let unreliable = meta <> None in
  Mailbox.send t.mailbox ~from ?payload_lines ~unreliable
    { body = req; reply_ivar = reply; meta };
  reply

let await ~from ~costs future =
  let resp = Ivar.read future in
  Core_res.compute from costs.Hare_config.Costs.recv;
  resp

let await_deadline ~engine ~from ~costs ~deadline future =
  match Ivar.read_deadline future ~engine ~cycles:deadline with
  | Some resp ->
      Core_res.compute from costs.Hare_config.Costs.recv;
      Ok resp
  | None -> Error `Timeout

let call t ~from ?payload_lines req =
  await ~from ~costs:t.costs (call_async t ~from ?payload_lines req)

let call_deadline t ~engine ~from ?payload_lines ~meta ~deadline req =
  await_deadline ~engine ~from ~costs:t.costs ~deadline
    (call_async t ~from ?payload_lines ~meta req)

let reply_fn t env ?(payload_lines = 0) resp =
  (* The response is a message from the endpoint's core back to the
     caller; the responder pays the send cost. *)
  Core_res.compute (Mailbox.owner t.mailbox)
    (t.costs.Hare_config.Costs.send
    + (payload_lines * t.costs.Hare_config.Costs.msg_per_line));
  match env.meta with
  | Some _ when Ivar.is_filled env.reply_ivar ->
      (* A duplicated copy of a request we already answered; the caller
         has its response, so this fill would be a double-assignment. *)
      ()
  | _ -> Ivar.fill env.reply_ivar resp

let recv_full t =
  let env = Mailbox.recv t.mailbox in
  ( env.body,
    (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
    env.meta )

let recv_batch_full t ~max =
  Mailbox.recv_many t.mailbox ~max
  |> List.map (fun env ->
         ( env.body,
           (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
           env.meta ))

let charge_recv t = Mailbox.charge_recv t.mailbox

let recv t =
  let req, reply, _meta = recv_full t in
  (req, reply)

let poll t =
  match Mailbox.poll t.mailbox with
  | None -> None
  | Some env ->
      Some
        (env.body, fun ?payload_lines resp -> reply_fn t env ?payload_lines resp)

let drain_pending t =
  Mailbox.drain t.mailbox
  |> List.map (fun env ->
         ( env.body,
           (fun ?payload_lines resp -> reply_fn t env ?payload_lines resp),
           env.meta ))

let pending t = Mailbox.pending t.mailbox
