(** Per-server partition of the shared buffer cache (§3.2).

    Each file server owns a contiguous range of DRAM blocks and allocates
    them to its files; when a server runs out it reports [None] (block
    stealing between servers is not implemented, as in the paper's
    prototype). *)

type t

val create : first:int -> count:int -> t

val first : t -> int

val count : t -> int

val available : t -> int

(** [alloc t] takes one free block. *)
val alloc : t -> int option

(** [alloc_many t n] takes [n] blocks, all-or-nothing. *)
val alloc_many : t -> int -> int array option

val free : t -> int -> unit

val free_many : t -> int array -> unit

(** [owns t block] tests partition membership (including adopted
    blocks). *)
val owns : t -> int -> bool

(** [donate t n] removes up to [n] free blocks from this partition so
    another server can adopt them (block stealing, §3.2). *)
val donate : t -> int -> int array

(** [adopt t blocks] adds blocks stolen from another partition to this
    server's free list; they remain addressable (same DRAM), and this
    server now owns them. *)
val adopt : t -> int array -> unit

(** [export t blocks] relinquishes in-use blocks to another server
    (shard migration): they leave this partition's allocated set without
    entering its free list, and in-range exported blocks are excluded
    from [owns] and from crash [rebuild] until re-adopted. The data
    itself never moves — only ownership does. *)
val export : t -> int array -> unit

(** [adopt_allocated t blocks] takes ownership of blocks that are
    already backing a migrated inode: they become owned {e and}
    allocated here (unlike {!adopt}, which receives free blocks). *)
val adopt_allocated : t -> int array -> unit

(** [rebuild t ~live] reconstructs the free list after a crash: every
    block of the partition not in [live] (the set referenced by surviving
    inodes) becomes free again. Returns the number of previously-allocated
    blocks that were reclaimed. *)
val rebuild : t -> live:(int, unit) Hashtbl.t -> int
