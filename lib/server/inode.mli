(** Server-side inode records.

    An inode is owned by exactly one server and only ever touched by that
    server's dispatch loop — Hare's metadata is partitioned, not shared
    (§3.1). The record tracks what §3.2/§3.4 require: the block list, the
    link count, the count of open fd tokens, the unlinked flag (files
    stay readable through open descriptors after unlink), and orphaned
    blocks whose reuse is deferred until the last descriptor closes. *)

type t = {
  lid : int;  (** per-home inode number. *)
  home : int;
      (** the {e logical} home this inode belongs to — its global id is
          [{ server = home; ino = lid }] forever, even when shard
          migration moves the record to another physical server. Under
          static placements this is simply the owning server's id. *)
  ftype : Hare_proto.Types.ftype;
  dist : bool;  (** directories: distributed entries (immutable). *)
  mutable size : int;
  mutable nlink : int;
  mutable blocks : int array;
  mutable open_tokens : int;
  mutable unlinked : bool;
  mutable orphans : int array;  (** truncated blocks awaiting last close. *)
  pipe : Pipe_state.t option;
}

val file : lid:int -> home:int -> t

val dir : lid:int -> home:int -> dist:bool -> t

val fifo : lid:int -> home:int -> capacity:int -> t

(** [blocks_for ~size] is the number of blocks needed to back [size]
    bytes. *)
val blocks_for : size:int -> int

val attr : t -> Hare_proto.Types.attr
