type t = {
  lid : int;
  home : int;
  ftype : Hare_proto.Types.ftype;
  dist : bool;
  mutable size : int;
  mutable nlink : int;
  mutable blocks : int array;
  mutable open_tokens : int;
  mutable unlinked : bool;
  mutable orphans : int array;
  pipe : Pipe_state.t option;
}

let make ~lid ~home ~ftype ~dist ~pipe =
  {
    lid;
    home;
    ftype;
    dist;
    size = 0;
    nlink = 1;
    blocks = [||];
    open_tokens = 0;
    unlinked = false;
    orphans = [||];
    pipe;
  }

let file ~lid ~home =
  make ~lid ~home ~ftype:Hare_proto.Types.Reg ~dist:false ~pipe:None

let dir ~lid ~home ~dist =
  make ~lid ~home ~ftype:Hare_proto.Types.Dir ~dist ~pipe:None

let fifo ~lid ~home ~capacity =
  make ~lid ~home ~ftype:Hare_proto.Types.Fifo ~dist:false
    ~pipe:(Some (Pipe_state.create ~capacity))

let blocks_for ~size =
  if size <= 0 then 0
  else ((size - 1) / Hare_mem.Layout.block_size) + 1

let attr t =
  Hare_proto.Types.
    {
      a_ino = { server = t.home; ino = t.lid };
      a_ftype = t.ftype;
      a_size = t.size;
      a_nlink = t.nlink;
      a_dist = t.dist;
    }
