type t = {
  capacity : int;
  chunks : string Queue.t;
  mutable head_off : int; (* consumed prefix of the head chunk *)
  mutable buffered : int;
  mutable readers : int;
  mutable writers : int;
  parked_readers : (int * ((string, Hare_proto.Errno.t) result -> unit)) Queue.t;
  parked_writers : (string * ((int, Hare_proto.Errno.t) result -> unit)) Queue.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Pipe_state.create";
  {
    capacity;
    chunks = Queue.create ();
    head_off = 0;
    buffered = 0;
    readers = 0;
    writers = 0;
    parked_readers = Queue.create ();
    parked_writers = Queue.create ();
  }

let buffered t = t.buffered

let readers t = t.readers

let writers t = t.writers

let parked_readers t = Queue.length t.parked_readers

let parked_writers t = Queue.length t.parked_writers

let take t len =
  let out = Buffer.create (min len t.buffered) in
  let remaining = ref (min len t.buffered) in
  while !remaining > 0 do
    let head = Queue.peek t.chunks in
    let avail = String.length head - t.head_off in
    let n = min avail !remaining in
    Buffer.add_substring out head t.head_off n;
    remaining := !remaining - n;
    t.buffered <- t.buffered - n;
    if n = avail then begin
      ignore (Queue.pop t.chunks);
      t.head_off <- 0
    end
    else t.head_off <- t.head_off + n
  done;
  Buffer.contents out

(* Move data to parked readers and parked writers' data into the buffer
   until no further progress is possible. *)
let rec pump t =
  let progressed = ref false in
  (* Writers first: a reader parked on an empty pipe should see data that
     a parked writer can now provide. *)
  if
    (not (Queue.is_empty t.parked_writers))
    && (t.buffered < t.capacity || t.readers = 0)
  then begin
    let data, k = Queue.pop t.parked_writers in
    if t.readers = 0 then k (Error Hare_proto.Errno.EPIPE)
    else begin
      Queue.push data t.chunks;
      t.buffered <- t.buffered + String.length data;
      k (Ok (String.length data))
    end;
    progressed := true
  end;
  if
    (not (Queue.is_empty t.parked_readers))
    && (t.buffered > 0 || t.writers = 0)
  then begin
    let len, k = Queue.pop t.parked_readers in
    if t.buffered > 0 then k (Ok (take t len)) else k (Ok "") (* EOF *);
    progressed := true
  end;
  if !progressed then pump t

let add_reader t = t.readers <- t.readers + 1

let add_writer t = t.writers <- t.writers + 1

let close_reader t =
  if t.readers <= 0 then invalid_arg "Pipe_state.close_reader: no readers";
  t.readers <- t.readers - 1;
  if t.readers = 0 then pump t

let close_writer t =
  if t.writers <= 0 then invalid_arg "Pipe_state.close_writer: no writers";
  t.writers <- t.writers - 1;
  if t.writers = 0 then pump t

let read t ~len k =
  if len <= 0 then k (Ok "")
  else begin
    Queue.push (len, k) t.parked_readers;
    pump t
  end

let write t data k =
  if String.length data = 0 then k (Ok 0)
  else begin
    Queue.push (data, k) t.parked_writers;
    pump t
  end

let abort_parked t =
  let n = Queue.length t.parked_readers + Queue.length t.parked_writers in
  let readers = List.of_seq (Queue.to_seq t.parked_readers) in
  let writers = List.of_seq (Queue.to_seq t.parked_writers) in
  Queue.clear t.parked_readers;
  Queue.clear t.parked_writers;
  List.iter (fun (_, k) -> k (Error Hare_proto.Errno.EIO)) readers;
  List.iter (fun (_, k) -> k (Error Hare_proto.Errno.EIO)) writers;
  n
