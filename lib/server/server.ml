open Hare_sim
open Hare_proto
open Hare_proto.Types

let src = Logs.Src.create "hare.server" ~doc:"Hare file server"

module Log = (val Logs.src_log src : Logs.LOG)
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

type reply = ?payload_lines:int -> Wire.fs_resp -> unit

exception Out_of_blocks
(* Raised when the local buffer-cache partition is dry; the dispatch loop
   turns it into ENOSPC or, with the block-stealing extension enabled,
   parks the request and steals from a peer (§3.2). *)

(* Server-side open file descriptor state (§3.4): [refcount] counts the
   processes sharing the descriptor; [shared_offset] is present exactly
   while the descriptor is in "shared" state (offset lives here, all I/O
   goes through this server). *)
type ofd = {
  token : int;
  inode : Inode.t;
  mutable refcount : int;
  mutable shared_offset : int option;
  pipe_end : [ `R | `W ] option;
}

type mark = { parked : (Wire.fs_req * reply) Queue.t }

(* Idempotency memory (volatile): one entry per (client, seq). [Pending]
   collects reply slots of duplicate copies that arrive while the original
   is still executing or parked; [Done] caches the response for
   retransmissions. *)
type dedup_entry = Pending of reply list ref | Done of Wire.fs_resp

(* Per-client idempotency memory, bounded by the ack low-water mark the
   client rides on every tagged request: every seq at or below
   [de_pruned] has a final client-side outcome, can never be
   retransmitted, and has been evicted. *)
type dedup_client = {
  de_tbl : (int, dedup_entry) Hashtbl.t;
  mutable de_pruned : int;
}

type dirlock = { mutable held : bool; lock_waiters : reply Queue.t }

(* Shard-migration payload: the whole state of one logical home, moved
   between physical servers by reference (host-side values; the block
   contents never leave DRAM). Defined as a [Wire.pack] extension because
   it mentions server-internal types. *)
type Wire.pack +=
  | Pack of {
      p_inodes : (int * Inode.t) list; (* lid, record *)
      p_tokens : (int * ofd) list; (* namespaced token, ofd *)
      p_dirs : (ino * (string, Wire.entry_info) Hashtbl.t) list; (* dkey *)
      p_dead : ino list; (* tombstone dkeys *)
      p_blocks : int array; (* buffer-cache ownership to adopt *)
      p_next_lid : int;
      p_next_token : int;
      p_dedup : (int * int * Wire.fs_resp) list; (* client, seq, resp *)
    }

type t = {
  sid : int;
  engine : Engine.t;
  config : Hare_config.Config.t;
  costs : Hare_config.Costs.t;
  core : Core_res.t;
  pcache : Hare_mem.Pcache.t;
  dram : Hare_mem.Dram.t;
  blocks : Blocklist.t;
  endpoint : (Wire.fs_req, Wire.fs_resp) Hare_msg.Rpc.t;
  (* Consistent-hash sharding: [migratory] is true iff the machine has a
     ring-membership plan; only then do key namespacing, ownership checks
     and EMOVED rejections exist. [hosted] is the set of logical homes
     this physical server currently serves — one home per server (its own
     id) under every static placement. *)
  migratory : bool;
  hosted : (int, unit) Hashtbl.t;
  mutable homes_in : int; (* homes adopted via Install_shard *)
  mutable homes_out : int; (* homes packed via Migrate_out *)
  mutable moved_rejects : int; (* EMOVED replies sent *)
  (* keyed by [ikey]: the inode's lid, home-namespaced when migratory *)
  inodes : (int, Inode.t) Hashtbl.t;
  next_lids : (int, int) Hashtbl.t; (* per-home lid counters *)
  tokens : (int, ofd) Hashtbl.t;
  next_tokens : (int, int) Hashtbl.t; (* per-home token counters *)
  (* directory-entry shards: dkey -> name -> dentry *)
  dirs : (ino, (string, Wire.entry_info) Hashtbl.t) Hashtbl.t;
  (* invalidation tracking lists: dkey -> name -> client set *)
  tracking : (ino, (string, (int, unit) Hashtbl.t) Hashtbl.t) Hashtbl.t;
  marks : (ino, mark) Hashtbl.t;
  locks : (ino, dirlock) Hashtbl.t;
  (* tombstones: directories whose removal this server committed. A
     create can race past the mark window (looked up the parent before
     the removal, arrived after commit); shard servers cannot check the
     remote inode, so the tombstone refuses it. Inode ids are never
     reused, so a tombstone can live forever. *)
  dead_dirs : (ino, unit) Hashtbl.t;
  inval_ports : Wire.inval Hare_msg.Mailbox.t array;
  ops : Hare_stats.Opcount.t;
  perf : Hare_stats.Perf.t;
  mutable invals_sent : int;
  (* robustness: crash state, idempotency, counters *)
  faults : Hare_fault.Injector.link option;
  mutable down : bool;
  (* reliable messages that arrived while down; served after restart *)
  boot_queue :
    (Wire.fs_req * reply * Hare_msg.Rpc.meta option * int * int64 * int)
    Queue.t;
  dedup : (int, dedup_client) Hashtbl.t;
  robust : Hare_stats.Robust.t;
  (* block stealing (extension) *)
  mutable peers : (Wire.fs_req, Wire.fs_resp) Hare_msg.Rpc.t array;
  steal_parked : (Wire.fs_req * reply) Queue.t;
  mutable steal_inflight : bool;
  mutable steal_victim : int;
  mutable steal_failures : int;
  mutable blocks_stolen : int;
}

let bs = Hare_mem.Layout.block_size

let create ~engine ~config ~sid ~core ~pcache ~dram ~blocks_first ~blocks_count
    ~inval_ports ?place ?faults () =
  let migratory =
    match place with
    | Some p -> Hare_place.Place.migratory p
    | None -> false
  in
  let hosted = Hashtbl.create 4 in
  (* A spare server (physical id beyond the logical home space) boots
     hosting nothing; it acquires homes via Install_shard when its ring
     Add event fires. Everyone else starts as its own home. *)
  (match place with
  | Some p when migratory ->
      if sid < Hare_place.Place.nhomes p then Hashtbl.replace hosted sid ()
  | _ -> Hashtbl.replace hosted sid ());
  {
    sid;
    engine;
    config;
    costs = config.Hare_config.Config.costs;
    core;
    pcache;
    dram;
    blocks = Blocklist.create ~first:blocks_first ~count:blocks_count;
    endpoint =
      Hare_msg.Rpc.endpoint
        ~name:(Printf.sprintf "fs%d" sid)
        ?capacity:
          (if config.Hare_config.Config.mailbox_capacity > 0 then
             Some config.Hare_config.Config.mailbox_capacity
           else None)
        ?faults ~owner:core ~costs:config.Hare_config.Config.costs ();
    migratory;
    hosted;
    homes_in = 0;
    homes_out = 0;
    moved_rejects = 0;
    inodes = Hashtbl.create 1024;
    next_lids = Hashtbl.create 4;
    tokens = Hashtbl.create 256;
    next_tokens = Hashtbl.create 4;
    dirs = Hashtbl.create 256;
    tracking = Hashtbl.create 256;
    marks = Hashtbl.create 16;
    locks = Hashtbl.create 16;
    dead_dirs = Hashtbl.create 16;
    inval_ports;
    ops = Hare_stats.Opcount.create ();
    perf = Hare_stats.Perf.create ();
    invals_sent = 0;
    faults;
    down = false;
    boot_queue = Queue.create ();
    dedup = Hashtbl.create 16;
    robust = Hare_stats.Robust.create ();
    peers = [||];
    steal_parked = Queue.create ();
    steal_inflight = false;
    steal_victim = sid;
    steal_failures = 0;
    blocks_stolen = 0;
  }

let sid t = t.sid

let core t = t.core

let pcache t = t.pcache

let endpoint t = t.endpoint

let ops t = t.ops

let perf t = t.perf

let invals_sent t = t.invals_sent

let available_blocks t = Blocklist.available t.blocks

let inode_count t = Hashtbl.length t.inodes

let open_tokens t = Hashtbl.length t.tokens

let set_peers t peers = t.peers <- peers

let blocks_stolen t = t.blocks_stolen

let robust t = t.robust

let is_down t = t.down

(* ---------- home namespacing ------------------------------------------- *)

(* Under a migratory placement several logical homes can share one
   physical server, so every home-scoped key is namespaced by the home
   id. With a static ring membership the encodings are the identity:
   byte-for-byte the tables (and their iteration order) of the
   pre-sharding code. *)

let home_shift = 40
let home_mask = (1 lsl home_shift) - 1

(* inode-table key: the inode's lid, home-qualified when migratory *)
let ikey t ~home lid = if t.migratory then (home lsl home_shift) lor lid else lid

(* directory-table key: which home's shard of [dir] this is. The real
   directory ino is recoverable ({!dkey_dir}) for invalidation messages. *)
let dkey t ~home (dir : ino) =
  if t.migratory then
    { server = home; ino = (dir.server lsl home_shift) lor dir.ino }
  else dir

let dkey_dir t (key : ino) =
  if t.migratory then
    { server = key.ino lsr home_shift; ino = key.ino land home_mask }
  else key

let hosts t h = Hashtbl.mem t.hosted h

let hosted_homes t =
  Hashtbl.fold (fun h () acc -> h :: acc) t.hosted [] |> List.sort compare

let homes_migrated_in t = t.homes_in

let homes_migrated_out t = t.homes_out

let moved_rejects t = t.moved_rejects

let peak_queue t = Hare_msg.Rpc.peak_pending t.endpoint

let reset_peak_queue t = Hare_msg.Rpc.reset_peak t.endpoint

let queue_depth t = Hare_msg.Rpc.pending t.endpoint

(* ---------- inode and token helpers ----------------------------------- *)

let alloc_lid t ~home =
  let lid =
    match Hashtbl.find_opt t.next_lids home with Some n -> n | None -> 1
  in
  Hashtbl.replace t.next_lids home (lid + 1);
  lid

let register_inode t inode =
  Hashtbl.replace t.inodes
    (ikey t ~home:inode.Inode.home inode.Inode.lid)
    inode

let find_inode t (ino : ino) =
  if not (hosts t ino.server) then None
  else Hashtbl.find_opt t.inodes (ikey t ~home:ino.server ino.ino)

let global (inode : Inode.t) =
  { server = inode.Inode.home; ino = inode.Inode.lid }

let new_token t (inode : Inode.t) ~pipe_end =
  let home = inode.Inode.home in
  let k =
    match Hashtbl.find_opt t.next_tokens home with Some n -> n | None -> 1
  in
  Hashtbl.replace t.next_tokens home (k + 1);
  (* Namespaced so tokens minted by different homes never collide when
     the homes later share a physical server; the home is recoverable
     (token lsr shift) for the ownership check. *)
  let token = if t.migratory then (home lsl home_shift) lor k else k in
  let ofd = { token; inode; refcount = 1; shared_offset = None; pipe_end } in
  Hashtbl.replace t.tokens token ofd;
  inode.Inode.open_tokens <- inode.Inode.open_tokens + 1;
  ofd

let free_blocks t blocks = Blocklist.free_many t.blocks blocks

(* Deferred reuse (§3.2): orphaned and unlinked blocks return to the free
   list only once no descriptor can still address them. *)
let maybe_release t (inode : Inode.t) =
  if inode.open_tokens = 0 then begin
    if Array.length inode.orphans > 0 then begin
      free_blocks t inode.orphans;
      inode.orphans <- [||]
    end;
    if inode.unlinked && inode.nlink <= 0 then begin
      free_blocks t inode.blocks;
      inode.blocks <- [||];
      Hashtbl.remove t.inodes (ikey t ~home:inode.home inode.lid)
    end
  end

(* Allocate (zeroed) blocks so the file covers [size] bytes. Raises
   {!Out_of_blocks} — with no state mutated — when the partition is dry,
   so the whole request can be retried after stealing. *)
let ensure_blocks t (inode : Inode.t) ~size =
  let have = Array.length inode.blocks in
  let need = Inode.blocks_for ~size in
  if need > have then
    match Blocklist.alloc_many t.blocks (need - have) with
    | None -> raise Out_of_blocks
    | Some fresh ->
        Array.iter (fun b -> Hare_mem.Dram.zero_block t.dram ~block:b) fresh;
        inode.blocks <- Array.append inode.blocks fresh

(* Extent leases (alloc_extent > 1) die with the last descriptor: blocks
   allocated ahead of the file size return to the free list once no open
   token can address them. Inert at the paper-faithful extent of 1, where
   allocation never runs ahead of need. *)
let reclaim_lease t (inode : Inode.t) =
  if t.config.Hare_config.Config.alloc_extent > 1 && inode.ftype = Reg then begin
    let keep = Inode.blocks_for ~size:inode.size in
    let have = Array.length inode.blocks in
    if keep < have && inode.open_tokens = 0 then begin
      let excess = Array.sub inode.blocks keep (have - keep) in
      inode.blocks <- Array.sub inode.blocks 0 keep;
      free_blocks t excess
    end
  end

let do_truncate t (inode : Inode.t) ~size =
  if size < inode.size then begin
    let keep = Inode.blocks_for ~size in
    let have = Array.length inode.blocks in
    if keep < have then begin
      let excess = Array.sub inode.blocks keep (have - keep) in
      inode.blocks <- Array.sub inode.blocks 0 keep;
      if inode.open_tokens > 0 then
        inode.orphans <- Array.append inode.orphans excess
      else free_blocks t excess
    end;
    (* POSIX: bytes past the new size read back as zero if the file is
       later extended — scrub the kept block's tail. *)
    (if keep > 0 then
       let tail = size mod bs in
       if tail > 0 then
         Hare_mem.Dram.zero_range t.dram
           ~block:inode.blocks.(keep - 1)
           ~off:tail ~len:(bs - tail));
    inode.size <- size
  end
  else if size > inode.size then begin
    ensure_blocks t inode ~size;
    inode.size <- size
  end

(* ---------- server-mediated file data (shared fds, RPC-mode I/O) ------ *)

let read_data t (inode : Inode.t) ~off ~len =
  let len = max 0 (min len (inode.size - off)) in
  if len = 0 then ""
  else begin
    let out = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let foff = off + !pos in
      let bi = foff / bs and boff = foff mod bs in
      let n = min (len - !pos) (bs - boff) in
      Hare_mem.Pcache.read_coherent t.pcache ~block:inode.blocks.(bi)
        ~off:boff ~len:n ~dst:out ~dst_off:!pos;
      pos := !pos + n
    done;
    Bytes.unsafe_to_string out
  end

let write_data t (inode : Inode.t) ~off data =
  let len = String.length data in
  ensure_blocks t inode ~size:(off + len);
  let src = Bytes.unsafe_of_string data in
  let pos = ref 0 in
  while !pos < len do
    let foff = off + !pos in
    let bi = foff / bs and boff = foff mod bs in
    let n = min (len - !pos) (bs - boff) in
    Hare_mem.Pcache.write_coherent t.pcache ~block:inode.blocks.(bi)
      ~off:boff ~len:n ~src ~src_off:!pos;
    pos := !pos + n
  done;
  if off + len > inode.size then inode.size <- off + len;
  len

(* ---------- directory shards and invalidation ------------------------- *)

(* [key] below is always a [dkey]: the caller resolves the request's home
   once and threads the namespaced key through. *)

let shard t key =
  match Hashtbl.find_opt t.dirs key with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.dirs key s;
      s

let shard_entries t dir =
  let collect s acc =
    Hashtbl.fold
      (fun name (e : Wire.entry_info) acc -> (name, e.t_ino) :: acc)
      s acc
  in
  if not t.migratory then
    match Hashtbl.find_opt t.dirs dir with None -> [] | Some s -> collect s []
  else
    (* introspection path: gather this directory's shard across every
       home hosted here *)
    Hashtbl.fold
      (fun key s acc -> if dkey_dir t key = dir then collect s acc else acc)
      t.dirs []

let shard_size t key =
  match Hashtbl.find_opt t.dirs key with
  | None -> 0
  | Some s -> Hashtbl.length s

let dentry_count t =
  Hashtbl.fold (fun _ s n -> n + Hashtbl.length s) t.dirs 0

let track t ~key ~name ~client =
  let per_dir =
    match Hashtbl.find_opt t.tracking key with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 16 in
        Hashtbl.replace t.tracking key m;
        m
  in
  let clients =
    match Hashtbl.find_opt per_dir name with
    | Some c -> c
    | None ->
        let c = Hashtbl.create 4 in
        Hashtbl.replace per_dir name c;
        c
  in
  Hashtbl.replace clients client ()

(* AFS-style one-shot callbacks (§3.6.1): notify every tracked client but
   the originator, then forget them — a client re-registers by looking the
   name up again. Atomic message delivery means the server proceeds as
   soon as the sends return. *)
let send_invals t ~key ~dir ~name ~except =
  match Hashtbl.find_opt t.tracking key with
  | None -> ()
  | Some per_dir -> (
      match Hashtbl.find_opt per_dir name with
      | None -> ()
      | Some clients ->
          Hashtbl.iter
            (fun client () ->
              if client <> except then begin
                Hare_msg.Mailbox.send t.inval_ports.(client) ~from:t.core
                  (Wire.Inval_entry { i_dir = dir; i_name = name });
                (* Sanitizer obligation: the client must apply this
                   invalidation before its next dircache hit on the
                   entry (atomic delivery + drain-before-find make that
                   a protocol guarantee, not a timing accident). *)
                (match Engine.checker (Core_res.engine t.core) with
                | Some chk ->
                    Check.dircache_sent chk ~client ~server:dir.Types.server
                      ~ino:dir.Types.ino ~name
                | None -> ());
                t.invals_sent <- t.invals_sent + 1
              end)
            clients;
          Hashtbl.remove per_dir name)

let install_root t ~dist =
  assert (t.sid = root_ino.server);
  let inode = Inode.dir ~lid:root_ino.ino ~home:root_ino.server ~dist in
  register_inode t inode;
  let cur =
    match Hashtbl.find_opt t.next_lids root_ino.server with
    | Some n -> n
    | None -> 1
  in
  Hashtbl.replace t.next_lids root_ino.server (max cur (root_ino.ino + 1))

(* ---------- request handlers ------------------------------------------ *)

let op_cost (req : Wire.fs_req) =
  match req with
  | Wire.Lookup _ -> 200
  | Wire.Add_map _ -> 400
  | Wire.Rm_map _ -> 0
  | Wire.Readdir_shard _ -> 200
  | Wire.Create_open _ -> 900
  | Wire.Create_inode _ -> 500
  | Wire.Create_dir _ -> 800
  | Wire.Open_inode _ -> 400
  | Wire.Close_fd _ -> 200
  | Wire.Read_fd _ -> 300
  | Wire.Write_fd _ -> 300
  | Wire.Lseek_fd _ -> 100
  | Wire.Alloc_blocks { count; ahead; _ } -> 150 * max 1 (count + ahead)
  | Wire.Get_blocks _ -> 150
  | Wire.Update_size _ -> 100
  | Wire.Get_attr _ -> 150
  | Wire.Truncate _ -> 300
  | Wire.Unlink_ino _ -> 250
  | Wire.Link_ino _ -> 150
  | Wire.Inc_fd_ref _ -> 150
  | Wire.Rmdir_lock _ | Wire.Rmdir_unlock _ -> 150
  | Wire.Rmdir_prepare _ | Wire.Rmdir_commit _ | Wire.Rmdir_abort _ -> 250
  | Wire.Rmdir_local _ -> 400
  | Wire.Pipe_create _ -> 500
  | Wire.Pipe_read _ -> 200
  | Wire.Pipe_write _ -> 200
  | Wire.Steal_blocks _ -> 300
  | Wire.Migrate_out _ -> 800
  | Wire.Install_shard _ -> 800

let open_info (ofd : ofd) : Wire.open_info =
  {
    Wire.token = ofd.token;
    blocks = Array.copy ofd.inode.Inode.blocks;
    isize = ofd.inode.Inode.size;
  }

let do_open t (inode : Inode.t) ~trunc =
  if trunc then do_truncate t inode ~size:0;
  new_token t inode ~pipe_end:None

(* Demote a shared descriptor back to local state when only one process
   still holds it (§3.4): piggy-backed on the next operation's reply. *)
let demotion ofd =
  match ofd.shared_offset with
  | Some off when ofd.refcount <= 1 ->
      ofd.shared_offset <- None;
      Some off
  | _ -> None

let handle_lookup t ~home ~dir ~name ~client (reply : reply) =
  let key = dkey t ~home dir in
  match Hashtbl.find_opt t.dirs key with
  | None -> reply (Error Errno.ENOENT)
  | Some s -> (
      match Hashtbl.find_opt s name with
      | None -> reply (Error Errno.ENOENT)
      | Some e ->
          track t ~key ~name ~client;
          reply (Ok (Wire.P_lookup { target = e.t_ino; ftype = e.t_ftype; dist = e.t_dist })))

(* For a centralized directory the entries live with the inode, so we can
   (and must) refuse creations in a directory that no longer exists. For
   distributed directories this server may hold only a shard: the rmdir
   mark protocol delays concurrent creates, and the tombstone catches the
   ones that arrive after the commit. *)
let dir_alive t ~home (dir : ino) =
  (not (Hashtbl.mem t.dead_dirs (dkey t ~home dir)))
  && ((not (hosts t dir.server)) || find_inode t dir <> None)

let handle_add_map t ~home ~dir ~name ~target ~ftype ~dist ~replace ~client
    (reply : reply) =
  if not (dir_alive t ~home dir) then reply (Error Errno.ENOENT)
  else
  let key = dkey t ~home dir in
  let s = shard t key in
  let entry = { Wire.t_ino = target; t_ftype = ftype; t_dist = dist } in
  match Hashtbl.find_opt s name with
  | Some old ->
      if not replace then reply (Error Errno.EEXIST)
      else if old.t_ftype = Dir then
        (* Replacing a directory would require checking emptiness across
           all shards; not needed by any POSIX workload we run. *)
        reply (Error Errno.EISDIR)
      else if ftype = Dir then
        (* POSIX: renaming a directory over an existing file is ENOTDIR. *)
        reply (Error Errno.ENOTDIR)
      else begin
        Hashtbl.replace s name entry;
        send_invals t ~key ~dir ~name ~except:client;
        track t ~key ~name ~client;
        reply (Ok (Wire.P_removed { target = old.t_ino; ftype = old.t_ftype }))
      end
  | None ->
      Hashtbl.replace s name entry;
      track t ~key ~name ~client;
      reply (Ok Wire.P_unit)

let handle_rm_map t ~home ~dir ~name ~only_if ~client (reply : reply) =
  let key = dkey t ~home dir in
  match Hashtbl.find_opt t.dirs key with
  | None -> reply (Error Errno.ENOENT)
  | Some s -> (
      match Hashtbl.find_opt s name with
      | None -> reply (Error Errno.ENOENT)
      | Some e when
          (match only_if with Some ino -> e.t_ino <> ino | None -> false) ->
          (* the entry was re-bound by someone else: not ours to remove *)
          reply (Error Errno.ENOENT)
      | Some e ->
          Hashtbl.remove s name;
          send_invals t ~key ~dir ~name ~except:client;
          reply (Ok (Wire.P_removed { target = e.t_ino; ftype = e.t_ftype })))

let handle_readdir t ~home ~dir (reply : reply) =
  let entries =
    match Hashtbl.find_opt t.dirs (dkey t ~home dir) with
    | None -> []
    | Some s ->
        Hashtbl.fold
          (fun name (e : Wire.entry_info) acc ->
            { Wire.e_name = name; e_ino = e.t_ino; e_ftype = e.t_ftype } :: acc)
          s []
  in
  (* ~32 bytes of payload per entry. *)
  let payload_lines = (List.length entries / 2) + 1 in
  reply ~payload_lines (Ok (Wire.P_entries entries))

let handle_create_open t ~home ~dir ~name ~excl ~trunc ~client (reply : reply) =
  if not (dir_alive t ~home dir) then reply (Error Errno.ENOENT)
  else
  let key = dkey t ~home dir in
  let s = shard t key in
  match Hashtbl.find_opt s name with
  | Some e ->
      if excl then reply (Error Errno.EEXIST)
      else if e.t_ftype = Dir then reply (Error Errno.EISDIR)
      else if hosts t e.t_ino.server then begin
        match find_inode t e.t_ino with
        | None -> reply (Error Errno.ENOENT)
        | Some inode ->
            track t ~key ~name ~client;
            let ofd = do_open t inode ~trunc in
            reply (Ok (Wire.P_open_ino { oi = open_info ofd; ino = e.t_ino }))
      end
      else
        (* The existing inode lives elsewhere; tell the client where. *)
        reply
          (Ok (Wire.P_lookup { target = e.t_ino; ftype = e.t_ftype; dist = e.t_dist }))
  | None ->
      let inode = Inode.file ~lid:(alloc_lid t ~home) ~home in
      register_inode t inode;
      let ino = global inode in
      Hashtbl.replace s name { Wire.t_ino = ino; t_ftype = Reg; t_dist = false };
      track t ~key ~name ~client;
      let ofd = do_open t inode ~trunc:false in
      reply (Ok (Wire.P_open_ino { oi = open_info ofd; ino }))

let handle_create_inode t ~home ~ftype ~dist ~and_open (reply : reply) =
  let lid = alloc_lid t ~home in
  let inode =
    match (ftype : ftype) with
    | Reg -> Inode.file ~lid ~home
    | Dir -> Inode.dir ~lid ~home ~dist
    | Fifo -> invalid_arg "Create_inode: use Pipe_create for fifos"
  in
  register_inode t inode;
  let ino = global inode in
  if and_open && ftype = Reg then
    let ofd = do_open t inode ~trunc:false in
    reply (Ok (Wire.P_open_ino { oi = open_info ofd; ino }))
  else reply (Ok (Wire.P_created_ino ino))

let drop_dir_state t key =
  Hashtbl.remove t.dirs key;
  Hashtbl.remove t.tracking key;
  Hashtbl.remove t.locks key

(* Coalesced mkdir (§3.6.3): directory inode + parent entry in one
   message, when creation affinity placed both on this server. *)
let handle_create_dir t ~home ~dir ~name ~dist ~client (reply : reply) =
  if not (dir_alive t ~home dir) then reply (Error Errno.ENOENT)
  else begin
    let key = dkey t ~home dir in
    let s = shard t key in
    match Hashtbl.find_opt s name with
    | Some _ -> reply (Error Errno.EEXIST)
    | None ->
        let inode = Inode.dir ~lid:(alloc_lid t ~home) ~home ~dist in
        register_inode t inode;
        let ino = global inode in
        Hashtbl.replace s name { Wire.t_ino = ino; t_ftype = Dir; t_dist = dist };
        track t ~key ~name ~client;
        reply (Ok (Wire.P_created_ino ino))
  end

(* Coalesced rmdir for centralized directories: all entries live here, so
   the emptiness check and removal are one atomic step — no marks, no
   lock phase. The request home is the directory's own home. *)
let handle_rmdir_local t ~dir (reply : reply) =
  let home = dir.server in
  let key = dkey t ~home dir in
  match find_inode t dir with
  | None -> reply (Error Errno.ENOENT)
  | Some inode when inode.Inode.ftype <> Dir -> reply (Error Errno.ENOTDIR)
  | Some _ ->
      if shard_size t key > 0 then reply (Error Errno.ENOTEMPTY)
      else begin
        (match Hashtbl.find_opt t.locks key with
        | Some l ->
            Queue.iter
              (fun (waiter : reply) -> waiter (Error Errno.ENOENT))
              l.lock_waiters;
            Queue.clear l.lock_waiters
        | None -> ());
        drop_dir_state t key;
        Hashtbl.replace t.dead_dirs key ();
        Hashtbl.remove t.inodes (ikey t ~home dir.ino);
        reply (Ok Wire.P_unit)
      end

let handle_open_inode t ~ino ~trunc (reply : reply) =
  match find_inode t ino with
  | None -> reply (Error Errno.ENOENT)
  | Some inode -> (
      match inode.ftype with
      | Dir -> reply (Error Errno.EISDIR)
      | Fifo -> reply (Error Errno.EINVAL)
      | Reg ->
          let ofd = do_open t inode ~trunc in
          reply (Ok (Wire.P_open (open_info ofd))))

let handle_close t ~token ~size (reply : reply) =
  match Hashtbl.find_opt t.tokens token with
  | None -> reply (Error Errno.EBADF)
  | Some ofd ->
      (match size with
      | Some s when ofd.inode.ftype = Reg -> ofd.inode.size <- s
      | _ -> ());
      ofd.refcount <- ofd.refcount - 1;
      (match (ofd.pipe_end, ofd.inode.pipe) with
      | Some `R, Some p -> Pipe_state.close_reader p
      | Some `W, Some p -> Pipe_state.close_writer p
      | _ -> ());
      if ofd.refcount <= 0 then begin
        Hashtbl.remove t.tokens token;
        ofd.inode.open_tokens <- ofd.inode.open_tokens - 1;
        reclaim_lease t ofd.inode;
        maybe_release t ofd.inode
      end;
      reply (Ok Wire.P_unit)

let with_ofd t token (reply : reply) f =
  match Hashtbl.find_opt t.tokens token with
  | None -> reply (Error Errno.EBADF)
  | Some ofd -> f ofd

let effective_offset ofd ~off =
  match off with
  | Some o -> Ok (o, false)
  | None -> (
      match ofd.shared_offset with
      | Some o -> Ok (o, true)
      | None -> Error Errno.EINVAL)

let handle_read t ~token ~off ~len (reply : reply) =
  with_ofd t token reply (fun ofd ->
      if ofd.pipe_end <> None then reply (Error Errno.EINVAL)
      else
        match effective_offset ofd ~off with
        | Error e -> reply (Error e)
        | Ok (o, shared) ->
            let data = read_data t ofd.inode ~off:o ~len in
            let now_local =
              if shared then begin
                ofd.shared_offset <- Some (o + String.length data);
                demotion ofd
              end
              else None
            in
            let payload_lines = (String.length data / 64) + 1 in
            reply ~payload_lines (Ok (Wire.P_read { data; now_local })))

let handle_write t ~token ~off ~data (reply : reply) =
  with_ofd t token reply (fun ofd ->
      if ofd.pipe_end <> None then reply (Error Errno.EINVAL)
      else
        match effective_offset ofd ~off with
        | Error e -> reply (Error e)
        | Ok (o, shared) ->
            let written = write_data t ofd.inode ~off:o data in
            let now_local =
              if shared then begin
                ofd.shared_offset <- Some (o + written);
                demotion ofd
              end
              else None
            in
            reply
              (Ok (Wire.P_write { written; size = ofd.inode.size; now_local })))

let handle_lseek t ~token ~pos ~whence (reply : reply) =
  with_ofd t token reply (fun ofd ->
      if ofd.pipe_end <> None then reply (Error Errno.ESPIPE)
      else
        match ofd.shared_offset with
        | None -> reply (Error Errno.EINVAL)
        | Some cur ->
            let target =
              match (whence : whence) with
              | Seek_set -> pos
              | Seek_cur -> cur + pos
              | Seek_end -> ofd.inode.size + pos
            in
            if target < 0 then reply (Error Errno.EINVAL)
            else begin
              ofd.shared_offset <- Some target;
              reply (Ok (Wire.P_lseek target))
            end)

let handle_alloc t ~ino ~count ~ahead (reply : reply) =
  match find_inode t ino with
  | None -> reply (Error Errno.ENOENT)
  | Some inode ->
      let want = Array.length inode.blocks + count in
      (* The extent hint is best effort: a partition too dry for the
         read-ahead falls back to the exact need before giving up. *)
      (if ahead > 0 then
         try ensure_blocks t inode ~size:((want + ahead) * bs)
         with Out_of_blocks -> ensure_blocks t inode ~size:(want * bs)
       else ensure_blocks t inode ~size:(want * bs));
      reply
        (Ok (Wire.P_blocks { blocks = Array.copy inode.blocks; bsize = inode.size }))

let handle_get_blocks t ~ino (reply : reply) =
  match find_inode t ino with
  | None -> reply (Error Errno.ENOENT)
  | Some inode ->
      reply
        (Ok
           (Wire.P_blocks
              { blocks = Array.copy inode.blocks; bsize = inode.size }))

let handle_unlink_ino t ~ino (reply : reply) =
  match find_inode t ino with
  | None -> reply (Error Errno.ENOENT)
  | Some inode ->
      if inode.ftype = Dir then begin
        (* Only mkdir's rollback unlinks a directory inode: it was never
           linked anywhere, so it must have no entries and no users. *)
        let key = dkey t ~home:ino.server ino in
        if
          shard_size t key = 0
          && inode.open_tokens = 0
          && inode.nlink <= 1
        then begin
          drop_dir_state t key;
          Hashtbl.remove t.inodes (ikey t ~home:ino.server ino.ino);
          reply (Ok Wire.P_unit)
        end
        else reply (Error Errno.EISDIR)
      end
      else begin
        inode.nlink <- inode.nlink - 1;
        if inode.nlink <= 0 then begin
          inode.unlinked <- true;
          maybe_release t inode
        end;
        reply (Ok Wire.P_unit)
      end

(* The first half of rename's link+unlink pair: a dead (or dying) inode
   cannot gain new names. *)
let handle_link_ino t ~ino (reply : reply) =
  match find_inode t ino with
  | None -> reply (Error Errno.ENOENT)
  | Some inode ->
      if inode.nlink <= 0 || inode.unlinked then reply (Error Errno.ENOENT)
      else begin
        inode.nlink <- inode.nlink + 1;
        reply (Ok Wire.P_unit)
      end

let handle_inc_fd_ref t ~token ~offset (reply : reply) =
  with_ofd t token reply (fun ofd ->
      ofd.refcount <- ofd.refcount + 1;
      (match (ofd.pipe_end, ofd.inode.pipe) with
      | Some `R, Some p -> Pipe_state.add_reader p
      | Some `W, Some p -> Pipe_state.add_writer p
      | _ -> ());
      (match (ofd.shared_offset, offset) with
      | None, Some o -> ofd.shared_offset <- Some o
      | _ -> ());
      reply (Ok Wire.P_unit))

(* --- three-phase rmdir (§3.3) ----------------------------------------- *)

let dirlock t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
      let l = { held = false; lock_waiters = Queue.create () } in
      Hashtbl.replace t.locks key l;
      l

(* The lock/unlock phases address the directory's own home. *)
let handle_rmdir_lock t ~dir (reply : reply) =
  if find_inode t dir = None then
    (* The directory was removed while (or before) we asked. *)
    reply (Error Errno.ENOENT)
  else begin
    let l = dirlock t (dkey t ~home:dir.server dir) in
    if l.held then Queue.push reply l.lock_waiters
    else begin
      l.held <- true;
      reply (Ok Wire.P_unit)
    end
  end

let handle_rmdir_unlock t ~dir (reply : reply) =
  let l = dirlock t (dkey t ~home:dir.server dir) in
  (match Queue.take_opt l.lock_waiters with
  | Some waiter -> waiter (Ok Wire.P_unit) (* lock passes to the next rmdir *)
  | None -> l.held <- false);
  reply (Ok Wire.P_unit)

let handle_rmdir_prepare t ~home ~dir (reply : reply) =
  let key = dkey t ~home dir in
  if Hashtbl.mem t.marks key then reply (Error Errno.EBUSY)
  else if shard_size t key > 0 then reply (Error Errno.ENOTEMPTY)
  else begin
    Hashtbl.replace t.marks key { parked = Queue.create () };
    reply (Ok Wire.P_unit)
  end

let handle_rmdir_commit t ~home ~dir (reply : reply) =
  let key = dkey t ~home dir in
  (match Hashtbl.find_opt t.marks key with
  | None -> ()
  | Some m ->
      Hashtbl.remove t.marks key;
      (* Creates delayed behind the mark fail: the directory is gone. *)
      Queue.iter
        (fun ((_ : Wire.fs_req), (parked_reply : reply)) ->
          parked_reply (Error Errno.ENOENT))
        m.parked);
  (* rmdirs serialized behind the lock lose: the directory is gone. *)
  (match Hashtbl.find_opt t.locks key with
  | Some l ->
      Queue.iter (fun (waiter : reply) -> waiter (Error Errno.ENOENT)) l.lock_waiters;
      Queue.clear l.lock_waiters
  | None -> ());
  drop_dir_state t key;
  Hashtbl.replace t.dead_dirs key ();
  if dir.server = home then
    (* The directory's own home: destroy the inode itself. *)
    Hashtbl.remove t.inodes (ikey t ~home dir.ino);
  reply (Ok Wire.P_unit)

(* --- pipes (§5.2: make's jobserver) ----------------------------------- *)

let handle_pipe_create t ~home (reply : reply) =
  let inode = Inode.fifo ~lid:(alloc_lid t ~home) ~home ~capacity:65536 in
  register_inode t inode;
  let pipe = Option.get inode.pipe in
  Pipe_state.add_reader pipe;
  Pipe_state.add_writer pipe;
  let rd = new_token t inode ~pipe_end:(Some `R) in
  let wr = new_token t inode ~pipe_end:(Some `W) in
  reply
    (Ok (Wire.P_pipe { pipe_ino = global inode; rd = rd.token; wr = wr.token }))

let handle_pipe_read t ~token ~len (reply : reply) =
  with_ofd t token reply (fun ofd ->
      match (ofd.pipe_end, ofd.inode.pipe) with
      | Some `R, Some pipe ->
          Pipe_state.read pipe ~len (function
            | Ok data ->
                let payload_lines = (String.length data / 64) + 1 in
                reply ~payload_lines (Ok (Wire.P_read { data; now_local = None }))
            | Error e -> reply (Error e))
      | _ -> reply (Error Errno.EBADF))

let handle_pipe_write t ~token ~data (reply : reply) =
  with_ofd t token reply (fun ofd ->
      match (ofd.pipe_end, ofd.inode.pipe) with
      | Some `W, Some pipe ->
          Pipe_state.write pipe data (function
            | Ok written ->
                reply (Ok (Wire.P_write { written; size = 0; now_local = None }))
            | Error e -> reply (Error e))
      | _ -> reply (Error Errno.EBADF))

(* ---------- dispatch --------------------------------------------------- *)

(* Creates in a directory marked for deletion are delayed until the
   two-phase outcome is known (§3.3). The mark lives under the request's
   home-namespaced key. *)
let creation_dir t (req : Wire.fs_req) =
  match req with
  | Wire.Add_map { dir; home; _ } | Wire.Create_open { dir; home; _ } ->
      Some (dkey t ~home dir)
  | _ -> None

(* ---------- idempotency memory ----------------------------------------- *)

let dedup_table t client =
  match Hashtbl.find_opt t.dedup client with
  | Some m -> m
  | None ->
      let m = { de_tbl = Hashtbl.create 64; de_pruned = 0 } in
      Hashtbl.replace t.dedup client m;
      m

(* Advance the client's eviction mark to [ack], dropping every entry it
   covers. A [Pending] below the mark means the client gave up on the
   request (EIO after the retry budget) while the original is still
   parked here; its eventual reply fills an ivar nobody reads, and
   [reply'] will not re-cache it (guarded by [de_pruned]). *)
let dedup_ack t dc ~ack =
  if ack > dc.de_pruned then begin
    for seq = dc.de_pruned + 1 to ack do
      if Hashtbl.mem dc.de_tbl seq then begin
        Hashtbl.remove dc.de_tbl seq;
        t.perf.Hare_stats.Perf.dedup_evicted <-
          t.perf.Hare_stats.Perf.dedup_evicted + 1
      end
    done;
    dc.de_pruned <- ack
  end

(* ---------- shard migration (consistent-hash rebalancing) -------------- *)

(* A home with parked continuations cannot be packed: the closures are
   bound to this server's endpoint and would answer from the wrong
   mailbox after the move. The coordinator backs off and retries. *)
let home_busy t h =
  let busy = ref false in
  Hashtbl.iter
    (fun (k : ino) (_ : mark) -> if k.server = h then busy := true)
    t.marks;
  Hashtbl.iter
    (fun (k : ino) (l : dirlock) ->
      if k.server = h && (l.held || not (Queue.is_empty l.lock_waiters)) then
        busy := true)
    t.locks;
  if t.steal_inflight || not (Queue.is_empty t.steal_parked) then busy := true;
  Hashtbl.iter
    (fun _ (inode : Inode.t) ->
      if inode.Inode.home = h then
        match inode.Inode.pipe with
        | Some p
          when Pipe_state.parked_readers p > 0 || Pipe_state.parked_writers p > 0
          ->
            busy := true
        | _ -> ())
    t.inodes;
  !busy

(* Pack the whole state of logical home [home] and hand it to the
   coordinator. The route was flipped before this message was sent, and
   the mailbox is FIFO, so everything that arrives after it finds the
   home absent and is bounced with EMOVED. *)
let handle_migrate_out t ~home (reply : reply) =
  if not t.migratory then reply (Error Errno.EINVAL)
  else if not (Hashtbl.mem t.hosted home) then reply (Error Errno.EINVAL)
  else if home_busy t home then reply (Error Errno.EBUSY)
  else begin
    Hashtbl.remove t.hosted home;
    (* inodes (and with them pipes, sizes, block references) *)
    let moved = ref [] in
    Hashtbl.iter
      (fun k (inode : Inode.t) ->
        if inode.Inode.home = home then moved := (k, inode) :: !moved)
      t.inodes;
    List.iter (fun (k, _) -> Hashtbl.remove t.inodes k) !moved;
    let p_inodes =
      List.map (fun ((_ : int), (i : Inode.t)) -> (i.Inode.lid, i)) !moved
    in
    (* Buffer-cache ownership follows the inodes; the block bytes stay in
       DRAM. Flush our private cached lines so the new owner reads
       current data through its own cache. *)
    let blocks = ref [] in
    List.iter
      (fun ((_ : int), (i : Inode.t)) ->
        Array.iter (fun b -> blocks := b :: !blocks) i.Inode.blocks;
        Array.iter (fun b -> blocks := b :: !blocks) i.Inode.orphans)
      !moved;
    let p_blocks = Array.of_list !blocks in
    Array.iter
      (fun b ->
        Hare_mem.Pcache.writeback_block t.pcache b;
        Hare_mem.Pcache.invalidate_block t.pcache b)
      p_blocks;
    Blocklist.export t.blocks p_blocks;
    (* open descriptors: tokens are home-namespaced, so they transplant *)
    let p_tokens = ref [] in
    Hashtbl.iter
      (fun tok (ofd : ofd) ->
        if ofd.inode.Inode.home = home then p_tokens := (tok, ofd) :: !p_tokens)
      t.tokens;
    List.iter (fun (tok, _) -> Hashtbl.remove t.tokens tok) !p_tokens;
    (* directory shards and tombstones of this home *)
    let p_dirs = ref [] and p_dead = ref [] in
    Hashtbl.iter
      (fun (k : ino) s -> if k.server = home then p_dirs := (k, s) :: !p_dirs)
      t.dirs;
    List.iter (fun (k, _) -> Hashtbl.remove t.dirs k) !p_dirs;
    Hashtbl.iter
      (fun (k : ino) () -> if k.server = home then p_dead := k :: !p_dead)
      t.dead_dirs;
    List.iter (Hashtbl.remove t.dead_dirs) !p_dead;
    (* Invalidation tracking does not transplant: fire every registered
       callback now (one-shot semantics — clients re-register at the new
       owner on their next lookup), so no client can sit on a cached
       entry this server would have been responsible for invalidating. *)
    let tracked = ref [] in
    Hashtbl.iter
      (fun (k : ino) per_dir ->
        if k.server = home then tracked := (k, per_dir) :: !tracked)
      t.tracking;
    List.iter
      (fun ((k : ino), per_dir) ->
        let dir = dkey_dir t k in
        Hashtbl.iter
          (fun name clients ->
            Hashtbl.iter
              (fun client () ->
                Hare_msg.Mailbox.send t.inval_ports.(client) ~from:t.core
                  (Wire.Inval_entry { i_dir = dir; i_name = name });
                (match Engine.checker (Core_res.engine t.core) with
                | Some chk ->
                    Check.dircache_sent chk ~client ~server:dir.Types.server
                      ~ino:dir.Types.ino ~name
                | None -> ());
                t.invals_sent <- t.invals_sent + 1)
              clients)
          per_dir;
        Hashtbl.remove t.tracking k)
      !tracked;
    (* idle lock records (not held, no waiters — checked above) *)
    let lock_keys =
      Hashtbl.fold
        (fun (k : ino) _ acc -> if k.server = home then k :: acc else acc)
        t.locks []
    in
    List.iter (Hashtbl.remove t.locks) lock_keys;
    (* allocation counters *)
    let take tbl =
      let v = match Hashtbl.find_opt tbl home with Some n -> n | None -> 1 in
      Hashtbl.remove tbl home;
      v
    in
    let p_next_lid = take t.next_lids in
    let p_next_token = take t.next_tokens in
    (* Completed idempotency entries travel with the shard: a client
       retrying a request the old owner already executed must replay the
       cached response at the new owner, not re-execute. (client, seq)
       is globally unique, so shipping the whole table is safe; pending
       entries cannot exist for this home — parked work refused the
       migration above. *)
    let p_dedup = ref [] in
    Hashtbl.iter
      (fun client dc ->
        Hashtbl.iter
          (fun seq entry ->
            match entry with
            | Done resp -> p_dedup := (client, seq, resp) :: !p_dedup
            | Pending _ -> ())
          dc.de_tbl)
      t.dedup;
    t.homes_out <- t.homes_out + 1;
    let items =
      List.length p_inodes + List.length !p_tokens + List.length !p_dirs
      + List.length !p_dedup
    in
    reply ~payload_lines:(items + 1)
      (Ok
         (Wire.P_pack
            (Pack
               {
                 p_inodes;
                 p_tokens = !p_tokens;
                 p_dirs = !p_dirs;
                 p_dead = !p_dead;
                 p_blocks;
                 p_next_lid;
                 p_next_token;
                 p_dedup = !p_dedup;
               })))
  end

let handle_install_shard t ~home ~pack (reply : reply) =
  if not t.migratory then reply (Error Errno.EINVAL)
  else
    match pack with
    | Pack p ->
        List.iter
          (fun (lid, inode) -> Hashtbl.replace t.inodes (ikey t ~home lid) inode)
          p.p_inodes;
        Blocklist.adopt_allocated t.blocks p.p_blocks;
        List.iter
          (fun (tok, (ofd : ofd)) -> Hashtbl.replace t.tokens tok ofd)
          p.p_tokens;
        List.iter (fun (k, s) -> Hashtbl.replace t.dirs k s) p.p_dirs;
        List.iter (fun k -> Hashtbl.replace t.dead_dirs k ()) p.p_dead;
        let bump tbl v =
          let cur =
            match Hashtbl.find_opt tbl home with Some n -> n | None -> 1
          in
          Hashtbl.replace tbl home (max cur v)
        in
        bump t.next_lids p.p_next_lid;
        bump t.next_tokens p.p_next_token;
        List.iter
          (fun (client, seq, resp) ->
            let dc = dedup_table t client in
            if seq > dc.de_pruned && not (Hashtbl.mem dc.de_tbl seq) then
              Hashtbl.replace dc.de_tbl seq (Done resp))
          p.p_dedup;
        Hashtbl.replace t.hosted home ();
        t.homes_in <- t.homes_in + 1;
        reply (Ok Wire.P_unit)
    | _ -> reply (Error Errno.EINVAL)

let handle_steal_blocks t ~count (reply : reply) =
  (* Donate at most half of what is free: stay useful to local files. *)
  let give = Blocklist.donate t.blocks (min count (Blocklist.available t.blocks / 2)) in
  if Array.length give = 0 then reply (Error Errno.ENOSPC)
  else reply (Ok (Wire.P_blocks { blocks = give; bsize = 0 }))

let rec handle t (req : Wire.fs_req) (reply : reply) =
  match creation_dir t req with
  | Some key when Hashtbl.mem t.marks key ->
      let m = Hashtbl.find t.marks key in
      Queue.push (req, reply) m.parked
  | _ -> (
      try dispatch t req reply with Out_of_blocks -> on_enospc t req reply)

(* Block stealing (extension, §3.2): a request that ran out of blocks is
   parked; we ask peers — one at a time, round-robin — to donate, via a
   helper fiber so the dispatch loop never blocks. Once every peer has
   declined since the last success, the parked requests fail for real. *)
and on_enospc t (req : Wire.fs_req) (reply : reply) =
  if
    (not t.config.Hare_config.Config.block_stealing)
    || Array.length t.peers <= 1
  then reply (Error Errno.ENOSPC)
  else begin
    Queue.push (req, reply) t.steal_parked;
    kick_steal t
  end

and kick_steal t =
  if (not t.steal_inflight) && not (Queue.is_empty t.steal_parked) then
    if t.steal_failures >= Array.length t.peers - 1 then begin
      t.steal_failures <- 0;
      let parked = List.of_seq (Queue.to_seq t.steal_parked) in
      Queue.clear t.steal_parked;
      List.iter
        (fun ((_ : Wire.fs_req), (r : reply)) -> r (Error Errno.ENOSPC))
        parked
    end
    else begin
      t.steal_inflight <- true;
      t.steal_victim <- (t.steal_victim + 1) mod Array.length t.peers;
      if t.steal_victim = t.sid then
        t.steal_victim <- (t.steal_victim + 1) mod Array.length t.peers;
      let future =
        Hare_msg.Rpc.call_async t.peers.(t.steal_victim) ~from:t.core
          (Wire.Steal_blocks { count = 128 })
      in
      ignore
        (Engine.spawn t.engine
           ~name:(Printf.sprintf "steal-%d" t.sid)
           (fun () ->
             let resp = Hare_msg.Rpc.await ~from:t.core ~costs:t.costs future in
             t.steal_inflight <- false;
             (match resp with
             | Ok (Wire.P_blocks { blocks; _ }) ->
                 t.steal_failures <- 0;
                 t.blocks_stolen <- t.blocks_stolen + Array.length blocks;
                 Blocklist.adopt t.blocks blocks
             | Ok _ | Error _ -> t.steal_failures <- t.steal_failures + 1);
             let parked = List.of_seq (Queue.to_seq t.steal_parked) in
             Queue.clear t.steal_parked;
             List.iter (fun (preq, prep) -> handle t preq prep) parked;
             kick_steal t))
    end

and dispatch t (req : Wire.fs_req) (reply : reply) =
  match req with
  | Wire.Lookup { dir; name; client; home } ->
      handle_lookup t ~home ~dir ~name ~client reply
  | Wire.Add_map { dir; name; target; ftype; dist; replace; client; home } ->
      handle_add_map t ~home ~dir ~name ~target ~ftype ~dist ~replace ~client
        reply
  | Wire.Rm_map { dir; name; only_if; client; home } ->
      handle_rm_map t ~home ~dir ~name ~only_if ~client reply
  | Wire.Readdir_shard { dir; home } -> handle_readdir t ~home ~dir reply
  | Wire.Create_open { dir; name; excl; trunc; client; home } ->
      handle_create_open t ~home ~dir ~name ~excl ~trunc ~client reply
  | Wire.Create_inode { ftype; dist; and_open; home } ->
      handle_create_inode t ~home ~ftype ~dist ~and_open reply
  | Wire.Create_dir { dir; name; dist; client; home } ->
      handle_create_dir t ~home ~dir ~name ~dist ~client reply
  | Wire.Rmdir_local { dir; client = _ } -> handle_rmdir_local t ~dir reply
  | Wire.Open_inode { ino; trunc; client = _ } -> handle_open_inode t ~ino ~trunc reply
  | Wire.Close_fd { token; size } -> handle_close t ~token ~size reply
  | Wire.Read_fd { token; off; len } -> handle_read t ~token ~off ~len reply
  | Wire.Write_fd { token; off; data } -> handle_write t ~token ~off ~data reply
  | Wire.Lseek_fd { token; pos; whence } -> handle_lseek t ~token ~pos ~whence reply
  | Wire.Alloc_blocks { ino; count; ahead } -> handle_alloc t ~ino ~count ~ahead reply
  | Wire.Get_blocks { ino } -> handle_get_blocks t ~ino reply
  | Wire.Update_size { token; size } ->
      with_ofd t token reply (fun ofd ->
          if ofd.inode.ftype = Reg then ofd.inode.size <- size;
          reply (Ok Wire.P_unit))
  | Wire.Get_attr { ino } -> (
      match find_inode t ino with
      | None -> reply (Error Errno.ENOENT)
      | Some inode -> reply (Ok (Wire.P_attr (Inode.attr inode))))
  | Wire.Truncate { ino; size } -> (
      match find_inode t ino with
      | None -> reply (Error Errno.ENOENT)
      | Some inode ->
          do_truncate t inode ~size;
          reply (Ok Wire.P_unit))
  | Wire.Unlink_ino { ino } -> handle_unlink_ino t ~ino reply
  | Wire.Link_ino { ino } -> handle_link_ino t ~ino reply
  | Wire.Inc_fd_ref { token; offset } -> handle_inc_fd_ref t ~token ~offset reply
  | Wire.Rmdir_lock { dir } -> handle_rmdir_lock t ~dir reply
  | Wire.Rmdir_unlock { dir } -> handle_rmdir_unlock t ~dir reply
  | Wire.Rmdir_prepare { dir; home } -> handle_rmdir_prepare t ~home ~dir reply
  | Wire.Rmdir_commit { dir; client = _; home } ->
      handle_rmdir_commit t ~home ~dir reply
  | Wire.Rmdir_abort { dir; home } -> (
      match Hashtbl.find_opt t.marks (dkey t ~home dir) with
      | None -> reply (Ok Wire.P_unit)
      | Some m ->
          Hashtbl.remove t.marks (dkey t ~home dir);
          reply (Ok Wire.P_unit);
          (* Replay the creates that were delayed behind the mark. *)
          Queue.iter
            (fun (parked_req, (parked_reply : reply)) ->
              handle t parked_req parked_reply)
            m.parked)
  | Wire.Pipe_create { home; _ } -> handle_pipe_create t ~home reply
  | Wire.Pipe_read { token; len } -> handle_pipe_read t ~token ~len reply
  | Wire.Pipe_write { token; data } -> handle_pipe_write t ~token ~data reply
  | Wire.Steal_blocks { count } -> handle_steal_blocks t ~count reply
  | Wire.Migrate_out { home } -> handle_migrate_out t ~home reply
  | Wire.Install_shard { home; pack } -> handle_install_shard t ~home ~pack reply

(* ---------- execution, idempotency, crash/recovery --------------------- *)

(* [dispatch = false] marks a request handled as part of a drained batch
   after its first message: the per-wakeup dispatch preamble was already
   paid once for the whole batch, so only the operation's marginal cost
   is charged (PR 2 batch dispatch). *)
let execute ?(dispatch = true) ?(span = 0) t (req : Wire.fs_req) (reply : reply)
    =
  Hare_stats.Opcount.incr t.ops (Wire.req_name req);
  let dcost = if dispatch then t.costs.server_dispatch else 0 in
  let ocost = op_cost req in
  (* Open a server-side span, child of the requesting client's span:
     its bucket breakdown is recorded for the client's blocked-await. *)
  let tr_opened =
    match Engine.sink t.engine with
    | Some tr ->
        let fid = Engine.current_fid t.engine in
        if
          Trace.ctx_open tr ~fid ~op:(Wire.req_srv_name req)
            ~track:(Core_res.id t.core) ~parent:span ~now:(Engine.now t.engine)
            (* Span args only decorate exported events; a profile-only
               sink drops them, so skip the pretty-printing. *)
            ~args:(if Trace.ring_enabled tr then Wire.req_args req else [])
          <> 0
        then begin
          Trace.set_pending tr ~fid
            [ (Trace.Dispatch, dcost); (Trace.Compute, ocost) ];
          Some tr
        end
        else None
    | None -> None
  in
  let close () =
    match tr_opened with
    | Some tr ->
        Trace.ctx_close_server tr
          ~fid:(Engine.current_fid t.engine)
          ~now:(Engine.now t.engine)
    | None -> ()
  in
  Core_res.compute t.core (dcost + ocost);
  match handle t req reply with
  | () -> close ()
  | exception Errno.Error (e, _) ->
      reply (Error e);
      close ()
  | exception e ->
      close ();
      raise e

(* Sequence numbers are monotonic per client and a client has at most a
   handful of RPCs outstanding, so cached responses far behind the
   current sequence can never be asked for again. *)
let prune_dedup table ~before =
  Hashtbl.filter_map_inplace
    (fun seq entry ->
      match entry with Done _ when seq < before -> None | e -> Some e)
    table

(* Which logical home a request addresses; -1 for requests with no home
   affinity (block stealing, the migration protocol itself). Entry
   operations carry it explicitly; inode and token operations encode it
   in the target id. *)
let home_of (req : Wire.fs_req) =
  match req with
  | Wire.Lookup { home; _ }
  | Wire.Add_map { home; _ }
  | Wire.Rm_map { home; _ }
  | Wire.Readdir_shard { home; _ }
  | Wire.Create_open { home; _ }
  | Wire.Create_inode { home; _ }
  | Wire.Create_dir { home; _ }
  | Wire.Rmdir_prepare { home; _ }
  | Wire.Rmdir_commit { home; _ }
  | Wire.Rmdir_abort { home; _ }
  | Wire.Pipe_create { home; _ } ->
      home
  | Wire.Open_inode { ino; _ }
  | Wire.Alloc_blocks { ino; _ }
  | Wire.Get_blocks { ino }
  | Wire.Get_attr { ino }
  | Wire.Truncate { ino; _ }
  | Wire.Unlink_ino { ino }
  | Wire.Link_ino { ino } ->
      ino.server
  | Wire.Rmdir_lock { dir } | Wire.Rmdir_unlock { dir } ->
      dir.server
  | Wire.Rmdir_local { dir; _ } -> dir.server
  | Wire.Close_fd { token; _ }
  | Wire.Read_fd { token; _ }
  | Wire.Write_fd { token; _ }
  | Wire.Lseek_fd { token; _ }
  | Wire.Update_size { token; _ }
  | Wire.Inc_fd_ref { token; _ }
  | Wire.Pipe_read { token; _ }
  | Wire.Pipe_write { token; _ } ->
      token lsr home_shift
  | Wire.Steal_blocks _ | Wire.Migrate_out _ | Wire.Install_shard _ -> -1

let process ?(dispatch = true) ?(span = 0) t (req : Wire.fs_req) (reply : reply)
    (meta : Hare_msg.Rpc.meta option) =
  if
    t.migratory
    && (let h = home_of req in
        h >= 0 && not (hosts t h))
  then begin
    (* The addressed home moved away. Bounce with EMOVED *before* any
       execution or dedup recording: the reject must never be cached as
       this request's outcome (the cached entry would migrate with the
       shard and shadow the real execution), and the retry — same
       idempotency tag, new owner — must be free to execute. *)
    ignore span;
    t.moved_rejects <- t.moved_rejects + 1;
    Core_res.compute t.core
      (if dispatch then t.costs.server_dispatch else 0);
    reply (Error Errno.EMOVED)
  end
  else
  match meta with
  | None -> execute ~dispatch ~span t req reply
  | Some m -> (
      let dc = dedup_table t m.m_client in
      (* The envelope's ack mark bounds the table: everything at or
         below it is client-complete and can never be retransmitted. *)
      dedup_ack t dc ~ack:m.m_ack;
      match Hashtbl.find_opt dc.de_tbl m.m_seq with
      | Some (Done resp) ->
          (* Retransmission of a completed request: replay the cached
             response without re-executing the operation. *)
          t.robust.dedup_hits <- t.robust.dedup_hits + 1;
          Core_res.compute t.core t.costs.server_dispatch;
          reply resp
      | Some (Pending extras) ->
          (* The original is still executing (or parked); attach this
             copy's reply slot to be answered alongside it. *)
          t.robust.dedup_hits <- t.robust.dedup_hits + 1;
          extras := reply :: !extras
      | None ->
          let extras = ref [] in
          Hashtbl.replace dc.de_tbl m.m_seq (Pending extras);
          if Hashtbl.length dc.de_tbl > 256 then
            prune_dedup dc.de_tbl ~before:(m.m_seq - 128);
          let once = ref false in
          let reply' ?payload_lines resp =
            if not !once then begin
              once := true;
              (* Skip the cache when the client acked this seq while the
                 original was parked — the entry would outlive every
                 possible retransmission. *)
              if m.m_seq > dc.de_pruned then
                Hashtbl.replace dc.de_tbl m.m_seq (Done resp);
              reply ?payload_lines resp;
              List.iter (fun (r : reply) -> r resp) !extras;
              extras := []
            end
          in
          execute ~dispatch ~span t req reply')

let crash t =
  if not t.down then begin
    t.down <- true;
    (match t.faults with
    | Some l -> Hare_fault.Injector.set_down l true
    | None -> ());
    t.robust.crashes <- t.robust.crashes + 1;
    Log.debug (fun m -> m "server %d crashes at %Ld" t.sid (Engine.now t.engine));
    (match Engine.sink t.engine with
    | Some tr ->
        Trace.instant tr ~name:"crash" ~track:(Core_res.id t.core)
          ~ts:(Engine.now t.engine)
          ~args:[ ("server", string_of_int t.sid) ]
          ()
    | None -> ());
    let aborted = ref 0 in
    let abort (reply : reply) =
      incr aborted;
      reply (Error Errno.EIO)
    in
    (* In-flight queued requests die with the server. Tagged copies just
       vanish — the client's deadline fires and it retries. Untagged
       (reliable, non-retryable) requests get EIO so their callers
       unblock. *)
    List.iter
      (fun ((_ : Wire.fs_req), reply, meta, (_ : int), (_ : int64), (_ : int))
           ->
        match meta with Some _ -> incr aborted | None -> abort reply)
      (Hare_msg.Rpc.drain_pending t.endpoint);
    (* Parked continuations are volatile: error them all out. *)
    Hashtbl.iter
      (fun _ (m : mark) -> Queue.iter (fun (_, r) -> abort r) m.parked)
      t.marks;
    Hashtbl.reset t.marks;
    Hashtbl.iter
      (fun _ (l : dirlock) -> Queue.iter abort l.lock_waiters)
      t.locks;
    Hashtbl.reset t.locks;
    Queue.iter (fun (_, r) -> abort r) t.steal_parked;
    Queue.clear t.steal_parked;
    t.steal_inflight <- false;
    t.steal_failures <- 0;
    Hashtbl.iter
      (fun _ (inode : Inode.t) ->
        match inode.Inode.pipe with
        | Some p -> aborted := !aborted + Pipe_state.abort_parked p
        | None -> ())
      t.inodes;
    (* Volatile tables: descriptors, idempotency memory, invalidation
       tracking. The DRAM-resident structures (inodes, directory shards,
       tombstones, block contents) survive. *)
    Hashtbl.reset t.tokens;
    Hashtbl.iter
      (fun _ (inode : Inode.t) -> inode.Inode.open_tokens <- 0)
      t.inodes;
    Hashtbl.reset t.dedup;
    Hashtbl.reset t.tracking;
    (* A dead server's queue depth is meaningless; keep it out of
       deadlock reports (and free the probe slot) until restart. *)
    Hare_msg.Rpc.unwatch t.endpoint;
    t.robust.aborted <- t.robust.aborted + !aborted
  end

let restart t =
  if t.down then begin
    Log.debug (fun m ->
        m "server %d restarts at %Ld" t.sid (Engine.now t.engine));
    (match Engine.sink t.engine with
    | Some tr ->
        Trace.instant tr ~name:"restart" ~track:(Core_res.id t.core)
          ~ts:(Engine.now t.engine)
          ~args:[ ("server", string_of_int t.sid) ]
          ()
    | None -> ());
    (* Every descriptor died with the crash, so orphaned blocks and
       unlinked inodes have no remaining users; the free list becomes
       whatever the surviving inodes do not reference. *)
    let dead =
      Hashtbl.fold
        (fun lid (inode : Inode.t) acc ->
          inode.Inode.orphans <- [||];
          if inode.Inode.unlinked && inode.Inode.nlink <= 0 then lid :: acc
          else acc)
        t.inodes []
    in
    List.iter (Hashtbl.remove t.inodes) dead;
    (* Extent leases were held on behalf of descriptors that died with
       the crash: trim every file back to its size so the surplus blocks
       rejoin the free list below. *)
    if t.config.Hare_config.Config.alloc_extent > 1 then
      Hashtbl.iter
        (fun _ (inode : Inode.t) ->
          if inode.Inode.ftype = Reg then begin
            let keep = Inode.blocks_for ~size:inode.Inode.size in
            if keep < Array.length inode.Inode.blocks then
              inode.Inode.blocks <- Array.sub inode.Inode.blocks 0 keep
          end)
        t.inodes;
    let live = Hashtbl.create 4096 in
    Hashtbl.iter
      (fun _ (inode : Inode.t) ->
        Array.iter (fun b -> Hashtbl.replace live b ()) inode.Inode.blocks)
      t.inodes;
    let reclaimed = Blocklist.rebuild t.blocks ~live in
    t.robust.blocks_rebuilt <- t.robust.blocks_rebuilt + reclaimed;
    t.down <- false;
    Hare_msg.Rpc.rewatch t.endpoint;
    (match t.faults with
    | Some l -> Hare_fault.Injector.set_down l false
    | None -> ());
    t.robust.restarts <- t.robust.restarts + 1;
    (* Clients cannot tell which of their cached entries this server
       would have invalidated while it was down: make them flush. *)
    Array.iter
      (fun port ->
        Hare_msg.Mailbox.send port ~from:t.core Wire.Inval_all;
        t.invals_sent <- t.invals_sent + 1)
      t.inval_ports;
    (* Serve the reliable requests that queued up while we were down. *)
    let parked = List.of_seq (Queue.to_seq t.boot_queue) in
    Queue.clear t.boot_queue;
    List.iter
      (fun (req, reply, meta, span, (_ : int64), (_ : int)) ->
        process ~span t req reply meta)
      parked
  end

let start t =
  let batch_max = max 1 t.config.Hare_config.Config.batch_max in
  let wm = t.config.Hare_config.Config.shed_watermark in
  let shed_instant name req =
    match Engine.sink t.engine with
    | Some tr ->
        Trace.instant tr ~name ~track:(Core_res.id t.core)
          ~ts:(Engine.now t.engine)
          ~args:[ ("op", Wire.req_name req) ]
          ()
    | None -> ()
  in
  let serve ~dispatch (req, reply, meta, span, deadline, prio) =
    if t.down then
      (* The process is gone; only reliable sends still land here (the
         injector blackholes unreliable ones). Hold them for reboot. *)
      Queue.push (req, reply, meta, span, deadline, prio) t.boot_queue
    else if
      (* Class shed first: a categorical EBUSY tells the client to back
         off now, whereas an expiry drop costs it a full timeout — so
         above the watermark the deferrable classes (background first,
         then data; metadata never) are pushed back even if the copy has
         also expired. The verdict is cached in the dedup table so
         duplicate copies replay EBUSY rather than executing the
         operation invisibly. *)
      wm > 0 && meta <> None && prio > 0
      && (let depth = Hare_msg.Rpc.pending t.endpoint in
          (prio >= 2 && depth > wm) || (prio >= 1 && depth > 2 * wm))
    then begin
      ignore dispatch;
      t.robust.shed_load <- t.robust.shed_load + 1;
      shed_instant "shed-load" req;
      Core_res.compute t.core t.costs.server_dispatch;
      (match meta with
      | Some m ->
          let dc = dedup_table t m.m_client in
          dedup_ack t dc ~ack:m.m_ack;
          Hashtbl.replace dc.de_tbl m.m_seq (Done (Error Errno.EBUSY))
      | None -> ());
      reply (Error Errno.EBUSY)
    end
    else if deadline > 0L && meta <> None && Engine.now t.engine > deadline
    then begin
      (* Already expired: the client's RPC deadline fired before we got
         here, so a retransmission (with a fresh deadline) is already on
         its way. Serving this copy would be wasted work — drop it
         without replying, charging only the envelope examination. *)
      t.robust.shed_expired <- t.robust.shed_expired + 1;
      shed_instant "shed-expired" req;
      Core_res.compute t.core t.costs.server_dispatch
    end
    else process ~dispatch ~span t req reply meta
  in
  let loop () =
    let rec go () =
      (* Batch dispatch: drain up to [batch_max] queued requests per
         wakeup. The receive costs are charged in one compute call, the
         whole batch shares a single context switch, and the dispatch
         preamble is paid once per wakeup — each message past the first
         costs only its operation. [batch_max = 1] is the paper's
         one-request-per-wakeup loop, cycle for cycle. *)
      let batch = Hare_msg.Rpc.recv_batch_full t.endpoint ~max:batch_max in
      Hare_stats.Perf.note_batch t.perf (List.length batch);
      (match Engine.sink t.engine with
      | Some tr ->
          Trace.counter tr ~name:"batch" ~track:(Core_res.id t.core)
            ~ts:(Engine.now t.engine) ~value:(List.length batch)
      | None -> ());
      List.iteri
        (fun i msg ->
          if i > 0 then Hare_msg.Rpc.charge_recv t.endpoint;
          serve ~dispatch:(i = 0) msg)
        batch;
      go ()
    in
    go ()
  in
  ignore
    (Engine.spawn t.engine ~daemon:true
       ~name:(Printf.sprintf "fs-server-%d" t.sid)
       loop)
