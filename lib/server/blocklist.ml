type t = {
  first : int;
  count : int;
  free : int Queue.t;
  allocated : (int, unit) Hashtbl.t;
  adopted : (int, unit) Hashtbl.t;
  exported : (int, unit) Hashtbl.t;
}

let create ~first ~count =
  if first < 0 || count <= 0 then invalid_arg "Blocklist.create";
  let free = Queue.create () in
  for b = first to first + count - 1 do
    Queue.push b free
  done;
  {
    first;
    count;
    free;
    allocated = Hashtbl.create 64;
    adopted = Hashtbl.create 16;
    exported = Hashtbl.create 16;
  }

let first t = t.first

let count t = t.count

let available t = Queue.length t.free

let owns t block =
  (block >= t.first && block < t.first + t.count
  && not (Hashtbl.mem t.exported block))
  || Hashtbl.mem t.adopted block

let alloc t =
  match Queue.take_opt t.free with
  | None -> None
  | Some b ->
      Hashtbl.replace t.allocated b ();
      Some b

let alloc_many t n =
  if n < 0 then invalid_arg "Blocklist.alloc_many";
  if Queue.length t.free < n then None
  else Some (Array.init n (fun _ -> Option.get (alloc t)))

let free t block =
  if not (owns t block) then
    invalid_arg (Printf.sprintf "Blocklist.free: block %d not owned" block);
  if not (Hashtbl.mem t.allocated block) then
    invalid_arg (Printf.sprintf "Blocklist.free: block %d already free" block);
  Hashtbl.remove t.allocated block;
  Queue.push block t.free

let free_many t blocks = Array.iter (free t) blocks

let donate t n =
  let got = min n (Queue.length t.free) in
  Array.init got (fun _ ->
      let b = Queue.pop t.free in
      Hashtbl.remove t.adopted b;
      b)

let rebuild t ~live =
  (* Blocks that were allocated but are referenced by no surviving inode
     leaked in the crash; count them as reclaimed. *)
  let leaked =
    Hashtbl.fold
      (fun b () n ->
        if b >= t.first && b < t.first + t.count && not (Hashtbl.mem live b)
        then n + 1
        else n)
      t.allocated 0
  in
  (* Adopted (stolen) blocks still referenced by an inode stay owned and
     allocated; unreferenced ones return to their home partition's range —
     which we cannot reach — so they are simply forgotten (leaked across
     the whole machine, as after a real crash without a global sweep). *)
  let adopted_live =
    Hashtbl.fold
      (fun b () acc -> if Hashtbl.mem live b then b :: acc else acc)
      t.adopted []
  in
  Hashtbl.reset t.allocated;
  Hashtbl.reset t.adopted;
  Queue.clear t.free;
  List.iter
    (fun b ->
      Hashtbl.replace t.adopted b ();
      Hashtbl.replace t.allocated b ())
    adopted_live;
  for b = t.first to t.first + t.count - 1 do
    if Hashtbl.mem t.exported b then ()
    else if Hashtbl.mem live b then Hashtbl.replace t.allocated b ()
    else Queue.push b t.free
  done;
  leaked

let adopt t blocks =
  Array.iter
    (fun b ->
      if not (owns t b) then Hashtbl.replace t.adopted b ();
      Queue.push b t.free)
    blocks

let export t blocks =
  Array.iter
    (fun b ->
      Hashtbl.remove t.allocated b;
      Hashtbl.remove t.adopted b;
      if b >= t.first && b < t.first + t.count then
        Hashtbl.replace t.exported b ())
    blocks

let adopt_allocated t blocks =
  Array.iter
    (fun b ->
      Hashtbl.remove t.exported b;
      if not (b >= t.first && b < t.first + t.count) then
        Hashtbl.replace t.adopted b ();
      Hashtbl.replace t.allocated b ())
    blocks
