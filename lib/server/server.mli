(** A Hare file server (§3.1, Figure 3).

    Each server owns: a partition of the shared buffer cache, a table of
    inodes, the directory-entry shards that hash to it, server-side open
    file descriptor state, per-name client tracking lists for directory
    cache invalidation, and the rmdir mark/lock state of the three-phase
    removal protocol. It runs as a daemon fiber looping on its RPC
    endpoint; it never blocks mid-request — operations that must wait
    (pipe I/O, rmdir serialization, creates in a marked directory) park
    their reply continuations. *)

type t

val create :
  engine:Hare_sim.Engine.t ->
  config:Hare_config.Config.t ->
  sid:int ->
  core:Hare_sim.Core_res.t ->
  pcache:Hare_mem.Pcache.t ->
  dram:Hare_mem.Dram.t ->
  blocks_first:int ->
  blocks_count:int ->
  inval_ports:Hare_proto.Wire.inval Hare_msg.Mailbox.t array ->
  ?place:Hare_place.Place.t ->
  ?faults:Hare_fault.Injector.link ->
  unit ->
  t
(** [faults] attaches this server's fault-injector link (also routed into
    the request mailbox) so crashes blackhole unreliable traffic.
    [place] is the consistent-hash ring shared by the whole machine;
    when its membership plan is non-empty the server namespaces all
    home-scoped state so whole logical homes can migrate in and out. *)

val sid : t -> int

val core : t -> Hare_sim.Core_res.t

val pcache : t -> Hare_mem.Pcache.t
(** This server's private cache, for stats cross-checks (tests). *)

val endpoint : t -> (Hare_proto.Wire.fs_req, Hare_proto.Wire.fs_resp) Hare_msg.Rpc.t

(** [install_root t ~dist] creates the root directory inode; call exactly
    once, on the designated root server, before the simulation starts. *)
val install_root : t -> dist:bool -> unit

(** [start t] spawns the dispatch-loop daemon fiber. *)
val start : t -> unit

(** [set_peers t endpoints] gives the server the other servers' RPC
    endpoints, enabling the block-stealing extension (§3.2; only used
    when the configuration turns it on). Wired by [Hare.Machine.boot]. *)
val set_peers :
  t -> (Hare_proto.Wire.fs_req, Hare_proto.Wire.fs_resp) Hare_msg.Rpc.t array -> unit

(** {1 Crash and recovery (fault injection)} *)

(** [crash t] kills the server process: every parked or queued request is
    aborted (tagged copies silently — their clients retry; the rest with
    [EIO]) and all volatile state (descriptor table, idempotency memory,
    invalidation tracking) is discarded. The DRAM-resident structures —
    inodes, directory shards, block contents — survive. Must be called
    from within a fiber (replies charge compute). *)
val crash : t -> unit

(** [restart t] boots the server back up: frees orphaned blocks and
    unlinked inodes (no descriptor survived), rebuilds the free-block
    list from the surviving inodes, tells every client to flush its
    directory cache, and serves the reliable requests that queued while
    down. Must be called from within a fiber. *)
val restart : t -> unit

val is_down : t -> bool

val robust : t -> Hare_stats.Robust.t
(** Crash/dedup counters for this server. *)

(** {1 Introspection (tests, statistics)} *)

val ops : t -> Hare_stats.Opcount.t

val perf : t -> Hare_stats.Perf.t
(** Batch-dispatch counters (wakeups, batch-size histogram). *)

val invals_sent : t -> int

val blocks_stolen : t -> int
(** Blocks adopted from peers (block-stealing extension). *)

val available_blocks : t -> int

val inode_count : t -> int

val open_tokens : t -> int

val dentry_count : t -> int
(** Directory entries across every shard hosted here (cost-free). *)

val hosted_homes : t -> int list
(** The logical homes this physical server currently serves, sorted.
    A singleton [[sid]] under every static placement. *)

val homes_migrated_in : t -> int

val homes_migrated_out : t -> int

val moved_rejects : t -> int
(** Requests bounced with [EMOVED] because their home had migrated away. *)

val peak_queue : t -> int
(** Deepest request queue observed since the last {!reset_peak_queue}. *)

val reset_peak_queue : t -> unit

val queue_depth : t -> int
(** Requests queued at this server's mailbox right now (cost-free;
    read by the metrics sampler). *)

(** [shard_entries t dir] lists this server's entries for directory [dir]
    (cost-free; for tests). *)
val shard_entries : t -> Hare_proto.Types.ino -> (string * Hare_proto.Types.ino) list
