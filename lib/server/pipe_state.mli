(** Server-side pipe object.

    Pipes live at a file server and are driven by [PIPE_READ]/[PIPE_WRITE]
    RPCs. A server must never block its dispatch loop, so operations that
    cannot complete park a continuation here; state changes (new data,
    new space, an end closing) pump the parked queues. This is how Hare
    supports the shared pipe that make's jobserver requires (§5.2). *)

type t

val create : capacity:int -> t

val buffered : t -> int

val readers : t -> int

val writers : t -> int

(** [add_reader t] / [add_writer t] register one more share of an end
    (pipe creation, fork, exec transfer). *)
val add_reader : t -> unit

val add_writer : t -> unit

(** [close_reader t] / [close_writer t] drop one share; reaching zero
    wakes parked peers (EOF for readers, EPIPE for writers). *)
val close_reader : t -> unit

val close_writer : t -> unit

(** [read t ~len k] delivers up to [len] buffered bytes to [k] as soon as
    any are available; [k (Ok "")] signals EOF (no buffered data and no
    open writers), [k (Error EIO)] that the server crashed while the read
    was parked. *)
val read : t -> len:int -> ((string, Hare_proto.Errno.t) result -> unit) -> unit

(** [write t data k] appends [data] once there is space; [k] receives the
    byte count or [EPIPE] if no read end remains. Writes of a chunk are
    atomic (the chunk is never interleaved with another writer's). *)
val write : t -> string -> ((int, Hare_proto.Errno.t) result -> unit) -> unit

val parked_readers : t -> int

val parked_writers : t -> int

(** [abort_parked t] fails every parked read and write with [EIO] and
    clears both queues (server crash); returns how many were aborted. *)
val abort_parked : t -> int
