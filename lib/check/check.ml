(* Coherence sanitizer: ThreadSanitizer-style happens-before race
   detection plus a Hare protocol lint pass, over the simulated machine.

   One vector clock per core. Clocks advance on communication — a
   mailbox send snapshots the sender's clock and ticks it; the matching
   receive joins the snapshot into the receiver (pointwise max, no tick)
   — and on shadow write events (dirtying a copy, a write-back reaching
   DRAM), which tick the writer so that a write is ordered before
   another core's use only via a real message chain: a freshly ticked
   epoch is strictly above every previously sent snapshot. RPC replies
   ride the same mechanism via a stamp stashed on the reply ivar.
   Everything that happens on one core is totally ordered by the core's
   own component (cores are single-threaded in the simulation), so an
   event's epoch is just [vc.(c).(c)] and "event e on core c' is
   visible to core c" is [e <= vc.(c).(c')].

   Per cache line the checker keeps shadow metadata: which version each
   core's pcache copy is based on, whether that copy is dirty (and the
   epoch of the first dirtying write), the last write to reach DRAM, and
   per-core read epochs. Pcache fills/hits/evictions/write-backs/
   invalidations drive the shadow state and are checked against the
   happens-before order; violations increment Hare_stats.Sanity counters
   and record a capped list of earliest occurrences.

   ZERO PERTURBATION INVARIANT: nothing in this module may charge
   simulated cycles, sleep, touch the simulation RNG, or otherwise
   influence scheduling. All entry points are plain state updates; the
   [now] closure is read-only. The self-tests assert bit-identical clocks
   with the checker on vs. off. *)

type stamp = int array

type rule =
  | Stale_read
  | Lost_write
  | Write_race
  | Missed_writeback
  | Open_inval
  | Close_writeback
  | Dircache_stale
  | Fd_leak
  | Lease_leak

let rule_name = function
  | Stale_read -> "stale-read"
  | Lost_write -> "lost-write"
  | Write_race -> "write-race"
  | Missed_writeback -> "missed-writeback"
  | Open_inval -> "open-inval"
  | Close_writeback -> "close-writeback"
  | Dircache_stale -> "dircache-stale"
  | Fd_leak -> "fd-leak"
  | Lease_leak -> "lease-leak"

type violation = { rule : rule; detail : string; time : int64 }

(* A core's private-cache copy of one line: which DRAM version it was
   filled from ([base_core]/[base_epoch] identify the write, -1 = the
   pristine zero-filled line), whether the copy has unflushed local
   writes, and the epoch of the first such write. *)
type copy = {
  mutable base_core : int;
  mutable base_epoch : int;
  mutable dirty : bool;
  mutable d_epoch : int;
}

type lstate = {
  copies : copy option array; (* per core; None = not resident *)
  readers : int array; (* per core: epoch of latest read, 0 = never *)
  mutable w_core : int; (* core of last write to reach DRAM, -1 = none *)
  mutable w_epoch : int;
}

type t = {
  ncores : int;
  vc : int array array; (* vc.(c) = core c's vector clock *)
  chans : (int, stamp Queue.t) Hashtbl.t;
  mutable next_chan : int;
  lines : (int, lstate) Hashtbl.t;
  (* Outstanding dircache invalidations: the server sent Inval_entry to
     [client] and the protocol owes an application of it before the
     client's next cache hit on that name. *)
  obligations : (int * int * int * string, unit) Hashtbl.t;
  stats : Hare_stats.Sanity.t;
  mutable violations : violation list; (* newest first, capped *)
  mutable nviol : int;
  mutable now : unit -> int64;
}

let max_recorded = 100

let create ~ncores () =
  {
    ncores;
    vc = Array.init ncores (fun _ -> Array.make ncores 0);
    chans = Hashtbl.create 64;
    next_chan = 0;
    lines = Hashtbl.create 4096;
    obligations = Hashtbl.create 64;
    stats = Hare_stats.Sanity.create ();
    violations = [];
    nviol = 0;
    now = (fun () -> 0L);
  }

let set_now t f = t.now <- f

let stats t = t.stats

let violations t = List.rev t.violations

let total_violations t = Hare_stats.Sanity.total_violations t.stats

let report t = Hare_stats.Sanity.violations t.stats

let bump t rule =
  let s = t.stats in
  match rule with
  | Stale_read -> s.stale_reads <- s.stale_reads + 1
  | Lost_write -> s.lost_writes <- s.lost_writes + 1
  | Write_race -> s.write_races <- s.write_races + 1
  | Missed_writeback -> s.missed_writebacks <- s.missed_writebacks + 1
  | Open_inval -> s.open_invals <- s.open_invals + 1
  | Close_writeback -> s.close_writebacks <- s.close_writebacks + 1
  | Dircache_stale -> s.dircache_stale <- s.dircache_stale + 1
  | Fd_leak -> s.fd_leaks <- s.fd_leaks + 1
  | Lease_leak -> s.lease_leaks <- s.lease_leaks + 1

let violate t rule detail =
  bump t rule;
  if t.nviol < max_recorded then begin
    t.violations <- { rule; detail; time = t.now () } :: t.violations;
    t.nviol <- t.nviol + 1
  end

(* ---------- happens-before machinery ---------------------------------- *)

let epoch t ~core = t.vc.(core).(core)

(* Write events get a fresh epoch: strictly above every snapshot this
   core sent earlier, so the write is HB-visible elsewhere only through
   a message sent at-or-after it. *)
let tick t ~core =
  let c = t.vc.(core) in
  c.(core) <- c.(core) + 1;
  c.(core)

(* Snapshot-then-tick: the snapshot carries everything the sender did up
   to and including this send; work the sender does afterwards gets a
   strictly larger own-component and stays concurrent to the receiver. *)
let msg_stamp t ~core =
  let s = Array.copy t.vc.(core) in
  t.vc.(core).(core) <- t.vc.(core).(core) + 1;
  s

let join t ~core (s : stamp) =
  let c = t.vc.(core) in
  for i = 0 to t.ncores - 1 do
    if s.(i) > c.(i) then c.(i) <- s.(i)
  done;
  t.stats.hb_joins <- t.stats.hb_joins + 1

(* [e <= vc.(core).(of_core)]: has [core] heard about event [e] that
   happened on [of_core]? Events on one core are ordered by its own
   epoch counter. *)
let hb t ~core ~of_core e = e <= t.vc.(core).(of_core)

(* Per-channel stamp queues mirror mailbox FIFOs: a send pushes its stamp
   in delivery order (after fault drop/dup/delay dice have resolved), a
   receive pops and joins. Alignment with the real queue is structural —
   push happens exactly where the message enters the Bqueue. *)
let new_chan t =
  let id = t.next_chan in
  t.next_chan <- id + 1;
  Hashtbl.replace t.chans id (Queue.create ());
  id

let chan_push t ~chan (s : stamp) =
  match Hashtbl.find_opt t.chans chan with
  | Some q -> Queue.push s q
  | None -> ()

let chan_pop t ~chan ~core =
  match Hashtbl.find_opt t.chans chan with
  | Some q -> ( match Queue.take_opt q with Some s -> join t ~core s | None -> ())
  | None -> ()

(* ---------- shadow line state ----------------------------------------- *)

let line t key =
  match Hashtbl.find_opt t.lines key with
  | Some l -> l
  | None ->
      let l =
        {
          copies = Array.make t.ncores None;
          readers = Array.make t.ncores 0;
          w_core = -1;
          w_epoch = 0;
        }
      in
      Hashtbl.replace t.lines key l;
      t.stats.lines_tracked <- t.stats.lines_tracked + 1;
      l

let fresh_copy ls =
  { base_core = ls.w_core; base_epoch = ls.w_epoch; dirty = false; d_epoch = 0 }

let based_on_current ls (cp : copy) =
  cp.base_core = ls.w_core && cp.base_epoch = ls.w_epoch

(* Some other core holds a dirty copy of this line while [core] is about
   to use it. If that foreign write is HB-ordered before us, the protocol
   should have written it back first (missed-writeback); if it is
   concurrent and we are writing too, it is a plain write-write race. *)
let check_foreign_dirty t ls ~core ~key ~racy_unordered =
  Array.iteri
    (fun c cp_opt ->
      match cp_opt with
      | Some cp when c <> core && cp.dirty ->
          if hb t ~core ~of_core:c cp.d_epoch then
            violate t Missed_writeback
              (Printf.sprintf
                 "line %d: core %d uses line while core %d holds an \
                  ordered-earlier dirty copy (no write-back)"
                 key core c)
          else if racy_unordered then
            violate t Write_race
              (Printf.sprintf
                 "line %d: cores %d and %d dirty the same line unordered" key
                 core c)
      | _ -> ())
    ls.copies

(* A checked access through a core's private cache. [filled] is whether
   the real pcache had to fetch the line from DRAM (miss) as opposed to
   hitting a resident copy. On a fill we validate the version the copy is
   (re)based on; on a hit we validate the *old* copy the core is reusing. *)
let cache_access t ~core ~key ~write ~filled =
  let ls = line t key in
  if filled then t.stats.cache_fills <- t.stats.cache_fills + 1
  else t.stats.cache_hits <- t.stats.cache_hits + 1;
  let cp_opt = if filled then None else ls.copies.(core) in
  (match cp_opt with
  | Some cp when ls.w_core >= 0 && not (based_on_current ls cp) ->
      (* Reusing a cached copy that predates the last DRAM write. *)
      if hb t ~core ~of_core:ls.w_core ls.w_epoch then
        violate t
          (if write then Lost_write else Stale_read)
          (Printf.sprintf
             "line %d: core %d %s a cached copy superseded by core %d's \
              ordered-earlier write (missing invalidation)"
             key core
             (if write then "overwrites" else "reads")
             ls.w_core)
      else if write && ls.w_core <> core then
        violate t Write_race
          (Printf.sprintf "line %d: cores %d and %d write the same line \
                           unordered" key core ls.w_core)
  | _ -> ());
  check_foreign_dirty t ls ~core ~key ~racy_unordered:write;
  let cp =
    match cp_opt with
    | Some cp -> cp
    | None ->
        let cp = fresh_copy ls in
        ls.copies.(core) <- Some cp;
        cp
  in
  if write then begin
    if not cp.dirty then begin
      cp.dirty <- true;
      cp.d_epoch <- tick t ~core
    end
  end
  else ls.readers.(core) <- epoch t ~core

(* Dirty line flushed to DRAM. If DRAM moved past the version this copy
   was based on, the flush clobbers that newer data. *)
let cache_writeback t ~core ~key =
  let ls = line t key in
  t.stats.cache_writebacks <- t.stats.cache_writebacks + 1;
  (match ls.copies.(core) with
  | Some cp when ls.w_core >= 0 && ls.w_core <> core && not (based_on_current ls cp)
    ->
      if hb t ~core ~of_core:ls.w_core ls.w_epoch then
        violate t Lost_write
          (Printf.sprintf
             "line %d: core %d's write-back clobbers core %d's \
              ordered-earlier write"
             key core ls.w_core)
      else
        violate t Write_race
          (Printf.sprintf
             "line %d: cores %d and %d write back the same line unordered" key
             core ls.w_core)
  | _ -> ());
  let e = tick t ~core in
  ls.w_core <- core;
  ls.w_epoch <- e;
  (match ls.copies.(core) with
  | Some cp ->
      cp.dirty <- false;
      cp.base_core <- core;
      cp.base_epoch <- e
  | None ->
      (* Flush of a line the shadow never saw resident: adopt it. *)
      ls.copies.(core) <-
        Some { base_core = core; base_epoch = e; dirty = false; d_epoch = 0 })

let cache_evict t ~core ~key =
  let ls = line t key in
  t.stats.cache_evictions <- t.stats.cache_evictions + 1;
  ls.copies.(core) <- None

let cache_invalidate t ~core ~key ~dirty =
  let ls = line t key in
  t.stats.cache_invalidated <- t.stats.cache_invalidated + 1;
  if dirty then t.stats.dirty_discarded <- t.stats.dirty_discarded + 1;
  ls.copies.(core) <- None

(* Coherent (read-through/write-through) access, used by servers for
   shared metadata and data paths: the line is fetched fresh and any
   local write goes straight to DRAM, so the copy is never left dirty. *)
let coherent_access t ~core ~key ~write ~filled =
  let ls = line t key in
  if filled then t.stats.cache_fills <- t.stats.cache_fills + 1
  else t.stats.cache_hits <- t.stats.cache_hits + 1;
  (match ls.copies.(core) with
  | Some cp when cp.dirty ->
      (* A coherent access re-fetches from DRAM, silently discarding any
         buffered local writes — the protocol must never mix modes. *)
      violate t Lost_write
        (Printf.sprintf
           "line %d: coherent access on core %d discards its own dirty \
            buffered copy"
           key core)
  | _ -> ());
  check_foreign_dirty t ls ~core ~key ~racy_unordered:write;
  if write then begin
    let e = tick t ~core in
    ls.w_core <- core;
    ls.w_epoch <- e
  end
  else ls.readers.(core) <- epoch t ~core;
  ls.copies.(core) <-
    Some
      { base_core = ls.w_core; base_epoch = ls.w_epoch; dirty = false; d_epoch = 0 }

(* ---------- protocol lint rules --------------------------------------- *)

(* Close-to-open: opening a file in direct (uncached-metadata) mode must
   invalidate every locally cached line of it before the first read. *)
let lint_open t ~core ~keys =
  let resident =
    List.fold_left
      (fun acc key ->
        match Hashtbl.find_opt t.lines key with
        | Some ls when ls.copies.(core) <> None -> acc + 1
        | _ -> acc)
      0 keys
  in
  if resident > 0 then
    violate t Open_inval
      (Printf.sprintf
         "core %d: open left %d cached line(s) of the file resident \
          (close-to-open invalidation skipped)"
         core resident)

(* Write-back before close/fsync: after the flush point, none of the
   file's lines may remain dirty in this core's cache. *)
let lint_flush t ~core ~keys ~what =
  let dirty =
    List.fold_left
      (fun acc key ->
        match Hashtbl.find_opt t.lines key with
        | Some ls -> (
            match ls.copies.(core) with
            | Some cp when cp.dirty -> acc + 1
            | _ -> acc)
        | None -> acc)
      0 keys
  in
  if dirty > 0 then
    violate t Close_writeback
      (Printf.sprintf
         "core %d: %s left %d dirty line(s) unflushed (write-back skipped)"
         core what dirty)

let lint_exit t ~core ~fds ~leases =
  if fds > 0 then
    violate t Fd_leak
      (Printf.sprintf "core %d: process exited with %d open fd(s)" core fds);
  if leases > 0 then
    violate t Lease_leak
      (Printf.sprintf
         "core %d: process exited holding %d unreturned allocation lease \
          block(s)"
         core leases)

(* ---------- dircache obligation tracking ------------------------------ *)

let dircache_sent t ~client ~server ~ino ~name =
  Hashtbl.replace t.obligations (client, server, ino, name) ()

let dircache_applied t ~client ~server ~ino ~name =
  Hashtbl.remove t.obligations (client, server, ino, name)

let dircache_flushed t ~client =
  let stale =
    Hashtbl.fold
      (fun ((c, _, _, _) as k) () acc -> if c = client then k :: acc else acc)
      t.obligations []
  in
  List.iter (Hashtbl.remove t.obligations) stale

let dircache_hit t ~client ~server ~ino ~name =
  if Hashtbl.mem t.obligations (client, server, ino, name) then
    violate t Dircache_stale
      (Printf.sprintf
         "client %d: dircache hit on (%d/%d, %S) with an undelivered \
          invalidation outstanding"
         client server ino name)

let pp_violation ppf v =
  Fmt.pf ppf "[%Ld] %s: %s" v.time (rule_name v.rule) v.detail
