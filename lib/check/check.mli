(** Coherence sanitizer: happens-before race detector + protocol lint
    pass for the simulated machine (DESIGN.md §1f).

    The checker keeps one vector clock per core, advanced by mailbox
    send/recv and RPC-reply edges, and per-DRAM-line shadow metadata
    (last DRAM write, per-core cached-copy version + dirty epoch,
    per-core read epochs). Pcache fills, hits, dirty evictions,
    invalidations and write-backs are checked against the
    happens-before order; on top, lint rules assert Hare's own
    protocol obligations (close-to-open invalidation, write-back before
    close/fsync, dircache invalidation delivery, no fd/lease leaks at
    exit).

    Zero-perturbation invariant: no entry point charges simulated
    cycles, sleeps, or touches the simulation RNG. Running with the
    checker on must leave simulated clocks bit-identical to a
    checker-off run of the same seed (asserted by test/test_check.ml).

    This library is a dependency leaf (fmt + hare_stats only): line
    keys, core ids and channel ids are opaque integers supplied by the
    callers. *)

type t

type stamp
(** Snapshot of a sender's vector clock, carried alongside a message or
    stashed on a reply ivar, and joined into the receiver's clock. *)

type rule =
  | Stale_read  (** read of a cached copy superseded by an ordered-earlier write *)
  | Lost_write  (** dirty data clobbered (missing invalidation or conflicting write-back) *)
  | Write_race  (** two cores dirty/write the same line with no HB order *)
  | Missed_writeback  (** line used while another core holds an ordered-earlier dirty copy *)
  | Open_inval  (** close-to-open: open left file lines resident *)
  | Close_writeback  (** close/fsync left dirty lines unflushed *)
  | Dircache_stale  (** dircache hit with an undelivered invalidation outstanding *)
  | Fd_leak  (** process exit with open fds *)
  | Lease_leak  (** process exit holding allocation-lease blocks *)

val rule_name : rule -> string

type violation = { rule : rule; detail : string; time : int64 }

val create : ncores:int -> unit -> t

val set_now : t -> (unit -> int64) -> unit
(** Install a read-only clock used only to timestamp recorded
    violations. *)

(** {1 Happens-before edges} *)

val msg_stamp : t -> core:int -> stamp
(** Snapshot the sender's clock and tick it (snapshot-then-tick, so
    post-send work stays concurrent to the receiver). *)

val join : t -> core:int -> stamp -> unit
(** Pointwise-max a stamp into [core]'s clock (receive edge). *)

val new_chan : t -> int
(** Allocate a stamp FIFO mirroring one mailbox's queue. *)

val chan_push : t -> chan:int -> stamp -> unit
(** Enqueue a stamp in delivery order (call exactly where the real
    message enters the mailbox queue, after fault dice resolve). *)

val chan_pop : t -> chan:int -> core:int -> unit
(** Dequeue the next stamp and join it into the receiver. No-op on an
    empty or unknown channel (defensive). *)

(** {1 Shadow cache events}

    [key] is an opaque per-DRAM-line integer (the pcache line key).
    [filled] distinguishes a miss that fetched from DRAM from a hit on
    a resident copy. *)

val cache_access : t -> core:int -> key:int -> write:bool -> filled:bool -> unit
(** Checked access through a core's private write-back cache. *)

val coherent_access :
  t -> core:int -> key:int -> write:bool -> filled:bool -> unit
(** Read-through/write-through access (server shared data paths): the
    copy is never left dirty; flags a buffered-dirty copy it would
    silently discard. *)

val cache_writeback : t -> core:int -> key:int -> unit
(** Dirty line flushed to DRAM; checks for clobbering a newer DRAM
    version, then advances the line's last-writer to this core. *)

val cache_evict : t -> core:int -> key:int -> unit
(** Clean line dropped by LRU pressure (dirty evictions flush first and
    report {!cache_writeback} separately). *)

val cache_invalidate : t -> core:int -> key:int -> dirty:bool -> unit
(** Explicit invalidation; [dirty] counts discarded local writes
    (informational — close-to-open makes discarding intentional). *)

(** {1 Protocol lint rules} *)

val lint_open : t -> core:int -> keys:int list -> unit
(** After a direct-mode open's invalidation step: none of the file's
    lines may remain resident in this core's cache. *)

val lint_flush : t -> core:int -> keys:int list -> what:string -> unit
(** After the write-back step of close/fsync/truncate ([what] names
    it): none of the listed lines may remain dirty. *)

val lint_exit : t -> core:int -> fds:int -> leases:int -> unit
(** At process exit: [fds] open non-console descriptors and [leases]
    unreturned allocation-lease blocks must both be zero. *)

(** {1 Dircache invalidation obligations} *)

val dircache_sent :
  t -> client:int -> server:int -> ino:int -> name:string -> unit
(** Server sent [Inval_entry] for [(server/ino, name)] to [client]. *)

val dircache_applied :
  t -> client:int -> server:int -> ino:int -> name:string -> unit
(** Client drained and applied the matching invalidation. *)

val dircache_flushed : t -> client:int -> unit
(** Client flushed its whole dircache ([Inval_all]); clears every
    obligation owed to it. *)

val dircache_hit :
  t -> client:int -> server:int -> ino:int -> name:string -> unit
(** Dircache returned a hit; fires [Dircache_stale] if an obligation
    for this entry is still outstanding. *)

(** {1 Reporting} *)

val stats : t -> Hare_stats.Sanity.t

val total_violations : t -> int

val violations : t -> violation list
(** Earliest violations, in order of occurrence (capped at 100). *)

val report : t -> (string * int) list
(** Per-rule violation counts, stable display order. *)

val pp_violation : Format.formatter -> violation -> unit
