(** The POSIX system-call surface Hare exposes to programs.

    Every call takes the calling {!Hare_proc.Process.t} (the simulated
    equivalent of "the current process") and must run inside that
    process's fiber. File and directory calls delegate to the core's
    client library; process calls implement fork, remote exec with proxy
    processes (§3.5), wait and signals. Errors raise
    {!Hare_proto.Errno.Error}. *)

open Hare_proto
module P := Hare_proc.Process

(** {1 Files} *)

val openf : P.t -> string -> Types.open_flags -> int

val creat : P.t -> string -> int
(** [openf] with create+truncate+write flags. *)

val close : P.t -> int -> unit

val read : P.t -> int -> len:int -> string

val write : P.t -> int -> string -> int

val write_all : P.t -> int -> string -> unit
(** Loop until the whole buffer is written (pipes may take partial
    chunks). *)

val read_all : P.t -> int -> string
(** Read to EOF. *)

val lseek : P.t -> int -> pos:int -> Types.whence -> int

val dup : P.t -> int -> int

val dup2 : P.t -> src:int -> dst:int -> int

val pipe : P.t -> int * int

val fsync : P.t -> int -> unit

val ftruncate : P.t -> int -> size:int -> unit

val fstat : P.t -> int -> Types.attr

(** {1 Name space} *)

val unlink : P.t -> string -> unit

val mkdir : P.t -> ?dist:bool -> string -> unit

val rmdir : P.t -> string -> unit

val rename : P.t -> string -> string -> unit

val readdir : P.t -> string -> Wire.entry list

val stat : P.t -> string -> Types.attr

val exists : P.t -> string -> bool

val chdir : P.t -> string -> unit

val getcwd : P.t -> string

(** {1 Processes} *)

val getpid : P.t -> Types.pid

val fork : P.t -> (P.t -> int) -> Types.pid
(** [fork p child] creates a child process {e on the same core} (the
    paper's fork never migrates) running [child]; file descriptors become
    shared (§3.4). Returns the child's pid. *)

val exec : P.t -> prog:string -> args:string list -> int
(** Replace this process: pick a core by the configured policy, ship the
    program name, arguments, environment and descriptor table to that
    core's scheduling server, and turn into a proxy that relays console
    output and signals and finally returns the remote process's exit
    status (§3.5). The caller should return the result as its own
    status. *)

val spawn : P.t -> prog:string -> args:string list -> Types.pid
(** fork + exec. *)

val wait : P.t -> Types.pid * int
(** Wait for any child; raises [ECHILD] if none remain. *)

val waitpid : P.t -> Types.pid -> int

val kill : P.t -> Types.pid -> int -> unit

val exit : P.t -> int -> 'a

val getenv : P.t -> string -> string option

val setenv : P.t -> string -> string -> unit

(** {1 Simulation helpers} *)

val compute : P.t -> int -> unit
(** Burn CPU cycles on the process's core (models application compute,
    e.g. compilation or decompression work). *)

val now_cycles : P.t -> int64
(** Current simulated clock. *)

val sleep_until : P.t -> int64 -> unit
(** Idle (blocked, not computing) until the given instant; returns
    immediately if it is already past. Open-loop workload pacing. *)

val print : P.t -> string -> unit
(** Write to fd 1. *)

val sbrk_noop : unit
[@@deprecated "memory is not modelled; placeholder for API parity"]
