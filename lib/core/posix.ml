open Hare_sim
open Hare_proto
module P = Hare_proc.Process
module Client = Hare_client.Client
module Fdtable = Hare_client.Fdtable
module Path = Hare_client.Path

let src = Logs.Src.create "hare.posix" ~doc:"Hare POSIX layer"

module Log = (val Logs.src_log src : Logs.LOG)

let client = P.client

let costs (p : P.t) = p.P.k.P.k_config.Hare_config.Config.costs

(* ---------- files ------------------------------------------------------- *)

let openf p path flags = Client.openf (client p) p.P.fdt ~cwd:p.P.cwd path flags

let creat p path = openf p path Types.flags_w

let close p fd = Client.close (client p) p.P.fdt fd

let read p fd ~len = Client.read (client p) p.P.fdt fd ~len

let write p fd data = Client.write (client p) p.P.fdt fd data

let write_all p fd data =
  let len = String.length data in
  let rec go off =
    if off < len then begin
      let n = write p fd (String.sub data off (len - off)) in
      if n <= 0 then Errno.raise_errno Errno.EPIPE "write_all"
      else go (off + n)
    end
  in
  go 0

let read_all p fd =
  let buf = Buffer.create 4096 in
  let rec go () =
    let chunk = read p fd ~len:65536 in
    if chunk <> "" then begin
      Buffer.add_string buf chunk;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let lseek p fd ~pos whence = Client.lseek (client p) p.P.fdt fd ~pos whence

let dup p fd = Client.dup (client p) p.P.fdt fd

let dup2 p ~src ~dst = Client.dup2 (client p) p.P.fdt ~src ~dst

let pipe p = Client.pipe (client p) p.P.fdt

let fsync p fd = Client.fsync (client p) p.P.fdt fd

let ftruncate p fd ~size = Client.ftruncate (client p) p.P.fdt fd ~size

let fstat p fd = Client.fstat (client p) p.P.fdt fd

(* ---------- name space -------------------------------------------------- *)

let unlink p path = Client.unlink (client p) ~cwd:p.P.cwd path

let mkdir p ?dist path = Client.mkdir (client p) ~cwd:p.P.cwd ?dist path

let rmdir p path = Client.rmdir (client p) ~cwd:p.P.cwd path

let rename p a b = Client.rename (client p) ~cwd:p.P.cwd a b

let readdir p path = Client.readdir (client p) ~cwd:p.P.cwd path

let stat p path = Client.stat (client p) ~cwd:p.P.cwd path

let exists p path =
  match stat p path with
  | (_ : Types.attr) -> true
  | exception Errno.Error ((Errno.ENOENT | Errno.ENOTDIR), _) -> false

let chdir p path =
  let a = stat p path in
  if a.Types.a_ftype <> Types.Dir then Errno.raise_errno Errno.ENOTDIR path;
  p.P.cwd <- Path.join p.P.cwd path

let getcwd (p : P.t) = p.P.cwd

(* ---------- processes --------------------------------------------------- *)

let getpid (p : P.t) = p.P.pid

let exit (_ : P.t) status = raise (P.Exited status)

let getenv (p : P.t) name = List.assoc_opt name p.P.env

let setenv (p : P.t) name value =
  p.P.env <- (name, value) :: List.remove_assoc name p.P.env

let compute (p : P.t) cycles = Core_res.compute (P.core p) cycles

let now_cycles (p : P.t) = Engine.now (Core_res.engine (P.core p))

(* Open-loop pacing: idle (blocked, not computing) until [target]. *)
let sleep_until (p : P.t) target =
  let dt = Int64.sub target (now_cycles p) in
  if dt > 0L then Engine.sleep dt

let print p s = ignore (write p 1 s)

let fork (p : P.t) child_body =
  (* Local only (§5.2): the child shares the core — and, after the
     synchronous share RPCs below, the file descriptors (§3.4). *)
  Core_res.compute (P.core p) (costs p).spawn_process;
  let fdt = Client.fork_fds (client p) p.P.fdt in
  let child =
    P.make ~k:p.P.k ~core:p.P.core_id ~parent:p ~fdt ~cwd:p.P.cwd ~env:p.P.env
      ~rr_next:p.P.rr_next ()
  in
  (* Round-robin state propagates from parent to child (§3.5): the child
     inherits the cursor and the parent advances, so consecutive
     fork+exec children land on consecutive cores. *)
  p.P.rr_next <- p.P.rr_next + 1;
  P.run child child_body;
  child.P.pid

(* Turn console descriptors into proxy-routed references so the remote
   process's output flows back through us (§3.5), and remember the local
   sink we should append relayed output to. *)
let rewrite_consoles proxy_port fds =
  let sink = ref None in
  let fds =
    List.map
      (fun (fd, x) ->
        match x with
        | Wire.Xconsole (Wire.Console_local buf) ->
            if !sink = None then sink := Some buf;
            (fd, Wire.Xconsole (Wire.Console_remote proxy_port))
        | Wire.Xconsole (Wire.Console_remote _) | Wire.Xfile _ | Wire.Xpipe _ ->
            (fd, x))
      fds
  in
  (fds, !sink)

let drop_fds_without_closing (p : P.t) =
  List.iter (fun fd -> Fdtable.remove p.P.fdt fd) (Fdtable.fds p.P.fdt)

let exec (p : P.t) ~prog ~args =
  let k = p.P.k in
  let target = Hare_sched.Policy.pick_core p in
  let proxy_port =
    Hare_msg.Mailbox.create ~owner:(P.core p) ~costs:(costs p) ()
  in
  let fds, console_sink =
    rewrite_consoles proxy_port (Client.export_fds p.P.fdt)
  in
  let req =
    Wire.S_exec
      {
        prog;
        args;
        env = p.P.env;
        cwd_path = p.P.cwd;
        fds;
        proxy = proxy_port;
        rr_next = p.P.rr_next;
      }
  in
  match Hare_msg.Rpc.call k.P.k_sched_ports.(target) ~from:(P.core p) req with
  | Error e -> Errno.raise_errno e prog
  | Ok child_pid ->
      (* We are now the proxy: our descriptors belong to the child. *)
      drop_fds_without_closing p;
      p.P.proxy_port <- Some proxy_port;
      (* A signal that arrived while we were still mid-exec (before the
         proxy port existed) set our killed flag instead of being
         relayed; forward it now so it is not lost. *)
      if p.P.killed then
        ignore
          (Hare_msg.Rpc.call
             k.P.k_sched_ports.(Types.core_of_pid child_pid)
             ~from:(P.core p)
             (Wire.S_signal { pid = child_pid; signal = Hare_proc.Process.sigterm }));
      let rec proxy_loop () =
        match Hare_msg.Mailbox.recv proxy_port with
        | Wire.Pm_child_exit status ->
            p.P.proxy_port <- None;
            status
        | Wire.Pm_console_write { data; ack } ->
            (match console_sink with
            | Some buf -> Buffer.add_string buf data
            | None -> ());
            Ivar.fill ack ();
            proxy_loop ()
        | Wire.Pm_signal signal ->
            (* Relay the signal to the child's core (§3.5). *)
            ignore
              (Hare_msg.Rpc.call
                 k.P.k_sched_ports.(Types.core_of_pid child_pid)
                 ~from:(P.core p)
                 (Wire.S_signal { pid = child_pid; signal }));
            proxy_loop ()
      in
      proxy_loop ()

let spawn p ~prog ~args = fork p (fun child -> exec child ~prog ~args)

let reap (p : P.t) pid (_status : int) =
  p.P.children <- List.filter (fun c -> c.P.pid <> pid) p.P.children

let wait (p : P.t) =
  match p.P.reaped with
  | (pid, status) :: rest ->
      p.P.reaped <- rest;
      reap p pid status;
      (pid, status)
  | [] ->
      if p.P.children = [] then Errno.raise_errno Errno.ECHILD "wait";
      let pid, status = Bqueue.pop p.P.child_exits in
      reap p pid status;
      (pid, status)

let waitpid (p : P.t) pid =
  let rec scan_reaped acc = function
    | [] -> None
    | (rp, st) :: rest when rp = pid ->
        p.P.reaped <- List.rev_append acc rest;
        Some st
    | entry :: rest -> scan_reaped (entry :: acc) rest
  in
  match scan_reaped [] p.P.reaped with
  | Some status ->
      reap p pid status;
      status
  | None ->
      if not (List.exists (fun c -> c.P.pid = pid) p.P.children) then
        Errno.raise_errno Errno.ECHILD (string_of_int pid);
      let rec await () =
        let rp, status = Bqueue.pop p.P.child_exits in
        if rp = pid then begin
          reap p pid status;
          status
        end
        else begin
          p.P.reaped <- p.P.reaped @ [ (rp, status) ];
          await ()
        end
      in
      await ()

let kill (p : P.t) pid signal =
  let core = Types.core_of_pid pid in
  if core < 0 || core >= Array.length p.P.k.P.k_sched_ports then
    Errno.raise_errno Errno.ESRCH (string_of_int pid);
  match
    Hare_msg.Rpc.call p.P.k.P.k_sched_ports.(core) ~from:(P.core p)
      (Wire.S_signal { pid; signal })
  with
  | Ok _ -> ()
  | Error e -> Errno.raise_errno e (string_of_int pid)

let sbrk_noop = ()
