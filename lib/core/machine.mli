(** Booting and running a simulated Hare machine.

    [boot] assembles the full system of Figure 2 on the simulated
    non-cache-coherent multicore: one core resource and private cache per
    core, the shared DRAM holding the partitioned buffer cache, a file
    server per configured server core, a client library and a scheduling
    server per core, and the root directory on the designated server.

    Typical use:
    {[
      let m = Machine.boot (Config.v ~ncores:4 ()) in
      Machine.register_program m "worker" (fun proc args -> ...);
      let init, console = Machine.spawn_init m (fun proc -> ...) in
      Machine.run m;
      assert (Machine.exit_status m init = Some 0)
    ]} *)

type t

val boot : Hare_config.Config.t -> t

val engine : t -> Hare_sim.Engine.t

val config : t -> Hare_config.Config.t

val kctx : t -> Hare_proc.Process.kctx

val servers : t -> Hare_server.Server.t array

val clients : t -> Hare_client.Client.t array

val place : t -> Hare_place.Place.t option
(** The consistent-hash ring, present iff the placement is [Sharded]. *)

val server_loads : t -> (int * int * int) list
(** Per physical server: [(sid, ops served, peak request-queue depth)].
    Ops accumulate since boot; peaks since the last {!reset_perf}. *)

val imbalance : t -> float
(** Max/mean ratio of served operations over the servers that served
    anything — 1.0 is a perfectly even ring. *)

val total_moved_retries : t -> int
(** Client re-sends after an [EMOVED] bounce (shard migration races). *)

val total_moved_rejects : t -> int
(** Server-side [EMOVED] bounces issued. *)

val dram : t -> Hare_mem.Dram.t

val register_program : t -> string -> Hare_proc.Program.body -> unit

val spawn_init :
  t ->
  ?core:int ->
  ?cwd:string ->
  ?args:string list ->
  name:string ->
  (Hare_proc.Process.t -> string list -> int) ->
  Hare_proc.Process.t * Buffer.t
(** Create an initial process (fds 0-2 bound to a fresh console buffer,
    returned) on [core] (default: the first application core) and
    schedule its body. *)

val run : t -> unit
(** Run the simulation to completion (all processes exited). *)

val run_for : t -> int64 -> unit

val exit_status : t -> Hare_proc.Process.t -> int option

val now : t -> int64
(** Simulated time, cycles. *)

val seconds : t -> float
(** Simulated time, seconds. *)

(** {1 Aggregate statistics} *)

val total_syscalls : t -> Hare_stats.Opcount.t
(** Merged per-client POSIX-call counts (Figure 5). *)

val total_server_ops : t -> Hare_stats.Opcount.t

val total_rpcs : t -> int

val total_invals : t -> int

val robustness : t -> Hare_stats.Robust.t
(** Merged fault/recovery counters: injector verdicts, per-server
    crash/dedup counts, per-client timeout/retry counts, and dircache
    flushes. All zero when no fault plan is configured. *)

val perf : t -> Hare_stats.Perf.t
(** Merged pipelining/batching/extent counters from every server and
    client: window high-water mark, batch-size histogram, extent-lease
    hit rate. Inert (batches = wakeups, everything else zero) when
    [rpc_window], [batch_max] and [alloc_extent] are all 1. *)

val trace : t -> Hare_trace.Trace.t option
(** The trace sink installed at boot when [config.trace_enabled], or
    [None]. The sink is host-side bookkeeping only: the simulation's
    clocks and operation counts are bit-identical with tracing on or
    off. *)

val metrics : t -> Hare_metrics.Metrics.t option
(** The time-series gauge registry installed at boot when
    [config.metrics_interval > 0], or [None]. Sampling happens on the
    engine's event-loop hook and is host-side bookkeeping only:
    simulated clocks and operation counts are bit-identical with
    metrics on or off. *)

val check : t -> Hare_check.Check.t option
(** The coherence sanitizer installed at boot when
    [config.check_enabled], or [None]. Like the trace sink it is
    host-side bookkeeping only: simulated clocks are bit-identical with
    checking on or off. *)

val reset_perf : t -> unit
(** Zero every server's and client's {!Hare_stats.Perf} and
    {!Hare_stats.Robust} counters (including the fault injector's and
    the endpoints' credit-block counts), so a subsequent timed region
    reports only its own activity. *)

val utilization : t -> (int * float) list
(** Per-core busy fraction (busy cycles / elapsed cycles) — how evenly
    the run loaded the machine. *)
