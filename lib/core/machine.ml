open Hare_sim
open Hare_proto
module Config = Hare_config.Config
module Costs = Hare_config.Costs
module Server = Hare_server.Server
module Client = Hare_client.Client
module Fdtable = Hare_client.Fdtable
module Process = Hare_proc.Process
module Program = Hare_proc.Program
module Place = Hare_place.Place
module Metrics = Hare_metrics.Metrics

type t = {
  engine : Engine.t;
  config : Config.t;
  cores : Core_res.t array;
  dram : Hare_mem.Dram.t;
  servers : Server.t array;
  clients : Client.t array;
  scheds : Hare_sched.Sched_server.t array;
  registry : Program.t;
  kctx : Process.kctx;
  injector : Hare_fault.Injector.t option;
  place : Place.t option;
  metrics : Metrics.t option;
}

let boot (config : Config.t) =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.boot: " ^ msg));
  let engine = Engine.create ~seed:config.seed () in
  let costs = config.costs in
  let ncores = config.ncores in
  (* Tracing: the sink is created before any fiber runs, so every span id
     allocation is part of the deterministic boot order. Host-side only —
     it never charges simulated cycles. *)
  if config.trace_enabled then begin
    let tr =
      Hare_trace.Trace.create ~ring:config.trace_ring ~cap:config.trace_cap
        ~retain:config.trace_retain ()
    in
    for i = 0 to ncores - 1 do
      Hare_trace.Trace.declare_track tr ~track:i
        ~name:(Printf.sprintf "core %d" i)
    done;
    Hare_trace.Trace.declare_track tr ~track:ncores ~name:"dram";
    Engine.set_sink engine tr
  end;
  (* Sanitizer: attached before any mailbox exists, so every mailbox gets
     a stamp channel. Host-side only — zero simulated cycles. *)
  if config.check_enabled then begin
    let chk = Hare_check.Check.create ~ncores () in
    Hare_check.Check.set_now chk (fun () -> Engine.now engine);
    Engine.set_checker engine chk
  end;
  let cores =
    Array.init ncores (fun i ->
        Core_res.create engine ~id:i
          ~socket:(Config.socket_of_core config i)
          ~ctx_switch:costs.ctx_switch)
  in
  (* [nservers] is the number of *logical* homes (the stable hashing
     space); [nphys] adds the spare physical servers a shard plan will
     activate mid-run. They are equal except under a non-empty plan. *)
  let nservers = Config.nservers config in
  let nphys = Config.physical_servers config in
  let server_cores = Array.of_list (Config.server_cores config) in
  let place =
    match config.placement with
    | Config.Sharded { servers; vnodes } ->
        let events =
          match Place.parse_plan config.shard_plan with
          | Ok evs -> evs
          | Error msg -> invalid_arg ("Machine.boot: bad shard_plan: " ^ msg)
        in
        Some (Place.create ~nhomes:servers ~vnodes ~events)
    | Config.Timeshare | Config.Split _ -> None
  in
  (* The buffer cache is partitioned evenly among the file servers; each
     partition physically lives on its server's socket (NUMA). *)
  let per_server = max 16 (config.buffer_cache_blocks / nphys) in
  let dram = Hare_mem.Dram.create ~nblocks:(per_server * nphys) in
  (match Engine.sink engine with
  | Some tr ->
      Hare_mem.Dram.set_trace dram ~sink:tr ~track:ncores
        ~now:(fun () -> Engine.now engine)
  | None -> ());
  let server_sockets =
    Array.map (fun c -> Core_res.socket cores.(c)) server_cores
  in
  let block_socket b = server_sockets.(min (b / per_server) (nphys - 1)) in
  let pcaches =
    Array.init ncores (fun i ->
        Hare_mem.Pcache.create ~block_socket dram ~core:cores.(i) ~costs
          ~capacity_lines:config.pcache_lines)
  in
  let inval_ports =
    Array.init ncores (fun i ->
        Hare_msg.Mailbox.create
          ~name:(Printf.sprintf "inval%d" i)
          ~owner:cores.(i) ~costs ())
  in
  (* Fault injection: parse the plan once at boot; an empty plan means no
     injector at all, so the fault-free fast paths stay untouched. *)
  let injector =
    let plan =
      match Hare_fault.Plan.parse config.fault_plan with
      | Ok p -> p
      | Error msg -> invalid_arg ("Machine.boot: bad fault_plan: " ^ msg)
    in
    if Hare_fault.Plan.is_empty plan then None
    else begin
      List.iter
        (fun (ev : Hare_fault.Plan.server_event) ->
          if ev.ev_sid < 0 || ev.ev_sid >= nphys then
            invalid_arg
              (Printf.sprintf "Machine.boot: fault_plan targets fs%d but only %d server(s) exist"
                 ev.ev_sid nservers))
        plan.events;
      Some
        (Hare_fault.Injector.create ~engine
           ~seed:(Int64.add config.seed 0x7a57L)
           plan)
    end
  in
  let fault_link s =
    Option.map (fun inj -> Hare_fault.Injector.link inj ~sid:s) injector
  in
  let servers =
    Array.init nphys (fun s ->
        Server.create ~engine ~config ~sid:s
          ~core:cores.(server_cores.(s))
          ~pcache:pcaches.(server_cores.(s))
          ~dram ~blocks_first:(s * per_server) ~blocks_count:per_server
          ~inval_ports ?place ?faults:(fault_link s) ())
  in
  Server.install_root servers.(Types.root_ino.server)
    ~dist:(config.root_distributed && config.dir_distribution);
  Array.iter Server.start servers;
  (* One daemon fiber per scripted fault event. They must be fibers, not
     bare timer callbacks: crash/restart send replies and invalidations,
     which charge compute (an effect). *)
  (match injector with
  | None -> ()
  | Some inj ->
      List.iter
        (fun (ev : Hare_fault.Plan.server_event) ->
          let srv = servers.(ev.ev_sid) in
          let body () =
            Engine.sleep ev.ev_at;
            match ev.ev_kind with
            | Hare_fault.Plan.Stall dur ->
                Hare_fault.Injector.stall_until
                  (Hare_fault.Injector.link inj ~sid:ev.ev_sid)
                  (Int64.add (Engine.now engine) dur)
            | Hare_fault.Plan.Crash restart_after -> (
                Server.crash srv;
                match restart_after with
                | None -> ()
                | Some dur ->
                    Engine.sleep dur;
                    Server.restart srv)
          in
          ignore
            (Engine.spawn engine ~daemon:true
               ~name:(Printf.sprintf "fault-fs%d" ev.ev_sid)
               body))
        (Hare_fault.Injector.server_events inj));
  let endpoints = Array.map Server.endpoint servers in
  Array.iter (fun s -> Server.set_peers s endpoints) servers;
  (* Designated local server per client (§3.6.4): prefer a same-socket
     server, spreading the clients of a socket across its servers. Only
     logical homes qualify — spares host nothing at boot. *)
  let local_server_of core_id =
    let sock = Core_res.socket cores.(core_id) in
    let same =
      List.filter
        (fun s -> server_sockets.(s) = sock)
        (List.init nservers Fun.id)
    in
    match same with
    | [] -> core_id mod nservers
    | l -> List.nth l (core_id mod List.length l)
  in
  let clients =
    Array.init ncores (fun i ->
        Client.create ~engine ~config ~cid:i ~core:cores.(i) ~pcache:pcaches.(i)
          ~servers:endpoints ~server_sockets ~local_server:(local_server_of i)
          ~root_dist:(config.root_distributed && config.dir_distribution)
          ~inval_port:inval_ports.(i) ?place ())
  in
  let sched_ports =
    Array.init ncores (fun i -> Hare_msg.Rpc.endpoint ~owner:cores.(i) ~costs ())
  in
  let kctx =
    {
      Process.k_engine = engine;
      k_config = config;
      k_cores = cores;
      k_clients = clients;
      k_sched_ports = sched_ports;
      k_app_cores = Array.of_list (Config.app_cores config);
      k_pid_seq = Array.make ncores 1;
      k_proc_tables = Array.init ncores (fun _ -> Hashtbl.create 64);
    }
  in
  let registry = Program.create () in
  let scheds =
    Array.init ncores (fun i ->
        Hare_sched.Sched_server.create ~kctx ~registry ~core_id:i
          ~endpoint:sched_ports.(i) ())
  in
  Array.iter Hare_sched.Sched_server.start scheds;
  (* Rebalancing coordinator: one daemon fiber walks the membership plan
     in time order. For each home to move it flips the ring route FIRST
     (requests admitted after the old owner packs the shard bounce with
     [EMOVED] and chase the new route), then hands the shard off with a
     reliable Migrate_out / Install_shard pair — the fault injector never
     touches coordinator traffic, so a handed-off shard cannot be lost.
     A busy shard (parked pipe readers, held rmdir locks, in-flight
     steals) refuses to pack; the route is restored while it drains and
     the move retried, bounded, before being abandoned. *)
  (match place with
  | Some p when Place.migratory p ->
      let coord_core = cores.(List.hd (Config.app_cores config)) in
      let migrate ~home ~dst =
        let src = Place.phys p home in
        if src <> dst then begin
          let rec attempt tries =
            Place.set_route p ~home ~dst;
            match
              Hare_msg.Rpc.call
                (Server.endpoint servers.(src))
                ~from:coord_core
                (Wire.Migrate_out { home })
            with
            | Ok (Wire.P_pack pack) -> (
                match
                  Hare_msg.Rpc.call
                    (Server.endpoint servers.(dst))
                    ~from:coord_core
                    (Wire.Install_shard { home; pack })
                with
                | Ok _ -> Place.note_migration p
                | Error _ ->
                    (* The destination refused an install it must accept;
                       fail loudly rather than lose the shard. *)
                    failwith "Machine: shard install refused")
            | Ok _ ->
                (* A pack reply carries P_pack by construction. *)
                failwith "Machine: malformed Migrate_out reply"
            | Error _ when tries > 0 ->
                (* Busy (or mid-crash): point the route back at the still-
                   hosting source while the shard drains, then retry. *)
                Place.set_route p ~home ~dst:src;
                Engine.sleep_cycles 2_000;
                attempt (tries - 1)
            | Error _ ->
                Place.set_route p ~home ~dst:src;
                Place.note_abort p
          in
          attempt 50
        end
      in
      let ev_at = function Place.Add { at } | Place.Remove { at; _ } -> at in
      let events =
        List.stable_sort
          (fun a b -> Int64.compare (ev_at a) (ev_at b))
          (Place.events p)
      in
      let next_spare = ref (Place.nhomes p) in
      let body () =
        List.iter
          (fun ev ->
            let lag = Int64.sub (ev_at ev) (Engine.now engine) in
            if Int64.compare lag 0L > 0 then Engine.sleep lag;
            (match ev with
            | Place.Add _ ->
                let q = !next_spare in
                incr next_spare;
                Place.activate p q;
                List.iter (fun home -> migrate ~home ~dst:q) (Place.plan_add p q)
            | Place.Remove { sid; _ } ->
                Place.deactivate p sid;
                List.iter
                  (fun (home, dst) -> migrate ~home ~dst)
                  (Place.plan_remove p sid));
            Place.commit p)
          events
      in
      ignore (Engine.spawn engine ~daemon:true ~name:"rebalancer" body)
  | _ -> ());
  (* Time-series telemetry (PR 9): register the machine's gauges and arm
     the engine's sampling hook. Every gauge is a cost-free host-side
     accessor, and the hook runs between events without charging cycles,
     scheduling events or drawing RNG — metered and unmetered runs of
     the same seed are bit-identical (asserted in test_metrics). *)
  let metrics =
    if config.metrics_interval = 0 then None
    else begin
      let m =
        Metrics.create ~cap:config.metrics_cap
          ~interval:config.metrics_interval ()
      in
      Array.iteri
        (fun s srv ->
          Metrics.register m
            ~name:(Printf.sprintf "fs%d.qdepth" s)
            (fun () -> Server.queue_depth srv);
          if config.mailbox_capacity > 0 then
            Metrics.register m
              ~name:(Printf.sprintf "fs%d.credits" s)
              (fun () ->
                max 0 (config.mailbox_capacity - Server.queue_depth srv));
          Metrics.register m
            ~name:(Printf.sprintf "fs%d.ops" s)
            (fun () -> Hare_stats.Opcount.total (Server.ops srv));
          Metrics.register m
            ~name:(Printf.sprintf "fs%d.shed" s)
            (fun () ->
              let r = Server.robust srv in
              r.Hare_stats.Robust.shed_load
              + r.Hare_stats.Robust.shed_expired))
        servers;
      Metrics.register m ~name:"client.retries" (fun () ->
          Array.fold_left
            (fun n c -> n + (Client.robust c).Hare_stats.Robust.retries)
            0 clients);
      if config.breaker_threshold > 0 then
        Metrics.register m ~name:"breakers.open" (fun () ->
            Array.fold_left (fun n c -> n + Client.open_breakers c) 0 clients);
      Metrics.register m ~name:"pcache.hit_permille" (fun () ->
          let h = ref 0 and ms = ref 0 in
          Array.iter
            (fun pc ->
              let st = Hare_mem.Pcache.stats pc in
              h := !h + st.Hare_mem.Pcache.hits;
              ms := !ms + st.Hare_mem.Pcache.misses)
            pcaches;
          if !h + !ms = 0 then 0 else !h * 1000 / (!h + !ms));
      Metrics.register m ~name:"fibers.live" (fun () ->
          Engine.live_fibers engine);
      (match place with
      | Some p ->
          Metrics.register m ~name:"ring.epoch" (fun () -> Place.epoch p);
          Metrics.register m ~name:"ring.migrations" (fun () ->
              Place.migrations p)
      | None -> ());
      Metrics.register m ~name:"load.imbalance_permille" (fun () ->
          (* max/mean served-ops ratio, over servers that did any work,
             in integer permille (gauges are ints) *)
          let n = ref 0 and sum = ref 0 and mx = ref 0 in
          Array.iter
            (fun srv ->
              let ops = Hare_stats.Opcount.total (Server.ops srv) in
              if ops > 0 then begin
                incr n;
                sum := !sum + ops;
                if ops > !mx then mx := ops
              end)
            servers;
          if !sum = 0 then 1000 else !mx * 1000 * !n / !sum);
      (match Engine.sink engine with
      | Some tr -> Metrics.attach_sink m tr ~track_base:(ncores + 1)
      | None -> ());
      Engine.set_sampler engine ~interval:config.metrics_interval (fun now ->
          Metrics.sample m ~now);
      Some m
    end
  in
  { engine; config; cores; dram; servers; clients; scheds; registry; kctx;
    injector; place; metrics }

let engine t = t.engine

let config t = t.config

let kctx t = t.kctx

let servers t = t.servers

let clients t = t.clients

let place t = t.place

let metrics t = t.metrics

let server_loads t =
  Array.to_list t.servers
  |> List.map (fun s ->
         ( Server.sid s,
           Hare_stats.Opcount.total (Server.ops s),
           Server.peak_queue s ))

let imbalance t =
  (* Max/mean served-operation ratio over the servers that did any work
     (a spare that was added late or drained early still counts once it
     served anything). *)
  let loads =
    List.filter_map
      (fun (_, ops, _) -> if ops > 0 then Some (float_of_int ops) else None)
      (server_loads t)
  in
  match loads with
  | [] -> 1.0
  | l ->
      let n = float_of_int (List.length l) in
      let mean = List.fold_left ( +. ) 0.0 l /. n in
      List.fold_left max 0.0 l /. mean

let total_moved_retries t =
  Array.fold_left (fun acc c -> acc + Client.moved_retries c) 0 t.clients

let total_moved_rejects t =
  Array.fold_left (fun acc s -> acc + Server.moved_rejects s) 0 t.servers

let dram t = t.dram

let register_program t name body = Program.register t.registry name body

let spawn_init t ?core ?(cwd = "/") ?(args = []) ~name body =
  let core =
    match core with Some c -> c | None -> t.kctx.Process.k_app_cores.(0)
  in
  let console = Buffer.create 256 in
  let fdt = Fdtable.create () in
  let entry =
    {
      Fdtable.desc = Fdtable.Console (Wire.Console_local console);
      local_refs = 3;
    }
  in
  Fdtable.alloc_at fdt 0 entry;
  Fdtable.alloc_at fdt 1 entry;
  Fdtable.alloc_at fdt 2 entry;
  let proc =
    Process.make ~k:t.kctx ~core ~fdt ~cwd ~env:[ ("INIT", name) ] ~rr_next:0 ()
  in
  Process.run proc (fun p -> body p args);
  (proc, console)

let run t = Engine.run t.engine

let run_for t budget = Engine.run_for t.engine budget

let exit_status _t (proc : Process.t) = Ivar.peek proc.Process.exit_status

let now t = Engine.now t.engine

let seconds t = Costs.seconds_of_cycles t.config.Config.costs (now t)

let total_syscalls t =
  let acc = Hare_stats.Opcount.create () in
  Array.iter
    (fun c -> Hare_stats.Opcount.merge ~into:acc (Client.syscalls c))
    t.clients;
  acc

let total_server_ops t =
  let acc = Hare_stats.Opcount.create () in
  Array.iter
    (fun s -> Hare_stats.Opcount.merge ~into:acc (Server.ops s))
    t.servers;
  acc

let total_rpcs t =
  Array.fold_left (fun acc c -> acc + Client.rpc_count c) 0 t.clients

let total_invals t =
  Array.fold_left (fun acc s -> acc + Server.invals_sent s) 0 t.servers

let robustness t =
  let acc = Hare_stats.Robust.create () in
  (match t.injector with
  | Some inj -> Hare_stats.Robust.merge ~into:acc (Hare_fault.Injector.stats inj)
  | None -> ());
  Array.iter
    (fun s -> Hare_stats.Robust.merge ~into:acc (Server.robust s))
    t.servers;
  Array.iter
    (fun c -> Hare_stats.Robust.merge ~into:acc (Client.robust c))
    t.clients;
  (* Dircache flushes are counted at the cache, not in a Robust record;
     likewise credit-blocked sends are counted at the server endpoint
     (the mailbox cannot see a Robust record). *)
  acc.Hare_stats.Robust.cache_flushes <-
    Array.fold_left
      (fun n c -> n + Hare_client.Dircache.flushes (Client.dircache c))
      0 t.clients;
  acc.Hare_stats.Robust.flow_blocks <-
    Array.fold_left
      (fun n s -> n + Hare_msg.Rpc.flow_blocked (Server.endpoint s))
      0 t.servers;
  acc

let perf t =
  let acc = Hare_stats.Perf.create () in
  Array.iter
    (fun s -> Hare_stats.Perf.merge ~into:acc (Server.perf s))
    t.servers;
  Array.iter
    (fun c -> Hare_stats.Perf.merge ~into:acc (Client.perf c))
    t.clients;
  acc

let trace t = Engine.sink t.engine

let check t = Engine.checker t.engine

let reset_perf t =
  Array.iter (fun s -> Hare_stats.Perf.reset (Server.perf s)) t.servers;
  Array.iter (fun c -> Hare_stats.Perf.reset (Client.perf c)) t.clients;
  (* Robustness counters reset alongside, so a timed region reports only
     its own sheds/retries/breaker activity. *)
  Array.iter (fun s -> Hare_stats.Robust.reset (Server.robust s)) t.servers;
  Array.iter (fun c -> Hare_stats.Robust.reset (Client.robust c)) t.clients;
  Array.iter (fun s -> Hare_msg.Rpc.reset_flow (Server.endpoint s)) t.servers;
  Array.iter Server.reset_peak_queue t.servers;
  match t.injector with
  | Some inj -> Hare_stats.Robust.reset (Hare_fault.Injector.stats inj)
  | None -> ()

let utilization t =
  let elapsed = Int64.to_float (max 1L (now t)) in
  Array.to_list t.cores
  |> List.map (fun core ->
         ( Core_res.id core,
           Int64.to_float (Core_res.busy_cycles core) /. elapsed ))
