(** Machine and Hare configuration.

    Mirrors the paper's experimental knobs: number of cores, number and
    placement of file servers (timeshared with applications vs. dedicated
    split), the exec placement policy, and the five individually-ablatable
    techniques of §3.6 / §5.4. *)

type placement =
  | Timeshare  (** one file server per core, sharing the core with apps. *)
  | Split of int
      (** [Split n]: file servers on [n] dedicated cores; applications and
          scheduling servers on the remaining cores. *)
  | Sharded of { servers : int; vnodes : int }
      (** {e extension}: consistent-hash placement. [servers] logical
          file-server homes on dedicated cores, each owning [vnodes]
          rendezvous-hash points on the placement ring
          ([Hare_place.Place]); a {!field-shard_plan} can add or remove
          physical servers mid-run, migrating whole homes between them.
          With an empty plan this is bit-identical to [Split servers]. *)

type exec_policy = Random_placement | Round_robin

type t = {
  ncores : int;
  placement : placement;
  exec_policy : exec_policy;
  cores_per_socket : int;  (** NUMA geometry, for creation affinity. *)
  (* §3.6 techniques, individually ablatable (Figures 9-14). *)
  dir_distribution : bool;
      (** honour the distributed-directory flag at mkdir; when off, all
          directories are centralized at their home server. *)
  dir_broadcast : bool;
      (** contact all servers in parallel for readdir/rmdir; when off, the
          per-server RPCs are issued sequentially. *)
  direct_access : bool;
      (** client libraries read/write the shared buffer cache directly;
          when off, file data moves through RPCs to the server. *)
  dir_cache : bool;  (** client-side directory lookup cache. *)
  creation_affinity : bool;
      (** place new inodes on a server close to the creating core. *)
  root_distributed : bool;
      (** shard the root directory's entries (benchmarks that create in
          [/] want this; real trees mkdir their own distributed dirs). *)
  dist_width : int option;
      (** {e extension} (§6): distribute each directory over only this
          many servers instead of all of them, so broadcast operations
          (readdir, rmdir) touch a bounded subset. [None] reproduces the
          paper: every distributed directory spans every server. *)
  block_stealing : bool;
      (** {e extension} (§3.2): when a server's buffer-cache partition
          runs dry it steals free blocks from a peer instead of failing
          with ENOSPC. The paper describes this but does not implement
          it; default off for fidelity. *)
  buffer_cache_blocks : int;  (** total shared buffer cache, in 4K blocks. *)
  pcache_lines : int;  (** private-cache capacity per core, in 64B lines. *)
  (* {e extension}: robustness (fault injection, timeouts, recovery). *)
  shard_plan : string;
      (** ring-membership plan for [Sharded] placement (see
          [Hare_place.Place.parse_plan]): [add@CYCLES] activates the next
          spare physical server, [remove:SID@CYCLES] drains one;
          [;]-separated. [""] (default) keeps membership static — the
          zero-cost, bit-identical-to-[Split] path. *)
  fault_plan : string;
      (** fault-plan spec string (see [Hare_fault.Plan]); [""] disables
          injection entirely — the zero-cost default. *)
  rpc_deadline : int;
      (** base RPC deadline in cycles; [0] (default) means wait forever
          and send no idempotency metadata — the paper's behaviour. Must
          be positive when a fault plan is set. *)
  rpc_retries : int;
      (** attempts per RPC before giving up with [EIO] (deadline doubles
          each retry, with RNG jitter between attempts). *)
  partial_broadcast : bool;
      (** when a broadcast op (readdir) cannot reach a server, return the
          surviving servers' entries ([true], default) or raise [EIO]
          ([false]). *)
  (* {e extension}: overload control and graceful degradation (PR 6).
     Every knob defaults to "off", reproducing the paper's behaviour
     bit-identically. *)
  mailbox_capacity : int;
      (** bound on each file server's request mailbox, in messages.
          Senders wait for a credit (queue slot) before their message is
          admitted, so a saturated server exerts backpressure instead of
          growing its queue without bound. [0] (default) = unbounded,
          the paper's behaviour. *)
  deadline_propagation : bool;
      (** carry the client's remaining deadline on the RPC envelope;
          servers drop requests that have already expired before paying
          their dispatch and handler costs (counted as shed work). Off
          by default; requires [rpc_deadline > 0]. *)
  rpc_deadline_max : int;
      (** explicit cap on the per-attempt retry deadline growth (the
          deadline doubles each retry). [0] (default) keeps the legacy
          cap of [64 * rpc_deadline]. *)
  retry_budget : int;
      (** per-(client, server) retry token bucket: each retransmission
          spends a token, every 10 successful calls to that server earn
          one back (up to the bucket size), and an empty bucket turns
          the retry into an immediate [EIO] give-up — so retries cannot
          amplify an overload. [0] (default) = unlimited retries within
          [rpc_retries], the paper's behaviour. *)
  breaker_threshold : int;
      (** per-(client, server) circuit breaker: after this many
          consecutive RPC give-ups the breaker opens and calls to that
          server fast-fail with [EIO] (no message sent) until
          [breaker_cooldown] cycles pass; the next call is a half-open
          probe that closes the breaker on success or re-opens it on
          failure. [0] (default) disables breakers. *)
  breaker_cooldown : int;
      (** cycles an open breaker waits before admitting a probe. *)
  shed_watermark : int;
      (** server-side priority load shedding: with more than this many
          requests still queued, background-class requests (unlink
          inode reclaim, block stealing) are answered [EBUSY] without
          execution; above twice the watermark, data-class requests
          (read/write/alloc) are shed too. Metadata requests are never
          shed. [0] (default) disables shedding. *)
  (* {e extension}: asynchronous RPC pipeline (PR 2). All three knobs
     default to 1, which reproduces the paper's strictly synchronous
     one-request-per-message protocol bit-identically. *)
  rpc_window : int;
      (** client-side pipelining: maximum RPCs a client keeps in flight
          with deferred awaits on the independent hot paths (close,
          unlink's inode half, broadcast fan-out under a fault plan).
          [1] (default) awaits every call synchronously, as the paper
          does. Retried requests keep their (client, seq) idempotency
          tag across deferral, so server-side dedup still applies. *)
  batch_max : int;
      (** server-side batch dispatch: a server drains up to this many
          queued requests per wakeup. The context switch, the dispatch
          preamble and the blocking-receive notification are paid once
          per batch; each later request pays only the already-delivered
          receive cost ([Costs.recv_ready]) as it is served, so handler
          costs and reply latencies are unchanged. [1] (default) is the
          paper's one-request-per-wakeup loop. *)
  alloc_extent : int;
      (** extent-granularity allocation: [Alloc_blocks] asks for up to
          [alloc_extent - 1] blocks of read-ahead beyond the immediate
          need, and the client holds the surplus as a per-descriptor
          extent lease, collapsing N per-block RPCs on append-heavy
          workloads into ~N/extent. Leases are reclaimed on close,
          truncate and crash-restart. [1] (default) allocates one block
          per need, as the paper does. *)
  dircache_capacity : int;
      (** bound on the client directory cache, in entries, with LRU
          eviction past the bound; [0] (default) means unbounded — the
          paper's behaviour. *)
  trace_enabled : bool;
      (** {e extension}: attach a span-trace sink at boot
          ([Hare_trace.Trace]). Recording is pure host-side bookkeeping
          and charges zero simulated cycles, so traced and untraced runs
          of the same seed are bit-identical; off by default. *)
  trace_cap : int;
      (** trace ring-buffer capacity in events; when full, the oldest
          event is dropped and a dropped-events counter incremented.
          0 = an empty span ring: profile-only tracing, exports are
          cleanly metadata-only (same as [trace_ring = false]). *)
  trace_ring : bool;
      (** record individual events (spans, instants, counters) in the
          ring for Perfetto export; on by default. When off, tracing is
          {e profile-only}: the per-opcode cycle-bucket attribution is
          still maintained but no events are retained, roughly halving
          the host-side cost of a traced run. Benchmark runs that only
          consume the profile use this mode. Either way the simulated
          clock is untouched. *)
  trace_retain : int;
      (** {e extension} (PR 9): tail-based span retention — keep the
          complete span trees (bucket vector, admission server, queue
          depth at admission, per-server blocked-wait grants) of the
          slowest this-many root syscalls {e per latency class},
          immune to ring overwrite, for the blame report
          ([Hare_metrics.Blame]). [0] (default) = off; requires
          [trace_enabled]. Host-side only — zero simulated cycles. *)
  metrics_interval : int;
      (** {e extension} (PR 9): sample the machine's gauges (mailbox
          depths, flow credits, breaker states, shed/retry counters,
          pcache hit rate, live fibers, per-server load, ring
          imbalance) every this-many simulated cycles into
          [Hare_metrics.Metrics] ring buffers. [0] (default) = no
          sampler attached. Sampling is pure host-side bookkeeping:
          clocks are bit-identical with it on or off. *)
  metrics_cap : int;
      (** per-gauge ring capacity, in samples; the oldest samples are
          overwritten when it fills. *)
  check_enabled : bool;
      (** {e extension}: attach the coherence sanitizer at boot
          ([Hare_check.Check]): vector-clock happens-before race
          detection over the shadow cache state plus protocol lint
          rules. Pure host-side bookkeeping, zero simulated cycles —
          checked and unchecked runs of the same seed are
          bit-identical; off by default. *)
  seed : int64;
  costs : Costs.t;
}

val default : t
(** 40 cores (4 sockets × 10), timeshare placement, round-robin exec
    placement, all techniques enabled, 2 GB buffer cache — the paper's
    standard configuration. *)

val v : ?ncores:int -> ?placement:placement -> ?exec_policy:exec_policy -> ?seed:int64 -> unit -> t
(** [v ()] is {!default} with the given overrides. *)

val validate : t -> (unit, string) result
(** Check internal consistency (positive sizes, split bounds, ...). *)

val nservers : t -> int
(** Number of {e logical} file servers implied by the placement — the
    hashing space for inode and directory-entry placement. *)

val physical_servers : t -> int
(** Number of physical server processes to boot: [nservers] plus the
    spare servers a shard plan activates mid-run. Equals [nservers]
    whenever the shard plan is empty. *)

val server_cores : t -> int list
(** Core ids that run a file server. *)

val app_cores : t -> int list
(** Core ids available to applications (and scheduling servers). *)

val socket_of_core : t -> int -> int

val pp_placement : Format.formatter -> placement -> unit

val pp : Format.formatter -> t -> unit
