type placement =
  | Timeshare
  | Split of int
  | Sharded of { servers : int; vnodes : int }

type exec_policy = Random_placement | Round_robin

type t = {
  ncores : int;
  placement : placement;
  exec_policy : exec_policy;
  cores_per_socket : int;
  dir_distribution : bool;
  dir_broadcast : bool;
  direct_access : bool;
  dir_cache : bool;
  creation_affinity : bool;
  root_distributed : bool;
  dist_width : int option;
  block_stealing : bool;
  buffer_cache_blocks : int;
  pcache_lines : int;
  shard_plan : string;
  fault_plan : string;
  rpc_deadline : int;
  rpc_retries : int;
  partial_broadcast : bool;
  mailbox_capacity : int;
  deadline_propagation : bool;
  rpc_deadline_max : int;
  retry_budget : int;
  breaker_threshold : int;
  breaker_cooldown : int;
  shed_watermark : int;
  rpc_window : int;
  batch_max : int;
  alloc_extent : int;
  dircache_capacity : int;
  trace_enabled : bool;
  trace_cap : int;
  trace_ring : bool;
  trace_retain : int;
  metrics_interval : int;
  metrics_cap : int;
  check_enabled : bool;
  seed : int64;
  costs : Costs.t;
}

let default =
  {
    ncores = 40;
    placement = Timeshare;
    exec_policy = Round_robin;
    cores_per_socket = 10;
    dir_distribution = true;
    dir_broadcast = true;
    direct_access = true;
    dir_cache = true;
    creation_affinity = true;
    root_distributed = false;
    dist_width = None;
    block_stealing = false;
    (* 2 GB of 4 KiB blocks, as in the paper's setup (§4). *)
    buffer_cache_blocks = 2 * 1024 * 256;
    (* 512 KiB of 64-byte lines per core: the per-core L2 of the E7-4850
       family, the cache level that matters for write-back traffic. *)
    pcache_lines = 8192;
    (* Ring membership static: no server adds/removes, so Sharded
       placement is bit-identical to the equivalent Split. *)
    shard_plan = "";
    (* Fault injection off: empty plan, unbounded RPC waits — the exact
       behaviour of the pre-fault-injection code paths. *)
    fault_plan = "";
    rpc_deadline = 0;
    rpc_retries = 12;
    partial_broadcast = true;
    (* Overload-control knobs all off: unbounded mailboxes, no deadline
       on the wire, retry-deadline cap at the legacy 64x, unlimited
       retries, breakers and load shedding disabled — the exact paper
       behaviour, cycle for cycle. *)
    mailbox_capacity = 0;
    deadline_propagation = false;
    rpc_deadline_max = 0;
    retry_budget = 0;
    breaker_threshold = 0;
    breaker_cooldown = 200_000;
    shed_watermark = 0;
    (* Pipelining/batching/extent knobs at 1 = the paper's strictly
       synchronous one-request-per-message behaviour. *)
    rpc_window = 1;
    batch_max = 1;
    alloc_extent = 1;
    (* 0 = unbounded dircache, the paper-faithful default. *)
    dircache_capacity = 0;
    (* Tracing off by default: no sink is attached, so every
       instrumentation site reduces to a None check. *)
    trace_enabled = false;
    trace_cap = 65536;
    trace_ring = true;
    (* Tail-based span retention off: the trace keeps no slow-op trees
       and the clients skip the admission annotations entirely. *)
    trace_retain = 0;
    (* Time-series telemetry off: no sampler is attached to the event
       loop, so the per-step check reduces to a None match. *)
    metrics_interval = 0;
    metrics_cap = 1024;
    (* Sanitizer off by default: no checker is attached, so every hook
       site reduces to a None check. *)
    check_enabled = false;
    seed = 42L;
    costs = Costs.default;
  }

let v ?ncores ?placement ?exec_policy ?seed () =
  let t = default in
  let t = match ncores with Some n -> { t with ncores = n } | None -> t in
  let t = match placement with Some p -> { t with placement = p } | None -> t in
  let t =
    match exec_policy with Some p -> { t with exec_policy = p } | None -> t
  in
  match seed with Some s -> { t with seed = s } | None -> t

let validate t =
  if t.ncores <= 0 then Error "ncores must be positive"
  else if t.cores_per_socket <= 0 then Error "cores_per_socket must be positive"
  else if t.buffer_cache_blocks <= 0 then Error "buffer cache must be non-empty"
  else if t.pcache_lines <= 0 then Error "private cache must be non-empty"
  else if t.rpc_deadline < 0 then Error "rpc_deadline must be non-negative"
  else if t.rpc_retries <= 0 then Error "rpc_retries must be positive"
  else if t.fault_plan <> "" && t.rpc_deadline = 0 then
    Error "a fault plan requires rpc_deadline > 0 (clients must retry)"
  else if t.mailbox_capacity < 0 then
    Error "mailbox_capacity must be non-negative (0 = unbounded)"
  else if t.rpc_deadline_max < 0 then
    Error "rpc_deadline_max must be non-negative (0 = 64x rpc_deadline)"
  else if t.rpc_deadline_max > 0 && t.rpc_deadline_max < t.rpc_deadline then
    Error "rpc_deadline_max must be at least rpc_deadline"
  else if t.retry_budget < 0 then
    Error "retry_budget must be non-negative (0 = unlimited)"
  else if t.breaker_threshold < 0 then
    Error "breaker_threshold must be non-negative (0 = breakers off)"
  else if t.breaker_threshold > 0 && t.breaker_cooldown <= 0 then
    Error "breaker_cooldown must be positive when breakers are enabled"
  else if t.shed_watermark < 0 then
    Error "shed_watermark must be non-negative (0 = shedding off)"
  else if t.deadline_propagation && t.rpc_deadline = 0 then
    Error "deadline_propagation requires rpc_deadline > 0"
  else if (t.retry_budget > 0 || t.breaker_threshold > 0) && t.rpc_deadline = 0
  then
    Error
      "retry budgets and circuit breakers require rpc_deadline > 0 (they act \
       on retry decisions)"
  else if t.rpc_window < 1 then Error "rpc_window must be at least 1"
  else if t.batch_max < 1 then Error "batch_max must be at least 1"
  else if t.alloc_extent < 1 then Error "alloc_extent must be at least 1"
  else if t.dircache_capacity < 0 then
    Error "dircache_capacity must be non-negative (0 = unbounded)"
  else if t.trace_cap < 0 then
    Error "trace_cap must be non-negative (0 = empty span ring, profile-only)"
  else if t.trace_retain < 0 then
    Error "trace_retain must be non-negative (0 = retention off)"
  else if t.trace_retain > 0 && not t.trace_enabled then
    Error "trace_retain requires trace_enabled (retention lives in the trace)"
  else if t.metrics_interval < 0 then
    Error "metrics_interval must be non-negative (0 = metrics off)"
  else if t.metrics_cap <= 0 then Error "metrics_cap must be positive"
  else if
    t.shard_plan <> ""
    && match t.placement with Sharded _ -> false | _ -> true
  then Error "a shard plan requires Sharded placement"
  else
    match t.placement with
    | Timeshare -> Ok ()
    | Split n ->
        if n <= 0 then Error "split server count must be positive"
        else if n >= t.ncores then
          Error "split must leave at least one application core"
        else Ok ()
    | Sharded { servers; vnodes } -> (
        if servers <= 0 then Error "sharded server count must be positive"
        else if vnodes <= 0 then
          Error "sharded vnodes must be positive"
        else
          match Hare_place.Place.parse_plan t.shard_plan with
          | Error e -> Error e
          | Ok events ->
              let adds =
                List.fold_left
                  (fun n -> function
                    | Hare_place.Place.Add _ -> n + 1
                    | Hare_place.Place.Remove _ -> n)
                  0 events
              in
              let removes = List.filter_map
                  (function
                    | Hare_place.Place.Remove { sid; _ } -> Some sid
                    | Hare_place.Place.Add _ -> None)
                  events
              in
              let nphys = servers + adds in
              if nphys >= t.ncores then
                Error
                  "sharded must leave at least one application core (servers \
                   plus planned adds exceed cores)"
              else if List.exists (fun sid -> sid < 0 || sid >= nphys) removes
              then Error "shard plan removes a server id outside the ring"
              else if
                List.length (List.sort_uniq compare removes)
                <> List.length removes
              then Error "shard plan removes the same server twice"
              else if List.length removes >= nphys then
                Error "shard plan must leave at least one server in the ring"
              else Ok ())

let nservers t =
  match t.placement with
  | Timeshare -> t.ncores
  | Split n -> n
  | Sharded { servers; _ } -> servers

(* Physical server count: logical homes plus the spare servers a shard
   plan will activate mid-run. Equals [nservers] when the plan is empty,
   so membership-stable Sharded matches Split exactly. *)
let physical_servers t =
  match t.placement with
  | Timeshare -> t.ncores
  | Split n -> n
  | Sharded { servers; _ } ->
      servers + Hare_place.Place.count_adds t.shard_plan

let server_cores t =
  match t.placement with
  | Timeshare -> List.init t.ncores Fun.id
  | Split _ | Sharded _ -> List.init (physical_servers t) Fun.id

let app_cores t =
  match t.placement with
  | Timeshare -> List.init t.ncores Fun.id
  | Split _ | Sharded _ ->
      let n = physical_servers t in
      List.init (t.ncores - n) (fun i -> n + i)

let socket_of_core t core = core / t.cores_per_socket

let pp_placement ppf = function
  | Timeshare -> Fmt.string ppf "timeshare"
  | Split n -> Fmt.pf ppf "split:%d" n
  | Sharded { servers; vnodes } -> Fmt.pf ppf "sharded:%d/v%d" servers vnodes

let pp ppf t =
  Fmt.pf ppf
    "@[<v>cores=%d placement=%a policy=%s@,\
     dist=%b bcast=%b direct=%b dcache=%b affinity=%b seed=%Ld@]"
    t.ncores pp_placement t.placement
    (match t.exec_policy with
    | Random_placement -> "random"
    | Round_robin -> "round-robin")
    t.dir_distribution t.dir_broadcast t.direct_access t.dir_cache
    t.creation_affinity t.seed
