(** Cycle-cost model for the simulated machine.

    Constants are calibrated against the measurements reported in the paper
    (§5.3.3): an ADD_MAP RPC costs ≈2434 cycles at the client and ≈1211 at
    the server; the messaging overhead is ≈1000 cycles per operation; a
    rename takes 4.171 µs when client and server run on separate cores and
    7.204 µs when they share one (context switches + icache pollution). *)

type t = {
  cycles_per_us : int;  (** clock rate: cycles per microsecond (2 GHz). *)
  ctx_switch : int;
      (** penalty when a core switches between fibers (Linux scheduling +
          switch + icache/TLB pollution; the paper mitigates it with PCID
          but it still dominates single-core RPC latency). *)
  syscall_trap : int;
      (** per-intercepted-syscall overhead of the [linux-gate.so]
          interposition layer. *)
  send : int;  (** client/server cost to send one message (Pika channel). *)
  recv : int;  (** cost to dequeue and decode one message. *)
  recv_ready : int;
      (** cost to consume a message that is {e already delivered} when the
          receiver looks: the dequeue/decode copy without the blocking
          notification-and-wakeup path that {!recv} includes. Paid for the
          second and later messages of a batched drain
          ({!Hare_msg.Mailbox.recv_many}) and for pipelined replies that
          landed while the client was still computing. *)
  cache_hit_line : int;  (** private-cache hit, per 64-byte line. *)
  dram_line : int;  (** shared-DRAM transfer of one 64-byte line. *)
  invalidate_line : int;  (** dropping one private-cache line. *)
  server_dispatch : int;  (** base cost of decoding + dispatching a request. *)
  send_cross_socket : int;
      (** extra cost of delivering a message to a core on another socket. *)
  dram_cross_socket_line : int;
      (** extra cost per 64-byte line when the block lives in another
          socket's DRAM partition (NUMA; what creation affinity avoids). *)
  msg_per_line : int;
      (** marshalling cost per 64 bytes of RPC payload (data moved through
          messages rather than the shared buffer cache). *)
  loopback_rpc : int;
      (** extra cost per RPC through the kernel loopback network stack
          (UNFS3 baseline). *)
  linux_syscall : int;  (** base in-kernel syscall cost (ramfs baseline). *)
  linux_lock : int;  (** uncontended kernel lock acquire+release. *)
  linux_dirlock_hold : int;
      (** cycles a directory lock is held for a create/unlink/rename
          (ramfs baseline serialization unit). *)
  spawn_process : int;
      (** fork+exec of a program image at the scheduling server (§3.5). *)
}

val default : t

(** [us_of_cycles t c] converts simulated cycles to microseconds. *)
val us_of_cycles : t -> int64 -> float

(** [seconds_of_cycles t c] converts simulated cycles to seconds. *)
val seconds_of_cycles : t -> int64 -> float
