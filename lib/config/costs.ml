type t = {
  cycles_per_us : int;
  ctx_switch : int;
  syscall_trap : int;
  send : int;
  recv : int;
  recv_ready : int;
  cache_hit_line : int;
  dram_line : int;
  invalidate_line : int;
  server_dispatch : int;
  send_cross_socket : int;
  dram_cross_socket_line : int;
  msg_per_line : int;
  loopback_rpc : int;
  linux_syscall : int;
  linux_lock : int;
  linux_dirlock_hold : int;
  spawn_process : int;
}

(* Calibration sketch (paper §5.3.3, 2 GHz clock):
   - rename = ADD_MAP + RM_MAP, two RPCs. Server-side an ADD_MAP costs
     recv(500) + dispatch(300) + handler(≈400) ≈ 1200 cycles — the paper
     measures 1211; RM_MAP ≈ 800 vs. the paper's 756.
   - Split-core rename latency: 2 × (send 1200 + server 1200/800 +
     reply 1200 + recv 500) ≈ 7800 cycles ≈ 3.9 µs vs. the measured
     4.171 µs.
   - Sharing a core adds two context switches per RPC; ctx_switch=1500
     brings the rename to ≈6.9 µs vs. the measured 7.204 µs. *)
let default =
  {
    cycles_per_us = 2000;
    ctx_switch = 1500;
    syscall_trap = 150;
    send = 1200;
    recv = 500;
    (* recv minus the notification/wakeup path: just the dequeue + decode
       copy, on the same scale as a syscall trap. *)
    recv_ready = 150;
    cache_hit_line = 30;
    dram_line = 100;
    invalidate_line = 2;
    server_dispatch = 300;
    send_cross_socket = 150;
    dram_cross_socket_line = 40;
    msg_per_line = 15;
    loopback_rpc = 30000;
    linux_syscall = 500;
    linux_lock = 80;
    linux_dirlock_hold = 1200;
    spawn_process = 30000;
  }

let us_of_cycles t cycles = Int64.to_float cycles /. float_of_int t.cycles_per_us

let seconds_of_cycles t cycles = us_of_cycles t cycles /. 1_000_000.0
