open Hare_sim
open Hare_proto

let src = Logs.Src.create "hare.proc" ~doc:"Hare process model"

module Log = (val Logs.src_log src : Logs.LOG)

type kctx = {
  k_engine : Engine.t;
  k_config : Hare_config.Config.t;
  k_cores : Core_res.t array;
  k_clients : Hare_client.Client.t array;
  k_sched_ports : (Wire.sched_req, Wire.sched_resp) Hare_msg.Rpc.t array;
  k_app_cores : int array;
  k_pid_seq : int array;
  k_proc_tables : (int, t) Hashtbl.t array;
}

and t = {
  pid : Types.pid;
  core_id : int;
  k : kctx;
  fdt : Hare_client.Fdtable.t;
  mutable cwd : string;
  mutable env : (string * string) list;
  exit_status : int Ivar.t;
  mutable parent : t option;
  mutable children : t list;
  child_exits : (Types.pid * int) Bqueue.t;
  mutable reaped : (Types.pid * int) list;
  mutable handlers : (int * (int -> unit)) list;
  mutable killed : bool;
  mutable proxy_port : Wire.proxy_msg Hare_msg.Mailbox.t option;
  mutable rr_next : int;
  prng : Rng.t;
}

exception Exited of int

let sigkill = 9

let sigterm = 15

let sigint = 2

let alloc_pid k ~core =
  let seq = k.k_pid_seq.(core) in
  k.k_pid_seq.(core) <- seq + 1;
  Types.make_pid ~core ~seq

let make ~k ~core ?pid ?parent ~fdt ~cwd ~env ~rr_next () =
  let pid = match pid with Some p -> p | None -> alloc_pid k ~core in
  let t =
    {
      pid;
      core_id = core;
      k;
      fdt;
      cwd;
      env;
      exit_status = Ivar.create ();
      parent;
      children = [];
      child_exits = Bqueue.create ();
      reaped = [];
      handlers = [];
      killed = false;
      proxy_port = None;
      rr_next;
      prng = Rng.split (Engine.rng k.k_engine);
    }
  in
  Hashtbl.replace k.k_proc_tables.(core) pid t;
  (match parent with Some p -> p.children <- t :: p.children | None -> ());
  t

let client t = t.k.k_clients.(t.core_id)

let core t = t.k.k_cores.(t.core_id)

let find k pid = Hashtbl.find_opt k.k_proc_tables.(Types.core_of_pid pid) pid

let run t ?(on_exit = fun _ -> ()) body =
  let name = Printf.sprintf "proc-%d@%d" t.pid t.core_id in
  ignore
    (Engine.spawn t.k.k_engine ~name (fun () ->
         let status =
           try body t with
           | Exited n -> n
           | Errno.Error (e, ctx) ->
               Log.debug (fun m ->
                   m "pid %d dies on %s (%s)" t.pid (Errno.to_string e) ctx);
               1
         in
         (try Hare_client.Client.close_all (client t) t.fdt
          with Errno.Error _ -> ());
         (* Sanitizer exit lint: after teardown nothing but console
            descriptors may remain open and no allocation lease may
            still be held — either is a resource leak the servers would
            carry forever. *)
         (match Engine.checker t.k.k_engine with
         | Some chk ->
             let fds = ref 0 and leases = ref 0 in
             List.iter
               (fun (e : Hare_client.Fdtable.entry) ->
                 match e.Hare_client.Fdtable.desc with
                 | Hare_client.Fdtable.Console _ -> ()
                 | Hare_client.Fdtable.File fs ->
                     incr fds;
                     leases := !leases + fs.Hare_client.Fdtable.f_lease
                 | Hare_client.Fdtable.Pipe _ -> incr fds)
               (Hare_client.Fdtable.distinct_entries t.fdt);
             Hare_check.Check.lint_exit chk ~core:t.core_id ~fds:!fds
               ~leases:!leases
         | None -> ());
         Hashtbl.remove t.k.k_proc_tables.(t.core_id) t.pid;
         (match t.parent with
         | Some parent -> Bqueue.push parent.child_exits (t.pid, status)
         | None -> ());
         Ivar.fill t.exit_status status;
         on_exit status))

let install_handler t ~signal f =
  t.handlers <- (signal, f) :: List.remove_assoc signal t.handlers

let deliver_signal t ~from signal =
  match t.proxy_port with
  | Some port ->
      (* The process proxies for a remotely exec'd child: relay (§3.5). *)
      Hare_msg.Mailbox.send port ~from (Wire.Pm_signal signal)
  | None -> (
      match List.assoc_opt signal t.handlers with
      | Some handler -> handler signal
      | None ->
          if signal = sigkill || signal = sigterm || signal = sigint then
            t.killed <- true)
