open Hare_sim
open Hare_proto
open Hare_proto.Types

let src = Logs.Src.create "hare.client" ~doc:"Hare client library"

module Log = (val Logs.src_log src : Logs.LOG)
module Trace = Hare_trace.Trace
module Check = Hare_check.Check

let bs = Hare_mem.Layout.block_size

(* Blocks needed to back [size] bytes. *)
let blocks_needed size = if size <= 0 then 0 else ((size - 1) / bs) + 1

(* Seeded-mutation hooks for the sanitizer self-tests: deliberately skip
   a close-to-open protocol step so the matching lint rule must fire.
   Never set outside tests. *)
let mutate_skip_open_inval = ref false

let mutate_skip_writeback = ref false

(* All shadow line keys of [block], prepended to [acc] (sanitizer lint
   bookkeeping only). *)
let block_line_keys block acc =
  let rec go line acc =
    if line >= Hare_mem.Layout.lines_per_block then acc
    else go (line + 1) (Hare_mem.Pcache.key_of ~block ~line :: acc)
  in
  go 0 acc

(* Retry state, present only when [rpc_deadline > 0]: requests carry a
   (client, seq) idempotency tag, time out, and are resent with bounded
   exponential backoff. The RNG is dedicated to backoff jitter so that
   injected faults never perturb a workload's own random stream. *)
type retry = {
  rt_base : int;  (** first-attempt deadline, in cycles *)
  rt_max : int;  (** attempts before giving up with [EIO] *)
  rt_cap : int;  (** ceiling on per-attempt deadline growth *)
  rt_rng : Rng.t;
  mutable rt_seq : int;
  mutable rt_ack : int;
      (* completed low-water mark: every seq <= rt_ack has a final
         outcome (reply in hand or given up) and will never be resent.
         Rides outgoing metas so servers can bound their dedup tables. *)
  rt_done : (int, unit) Hashtbl.t;
      (* completed seqs above the low-water mark, waiting for the gap
         below them (a still-inflight deferred request) to close *)
}

(* Record that [seq]'s outcome is final. The low-water mark only
   advances contiguously: a deferred request still in flight below a
   completed one pins the ack until it too resolves, because its tag
   could still be retransmitted at await time. *)
let note_done rt seq =
  if seq > rt.rt_ack then begin
    Hashtbl.replace rt.rt_done seq ();
    while Hashtbl.mem rt.rt_done (rt.rt_ack + 1) do
      Hashtbl.remove rt.rt_done (rt.rt_ack + 1);
      rt.rt_ack <- rt.rt_ack + 1
    done
  end

(* Per-server circuit breaker (PR 6): consecutive give-ups trip it open,
   and while open every retryable RPC to that server fast-fails with
   [EIO] instead of burning a full timeout ladder. After the cooldown a
   single probe is admitted (half-open); its fate decides whether the
   breaker closes or re-opens. Inert unless [breaker_threshold > 0]. *)
type breaker_state = Br_closed | Br_open of int64 | Br_half_open

type breaker = {
  mutable br_state : breaker_state;
  mutable br_fails : int;  (* consecutive give-ups while closed *)
}

(* A deferred RPC: sent, not yet awaited (rpc_window > 1). The
   (client, seq) tag is allocated at send time, so the retransmissions
   issued at await time are deduplicated against the original copy. *)
type pending = {
  pd_srv : int;
  pd_req : Wire.fs_req;
  pd_meta : Hare_msg.Rpc.meta option;
  pd_future : Wire.fs_resp Ivar.t;
  pd_what : string;
  pd_ino : Types.ino option;
      (* the inode the request mutates, for per-inode ordering barriers *)
  pd_span : int; (* trace span the request carried; 0 = untraced *)
}

type t = {
  engine : Engine.t;
  config : Hare_config.Config.t;
  costs : Hare_config.Costs.t;
  cid : int;
  core : Core_res.t;
  pcache : Hare_mem.Pcache.t;
  (* [servers] is indexed by PHYSICAL server id; everything above this
     layer (inode placement, dentry hashing, ino.server) speaks LOGICAL
     home ids, which are stable forever. [place] maps home -> physical
     endpoint; absent under static placements (identity). *)
  servers : (Wire.fs_req, Wire.fs_resp) Hare_msg.Rpc.t array;
  place : Hare_place.Place.t option;
  nhomes : int;  (* the hashing space: logical server count *)
  server_sockets : int array;
  local_server : int;
  root_dist : bool;
  dircache : Dircache.t;
  syscalls : Hare_stats.Opcount.t;
  retry : retry option;
  robust : Hare_stats.Robust.t;
  perf : Hare_stats.Perf.t;
  window_cap : int;
  window : pending Queue.t;
  extent : int;
  mutable rpc_count : int;
  mutable moved_retries : int;  (* EMOVED bounces chased to the new owner *)
  (* overload control (PR 6); all inert at the default knob settings *)
  breakers : breaker array;  (* one per physical server *)
  budget_tokens : int array;  (* retry tokens left, per physical server *)
  budget_successes : int array;  (* successes since last refill *)
  mutable open_breakers : int;
      (* breakers currently in [Br_open], maintained at every transition
         so the metrics gauge is an O(1) read, not an O(nservers) scan *)
}

let create ~engine ~config ~cid ~core ~pcache ~servers ~server_sockets
    ~local_server ~root_dist ~inval_port ?place () =
  let costs = config.Hare_config.Config.costs in
  let retry =
    if config.Hare_config.Config.rpc_deadline > 0 then
      Some
        {
          rt_base = config.Hare_config.Config.rpc_deadline;
          rt_max = config.Hare_config.Config.rpc_retries;
          rt_cap =
            (* The legacy implicit ceiling (64x the base deadline) unless
               an explicit [rpc_deadline_max] caps backoff growth. *)
            (if config.Hare_config.Config.rpc_deadline_max > 0 then
               config.Hare_config.Config.rpc_deadline_max
             else config.Hare_config.Config.rpc_deadline * 64);
          rt_rng =
            Rng.create
              ~seed:
                (Int64.add config.Hare_config.Config.seed
                   (Int64.of_int ((cid * 2654435761) + 0x5e7)));
          rt_seq = 0;
          rt_ack = 0;
          rt_done = Hashtbl.create 16;
        }
    else None
  in
  {
    engine;
    config;
    costs;
    cid;
    core;
    pcache;
    servers;
    place;
    nhomes =
      (match place with
      | Some p -> Hare_place.Place.nhomes p
      | None -> Array.length servers);
    server_sockets;
    local_server;
    root_dist;
    dircache =
      Dircache.create ~enabled:config.Hare_config.Config.dir_cache
        ~capacity:config.Hare_config.Config.dircache_capacity
        ~port:inval_port ();
    syscalls = Hare_stats.Opcount.create ();
    retry;
    robust = Hare_stats.Robust.create ();
    perf = Hare_stats.Perf.create ();
    window_cap = config.Hare_config.Config.rpc_window;
    window = Queue.create ();
    extent = config.Hare_config.Config.alloc_extent;
    rpc_count = 0;
    moved_retries = 0;
    breakers =
      Array.init (Array.length servers) (fun _ ->
          { br_state = Br_closed; br_fails = 0 });
    budget_tokens =
      Array.make (Array.length servers) config.Hare_config.Config.retry_budget;
    budget_successes = Array.make (Array.length servers) 0;
    open_breakers = 0;
  }

let cid t = t.cid

let core t = t.core

let pcache t = t.pcache

let dircache t = t.dircache

let syscalls t = t.syscalls

let rpc_count t = t.rpc_count

let moved_retries t = t.moved_retries

let robust t = t.robust

let perf t = t.perf

let open_breakers t = t.open_breakers

(* The hashing space: placement decisions (dentry_server, shard_servers,
   choose_inode_server) distribute over logical homes, never physical
   servers, so where things live is independent of ring membership. *)
let nservers t = t.nhomes

(* Logical home -> physical endpoint index, re-read at every send so a
   rebalance takes effect on the next RPC. *)
let phys t srv =
  match t.place with Some p -> Hare_place.Place.phys p srv | None -> srv

(* Fixed pause before chasing an EMOVED bounce: long enough to let the
   coordinator's Install_shard land at the new owner, short enough to be
   invisible next to a timeout ladder. *)
let moved_backoff = 200

let moved_cap = 1000

(* Effective distribution width: the whole machine (the paper), or the
   configured subset size (§6 extension). *)
let width t =
  match t.config.Hare_config.Config.dist_width with
  | Some w -> max 1 (min w (nservers t))
  | None -> nservers t

(* Every intercepted system call pays the interposition cost (§4). *)
let syscall t name =
  Hare_stats.Opcount.incr t.syscalls name;
  Core_res.compute t.core t.costs.syscall_trap

let sink t = Engine.sink t.engine

let checker t = Engine.checker t.engine

(* Admission annotation for tail retention (PR 9): stamp the current
   root span with the physical server this RPC is headed to and the
   queue depth it meets at admission. The trace freezes the first
   stamp; later stamps only update the last-server hint used for
   blocked-wait attribution. Skipped entirely unless retention is on,
   so plain traced runs pay no extra host cost per send. *)
let note_send t ep =
  match sink t with
  | Some tr when Trace.retain_enabled tr ->
      Trace.note_send tr
        ~fid:(Engine.current_fid t.engine)
        ~srv:ep
        ~depth:(Hare_msg.Rpc.pending t.servers.(ep))
  | _ -> ()

(* Wrap a public syscall body in a root trace span on this client's core
   track. The close folds any bucket-uncovered wall time into Queue, so
   the span's attribution always sums to its elapsed cycles. Nested
   syscalls (close inside exit teardown) fold into the outer span. *)
let traced t op f =
  match sink t with
  | None -> f ()
  | Some tr -> (
      let fid = Engine.current_fid t.engine in
      if Trace.ctx_active tr ~fid then f ()
      else begin
        ignore
          (Trace.ctx_open tr ~fid ~op ~track:(Core_res.id t.core) ~parent:0
             ~now:(Engine.now t.engine) ~args:[]);
        match f () with
        | v ->
            Trace.ctx_close_syscall tr ~fid ~now:(Engine.now t.engine);
            v
        | exception e ->
            Trace.ctx_close_syscall tr ~fid ~now:(Engine.now t.engine);
            raise e
      end)

(* ---------- RPC helpers ------------------------------------------------ *)

(* Requests that are safe to retransmit under the (client, seq) dedup
   protocol. Pipe I/O is excluded because a parked pipe read or write
   may legitimately wait forever (there is no deadline to distinguish a
   slow peer from a dead server), as is the rmdir lock, which parks
   until the previous holder commits. *)
let retryable (req : Wire.fs_req) =
  match req with
  | Wire.Pipe_read _ | Wire.Pipe_write _ | Wire.Rmdir_lock _ -> false
  | _ -> true

(* ---------- overload control: breakers and retry budgets --------------- *)

let breaker_enabled t = t.config.Hare_config.Config.breaker_threshold > 0

let breaker_instant t name srv =
  match sink t with
  | Some tr ->
      Trace.instant tr ~name ~track:(Core_res.id t.core)
        ~ts:(Engine.now t.engine)
        ~args:[ ("server", string_of_int srv) ]
        ()
  | None -> ()

(* Admission decision for a retryable RPC to [srv]: [true] = send it.
   An open breaker fast-fails callers until its cooldown elapses, then
   admits exactly one probe (half-open); further calls keep fast-failing
   until the probe's fate resolves the state. *)
let breaker_admit t srv =
  (not (breaker_enabled t))
  ||
  let br = t.breakers.(srv) in
  match br.br_state with
  | Br_closed -> true
  | Br_half_open -> false (* a probe is already in flight *)
  | Br_open until ->
      if Engine.now t.engine >= until then begin
        br.br_state <- Br_half_open;
        t.open_breakers <- t.open_breakers - 1;
        t.robust.Hare_stats.Robust.breaker_half_opens <-
          t.robust.Hare_stats.Robust.breaker_half_opens + 1;
        breaker_instant t "breaker-half-open" srv;
        true
      end
      else false

(* Any delivered reply — even a server-side errno — proves the server is
   alive, so it counts as breaker success. *)
let breaker_success t srv =
  if breaker_enabled t then begin
    let br = t.breakers.(srv) in
    (match br.br_state with
    | Br_half_open ->
        t.robust.Hare_stats.Robust.breaker_closes <-
          t.robust.Hare_stats.Robust.breaker_closes + 1;
        breaker_instant t "breaker-close" srv
    | Br_open _ -> t.open_breakers <- t.open_breakers - 1
    | Br_closed -> ());
    br.br_state <- Br_closed;
    br.br_fails <- 0
  end

(* Called when an RPC exhausts its retries (or its retry budget): a
   give-up is the breaker's failure unit, not a single timeout. *)
let breaker_failure t srv =
  if breaker_enabled t then begin
    let br = t.breakers.(srv) in
    let open_now () =
      br.br_state <-
        Br_open
          (Int64.add (Engine.now t.engine)
             (Int64.of_int t.config.Hare_config.Config.breaker_cooldown));
      br.br_fails <- 0;
      (* only reached from Br_closed / Br_half_open, so this is a new
         open, never a re-count *)
      t.open_breakers <- t.open_breakers + 1;
      t.robust.Hare_stats.Robust.breaker_opens <-
        t.robust.Hare_stats.Robust.breaker_opens + 1;
      breaker_instant t "breaker-open" srv
    in
    match br.br_state with
    | Br_half_open -> open_now () (* the probe failed: back to open *)
    | Br_closed ->
        br.br_fails <- br.br_fails + 1;
        if br.br_fails >= t.config.Hare_config.Config.breaker_threshold then
          open_now ()
    | Br_open _ -> ()
  end

(* Test hook: force [srv]'s breaker open right now, as if its give-up
   threshold had just been crossed. Lets a test pit an in-flight EMOVED
   chase against a breaker-open destination without scripting the
   timeouts a real open would need. No-op when breakers are disabled or
   the breaker is already open. *)
let trip_breaker t srv =
  if breaker_enabled t then begin
    let br = t.breakers.(srv) in
    match br.br_state with
    | Br_open _ -> ()
    | Br_closed | Br_half_open ->
        br.br_state <-
          Br_open
            (Int64.add (Engine.now t.engine)
               (Int64.of_int t.config.Hare_config.Config.breaker_cooldown));
        br.br_fails <- 0;
        t.open_breakers <- t.open_breakers + 1;
        t.robust.Hare_stats.Robust.breaker_opens <-
          t.robust.Hare_stats.Robust.breaker_opens + 1;
        breaker_instant t "breaker-open" srv
  end

let fast_fail t srv req =
  t.robust.Hare_stats.Robust.fast_fails <-
    t.robust.Hare_stats.Robust.fast_fails + 1;
  (match sink t with
  | Some tr ->
      Trace.instant tr ~name:"fast-fail" ~track:(Core_res.id t.core)
        ~ts:(Engine.now t.engine)
        ~args:[ ("op", Wire.req_name req); ("server", string_of_int srv) ]
        ()
  | None -> ());
  Error Errno.EIO

(* One retransmission costs one token; an empty bucket converts the
   retry into an immediate give-up, so a dead or drowning server cannot
   consume unbounded retry capacity. Successes refill the bucket slowly
   (one token per ten), keeping the steady-state retry rate a small
   fraction of goodput. *)
let budget_take t srv =
  let cap = t.config.Hare_config.Config.retry_budget in
  if cap = 0 then true
  else if t.budget_tokens.(srv) > 0 then begin
    t.budget_tokens.(srv) <- t.budget_tokens.(srv) - 1;
    true
  end
  else begin
    t.robust.Hare_stats.Robust.budget_denied <-
      t.robust.Hare_stats.Robust.budget_denied + 1;
    false
  end

let budget_note_success t srv =
  let cap = t.config.Hare_config.Config.retry_budget in
  if cap > 0 then begin
    t.budget_successes.(srv) <- t.budget_successes.(srv) + 1;
    if t.budget_successes.(srv) mod 10 = 0 && t.budget_tokens.(srv) < cap then
      t.budget_tokens.(srv) <- t.budget_tokens.(srv) + 1
  end

let note_success t srv =
  breaker_success t srv;
  budget_note_success t srv

(* Absolute deadline to ride the request envelope: the server drops the
   copy unserved if it is still queued past this instant. 0 = none. *)
let propagated_deadline t deadline =
  if t.config.Hare_config.Config.deadline_propagation then
    Int64.add (Engine.now t.engine) (Int64.of_int deadline)
  else 0L

(* Pause before chasing an EMOVED bounce to the shard's new owner. *)
let moved_wait t req =
  t.moved_retries <- t.moved_retries + 1;
  (match sink t with
  | Some tr ->
      Trace.on_wait tr
        ~fid:(Engine.current_fid t.engine)
        ~cycles:moved_backoff;
      Trace.instant tr ~name:"rpc-moved" ~track:(Core_res.id t.core)
        ~ts:(Engine.now t.engine)
        ~args:[ ("op", Wire.req_name req) ]
        ()
  | None -> ());
  Engine.sleep_cycles moved_backoff

let rpc_result t ?payload_lines srv req =
  t.rpc_count <- t.rpc_count + 1;
  match t.retry with
  | Some rt when retryable req ->
      if not (breaker_admit t (phys t srv)) then fast_fail t (phys t srv) req
      else begin
      (* One sequence number for every attempt of this call: the server
         deduplicates retransmissions, so the operation takes effect
         exactly once no matter how many copies arrive. Attempts re-read
         the ring route, so a retry lands at the shard's current owner
         under the same tag. *)
      rt.rt_seq <- rt.rt_seq + 1;
      let meta =
        { Hare_msg.Rpc.m_client = t.cid; m_seq = rt.rt_seq; m_ack = rt.rt_ack }
      in
      let rec attempt ~moved n deadline =
        let ep = phys t srv in
        note_send t ep;
        match
          Hare_msg.Rpc.call_deadline t.servers.(ep) ~engine:t.engine
            ~from:t.core ?payload_lines ~meta
            ~deadline:(Int64.of_int deadline)
            ~abs_deadline:(propagated_deadline t deadline)
            ~prio:(Wire.req_prio req) req
        with
        | Ok (Error Errno.EMOVED) ->
            (* The home migrated between our route read and the server's
               ownership check. Nothing executed and nothing was recorded
               under our tag, so resend — same tag — after the route
               settles. Bounces are not failures: they do not count
               against the attempt ladder or the breaker. *)
            if moved >= moved_cap then Error Errno.EIO
            else begin
              t.rpc_count <- t.rpc_count + 1;
              moved_wait t req;
              attempt ~moved:(moved + 1) n deadline
            end
        | Ok resp ->
            note_success t ep;
            resp
        | Error `Timeout ->
            t.robust.Hare_stats.Robust.timeouts <-
              t.robust.Hare_stats.Robust.timeouts + 1;
            if n + 1 >= rt.rt_max || not (budget_take t ep) then begin
              t.robust.Hare_stats.Robust.giveups <-
                t.robust.Hare_stats.Robust.giveups + 1;
              breaker_failure t ep;
              Error Errno.EIO
            end
            else begin
              t.robust.Hare_stats.Robust.retries <-
                t.robust.Hare_stats.Robust.retries + 1;
              t.rpc_count <- t.rpc_count + 1;
              (* Jittered backoff: desynchronizes clients hammering a
                 recovering server. *)
              let back = 1 + Rng.int rt.rt_rng (max 2 (deadline / 4)) in
              (match sink t with
              | Some tr ->
                  Trace.on_wait tr
                    ~fid:(Engine.current_fid t.engine)
                    ~cycles:back;
                  Trace.instant tr ~name:"rpc-retry" ~track:(Core_res.id t.core)
                    ~ts:(Engine.now t.engine)
                    ~args:[ ("op", Wire.req_name req) ]
                    ()
              | None -> ());
              Engine.sleep_cycles back;
              attempt ~moved (n + 1) (min (deadline * 2) rt.rt_cap)
            end
      in
      let resp = attempt ~moved:0 0 rt.rt_base in
      (* Whatever [resp] is — success, bounce cap, or give-up — this tag
         is finished: no further copy will ever be sent. *)
      note_done rt meta.Hare_msg.Rpc.m_seq;
      resp
      end
  | _ ->
      (* Reliable path (no fault plan): sends are exactly-once, so an
         EMOVED bounce is simply re-sent to the re-resolved owner. *)
      let rec go moved =
        let ep = phys t srv in
        note_send t ep;
        match
          Hare_msg.Rpc.call t.servers.(ep) ~from:t.core ?payload_lines req
        with
        | Error Errno.EMOVED when t.place <> None && moved < moved_cap ->
            t.rpc_count <- t.rpc_count + 1;
            moved_wait t req;
            go (moved + 1)
        | resp -> resp
      in
      go 0

let rpc t ?payload_lines srv req =
  match rpc_result t ?payload_lines srv req with
  | Ok payload -> payload
  | Error e -> Errno.raise_errno e (Wire.req_name req)

(* ---------- pipelined RPCs (rpc_window > 1) ---------------------------- *)

(* Allocate the idempotency tag for a request that will be awaited later.
   The tag is fixed at send time so the server dedups the original copy
   against any retransmission issued when the future is finally awaited. *)
let alloc_meta t req =
  match t.retry with
  | Some rt when retryable req ->
      rt.rt_seq <- rt.rt_seq + 1;
      Some
        { Hare_msg.Rpc.m_client = t.cid; m_seq = rt.rt_seq; m_ack = rt.rt_ack }
  | _ -> None

(* Await a deferred request, applying the same deadline/backoff/dedup
   discipline as [rpc_result]. The original future may already hold the
   reply; retransmissions re-send the tagged request and wait on a fresh
   future (the server's dedup table replays the reply to every copy). *)
let await_pending_once t (pd : pending) =
  if Ivar.is_filled pd.pd_future then begin
    (* The reply landed while this client was still computing: consuming
       it is a poll of a ready slot, not a blocking receive — no
       notification/wakeup path, just the copy. The server's cycles
       overlapped our own compute, so the breakdown recorded for the
       span is discarded (elapsed 0). *)
    (match sink t with
    | Some tr ->
        let fid = Engine.current_fid t.engine in
        Trace.on_blocked tr ~fid ~span:pd.pd_span ~elapsed:0;
        Trace.set_pending tr ~fid [ (Trace.Send, t.costs.recv_ready) ]
    | None -> ());
    Core_res.compute t.core t.costs.recv_ready;
    Hare_msg.Rpc.note_reply ~from:t.core pd.pd_future;
    Ivar.read pd.pd_future
  end
  else
  match (pd.pd_meta, t.retry) with
  | Some meta, Some rt ->
      let rec attempt n deadline future span =
        match
          Hare_msg.Rpc.await_deadline ~engine:t.engine ~from:t.core
            ~costs:t.costs ~deadline:(Int64.of_int deadline) ~span future
        with
        | Ok resp ->
            note_success t (phys t pd.pd_srv);
            resp
        | Error `Timeout ->
            t.robust.Hare_stats.Robust.timeouts <-
              t.robust.Hare_stats.Robust.timeouts + 1;
            if n + 1 >= rt.rt_max || not (budget_take t (phys t pd.pd_srv))
            then begin
              t.robust.Hare_stats.Robust.giveups <-
                t.robust.Hare_stats.Robust.giveups + 1;
              breaker_failure t (phys t pd.pd_srv);
              Error Errno.EIO
            end
            else begin
              t.robust.Hare_stats.Robust.retries <-
                t.robust.Hare_stats.Robust.retries + 1;
              t.rpc_count <- t.rpc_count + 1;
              let back = 1 + Rng.int rt.rt_rng (max 2 (deadline / 4)) in
              (match sink t with
              | Some tr ->
                  Trace.on_wait tr
                    ~fid:(Engine.current_fid t.engine)
                    ~cycles:back
              | None -> ());
              Engine.sleep_cycles back;
              let next_deadline = min (deadline * 2) rt.rt_cap in
              let ep = phys t pd.pd_srv in
              note_send t ep;
              let future, span =
                Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core ~meta
                  ~abs_deadline:(propagated_deadline t next_deadline)
                  ~prio:(Wire.req_prio pd.pd_req) pd.pd_req
              in
              attempt (n + 1) next_deadline future span
            end
      in
      attempt 0 rt.rt_base pd.pd_future pd.pd_span
  | _ ->
      Hare_msg.Rpc.await ~from:t.core ~costs:t.costs ~span:pd.pd_span
        pd.pd_future

(* Await a deferred request, chasing [EMOVED] bounces: re-send (same tag,
   so dedup still holds) to the re-resolved owner and await again. *)
let await_pending t (pd : pending) =
  let rec go moved pd =
    match await_pending_once t pd with
    | Error Errno.EMOVED when t.place <> None && moved < moved_cap ->
        t.rpc_count <- t.rpc_count + 1;
        moved_wait t pd.pd_req;
        let ep = phys t pd.pd_srv in
        note_send t ep;
        let future, span =
          Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core
            ?meta:pd.pd_meta ~prio:(Wire.req_prio pd.pd_req) pd.pd_req
        in
        go (moved + 1) { pd with pd_future = future; pd_span = span }
    | resp -> resp
  in
  let resp = go 0 pd in
  (* The deferred tag's outcome is final — it leaves the window and is
     never resent, so the ack low-water mark may advance over it. *)
  (match (pd.pd_meta, t.retry) with
  | Some m, Some rt -> note_done rt m.Hare_msg.Rpc.m_seq
  | _ -> ());
  resp

(* True when [e] means the token is stale and recovery should be tried:
   only under a fault plan, never in a fault-free run. *)
let stale_token t e = e = Errno.EBADF && t.retry <> None

(* Observe (and discard) the oldest deferred reply. Failures of a
   deferred close/unlink cannot be raised at the syscall that issued
   them — that syscall already returned — so they surface as a counter
   and a log line, like an asynchronous close. *)
let await_oldest t =
  match Queue.take_opt t.window with
  | None -> ()
  | Some pd -> (
      match await_pending t pd with
      | Ok _ -> ()
      | Error e when stale_token t e ->
          (* The server crashed and forgot the token/inode; the restart
             already reclaimed whatever the deferred op would have. *)
          ()
      | Error e ->
          t.perf.Hare_stats.Perf.deferred_errors <-
            t.perf.Hare_stats.Perf.deferred_errors + 1;
          Log.debug (fun m ->
              m "client %d: deferred %s failed (%s)" t.cid pd.pd_what
                (Errno.to_string e)))

(* Syscall boundaries with external visibility (fsync, process teardown,
   fork) wait for every in-flight deferred request. *)
let drain_window t =
  while not (Queue.is_empty t.window) do
    await_oldest t
  done

(* Issue [req] through the pipelining window: send now, observe the
   reply when the window fills or at the next drain point. Returns
   [None] when deferred, [Some result] when the window is disabled
   (rpc_window = 1) and the call completed synchronously — callers that
   get [None] must tolerate never seeing the response. Only used for
   requests whose success payload nobody reads: [Close_fd] of regular
   files and [Unlink_ino]. Pipe closes are never deferred: a reader
   blocked on a pipe must see the writer's close (EOF) promptly. *)
let rpc_deferred t srv ~what ?ino req =
  if t.window_cap <= 1 then Some (rpc_result t srv req)
  else begin
    while Queue.length t.window >= t.window_cap do
      await_oldest t
    done;
    t.rpc_count <- t.rpc_count + 1;
    let meta = alloc_meta t req in
    let ep = phys t srv in
    note_send t ep;
    let future, span =
      Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core ?meta
        ~prio:(Wire.req_prio req) req
    in
    Queue.push
      { pd_srv = srv; pd_req = req; pd_meta = meta; pd_future = future;
        pd_what = what; pd_ino = ino; pd_span = span }
      t.window;
    t.perf.Hare_stats.Perf.deferred <- t.perf.Hare_stats.Perf.deferred + 1;
    Hare_stats.Perf.note_window t.perf (Queue.length t.window);
    None
  end

(* Per-inode ordering barrier. Atomic delivery keeps same-server
   requests FIFO, but a retransmission (fault plans only) re-sends an
   unacked deferred request arbitrarily late — possibly after a later
   request touching the same inode, e.g. a retried [Close_fd] landing
   its stale [size] after a reopen appended data. Before re-opening an
   inode, wait out any deferred request that mutates it. *)
let drain_ino t ino =
  let touches () =
    Queue.fold (fun acc pd -> acc || pd.pd_ino = Some ino) false t.window
  in
  while touches () do
    await_oldest t
  done

(* A crashed server forgets its descriptor table; the first post-restart
   use of a token answers [EBADF]. Recover by re-opening the inode —
   which survived in DRAM — and patching the new token into the
   descriptor. A server-owned shared offset died with the server, so the
   descriptor falls back to a local offset at zero. *)
let recover_token t (fs : Fdtable.file_state) =
  drain_ino t fs.Fdtable.f_ino;
  match
    rpc_result t fs.Fdtable.f_ino.server
      (Wire.Open_inode { ino = fs.Fdtable.f_ino; trunc = false; client = t.cid })
  with
  | Ok (Wire.P_open oi) ->
      t.robust.Hare_stats.Robust.tokens_recovered <-
        t.robust.Hare_stats.Robust.tokens_recovered + 1;
      fs.Fdtable.f_token <- oi.Wire.token;
      (if t.extent > 1 && t.config.Hare_config.Config.direct_access then begin
         (* The restart reclaimed our extent lease; resync the block list
            so we never write into blocks the server already freed, and
            drop dirty marks for blocks we no longer own. *)
         let prev = fs.Fdtable.f_blocks in
         fs.Fdtable.f_blocks <- oi.Wire.blocks;
         fs.Fdtable.f_size <- min fs.Fdtable.f_size oi.Wire.isize;
         fs.Fdtable.f_lease <-
           max 0 (Array.length oi.Wire.blocks - blocks_needed oi.Wire.isize);
         let owned = Hashtbl.create 16 in
         Array.iter (fun b -> Hashtbl.replace owned b ()) oi.Wire.blocks;
         Hashtbl.filter_map_inplace
           (fun b () -> if Hashtbl.mem owned b then Some () else None)
           fs.Fdtable.f_dirty;
         (* Disowned blocks may still sit (dirty) in our private cache;
            dropping only their dirty marks would let a later LRU
            eviction flush stale lines over whatever the server
            reallocated them to. Invalidate the lines themselves too. *)
         Array.iter
           (fun b ->
             if not (Hashtbl.mem owned b) then
               Hare_mem.Pcache.invalidate_block t.pcache b)
           prev
       end);
      (match fs.Fdtable.f_pos with
      | Fdtable.Shared -> fs.Fdtable.f_pos <- Fdtable.Local 0
      | Fdtable.Local _ -> ())
  | Ok _ | Error _ ->
      Errno.raise_errno Errno.EBADF "descriptor lost in server crash"

(* Fan a request out to a set of servers: overlapped when directory
   broadcast is enabled (§3.6.2), one-at-a-time otherwise. Under a fault
   plan the fan-out degrades to sequential so every leg gets the full
   timeout/retry treatment — unless the pipelining window is enabled, in
   which case up to [rpc_window] legs fly at once, each keeping its own
   idempotency tag and deadline/retry loop. *)
let multicast t ids (mk : int -> Wire.fs_req) =
  if t.config.Hare_config.Config.dir_broadcast && t.retry = None then begin
    (* Overlapped reliable legs: an [EMOVED] bounce on one leg is settled
       by re-sending that leg alone to the re-resolved owner. *)
    let rec settle moved srv req resp =
      match resp with
      | Error Errno.EMOVED when t.place <> None && moved < moved_cap ->
          t.rpc_count <- t.rpc_count + 1;
          moved_wait t req;
          let ep = phys t srv in
          note_send t ep;
          let future, span =
            Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core req
          in
          settle (moved + 1) srv req
            (Hare_msg.Rpc.await ~from:t.core ~costs:t.costs ~span future)
      | resp -> resp
    in
    let futures =
      List.map
        (fun srv ->
          t.rpc_count <- t.rpc_count + 1;
          let req = mk srv in
          let ep = phys t srv in
          note_send t ep;
          let future, span =
            Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core req
          in
          (srv, req, future, span))
        ids
    in
    List.map
      (fun (srv, req, future, span) ->
        settle 0 srv req
          (Hare_msg.Rpc.await ~from:t.core ~costs:t.costs ~span future))
      futures
  end
  else if t.config.Hare_config.Config.dir_broadcast && t.window_cap > 1 then begin
    let results = Array.make (List.length ids) (Error Errno.EIO) in
    let inflight = Queue.create () in
    let land_one () =
      let i, pd = Queue.pop inflight in
      results.(i) <- await_pending t pd
    in
    List.iteri
      (fun i srv ->
        if Queue.length inflight >= t.window_cap then land_one ();
        let req = mk srv in
        t.rpc_count <- t.rpc_count + 1;
        let meta = alloc_meta t req in
        let ep = phys t srv in
        note_send t ep;
        let future, span =
          Hare_msg.Rpc.call_async_sp t.servers.(ep) ~from:t.core ?meta
            ~prio:(Wire.req_prio req) req
        in
        Queue.push
          ( i,
            { pd_srv = srv; pd_req = req; pd_meta = meta; pd_future = future;
              pd_what = "broadcast"; pd_ino = None; pd_span = span } )
          inflight;
        Hare_stats.Perf.note_window t.perf (Queue.length inflight))
      ids;
    while not (Queue.is_empty inflight) do
      land_one ()
    done;
    Array.to_list results
  end
  else List.map (fun srv -> rpc_result t srv (mk srv)) ids

(* ---------- path resolution -------------------------------------------- *)

type dirref = { d_ino : ino; d_dist : bool }

let rootref t = { d_ino = root_ino; d_dist = t.root_dist }

let entry_server t (dir : dirref) name =
  Types.dentry_server ~dist:dir.d_dist ~width:(width t)
    ~nservers:(nservers t) ~dir:dir.d_ino ~name

let shard_servers t (dir : ino) =
  Types.shard_servers ~dist:true ~width:(width t) ~nservers:(nservers t) ~dir

let lookup_entry t (dir : dirref) name : Wire.entry_info =
  match Dircache.find t.dircache ~dir:dir.d_ino ~name with
  | Some e -> e
  | None -> (
      let srv = entry_server t dir name in
      match
        rpc t srv (Wire.Lookup { dir = dir.d_ino; name; client = t.cid; home = srv })
      with
      | Wire.P_lookup { target; ftype; dist } ->
          let e = { Wire.t_ino = target; t_ftype = ftype; t_dist = dist } in
          Dircache.add t.dircache ~dir:dir.d_ino ~name e;
          e
      | _ -> assert false)

let resolve_dir t comps =
  List.fold_left
    (fun dir comp ->
      let e = lookup_entry t dir comp in
      match e.Wire.t_ftype with
      | Dir -> { d_ino = e.Wire.t_ino; d_dist = e.Wire.t_dist }
      | Reg | Fifo -> Errno.raise_errno Errno.ENOTDIR comp)
    (rootref t) comps

let resolve_parent t ~cwd path =
  let comps = Path.normalize ~cwd path in
  let parent_comps, name = Path.parent_and_name comps in
  (resolve_dir t parent_comps, name)

(* The server placement for a new inode (§3.6.4, creation affinity): the
   entry's server when it is already close (or when affinity is off, to
   maximize coalescing); otherwise this client's designated local
   server. *)
let choose_inode_server t entry_srv =
  if not t.config.Hare_config.Config.creation_affinity then entry_srv
  else if t.server_sockets.(entry_srv) = Core_res.socket t.core then entry_srv
  else t.local_server

(* ---------- close-to-open cache actions -------------------------------- *)

let direct_mode t = t.config.Hare_config.Config.direct_access

let invalidate_blocks t blocks =
  Array.iter (fun b -> Hare_mem.Pcache.invalidate_block t.pcache b) blocks

let writeback_dirty ?(what = "close/fsync") t (fs : Fdtable.file_state) =
  (* Capture the dirty block set up front: the reset below must happen
     whether or not the (possibly mutation-skipped) write-back ran, and
     the lint needs the keys afterwards. *)
  let keys =
    match checker t with
    | Some _ -> Hashtbl.fold (fun b () acc -> block_line_keys b acc) fs.f_dirty []
    | None -> []
  in
  if not !mutate_skip_writeback then
    Hashtbl.iter
      (fun b () -> Hare_mem.Pcache.writeback_block t.pcache b)
      fs.f_dirty;
  Hashtbl.reset fs.f_dirty;
  match checker t with
  | Some chk -> Check.lint_flush chk ~core:(Core_res.id t.core) ~keys ~what
  | None -> ()

(* ---------- open -------------------------------------------------------- *)

let file_entry t ~(flags : open_flags) ~ino ~(oi : Wire.open_info) : Fdtable.entry
    =
  let start = if flags.append then oi.isize else 0 in
  (* Close-to-open (§3.2): invalidate our private cache's copies of the
     file's blocks, which another core may have rewritten since we last
     saw them. Only needed when we will access the buffer cache
     directly. *)
  (if direct_mode t then begin
     if not !mutate_skip_open_inval then invalidate_blocks t oi.blocks;
     match checker t with
     | Some chk ->
         let keys = Array.fold_left (fun acc b -> block_line_keys b acc) [] oi.blocks in
         Check.lint_open chk ~core:(Core_res.id t.core) ~keys
     | None -> ()
   end);
  {
    Fdtable.desc =
      Fdtable.File
        {
          f_ino = ino;
          f_token = oi.token;
          f_flags = flags;
          f_pos = Fdtable.Local start;
          f_blocks = oi.blocks;
          f_size = oi.isize;
          f_dirty = Hashtbl.create 8;
          f_wrote = false;
          f_lease = max 0 (Array.length oi.blocks - blocks_needed oi.isize);
        };
    local_refs = 1;
  }

let open_existing t (flags : open_flags) (target : ino) =
  (* Ordering barrier: a still-deferred close of this very inode could
     be retransmitted after this open's writes and revert the size. *)
  drain_ino t target;
  match
    rpc t target.server
      (Wire.Open_inode { ino = target; trunc = flags.trunc; client = t.cid })
  with
  | Wire.P_open oi -> (target, oi)
  | _ -> assert false

let create_file t (dir : dirref) name (flags : open_flags) =
  let entry_srv = entry_server t dir name in
  let inode_srv = choose_inode_server t entry_srv in
  if inode_srv = entry_srv then begin
    (* Coalesced create: inode + entry + fd in one message (§3.6.3). *)
    match
      rpc t entry_srv
        (Wire.Create_open
           {
             dir = dir.d_ino;
             name;
             excl = flags.excl;
             trunc = flags.trunc;
             client = t.cid;
             home = entry_srv;
           })
    with
    | Wire.P_open_ino { oi; ino } ->
        Dircache.add t.dircache ~dir:dir.d_ino ~name
          { Wire.t_ino = ino; t_ftype = Reg; t_dist = false };
        (ino, oi)
    | Wire.P_lookup { target; ftype; dist } ->
        (* The name exists but its inode lives on another server. *)
        Dircache.add t.dircache ~dir:dir.d_ino ~name
          { Wire.t_ino = target; t_ftype = ftype; t_dist = dist };
        if ftype = Dir then Errno.raise_errno Errno.EISDIR name
        else open_existing t flags target
    | _ -> assert false
  end
  else begin
    match
      rpc t inode_srv
        (Wire.Create_inode
           { ftype = Reg; dist = false; and_open = true; home = inode_srv })
    with
    | Wire.P_open_ino { oi; ino } -> (
        match
          rpc_result t entry_srv
            (Wire.Add_map
               {
                 dir = dir.d_ino;
                 name;
                 target = ino;
                 ftype = Reg;
                 dist = false;
                 replace = false;
                 client = t.cid;
                 home = entry_srv;
               })
        with
        | Ok _ ->
            Dircache.add t.dircache ~dir:dir.d_ino ~name
              { Wire.t_ino = ino; t_ftype = Reg; t_dist = false };
            (ino, oi)
        | Error err ->
            (* Lost a create race, or the directory vanished: roll the
               fresh inode back before reporting. The close+unlink pair
               goes to one server, so the two legs pipeline. *)
            let must = function
              | None | Some (Ok _) -> ()
              | Some (Error e) -> Errno.raise_errno e name
            in
            must
              (rpc_deferred t ino.server ~what:"rollback-close" ~ino
                 (Wire.Close_fd { token = oi.token; size = None }));
            must
              (rpc_deferred t ino.server ~what:"rollback-unlink" ~ino
                 (Wire.Unlink_ino { ino }));
            if err <> Errno.EEXIST then Errno.raise_errno err name
            else if flags.excl then Errno.raise_errno Errno.EEXIST name
            else
              let e = lookup_entry t dir name in
              if e.Wire.t_ftype = Dir then Errno.raise_errno Errno.EISDIR name
              else open_existing t flags e.Wire.t_ino)
    | _ -> assert false
  end

let openf t fdt ~cwd path (flags : open_flags) =
  traced t "open" @@ fun () ->
  syscall t "open";
  let dir, name = resolve_parent t ~cwd path in
  let ino, oi =
    if flags.creat then
      if flags.excl then create_file t dir name flags
      else begin
        (* Common fast path: try the (possibly cached) existing file
           first only if the cache knows it; otherwise go create. *)
        match Dircache.find t.dircache ~dir:dir.d_ino ~name with
        | Some e when e.Wire.t_ftype = Reg -> open_existing t flags e.Wire.t_ino
        | Some e when e.Wire.t_ftype = Dir -> Errno.raise_errno Errno.EISDIR name
        | _ -> create_file t dir name flags
      end
    else begin
      let e = lookup_entry t dir name in
      match e.Wire.t_ftype with
      | Dir -> Errno.raise_errno Errno.EISDIR name
      | Fifo -> Errno.raise_errno Errno.EINVAL name
      | Reg -> open_existing t flags e.Wire.t_ino
    end
  in
  Fdtable.alloc fdt (file_entry t ~flags ~ino ~oi)

(* ---------- read / write / seek ---------------------------------------- *)

let console_write t (c : Wire.console_ref) data =
  match c with
  | Wire.Console_local buf ->
      Buffer.add_string buf data;
      String.length data
  | Wire.Console_remote port ->
      let ack = Ivar.create () in
      Hare_msg.Mailbox.send port ~from:t.core
        ~payload_lines:((String.length data / 64) + 1)
        (Wire.Pm_console_write { data; ack });
      (match sink t with
      | Some tr ->
          let b0 = Engine.now t.engine in
          Ivar.read ack;
          Trace.on_blocked tr
            ~fid:(Engine.current_fid t.engine)
            ~span:0
            ~elapsed:(Int64.to_int (Int64.sub (Engine.now t.engine) b0))
      | None -> Ivar.read ack);
      String.length data

(* Refresh client-side file state after a shared descriptor migrates back
   to local mode: the server performed I/O meanwhile, so both the block
   list and our private cache's view may be stale. *)
let demote_to_local t (fs : Fdtable.file_state) offset =
  fs.f_pos <- Fdtable.Local offset;
  if direct_mode t then begin
    match rpc t fs.f_ino.server (Wire.Get_blocks { ino = fs.f_ino }) with
    | Wire.P_blocks { blocks; bsize } ->
        fs.f_blocks <- blocks;
        fs.f_size <- bsize;
        fs.f_lease <- max 0 (Array.length blocks - blocks_needed bsize);
        invalidate_blocks t blocks
    | _ -> assert false
  end

let direct_read t (fs : Fdtable.file_state) ~off ~len =
  let len = max 0 (min len (fs.f_size - off)) in
  if len = 0 then ""
  else begin
    let out = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let foff = off + !pos in
      let bi = foff / bs and boff = foff mod bs in
      let n = min (len - !pos) (bs - boff) in
      Hare_mem.Pcache.read t.pcache ~block:fs.f_blocks.(bi) ~off:boff ~len:n
        ~dst:out ~dst_off:!pos;
      pos := !pos + n
    done;
    Bytes.unsafe_to_string out
  end

let ensure_client_blocks t (fs : Fdtable.file_state) ~size =
  let need = blocks_needed size in
  let have = Array.length fs.f_blocks in
  if need > have then begin
    (* Extent-granularity allocation: ask for [alloc_extent - 1] blocks
       beyond the immediate need, so a sequential writer goes back to
       the server once per extent instead of once per block. The hint is
       best-effort — a full server drops it before failing. *)
    let ahead = if t.extent > 1 then t.extent - 1 else 0 in
    if ahead > 0 then
      t.perf.Hare_stats.Perf.lease_misses <-
        t.perf.Hare_stats.Perf.lease_misses + 1;
    match
      rpc t fs.f_ino.server
        (Wire.Alloc_blocks { ino = fs.f_ino; count = need - have; ahead })
    with
    | Wire.P_blocks { blocks; bsize = _ } ->
        (* Invalidate the fresh blocks: our cache may hold stale lines
           from the blocks' previous life in another file. *)
        let added = Array.sub blocks have (Array.length blocks - have) in
        invalidate_blocks t added;
        fs.f_blocks <- blocks;
        let surplus = Array.length blocks - need in
        fs.f_lease <- max 0 surplus;
        if surplus > 0 then
          t.perf.Hare_stats.Perf.lease_blocks <-
            t.perf.Hare_stats.Perf.lease_blocks + surplus
    | _ -> assert false
  end
  else if fs.f_lease > 0 && need > have - fs.f_lease then begin
    (* The file grew into blocks held ahead of need: a lease hit, no RPC. *)
    fs.f_lease <- have - need;
    t.perf.Hare_stats.Perf.lease_hits <-
      t.perf.Hare_stats.Perf.lease_hits + 1
  end

let direct_write t (fs : Fdtable.file_state) ~off data =
  let len = String.length data in
  ensure_client_blocks t fs ~size:(off + len);
  let srcb = Bytes.unsafe_of_string data in
  let pos = ref 0 in
  while !pos < len do
    let foff = off + !pos in
    let bi = foff / bs and boff = foff mod bs in
    let n = min (len - !pos) (bs - boff) in
    Hare_mem.Pcache.write t.pcache ~block:fs.f_blocks.(bi) ~off:boff ~len:n
      ~src:srcb ~src_off:!pos;
    Hashtbl.replace fs.f_dirty fs.f_blocks.(bi) ();
    pos := !pos + n
  done;
  if off + len > fs.f_size then fs.f_size <- off + len;
  fs.f_wrote <- true;
  len

let payload_of data = (String.length data / 64) + 1

let rec file_read t (fs : Fdtable.file_state) ~len =
  match fs.f_pos with
  | Fdtable.Local off when direct_mode t ->
      let data = direct_read t fs ~off ~len in
      fs.f_pos <- Fdtable.Local (off + String.length data);
      data
  | Fdtable.Local off -> (
      match
        rpc_result t fs.f_ino.server
          (Wire.Read_fd { token = fs.f_token; off = Some off; len })
      with
      | Ok (Wire.P_read { data; _ }) ->
          fs.f_pos <- Fdtable.Local (off + String.length data);
          data
      | Ok _ -> assert false
      | Error e when stale_token t e ->
          recover_token t fs;
          file_read t fs ~len
      | Error e -> Errno.raise_errno e "read")
  | Fdtable.Shared -> (
      match
        rpc_result t fs.f_ino.server
          (Wire.Read_fd { token = fs.f_token; off = None; len })
      with
      | Ok (Wire.P_read { data; now_local }) ->
          (match now_local with
          | Some off -> demote_to_local t fs off
          | None -> ());
          data
      | Ok _ -> assert false
      | Error e when stale_token t e ->
          (* The shared offset died with the server; recovery demotes the
             descriptor to a local offset at zero and the read reruns
             from there. *)
          recover_token t fs;
          file_read t fs ~len
      | Error e -> Errno.raise_errno e "read")

let rec file_write t (fs : Fdtable.file_state) data =
  match fs.f_pos with
  | Fdtable.Local off ->
      let off = if fs.f_flags.append then fs.f_size else off in
      if direct_mode t then begin
        let n = direct_write t fs ~off data in
        fs.f_pos <- Fdtable.Local (off + n);
        n
      end
      else begin
        match
          rpc_result t fs.f_ino.server
            ~payload_lines:(payload_of data)
            (Wire.Write_fd { token = fs.f_token; off = Some off; data })
        with
        | Ok (Wire.P_write { written; size; _ }) ->
            fs.f_size <- size;
            fs.f_wrote <- true;
            fs.f_pos <- Fdtable.Local (off + written);
            written
        | Ok _ -> assert false
        | Error e when stale_token t e ->
            recover_token t fs;
            file_write t fs data
        | Error e -> Errno.raise_errno e "write"
      end
  | Fdtable.Shared -> (
      match
        rpc_result t fs.f_ino.server
          ~payload_lines:(payload_of data)
          (Wire.Write_fd { token = fs.f_token; off = None; data })
      with
      | Ok (Wire.P_write { written; size; now_local }) ->
          fs.f_size <- size;
          fs.f_wrote <- true;
          (match now_local with
          | Some off -> demote_to_local t fs off
          | None -> ());
          written
      | Ok _ -> assert false
      | Error e when stale_token t e ->
          recover_token t fs;
          file_write t fs data
      | Error e -> Errno.raise_errno e "write")

let read t fdt fd ~len =
  traced t "read" @@ fun () ->
  syscall t "read";
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.File fs -> file_read t fs ~len
  | Fdtable.Pipe p -> (
      if p.p_write then Errno.raise_errno Errno.EBADF "write end of pipe"
      else
        match rpc t p.p_ino.server (Wire.Pipe_read { token = p.p_token; len }) with
        | Wire.P_read { data; _ } -> data
        | _ -> assert false)
  | Fdtable.Console _ -> ""

let write t fdt fd data =
  traced t "write" @@ fun () ->
  syscall t "write";
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.File fs -> file_write t fs data
  | Fdtable.Pipe p -> (
      if not p.p_write then Errno.raise_errno Errno.EBADF "read end of pipe"
      else
        match
          rpc t p.p_ino.server
            ~payload_lines:(payload_of data)
            (Wire.Pipe_write { token = p.p_token; data })
        with
        | Wire.P_write { written; _ } -> written
        | _ -> assert false)
  | Fdtable.Console c -> console_write t c data

let rec seek_file t (fs : Fdtable.file_state) ~pos whence =
  match fs.Fdtable.f_pos with
  | Fdtable.Local cur ->
      let target =
        match whence with
        | Seek_set -> pos
        | Seek_cur -> cur + pos
        | Seek_end -> fs.f_size + pos
      in
      if target < 0 then Errno.raise_errno Errno.EINVAL "negative offset";
      fs.f_pos <- Fdtable.Local target;
      target
  | Fdtable.Shared -> (
      match
        rpc_result t fs.f_ino.server
          (Wire.Lseek_fd { token = fs.f_token; pos; whence })
      with
      | Ok (Wire.P_lseek target) -> target
      | Ok _ -> assert false
      | Error e when stale_token t e ->
          recover_token t fs;
          seek_file t fs ~pos whence
      | Error e -> Errno.raise_errno e "lseek")

let lseek t fdt fd ~pos whence =
  traced t "lseek" @@ fun () ->
  syscall t "lseek";
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.Pipe _ | Fdtable.Console _ -> Errno.raise_errno Errno.ESPIPE "lseek"
  | Fdtable.File fs -> seek_file t fs ~pos whence

(* ---------- close / fsync / truncate ----------------------------------- *)

(* Push our size view to the server (after a direct-mode writeback). *)
let rec update_size t (fs : Fdtable.file_state) =
  match
    rpc_result t fs.Fdtable.f_ino.server
      (Wire.Update_size { token = fs.f_token; size = fs.f_size })
  with
  | Ok _ -> ()
  | Error e when stale_token t e ->
      recover_token t fs;
      update_size t fs
  | Error e -> Errno.raise_errno e "update_size"

let release_desc t (entry : Fdtable.entry) =
  match entry.Fdtable.desc with
  | Fdtable.File fs ->
      if fs.f_wrote && direct_mode t then writeback_dirty ~what:"close" t fs;
      (* Report our size view only while the offset (and hence the size)
         is client-owned; for a shared descriptor the server's view is
         authoritative (§3.4). *)
      let size =
        match fs.f_pos with
        | Fdtable.Local _ when fs.f_wrote && direct_mode t -> Some fs.f_size
        | Fdtable.Local _ | Fdtable.Shared -> None
      in
      (* The close's reply carries nothing the caller needs, so with a
         window it is deferred: per-server FIFO delivery means any later
         request to the same server is processed after it. *)
      (match
         rpc_deferred t fs.f_ino.server ~what:"close" ~ino:fs.f_ino
           (Wire.Close_fd { token = fs.f_token; size })
       with
      | None | Some (Ok _) -> ()
      | Some (Error e) when stale_token t e ->
          (* The crash already closed the descriptor for us. *)
          ()
      | Some (Error e) -> Errno.raise_errno e "close")
  | Fdtable.Pipe p -> (
      match
        rpc_result t p.p_ino.server
          (Wire.Close_fd { token = p.p_token; size = None })
      with
      | Ok _ -> ()
      | Error e when stale_token t e -> ()
      | Error e -> Errno.raise_errno e "close")
  | Fdtable.Console _ -> ()

let close t fdt fd =
  traced t "close" @@ fun () ->
  syscall t "close";
  let entry = Fdtable.find_exn fdt fd in
  Fdtable.remove fdt fd;
  entry.Fdtable.local_refs <- entry.Fdtable.local_refs - 1;
  if entry.Fdtable.local_refs <= 0 then release_desc t entry

let close_all t fdt =
  (* Process exit: release everything we can; one sick descriptor must
     not keep the rest (and their server-side state) alive. *)
  List.iter
    (fun fd -> try close t fdt fd with Errno.Error _ -> ())
    (Fdtable.fds fdt);
  (* Exit is externally visible (a parent may be waiting): make sure
     every deferred close has actually landed. *)
  drain_window t

let fsync t fdt fd =
  traced t "fsync" @@ fun () ->
  syscall t "fsync";
  (* Durability barrier: deferred requests count as outstanding I/O. *)
  drain_window t;
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.File fs ->
      if fs.f_wrote && direct_mode t then begin
        writeback_dirty ~what:"fsync" t fs;
        update_size t fs
      end
  | Fdtable.Pipe _ | Fdtable.Console _ -> ()

let ftruncate t fdt fd ~size =
  traced t "ftruncate" @@ fun () ->
  syscall t "ftruncate";
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.Pipe _ | Fdtable.Console _ -> Errno.raise_errno Errno.EINVAL "ftruncate"
  | Fdtable.File fs -> (
      (* Surviving bytes must be in DRAM before the server scrubs the
         tail; flush our dirty lines first. *)
      if fs.f_wrote && direct_mode t then begin
        writeback_dirty ~what:"ftruncate" t fs;
        update_size t fs
      end;
      ignore (rpc t fs.f_ino.server (Wire.Truncate { ino = fs.f_ino; size }));
      fs.f_size <- size;
      if direct_mode t then
        match rpc t fs.f_ino.server (Wire.Get_blocks { ino = fs.f_ino }) with
        | Wire.P_blocks { blocks; bsize } ->
            fs.f_blocks <- blocks;
            fs.f_size <- bsize;
            fs.f_lease <- max 0 (Array.length blocks - blocks_needed bsize);
            invalidate_blocks t blocks
        | _ -> assert false)

let fstat t fdt fd =
  traced t "fstat" @@ fun () ->
  syscall t "fstat";
  let entry = Fdtable.find_exn fdt fd in
  match entry.Fdtable.desc with
  | Fdtable.File fs -> (
      match rpc t fs.f_ino.server (Wire.Get_attr { ino = fs.f_ino }) with
      | Wire.P_attr a -> a
      | _ -> assert false)
  | Fdtable.Pipe p -> (
      match rpc t p.p_ino.server (Wire.Get_attr { ino = p.p_ino }) with
      | Wire.P_attr a -> a
      | _ -> assert false)
  | Fdtable.Console _ -> Errno.raise_errno Errno.EINVAL "fstat on console"

(* ---------- dup / pipe -------------------------------------------------- *)

let dup t fdt fd =
  traced t "dup" @@ fun () ->
  syscall t "dup";
  let entry = Fdtable.find_exn fdt fd in
  entry.Fdtable.local_refs <- entry.Fdtable.local_refs + 1;
  Fdtable.alloc fdt entry

let dup2 t fdt ~src ~dst =
  traced t "dup2" @@ fun () ->
  syscall t "dup2";
  let entry = Fdtable.find_exn fdt src in
  if src = dst then dst
  else begin
    (match Fdtable.find fdt dst with
    | Some old ->
        Fdtable.remove fdt dst;
        old.Fdtable.local_refs <- old.Fdtable.local_refs - 1;
        if old.Fdtable.local_refs <= 0 then release_desc t old
    | None -> ());
    entry.Fdtable.local_refs <- entry.Fdtable.local_refs + 1;
    Fdtable.alloc_at fdt dst entry;
    dst
  end

let pipe t fdt =
  traced t "pipe" @@ fun () ->
  syscall t "pipe";
  match
    rpc t t.local_server
      (Wire.Pipe_create { client = t.cid; home = t.local_server })
  with
  | Wire.P_pipe { pipe_ino; rd; wr } ->
      let mk token write =
        {
          Fdtable.desc =
            Fdtable.Pipe { p_ino = pipe_ino; p_token = token; p_write = write };
          local_refs = 1;
        }
      in
      let rfd = Fdtable.alloc fdt (mk rd false) in
      let wfd = Fdtable.alloc fdt (mk wr true) in
      (rfd, wfd)
  | _ -> assert false

(* ---------- name-space operations --------------------------------------- *)

let unlink t ~cwd path =
  traced t "unlink" @@ fun () ->
  syscall t "unlink";
  let dir, name = resolve_parent t ~cwd path in
  let srv = entry_server t dir name in
  match
    rpc t srv
      (Wire.Rm_map
         { dir = dir.d_ino; name; only_if = None; client = t.cid; home = srv })
  with
  | Wire.P_removed { target; ftype } ->
      Dircache.remove t.dircache ~dir:dir.d_ino ~name;
      if ftype = Dir then begin
        (* Roll back: directories are removed with rmdir. *)
        ignore
          (rpc t srv
             (Wire.Add_map
                {
                  dir = dir.d_ino;
                  name;
                  target;
                  ftype;
                  dist = true;
                  replace = false;
                  client = t.cid;
                  home = srv;
                }));
        Errno.raise_errno Errno.EISDIR name
      end;
      (* The entry is gone (the visible effect); dropping the link count
         is independent, so it rides the window. *)
      (match
         rpc_deferred t target.server ~what:"unlink" ~ino:target
           (Wire.Unlink_ino { ino = target })
       with
      | None | Some (Ok _) -> ()
      | Some (Error e) -> Errno.raise_errno e "unlink")
  | _ -> assert false

let mkdir t ~cwd ?(dist = false) path =
  traced t "mkdir" @@ fun () ->
  syscall t "mkdir";
  let dir, name = resolve_parent t ~cwd path in
  let dist = dist && t.config.Hare_config.Config.dir_distribution in
  let entry_srv = entry_server t dir name in
  let home_srv = choose_inode_server t entry_srv in
  if home_srv = entry_srv then begin
    (* Coalesced mkdir (§3.6.3): one message creates inode + entry. *)
    match
      rpc t entry_srv
        (Wire.Create_dir
           { dir = dir.d_ino; name; dist; client = t.cid; home = entry_srv })
    with
    | Wire.P_created_ino ino ->
        Dircache.add t.dircache ~dir:dir.d_ino ~name
          { Wire.t_ino = ino; t_ftype = Dir; t_dist = dist }
    | _ -> assert false
  end
  else
  match
    rpc t home_srv
      (Wire.Create_inode
         { ftype = Dir; dist; and_open = false; home = home_srv })
  with
  | Wire.P_created_ino ino -> (
      match
        rpc_result t entry_srv
          (Wire.Add_map
             {
               dir = dir.d_ino;
               name;
               target = ino;
               ftype = Dir;
               dist;
               replace = false;
               client = t.cid;
               home = entry_srv;
             })
      with
      | Ok _ ->
          Dircache.add t.dircache ~dir:dir.d_ino ~name
            { Wire.t_ino = ino; t_ftype = Dir; t_dist = dist }
      | Error e ->
          ignore (rpc t home_srv (Wire.Unlink_ino { ino }));
          Errno.raise_errno e name)
  | _ -> assert false

let rmdir t ~cwd path =
  traced t "rmdir" @@ fun () ->
  syscall t "rmdir";
  let dir, name = resolve_parent t ~cwd path in
  let e = lookup_entry t dir name in
  if e.Wire.t_ftype <> Dir then Errno.raise_errno Errno.ENOTDIR name;
  let target = e.Wire.t_ino in
  let home = target.server in
  if not e.Wire.t_dist then begin
    (* Centralized directory: the home server holds every entry, so the
       emptiness check and removal coalesce into one atomic message; only
       the parent's entry needs a second RPC. *)
    ignore (rpc t home (Wire.Rmdir_local { dir = target; client = t.cid }));
    (* conditional: a same-named directory may already have been
       recreated; its entry is not ours to remove *)
    (let esrv = entry_server t dir name in
     match
       rpc_result t esrv
         (Wire.Rm_map
            {
              dir = dir.d_ino;
              name;
              only_if = Some target;
              client = t.cid;
              home = esrv;
            })
     with
    | Ok _ | Error Errno.ENOENT -> ()
    | Error err -> Errno.raise_errno err name);
    Dircache.remove t.dircache ~dir:dir.d_ino ~name
  end
  else begin
  (* Phase 0: serialize concurrent rmdirs at the home server (§3.3). The
     lock reply arrives only once we hold it; ENOENT means the directory
     vanished while we waited. *)
  (match rpc_result t home (Wire.Rmdir_lock { dir = target }) with
  | Ok _ -> ()
  | Error err -> Errno.raise_errno err name);
  let servers_involved =
    List.sort_uniq compare (home :: shard_servers t target)
  in
  (* Phase 1: ask every involved server to mark-for-deletion; succeeds
     only on empty shards. *)
  let prepare_results =
    multicast t servers_involved (fun srv ->
        Wire.Rmdir_prepare { dir = target; home = srv })
  in
  let all_ok = List.for_all Result.is_ok prepare_results in
  if all_ok then begin
    (* Unlink the directory's own entry from its parent, then commit. *)
    let srv = entry_server t dir name in
    (match
       rpc_result t srv
         (Wire.Rm_map
            {
              dir = dir.d_ino;
              name;
              only_if = Some target;
              client = t.cid;
              home = srv;
            })
     with
    | Ok _ -> Dircache.remove t.dircache ~dir:dir.d_ino ~name
    | Error _ -> ());
    ignore
      (multicast t servers_involved (fun srv ->
           Wire.Rmdir_commit { dir = target; client = t.cid; home = srv }))
    (* The commit at the home server destroys the lock with the inode. *)
  end
  else begin
    List.iter
      (fun srv ->
        ignore (rpc_result t srv (Wire.Rmdir_abort { dir = target; home = srv })))
      servers_involved;
    ignore (rpc_result t home (Wire.Rmdir_unlock { dir = target }));
    (* Distinguish "a shard holds entries" from "a shard's server is
       unreachable": the latter must not masquerade as ENOTEMPTY. *)
    let hard =
      List.exists
        (function Error Errno.EIO -> true | _ -> false)
        prepare_results
    in
    Errno.raise_errno (if hard then Errno.EIO else Errno.ENOTEMPTY) name
  end
  end

let readdir t ~cwd path =
  traced t "readdir" @@ fun () ->
  syscall t "readdir";
  let comps = Path.normalize ~cwd path in
  let dir = resolve_dir t comps in
  if dir.d_dist then begin
    let results =
      multicast t (shard_servers t dir.d_ino) (fun srv ->
          Wire.Readdir_shard { dir = dir.d_ino; home = srv })
    in
    List.concat_map
      (function
        | Ok (Wire.P_entries es) -> es
        | Ok _ -> assert false
        | Error e ->
            (* A shard did not answer (its server is down and retries ran
               out). Per configuration: return what the live shards hold,
               or refuse to return a silently truncated listing. *)
            if t.config.Hare_config.Config.partial_broadcast then begin
              t.robust.Hare_stats.Robust.partial_broadcasts <-
                t.robust.Hare_stats.Robust.partial_broadcasts + 1;
              []
            end
            else Errno.raise_errno e "readdir")
      results
  end
  else
    match
      rpc t dir.d_ino.server
        (Wire.Readdir_shard { dir = dir.d_ino; home = dir.d_ino.server })
    with
    | Wire.P_entries es -> es
    | _ -> assert false

let rename t ~cwd oldp newp =
  traced t "rename" @@ fun () ->
  syscall t "rename";
  let odir, oname = resolve_parent t ~cwd oldp in
  let ndir, nname = resolve_parent t ~cwd newp in
  if odir.d_ino = ndir.d_ino && oname = nname then ()
  else begin
    let e = lookup_entry t odir oname in
    let target = e.Wire.t_ino in
    (* The paper's rename: ADD_MAP at the new name's server, then RM_MAP
       at the old name's (§3.3) — two RPCs (§5.3.3). A concurrent unlink
       or rename of the old name can win the race; because the removal is
       conditional on the entry still denoting [target] (and inode ids
       are never reused), we detect that and compensate by removing the
       entry we just added, so no dangling name survives. *)
    let nsrv = entry_server t ndir nname in
    let replaced =
      match
        rpc t nsrv
          (Wire.Add_map
             {
               dir = ndir.d_ino;
               name = nname;
               target;
               ftype = e.Wire.t_ftype;
               dist = e.Wire.t_dist;
               replace = true;
               client = t.cid;
               home = nsrv;
             })
      with
      | Wire.P_removed { target = victim; ftype = Reg } -> Some victim
      | Wire.P_removed _ | Wire.P_unit -> None
      | _ -> assert false
    in
    Dircache.add t.dircache ~dir:ndir.d_ino ~name:nname e;
    let osrv = entry_server t odir oname in
    let unlink_victim () =
      match replaced with
      | Some victim when victim <> target ->
          ignore
            (rpc_deferred t victim.server ~what:"rename-victim" ~ino:victim
               (Wire.Unlink_ino { ino = victim }))
      | _ -> ()
    in
    match
      rpc_result t osrv
        (Wire.Rm_map
           {
             dir = odir.d_ino;
             name = oname;
             only_if = Some target;
             client = t.cid;
             home = osrv;
           })
    with
    | Ok _ ->
        Dircache.remove t.dircache ~dir:odir.d_ino ~name:oname;
        unlink_victim ()
    | Error Errno.ENOENT ->
        (* lost the race for the old name: undo our half *)
        Dircache.remove t.dircache ~dir:ndir.d_ino ~name:nname;
        ignore
          (rpc_result t nsrv
             (Wire.Rm_map
                {
                  dir = ndir.d_ino;
                  name = nname;
                  only_if = Some target;
                  client = t.cid;
                  home = nsrv;
                }));
        unlink_victim ();
        Errno.raise_errno Errno.ENOENT oname
    | Error err -> Errno.raise_errno err oname
  end

let stat t ~cwd path =
  traced t "stat" @@ fun () ->
  syscall t "stat";
  let comps = Path.normalize ~cwd path in
  match comps with
  | [] -> (
      match rpc t root_ino.server (Wire.Get_attr { ino = root_ino }) with
      | Wire.P_attr a -> a
      | _ -> assert false)
  | _ ->
      let parent_comps, name = Path.parent_and_name comps in
      let dir = resolve_dir t parent_comps in
      let e = lookup_entry t dir name in
      (match rpc t e.Wire.t_ino.server (Wire.Get_attr { ino = e.Wire.t_ino }) with
      | Wire.P_attr a -> a
      | _ -> assert false)

(* ---------- descriptor transfer ----------------------------------------- *)

let fork_fds t fdt =
  traced t "fork" @@ fun () ->
  (* The child must not observe server state that a deferred request is
     still about to change; settle the window before sharing. *)
  drain_window t;
  let child = Fdtable.create () in
  let mapping = ref [] in
  let share (entry : Fdtable.entry) : Fdtable.entry =
    match List.assq_opt entry !mapping with
    | Some e -> e
    | None ->
        let child_entry =
          match entry.Fdtable.desc with
          | Fdtable.File fs ->
              let offset =
                match fs.f_pos with
                | Fdtable.Local o -> Some o
                | Fdtable.Shared -> None
              in
              (* Synchronous share RPC (§3.4): bump the server refcount
                 and migrate the offset; descriptor I/O now routes through
                 the server in both processes. *)
              ignore
                (rpc t fs.f_ino.server
                   (Wire.Inc_fd_ref { token = fs.f_token; offset }));
              if fs.f_wrote && direct_mode t then begin
                (* Make our writes visible before the other process reads
                   through the server. *)
                writeback_dirty ~what:"fd-share" t fs;
                ignore
                  (rpc t fs.f_ino.server
                     (Wire.Update_size { token = fs.f_token; size = fs.f_size }))
              end;
              fs.f_pos <- Fdtable.Shared;
              {
                Fdtable.desc =
                  Fdtable.File
                    {
                      fs with
                      f_pos = Fdtable.Shared;
                      f_dirty = Hashtbl.create 8;
                    };
                local_refs = 0;
              }
          | Fdtable.Pipe p ->
              ignore
                (rpc t p.p_ino.server
                   (Wire.Inc_fd_ref { token = p.p_token; offset = None }));
              { Fdtable.desc = Fdtable.Pipe p; local_refs = 0 }
          | Fdtable.Console c ->
              { Fdtable.desc = Fdtable.Console c; local_refs = 0 }
        in
        mapping := (entry, child_entry) :: !mapping;
        child_entry
  in
  List.iter
    (fun (fd, entry) ->
      let child_entry = share entry in
      child_entry.Fdtable.local_refs <- child_entry.Fdtable.local_refs + 1;
      Fdtable.alloc_at child fd child_entry)
    (Fdtable.bindings fdt);
  child

let export_fds fdt =
  List.map
    (fun (fd, (entry : Fdtable.entry)) ->
      let x =
        match entry.Fdtable.desc with
        | Fdtable.File fs ->
            Wire.Xfile
              {
                ino = fs.f_ino;
                token = fs.f_token;
                flags = fs.f_flags;
                pos =
                  (match fs.f_pos with
                  | Fdtable.Local o -> Wire.Xlocal o
                  | Fdtable.Shared -> Wire.Xshared);
              }
        | Fdtable.Pipe p ->
            Wire.Xpipe
              { pipe_ino = p.p_ino; token = p.p_token; write_end = p.p_write }
        | Fdtable.Console c -> Wire.Xconsole c
      in
      (fd, x))
    (Fdtable.bindings fdt)

let import_fds t xfers =
  let fdt = Fdtable.create () in
  let by_token : (int * Fdtable.entry) list ref = ref [] in
  let entry_of (x : Wire.xfer_fd) =
    let keyed token mk =
      match List.assoc_opt token !by_token with
      | Some e -> e
      | None ->
          let e = mk () in
          by_token := (token, e) :: !by_token;
          e
    in
    match x with
    | Wire.Xfile { ino; token; flags; pos } ->
        keyed token (fun () ->
            let blocks, size =
              if direct_mode t then begin
                match rpc t ino.server (Wire.Get_blocks { ino }) with
                | Wire.P_blocks { blocks; bsize } ->
                    invalidate_blocks t blocks;
                    (blocks, bsize)
                | _ -> assert false
              end
              else ([||], 0)
            in
            {
              Fdtable.desc =
                Fdtable.File
                  {
                    f_ino = ino;
                    f_token = token;
                    f_flags = flags;
                    f_pos =
                      (match pos with
                      | Wire.Xlocal o -> Fdtable.Local o
                      | Wire.Xshared -> Fdtable.Shared);
                    f_blocks = blocks;
                    f_size = size;
                    f_dirty = Hashtbl.create 8;
                    f_wrote = false;
                    f_lease = max 0 (Array.length blocks - blocks_needed size);
                  };
              local_refs = 0;
            })
    | Wire.Xpipe { pipe_ino; token; write_end } ->
        keyed token (fun () ->
            {
              Fdtable.desc =
                Fdtable.Pipe
                  { p_ino = pipe_ino; p_token = token; p_write = write_end };
              local_refs = 0;
            })
    | Wire.Xconsole c -> { Fdtable.desc = Fdtable.Console c; local_refs = 0 }
  in
  List.iter
    (fun (fd, x) ->
      let e = entry_of x in
      e.Fdtable.local_refs <- e.Fdtable.local_refs + 1;
      Fdtable.alloc_at fdt fd e)
    xfers;
  fdt
