(** The Hare client library (one instance per core, Figure 2).

    Implements the file-system half of the POSIX API: path resolution
    through the directory cache, direct reads/writes of the shared buffer
    cache with close-to-open consistency, hybrid (local/shared) file
    descriptor state, the client side of the three-phase rmdir protocol,
    parallel directory broadcast, message coalescing and creation
    affinity. Process-level calls (fork/exec/wait) live in the [Hare]
    facade; they use {!fork_fds}/{!export_fds}/{!import_fds} from here.

    All calls must run inside a simulation fiber pinned to this client's
    core, and raise {!Hare_proto.Errno.Error} on failure. *)

open Hare_proto

type t

val create :
  engine:Hare_sim.Engine.t ->
  config:Hare_config.Config.t ->
  cid:int ->
  core:Hare_sim.Core_res.t ->
  pcache:Hare_mem.Pcache.t ->
  servers:(Wire.fs_req, Wire.fs_resp) Hare_msg.Rpc.t array ->
  server_sockets:int array ->
  local_server:int ->
  root_dist:bool ->
  inval_port:Wire.inval Hare_msg.Mailbox.t ->
  ?place:Hare_place.Place.t ->
  unit ->
  t
(** [inval_port] must be the mailbox registered with every client id at
    every file server; the directory cache drains it before each lookup.
    [place] is the machine's consistent-hash ring: [servers] is then
    indexed by physical server id while all placement hashing stays in
    logical home ids, each send resolving home [->] physical through the
    ring's current route (so a request follows a migrated shard). *)

val cid : t -> int

val core : t -> Hare_sim.Core_res.t

val pcache : t -> Hare_mem.Pcache.t
(** This client's private cache, for stats cross-checks (tests). *)

val dircache : t -> Dircache.t

val syscalls : t -> Hare_stats.Opcount.t
(** POSIX-call mix issued through this client (Figure 5). *)

val rpc_count : t -> int

val moved_retries : t -> int
(** Requests re-sent after an [EMOVED] bounce (shard migration races). *)

val robust : t -> Hare_stats.Robust.t
(** Timeout/retry/recovery counters (all zero without a fault plan). *)

val open_breakers : t -> int
(** Circuit breakers of this client currently sitting in the open
    state — an O(1) read maintained at every breaker transition, for
    the metrics sampler (PR 9). Always 0 when breakers are off. *)

val trip_breaker : t -> int -> unit
(** [trip_breaker t sid] forces this client's breaker for physical
    server [sid] open right now (cooldown from the current instant), as
    if its give-up threshold had just been crossed — counted in
    [open_breakers] and the robust counters like a real open. A test
    hook: lets a test race an in-flight EMOVED chase against a
    breaker-open destination without scripting real timeouts. No-op
    when breakers are disabled or the breaker is already open. *)

val mutate_skip_open_inval : bool ref
(** Sanitizer self-test hook: when set, direct-mode open skips the
    close-to-open invalidation, so the sanitizer's open-inval lint (and,
    on a cross-core reread, stale-read) must fire. Never set outside
    tests. *)

val mutate_skip_writeback : bool ref
(** Sanitizer self-test hook: when set, close/fsync/truncate skip the
    dirty write-back (the dirty set is still forgotten, as a real bug
    would), so the sanitizer's close-writeback lint must fire. Never set
    outside tests. *)

val perf : t -> Hare_stats.Perf.t
(** Pipelining-window and extent-lease counters (all zero when
    [rpc_window] and [alloc_extent] are 1). *)

val drain_window : t -> unit
(** Wait for every deferred (pipelined) request to complete. Called
    internally at fsync/fork/exit boundaries; exposed for tests and for
    quiescing a client before inspecting server state. *)

(** {1 File calls} *)

val openf : t -> Fdtable.t -> cwd:string -> string -> Types.open_flags -> int

val close : t -> Fdtable.t -> int -> unit

val close_all : t -> Fdtable.t -> unit

val read : t -> Fdtable.t -> int -> len:int -> string
(** Returns [""] at EOF; short data at end-of-file or for pipes. *)

val write : t -> Fdtable.t -> int -> string -> int

val lseek : t -> Fdtable.t -> int -> pos:int -> Types.whence -> int

val dup : t -> Fdtable.t -> int -> int

val dup2 : t -> Fdtable.t -> src:int -> dst:int -> int

val pipe : t -> Fdtable.t -> int * int
(** Returns (read fd, write fd). *)

val fsync : t -> Fdtable.t -> int -> unit

val ftruncate : t -> Fdtable.t -> int -> size:int -> unit

val fstat : t -> Fdtable.t -> int -> Types.attr

(** {1 Name-space calls} *)

val unlink : t -> cwd:string -> string -> unit

val mkdir : t -> cwd:string -> ?dist:bool -> string -> unit
(** [dist] (default false) requests a distributed directory — the
    paper's per-directory sharding flag (§3.3); honoured only when the
    configuration enables directory distribution. *)

val rmdir : t -> cwd:string -> string -> unit

val rename : t -> cwd:string -> string -> string -> unit

val readdir : t -> cwd:string -> string -> Wire.entry list

val stat : t -> cwd:string -> string -> Types.attr

(** {1 Descriptor transfer (fork / exec)} *)

val fork_fds : t -> Fdtable.t -> Fdtable.t
(** Clone a table for a forked child: every file/pipe descriptor becomes
    shared — a synchronous refcount RPC per open description, with local
    offsets migrating to the servers (§3.4). *)

val export_fds : Fdtable.t -> (int * Wire.xfer_fd) list
(** Snapshot for an exec RPC; ownership moves with the snapshot (no
    refcount change — the proxy left behind stops using the fds). *)

val import_fds : t -> (int * Wire.xfer_fd) list -> Fdtable.t
(** Rebuild a table from an exec snapshot on the destination core. *)
