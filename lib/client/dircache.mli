(** Client-side directory lookup cache (§3.6.1).

    One per client library (i.e. per core). Before every consultation the
    cache drains its invalidation mailbox: thanks to atomic message
    delivery, any invalidation a server sent before this lookup began is
    already queued, so draining first guarantees the cache never returns
    an entry the server invalidated before the lookup started. *)

type t

val mutate_drop_inval : bool ref
(** Sanitizer self-test hook: when set, {!drain} drops [Inval_entry]
    messages without applying them, so the sanitizer's dircache-stale
    rule must fire on the next hit of an invalidated entry. Never set
    outside tests. *)

val create :
  enabled:bool ->
  ?capacity:int ->
  port:Hare_proto.Wire.inval Hare_msg.Mailbox.t ->
  unit ->
  t
(** [capacity] (default 0 = unbounded) bounds the number of cached
    entries; when full, the least-recently-used entry is evicted. *)

val enabled : t -> bool

val port : t -> Hare_proto.Wire.inval Hare_msg.Mailbox.t

(** [drain t] processes all pending invalidations. Called internally by
    {!find}; exposed for the syscall paths that mutate without looking
    up. *)
val drain : t -> unit

(** [find t ~dir ~name] drains invalidations, then consults the cache.
    Always [None] when the cache is disabled. *)
val find :
  t ->
  dir:Hare_proto.Types.ino ->
  name:string ->
  Hare_proto.Wire.entry_info option

val add :
  t -> dir:Hare_proto.Types.ino -> name:string -> Hare_proto.Wire.entry_info -> unit

val remove : t -> dir:Hare_proto.Types.ino -> name:string -> unit

val size : t -> int

val hits : t -> int

val misses : t -> int

val invalidations : t -> int

val flushes : t -> int
(** Number of full flushes triggered by [Inval_all] (server restarts). *)

val evictions : t -> int
(** Entries dropped by the capacity bound (0 when unbounded). *)
