open Hare_proto

type file_state = {
  f_ino : Types.ino;
  mutable f_token : Types.fd_token;
  f_flags : Types.open_flags;
  mutable f_pos : pos;
  mutable f_blocks : int array;
  mutable f_size : int;
  f_dirty : (int, unit) Hashtbl.t;
  mutable f_wrote : bool;
  mutable f_lease : int;
}

and pos = Local of int | Shared

type pipe_state = {
  p_ino : Types.ino;
  p_token : Types.fd_token;
  p_write : bool;
}

type desc =
  | File of file_state
  | Pipe of pipe_state
  | Console of Wire.console_ref

type entry = { mutable desc : desc; mutable local_refs : int }

type t = { slots : (int, entry) Hashtbl.t }

let max_fds = 1024

let create () = { slots = Hashtbl.create 16 }

let alloc t entry =
  let rec scan fd =
    if fd >= max_fds then Errno.raise_errno Errno.EMFILE "fd table full"
    else if Hashtbl.mem t.slots fd then scan (fd + 1)
    else begin
      Hashtbl.replace t.slots fd entry;
      fd
    end
  in
  scan 0

let alloc_at t fd entry =
  if fd < 0 || fd >= max_fds then Errno.raise_errno Errno.EBADF "fd out of range";
  Hashtbl.replace t.slots fd entry

let find t fd = Hashtbl.find_opt t.slots fd

let find_exn t fd =
  match find t fd with
  | Some e -> e
  | None -> Errno.raise_errno Errno.EBADF (string_of_int fd)

let remove t fd = Hashtbl.remove t.slots fd

let fds t =
  Hashtbl.fold (fun fd _ acc -> fd :: acc) t.slots [] |> List.sort compare

let bindings t =
  Hashtbl.fold (fun fd e acc -> (fd, e) :: acc) t.slots []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let distinct_entries t =
  let seen = ref [] in
  Hashtbl.iter
    (fun _ e -> if not (List.memq e !seen) then seen := e :: !seen)
    t.slots;
  !seen
