open Hare_proto

type key = Types.ino * string

type t = {
  enabled : bool;
  entries : (key, Wire.entry_info) Hashtbl.t;
  port : Wire.inval Hare_msg.Mailbox.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
}

let create ~enabled ~port () =
  {
    enabled;
    entries = Hashtbl.create 512;
    port;
    hits = 0;
    misses = 0;
    invalidations = 0;
    flushes = 0;
  }

let enabled t = t.enabled

let port t = t.port

let rec drain t =
  match Hare_msg.Mailbox.poll t.port with
  | None -> ()
  | Some (Wire.Inval_entry { i_dir; i_name }) ->
      Hashtbl.remove t.entries (i_dir, i_name);
      t.invalidations <- t.invalidations + 1;
      drain t
  | Some Wire.Inval_all ->
      (* A server restarted; conservatively flush everything. *)
      Hashtbl.reset t.entries;
      t.flushes <- t.flushes + 1;
      drain t

let find t ~dir ~name =
  drain t;
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.entries (dir, name) with
    | Some _ as hit ->
        t.hits <- t.hits + 1;
        hit
    | None ->
        t.misses <- t.misses + 1;
        None

let add t ~dir ~name info =
  if t.enabled then Hashtbl.replace t.entries (dir, name) info

let remove t ~dir ~name = Hashtbl.remove t.entries (dir, name)

let size t = Hashtbl.length t.entries

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let flushes t = t.flushes
