open Hare_proto
module Check = Hare_check.Check

type key = Types.ino * string

(* Seeded-mutation hook for the sanitizer self-tests: drop incoming
   invalidations on the floor so the dircache-stale rule must fire.
   Never set outside tests. *)
let mutate_drop_inval = ref false

(* The LRU order is kept lazily: every hit or insert pushes a freshly
   stamped (key, stamp) pair onto [order], and eviction pops pairs until
   one's stamp matches the entry's current stamp — stale pairs (the entry
   was touched again later, or removed) are discarded for free. This
   keeps find/add O(1); the queue holds at most one pair per touch, and
   eviction amortizes the cleanup. *)
type slot = { info : Wire.entry_info; mutable stamp : int }

type t = {
  enabled : bool;
  capacity : int;  (* 0 = unbounded *)
  entries : (key, slot) Hashtbl.t;
  order : (key * int) Queue.t;
  port : Wire.inval Hare_msg.Mailbox.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable flushes : int;
  mutable evictions : int;
}

let create ~enabled ?(capacity = 0) ~port () =
  {
    enabled;
    capacity = max 0 capacity;
    entries = Hashtbl.create 512;
    order = Queue.create ();
    port;
    tick = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    flushes = 0;
    evictions = 0;
  }

let enabled t = t.enabled

let port t = t.port

let owner_core t = Hare_msg.Mailbox.owner t.port

let checker t =
  Hare_sim.Engine.checker (Hare_sim.Core_res.engine (owner_core t))

let client_id t = Hare_sim.Core_res.id (owner_core t)

let touch t key (slot : slot) =
  t.tick <- t.tick + 1;
  slot.stamp <- t.tick;
  if t.capacity > 0 then Queue.push (key, t.tick) t.order

let rec drain t =
  match Hare_msg.Mailbox.poll t.port with
  | None -> ()
  | Some (Wire.Inval_entry { i_dir; i_name }) ->
      if not !mutate_drop_inval then begin
        Hashtbl.remove t.entries (i_dir, i_name);
        match checker t with
        | Some chk ->
            Check.dircache_applied chk ~client:(client_id t)
              ~server:i_dir.Types.server ~ino:i_dir.Types.ino ~name:i_name
        | None -> ()
      end;
      t.invalidations <- t.invalidations + 1;
      drain t
  | Some Wire.Inval_all ->
      (* A server restarted; conservatively flush everything. *)
      Hashtbl.reset t.entries;
      Queue.clear t.order;
      t.flushes <- t.flushes + 1;
      (match checker t with
      | Some chk -> Check.dircache_flushed chk ~client:(client_id t)
      | None -> ());
      drain t

let find t ~dir ~name =
  drain t;
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.entries (dir, name) with
    | Some slot ->
        t.hits <- t.hits + 1;
        (match checker t with
        | Some chk ->
            Check.dircache_hit chk ~client:(client_id t)
              ~server:dir.Types.server ~ino:dir.Types.ino ~name
        | None -> ());
        touch t (dir, name) slot;
        Some slot.info
    | None ->
        t.misses <- t.misses + 1;
        None

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some (key, stamp) -> (
      match Hashtbl.find_opt t.entries key with
      | Some slot when slot.stamp = stamp ->
          Hashtbl.remove t.entries key;
          t.evictions <- t.evictions + 1
      | _ ->
          (* Stale pair: the entry was re-touched or already removed. *)
          evict_one t)

let add t ~dir ~name info =
  if t.enabled then begin
    let key = (dir, name) in
    let fresh = not (Hashtbl.mem t.entries key) in
    let slot = { info; stamp = 0 } in
    Hashtbl.replace t.entries key slot;
    touch t key slot;
    if t.capacity > 0 && fresh then
      while Hashtbl.length t.entries > t.capacity do
        evict_one t
      done
  end

let remove t ~dir ~name = Hashtbl.remove t.entries (dir, name)

let size t = Hashtbl.length t.entries

let hits t = t.hits

let misses t = t.misses

let invalidations t = t.invalidations

let flushes t = t.flushes

let evictions t = t.evictions
