(** Per-process file-descriptor table.

    Descriptor numbers map to shared {!entry} records; [dup] aliases an
    entry within the process (offset sharing within a process needs no
    server involvement), while [fork] shares entries {e across} processes
    by migrating the offset to the file server (§3.4) — that logic lives
    in {!Client.fork_fds}. *)

open Hare_proto

(** Client-side view of one open description. *)
type file_state = {
  f_ino : Types.ino;
  mutable f_token : Types.fd_token;
      (** refreshed in place after a crashed server forgets the token. *)
  f_flags : Types.open_flags;
  mutable f_pos : pos;
  mutable f_blocks : int array;  (** cached block list (direct mode). *)
  mutable f_size : int;  (** local size view (close-to-open). *)
  f_dirty : (int, unit) Hashtbl.t;  (** blocks to write back on close. *)
  mutable f_wrote : bool;
  mutable f_lease : int;
      (** trailing blocks of [f_blocks] allocated ahead of need (the
          extent lease); 0 unless [alloc_extent > 1]. *)
}

and pos =
  | Local of int  (** unshared: offset lives here, I/O can be direct. *)
  | Shared  (** shared with another process: offset lives at the server. *)

type pipe_state = {
  p_ino : Types.ino;
  p_token : Types.fd_token;
  p_write : bool;
}

type desc =
  | File of file_state
  | Pipe of pipe_state
  | Console of Wire.console_ref

type entry = { mutable desc : desc; mutable local_refs : int }

type t

val create : unit -> t

val max_fds : int

(** [alloc t entry] binds the lowest free descriptor number.
    Raises [Errno.Error EMFILE] when the table is full. *)
val alloc : t -> entry -> int

(** [alloc_at t fd entry] binds exactly [fd] (dup2 target; caller closes
    any previous binding first). *)
val alloc_at : t -> int -> entry -> unit

val find : t -> int -> entry option

val find_exn : t -> int -> entry
(** Raises [Errno.Error EBADF]. *)

val remove : t -> int -> unit

val fds : t -> int list

(** [bindings t] returns (fd, entry) pairs, ascending fd. *)
val bindings : t -> (int * entry) list

(** [distinct_entries t] returns each entry record once (dup'd fds share
    records). *)
val distinct_entries : t -> entry list
