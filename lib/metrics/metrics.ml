(* Continuous time-series telemetry (PR 9).

   A registry of named gauges — closures reading live machine state —
   sampled on a fixed simulated-cycle grid by the engine's sampling hook
   (Engine.set_sampler). Everything here is pure host-side bookkeeping:
   a sample reads each gauge once and stores the values in fixed-
   capacity ring buffers; nothing charges cycles, schedules events, or
   draws from an RNG, so a sampled run is bit-identical to an unsampled
   one (asserted in test/test_metrics.ml).

   All gauges share one stamp ring: every sample reads every gauge, so
   per-gauge value rings rotate in lockstep with the stamps. When the
   ring fills, the oldest sample is overwritten and [dropped] counts it
   — the most recent window always survives, matching the trace ring's
   drop-oldest policy. *)

module Trace = Hare_trace.Trace

type gauge = {
  g_name : string;
  g_read : unit -> int;
  mutable g_vals : int array;  (* ring of sampled values, [cap] slots *)
  mutable g_track : int;  (* Perfetto counter track; -1 = no sink *)
}

type t = {
  cap : int;
  interval : int;  (* sampling grid in cycles, for reporting *)
  mutable gauges : gauge array;
  mutable ngauges : int;
  times : int array;  (* shared ring of sample stamps *)
  mutable head : int;  (* index of the oldest sample when full *)
  mutable len : int;
  mutable dropped : int;  (* samples overwritten by ring rotation *)
  mutable samples : int;  (* samples ever taken *)
  mutable sink : Trace.t option;
}

let create ?(cap = 1024) ~interval () =
  if cap <= 0 then invalid_arg "Metrics.create: cap must be positive";
  if interval <= 0 then invalid_arg "Metrics.create: interval must be positive";
  {
    cap;
    interval;
    gauges = [||];
    ngauges = 0;
    times = Array.make cap 0;
    head = 0;
    len = 0;
    dropped = 0;
    samples = 0;
    sink = None;
  }

let interval t = t.interval

let ngauges t = t.ngauges

let samples t = t.samples

let dropped t = t.dropped

let register t ~name read =
  if t.samples > 0 then
    invalid_arg "Metrics.register: gauges must be registered before sampling";
  let g = { g_name = name; g_read = read; g_vals = Array.make t.cap 0; g_track = -1 } in
  let n = Array.length t.gauges in
  if t.ngauges = n then begin
    let n' = if n = 0 then 16 else n * 2 in
    let gauges' = Array.make n' g in
    Array.blit t.gauges 0 gauges' 0 n;
    t.gauges <- gauges'
  end;
  t.gauges.(t.ngauges) <- g;
  t.ngauges <- t.ngauges + 1

(* Mirror every gauge as a Perfetto counter track in the span trace:
   samples then also land in the trace ring as "C" (counter) events, one
   track per gauge starting at [track_base] (above the per-core and DRAM
   tracks). *)
let attach_sink t tr ~track_base =
  t.sink <- Some tr;
  for i = 0 to t.ngauges - 1 do
    let g = t.gauges.(i) in
    g.g_track <- track_base + i;
    Trace.declare_track tr ~track:g.g_track ~name:("metric:" ^ g.g_name)
  done

let sample t ~now =
  let i =
    if t.len < t.cap then begin
      let i = t.head + t.len in
      let i = if i >= t.cap then i - t.cap else i in
      t.len <- t.len + 1;
      i
    end
    else begin
      let i = t.head in
      let h = t.head + 1 in
      t.head <- (if h = t.cap then 0 else h);
      t.dropped <- t.dropped + 1;
      i
    end
  in
  t.times.(i) <- Int64.to_int now;
  for gi = 0 to t.ngauges - 1 do
    let g = Array.unsafe_get t.gauges gi in
    let v = g.g_read () in
    Array.unsafe_set g.g_vals i v;
    match t.sink with
    | Some tr when g.g_track >= 0 ->
        Trace.counter tr ~name:g.g_name ~track:g.g_track ~ts:now ~value:v
    | _ -> ()
  done;
  t.samples <- t.samples + 1

(* Chronological (stamp, value) points currently held for gauge [g]. *)
let points t g =
  List.init t.len (fun k ->
      let i = t.head + k in
      let i = if i >= t.cap then i - t.cap else i in
      (t.times.(i), g.g_vals.(i)))

let series t =
  Array.to_list (Array.sub t.gauges 0 t.ngauges)
  |> List.map (fun g -> (g.g_name, points t g))

type summary = {
  s_name : string;
  s_n : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_last : int;
}

let summaries t =
  Array.to_list (Array.sub t.gauges 0 t.ngauges)
  |> List.map (fun g ->
         if t.len = 0 then
           { s_name = g.g_name; s_n = 0; s_min = 0; s_max = 0; s_mean = 0.0;
             s_last = 0 }
         else begin
           let mn = ref max_int and mx = ref min_int and sum = ref 0 in
           let last = ref 0 in
           for k = 0 to t.len - 1 do
             let i = t.head + k in
             let i = if i >= t.cap then i - t.cap else i in
             let v = g.g_vals.(i) in
             if v < !mn then mn := v;
             if v > !mx then mx := v;
             sum := !sum + v;
             last := v
           done;
           {
             s_name = g.g_name;
             s_n = t.len;
             s_min = !mn;
             s_max = !mx;
             s_mean = float_of_int !sum /. float_of_int t.len;
             s_last = !last;
           }
         end)
