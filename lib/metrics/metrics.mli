(** Continuous time-series telemetry (PR 9).

    A registry of named {e gauges} — closures reading live machine state
    (mailbox depths, flow credits, breaker states, shed/retry counters,
    cache hit rates, fiber counts, per-server load, ring imbalance) —
    sampled on a fixed simulated-cycle grid into fixed-capacity ring
    buffers. The engine drives sampling through its event-loop hook
    ([Engine.set_sampler]); this module never sees the engine.

    The zero-perturbation invariant of PR 4/5 holds here too: sampling
    is pure host-side bookkeeping. A gauge read must not charge cycles,
    schedule events, or draw from an RNG, so runs with and without
    metrics are bit-identical on the simulated clock (asserted in
    [test_metrics]). *)

type t

val create : ?cap:int -> interval:int -> unit -> t
(** [create ~interval ()] makes a registry sampled every [interval]
    simulated cycles, each gauge ring holding the [cap] (default 1024)
    most recent samples — older samples are overwritten ({!dropped}).
    Both must be positive. *)

val register : t -> name:string -> (unit -> int) -> unit
(** Add a gauge. All registration must happen before the first
    {!sample} (boot time), so every gauge has a full value ring;
    registering later raises [Invalid_argument]. *)

val attach_sink : t -> Hare_trace.Trace.t -> track_base:int -> unit
(** Mirror every registered gauge as a Perfetto counter track named
    ["metric:<gauge>"] in the given span trace: each subsequent sample
    also appends one counter event per gauge. Tracks are numbered from
    [track_base] (callers pass the first id above the per-core and DRAM
    tracks). *)

val sample : t -> now:int64 -> unit
(** Take one sample at stamp [now]: read every gauge into the rings
    (and the trace sink, when attached). Called by the engine's
    sampling hook; tests call it directly. *)

val interval : t -> int

val ngauges : t -> int

val samples : t -> int
(** Samples taken since creation (including any overwritten). *)

val dropped : t -> int
(** Samples overwritten by ring rotation (oldest-first). *)

val series : t -> (string * (int * int) list) list
(** Per gauge: the retained (stamp, value) points, oldest first. Stamps
    are simulated cycles on the sampling grid. *)

type summary = {
  s_name : string;
  s_n : int;  (** retained samples *)
  s_min : int;
  s_max : int;
  s_mean : float;
  s_last : int;  (** most recent sample *)
}

val summaries : t -> summary list
(** One summary per gauge, in registration order. *)
