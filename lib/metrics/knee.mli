(** Automatic knee detection over a latency time series (PR 9).

    Buckets completed root spans into fixed windows of simulated time,
    computes each window's nearest-rank p99, and reports the first
    window whose p99 exceeds [factor] times the flat-regime baseline —
    the lowest judged p99 seen so far — the knee where an open-loop
    workload leaves the flat part of the latency/throughput curve.
    Judging against the floor rather than the previous window catches
    gradual climbs whose per-window slope stays under [factor]. *)

type t = {
  k_at : int;  (** start of the knee window (cycles) *)
  k_window : int;  (** window width used (cycles) *)
  k_before : int64;  (** flat-regime floor p99 (lowest pre-knee window) *)
  k_after : int64;  (** p99 of the knee window *)
  k_windows : int;  (** windows judged (enough samples), up to the knee *)
}

val detect : ?factor:float -> ?min_samples:int -> window:int -> (int * int) list -> t option
(** [detect ~window spans] over [(t0, dur)] cycle pairs (the trace's
    root-span log). Windows with fewer than [min_samples] (default 8)
    completions are skipped — they neither trigger nor reset the
    reference p99. [factor] (default 1.5) is the slope threshold; it
    must exceed 1, and [window] must be positive. [None] when the
    series never leaves the flat regime. *)
