(* Knee detection over a latency time series (PR 9).

   The overload workload drives an open-loop arrival process; past
   saturation the queues (and with them p99) stop being flat and take
   off. The knee is the first sampling window whose p99 exceeds a
   threshold relative to the flat-regime baseline — the lowest judged
   p99 seen so far, not the immediately previous window, so a gradual
   climb (each window below [factor] times its neighbour but far above
   the flat floor) is still caught. This is the point the ROADMAP's
   "knee of the latency/throughput curve" ambition asks for, computed
   per machine size from the same root-span log the percentile report
   uses. Pure arithmetic over (t0, dur) pairs. *)

type t = {
  k_at : int;  (* start of the knee window, cycles *)
  k_window : int;  (* window width used, cycles *)
  k_before : int64;  (* flat-regime floor p99 (lowest pre-knee window) *)
  k_after : int64;  (* p99 of the knee window *)
  k_windows : int;  (* windows with enough samples to judge *)
}

let detect ?(factor = 1.5) ?(min_samples = 8) ~window spans =
  if window <= 0 then invalid_arg "Knee.detect: window must be positive";
  if not (factor > 1.0) then invalid_arg "Knee.detect: factor must exceed 1";
  match spans with
  | [] -> None
  | _ ->
      let hi =
        List.fold_left (fun acc (t0, _) -> max acc t0) 0 spans
      in
      let nwin = (hi / window) + 1 in
      let buckets = Array.make nwin [] in
      List.iter
        (fun (t0, dur) ->
          let w = t0 / window in
          if w >= 0 && w < nwin then
            buckets.(w) <- Int64.of_int dur :: buckets.(w))
        spans;
      (* Walk windows in time order; sparse windows (below [min_samples])
         yield no verdict and do not update the baseline. The baseline
         is the lowest judged p99 so far — the flat regime's floor. *)
      let floor = ref None in
      let judged = ref 0 in
      let knee = ref None in
      Array.iteri
        (fun w ds ->
          if !knee = None && List.length ds >= min_samples then begin
            incr judged;
            let d = Hare_stats.Latency.of_durations ds in
            (match !floor with
            | Some (p : int64) when p > 0L ->
                if
                  Int64.to_float d.Hare_stats.Latency.p99
                  > factor *. Int64.to_float p
                then
                  knee :=
                    Some
                      {
                        k_at = w * window;
                        k_window = window;
                        k_before = p;
                        k_after = d.Hare_stats.Latency.p99;
                        k_windows = !judged;
                      }
            | _ -> ());
            if !knee = None then
              match !floor with
              | Some p when p <= d.Hare_stats.Latency.p99 -> ()
              | _ -> floor := Some d.Hare_stats.Latency.p99
          end)
        buckets;
      !knee
