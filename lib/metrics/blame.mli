(** Tail-latency blame reports (PR 9).

    For each latency class, examine the tail-retained span trees at or
    above the class p99 and report what made them slow: dominant cycle
    bucket, dominant server (by blocked-wait cycles, falling back to
    admission counts), and queue depth at admission. *)

type t = {
  b_class : string;
  b_n : int;  (** retained tail ops examined *)
  b_p99 : int64;  (** class p99 over the full root-span log *)
  b_bucket : string;  (** dominant bucket across the examined ops *)
  b_bucket_share : float;  (** its share of their total cycles, 0..1 *)
  b_srv : int;  (** dominant physical server; -1 = no RPC sent *)
  b_srv_share : float;  (** its share of attributed server cycles *)
  b_qdepth_mean : float;  (** mean queue depth at admission; -1 = unknown *)
  b_qdepth_max : int;  (** worst queue depth at admission; -1 = unknown *)
  b_worst_op : string;  (** slowest examined op *)
  b_worst_dur : int;  (** its duration, cycles *)
}

val critical_path : Hare_trace.Trace.retained -> (string * int) list
(** One retained op's bucket decomposition, largest first, zero buckets
    dropped. The buckets sum to the op's elapsed cycles exactly, so
    this is the critical path through the request. *)

val of_trace : Hare_trace.Trace.t -> t list
(** One report per latency class that has both completed root spans and
    retained trees, in {!Hare_stats.Latency.class_names} order. Empty
    when retention was off. *)
