(* Tail-latency blame reports (PR 9).

   Consumes the trace's tail-retained span trees (Trace.retained): for
   each latency class, look at the retained operations at or above the
   class p99 and say what made them slow — the dominant cycle bucket,
   the dominant server (by blocked-wait cycles granted, falling back to
   admission counts), and the queue depth their first RPC met at
   admission. Pure arithmetic; surfaced by `hare_cli metrics --blame`
   and bench --json. *)

module Trace = Hare_trace.Trace
module Latency = Hare_stats.Latency

type t = {
  b_class : string;
  b_n : int;  (* retained tail ops examined *)
  b_p99 : int64;  (* class p99 over the full root-span log *)
  b_bucket : string;  (* dominant bucket across the examined ops *)
  b_bucket_share : float;  (* its share of their total cycles *)
  b_srv : int;  (* dominant server, -1 = no RPC ever sent *)
  b_srv_share : float;  (* its share of attributed server cycles *)
  b_qdepth_mean : float;  (* mean queue depth at admission *)
  b_qdepth_max : int;
  b_worst_op : string;
  b_worst_dur : int;
}

(* The critical path through one retained span tree: its bucket
   decomposition, largest first, zero buckets dropped. The bucket vector
   sums to the op's elapsed cycles exactly (Trace charges the remainder
   to Queue at close), so this ordering is the exact answer to "where
   did this slow request's time go". *)
let critical_path (r : Trace.retained) =
  List.mapi (fun i name -> (name, r.Trace.rt_buckets.(i))) Trace.bucket_names
  |> List.filter (fun (_, cy) -> cy > 0)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let of_trace tr =
  let retained = Trace.retained tr in
  let spans = Trace.root_spans tr in
  List.filter_map
    (fun cls ->
      let durs =
        List.filter_map
          (fun (op, _, dur) ->
            if Latency.class_of_op op = Some cls then Some dur else None)
          spans
      in
      let dist = Latency.of_durations durs in
      let mine =
        List.filter (fun r -> r.Trace.rt_cls = cls) retained
      in
      if Latency.is_empty dist || mine = [] then None
      else begin
        let p99 = dist.Latency.p99 in
        (* The ops to blame: retained ops at/above the class p99. When
           retention is generous relative to the op count the whole
           store can sit below p99 — blame the slowest retained ops
           anyway rather than reporting nothing. *)
        let tail =
          match
            List.filter (fun r -> Int64.of_int r.Trace.rt_dur >= p99) mine
          with
          | [] -> mine
          | l -> l
        in
        let buckets = Array.make Trace.nbuckets 0 in
        let srv_cycles = Hashtbl.create 8 in
        let admissions = Hashtbl.create 8 in
        let qd_sum = ref 0 and qd_n = ref 0 and qd_max = ref 0 in
        List.iter
          (fun r ->
            Array.iteri
              (fun i cy -> buckets.(i) <- buckets.(i) + cy)
              r.Trace.rt_buckets;
            List.iter
              (fun (srv, cy) ->
                Hashtbl.replace srv_cycles srv
                  (cy
                  + Option.value ~default:0 (Hashtbl.find_opt srv_cycles srv)))
              r.Trace.rt_children;
            if r.Trace.rt_srv >= 0 then
              Hashtbl.replace admissions r.Trace.rt_srv
                (1
                + Option.value ~default:0
                    (Hashtbl.find_opt admissions r.Trace.rt_srv));
            if r.Trace.rt_qdepth >= 0 then begin
              qd_sum := !qd_sum + r.Trace.rt_qdepth;
              incr qd_n;
              if r.Trace.rt_qdepth > !qd_max then qd_max := r.Trace.rt_qdepth
            end)
          tail;
        let btotal = Array.fold_left ( + ) 0 buckets in
        let bi = ref 0 in
        Array.iteri (fun i cy -> if cy > buckets.(!bi) then bi := i) buckets;
        (* Dominant server: prefer exact blocked-wait attribution; fall
           back to admission counts when no grant was ever recorded
           (e.g. every reply landed while the client computed). *)
        let table =
          if Hashtbl.length srv_cycles > 0 then srv_cycles else admissions
        in
        let srv, srv_cy, srv_total =
          Hashtbl.fold
            (fun s cy (bs, bcy, tot) ->
              if cy > bcy || (cy = bcy && s < bs) then (s, cy, tot + cy)
              else (bs, bcy, tot + cy))
            table (-1, 0, 0)
        in
        let worst =
          List.fold_left
            (fun (wop, wdur) r ->
              if r.Trace.rt_dur > wdur then (r.Trace.rt_op, r.Trace.rt_dur)
              else (wop, wdur))
            ("", -1) tail
        in
        Some
          {
            b_class = cls;
            b_n = List.length tail;
            b_p99 = p99;
            b_bucket = List.nth Trace.bucket_names !bi;
            b_bucket_share =
              (if btotal > 0 then
                 float_of_int buckets.(!bi) /. float_of_int btotal
               else 0.0);
            b_srv = srv;
            b_srv_share =
              (if srv_total > 0 then
                 float_of_int srv_cy /. float_of_int srv_total
               else 0.0);
            b_qdepth_mean =
              (if !qd_n > 0 then float_of_int !qd_sum /. float_of_int !qd_n
               else -1.0);
            b_qdepth_max = (if !qd_n > 0 then !qd_max else -1);
            b_worst_op = fst worst;
            b_worst_dur = snd worst;
          }
      end)
    Latency.class_names
