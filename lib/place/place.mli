(** Consistent-hash placement of logical file-server homes onto physical
    servers, with live rebalancing.

    Every inode and directory-entry shard hashes (in [Hare_proto.Types])
    onto a *logical home* in [0, nhomes). Logical homes are stable for
    the lifetime of a machine — they are what `ino.server` stores — and
    this module maps them onto *physical* servers through a mutable
    routing table. With a membership-stable ring the route is the
    identity and every code path collapses to the static [Split]
    behaviour bit-for-bit.

    Rebalancing uses rendezvous (highest-random-weight) hashing: each
    physical server owns [vnodes] pseudo-random points per home, and a
    membership change moves exactly the homes whose top-weight point
    belongs to the joining server (or whose owner left) — the classic
    consistent-hashing minimal-disruption property. *)

type event =
  | Add of { at : int64 }  (** activate the next spare physical server *)
  | Remove of { sid : int; at : int64 }
      (** drain physical server [sid] and retire it from the ring *)

type t

val create : nhomes:int -> vnodes:int -> events:event list -> t
(** [nhomes] logical homes routed over [nhomes + adds] physical servers
    (spares boot idle and activate at their [Add] event). The initial
    route is the identity. *)

val nhomes : t -> int

val nphys : t -> int

val vnodes : t -> int

val events : t -> event list

val migratory : t -> bool
(** [true] iff the membership plan is non-empty — the gate for every
    migration-only code path (key namespacing, ownership checks). *)

val epoch : t -> int

val phys : t -> int -> int
(** [phys t home] is the physical server currently owning [home]. *)

val set_route : t -> home:int -> dst:int -> unit

val active : t -> int -> bool

val activate : t -> int -> unit

val deactivate : t -> int -> unit

val homes_of : t -> int -> int list
(** Logical homes currently routed to a physical server (ascending). *)

val weight : t -> home:int -> srv:int -> int
(** Rendezvous weight: max over the server's [vnodes] hash points. *)

val plan_add : t -> int -> int list
(** Homes that move to newly-activated server [q]: those whose ring
    argmax over [active ∪ {q}] is [q]. If the hash selects none (tiny
    rings), the single best-weighted home is forced over so an add is
    never a no-op. Call after [activate]. *)

val plan_remove : t -> int -> (int * int) list
(** [(home, dst)] moves draining server [p]: every home routed to [p]
    re-assigned to its argmax among the remaining active servers. Call
    after [deactivate]. *)

val commit : t -> unit
(** Bump the ring epoch (one per membership change applied). *)

(** {1 Counters (host-side, cost-free)} *)

val note_migration : t -> unit

val note_abort : t -> unit

val note_moved_reply : t -> unit

val migrations : t -> int
(** Homes successfully handed off. *)

val aborted : t -> int
(** Migrations abandoned (busy shard that never drained). *)

val moved_replies : t -> int
(** [EMOVED] rejections clients observed and retried. *)

(** {1 Plan parsing} *)

val parse_plan : string -> (event list, string) result
(** Grammar: items separated by [';'];
    [add@CYCLES] activates the next spare at time [CYCLES];
    [remove:SID@CYCLES] drains physical server [SID]. *)

val count_adds : string -> int
(** Adds in a textual plan ([0] if it does not parse). *)

val pp_event : Format.formatter -> event -> unit
