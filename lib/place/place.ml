(* Consistent-hash placement: logical homes -> physical servers.

   Logical home ids are stable (they are what [ino.server] stores); only
   the route table moves. Rendezvous hashing with [vnodes] points per
   server gives the minimal-disruption property: a membership change
   moves only the homes whose top point belongs to the joining server,
   or whose owner left. With an empty event plan the route is the
   identity forever and nothing here perturbs a run. *)

type event = Add of { at : int64 } | Remove of { sid : int; at : int64 }

type t = {
  nhomes : int;
  vnodes : int;
  nphys : int;
  route : int array; (* logical home -> physical server *)
  active : bool array; (* ring membership, per physical server *)
  events : event list;
  mutable epoch : int;
  mutable migrations : int;
  mutable aborted : int;
  mutable moved_replies : int;
}

let count_adds_ev events =
  List.fold_left (fun n -> function Add _ -> n + 1 | Remove _ -> n) 0 events

let create ~nhomes ~vnodes ~events =
  if nhomes <= 0 then invalid_arg "Place.create: nhomes must be positive";
  if vnodes <= 0 then invalid_arg "Place.create: vnodes must be positive";
  let nphys = nhomes + count_adds_ev events in
  {
    nhomes;
    vnodes;
    nphys;
    route = Array.init nhomes Fun.id;
    active = Array.init nphys (fun p -> p < nhomes);
    events;
    epoch = 0;
    migrations = 0;
    aborted = 0;
    moved_replies = 0;
  }

let nhomes t = t.nhomes
let nphys t = t.nphys
let vnodes t = t.vnodes
let events t = t.events
let migratory t = t.events <> []
let epoch t = t.epoch
let phys t home = t.route.(home)
let set_route t ~home ~dst = t.route.(home) <- dst
let active t p = t.active.(p)
let activate t p = t.active.(p) <- true
let deactivate t p = t.active.(p) <- false

let homes_of t p =
  let acc = ref [] in
  for h = t.nhomes - 1 downto 0 do
    if t.route.(h) = p then acc := h :: !acc
  done;
  !acc

(* SplitMix64-style finalizer over native ints: deterministic, seedless,
   well-mixed — the same (home, srv, vnode) triple always lands on the
   same ring point on every machine. *)
let mix h srv v =
  let x = ref ((h * 0x9E3779B1) lxor (srv * 0x85EBCA77) lxor (v * 0xC2B2AE3D)) in
  x := !x lxor (!x lsr 33);
  x := !x * 0xFF51AFD7;
  x := !x land max_int;
  x := !x lxor (!x lsr 29);
  x := !x * 0xC4CEB9FE;
  x := !x land max_int;
  x := !x lxor (!x lsr 32);
  !x land max_int

let weight t ~home ~srv =
  let best = ref 0 in
  for v = 0 to t.vnodes - 1 do
    let w = mix home srv v in
    if w > !best then best := w
  done;
  !best

(* Argmax over a candidate predicate; ties broken toward the lower
   server id (deterministic). *)
let argmax t home ok =
  let best_srv = ref (-1) and best_w = ref (-1) in
  for srv = 0 to t.nphys - 1 do
    if ok srv then begin
      let w = weight t ~home ~srv in
      if w > !best_w then begin
        best_w := w;
        best_srv := srv
      end
    end
  done;
  !best_srv

let plan_add t q =
  let moves = ref [] in
  for h = t.nhomes - 1 downto 0 do
    if t.route.(h) <> q && argmax t h (fun s -> t.active.(s)) = q then
      moves := h :: !moves
  done;
  if !moves = [] then begin
    (* Tiny rings can hash nothing onto the newcomer; force the single
       best-weighted home over so an add always takes load. *)
    let best_h = ref (-1) and best_w = ref (-1) in
    for h = 0 to t.nhomes - 1 do
      if t.route.(h) <> q then begin
        let w = weight t ~home:h ~srv:q in
        if w > !best_w then begin
          best_w := w;
          best_h := h
        end
      end
    done;
    if !best_h >= 0 then moves := [ !best_h ]
  end;
  !moves

let plan_remove t p =
  let moves = ref [] in
  for h = t.nhomes - 1 downto 0 do
    if t.route.(h) = p then begin
      let dst = argmax t h (fun s -> t.active.(s) && s <> p) in
      if dst >= 0 then moves := (h, dst) :: !moves
    end
  done;
  !moves

let commit t = t.epoch <- t.epoch + 1
let note_migration t = t.migrations <- t.migrations + 1
let note_abort t = t.aborted <- t.aborted + 1
let note_moved_reply t = t.moved_replies <- t.moved_replies + 1
let migrations t = t.migrations
let aborted t = t.aborted
let moved_replies t = t.moved_replies

(* Plan grammar: `add@CYCLES;remove:SID@CYCLES` — same shape as the
   fault plans in [Hare_fault.Plan]. *)

let ( let* ) r f = Result.bind r f
let err fmt = Format.kasprintf (fun s -> Error s) fmt

let parse_at what s =
  match Int64.of_string_opt (String.trim s) with
  | Some at when at > 0L -> Ok at
  | _ -> err "shard plan: bad %s time %S" what s

let parse_item item =
  match String.index_opt item '@' with
  | None -> err "shard plan: missing '@' in %S" item
  | Some i -> (
      let head = String.trim (String.sub item 0 i) in
      let tail = String.sub item (i + 1) (String.length item - i - 1) in
      match String.split_on_char ':' head with
      | [ "add" ] ->
          let* at = parse_at "add" tail in
          Ok (Add { at })
      | [ "remove"; sid ] -> (
          match int_of_string_opt (String.trim sid) with
          | Some sid when sid >= 0 ->
              let* at = parse_at "remove" tail in
              Ok (Remove { sid; at })
          | _ -> err "shard plan: bad server id in %S" item)
      | _ -> err "shard plan: unknown item %S (want add@T or remove:SID@T)" item)

let parse_plan s =
  let items =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* ev = parse_item item in
        go (ev :: acc) rest
  in
  go [] items

let count_adds s =
  match parse_plan s with Ok evs -> count_adds_ev evs | Error _ -> 0

let pp_event ppf = function
  | Add { at } -> Format.fprintf ppf "add@%Ld" at
  | Remove { sid; at } -> Format.fprintf ppf "remove:%d@%Ld" sid at
