module Api = Hare_api.Api
module Config = Hare_config.Config
open Hare_proto

(* Host-side simulator-engine counters, for benchmark reporting: how
   much event-loop work a run cost, independent of the simulated clock.
   All zero for worlds without a discrete-event engine (the Linux
   baseline). *)
type engine_stats = {
  es_events : int;  (** engine events executed *)
  es_peak_fibers : int;  (** peak live (registered) fibers *)
  es_spawned : int;  (** fibers spawned over the whole run *)
}

module type WORLD = sig
  type world

  type proc

  val name : string

  val boot : Hare_config.Config.t -> world

  val api : world -> proc Hare_api.Api.t

  val spawn_init : world -> name:string -> (proc -> int) -> proc

  val run : world -> unit

  val seconds : world -> float

  val syscalls : world -> Hare_stats.Opcount.t

  val exit_status : world -> proc -> int option

  val trace : world -> Hare_trace.Trace.t option
  (** The trace sink, when the world was booted with tracing enabled.
      The Linux baseline never traces. *)

  val metrics : world -> Hare_metrics.Metrics.t option
  (** The time-series gauge registry, when the world was booted with
      [metrics_interval > 0]. The Linux baseline never samples. *)

  val reset_perf : world -> unit
  (** Zero the world's pipelining/batching counters (no-op for worlds
      without them), so a timed region reports only its own activity. *)

  val robustness : world -> Hare_stats.Robust.t
  (** Aggregate fault/overload counters (always zero for the Linux
      baseline, which has neither). *)

  val engine_stats : world -> engine_stats
  (** Simulator event-loop counters for this run (zero for the Linux
      baseline). *)

  val engine : world -> Hare_sim.Engine.t option
  (** The discrete-event engine, for worlds that have one — the schedule
      explorer attaches here. [None] for the Linux baseline. *)

  val server_loads : world -> (int * int * int) list
  (** Per physical file server: [(sid, ops served, peak queue depth)] —
      the load-distribution report behind the sharding imbalance gate.
      Empty for worlds without file servers (the Linux baseline). *)
end

module Hare_w = struct
  module M = Hare.Machine
  module Posix = Hare.Posix
  module P = Hare_proc.Process

  type world = M.t

  type proc = P.t

  let name = "hare"

  let boot = M.boot

  let api (m : world) : proc Api.t =
    {
      openf = (fun p path flags -> Posix.openf p path flags);
      close = Posix.close;
      read = (fun p fd ~len -> Posix.read p fd ~len);
      write = Posix.write;
      lseek = (fun p fd ~pos whence -> Posix.lseek p fd ~pos whence);
      dup2 = (fun p ~src ~dst -> Posix.dup2 p ~src ~dst);
      pipe = Posix.pipe;
      fsync = Posix.fsync;
      ftruncate = (fun p fd ~size -> Posix.ftruncate p fd ~size);
      unlink = Posix.unlink;
      mkdir = (fun p ~dist path -> Posix.mkdir p ~dist path);
      rmdir = Posix.rmdir;
      rename = Posix.rename;
      readdir =
        (fun p path ->
          Posix.readdir p path
          |> List.map (fun (e : Wire.entry) -> (e.Wire.e_name, e.Wire.e_ftype)));
      stat = Posix.stat;
      exists = Posix.exists;
      chdir = Posix.chdir;
      fork = Posix.fork;
      spawn = (fun p ~prog ~args -> Posix.spawn p ~prog ~args);
      waitpid = Posix.waitpid;
      wait = Posix.wait;
      kill = Posix.kill;
      register_program = (fun prog body -> M.register_program m prog body);
      compute = Posix.compute;
      random = (fun p bound -> Hare_sim.Rng.int p.P.prng bound);
      print = Posix.print;
      core_of = (fun p -> p.P.core_id);
      now_cycles = Posix.now_cycles;
      sleep_until = Posix.sleep_until;
    }

  let spawn_init m ~name body =
    let proc, _console = M.spawn_init m ~name (fun p _args -> body p) in
    proc

  let run = M.run

  let seconds = M.seconds

  let syscalls = M.total_syscalls

  let exit_status = M.exit_status

  let trace = M.trace

  let metrics = M.metrics

  let reset_perf = M.reset_perf

  let robustness = M.robustness

  let engine_stats m =
    let e = M.engine m in
    {
      es_events = Hare_sim.Engine.events_executed e;
      es_peak_fibers = Hare_sim.Engine.peak_fibers e;
      es_spawned = Hare_sim.Engine.spawned_fibers e;
    }

  let server_loads = M.server_loads

  let engine m = Some (M.engine m)
end

module Linux_w = struct
  module L = Hare_baseline.Linux_world

  type world = L.t

  type proc = L.proc

  let name = "linux"

  let boot = L.boot

  let api = L.api

  let spawn_init w ~name body = fst (L.spawn_init w ~name body)

  let run = L.run

  let seconds = L.seconds

  let syscalls = L.syscalls

  let exit_status = L.exit_status

  let trace _ = None

  let metrics _ = None

  let reset_perf _ = ()

  let robustness _ = Hare_stats.Robust.create ()

  let engine_stats _ = { es_events = 0; es_peak_fibers = 0; es_spawned = 0 }

  let server_loads _ = []

  let engine _ = None
end

let unfs_config (base : Config.t) =
  let costs = base.Config.costs in
  {
    base with
    Config.placement = Config.Split 1;
    dir_distribution = false;
    direct_access = false;
    dir_cache = true;
    (* Every message crosses the kernel loopback network stack plus the
       user-space NFS server's socket handling. *)
    costs = { costs with Hare_config.Costs.send = costs.Hare_config.Costs.send + costs.Hare_config.Costs.loopback_rpc };
  }
