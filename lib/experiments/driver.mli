(** Runs one benchmark on one world and measures it.

    The driver boots a fresh machine, registers the benchmark's helper
    programs and a worker program, runs the (untimed) setup in the init
    process, then spawns the workers via [spawn] — i.e. the workers are
    placed on cores by the system's own policy, exactly like the paper's
    benchmark processes — and times from after setup to the last worker
    exit. *)

type result = {
  bench : string;
  world : string;
  nprocs : int;
  scale : int;
  elapsed : float;  (** simulated seconds of the timed region. *)
  ops : int;
  throughput : float;  (** ops per simulated second. *)
  syscalls : Hare_stats.Opcount.t;  (** whole-run op mix. *)
  profile : Hare_trace.Trace.row list;
      (** Per-opcode cycle attribution of the timed region (sorted by
          total cycles, descending). Empty unless the world was booted
          with [trace_enabled]. *)
  latencies : (string * Hare_stats.Latency.dist) list;
      (** Per-priority-class (meta/data/background) latency percentiles
          of the timed region's completed syscalls, from the trace
          spans. Empty unless the world was booted with
          [trace_enabled]. *)
  robust : Hare_stats.Robust.t;
      (** Fault/overload counters of the timed region (reset alongside
          the perf counters; all zero for the Linux baseline). *)
  engine : World.engine_stats;
      (** Simulator event-loop counters for the whole run (boot + setup
          + timed region); all zero on the Linux baseline. *)
  loads : (int * int * int) list;
      (** Per physical file server [(sid, ops served, peak queue depth)]
          over the whole run; empty on the Linux baseline. *)
  imbalance : float;
      (** Max/mean served-operation ratio over the servers that served
          anything (1.0 = perfectly even; 1.0 when [loads] is empty). *)
  gauges : Hare_metrics.Metrics.summary list;
      (** Per-gauge time-series summaries over the whole run, in
          registration order. Empty unless [metrics_interval > 0]. *)
  metrics_interval : int;
      (** The sampling grid, simulated cycles; 0 = metrics were off. *)
  metrics_samples : int;  (** Samples taken over the whole run. *)
  knee : Hare_metrics.Knee.t option;
      (** First window of the timed region whose p99 latency exceeded
          1.5x the previous judged window's — the saturation knee.
          [None] when the series stays flat or tracing was off. *)
  blame : Hare_metrics.Blame.t list;
      (** Per-class tail-latency blame reports from the retained span
          trees. Empty unless [trace_retain > 0]. *)
}

val latencies_of_trace :
  ?since:int64 ->
  Hare_trace.Trace.t ->
  (string * Hare_stats.Latency.dist) list
(** Per-class latency distributions of the root syscall spans beginning
    at or after [since] (cycles); classes with no samples are omitted. *)

val default_config : ncores:int -> Hare_config.Config.t
(** The experiments' standard configuration: [ncores] cores, a scaled
    64 MiB buffer cache (the paper's 2 GiB would dominate host memory),
    everything else as {!Hare_config.Config.default}. *)

module Make (W : World.WORLD) : sig
  val run :
    ?config:Hare_config.Config.t ->
    ?nprocs:int ->
    ?scale:int ->
    ?null_explorer:bool ->
    Hare_workloads.Spec.t ->
    result
  (** [run spec] executes the benchmark. [nprocs] defaults to the number
      of application cores; the benchmark's exec-placement policy
      overrides the configuration's. [null_explorer] (default false)
      attaches an always-ordinal-0 schedule explorer to the engine: the
      run must stay bit-identical to an unexplored one — the golden-clock
      test's zero-perturbation proof. Raises [Failure] if any worker
      exits nonzero. *)
end
