module Api = Hare_api.Api
module Config = Hare_config.Config
module Spec = Hare_workloads.Spec

type result = {
  bench : string;
  world : string;
  nprocs : int;
  scale : int;
  elapsed : float;
  ops : int;
  throughput : float;
  syscalls : Hare_stats.Opcount.t;
  profile : Hare_trace.Trace.row list;
  latencies : (string * Hare_stats.Latency.dist) list;
  robust : Hare_stats.Robust.t;
  engine : World.engine_stats;
      (* simulator event-loop counters for the whole run (boot + setup +
         timed region); all zero on the Linux baseline *)
  loads : (int * int * int) list;
      (* per physical server (sid, ops, peak queue); empty on Linux *)
  imbalance : float;
  (* telemetry (PR 9); all empty/None unless the config enabled the
     metrics sampler and/or tail retention *)
  gauges : Hare_metrics.Metrics.summary list;
      (* per-gauge time-series summaries, in registration order *)
  metrics_interval : int;  (* sampling grid, cycles; 0 = metrics off *)
  metrics_samples : int;  (* samples taken over the whole run *)
  knee : Hare_metrics.Knee.t option;
      (* first window of the timed region where the p99 latency slope
         exceeded the threshold; None when flat or untraced *)
  blame : Hare_metrics.Blame.t list;
      (* per-class tail blame reports; empty unless trace_retain > 0 *)
}

(* Per-class latency distributions of the root syscall spans that began
   at or after [since] (cycles). Shared with hare_cli's overload report.
   Reads the trace's root-span log, not the event ring: the log is
   recorded even in profile-only mode and never loses samples to ring
   overwrite; only completed requests contribute. *)
let latencies_of_trace ?(since = 0L) tr =
  let module Trace = Hare_trace.Trace in
  let buckets = Hashtbl.create 4 in
  List.iter
    (fun (name, t0, dur) ->
      if t0 >= since then
        match Hare_stats.Latency.class_of_op name with
        | Some cls ->
            let prev =
              match Hashtbl.find_opt buckets cls with
              | Some ds -> ds
              | None -> []
            in
            Hashtbl.replace buckets cls (dur :: prev)
        | None -> ())
    (Trace.root_spans tr);
  List.filter_map
    (fun cls ->
      match Hashtbl.find_opt buckets cls with
      | Some ds -> Some (cls, Hare_stats.Latency.of_durations ds)
      | None -> None)
    Hare_stats.Latency.class_names

let default_config ~ncores =
  {
    Config.default with
    Config.ncores;
    (* 512 MiB of (lazily materialized) buffer cache: big enough that no
       per-server partition empties even when creation affinity clusters
       a whole tree's inodes on one server (the paper's 2 GiB never
       fills; block stealing is unimplemented, as in the prototype). *)
    buffer_cache_blocks = 131072;
    pcache_lines = 4096;
  }

module Make (W : World.WORLD) = struct
  let run ?config ?nprocs ?(scale = 1) ?(null_explorer = false)
      (spec : Spec.t) =
    let config =
      match config with Some c -> c | None -> default_config ~ncores:4
    in
    let config = { config with Config.exec_policy = spec.Spec.exec_policy } in
    let nprocs =
      match nprocs with
      | Some n -> n
      | None -> List.length (Config.app_cores config)
    in
    let w = W.boot config in
    (* Zero-perturbation proof hook: a trivial explorer that always
       answers ordinal 0 routes every same-cycle tie through the
       exploration plumbing yet must leave clocks and opcounts
       bit-identical (the golden-clock test runs both ways). *)
    if null_explorer then
      Option.iter
        (fun eng ->
          Hare_sim.Engine.set_explorer eng
            {
              Hare_sim.Engine.ex_choose = (fun ~time:_ _ -> 0);
              ex_step = (fun ~time:_ ~seq:_ ~tag:_ -> ());
              ex_access = ignore;
            })
        (W.engine w);
    let api = W.api w in
    List.iter
      (fun (prog, body) -> api.Api.register_program prog body)
      (spec.Spec.programs api);
    api.Api.register_program "bench-worker" (fun p args ->
        let idx = match args with a :: _ -> int_of_string a | [] -> 0 in
        spec.Spec.worker api p ~idx ~nprocs ~scale;
        0);
    let t0 = ref 0.0 and t1 = ref 0.0 in
    let ops_before = ref (Hare_stats.Opcount.create ()) in
    let init =
      W.spawn_init w ~name:("bench-" ^ spec.Spec.name) (fun p ->
          spec.Spec.setup api p ~nprocs ~scale;
          ops_before := Hare_stats.Opcount.snapshot (W.syscalls w);
          (* The timed region reports only its own activity: perf
             counters and the cycle-attribution profile restart here;
             setup's spans stay in the trace ring for inspection. *)
          W.reset_perf w;
          (match W.trace w with
          | Some tr -> Hare_trace.Trace.reset_profile tr
          | None -> ());
          t0 := W.seconds w;
          let workers =
            match spec.Spec.mode with Spec.Workers -> nprocs | Spec.Make -> 1
          in
          let pids =
            List.init workers (fun i ->
                api.Api.spawn p ~prog:"bench-worker"
                  ~args:[ string_of_int i ])
          in
          let failures =
            List.fold_left
              (fun acc pid ->
                if api.Api.waitpid p pid <> 0 then acc + 1 else acc)
              0 pids
          in
          t1 := W.seconds w;
          failures)
    in
    W.run w;
    (match W.exit_status w init with
    | Some 0 -> ()
    | Some n ->
        failwith
          (Printf.sprintf "%s on %s: %d worker(s) failed" spec.Spec.name W.name n)
    | None -> failwith (spec.Spec.name ^ ": init never finished"));
    let elapsed = !t1 -. !t0 in
    let ops = spec.Spec.ops ~nprocs ~scale in
    (* Start of the timed region on the cycle clock the spans carry. *)
    let cycles_per_s =
      float_of_int config.Config.costs.Hare_config.Costs.cycles_per_us *. 1e6
    in
    let since = Int64.of_float ((!t0 *. cycles_per_s) +. 0.5) in
    (* Knee window: a handful of sampling grid points when metrics are
       on, a fixed quarter-million cycles otherwise. *)
    let knee_window =
      if config.Config.metrics_interval > 0 then
        8 * config.Config.metrics_interval
      else 250_000
    in
    {
      bench = spec.Spec.name;
      world = W.name;
      nprocs;
      scale;
      elapsed;
      ops;
      throughput = (if elapsed > 0.0 then float_of_int ops /. elapsed else 0.0);
      (* the timed region's op mix only — setup excluded (Figure 5) *)
      syscalls = Hare_stats.Opcount.diff ~since:!ops_before (W.syscalls w);
      profile =
        (match W.trace w with
        | Some tr -> Hare_trace.Trace.profile tr
        | None -> []);
      latencies =
        (* Only spans of the timed region. *)
        (match W.trace w with
        | Some tr -> latencies_of_trace ~since tr
        | None -> []);
      robust = W.robustness w;
      engine = W.engine_stats w;
      loads = W.server_loads w;
      imbalance =
        (let served =
           List.filter_map
             (fun (_, ops, _) ->
               if ops > 0 then Some (float_of_int ops) else None)
             (W.server_loads w)
         in
         match served with
         | [] -> 1.0
         | l ->
             let mean =
               List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
             in
             List.fold_left max 0.0 l /. mean);
      gauges =
        (match W.metrics w with
        | Some m -> Hare_metrics.Metrics.summaries m
        | None -> []);
      metrics_interval = config.Config.metrics_interval;
      metrics_samples =
        (match W.metrics w with
        | Some m -> Hare_metrics.Metrics.samples m
        | None -> 0);
      knee =
        (match W.trace w with
        | Some tr ->
            let spans =
              List.filter_map
                (fun (_, s0, dur) ->
                  if s0 >= since then
                    Some (Int64.to_int s0, Int64.to_int dur)
                  else None)
                (Hare_trace.Trace.root_spans tr)
            in
            Hare_metrics.Knee.detect ~window:knee_window spans
        | None -> None);
      blame =
        (match W.trace w with
        | Some tr -> Hare_metrics.Blame.of_trace tr
        | None -> []);
    }
end
