(** Runnable "worlds" — the systems under evaluation.

    A world boots a machine from a {!Hare_config.Config.t} and exposes
    the {!Hare_api.Api.t} surface plus enough control to run an init
    process and read the simulated clock. Three worlds reproduce the
    paper's three systems: Hare itself, Linux tmpfs/ramfs, and the
    UNFS3-style loopback NFS. *)

(** Host-side simulator-engine counters for one run: how much event-loop
    work the run cost, independent of the simulated clock. All zero for
    worlds without a discrete-event engine (the Linux baseline). *)
type engine_stats = {
  es_events : int;  (** engine events executed *)
  es_peak_fibers : int;  (** peak live (registered) fibers *)
  es_spawned : int;  (** fibers spawned over the whole run *)
}

module type WORLD = sig
  type world

  type proc

  val name : string

  val boot : Hare_config.Config.t -> world

  val api : world -> proc Hare_api.Api.t

  val spawn_init : world -> name:string -> (proc -> int) -> proc

  val run : world -> unit

  val seconds : world -> float

  val syscalls : world -> Hare_stats.Opcount.t

  val exit_status : world -> proc -> int option

  val trace : world -> Hare_trace.Trace.t option
  (** The trace sink, when the world was booted with tracing enabled.
      Worlds that never trace (the Linux baseline) return [None]. *)

  val metrics : world -> Hare_metrics.Metrics.t option
  (** The time-series gauge registry, when the world was booted with
      [metrics_interval > 0]. Worlds without a sampler return [None]. *)

  val reset_perf : world -> unit
  (** Zero the world's pipelining/batching counters (no-op for worlds
      without them), so a timed region reports only its own activity. *)

  val robustness : world -> Hare_stats.Robust.t
  (** Aggregate fault/overload counters (always zero for the Linux
      baseline, which has neither). *)

  val engine_stats : world -> engine_stats
  (** Simulator event-loop counters for this run. *)

  val engine : world -> Hare_sim.Engine.t option
  (** The discrete-event engine, for worlds that have one — the schedule
      explorer attaches here. [None] for the Linux baseline. *)

  val server_loads : world -> (int * int * int) list
  (** Per physical file server: [(sid, ops served, peak queue depth)].
      Empty for worlds without file servers (the Linux baseline). *)
end

module Hare_w : WORLD with type world = Hare.Machine.t and type proc = Hare_proc.Process.t

module Linux_w :
  WORLD
    with type world = Hare_baseline.Linux_world.t
     and type proc = Hare_baseline.Linux_world.proc

(** [unfs_config base] turns a configuration into the UNFS3 baseline: a
    single dedicated file-server core, all data through RPC (no direct
    buffer-cache access), centralized directories, and the kernel
    loopback network-stack cost added to every message (§5.3.3). *)
val unfs_config : Hare_config.Config.t -> Hare_config.Config.t
