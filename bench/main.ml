(* bench/main.exe — regenerates every table and figure of the paper's
   evaluation (§5) from the simulator, then runs one Bechamel
   micro-benchmark per figure measuring the wall-clock cost of the
   simulated experiment underlying it.

   Usage:
     dune exec bench/main.exe              # everything, paper-scale shapes
     dune exec bench/main.exe -- --quick   # small machines (8 cores)
     dune exec bench/main.exe -- --figures-only | --bechamel-only
     dune exec bench/main.exe -- --json [--quick]   # write BENCH_PR2.json
*)

module Figures = Hare_experiments.Figures
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module Config = Hare_config.Config
module Metrics = Hare_metrics.Metrics
module Knee = Hare_metrics.Knee
module Blame = Hare_metrics.Blame
module HD = Driver.Make (World.Hare_w)
module LD = Driver.Make (World.Linux_w)

let bench name = Hare_workloads.All.find name

let hare_run ?placement ?nprocs ~ncores name =
  let config =
    match placement with
    | Some p -> { (Driver.default_config ~ncores) with Config.placement = p }
    | None -> Driver.default_config ~ncores
  in
  fun () -> ignore (HD.run ~config ?nprocs (bench name))

(* One Bechamel test per figure: each run executes the simulated
   experiment that figure is built from (on a small machine, so a single
   sample stays around a millisecond of wall-clock). *)
let bechamel_tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "fig4/sloc" (fun () ->
        match Hare_stats.Sloc.repo_root () with
        | Some root -> ignore (Hare_stats.Sloc.count_tree (Filename.concat root "lib/msg"))
        | None -> ());
    t "fig5/opmix-creates" (hare_run ~ncores:2 "creates");
    t "fig6/scaling-step" (hare_run ~ncores:4 "creates");
    t "fig7/split-config" (hare_run ~placement:(Config.Split 2) ~ncores:4 "creates");
    t "fig8/unfs-baseline" (fun () ->
        let config = World.unfs_config (Driver.default_config ~ncores:2) in
        ignore (HD.run ~config ~nprocs:1 (bench "creates")));
    t "fig8/linux-baseline" (fun () ->
        ignore (LD.run ~config:(Driver.default_config ~ncores:1) ~nprocs:1 (bench "creates")));
    t "fig10/dist-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_distribution = false }
        in
        ignore (HD.run ~config (bench "creates")));
    t "fig11/bcast-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_broadcast = false }
        in
        ignore (HD.run ~config (bench "pfind dense")));
    t "fig12/direct-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.direct_access = false }
        in
        ignore (HD.run ~config (bench "writes")));
    t "fig13/dcache-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.dir_cache = false }
        in
        ignore (HD.run ~config (bench "renames")));
    t "fig14/affinity-ablation" (fun () ->
        let config =
          { (Driver.default_config ~ncores:4) with Config.creation_affinity = false }
        in
        ignore (HD.run ~config (bench "punzip")));
    t "fig15/linux-parallel" (fun () ->
        ignore (LD.run ~config:(Driver.default_config ~ncores:4) (bench "creates")));
    t "micro/rename-latency" (hare_run ~ncores:1 ~nprocs:1 "renames");
  ]

let run_bechamel () =
  let open Bechamel in
  print_endline "\n================ Bechamel micro-benchmarks ================\n";
  print_endline "(wall-clock cost of the simulated experiment behind each figure)\n";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let tests = bechamel_tests () in
  let results =
    List.map
      (fun test ->
        let tbl = Benchmark.all cfg instances test in
        let ols =
          Analyze.all
            (Analyze.ols ~r_square:false ~bootstrap:0
               ~predictors:[| Measure.run |])
            Toolkit.Instance.monotonic_clock tbl
        in
        Hashtbl.fold (fun name v acc -> (name, v) :: acc) ols [])
      (List.map (fun t -> Bechamel.Test.make_grouped ~name:"" [ t ]) tests)
    |> List.concat
  in
  let rows =
    results
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, ols) ->
           let est =
             match Analyze.OLS.estimates ols with
             | Some (e :: _) -> Printf.sprintf "%.3f ms/run" (e /. 1e6)
             | _ -> "n/a"
           in
           [ name; est ])
  in
  Hare_stats.Table.print ~headers:[ "experiment"; "wall-clock" ] rows

(* ---------- --json: machine-readable benchmark results ----------------- *)

(* One measured configuration of one figure workload. The "/baseline"
   vs "/pipelined" pairs at 8 cores are the PR's ablation: identical
   machine, knobs at 1/1/1 vs 8/8/8. *)
let json_cases quick =
  let case ?(window = 1) ?(batch = 1) ?(extent = 1) name wname ncores =
    let config =
      {
        (Driver.default_config ~ncores) with
        Config.rpc_window = window;
        batch_max = batch;
        alloc_extent = extent;
        (* Tracing is zero-perturbation: the cycle counts below are
           identical with it off, and it buys the per-opcode profile.
           Profile-only (no event ring): these rows never export the
           event stream, and ring recording roughly halves wall-clock
           simulation throughput. *)
        trace_enabled = true;
        trace_ring = false;
      }
    in
    (name, wname, ncores, None, config)
  in
  let figure_cases =
    if quick then
      [
        case "creates@2" "creates" 2;
        case "creates@4" "creates" 4;
        case "writes@4" "writes" 4;
        case "renames@2" "renames" 2;
      ]
    else
      [
        case "creates@2" "creates" 2;
        case "creates@8" "creates" 8;
        case "writes@8" "writes" 8;
        case "renames@2" "renames" 2;
        case "punzip@4" "punzip" 4;
      ]
  in
  (* Overload-control soak (PR 6): open-loop arrivals past saturation of
     a single dedicated server core, every control-plane knob on. The
     row's p99_cycles regression-gates graceful degradation. *)
  let overload_case name ncores =
    let config =
      {
        (Driver.default_config ~ncores) with
        Config.placement = Config.Split 1;
        trace_enabled = true;
        (* PR 9: sample the control-plane gauges on a 20k-cycle grid
           and retain the 32 slowest span trees per class, so this row
           also exports a timeseries and a blame report. Both are
           host-side only — the gated cycle counts are unchanged. *)
        trace_retain = 32;
        metrics_interval = 20_000;
        rpc_deadline = 60_000;
        rpc_retries = 6;
        rpc_deadline_max = 240_000;
        deadline_propagation = true;
        mailbox_capacity = 24;
        retry_budget = 12;
        breaker_threshold = 6;
        breaker_cooldown = 150_000;
        shed_watermark = 8;
      }
    in
    (* Many more workers than app cores: arrivals keep landing while
       earlier requests are still queued, so the server queue actually
       builds depth and the watermark/credit/deadline machinery engages. *)
    (name, "overload", ncores, Some (3 * ncores), config)
  in
  (* Saturation-knee sweep (PR 9): the open-loop overload workload at
     each machine size, one file server per 8 cores, the metrics
     sampler and tail retention on. Each row's time series yields the
     knee — the first window whose p99 latency leaves the flat regime —
     reported per machine size as "knee_cycles". *)
  let knee_case ncores =
    let config =
      {
        (Driver.default_config ~ncores) with
        Config.placement = Config.Split (max 1 (ncores / 8));
        trace_enabled = true;
        trace_retain = 32;
        metrics_interval = 20_000;
        rpc_deadline = 60_000;
        rpc_retries = 6;
        rpc_deadline_max = 240_000;
        deadline_propagation = true;
        mailbox_capacity = 24;
        retry_budget = 12;
        breaker_threshold = 6;
        breaker_cooldown = 150_000;
        shed_watermark = 8;
      }
    in
    ( Printf.sprintf "overload@%d/knee" ncores,
      "overload",
      ncores,
      Some (3 * ncores),
      config )
  in
  let knee_cases =
    if quick then [ knee_case 64 ]
    else List.map knee_case [ 64; 128; 256; 512 ]
  in
  (* Engine-scalability sweep (PR 7): machines of 64..512 cores, one
     file server per 8 cores (placement scaling with Config.nservers).
     Untraced — these rows measure raw event-loop throughput
     (sim_ops_per_sec / sim_events_per_sec / peak_live_fibers); the
     simulated-cycle fields regression-gate the usual way. *)
  let scale_case wname ncores =
    let config =
      {
        (Driver.default_config ~ncores) with
        Config.placement = Config.Split (ncores / 8);
      }
    in
    (Printf.sprintf "%s@%d/scale" wname ncores, wname, ncores, None, config)
  in
  let scale_cases =
    if quick then [ scale_case "creates" 64 ]
    else
      List.concat_map
        (fun w -> List.map (scale_case w) [ 64; 128; 256; 512 ])
        [ "creates"; "writes"; "renames" ]
  in
  (* Consistent-hash sharding sweep (PR 8): Sharded placement at 512
     cores, doubling the ring's server count — creates/renames
     throughput should improve monotonically while the per-server load
     stays balanced (each row's "imbalance" is regression-gated). *)
  let sharded_case wname ncores nsrv =
    let config =
      {
        (Driver.default_config ~ncores) with
        Config.placement = Config.Sharded { servers = nsrv; vnodes = 32 };
      }
    in
    ( Printf.sprintf "%s@%d/sharded%d" wname ncores nsrv,
      wname,
      ncores,
      None,
      config )
  in
  let sharded_cases =
    if quick then [ sharded_case "creates" 64 8 ]
    else
      List.concat_map
        (fun w -> List.map (sharded_case w 512) [ 8; 16; 32 ])
        [ "creates"; "renames" ]
  in
  figure_cases
  @ [
      case "creates@8/baseline" "creates" 8;
      case ~window:8 ~batch:8 ~extent:8 "creates@8/pipelined" "creates" 8;
      case "writes@8/baseline" "writes" 8;
      case ~window:8 ~batch:8 ~extent:8 "writes@8/pipelined" "writes" 8;
      overload_case "overload@8/open" 8;
    ]
  @ scale_cases @ sharded_cases @ knee_cases

let run_json ~quick ~out () =
  let cases = json_cases quick in
  let rows =
    List.map
      (fun (name, wname, ncores, nprocs, config) ->
        if wname = "overload" then begin
          Hare_workloads.Overload.reset ();
          (* ~2x the single server core's service rate at 24 workers *)
          Hare_workloads.Overload.period := 30_000
        end;
        let t0 = Unix.gettimeofday () in
        let r = HD.run ~config ?nprocs (bench wname) in
        let wall = Unix.gettimeofday () -. t0 in
        let cycles =
          r.Driver.elapsed
          *. float_of_int config.Config.costs.Hare_config.Costs.cycles_per_us
          *. 1e6
        in
        Printf.printf "%-22s %12.0f cycles  %6.2fs wall\n%!" name cycles wall;
        (name, wname, ncores, config, r, cycles, wall))
      cases
  in
  (* The ablation summary the acceptance criterion asks for. *)
  let find n =
    List.find_map
      (fun (name, _, _, _, _, cy, _) -> if name = n then Some cy else None)
      rows
  in
  List.iter
    (fun w ->
      match (find (w ^ "@8/baseline"), find (w ^ "@8/pipelined")) with
      | Some b, Some p ->
          Printf.printf "%s@8: 8/8/8 knobs save %.1f%% simulated cycles\n" w
            (100. *. (b -. p) /. b)
      | _ -> ())
    [ "creates"; "writes" ];
  (* Sharded scaling summary: cycles must fall as the ring doubles. *)
  List.iter
    (fun w ->
      let cy n = find (Printf.sprintf "%s@512/sharded%d" w n) in
      match (cy 8, cy 16, cy 32) with
      | Some a, Some b, Some c ->
          Printf.printf
            "%s@512 sharded 8->16->32 servers: %.0f -> %.0f -> %.0f cycles%s\n"
            w a b c
            (if b < a && c < b then "  (monotone)" else "  (NOT monotone)")
      | _ -> ())
    [ "creates"; "renames" ];
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"hare-bench-pr2/1\",\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"workloads\": [\n";
  List.iteri
    (fun i (name, wname, ncores, config, (r : Driver.result), cycles, wall) ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" name;
      add "      \"workload\": \"%s\",\n" wname;
      add "      \"ncores\": %d,\n" ncores;
      add "      \"config\": { \"rpc_window\": %d, \"batch_max\": %d, \"alloc_extent\": %d, \"cycles_per_us\": %d },\n"
        config.Config.rpc_window config.Config.batch_max
        config.Config.alloc_extent
        config.Config.costs.Hare_config.Costs.cycles_per_us;
      add "      \"ops\": %d,\n" r.Driver.ops;
      add "      \"simulated_cycles\": %.0f,\n" cycles;
      (* Worst per-class p99 of the timed region: the graceful-degradation
         gate. Additive key — older baselines simply do not compare it. *)
      let p99 =
        List.fold_left
          (fun acc (_, d) -> max acc d.Hare_stats.Latency.p99)
          0L r.Driver.latencies
      in
      add "      \"p99_cycles\": %Ld,\n" p99;
      (if r.Driver.latencies <> [] then begin
         add "      \"latency\": { ";
         List.iteri
           (fun j (cls, (d : Hare_stats.Latency.dist)) ->
             add
               "%s\"%s\": { \"n\": %d, \"p50\": %Ld, \"p95\": %Ld, \"p99\": \
                %Ld, \"max\": %Ld }"
               (if j > 0 then ", " else "")
               cls d.Hare_stats.Latency.n d.Hare_stats.Latency.p50
               d.Hare_stats.Latency.p95 d.Hare_stats.Latency.p99
               d.Hare_stats.Latency.lmax)
           r.Driver.latencies;
         add " },\n"
       end);
      (if wname = "overload" then begin
         let module O = Hare_workloads.Overload in
         let rb = r.Driver.robust in
         add
           "      \"overload\": { \"sent\": %d, \"ok\": %d, \"shed\": %d, \
            \"fast_fail\": %d, \"skipped\": %d, \"retries\": %d, \
            \"giveups\": %d, \"shed_load\": %d, \"shed_expired\": %d, \
            \"flow_blocks\": %d, \"budget_denied\": %d, \"breaker_opens\": \
            %d, \"breaker_half_opens\": %d, \"breaker_closes\": %d },\n"
           !O.sent !O.ok !O.shed !O.fast_fail !O.skipped
           rb.Hare_stats.Robust.retries rb.Hare_stats.Robust.giveups
           rb.Hare_stats.Robust.shed_load rb.Hare_stats.Robust.shed_expired
           rb.Hare_stats.Robust.flow_blocks
           rb.Hare_stats.Robust.budget_denied
           rb.Hare_stats.Robust.breaker_opens
           rb.Hare_stats.Robust.breaker_half_opens
           rb.Hare_stats.Robust.breaker_closes
       end);
      add "      \"simulated_seconds\": %.9f,\n" r.Driver.elapsed;
      add "      \"wall_clock_s\": %.6f,\n" wall;
      (* Host-side engine throughput: how fast the simulator chewed
         through this row (nothing to do with the simulated clock). *)
      let es = r.Driver.engine in
      add "      \"sim_ops_per_sec\": %.0f,\n"
        (if wall > 0.0 then float_of_int r.Driver.ops /. wall else 0.0);
      add "      \"sim_events_per_sec\": %.0f,\n"
        (if wall > 0.0 then
           float_of_int es.World.es_events /. wall
         else 0.0);
      add "      \"engine_events\": %d,\n" es.World.es_events;
      add "      \"peak_live_fibers\": %d,\n" es.World.es_peak_fibers;
      add "      \"spawned_fibers\": %d,\n" es.World.es_spawned;
      (* Per-server load distribution (whole run) and its max/mean
         imbalance — the sharding balance gate. *)
      (if r.Driver.loads <> [] then begin
         add "      \"imbalance\": %.3f,\n" r.Driver.imbalance;
         add "      \"server_loads\": [ ";
         List.iteri
           (fun j (sid, ops, peak) ->
             add "%s{ \"sid\": %d, \"ops\": %d, \"peak_queue\": %d }"
               (if j > 0 then ", " else "")
               sid ops peak)
           r.Driver.loads;
         add " ],\n"
       end);
      (* Time-series telemetry (PR 9): sampling grid, sample count and a
         per-gauge summary. Present only on rows whose config enabled
         the sampler (metrics_interval > 0). *)
      (if r.Driver.gauges <> [] then begin
         add "      \"timeseries\": { \"interval\": %d, \"samples\": %d, \"gauges\": [ "
           r.Driver.metrics_interval r.Driver.metrics_samples;
         (* "gauge", not "name": check.exe attributes gated metrics to
            the most recent "name" field, which must stay the workload
            row's. *)
         List.iteri
           (fun j (g : Metrics.summary) ->
             add
               "%s{ \"gauge\": \"%s\", \"n\": %d, \"min\": %d, \"max\": %d, \
                \"mean\": %.2f, \"last\": %d }"
               (if j > 0 then ", " else "")
               g.Metrics.s_name g.Metrics.s_n g.Metrics.s_min g.Metrics.s_max
               g.Metrics.s_mean g.Metrics.s_last)
           r.Driver.gauges;
         add " ] },\n"
       end);
      (* Saturation knee of the overload rows: the first window whose
         p99 left the flat regime. "knee_cycles" is regression-gated
         (Higher = the machine endures longer before saturating). *)
      (match r.Driver.knee with
      | Some k when wname = "overload" ->
          add "      \"knee_cycles\": %d,\n" k.Knee.k_at;
          add
            "      \"knee\": { \"window\": %d, \"p99_before\": %Ld, \
             \"p99_after\": %Ld, \"windows\": %d },\n"
            k.Knee.k_window k.Knee.k_before k.Knee.k_after k.Knee.k_windows
      | _ -> ());
      (* Per-class tail blame (PR 9): what made the slowest retained ops
         slow. Present only when trace_retain > 0. *)
      (if r.Driver.blame <> [] then begin
         add "      \"blame\": [ ";
         List.iteri
           (fun j (b : Blame.t) ->
             add
               "%s{ \"class\": \"%s\", \"n\": %d, \"p99\": %Ld, \"bucket\": \
                \"%s\", \"bucket_share\": %.3f, \"srv\": %d, \"srv_share\": \
                %.3f, \"qdepth_mean\": %.2f, \"qdepth_max\": %d, \
                \"worst_op\": \"%s\", \"worst_dur\": %d }"
               (if j > 0 then ", " else "")
               b.Blame.b_class b.Blame.b_n b.Blame.b_p99 b.Blame.b_bucket
               b.Blame.b_bucket_share b.Blame.b_srv b.Blame.b_srv_share
               b.Blame.b_qdepth_mean b.Blame.b_qdepth_max b.Blame.b_worst_op
               b.Blame.b_worst_dur)
           r.Driver.blame;
         add " ],\n"
       end);
      (* Per-opcode cycle attribution of the timed region: each row's
         bucket values sum exactly to its total (hare_cli profile shows
         the same breakdown interactively). *)
      add "      \"profile\": [\n";
      let nrows = List.length r.Driver.profile in
      List.iteri
        (fun j (row : Hare_trace.Trace.row) ->
          add "        { \"op\": \"%s\", \"count\": %d, \"cycles\": %Ld"
            row.Hare_trace.Trace.r_op row.Hare_trace.Trace.r_count
            row.Hare_trace.Trace.r_total;
          List.iteri
            (fun k bname ->
              add ", \"%s\": %Ld" bname row.Hare_trace.Trace.r_buckets.(k))
            Hare_trace.Trace.bucket_names;
          add " }%s\n" (if j < nrows - 1 then "," else ""))
        r.Driver.profile;
      add "      ]\n";
      add "    }%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  add "  ],\n";
  (* Schedule-exploration health (PR 10). Additive top-level object:
     check.exe compares only keys present in the baseline, so older
     baselines simply do not gate it. One exhaustive DPOR enumeration of
     the racy-but-clean scenario plus one seeded-mutation detection run
     prove the model checker still branches, still converges, and still
     catches a broken protocol. *)
  let module R = Hare_explore.Runner in
  let module S = Hare_explore.Scenario in
  let t0 = Unix.gettimeofday () in
  let clean =
    R.explore ~scenario:(S.find "collide") ~strategy:R.Dpor ~budget:500 ()
  in
  let detect =
    R.explore ~scenario:(S.find "handoff") ~mutate:"skip_writeback"
      ~strategy:(R.Pct 7) ~budget:50 ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf
    "explore: collide dpor %d schedule(s)%s, handoff+skip_writeback %s \
     (%.2fs wall)\n"
    clean.R.schedules
    (if clean.R.complete then " (exhaustive)" else "")
    (if detect.R.violations <> [] then "DETECTED" else "MISSED")
    wall;
  add "  \"explore\": {\n";
  add "    \"scenario\": \"collide\",\n";
  add "    \"schedules_explored\": %d,\n" clean.R.schedules;
  add "    \"choice_points\": %d,\n" clean.R.choice_points;
  add "    \"sleep_blocked\": %d,\n" clean.R.sleep_blocked;
  add "    \"exhaustive\": %b,\n" clean.R.complete;
  add "    \"violations\": %d,\n" (List.length clean.R.violations);
  add
    "    \"detection\": { \"scenario\": \"handoff\", \"mutation\": \
     \"skip_writeback\", \"strategy\": \"%s\", \"schedules\": %d, \
     \"violations\": %d }\n"
    (R.strategy_name (R.Pct 7))
    detect.R.schedules
    (List.length detect.R.violations);
  add "  }\n";
  add "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d workloads)\n" out (List.length rows)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let figures_only = List.mem "--figures-only" args in
  let bechamel_only = List.mem "--bechamel-only" args in
  let json = List.mem "--json" args in
  let t0 = Unix.gettimeofday () in
  if json then run_json ~quick ~out:"BENCH_PR2.json" ()
  else begin
    let opts = if quick then Figures.quick else Figures.default in
    if not bechamel_only then Figures.print_all opts;
    if not figures_only then run_bechamel ()
  end;
  Printf.printf "\ntotal wall-clock: %.1fs\n" (Unix.gettimeofday () -. t0)
