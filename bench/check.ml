(* bench/check.exe CURRENT BASELINE [TOLERANCE_PCT]

   Compares a freshly generated benchmark JSON (bench/main.exe -- --json)
   against a checked-in baseline and fails (exit 1) if any workload's
   simulated cycle count regressed by more than TOLERANCE_PCT (default
   10%), or if any baseline workload is missing from the current run —
   a silently skipped key would let a broken benchmark pass CI. Extra
   workloads in the current run are fine (the baseline is refreshed on
   the next update).

   The parser is deliberately minimal: it only reads the flat
   { "name": ..., "simulated_cycles": ..., "p99_cycles": ... } pairs
   that our own writer emits, in order, so it needs no JSON library.
   Unknown keys are skipped, so additive schema growth never breaks the
   gate; a new metric is only compared once it appears in the baseline. *)

(* Metric keys gated against the baseline, with the direction that
   counts as a regression. Each is paired with the most recent "name"
   field; every other key is ignored.

   [`Lower] metrics (simulated cycles, fiber counts) are deterministic
   functions of the seed, so the CLI tolerance applies as-is. [`Higher]
   metrics are host wall-clock throughput, which swings by ±25% on a
   shared single-CPU CI runner — they get a wider band (at least 40%)
   so the gate only trips on a genuine engine slowdown, not scheduler
   noise. *)
let gated =
  [
    ("simulated_cycles", `Lower);
    ("p99_cycles", `Lower);
    ("peak_live_fibers", `Lower);
    ("sim_ops_per_sec", `Higher);
    (* Sharding balance gate: max/mean per-server ops ratio; a consistent-
       hash regression shows up as one server soaking up the ring. *)
    ("imbalance", `Lower);
    (* Saturation knee of the overload rows (PR 9): the cycle at which
       p99 latency leaves the flat regime. Deterministic, but windowed
       at 8x the sampling grid, so a one-window shift is a large
       relative move — treated as `Higher (earlier knee = saturates
       sooner = regression) to get the wide band. *)
    ("knee_cycles", `Higher);
  ]

let higher_tolerance tolerance = Float.max 40.0 tolerance

let scan_workloads path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (* Every workload object lists "name" before its metrics; attribute
     each gated metric to the most recent name field. *)
  let results = ref [] in
  let cur_name = ref None in
  let len = String.length s in
  let rec field_from i =
    match String.index_from_opt s i '"' with
    | None -> ()
    | Some q0 -> (
        match String.index_from_opt s (q0 + 1) '"' with
        | None -> ()
        | Some q1 ->
            let key = String.sub s (q0 + 1) (q1 - q0 - 1) in
            let rest = ref (q1 + 1) in
            (* skip whitespace and the colon, if this is a key position *)
            while !rest < len && (s.[!rest] = ' ' || s.[!rest] = ':') do
              incr rest
            done;
            (if key = "name" then
               match String.index_from_opt s !rest '"' with
               | Some v0 -> (
                   match String.index_from_opt s (v0 + 1) '"' with
                   | Some v1 ->
                       cur_name := Some (String.sub s (v0 + 1) (v1 - v0 - 1));
                       rest := v1 + 1
                   | None -> ())
               | None -> ()
             else if List.mem_assoc key gated then begin
               let v0 = !rest in
               let v1 = ref v0 in
               while
                 !v1 < len
                 && (match s.[!v1] with
                    | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
                    | _ -> false)
               do
                 incr v1
               done;
               match !cur_name with
               | Some name when !v1 > v0 ->
                   results :=
                     ( name ^ "/" ^ key,
                       float_of_string (String.sub s v0 (!v1 - v0)) )
                     :: !results
               | _ -> ()
             end);
            field_from !rest)
  in
  field_from 0;
  List.rev !results

let () =
  let current, baseline, tolerance =
    match Array.to_list Sys.argv with
    | [ _; c; b ] -> (c, b, 10.0)
    | [ _; c; b; t ] -> (c, b, float_of_string t)
    | _ ->
        prerr_endline "usage: check.exe CURRENT BASELINE [TOLERANCE_PCT]";
        exit 2
  in
  let cur = scan_workloads current in
  let base = scan_workloads baseline in
  if base = [] then begin
    Printf.eprintf "check: no workloads found in baseline %s\n" baseline;
    exit 2
  end;
  let failed = ref false in
  let compared = ref 0 in
  let missing = ref [] in
  List.iter
    (fun (name, bcy) ->
      match List.assoc_opt name cur with
      | None ->
          failed := true;
          missing := name :: !missing;
          Printf.printf
            "%-36s MISSING: baseline key %S not present in current run %s\n"
            name name current
      | Some ccy ->
          incr compared;
          if bcy = 0.0 then
            Printf.printf "%-36s %14.0f -> %14.0f  (zero baseline, skipped)\n"
              name bcy ccy
          else begin
            let delta = 100. *. (ccy -. bcy) /. bcy in
            (* direction comes from the metric key (after the last '/') *)
            let key =
              match String.rindex_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            let regressed =
              match List.assoc_opt key gated with
              | Some `Higher -> delta < -.higher_tolerance tolerance
              | _ -> delta > tolerance
            in
            let verdict =
              if regressed then begin
                failed := true;
                "REGRESSED"
              end
              else "ok"
            in
            Printf.printf "%-36s %14.0f -> %14.0f  %+6.2f%%  %s\n" name bcy
              ccy delta verdict
          end)
    base;
  if !compared = 0 then begin
    Printf.eprintf "check: no common workloads between %s and %s\n" current
      baseline;
    exit 2
  end;
  if !failed then begin
    (match List.rev !missing with
    | [] -> ()
    | keys ->
        Printf.printf
          "FAIL: %d baseline workload(s) missing from current run: %s\n"
          (List.length keys)
          (String.concat ", " keys));
    Printf.printf "FAIL: regression or missing key beyond %.0f%% tolerance\n"
      tolerance;
    exit 1
  end
  else Printf.printf "PASS: %d metrics within %.0f%% of baseline\n" !compared
      tolerance
