(* bench/trace_check.exe FILE [--tracks N] [--counters N]
   bench/trace_check.exe --bench FILE

   Validates a Chrome trace-event JSON file produced by `hare_cli trace`
   without any JSON library: the exporter writes one event per line, so
   a line-oriented scanner suffices. Checks:

   - framing: first line is `{"traceEvents":[`, last line is `]}`;
   - every event line carries a "ph" phase and a "tid";
   - every non-metadata event carries a "ts", and timestamps are
     monotonically non-decreasing within each track (tid);
   - every counter event (ph "C") carries a parseable numeric "value";
   - with --tracks N: exactly N thread_name metadata records exist
     (one Perfetto track per core plus the DRAM track);
   - with --counters N: at least N counter events exist (the metrics
     sampler's gauge mirror, PR 9).

   With --bench, FILE is a bench --json output instead: the scanner
   requires at least one workload carrying a well-formed "timeseries"
   object (interval/samples/gauges) and one carrying a "blame" array
   (class/bucket fields), and that any "knee_cycles" key is followed by
   its "knee" detail object.

   Exit 0 when the file is well-formed, 1 with a message otherwise. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("trace_check: " ^ msg); exit 1) fmt

(* Find `"key":` in [line] and return the character offset just past the
   colon, skipping spaces. *)
let find_key line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and len = String.length line in
  let rec scan i =
    if i + plen > len then None
    else if String.sub line i plen = pat then Some (i + plen)
    else scan (i + 1)
  in
  scan 0

let int_at line i =
  let len = String.length line in
  let j = ref i in
  if !j < len && line.[!j] = '-' then incr j;
  let v0 = !j in
  while !j < len && line.[!j] >= '0' && line.[!j] <= '9' do
    incr j
  done;
  if !j = v0 then None else Some (Int64.of_string (String.sub line i (!j - i)))

(* --bench mode: structural checks on a bench --json file. Substring
   scans are enough — our own writer emits each object on known lines —
   but every required key is checked so a silently dropped section
   fails CI rather than shrinking the artifact. *)
let check_bench file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let contains pat =
    let plen = String.length pat and len = String.length s in
    let rec scan i =
      i + plen <= len && (String.sub s i plen = pat || scan (i + 1))
    in
    scan 0
  in
  let count pat =
    let plen = String.length pat and len = String.length s in
    let rec scan i acc =
      if i + plen > len then acc
      else if String.sub s i plen = pat then scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  if not (contains "\"schema\": \"hare-bench-pr2/1\"") then
    fail "%s: not a hare bench JSON (no schema key)" file;
  if not (contains "\"timeseries\":") then
    fail "%s: no workload carries a \"timeseries\" object" file;
  List.iter
    (fun key ->
      if not (contains key) then
        fail "%s: \"timeseries\" object lacks %s" file key)
    [ "\"interval\":"; "\"samples\":"; "\"gauges\":" ];
  if not (contains "\"blame\":") then
    fail "%s: no workload carries a \"blame\" array" file;
  List.iter
    (fun key ->
      if not (contains key) then fail "%s: \"blame\" entries lack %s" file key)
    [ "\"class\":"; "\"bucket\":"; "\"bucket_share\":"; "\"qdepth_max\":" ];
  let knees = count "\"knee_cycles\":" and details = count "\"knee\":" in
  if knees <> details then
    fail "%s: %d \"knee_cycles\" keys but %d \"knee\" detail objects" file
      knees details;
  Printf.printf
    "trace_check: OK: bench JSON carries timeseries, blame and %d knee(s)\n"
    knees;
  exit 0

let () =
  let file, want_tracks, want_counters =
    match Array.to_list Sys.argv with
    | [ _; "--bench"; f ] -> check_bench f
    | [ _; f ] -> (f, None, None)
    | [ _; f; "--tracks"; n ] -> (f, Some (int_of_string n), None)
    | [ _; f; "--counters"; n ] -> (f, None, Some (int_of_string n))
    | [ _; f; "--tracks"; n; "--counters"; c ]
    | [ _; f; "--counters"; c; "--tracks"; n ] ->
        (f, Some (int_of_string n), Some (int_of_string c))
    | _ ->
        prerr_endline
          "usage: trace_check.exe FILE [--tracks N] [--counters N]\n\
          \       trace_check.exe --bench FILE";
        exit 2
  in
  let lines =
    let ic = open_in file in
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    close_in ic;
    List.rev (List.filter (fun l -> String.trim l <> "") !acc)
  in
  (match lines with
  | first :: _ when String.trim first = "{\"traceEvents\":[" -> ()
  | first :: _ -> fail "bad first line %S" first
  | [] -> fail "empty file");
  (match List.rev lines with
  | last :: _ when String.trim last = "]}" -> ()
  | last :: _ -> fail "bad last line %S" last
  | [] -> assert false);
  let body =
    match lines with
    | _ :: rest -> List.filteri (fun i _ -> i < List.length rest - 1) rest
    | [] -> []
  in
  let last_ts : (int64, int64) Hashtbl.t = Hashtbl.create 16 in
  let events = ref 0 and metas = ref 0 and tracks = ref 0 in
  let counters = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 2 in
      let ph =
        match find_key line "ph" with
        | Some j when j + 1 < String.length line && line.[j] = '"' ->
            line.[j + 1]
        | _ -> fail "line %d: no \"ph\" phase: %s" lineno line
      in
      let tid =
        match find_key line "tid" with
        | Some j -> (
            match int_at line j with
            | Some v -> v
            | None -> fail "line %d: unparsable tid" lineno)
        | None ->
            if ph = 'M' then -1L
            else fail "line %d: no \"tid\": %s" lineno line
      in
      if ph = 'M' then begin
        incr metas;
        let pat = "\"thread_name\"" in
        let has_thread_name =
          let plen = String.length pat in
          let rec scan k =
            k + plen <= String.length line
            && (String.sub line k plen = pat || scan (k + 1))
          in
          scan 0
        in
        if has_thread_name then incr tracks
      end
      else begin
        incr events;
        if ph = 'C' then begin
          incr counters;
          match find_key line "value" with
          | None -> fail "line %d: counter without \"value\": %s" lineno line
          | Some j -> (
              match int_at line j with
              | None -> fail "line %d: unparsable counter value" lineno
              | Some _ -> ())
        end;
        match find_key line "ts" with
        | None -> fail "line %d: event without \"ts\": %s" lineno line
        | Some j -> (
            match int_at line j with
            | None -> fail "line %d: unparsable ts" lineno
            | Some ts ->
                (match Hashtbl.find_opt last_ts tid with
                | Some prev when ts < prev ->
                    fail
                      "line %d: timestamps not monotonic on track %Ld \
                       (%Ld after %Ld)"
                      lineno tid ts prev
                | _ -> ());
                Hashtbl.replace last_ts tid ts)
      end)
    body;
  (match want_tracks with
  | Some n when !tracks <> n ->
      fail "expected %d named tracks, found %d" n !tracks
  | _ -> ());
  (match want_counters with
  | Some n when !counters < n ->
      fail "expected at least %d counter events, found %d" n !counters
  | _ -> ());
  Printf.printf
    "trace_check: OK: %d events (%d counters), %d metadata records, %d tracks\n"
    !events !counters !metas !tracks
