(* Client-library behaviour tests: the directory cache and its
   invalidation protocol, creation affinity placement, the RPC-mode data
   path, and the close-to-open visibility rules — observed through RPC
   and cache counters on a live machine. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Config = Hare_config.Config
module Client = Hare_client.Client
module Dircache = Hare_client.Dircache
module Server = Hare_server.Server

let client_of m p = (Machine.clients m).(p.P.core_id)

(* Round-robin placement starts at core 0 — the init core. Burn one slot
   so the next spawn really lands on another core. *)
let skip_own_core m p =
  Machine.register_program m "nop" (fun _ _ -> 0);
  let pid = Posix.spawn p ~prog:"nop" ~args:[] in
  ignore (Posix.waitpid p pid)

let test_dircache_saves_rpcs () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "remote-create" (fun p _ ->
      Posix.mkdir p "/dir";
      Posix.close p (Posix.creat p "/dir/file");
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        skip_own_core m p;
        let pid = Posix.spawn p ~prog:"remote-create" ~args:[] in
        (match Posix.waitpid p pid with 0 -> () | n -> Posix.exit p n);
        (* this core never saw /dir/file: the first stat pays lookup RPCs,
           the second resolves from the directory cache *)
        let c = client_of m p in
        let before = Client.rpc_count c in
        ignore (Posix.stat p "/dir/file");
        let first = Client.rpc_count c - before in
        let before = Client.rpc_count c in
        ignore (Posix.stat p "/dir/file");
        let second = Client.rpc_count c - before in
        if second >= first then Posix.exit p 10;
        if second <> 1 then Posix.exit p 11;
        if Dircache.hits (Client.dircache c) = 0 then Posix.exit p 12;
        0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "cache saves RPCs" (Some 0)
    (Machine.exit_status m init)

let test_dircache_disabled_no_savings () =
  let config =
    { (small_config ()) with Config.dir_cache = false }
  in
  ignore
    (run ~config (fun m p ->
         Posix.mkdir p "/dir";
         Posix.close p (Posix.creat p "/dir/file");
         let c = client_of m p in
         let before = Client.rpc_count c in
         ignore (Posix.stat p "/dir/file");
         let first = Client.rpc_count c - before in
         let before = Client.rpc_count c in
         ignore (Posix.stat p "/dir/file");
         let second = Client.rpc_count c - before in
         Alcotest.(check int) "same cost every time" first second;
         0))

let test_invalidation_on_remote_unlink () =
  (* A cross-core unlink must invalidate this core's cached entry: the
     next stat reports ENOENT rather than serving the stale mapping. *)
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "remote-unlink" (fun p _ ->
      Posix.unlink p "/shared/victim";
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        skip_own_core m p;
        Posix.mkdir p ~dist:true "/shared";
        Posix.close p (Posix.creat p "/shared/victim");
        ignore (Posix.stat p "/shared/victim") (* now cached *);
        let pid = Posix.spawn p ~prog:"remote-unlink" ~args:[] in
        (match Posix.waitpid p pid with 0 -> () | n -> Posix.exit p n);
        match Posix.stat p "/shared/victim" with
        | (_ : Types.attr) -> 1 (* stale cache served a dead entry! *)
        | exception Hare_proto.Errno.Error (Errno.ENOENT, _) -> 0)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "saw invalidation" (Some 0)
    (Machine.exit_status m init);
  Alcotest.(check bool) "server sent invalidations" true
    (Machine.total_invals m > 0)

let test_invalidation_on_remote_rename () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "remote-rename" (fun p _ ->
      Posix.rename p "/shared/old" "/shared/new";
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        skip_own_core m p;
        Posix.mkdir p ~dist:true "/shared";
        let fd = Posix.creat p "/shared/old" in
        ignore (Posix.write p fd "moved");
        Posix.close p fd;
        ignore (Posix.stat p "/shared/old");
        let pid = Posix.spawn p ~prog:"remote-rename" ~args:[] in
        (match Posix.waitpid p pid with 0 -> () | n -> Posix.exit p n);
        if Posix.exists p "/shared/old" then 1
        else
          let fd = Posix.openf p "/shared/new" flags_r in
          let s = Posix.read_all p fd in
          Posix.close p fd;
          if s = "moved" then 0 else 2)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "rename visible, no stale entry" (Some 0)
    (Machine.exit_status m init)

let test_creation_affinity_local_placement () =
  (* With affinity on and the entry hashing to a far server, the inode
     must land on the creating core's designated local server. *)
  let config =
    { (small_config ~ncores:4 ()) with Config.cores_per_socket = 1 }
  in
  ignore
    (run ~config (fun _m p ->
         Posix.mkdir p ~dist:true "/spread";
         (* create many files; with 1 core per socket every cross-server
            entry is "far", so every inode should live on the creator's
            local server (the init core's). *)
         for i = 1 to 16 do
           Posix.close p (Posix.creat p (Printf.sprintf "/spread/f%d" i))
         done;
         let homes =
           List.init 16 (fun i ->
               (Posix.stat p (Printf.sprintf "/spread/f%d" (i + 1))).Types.a_ino
                 .Types.server)
           |> List.sort_uniq compare
         in
         (* all inodes on at most 2 servers: the local one, plus the cases
            where the entry already hashed to it *)
         Alcotest.(check bool)
           (Format.asprintf "inodes clustered (%a)" Fmt.(list ~sep:comma int) homes)
           true
           (List.length homes <= 2);
         0))

let test_no_affinity_spreads_inodes () =
  let config =
    {
      (small_config ~ncores:4 ()) with
      Config.cores_per_socket = 1;
      creation_affinity = false;
    }
  in
  ignore
    (run ~config (fun _m p ->
         Posix.mkdir p ~dist:true "/spread";
         for i = 1 to 24 do
           Posix.close p (Posix.creat p (Printf.sprintf "/spread/f%d" i))
         done;
         let homes =
           List.init 24 (fun i ->
               (Posix.stat p (Printf.sprintf "/spread/f%d" (i + 1))).Types.a_ino
                 .Types.server)
           |> List.sort_uniq compare
         in
         Alcotest.(check bool) "inodes on several servers" true
           (List.length homes > 2);
         0))

let test_rpc_mode_io () =
  (* direct_access off: all data through Read_fd/Write_fd RPCs; same
     observable semantics. *)
  let config = { (small_config ()) with Config.direct_access = false } in
  ignore
    (run ~config (fun _m p ->
         let fd = Posix.creat p "/rpc" in
         ignore (Posix.write p fd "via the server");
         ignore (Posix.lseek p fd ~pos:4 Types.Seek_set);
         Alcotest.(check string) "positioned read" "the" (Posix.read p fd ~len:3);
         Posix.close p fd;
         let a = Posix.stat p "/rpc" in
         Alcotest.(check int) "size tracked by server" 14 a.Types.a_size;
         0))

let test_direct_mode_fewer_rpcs_than_rpc_mode () =
  let count_write_rpcs config =
    let m = Machine.boot config in
    let counted = ref 0 in
    let init, _ =
      Machine.spawn_init m ~name:"t" (fun p _ ->
          let fd = Posix.creat p "/f" in
          let before =
            Array.fold_left
              (fun acc c -> acc + Client.rpc_count c)
              0 (Machine.clients m)
          in
          for _ = 1 to 10 do
            ignore (Posix.write p fd (String.make 4096 'x'));
            ignore (Posix.lseek p fd ~pos:0 Types.Seek_set)
          done;
          counted :=
            Array.fold_left
              (fun acc c -> acc + Client.rpc_count c)
              0 (Machine.clients m)
            - before;
          Posix.close p fd;
          0)
    in
    Machine.run m;
    ignore init;
    !counted
  in
  let direct = count_write_rpcs (small_config ()) in
  let rpc =
    count_write_rpcs { (small_config ()) with Config.direct_access = false }
  in
  Alcotest.(check bool)
    (Printf.sprintf "direct(%d) << rpc-mode(%d)" direct rpc)
    true
    (direct * 3 < rpc)

let test_close_to_open_requires_close () =
  (* Data written but not yet closed/fsynced stays in the writer's
     private cache: the server still reports the old size and the shared
     DRAM still holds zeroes. close publishes both. (A fork/spawn would
     publish too — the §3.4 share semantics — so we inspect the machine
     directly rather than using a second process.) *)
  ignore
    (run (fun m p ->
         let fd = Posix.creat p "/c2o" in
         ignore (Posix.write p fd "payload!");
         Alcotest.(check int) "server size before close" 0
           (Posix.stat p "/c2o").Types.a_size;
         Posix.close p fd;
         Alcotest.(check int) "server size after close" 8
           (Posix.stat p "/c2o").Types.a_size;
         (* and the bytes are really in DRAM now *)
         let fd = Posix.openf p "/c2o" flags_r in
         Alcotest.(check string) "content" "payload!" (Posix.read_all p fd);
         Posix.close p fd;
         ignore m;
         0))

let test_fsync_publishes_without_close () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "peek" (fun p args ->
      let expect = List.hd args in
      let fd = Posix.openf p "/s" flags_r in
      let s = Posix.read_all p fd in
      Posix.close p fd;
      if s = expect then 0 else 1);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        skip_own_core m p;
        let fd = Posix.creat p "/s" in
        ignore (Posix.write p fd "synced");
        Posix.fsync p fd;
        let pid = Posix.spawn p ~prog:"peek" ~args:[ "synced" ] in
        let st = Posix.waitpid p pid in
        Posix.close p fd;
        st)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "fsync made data visible" (Some 0)
    (Machine.exit_status m init)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "client.dircache",
      [
        tc "cache saves RPCs" `Quick test_dircache_saves_rpcs;
        tc "disabled: no savings" `Quick test_dircache_disabled_no_savings;
        tc "remote unlink invalidates" `Quick test_invalidation_on_remote_unlink;
        tc "remote rename invalidates" `Quick test_invalidation_on_remote_rename;
      ] );
    ( "client.affinity",
      [
        tc "local placement" `Quick test_creation_affinity_local_placement;
        tc "off: spreads" `Quick test_no_affinity_spreads_inodes;
      ] );
    ( "client.datapath",
      [
        tc "rpc-mode io" `Quick test_rpc_mode_io;
        tc "direct saves RPCs" `Quick test_direct_mode_fewer_rpcs_than_rpc_mode;
        tc "close-to-open boundary" `Quick test_close_to_open_requires_close;
        tc "fsync publishes" `Quick test_fsync_publishes_without_close;
      ] );
  ]
