test/test_stress.ml: Alcotest Array Hare_config Hare_proto Hare_server Hare_sim Int64 List Machine Posix Printf String Test_util
