test/test_baseline.ml: Alcotest Core_res Engine Hare_api Hare_baseline Hare_config Hare_experiments Hare_proto Hare_sim List Printf String Test_util
