test/test_fs.ml: Alcotest Array Char Fmt Format Hare_proto Hare_server Hare_sim List Machine Posix Printf String Test_util
