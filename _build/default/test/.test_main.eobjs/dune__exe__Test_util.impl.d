test/test_util.ml: Alcotest Hare Hare_config Hare_proc Hare_proto Hare_sim
