test/test_workloads.ml: Alcotest Hare_config Hare_experiments Hare_workloads List Printf
