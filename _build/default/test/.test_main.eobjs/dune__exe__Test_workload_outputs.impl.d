test/test_workload_outputs.ml: Alcotest Filename Hare Hare_api Hare_config Hare_experiments Hare_proto Hare_sim Hare_workloads List Printf String
