test/test_mem.ml: Alcotest Bytes Char Core_res Dram Engine Hare_config Hare_mem Hare_sim Int64 Layout Pcache String
