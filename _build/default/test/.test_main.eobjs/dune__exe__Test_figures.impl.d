test/test_figures.ml: Alcotest Array Float Hare Hare_client Hare_config Hare_experiments Hare_workloads List Printf
