test/test_exec_chain.ml: Alcotest Buffer Hare Hare_proc Hare_proto Hare_sim Test_util
