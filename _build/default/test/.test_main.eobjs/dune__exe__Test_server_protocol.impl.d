test/test_server_protocol.ml: Alcotest Array Core_res Engine Hare_config Hare_mem Hare_msg Hare_proto Hare_server Hare_sim Ivar Test_util
