test/test_extensions.ml: Alcotest Array Char Hare_config Hare_proto Hare_server List Machine Posix Printf String Test_util
