test/test_msg.ml: Alcotest Core_res Engine Hare_config Hare_msg Hare_sim Int64 Printf
