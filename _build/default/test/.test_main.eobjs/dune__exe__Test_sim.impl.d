test/test_sim.ml: Alcotest Bqueue Condition Core_res Engine Hare_sim Heap Int64 Ivar List Printf Rng String
