test/test_misc.ml: Alcotest Buffer Filename Format Fun Hare Hare_client Hare_config Hare_proto Hare_stats Hashtbl Int64 List String Test_util
