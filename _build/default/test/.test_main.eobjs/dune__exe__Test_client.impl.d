test/test_client.ml: Alcotest Array Fmt Format Hare_client Hare_config Hare_proto Hare_server Hare_sim List Machine P Posix Printf String Test_util
