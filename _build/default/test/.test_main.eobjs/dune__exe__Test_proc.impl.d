test/test_proc.ml: Alcotest Buffer Hare_proc Hare_proto Hare_sim List Machine P Posix String Test_util
