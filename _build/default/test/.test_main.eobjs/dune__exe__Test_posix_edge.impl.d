test/test_posix_edge.ml: Alcotest Array Hare_config Hare_proto Hare_server List Machine P Posix Printf String Test_util
