(* Tests for the two implemented extensions the paper leaves open:
   block stealing (§3.2, "not implemented in our prototype") and partial
   directory distribution (§6, "distributing a directory over a subset
   of cores"). *)

open Test_util
module Config = Hare_config.Config
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Server = Hare_server.Server

(* 4 servers x 16 blocks each: one server's partition cannot hold a
   30-block file on its own. *)
let tiny_cache ?(stealing = false) () =
  let c = small_config ~ncores:4 () in
  { c with Config.buffer_cache_blocks = 64; block_stealing = stealing }

let big_write p =
  let fd = Posix.creat p "/big" in
  let chunk = String.make 4096 'S' in
  for _ = 1 to 30 do
    ignore (Posix.write p fd chunk)
  done;
  Posix.fsync p fd;
  fd

let test_enospc_without_stealing () =
  ignore
    (run ~config:(tiny_cache ()) (fun _m p ->
         expect_errno "partition dry" Errno.ENOSPC (fun () -> big_write p);
         0))

let test_stealing_avoids_enospc () =
  ignore
    (run ~config:(tiny_cache ~stealing:true ()) (fun m p ->
         let fd = big_write p in
         Posix.close p fd;
         Alcotest.(check int) "file size" (30 * 4096)
           (Posix.stat p "/big").Types.a_size;
         let stolen =
           Array.fold_left
             (fun acc s -> acc + Server.blocks_stolen s)
             0 (Machine.servers m)
         in
         Alcotest.(check bool) "blocks were stolen" true (stolen > 0);
         0))

let test_stolen_blocks_hold_data () =
  ignore
    (run ~config:(tiny_cache ~stealing:true ()) (fun _m p ->
         let fd = Posix.creat p "/data" in
         let payload i = Printf.sprintf "%04d" i ^ String.make 4092 (Char.chr (65 + (i mod 26))) in
         for i = 0 to 29 do
           ignore (Posix.write p fd (payload i))
         done;
         Posix.close p fd;
         let fd = Posix.openf p "/data" flags_r in
         for i = 0 to 29 do
           Alcotest.(check string)
             (Printf.sprintf "block %d roundtrip" i)
             (payload i)
             (Posix.read p fd ~len:4096)
         done;
         Posix.close p fd;
         0))

let test_stealing_eventually_exhausts () =
  (* Even with stealing, the machine-wide capacity is the limit. *)
  ignore
    (run ~config:(tiny_cache ~stealing:true ()) (fun _m p ->
         let fd = Posix.creat p "/huge" in
         let chunk = String.make 4096 'x' in
         expect_errno "machine dry" Errno.ENOSPC (fun () ->
             for _ = 1 to 100 do
               ignore (Posix.write p fd chunk)
             done);
         0))

let width_config w =
  { (small_config ~ncores:4 ()) with Config.dist_width = Some w }

let test_width_bounds_shards () =
  ignore
    (run ~config:(width_config 2) (fun m p ->
         Posix.mkdir p ~dist:true "/wide";
         for i = 1 to 40 do
           Posix.close p (Posix.creat p (Printf.sprintf "/wide/f%02d" i))
         done;
         let dir_ino = (Posix.stat p "/wide").Types.a_ino in
         let populated =
           Array.to_list (Machine.servers m)
           |> List.filter (fun s -> Server.shard_entries s dir_ino <> [])
         in
         Alcotest.(check bool)
           (Printf.sprintf "%d shards (want <= 2, > 1)" (List.length populated))
           true
           (List.length populated = 2);
         0))

let test_width_readdir_complete () =
  ignore
    (run ~config:(width_config 2) (fun _m p ->
         Posix.mkdir p ~dist:true "/w";
         for i = 1 to 25 do
           Posix.close p (Posix.creat p (Printf.sprintf "/w/f%02d" i))
         done;
         let names =
           Posix.readdir p "/w"
           |> List.map (fun e -> e.Hare_proto.Wire.e_name)
           |> List.sort compare
         in
         Alcotest.(check int) "all entries listed" 25 (List.length names);
         for i = 1 to 25 do
           Posix.unlink p (Printf.sprintf "/w/f%02d" i)
         done;
         Posix.rmdir p "/w";
         expect_errno "gone" Errno.ENOENT (fun () -> Posix.stat p "/w");
         0))

let test_width_one_still_works () =
  ignore
    (run ~config:(width_config 1) (fun _m p ->
         Posix.mkdir p ~dist:true "/one";
         Posix.close p (Posix.creat p "/one/a");
         Posix.rename p "/one/a" "/one/b";
         Alcotest.(check bool) "visible" true (Posix.exists p "/one/b");
         Posix.unlink p "/one/b";
         Posix.rmdir p "/one";
         0))

let test_width_rmdir_nonempty () =
  ignore
    (run ~config:(width_config 2) (fun _m p ->
         Posix.mkdir p ~dist:true "/d";
         Posix.close p (Posix.creat p "/d/keep");
         expect_errno "not empty" Errno.ENOTEMPTY (fun () -> Posix.rmdir p "/d");
         Posix.unlink p "/d/keep";
         Posix.rmdir p "/d";
         0))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "ext.stealing",
      [
        tc "ENOSPC without stealing" `Quick test_enospc_without_stealing;
        tc "stealing avoids ENOSPC" `Quick test_stealing_avoids_enospc;
        tc "stolen blocks hold data" `Quick test_stolen_blocks_hold_data;
        tc "machine-wide limit remains" `Quick test_stealing_eventually_exhausts;
      ] );
    ( "ext.dist-width",
      [
        tc "shards bounded by width" `Quick test_width_bounds_shards;
        tc "readdir complete" `Quick test_width_readdir_complete;
        tc "width 1" `Quick test_width_one_still_works;
        tc "rmdir nonempty" `Quick test_width_rmdir_nonempty;
      ] );
  ]
