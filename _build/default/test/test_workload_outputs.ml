(* Output-correctness tests for the benchmarks: beyond "it ran", check
   that the file-system state each workload leaves behind is the right
   one — extract reproduced the archive, the build produced every object,
   mailbench's spool balances, punzip expanded by the right factor. *)

module Spec = Hare_workloads.Spec
module Api = Hare_api.Api
module Driver = Hare_experiments.Driver
module World = Hare_experiments.World
module Config = Hare_config.Config
module Types = Hare_proto.Types

let config = Driver.default_config ~ncores:4

(* a world-polymorphic verification body *)
type verifier = { f : 'w. 'w Api.t -> 'w -> int }

(* Run spec's setup + workers like the driver, then run [verify] in the
   same init process and return its exit status. *)
let run_and_verify (spec : Spec.t) ~nprocs (verify : verifier) =
  let m = Hare.Machine.boot { config with Config.exec_policy = spec.Spec.exec_policy } in
  let api = World.Hare_w.api m in
  List.iter
    (fun (prog, body) -> api.Api.register_program prog body)
    (spec.Spec.programs api);
  api.Api.register_program "bench-worker" (fun p args ->
      let idx = int_of_string (List.hd args) in
      spec.Spec.worker api p ~idx ~nprocs ~scale:1;
      0);
  let init =
    World.Hare_w.spawn_init m ~name:"verify" (fun p ->
        spec.Spec.setup api p ~nprocs ~scale:1;
        let workers =
          match spec.Spec.mode with Spec.Workers -> nprocs | Spec.Make -> 1
        in
        let pids =
          List.init workers (fun i ->
              api.Api.spawn p ~prog:"bench-worker" ~args:[ string_of_int i ])
        in
        let failed =
          List.fold_left
            (fun acc pid -> if api.Api.waitpid p pid <> 0 then acc + 1 else acc)
            0 pids
        in
        if failed > 0 then 90 + failed else verify.f api p)
  in
  (match World.Hare_w.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "verification" (Some 0)
    (World.Hare_w.exit_status m init)

let ls api p dir = api.Api.readdir p dir

let test_build_produces_everything () =
  run_and_verify Hare_workloads.Build_linux.spec ~nprocs:4
    { f =
        (fun api p ->
          if not (api.Api.exists p "/src/vmlinux") then 1
          else begin
            (* every source has its object, and no .tmp files survive *)
            let bad = ref 0 in
            for d = 0 to 7 do
              let dir = Printf.sprintf "/src/d%d" d in
              let entries = ls api p dir in
              let count suffix =
                List.length
                  (List.filter
                     (fun (n, _) -> Filename.check_suffix n suffix)
                     entries)
              in
              if count ".c" <> count ".o" then incr bad;
              if count ".tmp" <> 0 then incr bad
            done;
            !bad
          end);
    }

let test_extract_reproduces_archive () =
  run_and_verify Hare_workloads.Extract.spec ~nprocs:3
    { f =
        (fun api p ->
          (* every extracted file has the expected deterministic bytes *)
          let bad = ref 0 and seen = ref 0 in
          List.iter
            (fun (w, wt) ->
              if wt = Types.Dir then
                List.iter
                  (fun (d, dt) ->
                    if dt = Types.Dir then
                      List.iter
                        (fun (f, _) ->
                          incr seen;
                          let path =
                            Printf.sprintf "/extract/%s/%s/%s" w d f
                          in
                          let idx = int_of_string (String.sub f 1 4) in
                          let fd = api.Api.openf p path Types.flags_r in
                          let s = Api.read_to_eof api p fd in
                          api.Api.close p fd;
                          if s <> Hare_workloads.Tree.file_data 2048 idx then
                            incr bad)
                        (ls api p (Printf.sprintf "/extract/%s/%s" w d)))
                  (ls api p ("/extract/" ^ w)))
            (ls api p "/extract");
          if !seen = 48 && !bad = 0 then 0 else 1);
    }

let test_mailbench_spool_balance () =
  run_and_verify Hare_workloads.Mailbench.spec ~nprocs:3
    { f =
        (fun api p ->
          (* tmp is empty (every message was delivered); new holds the
             deliveries minus the pickups (every 8th is picked up) *)
          let tmp = ls api p "/mail/tmp" in
          let fresh = ls api p "/mail/new" in
          let iters = 100 in
          let expected = 3 * (iters - (iters / 8)) in
          if tmp = [] && List.length fresh = expected then 0 else 1);
    }

let test_punzip_expansion () =
  run_and_verify Hare_workloads.Punzip.spec ~nprocs:2
    { f =
        (fun api p ->
          let ok = ref 0 in
          for i = 0 to 1 do
            let a = api.Api.stat p (Printf.sprintf "/man/pack%d.gz" i) in
            let b = api.Api.stat p (Printf.sprintf "/man/out%d" i) in
            if b.Types.a_size = 3 * a.Types.a_size then incr ok
          done;
          if !ok = 2 then 0 else 1);
    }

let test_rm_leaves_nothing () =
  run_and_verify Hare_workloads.Rm.dense ~nprocs:4
    { f = (fun api p -> if api.Api.exists p "/rmtree" then 1 else 0) }

let test_writes_content () =
  run_and_verify Hare_workloads.Writes.spec ~nprocs:2
    { f =
        (fun api p ->
          (* the file wraps every 64 chunks: final size is 64 * 4096, and
             any chunk equals the worker's deterministic pattern *)
          let a = api.Api.stat p "/writes/w0" in
          if a.Types.a_size <> 64 * 4096 then 1
          else begin
            let fd = api.Api.openf p "/writes/w0" Types.flags_r in
            ignore (api.Api.lseek p fd ~pos:(17 * 4096) Types.Seek_set);
            let chunk = api.Api.read p fd ~len:4096 in
            api.Api.close p fd;
            if chunk = Hare_workloads.Tree.file_data 4096 0 then 0 else 2
          end);
    }

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "workload-outputs",
      [
        tc "build: all objects + vmlinux" `Quick test_build_produces_everything;
        tc "extract: bytes reproduced" `Quick test_extract_reproduces_archive;
        tc "mailbench: spool balances" `Quick test_mailbench_spool_balance;
        tc "punzip: 3x expansion" `Quick test_punzip_expansion;
        tc "rm: tree fully gone" `Quick test_rm_leaves_nothing;
        tc "writes: wrapped content" `Quick test_writes_content;
      ] );
  ]
