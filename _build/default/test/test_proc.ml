(* Process-management tests: fork with shared descriptors (§3.4), pipes,
   remote exec with proxies (§3.5), wait and signals. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno

let test_fork_wait () =
  ignore
    (run (fun _m p ->
         let pid = Posix.fork p (fun _child -> 42) in
         Alcotest.(check int) "status" 42 (Posix.waitpid p pid);
         0))

let test_fork_shared_offset () =
  (* The paper's canonical case: a file descriptor shared across fork must
     keep one offset for both processes. *)
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/log" in
         ignore (Posix.write p fd "parent-1 ");
         let pid =
           Posix.fork p (fun child ->
               ignore (Posix.write child fd "child-1 ");
               ignore (Posix.write child fd "child-2 ");
               0)
         in
         ignore (Posix.waitpid p pid);
         ignore (Posix.write p fd "parent-2");
         Posix.close p fd;
         let fd = Posix.openf p "/log" flags_r in
         let s = Posix.read_all p fd in
         Posix.close p fd;
         Alcotest.(check string) "no overwrites"
           "parent-1 child-1 child-2 parent-2" s;
         0))

let test_fork_shared_read_offset () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/data" in
         ignore (Posix.write p fd "aabbcc");
         Posix.close p fd;
         let fd = Posix.openf p "/data" flags_r in
         let child_got = Buffer.create 4 in
         let pid =
           Posix.fork p (fun child ->
               Buffer.add_string child_got (Posix.read child fd ~len:2);
               0)
         in
         ignore (Posix.waitpid p pid);
         let parent_got = Posix.read p fd ~len:2 in
         Posix.close p fd;
         Alcotest.(check string) "child read first pair" "aa"
           (Buffer.contents child_got);
         Alcotest.(check string) "parent continues at shared offset" "bb"
           parent_got;
         0))

let test_offset_demotion_after_child_exit () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/demote" in
         ignore (Posix.write p fd "0123456789");
         let pid = Posix.fork p (fun _child -> 0) in
         ignore (Posix.waitpid p pid);
         (* Child's exit closed its copy; our next operations go through
            the server once, then migrate back to local mode. Everything
            must stay consistent either way. *)
         ignore (Posix.lseek p fd ~pos:2 Types.Seek_set);
         Alcotest.(check string) "post-demotion read" "2345"
           (Posix.read p fd ~len:4);
         Alcotest.(check string) "second read local" "6789"
           (Posix.read p fd ~len:4);
         Posix.close p fd;
         0))

let test_pipe_basic () =
  ignore
    (run (fun _m p ->
         let rfd, wfd = Posix.pipe p in
         ignore (Posix.write p wfd "through the pipe");
         Alcotest.(check string) "data" "through the pipe"
           (Posix.read p rfd ~len:100);
         Posix.close p wfd;
         Alcotest.(check string) "EOF after writer close" ""
           (Posix.read p rfd ~len:10);
         Posix.close p rfd;
         0))

let test_pipe_blocking_reader () =
  ignore
    (run (fun _m p ->
         let rfd, wfd = Posix.pipe p in
         let pid =
           Posix.fork p (fun child ->
               (* Reader blocks until the parent writes. *)
               let s = Posix.read child rfd ~len:5 in
               Posix.close child rfd;
               Posix.close child wfd;
               if s = "hello" then 0 else 1)
         in
         ignore (Posix.write p wfd "hello");
         let st = Posix.waitpid p pid in
         Alcotest.(check int) "reader saw data" 0 st;
         Posix.close p rfd;
         Posix.close p wfd;
         0))

let test_pipe_epipe () =
  ignore
    (run (fun _m p ->
         let rfd, wfd = Posix.pipe p in
         Posix.close p rfd;
         expect_errno "EPIPE" Errno.EPIPE (fun () -> Posix.write p wfd "x");
         Posix.close p wfd;
         0))

let test_pipe_capacity_blocks_writer () =
  ignore
    (run (fun _m p ->
         let rfd, wfd = Posix.pipe p in
         let chunk = String.make 40_000 'z' in
         let pid =
           Posix.fork p (fun child ->
               (* Two 40k writes exceed the 64k pipe buffer: the second
                  blocks until the parent drains. *)
               ignore (Posix.write child wfd chunk);
               ignore (Posix.write child wfd chunk);
               Posix.close child wfd;
               Posix.close child rfd;
               0)
         in
         let total = ref 0 in
         while !total < 80_000 do
           let s = Posix.read p rfd ~len:8192 in
           if s = "" then total := max_int else total := !total + String.length s
         done;
         Alcotest.(check int) "drained both chunks" 80_000 !total;
         ignore (Posix.waitpid p pid);
         Posix.close p rfd;
         Posix.close p wfd;
         0))

let test_exec_runs_on_other_core () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  let where = ref (-1) in
  Machine.register_program m "whoami" (fun p _ ->
      where := p.P.core_id;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        (* Round-robin placement: consecutive execs land on different
           cores. *)
        let pid1 = Posix.spawn p ~prog:"whoami" ~args:[] in
        ignore (Posix.waitpid p pid1);
        let first = !where in
        let pid2 = Posix.spawn p ~prog:"whoami" ~args:[] in
        ignore (Posix.waitpid p pid2);
        if first <> !where then 0 else 1)
  in
  Machine.run m;
  Alcotest.(check (option int)) "placement spread" (Some 0)
    (Machine.exit_status m init)

let test_exec_console_relay () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "greeter" (fun p args ->
      Posix.print p ("hello from " ^ String.concat "," args);
      0);
  let init, console =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        let pid = Posix.spawn p ~prog:"greeter" ~args:[ "afar" ] in
        Posix.waitpid p pid)
  in
  Machine.run m;
  Alcotest.(check (option int)) "status" (Some 0) (Machine.exit_status m init);
  Alcotest.(check string) "output relayed through proxy" "hello from afar"
    (Buffer.contents console)

let test_exec_unknown_program () =
  ignore
    (run (fun _m p ->
         let pid = Posix.spawn p ~prog:"no-such-binary" ~args:[] in
         let st = Posix.waitpid p pid in
         (* the child's exec fails; the child exits nonzero *)
         Alcotest.(check bool) "nonzero" true (st <> 0);
         0))

let test_exec_inherits_fds_and_cwd () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "appender" (fun p _ ->
      (* fd 3 was opened by the parent before exec; cwd was /work. *)
      ignore (Posix.write p 3 "+exec");
      Posix.close p 3;
      if Posix.getcwd p = "/work" && Posix.exists p "marker" then 0 else 1);
  let init, _ =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        Posix.mkdir p "/work";
        Posix.chdir p "/work";
        Posix.close p (Posix.creat p "marker");
        let fd = Posix.creat p "/work/out" in
        Alcotest.(check int) "fd number" 3 fd;
        ignore (Posix.write p fd "parent");
        let pid = Posix.spawn p ~prog:"appender" ~args:[] in
        let st = Posix.waitpid p pid in
        Posix.close p fd;
        let fd = Posix.openf p "/work/out" flags_r in
        let s = Posix.read_all p fd in
        Posix.close p fd;
        Alcotest.(check string) "shared offset across exec" "parent+exec" s;
        st)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "status" (Some 0) (Machine.exit_status m init)

let test_exec_pipe_jobserver_idiom () =
  (* The make jobserver pattern (§5.2): a token pipe shared between a
     parent and its remotely exec'd children. *)
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "jobworker" (fun p _ ->
      (* Take a token, "work", return the token. *)
      let tok = Posix.read p 3 ~len:1 in
      if tok = "" then 1
      else begin
        Posix.compute p 1000;
        ignore (Posix.write p 4 tok);
        0
      end);
  let init, _ =
    Machine.spawn_init m ~name:"make" (fun p _ ->
        let rfd, wfd = Posix.pipe p in
        Alcotest.(check (pair int int)) "pipe fds" (3, 4) (rfd, wfd);
        (* two job slots *)
        ignore (Posix.write p wfd "ab");
        let pids =
          List.init 4 (fun _ -> Posix.spawn p ~prog:"jobworker" ~args:[])
        in
        let bad = List.filter (fun pid -> Posix.waitpid p pid <> 0) pids in
        (* both tokens must have come back *)
        let back = Posix.read p rfd ~len:2 in
        Posix.close p rfd;
        Posix.close p wfd;
        if bad = [] && String.length back = 2 then 0 else 1)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "jobserver ran" (Some 0)
    (Machine.exit_status m init)

let test_wait_any () =
  ignore
    (run (fun _m p ->
         let a = Posix.fork p (fun _ -> 1) in
         let b = Posix.fork p (fun _ -> 2) in
         let p1, s1 = Posix.wait p in
         let p2, s2 = Posix.wait p in
         let got = List.sort compare [ (p1, s1); (p2, s2) ] in
         Alcotest.(check (list (pair int int)))
           "both reaped"
           (List.sort compare [ (a, 1); (b, 2) ])
           got;
         expect_errno "no more children" Errno.ECHILD (fun () -> Posix.wait p);
         0))

let test_waitpid_out_of_order () =
  ignore
    (run (fun _m p ->
         let fast = Posix.fork p (fun _ -> 10) in
         let slow =
           Posix.fork p (fun c ->
               Posix.compute c 100_000;
               20)
         in
         (* Wait for the slow one first; the fast one's status must not be
            lost. *)
         Alcotest.(check int) "slow" 20 (Posix.waitpid p slow);
         Alcotest.(check int) "fast (stashed)" 10 (Posix.waitpid p fast);
         0))

let test_signal_handler () =
  ignore
    (run (fun _m p ->
         let got = ref 0 in
         let child =
           Posix.fork p (fun c ->
               Hare_proc.Process.install_handler c ~signal:10 (fun s -> got := s);
               (* Wait until the signal arrives. *)
               while !got = 0 do
                 Posix.compute c 1000
               done;
               0)
         in
         Posix.compute p 5_000;
         Posix.kill p child 10;
         Alcotest.(check int) "child saw handler" 0 (Posix.waitpid p child);
         Alcotest.(check int) "signal number" 10 !got;
         0))

let test_signal_kill_default () =
  ignore
    (run (fun _m p ->
         let child =
           Posix.fork p (fun c ->
               while not c.P.killed do
                 Posix.compute c 1000
               done;
               7)
         in
         Posix.compute p 5_000;
         Posix.kill p child Hare_proc.Process.sigterm;
         Alcotest.(check int) "terminated" 7 (Posix.waitpid p child);
         0))

let test_signal_relay_through_proxy () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "patient" (fun p _ ->
      while not p.P.killed do
        Posix.compute p 1000
      done;
      3);
  let init, _ =
    Machine.spawn_init m ~name:"init" (fun p _ ->
        (* fork a child that execs remotely; signal the *proxy* pid we
           know — the proxy must relay to the real process (§3.5). *)
        let proxy_pid = Posix.spawn p ~prog:"patient" ~args:[] in
        Posix.compute p 50_000;
        Posix.kill p proxy_pid Hare_proc.Process.sigterm;
        Posix.waitpid p proxy_pid)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "relayed kill" (Some 3)
    (Machine.exit_status m init)

let test_esrch () =
  ignore
    (run (fun _m p ->
         expect_errno "no such pid" Errno.ESRCH (fun () ->
             Posix.kill p 999_999_999 9);
         0))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "proc.fork",
      [
        tc "fork + waitpid" `Quick test_fork_wait;
        tc "shared write offset" `Quick test_fork_shared_offset;
        tc "shared read offset" `Quick test_fork_shared_read_offset;
        tc "offset demotion" `Quick test_offset_demotion_after_child_exit;
      ] );
    ( "proc.pipe",
      [
        tc "basic + EOF" `Quick test_pipe_basic;
        tc "blocking reader" `Quick test_pipe_blocking_reader;
        tc "EPIPE" `Quick test_pipe_epipe;
        tc "capacity backpressure" `Quick test_pipe_capacity_blocks_writer;
      ] );
    ( "proc.exec",
      [
        tc "placement across cores" `Quick test_exec_runs_on_other_core;
        tc "console relay" `Quick test_exec_console_relay;
        tc "unknown program" `Quick test_exec_unknown_program;
        tc "fds + cwd inherited" `Quick test_exec_inherits_fds_and_cwd;
        tc "jobserver idiom" `Quick test_exec_pipe_jobserver_idiom;
      ] );
    ( "proc.wait",
      [
        tc "wait any" `Quick test_wait_any;
        tc "waitpid out of order" `Quick test_waitpid_out_of_order;
      ] );
    ( "proc.signal",
      [
        tc "handler" `Quick test_signal_handler;
        tc "default kill" `Quick test_signal_kill_default;
        tc "proxy relay" `Quick test_signal_relay_through_proxy;
        tc "ESRCH" `Quick test_esrch;
      ] );
  ]
