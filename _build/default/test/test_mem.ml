(* Tests for the non-coherent memory system: the crux is that staleness is
   real — data written by one core is invisible to another until written
   back, and a core can read a stale private copy after DRAM changed. *)

open Hare_sim
open Hare_mem

let costs = Hare_config.Costs.default

let with_engine f =
  let e = Engine.create () in
  let failure = ref None in
  ignore
    (Engine.spawn e ~name:"test" (fun () ->
         try f e with exn -> failure := Some exn));
  Engine.run e;
  match !failure with Some exn -> raise exn | None -> ()

let mk_core e id = Core_res.create e ~id ~socket:(id / 2) ~ctx_switch:0

let mk_pcache ?(capacity = 1024) e id dram =
  Pcache.create dram ~core:(mk_core e id) ~costs ~capacity_lines:capacity

let test_dram_roundtrip () =
  let d = Dram.create ~nblocks:4 in
  let src = Bytes.make Layout.line_size 'x' in
  Dram.write_line d ~block:2 ~line:3 ~src ~src_off:0;
  let dst = Bytes.make Layout.line_size ' ' in
  Dram.read_line d ~block:2 ~line:3 ~dst ~dst_off:0;
  Alcotest.(check string) "roundtrip" (Bytes.to_string src) (Bytes.to_string dst);
  Alcotest.(check string)
    "unsafe view" "xxxx"
    (Dram.unsafe_read d ~block:2 ~off:(3 * 64) ~len:4)

let test_dram_zero () =
  let d = Dram.create ~nblocks:2 in
  let src = Bytes.make Layout.line_size 'q' in
  Dram.write_line d ~block:1 ~line:0 ~src ~src_off:0;
  Dram.zero_block d ~block:1;
  Alcotest.(check string) "zeroed" (String.make 4 '\000')
    (Dram.unsafe_read d ~block:1 ~off:0 ~len:4)

let test_dram_bounds () =
  let d = Dram.create ~nblocks:2 in
  let b = Bytes.create Layout.line_size in
  Alcotest.check_raises "bad block" (Invalid_argument "Dram: block 5 out of range")
    (fun () -> Dram.read_line d ~block:5 ~line:0 ~dst:b ~dst_off:0)

let test_pcache_roundtrip () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:4 in
      let p = mk_pcache e 0 d in
      Pcache.write_string p ~block:1 ~off:100 "hello world";
      let s = Pcache.read_string p ~block:1 ~off:100 ~len:11 in
      Alcotest.(check string) "read own write" "hello world" s)

let test_pcache_dirty_not_in_dram () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:4 in
      let p = mk_pcache e 0 d in
      Pcache.write_string p ~block:0 ~off:0 "secret";
      (* Non-coherence: DRAM still has zeroes until write-back. *)
      Alcotest.(check string) "dram stale" (String.make 6 '\000')
        (Dram.unsafe_read d ~block:0 ~off:0 ~len:6);
      Pcache.writeback_block p 0;
      Alcotest.(check string) "dram fresh" "secret"
        (Dram.unsafe_read d ~block:0 ~off:0 ~len:6))

let test_pcache_stale_read_other_core () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:4 in
      let writer = mk_pcache e 0 d in
      let reader = mk_pcache e 1 d in
      (* Reader caches the (zero) line first. *)
      let (_ : string) = Pcache.read_string reader ~block:0 ~off:0 ~len:4 in
      Pcache.write_string writer ~block:0 ~off:0 "new!";
      Pcache.writeback_block writer 0;
      (* Without invalidation the reader sees its stale copy... *)
      Alcotest.(check string) "stale" (String.make 4 '\000')
        (Pcache.read_string reader ~block:0 ~off:0 ~len:4);
      (* ...and with invalidation (Hare's open-time action) the fresh one. *)
      Pcache.invalidate_block reader 0;
      Alcotest.(check string) "fresh after invalidate" "new!"
        (Pcache.read_string reader ~block:0 ~off:0 ~len:4))

let test_pcache_invalidate_discards_dirty () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:2 in
      let p = mk_pcache e 0 d in
      Pcache.write_string p ~block:0 ~off:0 "gone";
      Pcache.invalidate_block p 0;
      Alcotest.(check string) "dirty data lost" (String.make 4 '\000')
        (Pcache.read_string p ~block:0 ~off:0 ~len:4))

let test_pcache_eviction_writes_back () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:64 in
      (* Tiny cache: 4 lines. *)
      let p = mk_pcache ~capacity:4 e 0 d in
      Pcache.write_string p ~block:0 ~off:0 "evictme";
      (* Touch enough other lines to force the dirty line out. *)
      for b = 1 to 8 do
        ignore (Pcache.read_string p ~block:b ~off:0 ~len:1)
      done;
      Alcotest.(check string) "dirty eviction reached dram" "evictme"
        (Dram.unsafe_read d ~block:0 ~off:0 ~len:7);
      let st = Pcache.stats p in
      Alcotest.(check bool) "evictions happened" true (st.Pcache.evictions > 0);
      Alcotest.(check bool) "capacity respected" true
        (Pcache.resident_lines p <= 4))

let test_pcache_costs_hit_vs_miss () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:4 in
      let core = mk_core e 0 in
      let p = Pcache.create d ~core ~costs ~capacity_lines:64 in
      let t0 = Engine.now e in
      ignore (Pcache.read_string p ~block:0 ~off:0 ~len:64);
      let miss_cost = Int64.sub (Engine.now e) t0 in
      let t1 = Engine.now e in
      ignore (Pcache.read_string p ~block:0 ~off:0 ~len:64);
      let hit_cost = Int64.sub (Engine.now e) t1 in
      Alcotest.(check bool) "miss slower than hit" true (miss_cost > hit_cost);
      Alcotest.(check int64) "hit cost"
        (Int64.of_int costs.cache_hit_line)
        hit_cost)

let test_pcache_numa_cost () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:4 in
      let core = mk_core e 0 in
      (* core 0 is socket 0; blocks 0-1 local, 2-3 remote. *)
      let p =
        Pcache.create d ~core ~costs ~capacity_lines:64
          ~block_socket:(fun b -> if b < 2 then 0 else 1)
      in
      let t0 = Engine.now e in
      ignore (Pcache.read_string p ~block:0 ~off:0 ~len:1);
      let local = Int64.sub (Engine.now e) t0 in
      let t1 = Engine.now e in
      ignore (Pcache.read_string p ~block:2 ~off:0 ~len:1);
      let remote = Int64.sub (Engine.now e) t1 in
      Alcotest.(check int64) "remote penalty"
        (Int64.add local (Int64.of_int costs.dram_cross_socket_line))
        remote)

let test_pcache_coherent_sees_remote_writes () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:2 in
      let a = mk_pcache e 0 d in
      let b = mk_pcache e 1 d in
      (* Both cores cache the line; coherent ops stay consistent without
         explicit invalidation (the ramfs baseline's model). *)
      let buf = Bytes.create 4 in
      Pcache.read_coherent b ~block:0 ~off:0 ~len:4 ~dst:buf ~dst_off:0;
      Pcache.write_coherent a ~block:0 ~off:0 ~len:4
        ~src:(Bytes.of_string "ping") ~src_off:0;
      Pcache.read_coherent b ~block:0 ~off:0 ~len:4 ~dst:buf ~dst_off:0;
      Alcotest.(check string) "coherent read" "ping" (Bytes.to_string buf))

let test_pcache_cross_line_ranges () =
  with_engine (fun e ->
      let d = Dram.create ~nblocks:2 in
      let p = mk_pcache e 0 d in
      let data = String.init 300 (fun i -> Char.chr (i mod 256)) in
      Pcache.write_string p ~block:0 ~off:50 data;
      let back = Pcache.read_string p ~block:0 ~off:50 ~len:300 in
      Alcotest.(check string) "spans lines" data back)

let test_layout_lines_touched () =
  Alcotest.(check (pair int int)) "one line" (0, 0) (Layout.lines_touched ~off:0 ~len:64);
  Alcotest.(check (pair int int)) "straddle" (0, 1) (Layout.lines_touched ~off:63 ~len:2);
  Alcotest.(check (pair int int)) "last" (63, 63)
    (Layout.lines_touched ~off:(Layout.block_size - 1) ~len:1);
  Alcotest.check_raises "escape"
    (Invalid_argument "Layout.lines_touched: range escapes block") (fun () ->
      ignore (Layout.lines_touched ~off:(Layout.block_size - 1) ~len:2))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "mem.dram",
      [
        tc "roundtrip" `Quick test_dram_roundtrip;
        tc "zero block" `Quick test_dram_zero;
        tc "bounds" `Quick test_dram_bounds;
      ] );
    ( "mem.pcache",
      [
        tc "roundtrip" `Quick test_pcache_roundtrip;
        tc "dirty not in dram" `Quick test_pcache_dirty_not_in_dram;
        tc "stale read on other core" `Quick test_pcache_stale_read_other_core;
        tc "invalidate discards dirty" `Quick test_pcache_invalidate_discards_dirty;
        tc "eviction writes back" `Quick test_pcache_eviction_writes_back;
        tc "hit cheaper than miss" `Quick test_pcache_costs_hit_vs_miss;
        tc "numa penalty" `Quick test_pcache_numa_cost;
        tc "coherent mode" `Quick test_pcache_coherent_sees_remote_writes;
        tc "cross-line ranges" `Quick test_pcache_cross_line_ranges;
      ] );
    ("mem.layout", [ tc "lines touched" `Quick test_layout_lines_touched ]);
  ]
