(* Concurrency stress: many processes racing on the same names — the
   situations the three-phase rmdir protocol, the deferred-reuse rule and
   the invalidation protocol exist for. Success criteria: the simulation
   terminates (no deadlock), errors are only the POSIX-expected ones, and
   the final state is internally consistent (readdir agrees with stat,
   no leaked server-side fd state, all blocks recovered). *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Config = Hare_config.Config
module Server = Hare_server.Server

let tolerate f =
  try
    f ();
    true
  with
  | Errno.Error
      ( ( Errno.ENOENT | Errno.EEXIST | Errno.ENOTEMPTY | Errno.EISDIR
        | Errno.ENOTDIR | Errno.EBUSY ),
        _ ) ->
      false

let check_quiescent m =
  let tokens =
    Array.fold_left (fun acc s -> acc + Server.open_tokens s) 0 (Machine.servers m)
  in
  Alcotest.(check int) "no leaked fd tokens" 0 tokens

let test_create_unlink_storm () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "storm" (fun p args ->
      let seed = int_of_string (List.hd args) in
      let rng = Hare_sim.Rng.create ~seed:(Int64.of_int seed) in
      for i = 1 to 60 do
        let name = Printf.sprintf "/arena/n%d" (Hare_sim.Rng.int rng 8) in
        match Hare_sim.Rng.int rng 4 with
        | 0 ->
            ignore
              (tolerate (fun () ->
                   let fd =
                     Posix.openf p name { Types.flags_w with excl = true }
                   in
                   ignore (Posix.write p fd (string_of_int i));
                   Posix.close p fd))
        | 1 -> ignore (tolerate (fun () -> Posix.unlink p name))
        | 2 ->
            ignore
              (tolerate (fun () ->
                   Posix.rename p name
                     (Printf.sprintf "/arena/r%d" (Hare_sim.Rng.int rng 8))))
        | _ ->
            ignore
              (tolerate (fun () ->
                   let fd = Posix.openf p name Types.flags_r in
                   ignore (Posix.read_all p fd);
                   Posix.close p fd))
      done;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        Posix.mkdir p ~dist:true "/arena";
        let pids =
          List.init 8 (fun i ->
              Posix.spawn p ~prog:"storm" ~args:[ string_of_int (i + 1) ])
        in
        let bad = List.filter (fun pid -> Posix.waitpid p pid <> 0) pids in
        if bad <> [] then 1
        else begin
          (* consistency: every listed name stats; stat count = listing *)
          let entries = Posix.readdir p "/arena" in
          let ok =
            List.for_all
              (fun (e : Hare_proto.Wire.entry) ->
                match Posix.stat p ("/arena/" ^ e.Hare_proto.Wire.e_name) with
                | (_ : Types.attr) -> true
                | exception Errno.Error (Errno.ENOENT, _) -> false)
              entries
          in
          if ok then 0 else 2
        end)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "storm consistent" (Some 0)
    (Machine.exit_status m init);
  check_quiescent m

let test_rmdir_create_races () =
  (* Workers fight over one directory name: some mkdir/rmdir it, others
     try to create files inside it. The three-phase protocol must keep
     this linearizable-enough: no hangs, no orphaned entries. *)
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "dir-fighter" (fun p args ->
      let seed = int_of_string (List.hd args) in
      let rng = Hare_sim.Rng.create ~seed:(Int64.of_int seed) in
      for _ = 1 to 40 do
        match Hare_sim.Rng.int rng 3 with
        | 0 -> ignore (tolerate (fun () -> Posix.mkdir p ~dist:true "/battle"))
        | 1 -> ignore (tolerate (fun () -> Posix.rmdir p "/battle"))
        | _ ->
            ignore
              (tolerate (fun () ->
                   let name =
                     Printf.sprintf "/battle/f%d" (Hare_sim.Rng.int rng 4)
                   in
                   let fd = Posix.openf p name Types.flags_w in
                   Posix.close p fd;
                   (* remove it again so rmdir can sometimes win *)
                   ignore (tolerate (fun () -> Posix.unlink p name))))
      done;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pids =
          List.init 6 (fun i ->
              Posix.spawn p ~prog:"dir-fighter" ~args:[ string_of_int (i + 17) ])
        in
        let bad = List.filter (fun pid -> Posix.waitpid p pid <> 0) pids in
        if bad <> [] then 1
        else begin
          (* whatever survived must be a consistent tree we can remove *)
          (if Posix.exists p "/battle" then begin
             List.iter
               (fun (e : Hare_proto.Wire.entry) ->
                 ignore
                   (tolerate (fun () ->
                        Posix.unlink p ("/battle/" ^ e.Hare_proto.Wire.e_name))))
               (Posix.readdir p "/battle");
             Posix.rmdir p "/battle"
           end);
          0
        end)
  in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e);
  Alcotest.(check (option int)) "races resolved" (Some 0)
    (Machine.exit_status m init);
  check_quiescent m;
  (* every inode except the root must be gone *)
  let inodes =
    Array.fold_left (fun acc s -> acc + Server.inode_count s) 0 (Machine.servers m)
  in
  Alcotest.(check int) "only root inode left" 1 inodes

let test_shared_fd_storm () =
  (* A deep fork tree all appending through one shared descriptor: the
     refcount/offset protocol must keep every write intact. *)
  ignore
    (run (fun m p ->
         let fd = Posix.creat p "/ledger" in
         let rec spawn_writers proc depth =
           if depth = 0 then 0
           else begin
             let kids =
               List.init 2 (fun _ ->
                   Posix.fork proc (fun c ->
                       ignore (Posix.write c fd "x");
                       spawn_writers c (depth - 1)))
             in
             ignore (Posix.write proc fd "x");
             List.fold_left
               (fun acc pid -> acc + Posix.waitpid proc pid)
               0 kids
           end
         in
         let bad = spawn_writers p 4 in
         Posix.close p fd;
         Alcotest.(check int) "all children ok" 0 bad;
         (* writes: every process wrote exactly one byte at the shared
            offset; the file must contain exactly that many bytes *)
         let a = Posix.stat p "/ledger" in
         (* every spawned child writes once in its closure and every
            spawn_writers invocation with depth>0 writes once:
            W(d) = 1 + 2*(1 + W(d-1)), W(0) = 0  =>  W(4) = 45 *)
         Alcotest.(check int) "no lost appends" 45 a.Types.a_size;
         ignore m;
         0))

let test_deep_path_stress () =
  ignore
    (run (fun _m p ->
         let rec build path depth =
           if depth > 0 then begin
             Posix.mkdir p (path ^ "/d");
             build (path ^ "/d") (depth - 1)
           end
         in
         Posix.mkdir p "/deep";
         build "/deep" 20;
         let leaf = "/deep" ^ String.concat "" (List.init 20 (fun _ -> "/d")) in
         Posix.close p (Posix.creat p (leaf ^ "/bottom"));
         Alcotest.(check bool) "deep file exists" true
           (Posix.exists p (leaf ^ "/bottom"));
         (* now chdir to the bottom and climb with .. *)
         Posix.chdir p leaf;
         Alcotest.(check bool) "relative .. climb" true
           (Posix.exists p (String.concat "/" (List.init 20 (fun _ -> "..")) ^ "/d"));
         0))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "stress",
      [
        tc "create/unlink storm" `Quick test_create_unlink_storm;
        tc "rmdir/create races" `Quick test_rmdir_create_races;
        tc "shared-fd fork tree" `Quick test_shared_fd_storm;
        tc "deep paths" `Quick test_deep_path_stress;
      ] );
  ]
