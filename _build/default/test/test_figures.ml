(* Shape tests for the paper reproduction: cheap (8-core) versions of the
   claims EXPERIMENTS.md makes about each figure, so a regression in the
   protocol or cost model that flips a paper conclusion fails CI. *)

module Config = Hare_config.Config
module Driver = Hare_experiments.Driver
module Figures = Hare_experiments.Figures
module World = Hare_experiments.World
module All = Hare_workloads.All
module HD = Driver.Make (World.Hare_w)
module LD = Driver.Make (World.Linux_w)

let cfg ?(f = fun c -> c) ncores = f (Driver.default_config ~ncores)

let thr (r : Driver.result) = r.Driver.throughput

let test_fig10_distribution_helps_creates () =
  let on = HD.run ~config:(cfg 8) (All.find "creates") in
  let off =
    HD.run
      ~config:(cfg ~f:(fun c -> { c with Config.dir_distribution = false }) 8)
      (All.find "creates")
  in
  Alcotest.(check bool)
    (Printf.sprintf "distributed %.0f > centralized %.0f x1.5" (thr on) (thr off))
    true
    (thr on > 1.5 *. thr off)

let test_fig12_direct_access_helps_writes () =
  let on = HD.run ~config:(cfg 8) (All.find "writes") in
  let off =
    HD.run
      ~config:(cfg ~f:(fun c -> { c with Config.direct_access = false }) 8)
      (All.find "writes")
  in
  Alcotest.(check bool) "direct access >2x for writes" true
    (thr on > 2.0 *. thr off)

let test_fig13_dircache_helps_renames () =
  let on = HD.run ~config:(cfg 8) (All.find "renames") in
  let off =
    HD.run
      ~config:(cfg ~f:(fun c -> { c with Config.dir_cache = false }) 8)
      (All.find "renames")
  in
  Alcotest.(check bool) "directory cache >1.3x for renames" true
    (thr on > 1.3 *. thr off)

let test_fig8_linux_faster_on_one_core () =
  List.iter
    (fun bench ->
      let hare = HD.run ~config:(cfg 1) ~nprocs:1 (All.find bench) in
      let linux = LD.run ~config:(cfg 1) ~nprocs:1 (All.find bench) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: linux (%.0f) beats hare (%.0f) on 1 core" bench
           (thr linux) (thr hare))
        true
        (thr linux > thr hare))
    [ "creates"; "renames"; "mailbench" ]

let test_fig8_split_beats_timeshare_single_core () =
  let ts = HD.run ~config:(cfg 1) ~nprocs:1 (All.find "renames") in
  let split =
    HD.run
      ~config:(cfg ~f:(fun c -> { c with Config.placement = Config.Split 1 }) 2)
      ~nprocs:1 (All.find "renames")
  in
  Alcotest.(check bool) "dedicated server core faster" true (thr split > thr ts)

let test_fig15_crossover () =
  (* Hare out-scales Linux on shared-directory metadata; Linux out-scales
     Hare on raw writes. *)
  let speedup (runner : ?nprocs:int -> Config.t -> Hare_workloads.Spec.t -> Driver.result) bench =
    let one = runner ~nprocs:1 (cfg 1) (All.find bench) in
    let eight = runner (cfg 8) (All.find bench) in
    thr eight /. thr one
  in
  let hare_run ?nprocs config s = HD.run ~config ?nprocs s in
  let linux_run ?nprocs config s = LD.run ~config ?nprocs s in
  let hare_creates = speedup hare_run "creates" in
  let linux_creates = speedup linux_run "creates" in
  let hare_writes = speedup hare_run "writes" in
  let linux_writes = speedup linux_run "writes" in
  Alcotest.(check bool)
    (Printf.sprintf "creates: hare %.1fx > linux %.1fx" hare_creates
       linux_creates)
    true (hare_creates > linux_creates);
  Alcotest.(check bool)
    (Printf.sprintf "writes: linux %.1fx > hare %.1fx" linux_writes hare_writes)
    true (linux_writes > hare_writes)

let test_micro_calibration () =
  let single, split = Figures.micro_data Figures.quick in
  let close a b = Float.abs (a -. b) /. b < 0.15 in
  Alcotest.(check bool)
    (Printf.sprintf "timeshare rename %.3fus ~ 7.204us" single)
    true (close single 7.204);
  Alcotest.(check bool)
    (Printf.sprintf "split rename %.3fus ~ 4.171us" split)
    true (close split 4.171)

let test_fig5_mixes () =
  let data = Figures.fig5_data Figures.quick in
  let share bench op =
    match List.assoc_opt bench data with
    | None -> 0.0
    | Some shares -> ( match List.assoc_opt op shares with Some s -> s | None -> 0.0)
  in
  Alcotest.(check bool) "creates is open/close" true
    (share "creates" "open" > 0.45 && share "creates" "close" > 0.45);
  Alcotest.(check bool) "rm dense is unlink-heavy" true
    (share "rm dense" "unlink" > 0.5);
  Alcotest.(check bool) "pfind dense is stat-heavy" true
    (share "pfind dense" "stat" > 0.5);
  Alcotest.(check bool) "mailbench uses fsync+rename" true
    (share "mailbench" "fsync" > 0.1 && share "mailbench" "rename" > 0.1)

let test_ext_width_narrows_fanout () =
  (* Narrower distribution must reduce the RPC count of readdir-heavy
     work (each readdir contacts only the shard subset). *)
  let rpcs w =
    let config = { (cfg 8) with Config.dist_width = Some w } in
    let m = Hare.Machine.boot config in
    let api = World.Hare_w.api m in
    let counted = ref 0 in
    let init =
      World.Hare_w.spawn_init m ~name:"t" (fun p ->
          Hare.Posix.mkdir p ~dist:true "/d";
          for i = 1 to 10 do
            Hare.Posix.close p (Hare.Posix.creat p (Printf.sprintf "/d/f%d" i))
          done;
          let before =
            Array.fold_left
              (fun acc c -> acc + Hare_client.Client.rpc_count c)
              0 (Hare.Machine.clients m)
          in
          for _ = 1 to 5 do
            ignore (Hare.Posix.readdir p "/d")
          done;
          counted :=
            Array.fold_left
              (fun acc c -> acc + Hare_client.Client.rpc_count c)
              0 (Hare.Machine.clients m)
            - before;
          0)
    in
    Hare.Machine.run m;
    ignore (api, init);
    !counted
  in
  let narrow = rpcs 2 and wide = rpcs 8 in
  Alcotest.(check bool)
    (Printf.sprintf "width 2 (%d rpcs) < width 8 (%d rpcs)" narrow wide)
    true (narrow < wide)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "figures.shapes",
      [
        tc "fig10: distribution helps creates" `Quick
          test_fig10_distribution_helps_creates;
        tc "fig12: direct access helps writes" `Quick
          test_fig12_direct_access_helps_writes;
        tc "fig13: dircache helps renames" `Quick test_fig13_dircache_helps_renames;
        tc "fig8: linux faster on 1 core" `Quick test_fig8_linux_faster_on_one_core;
        tc "fig8: split beats timeshare" `Quick
          test_fig8_split_beats_timeshare_single_core;
        tc "fig15: crossover" `Quick test_fig15_crossover;
        tc "micro: rename calibration" `Quick test_micro_calibration;
        tc "fig5: op mixes" `Quick test_fig5_mixes;
        tc "ext: width narrows fan-out" `Quick test_ext_width_narrows_fanout;
      ] );
  ]
