(* Remaining POSIX-surface edge cases: dup2 replacement semantics, split
   placement restrictions, fd exhaustion, environment, cwd errors. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Config = Hare_config.Config

let test_dup2_replaces_and_closes () =
  ignore
    (run (fun m p ->
         let a = Posix.creat p "/a" in
         ignore (Posix.write p a "AAAA");
         let b = Posix.creat p "/b" in
         ignore (Posix.write p b "B");
         (* dup2 a onto b: b's description is released, writes through the
            new b land in /a at the shared (dup'd) offset *)
         ignore (Posix.dup2 p ~src:a ~dst:b);
         ignore (Posix.write p b "ZZ");
         Posix.close p a;
         Posix.close p b;
         let fd = Posix.openf p "/a" flags_r in
         Alcotest.(check string) "writes continued in /a" "AAAAZZ"
           (Posix.read_all p fd);
         Posix.close p fd;
         let fd = Posix.openf p "/b" flags_r in
         Alcotest.(check string) "/b kept its own data" "B"
           (Posix.read_all p fd);
         Posix.close p fd;
         (* no leaked tokens: /b's original description was closed *)
         let tokens =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.open_tokens s)
             0 (Machine.servers m)
         in
         Alcotest.(check int) "no leaked tokens" 0 tokens;
         0))

let test_dup2_same_fd_noop () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/x" in
         Alcotest.(check int) "same fd" fd (Posix.dup2 p ~src:fd ~dst:fd);
         ignore (Posix.write p fd "ok");
         Posix.close p fd;
         0))

let test_split_placement_avoids_server_cores () =
  let config =
    {
      (small_config ~ncores:4 ~placement:(Config.Split 2) ()) with
      Config.buffer_cache_blocks = 1024;
    }
  in
  let m = Machine.boot config in
  let cores = ref [] in
  Machine.register_program m "where" (fun p _ ->
      cores := p.P.core_id :: !cores;
      0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pids =
          List.init 6 (fun _ -> Posix.spawn p ~prog:"where" ~args:[])
        in
        List.iter (fun pid -> ignore (Posix.waitpid p pid)) pids;
        0)
  in
  Machine.run m;
  ignore init;
  (* servers own cores 0 and 1; applications may only land on 2 and 3 *)
  Alcotest.(check (list int)) "only app cores used" [ 2; 3 ]
    (List.sort_uniq compare !cores)

let test_fd_exhaustion () =
  ignore
    (run (fun _m p ->
         let opened = ref [] in
         (match
            for _ = 0 to 1100 do
              opened := Posix.creat p (Printf.sprintf "/f%d" (List.length !opened)) :: !opened
            done
          with
         | () -> Alcotest.fail "expected EMFILE"
         | exception Errno.Error (Errno.EMFILE, _) -> ());
         List.iter (fun fd -> Posix.close p fd) !opened;
         (* table drained: we can open again *)
         let fd = Posix.creat p "/again" in
         Posix.close p fd;
         0))

let test_env_and_cwd () =
  ignore
    (run (fun _m p ->
         Posix.setenv p "KEY" "v1";
         Posix.setenv p "KEY" "v2";
         Alcotest.(check (option string)) "setenv replaces" (Some "v2")
           (Posix.getenv p "KEY");
         Posix.mkdir p "/w";
         Posix.close p (Posix.creat p "/w/file");
         expect_errno "chdir to file" Errno.ENOTDIR (fun () ->
             Posix.chdir p "/w/file");
         expect_errno "chdir to missing" Errno.ENOENT (fun () ->
             Posix.chdir p "/missing");
         Alcotest.(check string) "cwd unchanged after failures" "/"
           (Posix.getcwd p);
         0))

let test_env_inherited_by_exec () =
  let config = small_config ~ncores:4 () in
  let m = Machine.boot config in
  Machine.register_program m "envcheck" (fun p _ ->
      match Posix.getenv p "MARKER" with Some "yes" -> 0 | _ -> 1);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        Posix.setenv p "MARKER" "yes";
        let pid = Posix.spawn p ~prog:"envcheck" ~args:[] in
        Posix.waitpid p pid)
  in
  Machine.run m;
  Alcotest.(check (option int)) "env crossed exec" (Some 0)
    (Machine.exit_status m init)

let test_utilization_reporting () =
  let m =
    run (fun _m p ->
        let fd = Posix.creat p "/burn" in
        for _ = 1 to 50 do
          ignore (Posix.write p fd (String.make 4096 'u'))
        done;
        Posix.close p fd;
        0)
  in
  let util = Machine.utilization m in
  Alcotest.(check int) "one entry per core" 4 (List.length util);
  List.iter
    (fun (_, u) ->
      Alcotest.(check bool) "fraction in [0,1]" true (u >= 0.0 && u <= 1.0))
    util;
  (* the init core did real work *)
  Alcotest.(check bool) "some core was busy" true
    (List.exists (fun (_, u) -> u > 0.1) util)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "posix.edge",
      [
        tc "dup2 replaces" `Quick test_dup2_replaces_and_closes;
        tc "dup2 same fd" `Quick test_dup2_same_fd_noop;
        tc "split placement" `Quick test_split_placement_avoids_server_cores;
        tc "fd exhaustion" `Quick test_fd_exhaustion;
        tc "env + cwd errors" `Quick test_env_and_cwd;
        tc "env across exec" `Quick test_env_inherited_by_exec;
        tc "utilization" `Quick test_utilization_reporting;
      ] );
  ]
