(* Chained remote execution: a process that execs a program whose process
   execs again builds a chain of proxy processes (§3.5: "if a process
   repeatedly execs ... it can accumulate a large number of proxy
   processes"). Exit statuses, console output and signals must relay
   through the whole chain. *)

module Machine = Hare.Machine
module Posix = Hare.Posix
module P = Hare_proc.Process

let boot () = Machine.boot (Test_util.small_config ~ncores:4 ())

let finish m =
  match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, e) -> raise e

let test_exit_status_through_chain () =
  let m = boot () in
  Machine.register_program m "hop" (fun p args ->
      match args with
      | [ n ] when int_of_string n > 0 ->
          (* exec replaces this process; we become a proxy and return the
             remote status as our own *)
          Posix.exec p ~prog:"hop" ~args:[ string_of_int (int_of_string n - 1) ]
      | _ -> 42);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pid = Posix.spawn p ~prog:"hop" ~args:[ "4" ] in
        Posix.waitpid p pid)
  in
  finish m;
  Alcotest.(check (option int)) "status through 4 proxies" (Some 42)
    (Machine.exit_status m init)

let test_console_through_chain () =
  let m = boot () in
  Machine.register_program m "deep-echo" (fun p args ->
      match args with
      | [ n ] when int_of_string n > 0 ->
          Posix.exec p ~prog:"deep-echo"
            ~args:[ string_of_int (int_of_string n - 1) ]
      | _ ->
          Posix.print p "from the bottom";
          0);
  let init, console =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pid = Posix.spawn p ~prog:"deep-echo" ~args:[ "3" ] in
        Posix.waitpid p pid)
  in
  finish m;
  Alcotest.(check (option int)) "status" (Some 0) (Machine.exit_status m init);
  Alcotest.(check string) "console relayed through every proxy"
    "from the bottom" (Buffer.contents console)

let test_signal_through_chain () =
  let m = boot () in
  Machine.register_program m "relay-target" (fun p args ->
      match args with
      | [ n ] when int_of_string n > 0 ->
          Posix.exec p ~prog:"relay-target"
            ~args:[ string_of_int (int_of_string n - 1) ]
      | _ ->
          while not p.P.killed do
            Posix.compute p 1000
          done;
          9);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let pid = Posix.spawn p ~prog:"relay-target" ~args:[ "2" ] in
        Posix.compute p 1_000_000;
        (* signal the outermost proxy; it must hop all the way down *)
        Posix.kill p pid Hare_proc.Process.sigterm;
        Posix.waitpid p pid)
  in
  finish m;
  Alcotest.(check (option int)) "kill relayed through proxies" (Some 9)
    (Machine.exit_status m init)

let test_fds_through_chain () =
  let m = boot () in
  Machine.register_program m "fd-hop" (fun p args ->
      match args with
      | [ n ] when int_of_string n > 0 ->
          Posix.exec p ~prog:"fd-hop" ~args:[ string_of_int (int_of_string n - 1) ]
      | _ ->
          (* fd 3 was opened three execs ago *)
          ignore (Posix.write p 3 "+bottom");
          0);
  let init, _ =
    Machine.spawn_init m ~name:"t" (fun p _ ->
        let fd = Posix.creat p "/trace" in
        Alcotest.(check int) "fd 3" 3 fd;
        ignore (Posix.write p fd "top");
        let pid = Posix.spawn p ~prog:"fd-hop" ~args:[ "3" ] in
        let st = Posix.waitpid p pid in
        Posix.close p fd;
        let fd = Posix.openf p "/trace" Hare_proto.Types.flags_r in
        let s = Posix.read_all p fd in
        Posix.close p fd;
        if st = 0 && s = "top+bottom" then 0 else 1)
  in
  finish m;
  Alcotest.(check (option int)) "shared offset across exec chain" (Some 0)
    (Machine.exit_status m init)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "proc.exec-chain",
      [
        tc "exit status" `Quick test_exit_status_through_chain;
        tc "console" `Quick test_console_through_chain;
        tc "signal" `Quick test_signal_through_chain;
        tc "fds + offset" `Quick test_fds_through_chain;
      ] );
  ]
