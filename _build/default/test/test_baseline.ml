(* Tests for the comparison worlds: the shared-memory Linux baseline
   (Lfs/Linux_world) and the kernel-lock model (Slock). *)

module L = Hare_baseline.Linux_world
module Lfs = Hare_baseline.Lfs
module Slock = Hare_baseline.Slock
module Config = Hare_config.Config
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Api = Hare_api.Api
open Hare_sim

let config = Test_util.small_config ~ncores:4 ()

let run_linux body =
  let w = L.boot config in
  let api = L.api w in
  let init, _console = L.spawn_init w ~name:"test" (fun p -> body w api p) in
  L.run w;
  Alcotest.(check (option int)) "exit status" (Some 0) (L.exit_status w init)

let test_linux_file_roundtrip () =
  run_linux (fun _w api p ->
      let fd = api.Api.openf p "/f" Types.flags_w in
      ignore (api.Api.write p fd "linux data");
      api.Api.close p fd;
      let fd = api.Api.openf p "/f" Types.flags_r in
      let s = api.Api.read p fd ~len:100 in
      api.Api.close p fd;
      Alcotest.(check string) "roundtrip" "linux data" s;
      0)

let test_linux_namespace () =
  run_linux (fun _w api p ->
      api.Api.mkdir p ~dist:false "/d";
      api.Api.mkdir p ~dist:false "/d/e";
      let fd = api.Api.openf p "/d/e/f" Types.flags_w in
      ignore (api.Api.write p fd "x");
      api.Api.close p fd;
      api.Api.rename p "/d/e/f" "/d/g";
      Alcotest.(check bool) "renamed" true (api.Api.exists p "/d/g");
      api.Api.unlink p "/d/g";
      api.Api.rmdir p "/d/e";
      api.Api.rmdir p "/d";
      Alcotest.(check bool) "cleaned" false (api.Api.exists p "/d");
      0)

let test_linux_rmdir_nonempty () =
  run_linux (fun _w api p ->
      api.Api.mkdir p ~dist:false "/d";
      let fd = api.Api.openf p "/d/f" Types.flags_w in
      api.Api.close p fd;
      (match api.Api.rmdir p "/d" with
      | () -> Alcotest.fail "expected ENOTEMPTY"
      | exception Errno.Error (Errno.ENOTEMPTY, _) -> ());
      api.Api.unlink p "/d/f";
      api.Api.rmdir p "/d";
      0)

let test_linux_fork_shared_fd () =
  (* Kernel file objects: fork shares the offset through plain shared
     memory — no RPCs, but the same observable semantics as Hare. *)
  run_linux (fun _w api p ->
      let fd = api.Api.openf p "/log" Types.flags_w in
      ignore (api.Api.write p fd "p1 ");
      let pid =
        api.Api.fork p (fun c ->
            ignore (api.Api.write c fd "c1 ");
            0)
      in
      ignore (api.Api.waitpid p pid);
      ignore (api.Api.write p fd "p2");
      api.Api.close p fd;
      let fd = api.Api.openf p "/log" Types.flags_r in
      let s = api.Api.read p fd ~len:100 in
      api.Api.close p fd;
      Alcotest.(check string) "shared offset" "p1 c1 p2" s;
      0)

let test_linux_fork_spreads_cores () =
  run_linux (fun _w api p ->
      let cores = ref [] in
      let pids =
        List.init 4 (fun _ ->
            api.Api.fork p (fun c ->
                cores := api.Api.core_of c :: !cores;
                0))
      in
      List.iter (fun pid -> ignore (api.Api.waitpid p pid)) pids;
      Alcotest.(check bool) "children on several cores" true
        (List.length (List.sort_uniq compare !cores) > 1);
      0)

let test_linux_pipe () =
  run_linux (fun _w api p ->
      let rfd, wfd = api.Api.pipe p in
      let pid =
        api.Api.fork p (fun c ->
            let s = api.Api.read c rfd ~len:5 in
            if s = "hello" then 0 else 1)
      in
      ignore (api.Api.write p wfd "hello");
      let st = api.Api.waitpid p pid in
      api.Api.close p rfd;
      api.Api.close p wfd;
      st)

let test_linux_unlinked_open_file () =
  run_linux (fun _w api p ->
      let fd = api.Api.openf p "/gone" Types.flags_w in
      ignore (api.Api.write p fd "still here");
      api.Api.unlink p "/gone";
      Alcotest.(check bool) "no longer visible" false (api.Api.exists p "/gone");
      ignore (api.Api.lseek p fd ~pos:0 Types.Seek_set);
      Alcotest.(check string) "still readable" "still here"
        (api.Api.read p fd ~len:100);
      api.Api.close p fd;
      0)

let test_slock_mutual_exclusion () =
  let engine = Engine.create () in
  let core0 = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
  let core1 = Core_res.create engine ~id:1 ~socket:0 ~ctx_switch:0 in
  let lock = Slock.create ~name:"test" in
  let trace = ref [] in
  let worker name core =
    ignore
      (Engine.spawn engine ~name (fun () ->
           Slock.acquire lock ~core ~cost:10;
           trace := (name ^ "+") :: !trace;
           Core_res.compute core 1000;
           trace := (name ^ "-") :: !trace;
           Slock.release lock))
  in
  worker "a" core0;
  worker "b" core1;
  Engine.run engine;
  (* critical sections must not interleave *)
  (match List.rev !trace with
  | [ "a+"; "a-"; "b+"; "b-" ] | [ "b+"; "b-"; "a+"; "a-" ] -> ()
  | other -> Alcotest.fail ("interleaved: " ^ String.concat "," other));
  Alcotest.(check int) "one waiter contended" 1 (Slock.contended lock)

let test_slock_queue_delay_costs_time () =
  let engine = Engine.create () in
  let core0 = Core_res.create engine ~id:0 ~socket:0 ~ctx_switch:0 in
  let core1 = Core_res.create engine ~id:1 ~socket:0 ~ctx_switch:0 in
  let lock = Slock.create ~name:"t" in
  let done_at = ref 0L in
  ignore
    (Engine.spawn engine ~name:"holder" (fun () ->
         Slock.hold lock ~core:core0 ~cost:10 ~work:5000));
  ignore
    (Engine.spawn engine ~name:"waiter" (fun () ->
         Slock.hold lock ~core:core1 ~cost:10 ~work:100;
         done_at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "waiter delayed past holder (%Ld)" !done_at)
    true (!done_at > 5000L)

let test_unfs_config_shape () =
  let c = Hare_experiments.World.unfs_config (Test_util.small_config ~ncores:2 ()) in
  Alcotest.(check bool) "single server" true (c.Config.placement = Config.Split 1);
  Alcotest.(check bool) "no direct access" false c.Config.direct_access;
  Alcotest.(check bool) "no distribution" false c.Config.dir_distribution;
  Alcotest.(check bool) "loopback added" true
    (c.Config.costs.Hare_config.Costs.send
    > Config.default.Config.costs.Hare_config.Costs.send)

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "baseline.linux",
      [
        tc "file roundtrip" `Quick test_linux_file_roundtrip;
        tc "namespace ops" `Quick test_linux_namespace;
        tc "rmdir nonempty" `Quick test_linux_rmdir_nonempty;
        tc "fork shares fd" `Quick test_linux_fork_shared_fd;
        tc "fork spreads" `Quick test_linux_fork_spreads_cores;
        tc "pipe" `Quick test_linux_pipe;
        tc "unlinked open file" `Quick test_linux_unlinked_open_file;
      ] );
    ( "baseline.slock",
      [
        tc "mutual exclusion" `Quick test_slock_mutual_exclusion;
        tc "queueing delay" `Quick test_slock_queue_delay_costs_time;
      ] );
    ("baseline.unfs", [ tc "config shape" `Quick test_unfs_config_shape ]);
  ]
