(* Helpers for end-to-end machine tests. *)

module Config = Hare_config.Config
module Machine = Hare.Machine
module Posix = Hare.Posix
module P = Hare_proc.Process

let small_config ?(ncores = 4) ?placement ?exec_policy () =
  let c = Config.v ~ncores ?placement ?exec_policy () in
  (* Keep boot cheap for unit tests: a few MB of buffer cache suffice. *)
  { c with Config.buffer_cache_blocks = 1024; cores_per_socket = 2 }

(* Run [body] as the init process on a fresh machine; propagate any
   in-fiber exception (e.g. an Alcotest failure) to the test runner and
   assert a zero exit status. Returns the machine for post-mortem
   inspection. *)
let run ?(config = small_config ()) ?(expect_status = 0) body =
  let m = Machine.boot config in
  let init, _console = Machine.spawn_init m ~name:"test-init" (fun p _ -> body m p) in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, exn) -> raise exn);
  (match Machine.exit_status m init with
  | Some st -> Alcotest.(check int) "init exit status" expect_status st
  | None -> Alcotest.fail "init never exited");
  m

let errno : Hare_proto.Errno.t Alcotest.testable =
  Alcotest.testable Hare_proto.Errno.pp ( = )

(* Check that [f ()] raises the given errno. *)
let expect_errno name e f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected " ^ Hare_proto.Errno.to_string e)
  | exception Hare_proto.Errno.Error (got, _) -> Alcotest.check errno name e got

let flags_r = Hare_proto.Types.flags_r

let flags_w = Hare_proto.Types.flags_w

let flags_rw = Hare_proto.Types.flags_rw
