(* End-to-end file-system tests through the full Hare stack: client
   library ↔ file servers over messages, data through the non-coherent
   buffer cache. *)

open Test_util
module Types = Hare_proto.Types
module Errno = Hare_proto.Errno
module Wire = Hare_proto.Wire

let test_create_write_read () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/hello.txt" in
         ignore (Posix.write p fd "hello, hare!");
         Posix.close p fd;
         let fd = Posix.openf p "/hello.txt" flags_r in
         let s = Posix.read p fd ~len:100 in
         Alcotest.(check string) "readback" "hello, hare!" s;
         Alcotest.(check string) "eof" "" (Posix.read p fd ~len:10);
         Posix.close p fd;
         0))

let test_large_file_multiblock () =
  ignore
    (run (fun _m p ->
         let chunk = String.init 1000 (fun i -> Char.chr (65 + (i mod 26))) in
         let fd = Posix.creat p "/big" in
         for _ = 1 to 20 do
           ignore (Posix.write p fd chunk)
         done;
         Posix.close p fd;
         let a = Posix.stat p "/big" in
         Alcotest.(check int) "size" 20_000 a.Types.a_size;
         let fd = Posix.openf p "/big" flags_r in
         let all = Posix.read_all p fd in
         Posix.close p fd;
         Alcotest.(check int) "read size" 20_000 (String.length all);
         Alcotest.(check string) "tail matches" chunk
           (String.sub all 19_000 1000);
         0))

let test_lseek_and_overwrite () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/seek" in
         ignore (Posix.write p fd "abcdefghij");
         ignore (Posix.lseek p fd ~pos:3 Types.Seek_set);
         ignore (Posix.write p fd "XY");
         ignore (Posix.lseek p fd ~pos:(-2) Types.Seek_end);
         ignore (Posix.write p fd "Z!");
         Posix.close p fd;
         let fd = Posix.openf p "/seek" flags_r in
         Alcotest.(check string) "patched" "abcXYfghZ!" (Posix.read_all p fd);
         Posix.close p fd;
         0))

let test_sparse_write_via_seek () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/sparse" in
         ignore (Posix.lseek p fd ~pos:9000 Types.Seek_set);
         ignore (Posix.write p fd "end");
         Posix.close p fd;
         let fd = Posix.openf p "/sparse" flags_r in
         let all = Posix.read_all p fd in
         Posix.close p fd;
         Alcotest.(check int) "size" 9003 (String.length all);
         Alcotest.(check char) "hole zeroed" '\000' all.[100];
         Alcotest.(check string) "tail" "end" (String.sub all 9000 3);
         0))

let test_cross_core_close_to_open () =
  (* Writer on one core, reader on another: the reader sees the data after
     the writer's close, through the non-coherent buffer cache. *)
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/shared.dat" in
         ignore (Posix.write p fd (String.make 5000 'W'));
         Posix.close p fd;
         let pid =
           Posix.spawn p ~prog:"reader" ~args:[]
         in
         let status = Posix.waitpid p pid in
         Alcotest.(check int) "remote reader ok" 0 status;
         0)
       ~config:(small_config ()))
  |> ignore

(* Register the remote reader program before tests that exec it. *)
let with_reader body =
  let config = small_config () in
  let m = Machine.boot config in
  Machine.register_program m "reader" (fun p _args ->
      let fd = Posix.openf p "/shared.dat" flags_r in
      let s = Posix.read_all p fd in
      Posix.close p fd;
      if s = String.make 5000 'W' then 0 else 1);
  let init, _ = Machine.spawn_init m ~name:"init" (fun p _ -> body m p) in
  (match Machine.run m with
  | () -> ()
  | exception Hare_sim.Engine.Fiber_failure (_, exn) -> raise exn);
  Alcotest.(check (option int)) "init status" (Some 0) (Machine.exit_status m init)

let test_cross_core_close_to_open' () =
  with_reader (fun _m p ->
      let fd = Posix.creat p "/shared.dat" in
      ignore (Posix.write p fd (String.make 5000 'W'));
      Posix.close p fd;
      let pid = Posix.spawn p ~prog:"reader" ~args:[] in
      Posix.waitpid p pid)

let test_unlink_while_open () =
  (* POSIX: data stays readable through an open descriptor after unlink
     (§2.2, §3.4). *)
  ignore
    (run (fun m p ->
         let fd = Posix.creat p "/doomed" in
         ignore (Posix.write p fd "still here");
         Posix.fsync p fd;
         Posix.unlink p "/doomed";
         expect_errno "gone from namespace" Errno.ENOENT (fun () ->
             Posix.stat p "/doomed");
         ignore (Posix.lseek p fd ~pos:0 Types.Seek_set);
         Alcotest.(check string) "readable after unlink" "still here"
           (Posix.read p fd ~len:100);
         Posix.close p fd;
         (* After the last close the inode and blocks are released. *)
         let total_inodes =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.inode_count s)
             0 (Machine.servers m)
         in
         (* only the root dir remains *)
         Alcotest.(check int) "inode released" 1 total_inodes;
         0))

let test_deferred_block_reuse () =
  ignore
    (run (fun m p ->
         let servers = Machine.servers m in
         let free_before =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.available_blocks s)
             0 servers
         in
         let fd = Posix.creat p "/trunc" in
         ignore (Posix.write p fd (String.make 8192 'x'));
         Posix.fsync p fd;
         (* Truncate through a second descriptor while fd is open: blocks
            must NOT return to the free list yet (§3.2). *)
         let fd2 = Posix.openf p "/trunc" flags_w in
         Posix.close p fd2;
         let free_mid =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.available_blocks s)
             0 servers
         in
         Alcotest.(check bool) "blocks withheld while open" true
           (free_mid < free_before);
         Posix.close p fd;
         Posix.unlink p "/trunc";
         let free_after =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.available_blocks s)
             0 servers
         in
         Alcotest.(check int) "all blocks recovered" free_before free_after;
         0))

let test_o_trunc_orphans_blocks () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/t" in
         ignore (Posix.write p fd (String.make 5000 'a'));
         Posix.close p fd;
         let fd2 = Posix.openf p "/t" flags_w in
         (* flags_w includes O_TRUNC *)
         Alcotest.(check int) "truncated" 0 (Posix.fstat p fd2).Types.a_size;
         ignore (Posix.write p fd2 "new");
         Posix.close p fd2;
         let fd3 = Posix.openf p "/t" flags_r in
         Alcotest.(check string) "fresh content" "new" (Posix.read_all p fd3);
         Posix.close p fd3;
         0))

let test_mkdir_tree_and_stat () =
  ignore
    (run (fun _m p ->
         Posix.mkdir p "/a";
         Posix.mkdir p "/a/b";
         Posix.mkdir p "/a/b/c";
         let fd = Posix.creat p "/a/b/c/leaf" in
         ignore (Posix.write p fd "data");
         Posix.close p fd;
         let a = Posix.stat p "/a/b/c/leaf" in
         Alcotest.(check int) "leaf size" 4 a.Types.a_size;
         Alcotest.(check bool) "dir is dir" true
           ((Posix.stat p "/a/b").Types.a_ftype = Types.Dir);
         expect_errno "missing" Errno.ENOENT (fun () -> Posix.stat p "/a/x/y");
         expect_errno "notdir" Errno.ENOTDIR (fun () ->
             Posix.stat p "/a/b/c/leaf/under");
         0))

let test_chdir_relative_paths () =
  ignore
    (run (fun _m p ->
         Posix.mkdir p "/work";
         Posix.mkdir p "/work/sub";
         Posix.chdir p "/work";
         Alcotest.(check string) "cwd" "/work" (Posix.getcwd p);
         let fd = Posix.creat p "rel.txt" in
         ignore (Posix.write p fd "rel");
         Posix.close p fd;
         Alcotest.(check bool) "visible absolutely" true
           (Posix.exists p "/work/rel.txt");
         Posix.chdir p "sub";
         Alcotest.(check string) "nested cwd" "/work/sub" (Posix.getcwd p);
         Alcotest.(check bool) "dot-dot" true (Posix.exists p "../rel.txt");
         0))

let test_readdir_centralized_and_distributed () =
  ignore
    (run (fun _m p ->
         Posix.mkdir p "/plain";
         Posix.mkdir p ~dist:true "/wide";
         for i = 1 to 20 do
           Posix.close p (Posix.creat p (Printf.sprintf "/plain/f%d" i));
           Posix.close p (Posix.creat p (Printf.sprintf "/wide/f%d" i))
         done;
         let names dir =
           Posix.readdir p dir
           |> List.map (fun e -> e.Wire.e_name)
           |> List.sort compare
         in
         let expect = List.init 20 (fun i -> Printf.sprintf "f%d" (i + 1)) |> List.sort compare in
         Alcotest.(check (list string)) "plain" expect (names "/plain");
         Alcotest.(check (list string)) "wide" expect (names "/wide");
         0))

let test_distributed_dir_shards_across_servers () =
  ignore
    (run (fun m p ->
         Posix.mkdir p ~dist:true "/spread";
         for i = 1 to 64 do
           Posix.close p (Posix.creat p (Printf.sprintf "/spread/file-%d" i))
         done;
         let dir_ino = (Posix.stat p "/spread").Types.a_ino in
         let shards =
           Array.to_list (Machine.servers m)
           |> List.map (fun s ->
                  List.length (Hare_server.Server.shard_entries s dir_ino))
         in
         let populated = List.filter (fun n -> n > 0) shards in
         Alcotest.(check bool)
           (Format.asprintf "entries spread over servers (%a)"
              Fmt.(list ~sep:comma int)
              shards)
           true
           (List.length populated > 1);
         Alcotest.(check int) "all entries present" 64
           (List.fold_left ( + ) 0 shards);
         0))

let test_centralized_dir_single_server () =
  ignore
    (run (fun m p ->
         Posix.mkdir p "/narrow";
         for i = 1 to 32 do
           Posix.close p (Posix.creat p (Printf.sprintf "/narrow/f%d" i))
         done;
         let dir_ino = (Posix.stat p "/narrow").Types.a_ino in
         let populated =
           Array.to_list (Machine.servers m)
           |> List.filter (fun s ->
                  Hare_server.Server.shard_entries s dir_ino <> [])
         in
         Alcotest.(check int) "exactly one shard" 1 (List.length populated);
         0))

let test_rmdir_empty_and_nonempty () =
  ignore
    (run (fun _m p ->
         Posix.mkdir p ~dist:true "/dir";
         Posix.close p (Posix.creat p "/dir/f");
         expect_errno "not empty" Errno.ENOTEMPTY (fun () -> Posix.rmdir p "/dir");
         Posix.unlink p "/dir/f";
         Posix.rmdir p "/dir";
         expect_errno "gone" Errno.ENOENT (fun () -> Posix.stat p "/dir");
         (* Can recreate under the same name. *)
         Posix.mkdir p "/dir";
         Posix.rmdir p "/dir";
         0))

let test_rename_same_dir () =
  ignore
    (run (fun _m p ->
         Posix.mkdir p ~dist:true "/d";
         let fd = Posix.creat p "/d/old" in
         ignore (Posix.write p fd "payload");
         Posix.close p fd;
         Posix.rename p "/d/old" "/d/new";
         expect_errno "old gone" Errno.ENOENT (fun () -> Posix.stat p "/d/old");
         let fd = Posix.openf p "/d/new" flags_r in
         Alcotest.(check string) "content follows" "payload" (Posix.read_all p fd);
         Posix.close p fd;
         0))

let test_rename_across_dirs_replace () =
  ignore
    (run (fun m p ->
         Posix.mkdir p "/src";
         Posix.mkdir p "/dst";
         let fd = Posix.creat p "/src/a" in
         ignore (Posix.write p fd "AAA");
         Posix.close p fd;
         let fd = Posix.creat p "/dst/b" in
         ignore (Posix.write p fd "BBB");
         Posix.close p fd;
         Posix.rename p "/src/a" "/dst/b";
         let fd = Posix.openf p "/dst/b" flags_r in
         Alcotest.(check string) "replaced" "AAA" (Posix.read_all p fd);
         Posix.close p fd;
         expect_errno "source gone" Errno.ENOENT (fun () -> Posix.stat p "/src/a");
         (* replaced file's inode must be released *)
         let inodes =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.inode_count s)
             0 (Machine.servers m)
         in
         (* root + /src + /dst + the surviving file *)
         Alcotest.(check int) "victim inode freed" 4 inodes;
         0))

let test_open_excl () =
  ignore
    (run (fun _m p ->
         let excl = { flags_w with Types.excl = true } in
         let fd = Posix.openf p "/x" excl in
         Posix.close p fd;
         expect_errno "second excl fails" Errno.EEXIST (fun () ->
             Posix.openf p "/x" excl);
         0))

let test_unlink_errors () =
  ignore
    (run (fun _m p ->
         expect_errno "unlink missing" Errno.ENOENT (fun () ->
             Posix.unlink p "/nope");
         Posix.mkdir p "/d";
         expect_errno "unlink dir" Errno.EISDIR (fun () -> Posix.unlink p "/d");
         (* directory is still usable after the failed unlink *)
         Posix.close p (Posix.creat p "/d/f");
         Posix.unlink p "/d/f";
         Posix.rmdir p "/d";
         0))

let test_ftruncate_shrink_extend () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/t" in
         ignore (Posix.write p fd "0123456789");
         Posix.ftruncate p fd ~size:4;
         Alcotest.(check int) "shrunk" 4 (Posix.fstat p fd).Types.a_size;
         Posix.ftruncate p fd ~size:8;
         ignore (Posix.lseek p fd ~pos:0 Types.Seek_set);
         Alcotest.(check string) "zero filled" "0123\000\000\000\000"
           (Posix.read p fd ~len:8);
         Posix.close p fd;
         0))

let test_dup_shares_offset () =
  ignore
    (run (fun _m p ->
         let fd = Posix.creat p "/dup" in
         ignore (Posix.write p fd "abcdef");
         Posix.close p fd;
         let a = Posix.openf p "/dup" flags_r in
         let b = Posix.dup p a in
         Alcotest.(check string) "a reads" "abc" (Posix.read p a ~len:3);
         Alcotest.(check string) "b continues" "def" (Posix.read p b ~len:3);
         Posix.close p a;
         (* b still usable after closing a *)
         ignore (Posix.lseek p b ~pos:0 Types.Seek_set);
         Alcotest.(check string) "b after close a" "abcdef" (Posix.read_all p b);
         Posix.close p b;
         0))

let test_stat_root () =
  ignore
    (run (fun _m p ->
         let a = Posix.stat p "/" in
         Alcotest.(check bool) "root is dir" true (a.Types.a_ftype = Types.Dir);
         0))

let test_many_files_inode_accounting () =
  ignore
    (run (fun m p ->
         Posix.mkdir p ~dist:true "/n";
         for i = 1 to 100 do
           Posix.close p (Posix.creat p (Printf.sprintf "/n/f%04d" i))
         done;
         for i = 1 to 100 do
           Posix.unlink p (Printf.sprintf "/n/f%04d" i)
         done;
         Posix.rmdir p "/n";
         let inodes =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.inode_count s)
             0 (Machine.servers m)
         in
         Alcotest.(check int) "only root survives" 1 inodes;
         let tokens =
           Array.fold_left
             (fun acc s -> acc + Hare_server.Server.open_tokens s)
             0 (Machine.servers m)
         in
         Alcotest.(check int) "no leaked fds" 0 tokens;
         0))

let tc = Alcotest.test_case

let suites : (string * unit Alcotest.test_case list) list =
  [
    ( "fs.data",
      [
        tc "create/write/read" `Quick test_create_write_read;
        tc "multi-block file" `Quick test_large_file_multiblock;
        tc "lseek overwrite" `Quick test_lseek_and_overwrite;
        tc "sparse file" `Quick test_sparse_write_via_seek;
        tc "cross-core close-to-open" `Quick test_cross_core_close_to_open';
        tc "ftruncate" `Quick test_ftruncate_shrink_extend;
      ] );
    ( "fs.lifecycle",
      [
        tc "unlink while open" `Quick test_unlink_while_open;
        tc "deferred block reuse" `Quick test_deferred_block_reuse;
        tc "O_TRUNC orphans" `Quick test_o_trunc_orphans_blocks;
        tc "inode accounting" `Quick test_many_files_inode_accounting;
      ] );
    ( "fs.namespace",
      [
        tc "mkdir tree + stat" `Quick test_mkdir_tree_and_stat;
        tc "chdir + relative" `Quick test_chdir_relative_paths;
        tc "readdir both kinds" `Quick test_readdir_centralized_and_distributed;
        tc "distribution shards" `Quick test_distributed_dir_shards_across_servers;
        tc "centralized single shard" `Quick test_centralized_dir_single_server;
        tc "rmdir" `Quick test_rmdir_empty_and_nonempty;
        tc "rename same dir" `Quick test_rename_same_dir;
        tc "rename replace" `Quick test_rename_across_dirs_replace;
        tc "O_EXCL" `Quick test_open_excl;
        tc "unlink errors" `Quick test_unlink_errors;
        tc "dup offset" `Quick test_dup_shares_offset;
        tc "stat root" `Quick test_stat_root;
      ] );
  ]

let _ = test_cross_core_close_to_open
