lib/config/config.mli: Costs Format
