lib/config/config.ml: Costs Fmt Fun List
