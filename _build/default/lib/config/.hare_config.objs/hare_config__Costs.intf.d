lib/config/costs.mli:
