lib/config/costs.ml: Int64
