type t = { nblocks : int; pages : Bytes.t option array }

let create ~nblocks =
  if nblocks <= 0 then invalid_arg "Dram.create: nblocks must be positive";
  { nblocks; pages = Array.make nblocks None }

let nblocks t = t.nblocks

let check_line t ~block ~line =
  if block < 0 || block >= t.nblocks then
    invalid_arg (Printf.sprintf "Dram: block %d out of range" block);
  if line < 0 || line >= Layout.lines_per_block then
    invalid_arg (Printf.sprintf "Dram: line %d out of range" line)

(* Pages materialize on first write; unwritten blocks read as zeroes. *)
let page t block =
  match t.pages.(block) with
  | Some p -> p
  | None ->
      let p = Bytes.make Layout.block_size '\000' in
      t.pages.(block) <- Some p;
      p

let read_line t ~block ~line ~dst ~dst_off =
  check_line t ~block ~line;
  match t.pages.(block) with
  | None -> Bytes.fill dst dst_off Layout.line_size '\000'
  | Some p -> Bytes.blit p (line * Layout.line_size) dst dst_off Layout.line_size

let write_line t ~block ~line ~src ~src_off =
  check_line t ~block ~line;
  Bytes.blit src src_off (page t block) (line * Layout.line_size)
    Layout.line_size

let zero_block t ~block =
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> ()
  | Some p -> Bytes.fill p 0 Layout.block_size '\000'

let zero_range t ~block ~off ~len =
  if off < 0 || len < 0 || off + len > Layout.block_size then
    invalid_arg "Dram.zero_range: range escapes block";
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> ()
  | Some p -> Bytes.fill p off len '\000'

let unsafe_read t ~block ~off ~len =
  if off < 0 || len < 0 || off + len > Layout.block_size then
    invalid_arg "Dram.unsafe_read: range escapes block";
  check_line t ~block ~line:0;
  match t.pages.(block) with
  | None -> String.make len '\000'
  | Some p -> Bytes.sub_string p off len
