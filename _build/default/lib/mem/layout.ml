let block_size = 4096

let line_size = 64

let lines_per_block = block_size / line_size

let line_of_offset off = off / line_size

let lines_touched ~off ~len =
  if len <= 0 then invalid_arg "Layout.lines_touched: empty range";
  if off < 0 || off + len > block_size then
    invalid_arg "Layout.lines_touched: range escapes block";
  (line_of_offset off, line_of_offset (off + len - 1))
