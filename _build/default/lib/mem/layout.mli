(** Memory geometry shared by the DRAM and private-cache models. *)

val block_size : int
(** Buffer-cache block size in bytes (4096, as in most file systems). *)

val line_size : int
(** Cache-line size in bytes (64). *)

val lines_per_block : int

val line_of_offset : int -> int
(** [line_of_offset off] is the line index within a block containing byte
    offset [off]. *)

val lines_touched : off:int -> len:int -> int * int
(** [lines_touched ~off ~len] is the inclusive range [(first, last)] of
    line indices within a block covered by the byte range.
    Raises [Invalid_argument] if the range escapes the block or is empty. *)
