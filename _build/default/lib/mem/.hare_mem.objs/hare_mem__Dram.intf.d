lib/mem/dram.mli: Bytes
