lib/mem/pcache.ml: Bytes Core_res Dram Hare_config Hare_sim Hashtbl Layout List String
