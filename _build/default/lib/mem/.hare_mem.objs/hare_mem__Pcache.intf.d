lib/mem/pcache.mli: Bytes Dram Hare_config Hare_sim
