lib/mem/dram.ml: Array Bytes Layout Printf String
