lib/mem/layout.mli:
