lib/mem/layout.ml:
