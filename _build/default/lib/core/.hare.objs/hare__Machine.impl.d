lib/core/machine.ml: Array Buffer Core_res Engine Fun Hare_client Hare_config Hare_mem Hare_msg Hare_proc Hare_proto Hare_sched Hare_server Hare_sim Hare_stats Hashtbl Int64 Ivar List Types Wire
