lib/core/posix.mli: Hare_proc Hare_proto Types Wire
