lib/core/posix.ml: Array Bqueue Buffer Core_res Errno Hare_client Hare_config Hare_msg Hare_proc Hare_proto Hare_sched Hare_sim Ivar List Logs String Types Wire
