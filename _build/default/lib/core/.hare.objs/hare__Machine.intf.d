lib/core/machine.mli: Buffer Hare_client Hare_config Hare_mem Hare_proc Hare_server Hare_sim Hare_stats
