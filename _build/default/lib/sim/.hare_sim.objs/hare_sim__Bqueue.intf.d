lib/sim/bqueue.mli:
