lib/sim/engine.ml: Effect Heap Int64 List Logs Printf Rng String
