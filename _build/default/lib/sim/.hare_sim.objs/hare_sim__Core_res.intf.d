lib/sim/core_res.mli: Engine
