lib/sim/bqueue.ml: Condition Queue
