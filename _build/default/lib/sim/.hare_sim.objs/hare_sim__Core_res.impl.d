lib/sim/core_res.ml: Engine Int64
