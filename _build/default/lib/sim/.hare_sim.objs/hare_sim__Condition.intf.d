lib/sim/condition.mli:
