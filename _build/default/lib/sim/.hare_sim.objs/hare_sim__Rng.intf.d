lib/sim/rng.mli:
