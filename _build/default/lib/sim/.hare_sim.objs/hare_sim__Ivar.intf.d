lib/sim/ivar.mli:
