lib/sim/heap.mli:
