(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the simulation flows through explicitly-seeded [Rng.t]
    values so every experiment is reproducible bit-for-bit. *)

type t

val create : seed:int64 -> t

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

(** [next t] returns the next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [pick t arr] returns a uniformly-chosen element of [arr].
    Raises [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
