type 'a t = {
  mutable value : 'a option;
  mutable waiters : Engine.waker list;
}

let create () = { value = None; waiters = [] }

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      let waiters = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun wake -> wake ()) waiters

let read t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      (* After resumption the value is necessarily present. *)
      (match t.value with
      | Some v -> v
      | None -> assert false)

let peek t = t.value

let is_filled t = t.value <> None
