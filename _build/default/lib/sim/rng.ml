type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create ~seed:(next t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
