(** Binary min-heap keyed by [(int64 * int)] pairs.

    The key is a (time, sequence) pair: the heap orders events primarily by
    simulated time and breaks ties by insertion sequence, which gives the
    discrete-event engine a deterministic FIFO order for simultaneous
    events. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v] with key [(time, seq)]. *)
val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the minimum element together with its
    key. Raises [Not_found] when the heap is empty. *)
val pop_min : 'a t -> int64 * int * 'a

(** [peek_min h] returns the minimum element without removing it.
    Raises [Not_found] when the heap is empty. *)
val peek_min : 'a t -> int64 * int * 'a
