type t = { mutable queue : Engine.waker list (* reversed: newest first *) }

let create () = { queue = [] }

let wait t = Engine.suspend (fun waker -> t.queue <- waker :: t.queue)

let signal t =
  match List.rev t.queue with
  | [] -> ()
  | oldest :: rest ->
      t.queue <- List.rev rest;
      oldest ()

let broadcast t =
  let waiters = List.rev t.queue in
  t.queue <- [];
  List.iter (fun wake -> wake ()) waiters

let waiters t = List.length t.queue
