type 'a entry = { time : int64; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.arr in
  if h.size = capacity then begin
    let capacity' = if capacity = 0 then 64 else capacity * 2 in
    let arr' = Array.make capacity' entry in
    Array.blit h.arr 0 arr' 0 h.size;
    h.arr <- arr'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && lt h.arr.(left) h.arr.(!smallest) then smallest := left;
  if right < h.size && lt h.arr.(right) h.arr.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time ~seq value =
  let entry = { time; seq; value } in
  grow h entry;
  h.arr.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_min h =
  if h.size = 0 then raise Not_found;
  let e = h.arr.(0) in
  (e.time, e.seq, e.value)

let pop_min h =
  if h.size = 0 then raise Not_found;
  let e = h.arr.(0) in
  h.size <- h.size - 1;
  h.arr.(0) <- h.arr.(h.size);
  sift_down h 0;
  (e.time, e.seq, e.value)
