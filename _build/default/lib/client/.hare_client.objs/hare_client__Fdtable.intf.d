lib/client/fdtable.mli: Hare_proto Hashtbl Types Wire
