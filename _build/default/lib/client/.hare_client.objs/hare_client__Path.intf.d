lib/client/path.mli:
