lib/client/client.mli: Dircache Fdtable Hare_config Hare_mem Hare_msg Hare_proto Hare_sim Hare_stats Types Wire
