lib/client/fdtable.ml: Errno Hare_proto Hashtbl List Types Wire
