lib/client/dircache.mli: Hare_msg Hare_proto
