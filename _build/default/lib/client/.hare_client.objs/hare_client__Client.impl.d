lib/client/client.ml: Array Buffer Bytes Core_res Dircache Engine Errno Fdtable Hare_config Hare_mem Hare_msg Hare_proto Hare_sim Hare_stats Hashtbl Ivar List Logs Path Result String Types Wire
