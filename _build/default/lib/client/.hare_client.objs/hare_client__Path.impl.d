lib/client/path.ml: Errno Hare_proto List String
