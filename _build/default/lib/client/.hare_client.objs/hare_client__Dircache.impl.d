lib/client/dircache.ml: Hare_msg Hare_proto Hashtbl Types Wire
