(** Textual path manipulation.

    Hare identifies files by walking directory entries from the root; the
    client library normalizes paths textually ([.], [..], repeated
    slashes) against the process's working directory before resolution,
    so the wire protocol only ever sees clean component lists. *)

val split : string -> string list
(** [split "/a//b/./c"] is [["a"; "b"; "c"]]. *)

val normalize : cwd:string -> string -> string list
(** [normalize ~cwd path] is the component list of [path] resolved
    against absolute directory [cwd]. [".."] at the root stays at the
    root. Raises [Errno.Error EINVAL] if [cwd] is not absolute or [path]
    is empty. *)

val join : string -> string -> string
(** [join cwd path] is the normalized absolute string form. *)

val parent_and_name : string list -> string list * string
(** Splits a non-empty component list into parent components and final
    name. Raises [Errno.Error EINVAL] on the root (empty list). *)

val to_string : string list -> string
