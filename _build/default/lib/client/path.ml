open Hare_proto

let split path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

let normalize ~cwd path =
  if path = "" then Errno.raise_errno Errno.EINVAL "empty path";
  if String.length cwd = 0 || cwd.[0] <> '/' then
    Errno.raise_errno Errno.EINVAL ("relative cwd: " ^ cwd);
  let base = if path.[0] = '/' then [] else split cwd in
  let resolve acc comp =
    match comp with
    | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
    | c -> c :: acc
  in
  List.fold_left resolve (List.rev base) (split path) |> List.rev

let to_string comps = "/" ^ String.concat "/" comps

let join cwd path = to_string (normalize ~cwd path)

let parent_and_name comps =
  match List.rev comps with
  | [] -> Errno.raise_errno Errno.EINVAL "path is the root"
  | name :: rparent -> (List.rev rparent, name)
