lib/sched/sched_server.ml: Array Core_res Engine Errno Hare_client Hare_config Hare_msg Hare_proc Hare_proto Hare_sim Logs Printf Process Program Wire
