lib/sched/policy.mli: Hare_proc
