lib/sched/policy.ml: Array Hare_config Hare_proc Hare_sim Process
