lib/sched/sched_server.mli: Hare_msg Hare_proc Hare_proto
