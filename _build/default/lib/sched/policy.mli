(** Exec placement policies (§3.5): random, or round-robin with the
    cursor propagated from parent to child. *)

val pick_core : Hare_proc.Process.t -> int
(** Chooses an application core for the process's next [exec] according
    to the machine's configured policy, advancing per-process policy
    state. *)
