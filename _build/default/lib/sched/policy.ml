open Hare_proc

let pick_core (p : Process.t) =
  let app_cores = p.Process.k.Process.k_app_cores in
  match p.Process.k.Process.k_config.Hare_config.Config.exec_policy with
  | Hare_config.Config.Random_placement ->
      Hare_sim.Rng.pick p.Process.prng app_cores
  | Hare_config.Config.Round_robin ->
      let i = p.Process.rr_next mod Array.length app_cores in
      p.Process.rr_next <- p.Process.rr_next + 1;
      app_cores.(i)
