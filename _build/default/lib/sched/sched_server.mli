(** Per-core scheduling server (§3.5).

    Listens for exec RPCs: spawns the named program as a fresh local
    process with the transferred descriptor table, replies with the new
    pid, and reports the child's eventual exit status back to the proxy
    the caller left behind. Also delivers signals to local processes. *)

type t

val create :
  kctx:Hare_proc.Process.kctx ->
  registry:Hare_proc.Program.t ->
  core_id:int ->
  endpoint:
    (Hare_proto.Wire.sched_req, Hare_proto.Wire.sched_resp) Hare_msg.Rpc.t ->
  unit ->
  t

val start : t -> unit

val execs : t -> int
(** Number of exec requests served. *)
