(** Reproduction of every table and figure in the paper's evaluation
    (§5). Each [print_*] regenerates the corresponding artifact as an
    ASCII table; the [*_data] functions return the numbers for tests and
    further processing.

    Absolute values come from the calibrated simulator, so they will not
    match the paper's testbed exactly; the shapes — who wins, by what
    rough factor, where the crossovers are — are the reproduction
    targets (see EXPERIMENTS.md). *)

type opts = {
  big : int;  (** the "40-core" machine size. *)
  cores : int list;  (** Figure 6 core-count sweep (must start at 1). *)
  sweep : int list;  (** Figure 7 candidate server splits. *)
  scale : int;  (** workload scale multiplier. *)
}

val default : opts
(** Paper-scale shape: 40 cores, sweep 1..40. *)

val quick : opts
(** Small sizes for tests and smoke runs: 8 cores. *)

(** {1 Figure 4: SLOC breakdown} *)

val print_fig4 : unit -> unit

(** {1 Figure 5: operation mix per benchmark} *)

val fig5_data : opts -> (string * (string * float) list) list

val print_fig5 : opts -> unit

(** {1 Figure 6: speedup vs. cores (timeshare)} *)

val fig6_data : opts -> (string * (int * float) list) list
(** benchmark -> (cores, speedup vs. 1 core). *)

val print_fig6 : opts -> unit

(** {1 Figure 7: split vs. timeshare configurations} *)

val fig7_data :
  opts -> (string * [ `Timeshare | `Half | `Best of int ] * float) list
(** (benchmark, configuration, throughput normalized to timeshare). *)

val print_fig7 : opts -> unit

(** {1 Figure 8: single-core throughput vs. the baselines} *)

val fig8_data : opts -> (string * float * float * float * float * float) list
(** (benchmark, hare-timeshare runtime seconds, then throughput
    normalized to hare-timeshare for: hare timeshare (=1), hare 2-core,
    linux ramfs, unfs). *)

val print_fig8 : opts -> unit

(** {1 Figures 9-14: technique ablations} *)

val technique_ratios : opts -> (string * (string * float) list) list
(** technique -> benchmark -> throughput(enabled)/throughput(disabled),
    all at [opts.big] cores (Figures 10-14). *)

val print_techniques : opts -> unit
(** Prints Figures 10-14 and the Figure 9 min/avg/median/max summary. *)

(** {1 Figure 15: Hare vs. Linux at [big] cores} *)

val fig15_data : opts -> (string * float * float * float * float) list
(** (benchmark, hare speedup, linux speedup, hare runtime s, linux
    runtime s). *)

val print_fig15 : opts -> unit

(** {1 §5.3.3 microbenchmark: rename latency} *)

val micro_data : opts -> float * float
(** (single-core rename µs, split-core rename µs). *)

val print_micro : opts -> unit

(** {1 Extension experiments (beyond the paper)} *)

val width_sweep : opts -> (string * (int * float) list) list
(** For §6's "distribute a directory over a subset of cores": benchmark
    -> (width, throughput normalized to full-width distribution) at
    [opts.big] cores. *)

val print_extensions : opts -> unit
(** Prints the width sweep and a block-stealing demonstration. *)

val print_all : opts -> unit
