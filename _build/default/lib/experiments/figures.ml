module Config = Hare_config.Config
module Spec = Hare_workloads.Spec
module All = Hare_workloads.All
module Table = Hare_stats.Table
module Opcount = Hare_stats.Opcount
module Summary = Hare_stats.Summary
module HD = Driver.Make (World.Hare_w)
module LD = Driver.Make (World.Linux_w)

type opts = { big : int; cores : int list; sweep : int list; scale : int }

let default =
  {
    big = 40;
    cores = [ 1; 2; 4; 8; 16; 24; 32; 40 ];
    sweep = [ 4; 8; 12; 16; 20; 24; 32 ];
    scale = 1;
  }

let quick = { big = 8; cores = [ 1; 2; 4; 8 ]; sweep = [ 2; 4 ]; scale = 1 }

let hare_cfg ?(placement = Config.Timeshare) ~ncores () =
  { (Driver.default_config ~ncores) with Config.placement }

let section title =
  Printf.printf "\n================ %s ================\n\n" title

(* ---------- Figure 4: SLOC --------------------------------------------- *)

let components =
  [
    ("Messaging", 1536, [ "lib/msg" ]);
    ("Syscall Interception", 2542, [ "lib/api"; "lib/core" ]);
    ("Client Library", 2607, [ "lib/client" ]);
    ("File System Server", 5960, [ "lib/server" ]);
    ("Scheduling", 930, [ "lib/sched"; "lib/proc" ]);
  ]

let substrate =
  [
    ("Simulated hardware (cores, caches, DRAM)", [ "lib/sim"; "lib/mem" ]);
    ("Protocol definitions", [ "lib/proto"; "lib/config" ]);
    ("Baselines (ramfs, UNFS)", [ "lib/baseline" ]);
    ("Workloads + experiments", [ "lib/workloads"; "lib/experiments" ]);
  ]

let print_fig4 () =
  section "Figure 4: SLOC breakdown for Hare components";
  match Hare_stats.Sloc.repo_root () with
  | None -> print_endline "(cannot locate repository root; skipping counts)"
  | Some root ->
      let count dirs =
        List.fold_left
          (fun acc d -> acc + Hare_stats.Sloc.count_tree (Filename.concat root d))
          0 dirs
      in
      let rows =
        List.map
          (fun (name, paper, dirs) ->
            [ name; string_of_int paper; string_of_int (count dirs) ])
          components
      in
      let total_paper =
        List.fold_left (fun a (_, p, _) -> a + p) 0 components
      in
      let total_ours =
        List.fold_left (fun a (_, _, d) -> a + count d) 0 components
      in
      Table.print
        ~headers:[ "Component"; "Paper SLOC"; "This repo SLOC" ]
        (rows @ [ [ "Total"; string_of_int total_paper; string_of_int total_ours ] ]);
      print_newline ();
      print_endline "Additional code with no paper counterpart:";
      Table.print ~headers:[ "Subsystem"; "SLOC" ]
        (List.map
           (fun (name, dirs) -> [ name; string_of_int (count dirs) ])
           substrate)

(* ---------- Figure 5: operation breakdown ------------------------------ *)

let fig5_columns =
  [ "open"; "close"; "read"; "write"; "lseek"; "stat"; "unlink"; "mkdir";
    "rmdir"; "rename"; "readdir"; "fsync"; "pipe" ]

let fig5_data opts =
  List.map
    (fun (spec : Spec.t) ->
      let ncores = min 8 opts.big in
      let r = HD.run ~config:(hare_cfg ~ncores ()) ~scale:opts.scale spec in
      let counts = r.Driver.syscalls in
      let total = max 1 (Opcount.total counts) in
      let shares =
        List.map
          (fun op ->
            (op, float_of_int (Opcount.get counts op) /. float_of_int total))
          fig5_columns
      in
      (spec.Spec.name, shares))
    All.specs

let print_fig5 opts =
  section "Figure 5: operation breakdown per benchmark (% of syscalls)";
  let data = fig5_data opts in
  let rows =
    List.map
      (fun (bench, shares) ->
        bench
        :: List.map (fun (_, s) -> Printf.sprintf "%.0f%%" (100.0 *. s)) shares)
      data
  in
  Table.print ~headers:("benchmark" :: fig5_columns) rows

(* ---------- Figure 6: scalability -------------------------------------- *)

let fig6_data opts =
  List.map
    (fun (spec : Spec.t) ->
      let runs =
        List.map
          (fun n ->
            let r =
              HD.run ~config:(hare_cfg ~ncores:n ()) ~nprocs:n ~scale:opts.scale
                spec
            in
            (n, r.Driver.throughput))
          opts.cores
      in
      let base =
        match runs with (1, t) :: _ -> t | _ -> snd (List.hd runs)
      in
      ( spec.Spec.name,
        List.map (fun (n, t) -> (n, if base > 0.0 then t /. base else 0.0)) runs
      ))
    All.parallel

let print_fig6 opts =
  section
    (Printf.sprintf
       "Figure 6: speedup on Hare as cores are added (vs. 1 core, timeshare)");
  let data = fig6_data opts in
  let headers =
    "benchmark" :: List.map (fun n -> Printf.sprintf "%d" n) opts.cores
  in
  let rows =
    List.map
      (fun (bench, speedups) ->
        bench :: List.map (fun (_, s) -> Printf.sprintf "%.1fx" s) speedups)
      data
  in
  Table.print ~headers rows

(* ---------- Figure 7: split vs. timeshare ------------------------------ *)

let fig7_data opts =
  let n = opts.big in
  List.concat_map
    (fun (spec : Spec.t) ->
      let timeshare =
        HD.run ~config:(hare_cfg ~ncores:n ()) ~scale:opts.scale spec
      in
      let split s =
        HD.run
          ~config:(hare_cfg ~placement:(Config.Split s) ~ncores:n ())
          ~scale:opts.scale spec
      in
      let half = split (max 1 (n / 2)) in
      let candidates =
        List.filter (fun s -> s >= 1 && s < n) opts.sweep
        |> List.map (fun s -> (s, split s))
      in
      let best_s, best =
        List.fold_left
          (fun (bs, br) (s, r) ->
            if r.Driver.throughput > br.Driver.throughput then (s, r)
            else (bs, br))
          (max 1 (n / 2), half)
          candidates
      in
      let norm (r : Driver.result) =
        if timeshare.Driver.throughput > 0.0 then
          r.Driver.throughput /. timeshare.Driver.throughput
        else 0.0
      in
      [
        (spec.Spec.name, `Timeshare, 1.0);
        (spec.Spec.name, `Half, norm half);
        (spec.Spec.name, `Best best_s, norm best);
      ])
    All.parallel

let print_fig7 opts =
  section
    (Printf.sprintf
       "Figure 7: split vs. timeshare at %d cores (normalized to timeshare)"
       opts.big);
  let data = fig7_data opts in
  let benches =
    List.sort_uniq compare (List.map (fun (b, _, _) -> b) data)
  in
  let find bench kind =
    List.find_map
      (fun (b, k, v) ->
        if b = bench then
          match (k, kind) with
          | `Timeshare, `Timeshare -> Some (v, "")
          | `Half, `Half -> Some (v, "")
          | `Best s, `Best -> Some (v, Printf.sprintf " (%d srv)" s)
          | _ -> None
        else None)
      data
    |> Option.value ~default:(0.0, "")
  in
  let rows =
    List.map
      (fun bench ->
        let ts, _ = find bench `Timeshare in
        let half, _ = find bench `Half in
        let best, lbl = find bench `Best in
        [
          bench;
          Printf.sprintf "%.2fx" ts;
          Printf.sprintf "%.2fx" half;
          Printf.sprintf "%.2fx%s" best lbl;
        ])
      benches
  in
  Table.print
    ~headers:[ "benchmark"; "timeshare"; "half split"; "best split" ]
    rows

(* ---------- Figure 8: single-core vs. baselines ------------------------ *)

let fig8_data opts =
  List.map
    (fun (spec : Spec.t) ->
      let hare1 =
        HD.run ~config:(hare_cfg ~ncores:1 ()) ~nprocs:1 ~scale:opts.scale spec
      in
      let hare2 =
        HD.run
          ~config:(hare_cfg ~placement:(Config.Split 1) ~ncores:2 ())
          ~nprocs:1 ~scale:opts.scale spec
      in
      let linux1 =
        LD.run ~config:(Driver.default_config ~ncores:1) ~nprocs:1
          ~scale:opts.scale spec
      in
      let unfs =
        HD.run
          ~config:(World.unfs_config (Driver.default_config ~ncores:2))
          ~nprocs:1 ~scale:opts.scale spec
      in
      let base = hare1.Driver.throughput in
      let norm (r : Driver.result) =
        if base > 0.0 then r.Driver.throughput /. base else 0.0
      in
      ( spec.Spec.name,
        hare1.Driver.elapsed,
        1.0,
        norm hare2,
        norm linux1,
        norm unfs ))
    All.specs

let print_fig8 opts =
  section
    "Figure 8: single-core throughput, normalized to Hare timeshare";
  let rows =
    List.map
      (fun (bench, secs, ts, h2, lx, un) ->
        [
          bench;
          Table.fmt_seconds secs;
          Table.fmt_factor ts;
          Table.fmt_factor h2;
          Table.fmt_factor lx;
          Table.fmt_factor un;
        ])
      (fig8_data opts)
  in
  Table.print
    ~headers:
      [
        "benchmark";
        "hare runtime";
        "hare timeshare";
        "hare 2-core";
        "linux ramfs";
        "linux unfs";
      ]
    rows

(* ---------- Figures 9-14: technique ablations -------------------------- *)

let techniques =
  [
    ( "Directory distribution",
      fun (c : Config.t) -> { c with Config.dir_distribution = false } );
    ("Directory broadcast", fun c -> { c with Config.dir_broadcast = false });
    ("Direct cache access", fun c -> { c with Config.direct_access = false });
    ("Directory cache", fun c -> { c with Config.dir_cache = false });
    ("Creation affinity", fun c -> { c with Config.creation_affinity = false });
  ]

let technique_ratios opts =
  let base_cfg = hare_cfg ~ncores:opts.big () in
  let with_results =
    List.map
      (fun (spec : Spec.t) ->
        (spec, HD.run ~config:base_cfg ~scale:opts.scale spec))
      All.parallel
  in
  List.map
    (fun (tech, disable) ->
      let ratios =
        List.map
          (fun ((spec : Spec.t), (on : Driver.result)) ->
            let off =
              HD.run ~config:(disable base_cfg) ~scale:opts.scale spec
            in
            let ratio =
              if off.Driver.throughput > 0.0 then
                on.Driver.throughput /. off.Driver.throughput
              else 0.0
            in
            (spec.Spec.name, ratio))
          with_results
      in
      (tech, ratios))
    techniques

let print_techniques opts =
  let data = technique_ratios opts in
  List.iteri
    (fun i (tech, ratios) ->
      section
        (Printf.sprintf
           "Figure %d: throughput with %s (normalized to without, %d cores)"
           (10 + i) tech opts.big);
      Table.print ~headers:[ "benchmark"; "speedup from technique" ]
        (List.map
           (fun (b, r) -> [ b; Table.fmt_factor r ])
           ratios))
    data;
  section "Figure 9: relative improvement per technique (all benchmarks)";
  let rows =
    List.map
      (fun (tech, ratios) ->
        let s = Summary.of_list (List.map snd ratios) in
        [
          tech;
          Table.fmt_factor s.Summary.min;
          Table.fmt_factor s.Summary.avg;
          Table.fmt_factor s.Summary.median;
          Table.fmt_factor s.Summary.max;
        ])
      data
  in
  Table.print ~headers:[ "Technique"; "Min"; "Avg"; "Median"; "Max" ] rows

(* ---------- Figure 15: Hare vs. Linux ---------------------------------- *)

let fig15_data opts =
  List.map
    (fun (spec : Spec.t) ->
      let h1 =
        HD.run ~config:(hare_cfg ~ncores:1 ()) ~nprocs:1 ~scale:opts.scale spec
      in
      let hN =
        HD.run ~config:(hare_cfg ~ncores:opts.big ()) ~scale:opts.scale spec
      in
      let l1 =
        LD.run ~config:(Driver.default_config ~ncores:1) ~nprocs:1
          ~scale:opts.scale spec
      in
      let lN =
        LD.run
          ~config:(Driver.default_config ~ncores:opts.big)
          ~scale:opts.scale spec
      in
      let speedup a b =
        if a > 0.0 then b /. a else 0.0
      in
      ( spec.Spec.name,
        speedup h1.Driver.throughput hN.Driver.throughput,
        speedup l1.Driver.throughput lN.Driver.throughput,
        hN.Driver.elapsed,
        lN.Driver.elapsed ))
    All.fig15

let print_fig15 opts =
  section
    (Printf.sprintf "Figure 15: speedup at %d cores, Hare vs. Linux" opts.big);
  let rows =
    List.map
      (fun (bench, hs, ls, ht, lt) ->
        [
          bench;
          Printf.sprintf "%.1fx" hs;
          Printf.sprintf "%.1fx" ls;
          Table.fmt_seconds ht;
          Table.fmt_seconds lt;
        ])
      (fig15_data opts)
  in
  Table.print
    ~headers:
      [ "benchmark"; "hare speedup"; "linux speedup"; "hare time"; "linux time" ]
    rows

(* ---------- §5.3.3 microbenchmark: rename latency ----------------------- *)

let rename_latency_us ~config ~scale =
  let spec = All.find "renames" in
  let r = HD.run ~config ~nprocs:1 ~scale spec in
  r.Driver.elapsed /. float_of_int r.Driver.ops *. 1e6

let micro_data opts =
  let single = rename_latency_us ~config:(hare_cfg ~ncores:1 ()) ~scale:opts.scale in
  let split =
    rename_latency_us
      ~config:(hare_cfg ~placement:(Config.Split 1) ~ncores:2 ())
      ~scale:opts.scale
  in
  (single, split)

let print_micro opts =
  section "Microbenchmark (§5.3.3): rename() latency";
  let single, split = micro_data opts in
  Table.print
    ~headers:[ "configuration"; "paper"; "this repo" ]
    [
      [ "same core (timeshare)"; "7.204 us"; Printf.sprintf "%.3f us" single ];
      [ "separate cores (split)"; "4.171 us"; Printf.sprintf "%.3f us" split ];
    ]

(* ---------- extensions (beyond the paper) ------------------------------ *)

let width_benches = [ "creates"; "pfind dense"; "rm dense"; "mailbench" ]

let width_sweep opts =
  let widths =
    List.sort_uniq compare
      (List.filter (fun w -> w <= opts.big) [ 2; 4; 8; 16; opts.big ])
  in
  List.map
    (fun bench ->
      let spec = All.find bench in
      let run w =
        HD.run
          ~config:
            { (hare_cfg ~ncores:opts.big ()) with Config.dist_width = Some w }
          ~scale:opts.scale spec
      in
      let full = run opts.big in
      ( bench,
        List.map
          (fun w ->
            let r = run w in
            ( w,
              if full.Driver.throughput > 0.0 then
                r.Driver.throughput /. full.Driver.throughput
              else 0.0 ))
          widths ))
    width_benches

let print_extensions opts =
  section
    (Printf.sprintf
       "Extension (§6): partial directory distribution at %d cores         (throughput vs. full-width)"
       opts.big);
  let data = width_sweep opts in
  let widths = List.map fst (snd (List.hd data)) in
  Table.print
    ~headers:("benchmark" :: List.map (fun w -> Printf.sprintf "w=%d" w) widths)
    (List.map
       (fun (bench, points) ->
         bench :: List.map (fun (_, v) -> Table.fmt_factor v) points)
       data);
  section "Extension (§3.2): block stealing between server partitions";
  (* Starve one partition: a single client writes a 30-block file while
     every server owns only 16 blocks of buffer cache. *)
  let outcome stealing =
    let config =
      {
        (hare_cfg ~ncores:4 ()) with
        Config.buffer_cache_blocks = 64;
        block_stealing = stealing;
      }
    in
    let m = Hare.Machine.boot config in
    let init, _ =
      Hare.Machine.spawn_init m ~name:"steal-demo" (fun p _ ->
          let fd = Hare.Posix.creat p "/big" in
          let chunk = String.make 4096 'S' in
          (try
             for _ = 1 to 30 do
               ignore (Hare.Posix.write p fd chunk)
             done
           with Hare_proto.Errno.Error (Hare_proto.Errno.ENOSPC, _) ->
             Hare.Posix.exit p 28);
          Hare.Posix.close p fd;
          0)
    in
    Hare.Machine.run m;
    let stolen =
      Array.fold_left
        (fun acc s -> acc + Hare_server.Server.blocks_stolen s)
        0 (Hare.Machine.servers m)
    in
    match Hare.Machine.exit_status m init with
    | Some 0 -> Printf.sprintf "file written (%d blocks stolen)" stolen
    | Some 28 -> "fails with ENOSPC"
    | _ -> "unexpected failure"
  in
  Table.print
    ~headers:[ "configuration"; "16-block partitions, 30-block file" ]
    [
      [ "stealing off (paper prototype)"; outcome false ];
      [ "stealing on (extension)"; outcome true ];
    ]

let print_all opts =
  print_fig4 ();
  print_fig5 opts;
  print_fig6 opts;
  print_fig7 opts;
  print_fig8 opts;
  print_techniques opts;
  print_fig15 opts;
  print_micro opts;
  print_extensions opts
