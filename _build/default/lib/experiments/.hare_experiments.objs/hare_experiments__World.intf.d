lib/experiments/world.mli: Hare Hare_api Hare_baseline Hare_config Hare_proc Hare_stats
