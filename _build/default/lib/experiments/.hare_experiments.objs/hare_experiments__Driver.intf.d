lib/experiments/driver.mli: Hare_config Hare_stats Hare_workloads World
