lib/experiments/driver.ml: Hare_api Hare_config Hare_stats Hare_workloads List Printf World
