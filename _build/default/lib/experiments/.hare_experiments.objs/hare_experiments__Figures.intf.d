lib/experiments/figures.mli:
