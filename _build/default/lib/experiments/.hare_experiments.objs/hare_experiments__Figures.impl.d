lib/experiments/figures.ml: Array Driver Filename Hare Hare_config Hare_proto Hare_server Hare_stats Hare_workloads List Option Printf String World
