lib/experiments/world.ml: Hare Hare_api Hare_baseline Hare_config Hare_proc Hare_proto Hare_sim Hare_stats List Wire
